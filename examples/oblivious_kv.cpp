/**
 * @file
 * Oblivious key-value store: the paper's Redis/Signal motivation. A
 * small KV layer on top of Palermo where the cloud (DRAM) only ever
 * sees uniformly random tree paths — demonstrated by collecting the
 * attacker-visible leaf sequence for two very different key workloads
 * and showing both pass the uniformity test.
 *
 * Part two serves the same store through the real subsystem this
 * prototype grew into — src/service's ObliviousKvService — where the
 * full timing stack (queue, controller, DRAM) prices every GET/PUT
 * and two tenants share one ORAM without sharing a namespace. The
 * production-shaped driver around that layer is tools/palermo_loadgen.
 *
 * Build & run:  ./build/examples/oblivious_kv
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "crypto/prf.hh"
#include "oram/palermo.hh"
#include "security/uniformity.hh"
#include "service/kv_service.hh"

using namespace palermo;

namespace {

/** A tiny oblivious KV store: keys hash to protected lines. */
class ObliviousKv
{
  public:
    explicit ObliviousKv(std::uint64_t capacity_lines)
        : hasher_(0x6b657973656564ull), proto_(makeConfig(capacity_lines)),
          oram_(proto_)
    {
    }

    void put(const std::string &key, std::uint64_t value)
    {
        accessLine(lineOf(key), true, value);
    }

    std::uint64_t get(const std::string &key)
    {
        return accessLine(lineOf(key), false, 0);
    }

    /** Attacker's view: the data-tree leaves read so far. */
    const std::vector<Leaf> &observedLeaves() const { return leaves_; }
    std::uint64_t numLeaves() const
    {
        return oram_.engine(kLevelData).params().numLeaves;
    }

  private:
    static ProtocolConfig makeConfig(std::uint64_t lines)
    {
        ProtocolConfig config;
        config.numBlocks = lines;
        config.treetopBytes = {8192, 4096, 2048};
        return config;
    }

    BlockId lineOf(const std::string &key)
    {
        std::uint64_t h = 1469598103934665603ull;
        for (char c : key)
            h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
        return hasher_.evalMod(h, proto_.numBlocks);
    }

    std::uint64_t accessLine(BlockId line, bool write,
                             std::uint64_t value)
    {
        const auto ids = oram_.decompose(line);
        for (unsigned level = kHierLevels; level-- > 0;) {
            const LevelPlan plan = oram_.beginLevel(level, ids[level]);
            if (level == kLevelData)
                leaves_.push_back(plan.oldLeaf);
        }
        return oram_.finishData(line, write, value);
    }

    Prf hasher_;
    ProtocolConfig proto_;
    PalermoOram oram_;
    std::vector<Leaf> leaves_;
};

} // namespace

int
main()
{
    // Workload A: heavily skewed GETs of one hot key (a user's contact
    // lookups). Workload B: uniform scans. If the memory trace leaked,
    // these would look completely different to the cloud.
    ObliviousKv hot_store(1 << 14);
    Rng rng(7);
    for (int i = 0; i < 200; ++i)
        hot_store.put("user:" + std::to_string(i), i);
    for (int i = 0; i < 3000; ++i) {
        const bool hot = rng.chance(0.8);
        hot_store.get("user:"
                      + std::to_string(hot ? 7 : rng.range(200)));
    }

    ObliviousKv scan_store(1 << 14);
    for (int i = 0; i < 200; ++i)
        scan_store.put("user:" + std::to_string(i), i);
    for (int i = 0; i < 3000; ++i)
        scan_store.get("user:" + std::to_string(i % 200));

    const ChiSquareResult hot_result = leafUniformity(
        hot_store.observedLeaves(), hot_store.numLeaves());
    const ChiSquareResult scan_result = leafUniformity(
        scan_store.observedLeaves(), scan_store.numLeaves());
    const double hot_corr =
        serialCorrelation(hot_store.observedLeaves());

    std::printf("oblivious KV store over Palermo (%llu-line space)\n\n",
                (unsigned long long)(1 << 14));
    std::printf("workload A (80%% traffic on one hot key):\n");
    std::printf("  leaf chi-square %.1f vs threshold %.1f -> %s\n",
                hot_result.statistic, hot_result.threshold,
                hot_result.uniform ? "UNIFORM" : "SKEWED");
    std::printf("  lag-1 leaf correlation: %+.4f (~0 means remaps are "
                "independent)\n",
                hot_corr);
    std::printf("workload B (uniform scan):\n");
    std::printf("  leaf chi-square %.1f vs threshold %.1f -> %s\n",
                scan_result.statistic, scan_result.threshold,
                scan_result.uniform ? "UNIFORM" : "SKEWED");
    std::printf("\nboth traces are statistically uniform: the cloud "
                "cannot tell the hot-key workload from the scan.\n");

    // Functional sanity for the skeptical reader.
    ObliviousKv check(1 << 12);
    check.put("alice", 111);
    check.put("bob", 222);
    std::printf("\nget(alice) = %llu, get(bob) = %llu\n",
                (unsigned long long)check.get("alice"),
                (unsigned long long)check.get("bob"));

    // Part two: the same idea as a served system. ObliviousKvService
    // runs the full timing stack, so responses have latencies in DRAM
    // cycles, and two tenants get structurally disjoint namespaces.
    ServiceConfig svc_config;
    svc_config.system.protocol.numBlocks = 1 << 12;
    svc_config.system.protocol.treetopBytes = {8192, 4096, 2048};
    svc_config.system.dram.org.rows = 1u << 10;
    svc_config.system.totalRequests = 400;
    svc_config.system.warmupFraction = 0.0;
    svc_config.tenants = 2;
    svc_config.queuePolicy = QueuePolicy::Block;
    ObliviousKvService service(svc_config);

    const auto fnv = [](const std::string &text) {
        std::uint64_t h = 1469598103934665603ull;
        for (char c : text)
            h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
        return h;
    };
    Rng traffic(11);
    for (int i = 0; i < 400; ++i) {
        const unsigned tenant = i & 1; // Interleave both tenants.
        const std::string key =
            "user:" + std::to_string(traffic.range(200));
        while (service.offer(tenant, fnv(key), traffic.chance(0.1), i,
                             service.now())
               == Admission::WouldBlock)
            service.step(1); // Bounded queue: wait out backpressure.
    }
    service.drainAll();

    const ServiceSnapshot snap = service.snapshot();
    std::printf("\nserved through src/service (2 tenants, full timing "
                "stack):\n");
    std::printf("  throughput %.3f req/kilocycle, queue high-water "
                "%zu/%zu\n",
                snap.achievedPerKilocycle, snap.queueHighWatermark,
                snap.queueCapacity);
    std::printf("  latency p50/p99: %.0f/%.0f cycles\n",
                snap.global.latency.quantile(0.50),
                snap.global.latency.quantile(0.99));
    for (std::size_t t = 0; t < snap.perTenant.size(); ++t)
        std::printf("  tenant %zu: %llu completed, p99 %.0f cycles\n",
                    t,
                    (unsigned long long)snap.perTenant[t].completed,
                    snap.perTenant[t].latency.quantile(0.99));
    std::printf("sweep this with tools/palermo_loadgen "
                "(--openloop/--closedloop).\n");
    return 0;
}
