/**
 * @file
 * Oblivious LLM token-table serving: the paper's introduction scenario.
 * A GPT-2-style decode loop looks up token embeddings in outsourced
 * memory; without ORAM the bus trace reconstructs the prompt. This
 * example serves the llm workload through RingORAM and Palermo, compares
 * decode throughput, and shows the timing side channel carries ~zero
 * information about whether a token was recently used (stash hit).
 *
 * Build & run:  ./build/examples/llm_serving
 */

#include <cstdio>

#include "common/log.hh"
#include "security/mutual_info.hh"
#include "sim/experiment.hh"

using namespace palermo;

int
main()
{
    setVerbose(false);
    SystemConfig config;
    config.protocol.numBlocks = 1 << 16; // 4 MB token feature table.
    config.protocol.treetopBytes = {32 * 1024, 8 * 1024, 4 * 1024};
    config.totalRequests = 1500;

    std::printf("oblivious token-table serving (llm workload, %llu-line "
                "table)\n\n",
                (unsigned long long)config.protocol.numBlocks);

    const RunMetrics ring =
        runExperiment(ProtocolKind::RingOram, Workload::Llm, config);
    const RunMetrics palermo =
        runExperiment(ProtocolKind::Palermo, Workload::Llm, config);

    // Embedding rows are 8 lines; Fig. 13 says row-sized prefetch is
    // the sweet spot for embedding workloads.
    SystemConfig pf_config = config;
    pf_config.protocol.prefetchLen = 8;
    const RunMetrics prefetch = runExperiment(
        ProtocolKind::PalermoPrefetch, Workload::Llm, pf_config);

    std::printf("%-22s%16s%14s%12s\n", "design", "misses/s",
                "bw-util%", "speedup");
    std::printf("%-22s%16.3e%14.1f%12s\n", "RingORAM",
                ring.missesPerSecond, ring.bwUtilization * 100, "1.00x");
    std::printf("%-22s%16.3e%14.1f%11.2fx\n", "Palermo",
                palermo.missesPerSecond, palermo.bwUtilization * 100,
                speedupOver(ring, palermo));
    std::printf("%-22s%16.3e%14.1f%11.2fx\n", "Palermo+Prefetch(8)",
                prefetch.missesPerSecond, prefetch.bwUtilization * 100,
                speedupOver(ring, prefetch));

    std::printf("\ntiming side channel (Palermo):\n");
    const double mi = palermo.samples.empty()
        ? 0.0 : mutualInformationOf(palermo.samples);
    std::printf("  response latency p50/p90: %.0f / %.0f cycles\n",
                palermo.latency.quantile(0.5),
                palermo.latency.quantile(0.9));
    std::printf("  mutual information (Eq. 1): %.6f bits\n", mi);
    std::printf("  -> near zero: an attacker timing the bus learns "
                "essentially nothing about which tokens the prompt\n"
                "     reuses (the estimate converges to 0 with sample "
                "count; see EXPERIMENTS.md on Fig. 9).\n");
    return 0;
}
