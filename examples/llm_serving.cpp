/**
 * @file
 * Oblivious LLM token-table serving: the paper's introduction scenario.
 * A GPT-2-style decode loop looks up token embeddings in outsourced
 * memory; without ORAM the bus trace reconstructs the prompt. This
 * example serves the llm workload through RingORAM and Palermo, compares
 * decode throughput, and shows the timing side channel carries ~zero
 * information about whether a token was recently used (stash hit).
 * The closing section serves the same table through the src/service
 * layer as a batch of closed-loop decode streams — the serving-system
 * view that tools/palermo_loadgen sweeps into saturation curves.
 *
 * Build & run:  ./build/examples/llm_serving
 */

#include <cstdio>

#include "common/log.hh"
#include "common/rng.hh"
#include "security/mutual_info.hh"
#include "service/kv_service.hh"
#include "sim/experiment.hh"

using namespace palermo;

int
main()
{
    setVerbose(false);
    SystemConfig config;
    config.protocol.numBlocks = 1 << 16; // 4 MB token feature table.
    config.protocol.treetopBytes = {32 * 1024, 8 * 1024, 4 * 1024};
    config.totalRequests = 1500;

    std::printf("oblivious token-table serving (llm workload, %llu-line "
                "table)\n\n",
                (unsigned long long)config.protocol.numBlocks);

    const RunMetrics ring =
        runExperiment(ProtocolKind::RingOram, Workload::Llm, config);
    const RunMetrics palermo =
        runExperiment(ProtocolKind::Palermo, Workload::Llm, config);

    // Embedding rows are 8 lines; Fig. 13 says row-sized prefetch is
    // the sweet spot for embedding workloads.
    SystemConfig pf_config = config;
    pf_config.protocol.prefetchLen = 8;
    const RunMetrics prefetch = runExperiment(
        ProtocolKind::PalermoPrefetch, Workload::Llm, pf_config);

    std::printf("%-22s%16s%14s%12s\n", "design", "misses/s",
                "bw-util%", "speedup");
    std::printf("%-22s%16.3e%14.1f%12s\n", "RingORAM",
                ring.missesPerSecond, ring.bwUtilization * 100, "1.00x");
    std::printf("%-22s%16.3e%14.1f%11.2fx\n", "Palermo",
                palermo.missesPerSecond, palermo.bwUtilization * 100,
                speedupOver(ring, palermo));
    std::printf("%-22s%16.3e%14.1f%11.2fx\n", "Palermo+Prefetch(8)",
                prefetch.missesPerSecond, prefetch.bwUtilization * 100,
                speedupOver(ring, prefetch));

    std::printf("\ntiming side channel (Palermo):\n");
    const double mi = palermo.samples.empty()
        ? 0.0 : mutualInformationOf(palermo.samples);
    std::printf("  response latency p50/p90: %.0f / %.0f cycles\n",
                palermo.latency.quantile(0.5),
                palermo.latency.quantile(0.9));
    std::printf("  mutual information (Eq. 1): %.6f bits\n", mi);
    std::printf("  -> near zero: an attacker timing the bus learns "
                "essentially nothing about which tokens the prompt\n"
                "     reuses (the estimate converges to 0 with sample "
                "count; see EXPERIMENTS.md on Fig. 9).\n");

    // Serving-system view: four concurrent decode streams, each
    // issuing its next embedding lookup the moment the previous one
    // returns — a closed loop over ObliviousKvService, so per-token
    // latency includes queueing on the shared ORAM.
    ServiceConfig svc_config;
    svc_config.system = config;
    svc_config.system.totalRequests = 800;
    svc_config.system.warmupFraction = 0.0;
    svc_config.queuePolicy = QueuePolicy::Block;
    ObliviousKvService service(svc_config);

    ZipfSampler tokens(1 << 16, 0.99, 21); // Token popularity skew.
    const unsigned streams = 4;
    std::uint64_t issued = 0, target = 800;
    for (; issued < streams; ++issued)
        service.offer(0, tokens.sample(), false, issued, 0);
    while (service.completedTotal() < target) {
        const std::uint64_t done = service.step(1);
        for (std::uint64_t i = 0; i < done && issued < target; ++i, ++issued)
            service.offer(0, tokens.sample(), false, issued,
                          service.now());
    }
    service.drainAll();

    const ServiceSnapshot snap = service.snapshot();
    std::printf("\nserved as %u closed-loop decode streams "
                "(src/service):\n",
                streams);
    std::printf("  decode throughput %.3f tokens/kilocycle, per-token "
                "p50/p99 %.0f/%.0f cycles\n",
                snap.achievedPerKilocycle,
                snap.global.latency.quantile(0.50),
                snap.global.latency.quantile(0.99));
    std::printf("sweep stream counts and arrival rates with "
                "tools/palermo_loadgen.\n");
    return 0;
}
