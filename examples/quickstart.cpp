/**
 * @file
 * Quickstart: protect a memory space with Palermo, write and read some
 * data through the full protocol, then time a short burst through the
 * co-designed controller on simulated DDR4.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "controller/palermo_controller.hh"
#include "mem/dram_system.hh"
#include "oram/palermo.hh"

using namespace palermo;

int
main()
{
    // 1. Configure a protected space: 1 MB of 64B lines, the paper's
    //    (Z, S, A) = (16, 27, 20) RingORAM geometry underneath.
    ProtocolConfig proto;
    proto.numBlocks = 1 << 14;
    proto.treetopBytes = {16 * 1024, 8 * 1024, 4 * 1024};

    auto oram = std::make_unique<PalermoOram>(proto);
    std::printf("protected space : %llu lines (%llu KB)\n",
                (unsigned long long)proto.numBlocks,
                (unsigned long long)(proto.numBlocks * 64 / 1024));

    // 2. Functional access: every LLC miss walks PosMap2 -> PosMap1 ->
    //    Data (all three ORAM trees), exactly like the hardware.
    auto access = [&](BlockId pa, bool write, std::uint64_t value) {
        const auto ids = oram->decompose(pa);
        for (unsigned level = kHierLevels; level-- > 0;)
            oram->beginLevel(level, ids[level]);
        return oram->finishData(pa, write, value);
    };

    access(0x42, /*write=*/true, 0xdeadbeef);
    const std::uint64_t got = access(0x42, false, 0);
    std::printf("write/read back : 0x%llx (expected 0xdeadbeef)\n",
                (unsigned long long)got);

    // 3. Timing: run 64 misses through the 3x8 PE mesh on DDR4-3200.
    PalermoControllerConfig mesh; // Table III: 3x8 PEs.
    PalermoController controller(
        std::make_unique<PalermoOram>(proto), mesh);
    DramConfig dram_config;
    DramSystem dram(dram_config);

    unsigned pushed = 0;
    while (controller.stats().served < 64) {
        while (pushed < 64 && controller.canAccept()) {
            controller.push(pushed * 97 % proto.numBlocks, false, 0,
                            false);
            ++pushed;
        }
        for (const Completion &c : dram.drainCompletions())
            controller.onCompletion(c.tag);
        controller.tick(dram);
        dram.tick();
    }

    const DramSnapshot snap = dram.snapshot();
    std::printf("64 misses served in %llu cycles (%.2f us at 1.6 GHz)\n",
                (unsigned long long)dram.now(), dram.now() / 1600.0);
    std::printf("DRAM traffic    : %llu reads, %llu writes\n",
                (unsigned long long)snap.reads,
                (unsigned long long)snap.writes);
    std::printf("bus utilization : %.1f%%\n",
                snap.busUtilization() * 100);
    std::printf("peak concurrency: %u ORAM requests in flight\n",
                controller.maxActiveColumns());
    std::printf("stash watermark : %zu of %zu\n",
                controller.stashOf(kLevelData).highWatermark(),
                controller.stashOf(kLevelData).capacity());
    return 0;
}
