/**
 * @file
 * Trace explorer: a CLI driver over the experiment runner. Pick any
 * Table II workload and any design point, run it, and get the full
 * metric set — the fastest way to poke at the system.
 *
 * Usage: trace_explorer [workload] [protocol] [requests]
 *   workload: mcf lbm pr motif rm1 rm2 llm redis stream random
 *   protocol: path ring page pr ir palermo-sw palermo palermo-pf
 *   requests: positive integer (default 1000)
 *
 * Example:  ./build/examples/trace_explorer redis palermo 2000
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/log.hh"
#include "security/mutual_info.hh"
#include "sim/experiment.hh"

using namespace palermo;

namespace {

ProtocolKind
parseKind(const std::string &name)
{
    ProtocolKind kind;
    if (!protocolFromName(name, &kind))
        fatal("unknown protocol '%s' (try palermo_run "
              "--list-protocols)",
              name.c_str());
    return kind;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    const std::string workload_name = argc > 1 ? argv[1] : "redis";
    const std::string protocol_name = argc > 2 ? argv[2] : "palermo";
    const std::uint64_t requests =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1000;

    const Workload workload = workloadFromName(workload_name);
    const ProtocolKind kind = parseKind(protocol_name);

    SystemConfig config = SystemConfig::benchDefault();
    config.totalRequests = requests;
    if (kind == ProtocolKind::PrOram
        || kind == ProtocolKind::PalermoPrefetch) {
        config.protocol.prefetchLen = 4;
        config.protocol.fatTree = (kind == ProtocolKind::PrOram);
    }

    std::printf("running %s under %s (%llu requests)\n",
                workloadName(workload), protocolKindName(kind),
                (unsigned long long)requests);
    std::printf("%s\n", config.describe().c_str());

    const RunMetrics m = runExperiment(kind, workload, config);

    std::printf("throughput        : %.3f misses/kilocycle "
                "(%.3e misses/s)\n",
                m.requestsPerKilocycle, m.missesPerSecond);
    std::printf("measured window   : %llu requests, %llu cycles\n",
                (unsigned long long)m.measuredRequests,
                (unsigned long long)m.measuredCycles);
    std::printf("bandwidth util    : %.1f%%\n", m.bwUtilization * 100);
    std::printf("avg outstanding   : %.1f DRAM requests\n",
                m.avgOutstanding);
    std::printf("row buffer        : %.1f%% hits, %.1f%% conflicts\n",
                m.rowHitRate * 100, m.rowConflictRate * 100);
    std::printf("DRAM traffic      : %llu reads, %llu writes "
                "(%.0f reads + %.0f writes per miss)\n",
                (unsigned long long)m.dramReads,
                (unsigned long long)m.dramWrites, m.readsPerRequest,
                m.writesPerRequest);
    std::printf("controller stalls : %.1f%% ORAM-sync\n",
                m.syncFraction * 100);
    std::printf("latency p10/50/90 : %.0f / %.0f / %.0f cycles\n",
                m.latency.quantile(0.1), m.latency.quantile(0.5),
                m.latency.quantile(0.9));
    std::printf("stash             : max %zu of %zu%s\n", m.stashMax,
                m.stashCapacity,
                m.stashOverflowed ? "  !! OVERFLOWED" : "");
    std::printf("requests          : %llu served, %llu dummies "
                "(%.1f%%), %llu LLC hits\n",
                (unsigned long long)m.served,
                (unsigned long long)m.dummies, m.dummyRatio * 100,
                (unsigned long long)m.llcHits);
    if (!m.samples.empty()) {
        std::printf("mutual information: %.6f bits\n",
                    mutualInformationOf(m.samples));
    }
    return 0;
}
