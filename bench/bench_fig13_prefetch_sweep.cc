/**
 * @file
 * Figure 13 regeneration: Palermo performance across prefetch lengths
 * (pf = 1, 2, 4, 8), normalized to PathORAM. Paper: for moderate-
 * locality workloads Palermo only moderately changes with pf and always
 * beats PathORAM; embedding workloads (llm) peak when pf approaches the
 * embedding-row size.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig13");
    const SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 13 -- Palermo prefetch-length sensitivity",
           "insensitive for moderate-locality workloads; row-sized pf "
           "maximizes embedding workloads; always above PathORAM",
           config);

    const std::vector<unsigned> lengths = {1, 2, 4, 8};
    for (Workload workload : deepDiveWorkloads()) {
        harness.add(ProtocolKind::PathOram, workload, config,
                    std::string("path/") + workloadName(workload));
        for (unsigned pf : lengths) {
            SystemConfig c = config;
            c.protocol.prefetchLen = pf;
            const ProtocolKind kind = pf == 1
                ? ProtocolKind::Palermo : ProtocolKind::PalermoPrefetch;
            harness.add(kind, workload, c,
                        std::string("palermo/") + workloadName(workload)
                            + "/pf=" + std::to_string(pf));
        }
    }
    harness.run();

    std::printf("\n%-10s%12s%12s%12s%12s (x over PathORAM)\n",
                "workload", "nopf", "pf=2", "pf=4", "pf=8");
    for (Workload workload : deepDiveWorkloads()) {
        const RunMetrics &path_base =
            harness.metrics(std::string("path/") + workloadName(workload));
        std::printf("%-10s", workloadName(workload));
        for (unsigned pf : lengths) {
            const RunMetrics &m = harness.metrics(
                std::string("palermo/") + workloadName(workload)
                + "/pf=" + std::to_string(pf));
            std::printf("%11.2fx", speedupOver(path_base, m));
        }
        std::printf("\n");
    }
    return harness.finish();
}
