/**
 * @file
 * Figure 3 regeneration: RingORAM's DRAM bandwidth utilization (a) and
 * memory-cycle breakdown into {Pos2, Pos1, data} x {dram, sync} (b),
 * plus the §III-A analytical cross-check (row-hit rate, queue occupancy,
 * analytically estimated bandwidth).
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig03");
    SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 3 -- RingORAM bandwidth utilization and cycle breakdown",
           "BW utilization < 30% on all workloads; ORAM-sync ~72.4% of "
           "cycles; Pos2+Pos1 ~64% of time",
           config);

    const std::vector<Workload> workloads = deepDiveWorkloads();
    for (Workload workload : workloads)
        harness.add(ProtocolKind::RingOram, workload, config,
                    std::string("ring/") + workloadName(workload));
    harness.run();

    std::printf("\n(a) DRAM bandwidth utilization (paper: 21-30%%)\n");
    head("workload", {"bw-util%", "out.reqs", "rowhit%"});
    for (Workload workload : workloads) {
        const RunMetrics &m =
            harness.metrics(std::string("ring/") + workloadName(workload));
        row(workloadName(workload),
            {m.bwUtilization * 100, m.avgOutstanding,
             m.rowHitRate * 100});
    }

    std::printf("\n(b) Memory cycle breakdown, averaged over workloads "
                "(paper: Pos2 30.1%%, Pos1 34.0%%, data 35.9%%; "
                "sync total 72.4%%)\n");
    head("component", {"dram%", "sync%", "total%"});
    const char *names[kHierLevels] = {"data", "Pos1", "Pos2"};
    const std::vector<RunRecord> &results = harness.records();
    double sync_total = 0.0;
    for (unsigned level = 0; level < kHierLevels; ++level) {
        double dram = 0.0;
        double sync = 0.0;
        for (const RunRecord &r : results) {
            dram += r.metrics.levelDramShare[level] * 100
                / results.size();
            sync += r.metrics.levelSyncShare[level] * 100
                / results.size();
        }
        row(names[level], {dram, sync, dram + sync});
        sync_total += sync;
    }
    std::printf("%-14s%10s%10.2f\n", "ORAM-sync", "", sync_total);
    harness.derived("sync_total_pct", sync_total);

    std::printf("\n(S3-A) analytical cross-check\n");
    double occupancy = 0.0;
    double rowhit = 0.0;
    double latency = 0.0;
    for (const RunRecord &r : results) {
        occupancy += r.metrics.avgOutstanding / results.size();
        rowhit += r.metrics.rowHitRate / results.size();
        latency += r.metrics.avgReadLatency / results.size();
    }
    // Paper §III-A: BW ~ 64B x occupancy / avg-latency.
    const double analytic_bw = 64.0 * occupancy
        / (latency / (config.dram.timing.clockGHz));
    std::printf("avg queue occupancy       : %.1f (paper: 21.1)\n",
                occupancy);
    std::printf("row-hit fraction          : %.1f%% (paper: 48.2%%)\n",
                rowhit * 100);
    std::printf("analytic bandwidth        : %.1f GB/s of %.1f GB/s "
                "peak (paper: 28.8 of 102.4)\n",
                analytic_bw, 102.4);
    harness.derived("avg_queue_occupancy", occupancy);
    harness.derived("row_hit_fraction", rowhit);
    harness.derived("analytic_bw_gbps", analytic_bw);
    return harness.finish();
}
