/**
 * @file
 * google-benchmark micros for the ORAM functional layer: plan
 * generation cost per protocol access (the simulator's inner loop) and
 * stash operations.
 */

#include <benchmark/benchmark.h>

#include "bench_micro_util.hh"

#include "common/rng.hh"
#include "oram/palermo.hh"
#include "oram/ring_oram.hh"
#include "oram/stash.hh"

using namespace palermo;

namespace {

ProtocolConfig
benchProto()
{
    ProtocolConfig config;
    config.numBlocks = 1 << 16;
    config.treetopBytes = {32768, 8192, 4096};
    return config;
}

void
BM_RingOramAccessPlan(benchmark::State &state)
{
    RingOram oram(benchProto());
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            oram.access(rng.range(1 << 16), false, 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RingOramAccessPlan);

void
BM_PalermoBeginLevel(benchmark::State &state)
{
    PalermoOram oram(benchProto());
    Rng rng(2);
    for (auto _ : state) {
        const BlockId pa = rng.range(1 << 16);
        const auto ids = oram.decompose(pa);
        for (unsigned level = kHierLevels; level-- > 0;)
            benchmark::DoNotOptimize(oram.beginLevel(level, ids[level]));
        oram.finishData(pa, false, 0);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PalermoBeginLevel);

void
BM_StashEligibility(benchmark::State &state)
{
    const OramParams params = OramParams::ring(1 << 16, 16, 27, 20);
    Stash stash(256);
    Rng rng(3);
    for (BlockId b = 0; b < 200; ++b)
        stash.put(b, rng.range(params.numLeaves), 0);
    const NodeId node = params.nodeAt(4, 7);
    for (auto _ : state)
        benchmark::DoNotOptimize(stash.eligibleFor(node, params, 16));
}
BENCHMARK(BM_StashEligibility);

void
BM_StashPutTake(benchmark::State &state)
{
    Stash stash(1024);
    std::uint64_t i = 0;
    for (auto _ : state) {
        stash.put(i % 512, 0, i);
        if (i >= 256)
            benchmark::DoNotOptimize(stash.take((i - 256) % 512));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StashPutTake);

} // namespace

int
main(int argc, char **argv)
{
    return palermo::bench::microMain(argc, argv);
}
