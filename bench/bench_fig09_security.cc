/**
 * @file
 * Figure 9 + Table I regeneration: the attacker's view of Palermo.
 * Constant-rate issue, per-request response latencies, row-buffer-hit /
 * bank-conflict uniformity across workloads, and the Equation 1 mutual
 * information between victim behavior (block in stash vs in tree) and
 * the attacker's longer/shorter-than-median timing observation.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "security/mutual_info.hh"
#include "security/uniformity.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig09");
    SystemConfig config = SystemConfig::benchDefault();
    config.constantRate = true;
    config.issueInterval = 280; // Slightly above the mean service rate.
    config.totalRequests = std::max<std::uint64_t>(
        config.totalRequests, 3000);
    banner("Fig. 9 / Table I -- attacker observations on Palermo",
           "latencies cluster; row-hit ~59.5%, bank-conflict ~37.9% on "
           "every workload; mutual information ~0",
           config);

    for (Workload workload : deepDiveWorkloads())
        harness.add(ProtocolKind::Palermo, workload, config,
                    std::string("palermo/") + workloadName(workload));
    harness.run();

    std::printf("\n%-10s%12s%12s%12s%12s%12s%14s\n", "workload",
                "lat-p10", "lat-p50", "lat-p90", "rowhit%", "conflict%",
                "MutualInfo");
    for (Workload workload : deepDiveWorkloads()) {
        const RunMetrics &m = harness.metrics(
            std::string("palermo/") + workloadName(workload));
        const double mi = m.samples.empty()
            ? 0.0 : mutualInformationOf(m.samples);
        harness.derived(std::string("mutual_info/")
                            + workloadName(workload),
                        mi);
        std::printf("%-10s%12.0f%12.0f%12.0f%12.2f%12.2f%14.6f\n",
                    workloadName(workload), m.latency.quantile(0.10),
                    m.latency.quantile(0.50), m.latency.quantile(0.90),
                    m.rowHitRate * 100, m.rowConflictRate * 100, mi);
    }

    std::printf("\nTable I attacker model detail (llm):\n");
    const RunMetrics &llm = harness.metrics("palermo/llm");
    const AttackerModel model = fitAttackerModel(llm.samples);
    std::printf("p1 = P(longer | stash) = %.3f over %zu samples\n",
                model.p1, model.stashSamples);
    std::printf("p2 = P(longer | tree)  = %.3f over %zu samples\n",
                model.p2, model.treeSamples);
    std::printf("median latency         = %.0f cycles\n", model.median);
    std::printf("Equation-1 M           = %.6f bits (paper: ~0)\n",
                mutualInformation(model.p1, model.p2));
    std::printf("\n(M ~ 0: the attacker's best timing-threshold guess "
                "gains nothing about stash hits.)\n");
    harness.derived("attacker_p1", model.p1);
    harness.derived("attacker_p2", model.p2);
    harness.derived("attacker_median_latency", model.median);
    harness.derived("equation1_m",
                    mutualInformation(model.p1, model.p2));
    return harness.finish();
}
