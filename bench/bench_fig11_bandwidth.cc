/**
 * @file
 * Figure 11 regeneration: DRAM bandwidth utilization and average
 * outstanding memory-controller requests, RingORAM vs Palermo without
 * prefetch (identical total DRAM traffic). Paper: Palermo enqueues
 * ~2.8x more outstanding requests, lifting utilization ~2.2x.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main()
{
    setVerbose(false);
    const SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 11 -- bandwidth utilization & outstanding requests",
           "Palermo vs RingORAM (no prefetch): ~2.8x outstanding, "
           "~2.2x bandwidth utilization",
           config);

    std::printf("\n%-10s%14s%14s%14s%14s\n", "workload", "Ring-bw%",
                "Palermo-bw%", "Ring-outst", "Palermo-outst");
    double bw_ratio = 0.0;
    double out_ratio = 0.0;
    const auto workloads = deepDiveWorkloads();
    for (Workload workload : workloads) {
        const RunMetrics ring =
            runExperiment(ProtocolKind::RingOram, workload, config);
        const RunMetrics palermo =
            runExperiment(ProtocolKind::Palermo, workload, config);
        std::printf("%-10s%14.1f%14.1f%14.1f%14.1f\n",
                    workloadName(workload), ring.bwUtilization * 100,
                    palermo.bwUtilization * 100, ring.avgOutstanding,
                    palermo.avgOutstanding);
        bw_ratio += palermo.bwUtilization / ring.bwUtilization
            / workloads.size();
        out_ratio += palermo.avgOutstanding / ring.avgOutstanding
            / workloads.size();
    }
    std::printf("\noutstanding-request ratio : %.2fx (paper: 2.8x)\n",
                out_ratio);
    std::printf("bandwidth-utilization ratio: %.2fx (paper: 2.2x)\n",
                bw_ratio);
    return 0;
}
