/**
 * @file
 * Figure 11 regeneration: DRAM bandwidth utilization and average
 * outstanding memory-controller requests, RingORAM vs Palermo without
 * prefetch (identical total DRAM traffic). Paper: Palermo enqueues
 * ~2.8x more outstanding requests, lifting utilization ~2.2x.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig11");
    const SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 11 -- bandwidth utilization & outstanding requests",
           "Palermo vs RingORAM (no prefetch): ~2.8x outstanding, "
           "~2.2x bandwidth utilization",
           config);

    const auto workloads = deepDiveWorkloads();
    for (Workload workload : workloads) {
        harness.add(ProtocolKind::RingOram, workload, config,
                    std::string("ring/") + workloadName(workload));
        harness.add(ProtocolKind::Palermo, workload, config,
                    std::string("palermo/") + workloadName(workload));
    }
    harness.run();

    std::printf("\n%-10s%14s%14s%14s%14s\n", "workload", "Ring-bw%",
                "Palermo-bw%", "Ring-outst", "Palermo-outst");
    double bw_ratio = 0.0;
    double out_ratio = 0.0;
    for (Workload workload : workloads) {
        const RunMetrics &ring =
            harness.metrics(std::string("ring/") + workloadName(workload));
        const RunMetrics &palermo = harness.metrics(
            std::string("palermo/") + workloadName(workload));
        std::printf("%-10s%14.1f%14.1f%14.1f%14.1f\n",
                    workloadName(workload), ring.bwUtilization * 100,
                    palermo.bwUtilization * 100, ring.avgOutstanding,
                    palermo.avgOutstanding);
        bw_ratio += palermo.bwUtilization / ring.bwUtilization
            / workloads.size();
        out_ratio += palermo.avgOutstanding / ring.avgOutstanding
            / workloads.size();
    }
    std::printf("\noutstanding-request ratio : %.2fx (paper: 2.8x)\n",
                out_ratio);
    std::printf("bandwidth-utilization ratio: %.2fx (paper: 2.2x)\n",
                bw_ratio);
    harness.derived("outstanding_ratio", out_ratio);
    harness.derived("bw_utilization_ratio", bw_ratio);
    return harness.finish();
}
