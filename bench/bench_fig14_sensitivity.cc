/**
 * @file
 * Figure 14 regeneration: (a) RingORAM protocol-parameter sweep — the
 * valid (Z, S, A) points from the RingORAM paper, normalized to
 * (4, 5, 3); Palermo prefers larger (S, A) because they create fewer
 * write barriers (paper: up to ~1.8x). (b) PE-column sweep on rand:
 * throughput saturates around 3x8 PEs (~2.2x over 3x1).
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main()
{
    setVerbose(false);
    const SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 14 -- sensitivity to (Z, S, A) and PE count",
           "(a) larger (Z,S,A) up to ~1.8x over (4,5,3); "
           "(b) 3x8 PEs ~2.2x over 3x1, then saturates",
           config);

    std::printf("\n(a) (Z, S, A) sweep on rand, Palermo, vs (4,5,3)\n");
    struct Zsa
    {
        unsigned z, s, a;
    };
    const Zsa points[] = {{4, 5, 3}, {8, 12, 8}, {16, 27, 20},
                          {32, 56, 42}};
    double base_throughput = 0.0;
    std::printf("%-14s%14s%14s\n", "(Z,S,A)", "speedup(x)",
                "stash-max");
    for (const Zsa &p : points) {
        SystemConfig c = config;
        c.protocol.ringZ = p.z;
        c.protocol.ringS = p.s;
        c.protocol.ringA = p.a;
        const RunMetrics m =
            runExperiment(ProtocolKind::Palermo, Workload::Random, c);
        if (base_throughput == 0.0)
            base_throughput = m.requestsPerKilocycle;
        char label[32];
        std::snprintf(label, sizeof(label), "(%u,%u,%u)", p.z, p.s, p.a);
        std::printf("%-14s%13.2fx%14zu\n", label,
                    m.requestsPerKilocycle / base_throughput, m.stashMax);
    }

    std::printf("\n(b) PE-column sweep on rand, vs 3x1\n");
    std::printf("%-14s%14s%14s%14s\n", "PE columns", "speedup(x)",
                "bw-util%", "out.reqs");
    double pe1_throughput = 0.0;
    for (unsigned columns : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SystemConfig c = config;
        c.palermo.columns = columns;
        const RunMetrics m =
            runExperiment(ProtocolKind::Palermo, Workload::Random, c);
        if (pe1_throughput == 0.0)
            pe1_throughput = m.requestsPerKilocycle;
        char label[32];
        std::snprintf(label, sizeof(label), "3x%u", columns);
        std::printf("%-14s%13.2fx%14.1f%14.1f\n", label,
                    m.requestsPerKilocycle / pe1_throughput,
                    m.bwUtilization * 100, m.avgOutstanding);
    }
    return 0;
}
