/**
 * @file
 * Figure 14 regeneration: (a) RingORAM protocol-parameter sweep — the
 * valid (Z, S, A) points from the RingORAM paper, normalized to
 * (4, 5, 3); Palermo prefers larger (S, A) because they create fewer
 * write barriers (paper: up to ~1.8x). (b) PE-column sweep on rand:
 * throughput saturates around 3x8 PEs (~2.2x over 3x1).
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig14");
    const SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 14 -- sensitivity to (Z, S, A) and PE count",
           "(a) larger (Z,S,A) up to ~1.8x over (4,5,3); "
           "(b) 3x8 PEs ~2.2x over 3x1, then saturates",
           config);

    struct Zsa
    {
        unsigned z, s, a;
    };
    const Zsa points[] = {{4, 5, 3}, {8, 12, 8}, {16, 27, 20},
                          {32, 56, 42}};
    const std::vector<unsigned> columns = {1, 2, 4, 8, 16, 32};

    const auto zsaId = [](const Zsa &p) {
        return "palermo/rand/zsa=" + std::to_string(p.z) + ":"
            + std::to_string(p.s) + ":" + std::to_string(p.a);
    };
    const auto peId = [](unsigned cols) {
        return "palermo/rand/pe=" + std::to_string(cols);
    };

    for (const Zsa &p : points) {
        SystemConfig c = config;
        c.protocol.ringZ = p.z;
        c.protocol.ringS = p.s;
        c.protocol.ringA = p.a;
        harness.add(ProtocolKind::Palermo, Workload::Random, c, zsaId(p));
    }
    for (unsigned cols : columns) {
        SystemConfig c = config;
        c.palermo.columns = cols;
        harness.add(ProtocolKind::Palermo, Workload::Random, c,
                    peId(cols));
    }
    harness.run();

    std::printf("\n(a) (Z, S, A) sweep on rand, Palermo, vs (4,5,3)\n");
    std::printf("%-14s%14s%14s\n", "(Z,S,A)", "speedup(x)",
                "stash-max");
    const double zsa_base =
        harness.metrics(zsaId(points[0])).requestsPerKilocycle;
    for (const Zsa &p : points) {
        const RunMetrics &m = harness.metrics(zsaId(p));
        char label[32];
        std::snprintf(label, sizeof(label), "(%u,%u,%u)", p.z, p.s, p.a);
        std::printf("%-14s%13.2fx%14zu\n", label,
                    m.requestsPerKilocycle / zsa_base, m.stashMax);
    }

    std::printf("\n(b) PE-column sweep on rand, vs 3x1\n");
    std::printf("%-14s%14s%14s%14s\n", "PE columns", "speedup(x)",
                "bw-util%", "out.reqs");
    const double pe_base =
        harness.metrics(peId(columns[0])).requestsPerKilocycle;
    for (unsigned cols : columns) {
        const RunMetrics &m = harness.metrics(peId(cols));
        char label[32];
        std::snprintf(label, sizeof(label), "3x%u", cols);
        std::printf("%-14s%13.2fx%14.1f%14.1f\n", label,
                    m.requestsPerKilocycle / pe_base,
                    m.bwUtilization * 100, m.avgOutstanding);
    }
    return harness.finish();
}
