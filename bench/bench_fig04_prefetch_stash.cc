/**
 * @file
 * Figure 4 regeneration: PrORAM and LAORAM (PrORAM w/ Fat Tree) on the
 * stm streaming workload across forced prefetch lengths. The paper's
 * point: speedup does not scale with prefetch length because stash
 * pressure injects dummy background evictions (77.3% dummy ratio at
 * pf=4 for PrORAM), and even the Fat Tree caps out around 3.2x.
 */

#include <algorithm>
#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main()
{
    setVerbose(false);
    SystemConfig config = SystemConfig::benchDefault();
    // The Fig. 4 experiment models a 1024-entry stash and no dynamic
    // throttle (it sweeps the raw forced-prefetch behavior).
    config.protocol.prStashCapacity = 1024;
    config.protocol.throttle = false;
    banner("Fig. 4 -- PrORAM / LAORAM speedup and dummy ratio on stm",
           "speedup does not scale with pf; dummy ratio reaches ~77% at "
           "pf=4 (PrORAM); LAORAM capped ~3.2x",
           config);

    const RunMetrics base =
        runExperiment(ProtocolKind::PrOram, Workload::Stream, [&] {
            SystemConfig c = config;
            c.protocol.prefetchLen = 1;
            return c;
        }());

    std::printf("\n%-10s%14s%14s%14s%14s\n", "pf", "PrORAM(x)",
                "PrORAM-dummy%", "LAORAM(x)", "LAORAM-dummy%");
    std::printf("%-10s%14.2f%14.1f%14.2f%14.1f\n", "nopf", 1.0,
                base.dummyRatio * 100, 1.0, base.dummyRatio * 100);

    for (unsigned pf : {2u, 4u, 8u, 16u}) {
        SystemConfig pr_config = config;
        pr_config.protocol.prefetchLen = pf;
        pr_config.protocol.fatTree = false;
        // Give every pf enough *real* ORAM accesses to reach its stash
        // steady state (the paper runs 50M requests; prefetch-hit
        // misses are nearly free). Large pf saturates immediately, so
        // the multiplier is capped to bound bench runtime.
        pr_config.totalRequests =
            config.totalRequests * std::min(pf, 4u);
        const RunMetrics pr =
            runExperiment(ProtocolKind::PrOram, Workload::Stream,
                          pr_config);

        SystemConfig la_config = pr_config;
        la_config.protocol.fatTree = true;
        const RunMetrics la =
            runExperiment(ProtocolKind::PrOram, Workload::Stream,
                          la_config);

        std::printf("pf=%-7u%14.2f%14.1f%14.2f%14.1f\n", pf,
                    speedupOver(base, pr), pr.dummyRatio * 100,
                    speedupOver(base, la), la.dummyRatio * 100);
    }
    std::printf("\n(PrORAM column: plain prefetch; LAORAM column: "
                "prefetch + fat tree. Higher dummy%% caps speedup.)\n");
    return 0;
}
