/**
 * @file
 * Figure 4 regeneration: PrORAM and LAORAM (PrORAM w/ Fat Tree) on the
 * stm streaming workload across forced prefetch lengths. The paper's
 * point: speedup does not scale with prefetch length because stash
 * pressure injects dummy background evictions (77.3% dummy ratio at
 * pf=4 for PrORAM), and even the Fat Tree caps out around 3.2x.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig04");
    SystemConfig config = SystemConfig::benchDefault();
    // The Fig. 4 experiment models a 1024-entry stash and no dynamic
    // throttle (it sweeps the raw forced-prefetch behavior).
    config.protocol.prStashCapacity = 1024;
    config.protocol.throttle = false;
    banner("Fig. 4 -- PrORAM / LAORAM speedup and dummy ratio on stm",
           "speedup does not scale with pf; dummy ratio reaches ~77% at "
           "pf=4 (PrORAM); LAORAM capped ~3.2x",
           config);

    const std::vector<unsigned> lengths = {2, 4, 8, 16};
    {
        SystemConfig base_config = config;
        base_config.protocol.prefetchLen = 1;
        harness.add(ProtocolKind::PrOram, Workload::Stream, base_config,
                    "pr/stm/nopf");
    }
    for (unsigned pf : lengths) {
        SystemConfig pr_config = config;
        pr_config.protocol.prefetchLen = pf;
        pr_config.protocol.fatTree = false;
        // Give every pf enough *real* ORAM accesses to reach its stash
        // steady state (the paper runs 50M requests; prefetch-hit
        // misses are nearly free). Large pf saturates immediately, so
        // the multiplier is capped to bound bench runtime.
        pr_config.totalRequests =
            config.totalRequests * std::min(pf, 4u);
        // Forced prefetch without the throttle is *meant* to pressure
        // the stash (that is the figure); exempt it from the overflow
        // sanity gate.
        harness.add(ProtocolKind::PrOram, Workload::Stream, pr_config,
                    "pr/stm/pf=" + std::to_string(pf),
                    /*allow_stash_overflow=*/true);

        SystemConfig la_config = pr_config;
        la_config.protocol.fatTree = true;
        harness.add(ProtocolKind::PrOram, Workload::Stream, la_config,
                    "la/stm/pf=" + std::to_string(pf),
                    /*allow_stash_overflow=*/true);
    }
    harness.run();

    const RunMetrics &base = harness.metrics("pr/stm/nopf");
    std::printf("\n%-10s%14s%14s%14s%14s\n", "pf", "PrORAM(x)",
                "PrORAM-dummy%", "LAORAM(x)", "LAORAM-dummy%");
    std::printf("%-10s%14.2f%14.1f%14.2f%14.1f\n", "nopf", 1.0,
                base.dummyRatio * 100, 1.0, base.dummyRatio * 100);

    for (unsigned pf : lengths) {
        const RunMetrics &pr =
            harness.metrics("pr/stm/pf=" + std::to_string(pf));
        const RunMetrics &la =
            harness.metrics("la/stm/pf=" + std::to_string(pf));
        std::printf("pf=%-7u%14.2f%14.1f%14.2f%14.1f\n", pf,
                    speedupOver(base, pr), pr.dummyRatio * 100,
                    speedupOver(base, la), la.dummyRatio * 100);
    }
    std::printf("\n(PrORAM column: plain prefetch; LAORAM column: "
                "prefetch + fat tree. Higher dummy%% caps speedup.)\n");
    return harness.finish();
}
