/**
 * @file
 * google-benchmark micros for FlatMap vs the pooled std::unordered_map
 * it replaced on the simulator hot path. Three access patterns at the
 * sizes the simulator actually sees: stash-scale churn (hundreds of
 * entries, insert/erase balanced), posmap-tail-scale lookups (tens of
 * thousands of entries, read-mostly), and the row-want pattern
 * (handfuls of entries, counter bump then erase). Run side by side,
 * the pairs justify — and guard — the flat-layout migration.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <unordered_map>
#include <utility>

#include "bench_micro_util.hh"

#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/rng.hh"

using namespace palermo;

namespace {

/** The container FlatMap replaced: unordered_map on a PoolResource. */
using PooledStdMap = std::unordered_map<
    std::uint64_t, std::uint64_t, FlatHash<std::uint64_t>,
    std::equal_to<std::uint64_t>,
    PoolAllocator<std::pair<const std::uint64_t, std::uint64_t>>>;

PooledStdMap
makeStdMap(PoolResource *pool)
{
    return PooledStdMap(
        0, FlatHash<std::uint64_t>(), std::equal_to<std::uint64_t>(),
        PoolAllocator<std::pair<const std::uint64_t, std::uint64_t>>(
            pool));
}

/**
 * Stash-scale churn: a bounded working set with balanced put/take, the
 * Stash::index_ access pattern during path eviction.
 */
void
BM_FlatMapChurn(benchmark::State &state)
{
    const std::uint64_t window = static_cast<std::uint64_t>(state.range(0));
    PoolResource pool;
    FlatMap<std::uint64_t, std::uint64_t> map(&pool);
    std::uint64_t i = 0;
    for (auto _ : state) {
        map.emplace(i % (2 * window), i);
        if (i >= window)
            map.erase((i - window) % (2 * window));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapChurn)->Arg(256)->Arg(4096);

void
BM_StdMapChurn(benchmark::State &state)
{
    const std::uint64_t window = static_cast<std::uint64_t>(state.range(0));
    PoolResource pool;
    PooledStdMap map = makeStdMap(&pool);
    std::uint64_t i = 0;
    for (auto _ : state) {
        map.emplace(i % (2 * window), i);
        if (i >= window)
            map.erase((i - window) % (2 * window));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapChurn)->Arg(256)->Arg(4096);

/**
 * Read-mostly lookups over a resident table: the posmap-tail and
 * prefetch-filter pattern (every ORAM access probes, few mutate).
 * Half the probes hit, half miss.
 */
void
BM_FlatMapLookup(benchmark::State &state)
{
    const std::uint64_t size = static_cast<std::uint64_t>(state.range(0));
    PoolResource pool;
    FlatMap<std::uint64_t, std::uint64_t> map(&pool);
    for (std::uint64_t k = 0; k < size; ++k)
        map.emplace(2 * k, k);
    Rng rng(1);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        const std::uint64_t *v = map.findValue(rng.range(2 * size));
        sum += v != nullptr ? *v : 0;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapLookup)->Arg(256)->Arg(65536);

void
BM_StdMapLookup(benchmark::State &state)
{
    const std::uint64_t size = static_cast<std::uint64_t>(state.range(0));
    PoolResource pool;
    PooledStdMap map = makeStdMap(&pool);
    for (std::uint64_t k = 0; k < size; ++k)
        map.emplace(2 * k, k);
    Rng rng(1);
    std::uint64_t sum = 0;
    for (auto _ : state) {
        const auto it = map.find(rng.range(2 * size));
        sum += it != map.end() ? it->second : 0;
    }
    benchmark::DoNotOptimize(sum);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapLookup)->Arg(256)->Arg(65536);

/**
 * Counter bump then conditional erase: the Channel::rowWant_ pattern —
 * a small table where every enqueue increments and every dequeue
 * decrements-and-maybe-erases.
 */
void
BM_FlatMapCounter(benchmark::State &state)
{
    PoolResource pool;
    FlatMap<std::uint64_t, std::uint64_t> map(&pool);
    Rng rng(2);
    for (auto _ : state) {
        const std::uint64_t key = rng.range(64);
        ++map[key];
        const std::uint64_t victim = rng.range(64);
        const auto it = map.find(victim);
        if (it != map.end() && --it->second == 0)
            map.erase(it);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapCounter);

void
BM_StdMapCounter(benchmark::State &state)
{
    PoolResource pool;
    PooledStdMap map = makeStdMap(&pool);
    Rng rng(2);
    for (auto _ : state) {
        const std::uint64_t key = rng.range(64);
        ++map[key];
        const std::uint64_t victim = rng.range(64);
        const auto it = map.find(victim);
        if (it != map.end() && --it->second == 0)
            map.erase(it);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapCounter);

} // namespace

int
main(int argc, char **argv)
{
    return palermo::bench::microMain(argc, argv);
}
