/**
 * @file
 * google-benchmark micros for the crypto substrate: Speck block
 * throughput, 64B CTR payload encryption, and PRF evaluation — the
 * operations the controller's crypto pipeline performs per slot.
 */

#include <benchmark/benchmark.h>

#include "bench_micro_util.hh"

#include "common/rng.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/prf.hh"
#include "crypto/speck.hh"

using namespace palermo;

namespace {

void
BM_SpeckEncrypt(benchmark::State &state)
{
    const Speck128 cipher({1, 2});
    Speck128::Block block = {3, 4};
    for (auto _ : state) {
        block = cipher.encrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpeckEncrypt);

void
BM_SpeckDecrypt(benchmark::State &state)
{
    const Speck128 cipher({1, 2});
    Speck128::Block block = {3, 4};
    for (auto _ : state) {
        block = cipher.decrypt(block);
        benchmark::DoNotOptimize(block);
    }
    state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SpeckDecrypt);

void
BM_CtrEncrypt64B(benchmark::State &state)
{
    const CtrEncryptor enc({1, 2});
    Payload64 payload{};
    std::uint64_t version = 0;
    for (auto _ : state) {
        payload = enc.encrypt(payload, 0x1000, ++version);
        benchmark::DoNotOptimize(payload);
    }
    state.SetBytesProcessed(state.iterations() * 64);
}
BENCHMARK(BM_CtrEncrypt64B);

void
BM_PrfEval(benchmark::State &state)
{
    const Prf prf(7);
    std::uint64_t x = 0;
    for (auto _ : state) {
        x = prf.evalMod(x + 1, 1 << 24);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_PrfEval);

} // namespace

int
main(int argc, char **argv)
{
    return palermo::bench::microMain(argc, argv);
}
