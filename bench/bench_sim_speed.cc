/**
 * @file
 * bench_sim_speed: how fast is the simulator itself?
 *
 * Every other bench measures the simulated machine; this one measures
 * the simulator. For a grid of tree sizes (--sizes, log2 block counts),
 * protocols (--protocols), and host thread counts (--threads, the
 * --sim-threads knob; ids gain a /tN suffix beyond 1, and a /cN suffix
 * when --channels overrides the DRAM org) it runs each design point to
 * completion
 * and reports host-side speed for the post-warmup segment: simulated
 * cycles/sec, requests/sec, heap allocations per request, and peak
 * RSS. The simulated metrics go into the usual palermo-metrics-v1
 * "points" records (so perf_compare can pin them exactly — they are
 * deterministic); the host-side numbers go into "derived" under
 * "speed.<id>.*" (they vary run to run and are gated with tolerance).
 *
 * --before FILE imports the "speed.*" keys of an earlier document as
 * "before.speed.*" and adds "speedup.<id>" = after/before requests per
 * second, which is how BENCH_sim_speed.json carries the before/after
 * story of the pooling work.
 *
 * Unlike the figure benches this document embeds wall-clock times, so
 * it is NOT byte-deterministic; tools/perf_compare knows which fields
 * to compare exactly and which with tolerance.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "common/alloc_count.hh"
#include "common/log.hh"
#include "sim/experiment.hh"
#include "sim/json_value.hh"
#include "sim/metrics_json.hh"
#include "sim/protocol_registry.hh"
#include "sim/run_cli.hh"
#include "sim/sweep.hh"

using namespace palermo;

namespace {

struct SpeedOptions
{
    std::vector<unsigned> sizes{16, 18, 20, 22, 24}; ///< log2 blocks.
    std::vector<ProtocolKind> protocols{ProtocolKind::Palermo,
                                        ProtocolKind::PathOram};
    std::vector<unsigned> threads{1}; ///< --threads (sim-threads grid).
    unsigned channels = 0;            ///< --channels (0 = default org).
    std::uint64_t reqs = 0; ///< 0 = SystemConfig default.
    bool seedSet = false;
    std::uint64_t seed = 0;
    std::string jsonPath;
    std::string beforePath;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --sizes L,L,...      log2 tree sizes (default 16,18,20,22,24)\n"
        "  --protocols P,P,...  protocol tokens (default palermo,path)\n"
        "  --threads N,N,...    sim-threads per point (default 1); ids\n"
        "                       gain a /tN suffix for N > 1\n"
        "  --channels N         DRAM channels (default: stock org); ids\n"
        "                       gain a /cN suffix when set\n"
        "  --reqs N             requests per point (default %u)\n"
        "  --seed N             base seed (default %u)\n"
        "  --json PATH          write palermo-metrics-v1 JSON ('-' = "
        "stdout)\n"
        "  --before PATH        import an earlier document's speed.* "
        "keys\n"
        "                       as before.* and emit speedup.<id>\n",
        argv0, static_cast<unsigned>(SystemConfig().totalRequests),
        static_cast<unsigned>(SystemConfig().seed));
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, ','))
        parts.push_back(part);
    return parts;
}

bool
parseSpeedArgs(int argc, const char *const *argv, SpeedOptions *options,
               std::string *error)
{
    SpeedOptions result;
    ArgCursor cursor(argc, argv);
    while (cursor.advance()) {
        const std::string name = cursor.name();
        std::string value;
        const auto need = [&](const char *what) {
            *error = name + " needs " + what;
            return false;
        };
        if (name == "--help" || name == "-h") {
            usage("bench_sim_speed");
            std::exit(0);
        } else if (name == "--sizes") {
            if (!cursor.value(&value))
                return need("a comma list of log2 sizes");
            result.sizes.clear();
            for (const std::string &part : splitCommas(value)) {
                std::uint64_t log2 = 0;
                if (!parseUnsigned(part, &log2) || log2 < 4 || log2 > 30)
                    return need("log2 sizes in [4, 30]");
                result.sizes.push_back(static_cast<unsigned>(log2));
            }
            if (result.sizes.empty())
                return need("at least one size");
        } else if (name == "--protocols") {
            if (!cursor.value(&value))
                return need("a comma list of protocol tokens");
            result.protocols.clear();
            for (const std::string &part : splitCommas(value)) {
                ProtocolKind kind;
                if (!protocolFromName(part, &kind)) {
                    *error = "unknown protocol '" + part + "'";
                    return false;
                }
                result.protocols.push_back(kind);
            }
            if (result.protocols.empty())
                return need("at least one protocol");
        } else if (name == "--threads") {
            if (!cursor.value(&value))
                return need("a comma list of thread counts");
            result.threads.clear();
            for (const std::string &part : splitCommas(value)) {
                std::uint64_t count = 0;
                if (!parseUnsigned(part, &count) || count == 0
                    || count > 256)
                    return need("thread counts in [1, 256]");
                result.threads.push_back(static_cast<unsigned>(count));
            }
            if (result.threads.empty())
                return need("at least one thread count");
        } else if (name == "--channels") {
            std::uint64_t channels = 0;
            if (!cursor.value(&value)
                || !parseUnsigned(value, &channels) || channels == 0
                || channels > 64)
                return need("a channel count in [1, 64]");
            result.channels = static_cast<unsigned>(channels);
        } else if (name == "--reqs") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.reqs)
                || result.reqs == 0)
                return need("a positive integer");
        } else if (name == "--seed") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.seed))
                return need("an integer");
            result.seedSet = true;
        } else if (name == "--json") {
            if (!cursor.value(&value))
                return need("a path");
            result.jsonPath = value;
        } else if (name == "--before") {
            if (!cursor.value(&value))
                return need("a path");
            result.beforePath = value;
        } else {
            *error = "unknown flag '" + name + "' (try --help)";
            return false;
        }
    }
    *options = result;
    return true;
}

/** Peak RSS of this process so far, in MiB (Linux ru_maxrss is KiB). */
double
peakRssMb()
{
    struct rusage usage{};
    ::getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/** Host-side measurements for one design point. */
struct HostSpeed
{
    double wallSeconds = 0.0;
    double simCyclesPerSecond = 0.0;
    double requestsPerSecond = 0.0;
    double allocsPerRequest = 0.0;
    double peakRssMb = 0.0;
};

/**
 * Run one point to completion, wall-timing the post-warmup segment so
 * the host numbers cover the same window as the simulated
 * measuredCycles/measuredRequests.
 */
RunMetrics
runPoint(ProtocolKind kind, const SystemConfig &config, HostSpeed *speed)
{
    auto session = makeSession(kind, Workload::Random, config);
    const std::uint64_t warmup_served = static_cast<std::uint64_t>(
        config.totalRequests * config.warmupFraction);

    while (!session->done() && session->served() < warmup_served)
        session->step();

    const auto t0 = std::chrono::steady_clock::now();
    const unsigned long long allocs0 = heapAllocationCount();
    while (!session->done())
        session->step();
    session->drain();
    const unsigned long long allocs1 = heapAllocationCount();
    const auto t1 = std::chrono::steady_clock::now();

    const RunMetrics metrics = session->snapshot();
    const double seconds =
        std::chrono::duration<double>(t1 - t0).count();
    speed->wallSeconds = seconds;
    if (seconds > 0.0) {
        speed->simCyclesPerSecond =
            static_cast<double>(metrics.measuredCycles) / seconds;
        speed->requestsPerSecond =
            static_cast<double>(metrics.measuredRequests) / seconds;
    }
    if (metrics.measuredRequests > 0) {
        speed->allocsPerRequest =
            static_cast<double>(allocs1 - allocs0)
            / static_cast<double>(metrics.measuredRequests);
    }
    // Cumulative process peak: monotone across the grid, so a point's
    // value reflects the largest tree run so far, itself included.
    speed->peakRssMb = peakRssMb();
    return metrics;
}

/**
 * Pull "speed.*" derived keys out of an earlier document as
 * "before.speed.*" and compute "speedup.<id>" for every id both runs
 * measured.
 */
bool
importBefore(const std::string &path,
             std::map<std::string, double> *derived, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open --before file '" + path + "'";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();

    JsonValue document;
    if (!JsonValue::parse(buffer.str(), &document, error)) {
        *error = path + ":" + *error;
        return false;
    }
    const JsonValue *before = document.find("derived");
    if (before == nullptr || !before->isObject()) {
        *error = "--before file '" + path + "' has no derived object";
        return false;
    }
    for (const auto &[key, value] : before->members()) {
        if (key.rfind("speed.", 0) != 0 || !value.isNumber())
            continue;
        (*derived)["before." + key] = value.number();
    }

    static const std::string kAfterSuffix = ".requests_per_second";
    for (const auto &[key, value] : *derived) {
        if (key.rfind("speed.", 0) != 0)
            continue;
        if (key.size() < kAfterSuffix.size()
            || key.compare(key.size() - kAfterSuffix.size(),
                           kAfterSuffix.size(), kAfterSuffix)
                   != 0)
            continue;
        const auto old = derived->find("before." + key);
        if (old == derived->end() || old->second <= 0.0)
            continue;
        const std::string id = key.substr(
            6, key.size() - 6 - kAfterSuffix.size());
        (*derived)["speedup." + id] = value / old->second;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    SpeedOptions options;
    std::string error;
    if (!parseSpeedArgs(argc - 1, argv + 1, &options, &error)) {
        std::fprintf(stderr, "bench_sim_speed: %s\n", error.c_str());
        usage(argv[0]);
        return 2;
    }

    std::vector<RunRecord> records;
    std::map<std::string, double> derived;

    std::printf("%-24s%14s%14s%14s%12s%10s\n", "point", "req/kcyc",
                "sim-kcyc/s", "req/s", "allocs/req", "rss-MiB");
    for (const ProtocolKind kind : options.protocols) {
        for (const unsigned log2_blocks : options.sizes) {
        for (const unsigned sim_threads : options.threads) {
            SystemConfig config;
            config.protocol.numBlocks = 1ull << log2_blocks;
            if (options.channels != 0)
                config.dram.org.channels = options.channels;
            if (options.reqs != 0)
                config.totalRequests = options.reqs;
            if (options.seedSet)
                config.seed = options.seed;
            config.simThreads = sim_threads;
            config = normalizedProtocolConfig(kind, config);

            RunRecord record;
            record.point.index = records.size();
            record.point.kind = kind;
            record.point.workload = Workload::Random;
            record.point.config = config;
            record.point.id = std::string(protocolShortName(kind)) + "/b"
                + std::to_string(log2_blocks);
            if (options.channels != 0)
                record.point.id += "/c"
                    + std::to_string(options.channels);
            if (sim_threads > 1)
                record.point.id += "/t" + std::to_string(sim_threads);

            HostSpeed speed;
            record.metrics = runPoint(kind, config, &speed);

            const std::string prefix = "speed." + record.point.id + ".";
            derived[prefix + "wall_seconds"] = speed.wallSeconds;
            derived[prefix + "sim_cycles_per_second"] =
                speed.simCyclesPerSecond;
            derived[prefix + "requests_per_second"] =
                speed.requestsPerSecond;
            derived[prefix + "heap_allocs_per_request"] =
                speed.allocsPerRequest;
            derived[prefix + "peak_rss_mb"] = speed.peakRssMb;

            std::printf("%-24s%14.3f%14.1f%14.1f%12.1f%10.1f\n",
                        record.point.id.c_str(),
                        record.metrics.requestsPerKilocycle,
                        speed.simCyclesPerSecond / 1000.0,
                        speed.requestsPerSecond, speed.allocsPerRequest,
                        speed.peakRssMb);
            records.push_back(std::move(record));
        }
        }
    }

    if (!options.beforePath.empty()) {
        if (!importBefore(options.beforePath, &derived, &error)) {
            std::fprintf(stderr, "bench_sim_speed: %s\n", error.c_str());
            return 2;
        }
        for (const auto &[key, value] : derived) {
            if (key.rfind("speedup.", 0) == 0)
                std::printf("%-40s%8.2fx\n", key.c_str(), value);
        }
    }

    bool ok = true;
    if (!options.jsonPath.empty()) {
        const std::string doc =
            MetricsJson::document("bench_sim_speed", records, derived);
        ok = MetricsJson::writeFile(options.jsonPath, doc);
        if (!ok)
            std::fprintf(stderr,
                         "bench_sim_speed: cannot write '%s'\n",
                         options.jsonPath.c_str());
    }

    std::vector<std::string> problems;
    if (!sanityCheck(records, &problems)) {
        ok = false;
        for (const std::string &problem : problems)
            std::fprintf(stderr, "bench_sim_speed: SANITY: %s\n",
                         problem.c_str());
    }
    return ok ? 0 : 1;
}
