/**
 * @file
 * Ablation study on Palermo's design choices and environment knobs
 * (DESIGN.md §7): where the 2.4-2.8x actually comes from. Sweeps
 * per-PE issue width, on-chip PosMap3 latency, tree-top cache budget,
 * DRAM speed grade and channel count, and memory-controller queue
 * depth, reporting Palermo and RingORAM throughput side by side.
 */

#include <cstdio>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

namespace {

double
palermoThroughput(const SystemConfig &config)
{
    return runExperiment(ProtocolKind::Palermo, Workload::Random, config)
        .requestsPerKilocycle;
}

double
ringThroughput(const SystemConfig &config)
{
    return runExperiment(ProtocolKind::RingOram, Workload::Random,
                         config)
        .requestsPerKilocycle;
}

} // namespace

int
main()
{
    setVerbose(false);
    SystemConfig base = SystemConfig::benchDefault();
    base.totalRequests = std::min<std::uint64_t>(base.totalRequests, 1500);
    banner("Ablations -- where Palermo's speedup comes from",
           "design-choice sweeps beyond the paper's Fig. 14",
           base);
    const double palermo_base = palermoThroughput(base);
    const double ring_base = ringThroughput(base);
    std::printf("\nbaselines: Palermo %.3f, RingORAM %.3f "
                "misses/kilocycle (%.2fx)\n",
                palermo_base, ring_base, palermo_base / ring_base);

    std::printf("\n(1) per-PE issue width (DRAM enqueues/cycle)\n");
    head("width", {"Palermo(x)"});
    for (unsigned width : {1u, 2u, 4u, 8u}) {
        SystemConfig c = base;
        c.palermo.issuePerPe = width;
        row(std::to_string(width), {palermoThroughput(c) / palermo_base});
    }

    std::printf("\n(2) PosMap3 on-chip lookup latency (cycles)\n");
    head("latency", {"Palermo(x)"});
    for (unsigned latency : {1u, 4u, 16u, 64u}) {
        SystemConfig c = base;
        c.palermo.posmap3Latency = latency;
        row(std::to_string(latency),
            {palermoThroughput(c) / palermo_base});
    }

    std::printf("\n(3) tree-top cache budget (scale vs default)\n");
    head("scale", {"Palermo(x)", "Ring(x)"});
    for (unsigned scale : {0u, 1u, 4u, 16u}) {
        SystemConfig c = base;
        for (auto &bytes : c.protocol.treetopBytes)
            bytes *= scale;
        row(std::to_string(scale) + "x",
            {palermoThroughput(c) / palermo_base,
             ringThroughput(c) / ring_base});
    }

    std::printf("\n(4) DRAM configuration\n");
    head("dram", {"Palermo(x)", "Ring(x)"});
    {
        SystemConfig slow = base;
        slow.dram.timing = ddr4_2400();
        row("ddr4-2400", {palermoThroughput(slow) / palermo_base,
                          ringThroughput(slow) / ring_base});
    }
    for (unsigned channels : {1u, 2u, 4u}) {
        SystemConfig c = base;
        c.dram.org.channels = channels;
        char label[16];
        std::snprintf(label, sizeof(label), "%u-chan", channels);
        row(label, {palermoThroughput(c) / palermo_base,
                    ringThroughput(c) / ring_base});
    }

    std::printf("\n(5) memory-controller queue depth\n");
    head("depth", {"Palermo(x)"});
    for (unsigned depth : {8u, 16u, 32u, 64u}) {
        SystemConfig c = base;
        c.dram.queueDepth = depth;
        row(std::to_string(depth),
            {palermoThroughput(c) / palermo_base});
    }

    std::printf("\n(takeaway: Palermo's gain needs concurrency plumbing "
                "-- issue width, queue depth, channels -- while the\n"
                " serial baseline barely responds to them: the protocol "
                "dependencies, not the memory system, were the wall.)\n");
    return 0;
}
