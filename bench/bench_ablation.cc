/**
 * @file
 * Ablation study on Palermo's design choices and environment knobs
 * (DESIGN.md §7): where the 2.4-2.8x actually comes from. Sweeps
 * per-PE issue width, on-chip PosMap3 latency, tree-top cache budget,
 * DRAM speed grade and channel count, and memory-controller queue
 * depth, reporting Palermo and RingORAM throughput side by side.
 */

#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

namespace {

double
throughput(const bench::Harness &harness, const std::string &id)
{
    return harness.metrics(id).requestsPerKilocycle;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_ablation");
    SystemConfig base = SystemConfig::benchDefault();
    base.totalRequests = std::min<std::uint64_t>(base.totalRequests, 1500);
    banner("Ablations -- where Palermo's speedup comes from",
           "design-choice sweeps beyond the paper's Fig. 14",
           base);

    const std::vector<unsigned> widths = {1, 2, 4, 8};
    const std::vector<unsigned> latencies = {1, 4, 16, 64};
    const std::vector<unsigned> scales = {0, 1, 4, 16};
    const std::vector<unsigned> channel_counts = {1, 2, 4};
    const std::vector<unsigned> depths = {8, 16, 32, 64};

    // The whole grid is independent: queue everything, run one batch.
    harness.add(ProtocolKind::Palermo, Workload::Random, base,
                "palermo/base");
    harness.add(ProtocolKind::RingOram, Workload::Random, base,
                "ring/base");
    for (unsigned width : widths) {
        SystemConfig c = base;
        c.palermo.issuePerPe = width;
        harness.add(ProtocolKind::Palermo, Workload::Random, c,
                    "palermo/issue=" + std::to_string(width));
    }
    for (unsigned latency : latencies) {
        SystemConfig c = base;
        c.palermo.posmap3Latency = latency;
        harness.add(ProtocolKind::Palermo, Workload::Random, c,
                    "palermo/posmap3=" + std::to_string(latency));
    }
    for (unsigned scale : scales) {
        SystemConfig c = base;
        for (auto &bytes : c.protocol.treetopBytes)
            bytes *= scale;
        harness.add(ProtocolKind::Palermo, Workload::Random, c,
                    "palermo/treetop=" + std::to_string(scale) + "x");
        harness.add(ProtocolKind::RingOram, Workload::Random, c,
                    "ring/treetop=" + std::to_string(scale) + "x");
    }
    {
        SystemConfig slow = base;
        slow.dram.timing = ddr4_2400();
        harness.add(ProtocolKind::Palermo, Workload::Random, slow,
                    "palermo/ddr4-2400");
        harness.add(ProtocolKind::RingOram, Workload::Random, slow,
                    "ring/ddr4-2400");
    }
    for (unsigned channels : channel_counts) {
        SystemConfig c = base;
        c.dram.org.channels = channels;
        harness.add(ProtocolKind::Palermo, Workload::Random, c,
                    "palermo/ch=" + std::to_string(channels));
        harness.add(ProtocolKind::RingOram, Workload::Random, c,
                    "ring/ch=" + std::to_string(channels));
    }
    for (unsigned depth : depths) {
        SystemConfig c = base;
        c.dram.queueDepth = depth;
        harness.add(ProtocolKind::Palermo, Workload::Random, c,
                    "palermo/qdepth=" + std::to_string(depth));
    }
    harness.run();

    const double palermo_base = throughput(harness, "palermo/base");
    const double ring_base = throughput(harness, "ring/base");
    std::printf("\nbaselines: Palermo %.3f, RingORAM %.3f "
                "misses/kilocycle (%.2fx)\n",
                palermo_base, ring_base, palermo_base / ring_base);
    harness.derived("palermo_over_ring", palermo_base / ring_base);

    std::printf("\n(1) per-PE issue width (DRAM enqueues/cycle)\n");
    head("width", {"Palermo(x)"});
    for (unsigned width : widths)
        row(std::to_string(width),
            {throughput(harness, "palermo/issue=" + std::to_string(width))
             / palermo_base});

    std::printf("\n(2) PosMap3 on-chip lookup latency (cycles)\n");
    head("latency", {"Palermo(x)"});
    for (unsigned latency : latencies)
        row(std::to_string(latency),
            {throughput(harness,
                        "palermo/posmap3=" + std::to_string(latency))
             / palermo_base});

    std::printf("\n(3) tree-top cache budget (scale vs default)\n");
    head("scale", {"Palermo(x)", "Ring(x)"});
    for (unsigned scale : scales) {
        const std::string suffix =
            "treetop=" + std::to_string(scale) + "x";
        row(std::to_string(scale) + "x",
            {throughput(harness, "palermo/" + suffix) / palermo_base,
             throughput(harness, "ring/" + suffix) / ring_base});
    }

    std::printf("\n(4) DRAM configuration\n");
    head("dram", {"Palermo(x)", "Ring(x)"});
    row("ddr4-2400",
        {throughput(harness, "palermo/ddr4-2400") / palermo_base,
         throughput(harness, "ring/ddr4-2400") / ring_base});
    for (unsigned channels : channel_counts) {
        char label[16];
        std::snprintf(label, sizeof(label), "%u-chan", channels);
        const std::string suffix = "ch=" + std::to_string(channels);
        row(label,
            {throughput(harness, "palermo/" + suffix) / palermo_base,
             throughput(harness, "ring/" + suffix) / ring_base});
    }

    std::printf("\n(5) memory-controller queue depth\n");
    head("depth", {"Palermo(x)"});
    for (unsigned depth : depths)
        row(std::to_string(depth),
            {throughput(harness,
                        "palermo/qdepth=" + std::to_string(depth))
             / palermo_base});

    std::printf("\n(takeaway: Palermo's gain needs concurrency plumbing "
                "-- issue width, queue depth, channels -- while the\n"
                " serial baseline barely responds to them: the protocol "
                "dependencies, not the memory system, were the wall.)\n");
    return harness.finish();
}
