/**
 * @file
 * Figure 10 regeneration — the headline result. End-to-end speedup of
 * RingORAM, PageORAM, PrORAM (best prefetch length w/ Fat Tree),
 * IR-ORAM, Palermo-SW, Palermo, and Palermo+Prefetch (same pf as
 * PrORAM's pick) over the PathORAM baseline, across the Table II
 * workload mix, with the geometric mean.
 *
 * Paper bars (gmean): Ring 1.1x, Page 1.2x, PrORAM 1.7x, IR 1.1x,
 * Palermo-SW 1.2x, Palermo 2.4x, Palermo+Prefetch 3.1x.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/stats.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

namespace {

/** PrORAM's per-workload best prefetch length (paper: swept). */
unsigned
bestPrefetchFor(Workload workload, const SystemConfig &config,
                const RunMetrics &path_base)
{
    unsigned best_pf = 1;
    double best = 0.0;
    for (unsigned pf : {2u, 4u, 8u}) {
        SystemConfig c = config;
        c.protocol.prefetchLen = pf;
        c.protocol.fatTree = true;
        c.protocol.throttle = true;
        const RunMetrics m =
            runExperiment(ProtocolKind::PrOram, workload, c);
        const double speedup = speedupOver(path_base, m);
        if (speedup > best) {
            best = speedup;
            best_pf = pf;
        }
    }
    return best_pf;
}

} // namespace

int
main()
{
    setVerbose(false);
    SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 10 -- end-to-end speedup over PathORAM (Table II mix)",
           "gmean: Ring 1.1x Page 1.2x PrORAM 1.7x IR 1.1x "
           "Palermo-SW 1.2x Palermo 2.4x Palermo+Pf 3.1x",
           config);

    struct Bar
    {
        const char *name;
        ProtocolKind kind;
    };
    const Bar bars[] = {
        {"RingORAM", ProtocolKind::RingOram},
        {"PageORAM", ProtocolKind::PageOram},
        {"PrORAM", ProtocolKind::PrOram},
        {"IR-ORAM", ProtocolKind::IrOram},
        {"Palermo-SW", ProtocolKind::PalermoSw},
        {"Palermo", ProtocolKind::Palermo},
        {"Palermo+Pf", ProtocolKind::PalermoPrefetch},
    };

    std::printf("\n%-10s", "workload");
    for (const Bar &bar : bars)
        std::printf("%12s", bar.name);
    std::printf("%8s\n", "pf");

    std::map<std::string, std::vector<double>> speedups;
    double palermo_misses_per_s = 0.0;
    double ring_misses_per_s = 0.0;

    for (Workload workload : allWorkloads()) {
        const RunMetrics path_base =
            runExperiment(ProtocolKind::PathOram, workload, config);
        const unsigned pf = bestPrefetchFor(workload, config, path_base);

        std::printf("%-10s", workloadName(workload));
        for (const Bar &bar : bars) {
            SystemConfig c = config;
            if (bar.kind == ProtocolKind::PrOram) {
                c.protocol.prefetchLen = pf;
                c.protocol.fatTree = true;
                c.protocol.throttle = true;
            } else if (bar.kind == ProtocolKind::PalermoPrefetch) {
                // Same pf as PrORAM picks: identical LLC-miss traffic.
                c.protocol.prefetchLen = pf;
            }
            const RunMetrics m = runExperiment(bar.kind, workload, c);
            const double speedup = speedupOver(path_base, m);
            speedups[bar.name].push_back(speedup);
            std::printf("%11.2fx", speedup);
            if (bar.kind == ProtocolKind::Palermo)
                palermo_misses_per_s += m.missesPerSecond / 10;
            if (bar.kind == ProtocolKind::RingOram)
                ring_misses_per_s += m.missesPerSecond / 10;
        }
        std::printf("%8u\n", pf);
    }

    std::printf("%-10s", "gmean");
    for (const Bar &bar : bars)
        std::printf("%11.2fx", geomean(speedups[bar.name]));
    std::printf("\n");

    std::printf("\nabsolute throughput (paper: Palermo 3.8E6, RingORAM "
                "1.7E6 misses/s on the full testbed)\n");
    std::printf("Palermo : %.2e LLC misses/s\n", palermo_misses_per_s);
    std::printf("RingORAM: %.2e LLC misses/s\n", ring_misses_per_s);
    std::printf("Palermo/RingORAM = %.2fx (paper: 2.8x)\n",
                palermo_misses_per_s / ring_misses_per_s);
    return 0;
}
