/**
 * @file
 * Figure 10 regeneration — the headline result. End-to-end speedup of
 * RingORAM, PageORAM, PrORAM (best prefetch length w/ Fat Tree),
 * IR-ORAM, Palermo-SW, Palermo, and Palermo+Prefetch (same pf as
 * PrORAM's pick) over the PathORAM baseline, across the Table II
 * workload mix, with the geometric mean.
 *
 * Paper bars (gmean): Ring 1.1x, Page 1.2x, PrORAM 1.7x, IR 1.1x,
 * Palermo-SW 1.2x, Palermo 2.4x, Palermo+Prefetch 3.1x.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/stats.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

namespace {

std::string
pointId(const char *proto, Workload workload, unsigned pf = 0)
{
    std::string id = std::string(proto) + "/" + workloadName(workload);
    if (pf)
        id += "/pf=" + std::to_string(pf);
    return id;
}

/** PrORAM config at a forced prefetch length (Fig. 10 setup). */
SystemConfig
prConfig(const SystemConfig &base, unsigned pf)
{
    SystemConfig c = base;
    c.protocol.prefetchLen = pf;
    c.protocol.fatTree = true;
    c.protocol.throttle = true;
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig10");
    SystemConfig config = SystemConfig::benchDefault();
    banner("Fig. 10 -- end-to-end speedup over PathORAM (Table II mix)",
           "gmean: Ring 1.1x Page 1.2x PrORAM 1.7x IR 1.1x "
           "Palermo-SW 1.2x Palermo 2.4x Palermo+Pf 3.1x",
           config);

    // Batch 1: the PathORAM baselines plus PrORAM's prefetch-length
    // probe grid (the paper sweeps pf per workload and keeps the best).
    for (Workload workload : allWorkloads()) {
        harness.add(ProtocolKind::PathOram, workload, config,
                    pointId(protocolShortName(ProtocolKind::PathOram),
                            workload));
        // Aggressive prefetch lengths overflow PrORAM's stash — the
        // stash-pressure behavior the paper criticizes (§III-B, Fig. 4)
        // — so the probe grid is exempt from the overflow gate.
        for (unsigned pf : {2u, 4u, 8u})
            harness.add(ProtocolKind::PrOram, workload,
                        prConfig(config, pf), pointId("pr", workload, pf),
                        /*allow_stash_overflow=*/true);
    }
    harness.run();

    std::map<Workload, unsigned> best_pf;
    for (Workload workload : allWorkloads()) {
        const RunMetrics &base = harness.metrics(pointId("path", workload));
        unsigned best = 2;
        double best_speedup = 0.0;
        for (unsigned pf : {2u, 4u, 8u}) {
            const double speedup = speedupOver(
                base, harness.metrics(pointId("pr", workload, pf)));
            if (speedup > best_speedup) {
                best_speedup = speedup;
                best = pf;
            }
        }
        best_pf[workload] = best;
    }

    // The non-baseline bars, straight from the registry's Fig. 10
    // order: adding a protocol to the registry adds its bar here.
    std::vector<ProtocolKind> bars;
    for (ProtocolKind kind : allProtocolKinds())
        if (kind != ProtocolKind::PathOram)
            bars.push_back(kind);

    // Batch 2: every remaining Fig. 10 bar. Palermo+Prefetch uses the
    // pf PrORAM picked, so both see identical LLC-miss traffic.
    for (Workload workload : allWorkloads()) {
        for (ProtocolKind kind : bars) {
            if (kind == ProtocolKind::PrOram)
                continue; // Probed in batch 1.
            SystemConfig point_config = config;
            unsigned pf = 0;
            if (kind == ProtocolKind::PalermoPrefetch) {
                pf = best_pf[workload];
                point_config.protocol.prefetchLen = pf;
            }
            harness.add(kind, workload, point_config,
                        pointId(protocolShortName(kind), workload, pf));
        }
    }
    harness.run();

    std::printf("\n%-10s", "workload");
    for (ProtocolKind kind : bars)
        std::printf("%12s", protocolShortName(kind));
    std::printf("%8s\n", "pf");

    std::map<std::string, std::vector<double>> speedups;
    double palermo_misses_per_s = 0.0;
    double ring_misses_per_s = 0.0;

    for (Workload workload : allWorkloads()) {
        const RunMetrics &path_base =
            harness.metrics(pointId("path", workload));
        const unsigned pf = best_pf[workload];
        std::printf("%-10s", workloadName(workload));
        for (ProtocolKind kind : bars) {
            const char *proto = protocolShortName(kind);
            std::string id = pointId(proto, workload);
            if (kind == ProtocolKind::PrOram
                || kind == ProtocolKind::PalermoPrefetch)
                id = pointId(proto, workload, pf);
            const RunMetrics &m = harness.metrics(id);
            const double speedup = speedupOver(path_base, m);
            speedups[proto].push_back(speedup);
            std::printf("%11.2fx", speedup);
        }
        std::printf("%8u\n", pf);
        palermo_misses_per_s +=
            harness
                .metrics(pointId(
                    protocolShortName(ProtocolKind::Palermo), workload))
                .missesPerSecond
            / 10;
        ring_misses_per_s +=
            harness
                .metrics(pointId(
                    protocolShortName(ProtocolKind::RingOram), workload))
                .missesPerSecond
            / 10;
    }

    std::printf("%-10s", "gmean");
    for (ProtocolKind kind : bars) {
        const char *proto = protocolShortName(kind);
        const double gm = geomean(speedups[proto]);
        harness.derived(std::string("gmean/") + proto, gm);
        std::printf("%11.2fx", gm);
    }
    std::printf("\n");

    std::printf("\nabsolute throughput (paper: Palermo 3.8E6, RingORAM "
                "1.7E6 misses/s on the full testbed)\n");
    std::printf("Palermo : %.2e LLC misses/s\n", palermo_misses_per_s);
    std::printf("RingORAM: %.2e LLC misses/s\n", ring_misses_per_s);
    std::printf("Palermo/RingORAM = %.2fx (paper: 2.8x)\n",
                palermo_misses_per_s / ring_misses_per_s);
    harness.derived("misses_per_s/palermo", palermo_misses_per_s);
    harness.derived("misses_per_s/ring", ring_misses_per_s);
    harness.derived("palermo_over_ring",
                    palermo_misses_per_s / ring_misses_per_s);
    return harness.finish();
}
