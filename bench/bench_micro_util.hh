/**
 * @file
 * Shared main() for the google-benchmark micros. Translates the
 * repo-wide --json PATH flag into benchmark's own JSON reporter
 * (--benchmark_out=PATH --benchmark_out_format=json) so every bench
 * binary — figure and micro alike — answers to the same CI contract,
 * and rejects unrecognized flags with a nonzero exit so smoke jobs
 * catch typos.
 */

#ifndef PALERMO_BENCH_BENCH_MICRO_UTIL_HH
#define PALERMO_BENCH_BENCH_MICRO_UTIL_HH

#include <string>
#include <vector>

#include <benchmark/benchmark.h>

namespace palermo {
namespace bench {

/** Drop-in replacement for BENCHMARK_MAIN()'s body. */
inline int
microMain(int argc, char **argv)
{
    std::vector<std::string> storage;
    storage.reserve(static_cast<std::size_t>(argc) + 2);
    storage.emplace_back(argc > 0 ? argv[0] : "bench_micro");

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string path;
        if (arg == "--json" && i + 1 < argc) {
            path = argv[++i];
        } else if (arg.rfind("--json=", 0) == 0) {
            path = arg.substr(7);
        } else if (arg == "--jobs" && i + 1 < argc) {
            // Accepted for contract uniformity with the figure
            // benches; micros have no design-point grid to fan out.
            ++i;
            continue;
        } else if (arg.rfind("--jobs=", 0) == 0) {
            continue;
        } else {
            storage.push_back(arg);
            continue;
        }
        if (path == "-") {
            // benchmark_out can't target stdout; switch the console
            // reporter to JSON instead.
            storage.emplace_back("--benchmark_format=json");
        } else {
            storage.push_back("--benchmark_out=" + path);
            storage.emplace_back("--benchmark_out_format=json");
        }
    }

    std::vector<char *> args;
    args.reserve(storage.size());
    for (std::string &arg : storage)
        args.push_back(arg.data());
    int count = static_cast<int>(args.size());

    benchmark::Initialize(&count, args.data());
    if (benchmark::ReportUnrecognizedArguments(count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace bench
} // namespace palermo

#endif // PALERMO_BENCH_BENCH_MICRO_UTIL_HH
