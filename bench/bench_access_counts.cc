/**
 * @file
 * §II / §III-E audit: how many DRAM accesses one LLC miss becomes under
 * the paper's full 16 GB Table III geometry. Paper: PathORAM ~576,
 * RingORAM ~470 accesses per miss (and RingORAM's reduction buys only
 * ~10% end-to-end because of dependency stalls — the motivation for
 * Palermo). The lazy tree/posmap make the 16 GB geometry constructible.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

namespace {

template <typename Protocol>
double
opsPerAccess(Protocol &oram, std::uint64_t space, int n)
{
    Rng rng(1);
    std::uint64_t ops = 0;
    for (int i = 0; i < n; ++i) {
        const auto plans = oram.access(rng.range(space), false, 0);
        for (const auto &plan : plans)
            ops += plan.readOps() + plan.writeOps();
    }
    return static_cast<double>(ops) / n;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_access_counts");
    std::printf("====================================================\n");
    std::printf("S-II audit -- DRAM accesses per LLC miss (16 GB "
                "protected space, Table III)\n");
    std::printf("paper: PathORAM ~576, RingORAM ~470\n");
    std::printf("----------------------------------------------------\n");

    ProtocolConfig config;
    config.numBlocks = 1ull << 28; // 16 GB of 64B lines.
    config.treetopBytes = {256 * 1024, 256 * 1024, 256 * 1024};

    const int n = 200;
    PathOram path(config);
    const double path_ops = opsPerAccess(path, config.numBlocks, n);
    RingOram ring(config);
    const double ring_ops = opsPerAccess(ring, config.numBlocks, n);

    std::printf("%-12s%18s\n", "protocol", "accesses/miss");
    std::printf("%-12s%18.1f\n", "PathORAM", path_ops);
    std::printf("%-12s%18.1f\n", "RingORAM", ring_ops);
    std::printf("RingORAM reduction: %.1f%%\n",
                (1.0 - ring_ops / path_ops) * 100);
    harness.derived("accesses_per_miss/path", path_ops);
    harness.derived("accesses_per_miss/ring", ring_ops);
    harness.derived("ring_reduction", 1.0 - ring_ops / path_ops);

    std::printf("\nend-to-end check at bench geometry "
                "(paper S-III-E: Ring only ~10%% faster than Path "
                "despite the traffic cut):\n");
    SystemConfig sys = SystemConfig::benchDefault();
    sys.totalRequests = std::min<std::uint64_t>(sys.totalRequests, 1200);
    harness.add(ProtocolKind::PathOram, Workload::Mcf, sys, "path/mcf");
    harness.add(ProtocolKind::RingOram, Workload::Mcf, sys, "ring/mcf");
    harness.run();
    const double end_to_end = speedupOver(harness.metrics("path/mcf"),
                                          harness.metrics("ring/mcf"));
    std::printf("RingORAM speedup over PathORAM (mcf): %.2fx\n",
                end_to_end);
    harness.derived("ring_end_to_end_speedup", end_to_end);

    // The access-count audit itself is a sanity check: RingORAM must
    // actually reduce per-miss traffic or the model is broken.
    if (!(path_ops > 0.0) || !(ring_ops > 0.0) || ring_ops >= path_ops) {
        std::fprintf(stderr, "bench_access_counts: SANITY: RingORAM "
                             "traffic not below PathORAM\n");
        harness.finish();
        return 1;
    }
    return harness.finish();
}
