/**
 * @file
 * §II / §III-E audit: how many DRAM accesses one LLC miss becomes under
 * the paper's full 16 GB Table III geometry. Paper: PathORAM ~576,
 * RingORAM ~470 accesses per miss (and RingORAM's reduction buys only
 * ~10% end-to-end because of dependency stalls — the motivation for
 * Palermo). The lazy tree/posmap make the 16 GB geometry constructible.
 */

#include <cstdio>

#include "common/log.hh"
#include "common/rng.hh"
#include "oram/path_oram.hh"
#include "oram/ring_oram.hh"
#include "sim/experiment.hh"

using namespace palermo;

namespace {

template <typename Protocol>
double
opsPerAccess(Protocol &oram, std::uint64_t space, int n)
{
    Rng rng(1);
    std::uint64_t ops = 0;
    for (int i = 0; i < n; ++i) {
        const auto plans = oram.access(rng.range(space), false, 0);
        for (const auto &plan : plans)
            ops += plan.readOps() + plan.writeOps();
    }
    return static_cast<double>(ops) / n;
}

} // namespace

int
main()
{
    setVerbose(false);
    std::printf("====================================================\n");
    std::printf("S-II audit -- DRAM accesses per LLC miss (16 GB "
                "protected space, Table III)\n");
    std::printf("paper: PathORAM ~576, RingORAM ~470\n");
    std::printf("----------------------------------------------------\n");

    ProtocolConfig config;
    config.numBlocks = 1ull << 28; // 16 GB of 64B lines.
    config.treetopBytes = {256 * 1024, 256 * 1024, 256 * 1024};

    const int n = 200;
    PathOram path(config);
    const double path_ops = opsPerAccess(path, config.numBlocks, n);
    RingOram ring(config);
    const double ring_ops = opsPerAccess(ring, config.numBlocks, n);

    std::printf("%-12s%18s\n", "protocol", "accesses/miss");
    std::printf("%-12s%18.1f\n", "PathORAM", path_ops);
    std::printf("%-12s%18.1f\n", "RingORAM", ring_ops);
    std::printf("RingORAM reduction: %.1f%%\n",
                (1.0 - ring_ops / path_ops) * 100);

    std::printf("\nend-to-end check at bench geometry "
                "(paper S-III-E: Ring only ~10%% faster than Path "
                "despite the traffic cut):\n");
    SystemConfig sys = SystemConfig::benchDefault();
    sys.totalRequests = std::min<std::uint64_t>(sys.totalRequests, 1200);
    const RunMetrics pm =
        runExperiment(ProtocolKind::PathOram, Workload::Mcf, sys);
    const RunMetrics rm =
        runExperiment(ProtocolKind::RingOram, Workload::Mcf, sys);
    std::printf("RingORAM speedup over PathORAM (mcf): %.2fx\n",
                speedupOver(pm, rm));
    return 0;
}
