/**
 * @file
 * Shared helpers for the figure-regeneration benches: consistent
 * headers, table formatting, and the paper-reference annotations that
 * EXPERIMENTS.md cross-checks.
 */

#ifndef PALERMO_BENCH_BENCH_UTIL_HH
#define PALERMO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/system_config.hh"
#include "trace/trace_gen.hh"

namespace palermo {
namespace bench {

/** Print the standard bench banner with the live configuration. */
inline void
banner(const char *figure, const char *claim, const SystemConfig &config)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n", figure);
    std::printf("paper: %s\n", claim);
    std::printf("-------------------------------------------------"
                "-----------------------------\n");
    std::printf("%s", config.describe().c_str());
    std::printf("-------------------------------------------------"
                "-----------------------------\n");
}

/** Print one row of right-aligned numeric cells after a label. */
inline void
row(const std::string &label, const std::vector<double> &cells,
    const char *fmt = "%10.2f")
{
    std::printf("%-14s", label.c_str());
    for (double cell : cells)
        std::printf(fmt, cell);
    std::printf("\n");
}

/** Print a header row of right-aligned column names. */
inline void
head(const std::string &label, const std::vector<std::string> &names)
{
    std::printf("%-14s", label.c_str());
    for (const auto &name : names)
        std::printf("%10s", name.c_str());
    std::printf("\n");
}

/** The four workloads the paper's deep-dive figures use. */
inline std::vector<Workload>
deepDiveWorkloads()
{
    return {Workload::Mcf, Workload::PageRank, Workload::Llm,
            Workload::Redis};
}

} // namespace bench
} // namespace palermo

#endif // PALERMO_BENCH_BENCH_UTIL_HH
