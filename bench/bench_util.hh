/**
 * @file
 * Shared helpers for the figure-regeneration benches: consistent
 * headers, table formatting, the paper-reference annotations that
 * EXPERIMENTS.md cross-checks, and the Harness that runs every bench's
 * design points through the sweep runner so each binary emits the same
 * machine-readable JSON (--json) and sanity-gated exit status.
 */

#ifndef PALERMO_BENCH_BENCH_UTIL_HH
#define PALERMO_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/log.hh"
#include "sim/metrics_json.hh"
#include "sim/protocol_registry.hh"
#include "sim/sweep.hh"
#include "sim/system_config.hh"
#include "trace/trace_gen.hh"

namespace palermo {
namespace bench {

/** Print the standard bench banner with the live configuration. */
inline void
banner(const char *figure, const char *claim, const SystemConfig &config)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n", figure);
    std::printf("paper: %s\n", claim);
    std::printf("-------------------------------------------------"
                "-----------------------------\n");
    std::printf("%s", config.describe().c_str());
    std::printf("-------------------------------------------------"
                "-----------------------------\n");
}

/** Print one row of right-aligned numeric cells after a label. */
inline void
row(const std::string &label, const std::vector<double> &cells,
    const char *fmt = "%10.2f")
{
    std::printf("%-14s", label.c_str());
    for (double cell : cells)
        std::printf(fmt, cell);
    std::printf("\n");
}

/** Print a header row of right-aligned column names. */
inline void
head(const std::string &label, const std::vector<std::string> &names)
{
    std::printf("%-14s", label.c_str());
    for (const auto &name : names)
        std::printf("%10s", name.c_str());
    std::printf("\n");
}

/** The four workloads the paper's deep-dive figures use. */
inline std::vector<Workload>
deepDiveWorkloads()
{
    return {Workload::Mcf, Workload::PageRank, Workload::Llm,
            Workload::Redis};
}

/** Options every bench binary accepts. */
struct BenchOptions
{
    std::string jsonPath; ///< --json PATH ("-" = stdout).
    unsigned jobs = 1;    ///< --jobs N sweep-runner threads.
};

/**
 * Parse bench argv: --json PATH, --jobs N, --help. Unknown flags are
 * fatal so CI catches typos. Exits directly on --help.
 */
inline BenchOptions
parseBenchArgs(int argc, char **argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::size_t eq = arg.find('=');
        const std::string name =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        const auto value = [&]() -> std::string {
            if (eq != std::string::npos)
                return arg.substr(eq + 1);
            if (i + 1 >= argc)
                fatal("flag '%s' needs a value", name.c_str());
            return argv[++i];
        };
        if (name == "--help" || name == "-h") {
            std::printf("usage: %s [--json PATH] [--jobs N]\n",
                        argv[0]);
            std::printf("  --json PATH  write palermo-metrics-v1 JSON "
                        "('-' = stdout)\n");
            std::printf("  --jobs N     run design points on N threads "
                        "(default 1)\n");
            std::exit(0);
        } else if (name == "--json") {
            options.jsonPath = value();
        } else if (name == "--jobs" || name == "-j") {
            const std::string text = value();
            std::uint64_t jobs = 0;
            if (!parseUnsigned(text, &jobs) || jobs == 0)
                fatal("--jobs needs a positive integer, got '%s'",
                      text.c_str());
            options.jobs = static_cast<unsigned>(jobs);
        } else {
            fatal("unknown flag '%s' (try --help)", name.c_str());
        }
    }
    return options;
}

/**
 * Destination for a bench's --json document. For a file path this is
 * a plain write at the end of the run; for "-" the constructor
 * duplicates stdout for the JSON and redirects the process's table
 * output to stderr, so stdout carries pure JSON (pipeline-safe, and
 * consistent with the micro benches' --benchmark_format=json).
 */
class JsonSink
{
  public:
    explicit JsonSink(const std::string &path) : path_(path)
    {
        if (path_ != "-")
            return;
        std::fflush(stdout);
        fd_ = ::dup(::fileno(stdout));
        if (fd_ < 0 || ::dup2(::fileno(stderr), ::fileno(stdout)) < 0)
            fatal("cannot redirect tables for --json -");
    }

    bool enabled() const { return !path_.empty(); }

    /** Write the finished document; returns false on I/O failure. */
    bool
    write(const std::string &doc)
    {
        if (fd_ < 0)
            return MetricsJson::writeFile(path_, doc);
        std::fflush(stdout);
        std::size_t off = 0;
        bool ok = true;
        while (off < doc.size()) {
            const ssize_t n =
                ::write(fd_, doc.data() + off, doc.size() - off);
            if (n <= 0) {
                ok = false;
                break;
            }
            off += static_cast<std::size_t>(n);
        }
        ::close(fd_);
        fd_ = -1;
        return ok;
    }

  private:
    std::string path_;
    int fd_ = -1; ///< Duplicated stdout when path is "-".
};

/**
 * The bench-side experiment harness. Benches queue design points with
 * stable ids, run() them in batches through the SweepRunner (batching
 * lets later points depend on earlier results), look results up by id
 * to print their tables, and finish() to emit JSON plus the sanity-
 * gated exit code. All measurement goes through this class — no bench
 * calls runExperiment directly — so every binary shares --json output
 * and CI gating for free.
 */
class Harness
{
  public:
    Harness(int argc, char **argv, const char *tool)
        : tool_(tool), options_(parseBenchArgs(argc, argv)),
          sink_(options_.jsonPath)
    {
    }

    /**
     * Queue a design point under a unique id for later lookup.
     * @param allow_stash_overflow Exempt from the overflow sanity gate
     *        (for experiments that force stash pressure on purpose).
     */
    void
    add(ProtocolKind kind, Workload workload, const SystemConfig &config,
        const std::string &id, bool allow_stash_overflow = false)
    {
        palermo_assert(index_.find(id) == index_.end(),
                       "duplicate design-point id");
        for (const DesignPoint &queued : pending_)
            palermo_assert(queued.id != id, "duplicate queued id");
        DesignPoint point;
        point.index = records_.size() + pending_.size();
        point.kind = kind;
        point.workload = workload;
        // Record what will actually run (capability clamp + the
        // descriptor's config-adjust hook), not the caller's copy.
        point.config = normalizedProtocolConfig(kind, config);
        point.id = id;
        point.allowStashOverflow = allow_stash_overflow;
        pending_.push_back(std::move(point));
    }

    /** Run all queued points; records accumulate across batches. */
    void
    run()
    {
        const std::vector<RunRecord> batch =
            SweepRunner(options_.jobs).run(pending_);
        pending_.clear();
        for (const RunRecord &record : batch) {
            index_[record.point.id] = records_.size();
            records_.push_back(record);
        }
    }

    /** Queue-and-run shorthand for a single dependent point. */
    const RunMetrics &
    runOne(ProtocolKind kind, Workload workload,
           const SystemConfig &config, const std::string &id)
    {
        add(kind, workload, config, id);
        run();
        return metrics(id);
    }

    /** Metrics of a completed point (fatal on unknown ids). */
    const RunMetrics &
    metrics(const std::string &id) const
    {
        const auto it = index_.find(id);
        if (it == index_.end())
            fatal("no design point '%s' has run", id.c_str());
        return records_[it->second].metrics;
    }

    /** Full record of a completed point. */
    const RunRecord &
    record(const std::string &id) const
    {
        const auto it = index_.find(id);
        if (it == index_.end())
            fatal("no design point '%s' has run", id.c_str());
        return records_[it->second];
    }

    const std::vector<RunRecord> &records() const { return records_; }

    /** Register a cross-point scalar for the JSON "derived" map. */
    void
    derived(const std::string &name, double value)
    {
        derived_[name] = value;
    }

    unsigned jobs() const { return options_.jobs; }

    /**
     * Emit JSON if requested and run the sanity gate. Returns the
     * process exit code: 0 clean, 1 on stash overflow / degenerate
     * measurements / JSON write failure.
     */
    int
    finish()
    {
        bool ok = true;
        if (sink_.enabled())
            ok = sink_.write(
                MetricsJson::document(tool_, records_, derived_));
        std::vector<std::string> problems;
        if (!sanityCheck(records_, &problems)) {
            ok = false;
            for (const std::string &problem : problems)
                std::fprintf(stderr, "%s: SANITY: %s\n", tool_.c_str(),
                             problem.c_str());
        }
        return ok ? 0 : 1;
    }

  private:
    std::string tool_;
    BenchOptions options_;
    JsonSink sink_;
    std::vector<DesignPoint> pending_;
    std::vector<RunRecord> records_;
    std::map<std::string, std::size_t> index_;
    std::map<std::string, double> derived_;
};

} // namespace bench
} // namespace palermo

#endif // PALERMO_BENCH_BENCH_UTIL_HH
