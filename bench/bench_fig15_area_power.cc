/**
 * @file
 * Figure 15 regeneration: area and power of the full Palermo ORAM
 * controller from the analytical 28nm model (substituting the paper's
 * Synopsys DC + CACTI flow; DESIGN.md item 18). Paper totals:
 * 5.78 mm^2 and 2.14 W at 1.6 GHz, dominated by the on-chip memories.
 * Also prints the scaling the RTL flow would explore: PE columns and
 * tree-top capacity.
 */

#include <cstdio>

#include "power/area_power.hh"

using namespace palermo;

int
main()
{
    std::printf("====================================================\n");
    std::printf("Fig. 15 -- Palermo controller area & power (28nm)\n");
    std::printf("paper: 5.78 mm^2, 2.14 W at 1.6 GHz\n");
    std::printf("----------------------------------------------------\n");

    const ControllerFloorplan plan; // Table III floorplan.
    const AreaPowerEstimate est = estimateController(plan);
    std::printf("%-22s%12s%12s\n", "component", "area(mm^2)", "power(W)");
    for (const auto &component : est.components) {
        std::printf("%-22s%12.3f%12.3f\n", component.name.c_str(),
                    component.areaMm2, component.powerW);
    }
    std::printf("%-22s%12.3f%12.3f\n", "TOTAL", est.totalAreaMm2(),
                est.totalPowerW());

    std::printf("\nscaling: PE columns (3 rows each)\n");
    std::printf("%-10s%14s%14s\n", "columns", "area(mm^2)", "power(W)");
    for (unsigned columns : {1u, 4u, 8u, 16u, 32u}) {
        ControllerFloorplan p = plan;
        p.peColumns = columns;
        const AreaPowerEstimate e = estimateController(p);
        std::printf("%-10u%14.3f%14.3f\n", columns, e.totalAreaMm2(),
                    e.totalPowerW());
    }

    std::printf("\nscaling: tree-top cache capacity (total)\n");
    std::printf("%-10s%14s%14s\n", "KB", "area(mm^2)", "power(W)");
    for (unsigned kb : {192u, 384u, 768u, 1536u}) {
        ControllerFloorplan p = plan;
        p.treetopBytesTotal = static_cast<std::uint64_t>(kb) * 1024;
        const AreaPowerEstimate e = estimateController(p);
        std::printf("%-10u%14.3f%14.3f\n", kb, e.totalAreaMm2(),
                    e.totalPowerW());
    }

    std::printf("\n(comparison: the Phantom FPGA controller [13,30] "
                "runs at 200 MHz and exceeds 20 mm^2.)\n");
    return 0;
}
