/**
 * @file
 * Figure 15 regeneration: area and power of the full Palermo ORAM
 * controller from the analytical 28nm model (substituting the paper's
 * Synopsys DC + CACTI flow; DESIGN.md item 18). Paper totals:
 * 5.78 mm^2 and 2.14 W at 1.6 GHz, dominated by the on-chip memories.
 * Also prints the scaling the RTL flow would explore: PE columns and
 * tree-top capacity.
 *
 * This bench runs no simulation, so instead of metrics-v1 points its
 * --json document carries the component table and both scaling sweeps.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"
#include "power/area_power.hh"
#include "sim/metrics_json.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    const BenchOptions options = parseBenchArgs(argc, argv);
    JsonSink sink(options.jsonPath);
    std::printf("====================================================\n");
    std::printf("Fig. 15 -- Palermo controller area & power (28nm)\n");
    std::printf("paper: 5.78 mm^2, 2.14 W at 1.6 GHz\n");
    std::printf("----------------------------------------------------\n");

    const ControllerFloorplan plan; // Table III floorplan.
    const AreaPowerEstimate est = estimateController(plan);
    std::printf("%-22s%12s%12s\n", "component", "area(mm^2)", "power(W)");
    for (const auto &component : est.components) {
        std::printf("%-22s%12.3f%12.3f\n", component.name.c_str(),
                    component.areaMm2, component.powerW);
    }
    std::printf("%-22s%12.3f%12.3f\n", "TOTAL", est.totalAreaMm2(),
                est.totalPowerW());

    const std::vector<unsigned> column_points = {1, 4, 8, 16, 32};
    const std::vector<unsigned> kb_points = {192, 384, 768, 1536};

    std::printf("\nscaling: PE columns (3 rows each)\n");
    std::printf("%-10s%14s%14s\n", "columns", "area(mm^2)", "power(W)");
    std::vector<AreaPowerEstimate> by_columns;
    for (unsigned columns : column_points) {
        ControllerFloorplan p = plan;
        p.peColumns = columns;
        by_columns.push_back(estimateController(p));
        std::printf("%-10u%14.3f%14.3f\n", columns,
                    by_columns.back().totalAreaMm2(),
                    by_columns.back().totalPowerW());
    }

    std::printf("\nscaling: tree-top cache capacity (total)\n");
    std::printf("%-10s%14s%14s\n", "KB", "area(mm^2)", "power(W)");
    std::vector<AreaPowerEstimate> by_kb;
    for (unsigned kb : kb_points) {
        ControllerFloorplan p = plan;
        p.treetopBytesTotal = static_cast<std::uint64_t>(kb) * 1024;
        by_kb.push_back(estimateController(p));
        std::printf("%-10u%14.3f%14.3f\n", kb,
                    by_kb.back().totalAreaMm2(),
                    by_kb.back().totalPowerW());
    }

    std::printf("\n(comparison: the Phantom FPGA controller [13,30] "
                "runs at 200 MHz and exceeds 20 mm^2.)\n");

    if (sink.enabled()) {
        JsonWriter w;
        w.beginObject();
        MetricsJson::writeHeader(w, "bench_fig15",
                                 "palermo-areapower-v1");
        w.key("components").beginArray();
        for (const auto &component : est.components) {
            w.beginObject();
            w.field("name", component.name);
            w.field("area_mm2", component.areaMm2);
            w.field("power_w", component.powerW);
            w.endObject();
        }
        w.endArray();
        w.field("total_area_mm2", est.totalAreaMm2());
        w.field("total_power_w", est.totalPowerW());
        w.key("pe_column_scaling").beginArray();
        for (std::size_t i = 0; i < column_points.size(); ++i) {
            w.beginObject();
            w.field("columns", column_points[i]);
            w.field("area_mm2", by_columns[i].totalAreaMm2());
            w.field("power_w", by_columns[i].totalPowerW());
            w.endObject();
        }
        w.endArray();
        w.key("treetop_scaling").beginArray();
        for (std::size_t i = 0; i < kb_points.size(); ++i) {
            w.beginObject();
            w.field("kb", kb_points[i]);
            w.field("area_mm2", by_kb[i].totalAreaMm2());
            w.field("power_w", by_kb[i].totalPowerW());
            w.endObject();
        }
        w.endArray();
        w.endObject();
        std::string doc = w.str();
        doc.push_back('\n');
        if (!sink.write(doc))
            return 1;
    }

    // Sanity gate: the analytical model must produce positive, finite
    // totals or downstream figures are garbage.
    if (!std::isfinite(est.totalAreaMm2()) || est.totalAreaMm2() <= 0.0
        || !std::isfinite(est.totalPowerW())
        || est.totalPowerW() <= 0.0) {
        std::fprintf(stderr,
                     "bench_fig15: SANITY: degenerate area/power\n");
        return 1;
    }
    return 0;
}
