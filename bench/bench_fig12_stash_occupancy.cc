/**
 * @file
 * Figure 12 regeneration: Palermo data-stash occupancy sampled per 1%
 * of execution. Paper: even with concurrency the stash stays bounded —
 * maxima of 234/237/228/236 for mcf/pr/llm/redis against the 256-entry
 * on-chip capacity, because EP stays serialized after RP.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "sim/experiment.hh"

using namespace palermo;
using namespace palermo::bench;

int
main(int argc, char **argv)
{
    setVerbose(false);
    Harness harness(argc, argv, "bench_fig12");
    SystemConfig config = SystemConfig::benchDefault();
    config.totalRequests = std::max<std::uint64_t>(
        config.totalRequests, 4000);
    banner("Fig. 12 -- Palermo stash occupancy over time",
           "sampled maxima stay bounded below the 256-entry capacity "
           "(paper: 228-237)",
           config);

    for (Workload workload : deepDiveWorkloads())
        harness.add(ProtocolKind::Palermo, workload, config,
                    std::string("palermo/") + workloadName(workload));
    harness.run();

    std::printf("\n%-10s%12s%12s%12s%12s%12s\n", "workload", "samp-p25",
                "samp-p50", "samp-p75", "max", "capacity");
    for (Workload workload : deepDiveWorkloads()) {
        const RunMetrics &m = harness.metrics(
            std::string("palermo/") + workloadName(workload));
        std::vector<std::size_t> samples = m.stashSamples;
        std::sort(samples.begin(), samples.end());
        const auto pct = [&](double p) {
            if (samples.empty())
                return std::size_t{0};
            return samples[std::min(samples.size() - 1,
                                    static_cast<std::size_t>(
                                        p * samples.size()))];
        };
        std::printf("%-10s%12zu%12zu%12zu%12zu%12zu\n",
                    workloadName(workload), pct(0.25), pct(0.50),
                    pct(0.75), m.stashMax, m.stashCapacity);
        if (m.stashOverflowed)
            std::printf("  !! stash overflowed -- bound violated\n");
    }
    std::printf("\n(every sample is the window high-watermark over 1%% "
                "of served requests)\n");
    return harness.finish();
}
