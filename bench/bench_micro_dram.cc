/**
 * @file
 * google-benchmark micros for the DDR4 model hot paths: tick cost when
 * idle/loaded and sustained enqueue->completion throughput under
 * streaming and random traffic.
 */

#include <benchmark/benchmark.h>

#include "bench_micro_util.hh"

#include "common/rng.hh"
#include "mem/dram_system.hh"

using namespace palermo;

namespace {

DramConfig
benchConfig()
{
    DramConfig config;
    config.org.rows = 1u << 12;
    return config;
}

void
BM_DramIdleTick(benchmark::State &state)
{
    DramSystem dram(benchConfig());
    for (auto _ : state)
        dram.tick();
}
BENCHMARK(BM_DramIdleTick);

void
BM_DramLoadedTick(benchmark::State &state)
{
    DramSystem dram(benchConfig());
    Rng rng(1);
    std::uint64_t issued = 0;
    const std::uint64_t lines =
        benchConfig().org.capacityBytes() / kBlockBytes;
    for (auto _ : state) {
        while (dram.enqueue(rng.range(lines) * kBlockBytes, false,
                            issued)) {
            ++issued;
        }
        dram.tick();
        benchmark::DoNotOptimize(dram.drainCompletions());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(issued));
}
BENCHMARK(BM_DramLoadedTick);

void
BM_DramStreamingThroughput(benchmark::State &state)
{
    for (auto _ : state) {
        DramSystem dram(benchConfig());
        Addr addr = 0;
        std::uint64_t done = 0;
        std::uint64_t issued = 0;
        while (done < 1000) {
            while (issued < 1000 && dram.enqueue(addr, false, issued)) {
                addr += kBlockBytes;
                ++issued;
            }
            dram.tick();
            done += dram.drainCompletions().size();
        }
        benchmark::DoNotOptimize(done);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_DramStreamingThroughput);

void
BM_AddressDecode(benchmark::State &state)
{
    const AddressMap map(benchConfig().org);
    Rng rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(map.decode(rng.next() & 0x3FFFFFFFF));
}
BENCHMARK(BM_AddressDecode);

} // namespace

int
main(int argc, char **argv)
{
    return palermo::bench::microMain(argc, argv);
}
