/**
 * @file
 * palermo_scenario: run a declarative multi-tenant scenario.
 *
 * Loads a scenario JSON file (see src/scenario/scenario.hh for the
 * schema), expands every tenant's traffic into one deterministic
 * arrival sequence merged in simulated time, drives a shared
 * ObliviousKvService over one SimSession, and reports per-tenant
 * latency/throughput, Jain fairness, slowdown-vs-isolation
 * interference, and the uniformity/mutual-information security gates
 * on the merged attacker-visible leaf sequence.
 *
 * Exit status: 0 on success, 1 on engine/sanity/security or I/O
 * failure, 2 on usage/scenario-format errors.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "scenario/engine.hh"
#include "scenario/scenario.hh"
#include "scenario/scenario_cli.hh"
#include "sim/metrics_json.hh"
#include "sim/run_cli.hh"

using namespace palermo;

int
main(int argc, char **argv)
{
    setVerbose(false);

    ScenarioCliOptions options;
    std::string error;
    if (!parseScenarioCliArgs(argc - 1, argv + 1, &options, &error)) {
        std::fprintf(stderr, "palermo_scenario: %s\n\n%s",
                     error.c_str(), scenarioUsage().c_str());
        return 2;
    }
    if (options.help) {
        std::fputs(scenarioUsage().c_str(), stdout);
        return 0;
    }
    if (options.listProtocols) {
        std::fputs(protocolListing().c_str(), stdout);
        return 0;
    }
    if (options.scenarioPath.empty()) {
        std::fprintf(stderr,
                     "palermo_scenario: a scenario file is "
                     "required\n\n%s",
                     scenarioUsage().c_str());
        return 2;
    }

    ScenarioSpec spec;
    if (!loadScenarioFile(options.scenarioPath, &spec, &error)) {
        std::fprintf(stderr, "palermo_scenario: %s\n", error.c_str());
        return 2;
    }

    ScenarioOutcome outcome;
    if (!runScenario(spec, options.runOptions(), &outcome, &error)) {
        std::fprintf(stderr, "palermo_scenario: %s\n", error.c_str());
        return 1;
    }

    std::FILE *table = options.jsonPath == "-" ? stderr : stdout;
    std::fputs(scenarioTable(outcome).c_str(), table);

    bool ok = true;
    if (!options.jsonPath.empty())
        ok = MetricsJson::writeFile(
            options.jsonPath,
            scenarioDocument(outcome, "palermo_scenario"));

    std::vector<std::string> problems;
    if (!scenarioSanityCheck(outcome, &problems)) {
        ok = false;
        for (const std::string &problem : problems)
            std::fprintf(stderr, "palermo_scenario: SANITY: %s\n",
                         problem.c_str());
    }
    return ok ? 0 : 1;
}
