/**
 * @file
 * palermo_loadgen: open/closed-loop load generation against the
 * oblivious KV serving layer.
 *
 * Each design point (one --openloop rate or one --closedloop
 * concurrency) runs a fresh ObliviousKvService to completion and
 * prints one table row; --json renders the whole sweep as a
 * palermo-metrics-v1 document whose bytes are a deterministic
 * function of the flags (identical across repeat runs and across
 * --sim-threads values). A rate sweep therefore yields a
 * throughput-vs-tail-latency saturation curve from one invocation.
 *
 * Exit status: 0 on success, 1 on sanity-gate or I/O failure, 2 on
 * usage errors.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/wall_rate.hh"
#include "service/loadgen.hh"
#include "sim/run_cli.hh"

using namespace palermo;

int
main(int argc, char **argv)
{
    setVerbose(false);

    LoadgenOptions options;
    std::string error;
    if (!parseLoadgenArgs(argc - 1, argv + 1, &options, &error)) {
        std::fprintf(stderr, "palermo_loadgen: %s\n\n%s", error.c_str(),
                     loadgenUsage().c_str());
        return 2;
    }
    if (options.help) {
        std::fputs(loadgenUsage().c_str(), stdout);
        return 0;
    }
    if (options.listProtocols) {
        std::fputs(protocolListing().c_str(), stdout);
        return 0;
    }

    const std::vector<LoadPointSpec> points = expandLoadPoints(options);

    std::FILE *table = options.jsonPath == "-" ? stderr : stdout;
    std::fprintf(table, "%-40s%12s%12s%10s%10s%10s\n", "point",
                 "ach/kcyc", "off/kcyc", "lat-p50", "lat-p99",
                 "rejected");

    std::vector<ServiceRunRecord> records;
    records.reserve(points.size());
    WallRateMeter wall;
    std::uint64_t wall_completed = 0;
    for (const LoadPointSpec &spec : points) {
        ServiceRunRecord record = runLoadPoint(options, spec);
        const ServiceScopeSnapshot &global = record.service.global;
        std::fprintf(table, "%-40s%12.3f%12.3f%10.0f%10.0f%10llu\n",
                     record.base.point.id.c_str(),
                     record.service.achievedPerKilocycle,
                     record.service.offeredPerKilocycle,
                     global.latency.quantile(0.50),
                     global.latency.quantile(0.99),
                     static_cast<unsigned long long>(global.rejected));
        if (options.progress) {
            // Wall-clock throughput (reporting only — never in JSON),
            // so --sim-threads scaling is visible across the sweep.
            wall_completed += global.completed;
            std::fprintf(stderr,
                         "progress: %zu/%zu points  wall-req/s %.0f\n",
                         records.size() + 1, points.size(),
                         wall.perSecond(wall_completed));
        }
        records.push_back(std::move(record));
    }

    bool ok = true;
    if (!options.jsonPath.empty())
        ok = MetricsJson::writeFile(options.jsonPath,
                                    loadgenDocument(records));

    std::vector<std::string> problems;
    if (!serviceSanityCheck(records, &problems)) {
        ok = false;
        for (const std::string &problem : problems)
            std::fprintf(stderr, "palermo_loadgen: SANITY: %s\n",
                         problem.c_str());
    }
    return ok ? 0 : 1;
}
