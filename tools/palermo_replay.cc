/**
 * @file
 * palermo_replay: drive the simulator from an external trace file.
 *
 * The existence proof for the re-entrant SimSession API: no Frontend
 * is bound — this tool reads (op, line) records from a file, feeds
 * them through SimSession::submit() at a bounded queue depth, advances
 * time with step(), and observes metrics mid-run through snapshot().
 * Anything that can produce the trace format (a Sniper dump converter,
 * a production access log scrubber, another simulator) can drive the
 * full Palermo timing stack the same way.
 *
 * Trace format: see src/sim/trace_file.hh (the shared loader). Line
 * indices must fit the protected space (--blocks).
 *
 * Exit status: 0 on success, 1 on sanity-gate or I/O failure, 2 on
 * usage/trace-format errors.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common/log.hh"
#include "common/wall_rate.hh"
#include "scenario/engine.hh"
#include "scenario/scenario.hh"
#include "scenario/scenario_cli.hh"
#include "sim/experiment.hh"
#include "sim/metrics_json.hh"
#include "sim/protocol_registry.hh"
#include "sim/run_cli.hh"
#include "sim/sweep.hh"
#include "sim/trace_file.hh"

using namespace palermo;

namespace {

/** Stem of the trace path for the JSON point id ("tiny" from .../tiny.trace). */
std::string
traceStem(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    std::string stem =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = stem.find_last_of('.');
    if (dot != std::string::npos && dot > 0)
        stem.resize(dot);
    return stem;
}

} // namespace

int
main(int argc, char **argv)
{
    setVerbose(false);

    ReplayOptions options;
    std::string error;
    if (!parseReplayArgs(argc - 1, argv + 1, &options, &error)) {
        std::fprintf(stderr, "palermo_replay: %s\n\n%s", error.c_str(),
                     replayUsage().c_str());
        return 2;
    }
    if (options.help) {
        std::fputs(replayUsage().c_str(), stdout);
        return 0;
    }
    if (options.listProtocols) {
        std::fputs(protocolListing().c_str(), stdout);
        return 0;
    }
    if (!options.scenarioPath.empty() && !options.tracePath.empty()) {
        std::fprintf(stderr,
                     "palermo_replay: --trace and --scenario are "
                     "mutually exclusive\n\n%s",
                     replayUsage().c_str());
        return 2;
    }
    if (!options.scenarioPath.empty()) {
        // Scenario mode: delegate to the scenario engine; the replay
        // flags that shape a single-trace session don't apply.
        ScenarioSpec spec;
        if (!loadScenarioFile(options.scenarioPath, &spec, &error)) {
            std::fprintf(stderr, "palermo_replay: %s\n", error.c_str());
            return 2;
        }
        ScenarioRunOptions run_options;
        run_options.simThreads = options.simThreads;
        ScenarioOutcome outcome;
        if (!runScenario(spec, run_options, &outcome, &error)) {
            std::fprintf(stderr, "palermo_replay: %s\n", error.c_str());
            return 1;
        }
        std::FILE *table = options.jsonPath == "-" ? stderr : stdout;
        std::fputs(scenarioTable(outcome).c_str(), table);
        bool ok = true;
        if (!options.jsonPath.empty())
            ok = MetricsJson::writeFile(
                options.jsonPath,
                scenarioDocument(outcome, "palermo_replay"));
        std::vector<std::string> problems;
        if (!scenarioSanityCheck(outcome, &problems)) {
            ok = false;
            for (const std::string &problem : problems)
                std::fprintf(stderr, "palermo_replay: SANITY: %s\n",
                             problem.c_str());
        }
        return ok ? 0 : 1;
    }
    if (options.tracePath.empty()) {
        std::fprintf(stderr,
                     "palermo_replay: --trace or --scenario is "
                     "required\n\n%s",
                     replayUsage().c_str());
        return 2;
    }

    std::vector<FrontendRequest> trace;
    if (!loadTraceFile(options.tracePath, &trace, &error)) {
        std::fprintf(stderr, "palermo_replay: %s\n", error.c_str());
        return 2;
    }

    SystemConfig config = options.baseConfig();
    // The trace defines the run shape: warmup fraction and sampling
    // windows derive from its length, like any other design point.
    config.totalRequests = trace.size();
    config = normalizedProtocolConfig(options.protocol, config);

    for (const FrontendRequest &request : trace) {
        if (request.pa >= config.protocol.numBlocks) {
            std::fprintf(stderr,
                         "palermo_replay: trace line %llu outside the "
                         "%llu-line protected space (--blocks)\n",
                         static_cast<unsigned long long>(request.pa),
                         static_cast<unsigned long long>(
                             config.protocol.numBlocks));
            return 2;
        }
    }

    // Externally driven session: keep at most --depth requests queued
    // ahead of the controller, step one cycle at a time.
    SimSession session(options.protocol, config);
    std::size_t next = 0;
    std::uint64_t next_progress = options.progress;
    const WallRateMeter wall;
    while (!session.done()) {
        while (next < trace.size() && session.backlog() < options.depth)
            session.submit(trace[next++]);
        session.step();
        if (options.progress && session.served() >= next_progress) {
            next_progress += options.progress;
            const RunMetrics mid = session.snapshot();
            // Wall-clock throughput alongside simulated time, so
            // --sim-threads scaling is visible mid-run.
            const double wall_rps = wall.perSecond(session.served());
            std::fprintf(stderr,
                         "progress: served %llu/%zu  cycles %llu  "
                         "req/kcyc %.3f  wall-req/s %.0f\n",
                         static_cast<unsigned long long>(session.served()),
                         trace.size(),
                         static_cast<unsigned long long>(session.now()),
                         mid.requestsPerKilocycle, wall_rps);
        }
    }
    session.drain();
    const RunMetrics metrics = session.snapshot();

    RunRecord record;
    record.point.kind = options.protocol;
    record.point.config = config;
    record.point.workloadLabel =
        "trace:" + traceStem(options.tracePath);
    record.point.id = std::string(protocolShortName(options.protocol))
        + "/" + record.point.workloadLabel;
    record.metrics = metrics;
    const std::vector<RunRecord> records{record};

    std::FILE *table = options.jsonPath == "-" ? stderr : stdout;
    std::fprintf(table, "%-40s%12s%10s%10s%10s%12s\n", "point",
                 "req/kcyc", "bw-util%", "rowhit%", "lat-p50", "stash");
    char stash[32];
    std::snprintf(stash, sizeof(stash), "%zu/%zu%s", metrics.stashMax,
                  metrics.stashCapacity,
                  metrics.stashOverflowed ? "!" : "");
    std::fprintf(table, "%-40s%12.3f%10.1f%10.1f%10.0f%12s\n",
                 record.point.id.c_str(), metrics.requestsPerKilocycle,
                 metrics.bwUtilization * 100, metrics.rowHitRate * 100,
                 metrics.latency.quantile(0.50), stash);

    bool ok = true;
    if (!options.jsonPath.empty()) {
        const std::string doc =
            MetricsJson::document("palermo_replay", records);
        ok = MetricsJson::writeFile(options.jsonPath, doc);
    }

    std::vector<std::string> problems;
    if (!sanityCheck(records, &problems)) {
        ok = false;
        for (const std::string &problem : problems)
            std::fprintf(stderr, "palermo_replay: SANITY: %s\n",
                         problem.c_str());
    }
    return ok ? 0 : 1;
}
