/**
 * @file
 * perf_compare: gate a fresh bench_sim_speed run against a committed
 * baseline.
 *
 * Two kinds of comparison, because the document mixes two kinds of
 * numbers:
 *   - Simulated results (measured_cycles, served, dram_reads,
 *     dram_writes per point) are deterministic for a given config and
 *     are compared EXACTLY. Any drift means simulated behavior
 *     changed, which a perf refactor must not do.
 *   - Host-side speed keys (derived "speed.<id>.*") vary with the
 *     machine and are compared with a relative tolerance, in the
 *     direction that means "worse": requests_per_second may not drop
 *     below (1 - tolerance) x baseline; heap_allocs_per_request and
 *     peak_rss_mb may not exceed (1 + tolerance) x baseline (+ an
 *     absolute slack for allocs, where the baseline is near zero).
 *
 * Points are matched by id; the fresh run may cover a subset of the
 * baseline grid (CI runs the small sizes only), but every fresh point
 * must exist in the baseline with an identical config.
 *
 * The documents' generator object (tool name, git provenance) is
 * deliberately excluded from every comparison: provenance describes
 * who rendered the bytes, not what was simulated. A baseline whose
 * provenance ends in "-dirty" draws a warning — regenerate it with
 * PALERMO_GIT_DESCRIBE set to the commit it belongs to.
 *
 * Exit status: 0 pass, 1 regression, 2 usage/I-O/incomparable inputs.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json_value.hh"
#include "sim/run_cli.hh"
#include "sim/sweep.hh"

using namespace palermo;

namespace {

struct CompareOptions
{
    std::string baselinePath;
    std::string freshPath;
    std::string markdownPath; ///< Per-point speedup table, or empty.
    double tolerance = 0.50; ///< Relative, on host-speed keys.
    double allocSlack = 2.0; ///< Absolute allocs/request headroom.
};

void
usage()
{
    std::fputs(
        "usage: perf_compare --baseline FILE --fresh FILE "
        "[--tolerance F] [--alloc-slack N] [--markdown FILE]\n"
        "  --baseline FILE   committed bench_sim_speed document\n"
        "  --fresh FILE      document from the run under test\n"
        "  --tolerance F     relative slack on host-speed keys "
        "(default 0.50)\n"
        "  --alloc-slack N   absolute allocs/request headroom "
        "(default 2)\n"
        "  --markdown FILE   also render the comparison as a GitHub\n"
        "                    markdown table (for $GITHUB_STEP_SUMMARY)\n",
        stderr);
}

bool
parseCompareArgs(int argc, const char *const *argv,
                 CompareOptions *options, std::string *error)
{
    CompareOptions result;
    ArgCursor cursor(argc, argv);
    while (cursor.advance()) {
        const std::string name = cursor.name();
        std::string value;
        if (name == "--help" || name == "-h") {
            usage();
            std::exit(0);
        } else if (name == "--baseline") {
            if (!cursor.value(&value)) {
                *error = "--baseline needs a path";
                return false;
            }
            result.baselinePath = value;
        } else if (name == "--fresh") {
            if (!cursor.value(&value)) {
                *error = "--fresh needs a path";
                return false;
            }
            result.freshPath = value;
        } else if (name == "--markdown") {
            if (!cursor.value(&value)) {
                *error = "--markdown needs a path";
                return false;
            }
            result.markdownPath = value;
        } else if (name == "--tolerance") {
            if (!cursor.value(&value)) {
                *error = "--tolerance needs a fraction";
                return false;
            }
            char *end = nullptr;
            result.tolerance = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0'
                || result.tolerance < 0.0) {
                *error = "--tolerance needs a nonnegative fraction";
                return false;
            }
        } else if (name == "--alloc-slack") {
            if (!cursor.value(&value)) {
                *error = "--alloc-slack needs a number";
                return false;
            }
            char *end = nullptr;
            result.allocSlack = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0'
                || result.allocSlack < 0.0) {
                *error = "--alloc-slack needs a nonnegative number";
                return false;
            }
        } else {
            *error = "unknown flag '" + name + "'";
            return false;
        }
    }
    if (result.baselinePath.empty() || result.freshPath.empty()) {
        *error = "--baseline and --fresh are both required";
        return false;
    }
    *options = result;
    return true;
}

bool
loadDocument(const std::string &path, JsonValue *out, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!JsonValue::parse(buffer.str(), out, error)) {
        *error = path + ":" + *error;
        return false;
    }
    const JsonValue *schema = out->find("schema");
    if (schema == nullptr || !schema->isString()
        || schema->string() != "palermo-metrics-v1") {
        *error = "'" + path + "' is not a palermo-metrics-v1 document";
        return false;
    }
    return true;
}

/** Structural equality (objects compared in document order). */
bool
jsonEqual(const JsonValue &a, const JsonValue &b)
{
    if (a.kind() != b.kind())
        return false;
    switch (a.kind()) {
      case JsonValue::Kind::Null:
        return true;
      case JsonValue::Kind::Bool:
        return a.boolean() == b.boolean();
      case JsonValue::Kind::Number:
        return a.number() == b.number();
      case JsonValue::Kind::String:
        return a.string() == b.string();
      case JsonValue::Kind::Array: {
        if (a.array().size() != b.array().size())
            return false;
        for (std::size_t i = 0; i < a.array().size(); ++i) {
            if (!jsonEqual(a.array()[i], b.array()[i]))
                return false;
        }
        return true;
      }
      case JsonValue::Kind::Object: {
        if (a.members().size() != b.members().size())
            return false;
        for (std::size_t i = 0; i < a.members().size(); ++i) {
            if (a.members()[i].first != b.members()[i].first
                || !jsonEqual(a.members()[i].second,
                              b.members()[i].second))
                return false;
        }
        return true;
      }
    }
    return false;
}

const JsonValue *
findPoint(const JsonValue &document, const std::string &id)
{
    const JsonValue *points = document.find("points");
    if (points == nullptr || !points->isArray())
        return nullptr;
    for (const JsonValue &point : points->array()) {
        const JsonValue *point_id = point.find("id");
        if (point_id != nullptr && point_id->isString()
            && point_id->string() == id)
            return &point;
    }
    return nullptr;
}

/** Simulated per-point fields that must match exactly. */
const char *const kExactMetrics[] = {
    "measured_requests",
    "measured_cycles",
    "served",
    "dram_reads",
    "dram_writes",
};

int failures = 0;

void
failure(const std::string &message)
{
    ++failures;
    std::fprintf(stderr, "perf_compare: FAIL: %s\n", message.c_str());
}

std::string
formatNumber(double value)
{
    char text[64];
    std::snprintf(text, sizeof(text), "%.6g", value);
    return text;
}

/** One rendered row of the --markdown table. */
struct MarkdownRow
{
    std::string id;
    double freshRps = -1.0;
    double baseRps = -1.0;
    double freshAllocs = -1.0;
    double freshRss = -1.0;
    bool ok = true;
};

/** Render the per-point speedup table for $GITHUB_STEP_SUMMARY. */
bool
writeMarkdown(const std::string &path,
              const std::vector<MarkdownRow> &rows, double tolerance,
              int failure_count)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << "### bench_sim_speed vs committed baseline\n\n";
    out << "| point | req/s | baseline req/s | speedup | allocs/req "
        << "| peak RSS (MiB) | status |\n";
    out << "|---|---:|---:|---:|---:|---:|---|\n";
    for (const MarkdownRow &row : rows) {
        char line[256];
        const double speedup = row.baseRps > 0.0 && row.freshRps >= 0.0
            ? row.freshRps / row.baseRps
            : 0.0;
        std::snprintf(line, sizeof(line),
                      "| `%s` | %.1f | %.1f | %.2fx | %.2f | %.1f "
                      "| %s |\n",
                      row.id.c_str(), row.freshRps, row.baseRps,
                      speedup, row.freshAllocs, row.freshRss,
                      row.ok ? "ok" : "**FAIL**");
        out << line;
    }
    out << "\n";
    if (failure_count != 0) {
        out << "**" << failure_count << " regression"
            << (failure_count == 1 ? "" : "s")
            << "** (tolerance " << formatNumber(tolerance) << ")\n";
    } else {
        out << "No regressions (tolerance " << formatNumber(tolerance)
            << ").\n";
    }
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    CompareOptions options;
    std::string error;
    if (!parseCompareArgs(argc - 1, argv + 1, &options, &error)) {
        std::fprintf(stderr, "perf_compare: %s\n", error.c_str());
        usage();
        return 2;
    }

    JsonValue baseline;
    JsonValue fresh;
    if (!loadDocument(options.baselinePath, &baseline, &error)
        || !loadDocument(options.freshPath, &fresh, &error)) {
        std::fprintf(stderr, "perf_compare: %s\n", error.c_str());
        return 2;
    }

    // Provenance is ignored in all comparisons below, but a dirty
    // baseline is a hygiene bug worth flagging: its numbers cannot be
    // attributed to any commit.
    const JsonValue *base_git = baseline.at("generator.git");
    if (base_git != nullptr && base_git->isString()
        && base_git->string().size() >= 6
        && base_git->string().substr(base_git->string().size() - 6)
               == "-dirty") {
        std::fprintf(stderr,
                     "perf_compare: warning: baseline provenance '%s' "
                     "is dirty; regenerate it with PALERMO_GIT_DESCRIBE "
                     "set to the owning commit\n",
                     base_git->string().c_str());
    }

    const JsonValue *fresh_points = fresh.find("points");
    if (fresh_points == nullptr || !fresh_points->isArray()
        || fresh_points->array().empty()) {
        std::fprintf(stderr, "perf_compare: '%s' holds no points\n",
                     options.freshPath.c_str());
        return 2;
    }

    // Pass 1: simulated results, exact.
    for (const JsonValue &point : fresh_points->array()) {
        const JsonValue *id = point.find("id");
        if (id == nullptr || !id->isString()) {
            std::fprintf(stderr,
                         "perf_compare: fresh point without id\n");
            return 2;
        }
        const JsonValue *base_point = findPoint(baseline, id->string());
        if (base_point == nullptr) {
            std::fprintf(stderr,
                         "perf_compare: baseline lacks point '%s'\n",
                         id->string().c_str());
            return 2;
        }

        const JsonValue *fresh_config = point.find("config");
        const JsonValue *base_config = base_point->find("config");
        if (fresh_config == nullptr || base_config == nullptr
            || !jsonEqual(*fresh_config, *base_config)) {
            std::fprintf(stderr,
                         "perf_compare: point '%s' config differs from "
                         "the baseline (not comparable; refresh the "
                         "baseline?)\n",
                         id->string().c_str());
            return 2;
        }

        for (const char *field : kExactMetrics) {
            const JsonValue *fresh_value =
                point.at(std::string("metrics.") + field);
            const JsonValue *base_value =
                base_point->at(std::string("metrics.") + field);
            if (fresh_value == nullptr || base_value == nullptr
                || !fresh_value->isNumber() || !base_value->isNumber()) {
                std::fprintf(stderr,
                             "perf_compare: point '%s' lacks metric "
                             "'%s'\n",
                             id->string().c_str(), field);
                return 2;
            }
            if (fresh_value->number() != base_value->number()) {
                failure("point '" + id->string() + "' " + field + ": "
                        + formatNumber(fresh_value->number())
                        + " != baseline "
                        + formatNumber(base_value->number())
                        + " (simulated behavior changed)");
            }
        }
    }

    // Pass 2: host-speed keys, with tolerance, for the fresh ids.
    const JsonValue *base_derived = baseline.find("derived");
    const JsonValue *fresh_derived = fresh.find("derived");
    std::size_t speed_checks = 0;
    std::vector<MarkdownRow> markdown_rows;
    for (const JsonValue &point : fresh_points->array()) {
        const std::string id = point.find("id")->string();
        const int failures_before = failures;
        const auto speedKey = [&](const char *leaf) {
            return "speed." + id + "." + leaf;
        };
        const auto lookup = [](const JsonValue *derived,
                               const std::string &key) -> double {
            const JsonValue *value =
                derived ? derived->find(key) : nullptr;
            return value != nullptr && value->isNumber()
                       ? value->number()
                       : -1.0;
        };

        const double base_rps =
            lookup(base_derived, speedKey("requests_per_second"));
        const double fresh_rps =
            lookup(fresh_derived, speedKey("requests_per_second"));
        if (base_rps > 0.0 && fresh_rps >= 0.0) {
            ++speed_checks;
            const double floor = base_rps * (1.0 - options.tolerance);
            std::printf("%-24s req/s %12.1f  baseline %12.1f  "
                        "floor %12.1f  %s\n",
                        id.c_str(), fresh_rps, base_rps, floor,
                        fresh_rps >= floor ? "ok" : "FAIL");
            if (fresh_rps < floor) {
                failure("point '" + id + "' requests_per_second "
                        + formatNumber(fresh_rps) + " below floor "
                        + formatNumber(floor) + " (baseline "
                        + formatNumber(base_rps) + ", tolerance "
                        + formatNumber(options.tolerance) + ")");
            }
        }

        const double base_allocs =
            lookup(base_derived, speedKey("heap_allocs_per_request"));
        const double fresh_allocs =
            lookup(fresh_derived, speedKey("heap_allocs_per_request"));
        if (base_allocs >= 0.0 && fresh_allocs >= 0.0) {
            ++speed_checks;
            const double ceiling =
                base_allocs * (1.0 + options.tolerance)
                + options.allocSlack;
            if (fresh_allocs > ceiling) {
                failure("point '" + id + "' heap_allocs_per_request "
                        + formatNumber(fresh_allocs) + " above ceiling "
                        + formatNumber(ceiling) + " (baseline "
                        + formatNumber(base_allocs) + ")");
            }
        }

        const double base_rss =
            lookup(base_derived, speedKey("peak_rss_mb"));
        const double fresh_rss =
            lookup(fresh_derived, speedKey("peak_rss_mb"));
        if (base_rss > 0.0 && fresh_rss >= 0.0) {
            ++speed_checks;
            const double ceiling = base_rss * (1.0 + options.tolerance);
            if (fresh_rss > ceiling) {
                failure("point '" + id + "' peak_rss_mb "
                        + formatNumber(fresh_rss) + " above ceiling "
                        + formatNumber(ceiling) + " (baseline "
                        + formatNumber(base_rss) + ")");
            }
        }

        MarkdownRow row;
        row.id = id;
        row.freshRps = fresh_rps;
        row.baseRps = base_rps;
        row.freshAllocs = fresh_allocs;
        row.freshRss = fresh_rss;
        row.ok = failures == failures_before;
        markdown_rows.push_back(row);
    }
    if (speed_checks == 0) {
        std::fprintf(stderr,
                     "perf_compare: no overlapping speed.* keys "
                     "between the documents\n");
        return 2;
    }

    if (!options.markdownPath.empty()
        && !writeMarkdown(options.markdownPath, markdown_rows,
                          options.tolerance, failures)) {
        std::fprintf(stderr, "perf_compare: cannot write '%s'\n",
                     options.markdownPath.c_str());
        return 2;
    }

    if (failures != 0) {
        std::fprintf(stderr, "perf_compare: %d regression%s\n", failures,
                     failures == 1 ? "" : "s");
        return 1;
    }
    std::printf("perf_compare: ok (%zu speed checks, tolerance %g)\n",
                speed_checks, options.tolerance);
    return 0;
}
