/**
 * @file
 * palermo_run: the one entry point for ad-hoc experiments.
 *
 * Expands a declarative design-point grid (or a single point), runs it
 * on a thread pool, prints a compact table, and optionally writes the
 * palermo-metrics-v1 JSON document CI and analysis scripts consume.
 * Exit status: 0 on success, 1 when any point fails the sanity gate
 * (stash overflow, degenerate measurement) or the JSON cannot be
 * written, 2 on usage errors.
 */

#include <cstdio>

#include "common/log.hh"
#include "sim/metrics_json.hh"
#include "sim/run_cli.hh"
#include "sim/sweep.hh"

using namespace palermo;

int
main(int argc, char **argv)
{
    setVerbose(false);

    RunOptions options;
    std::string error;
    if (!parseRunArgs(argc - 1, argv + 1, &options, &error)) {
        std::fprintf(stderr, "palermo_run: %s\n\n%s", error.c_str(),
                     runUsage().c_str());
        return 2;
    }
    if (options.help) {
        std::fputs(runUsage().c_str(), stdout);
        return 0;
    }
    if (options.listProtocols) {
        std::fputs(protocolListing().c_str(), stdout);
        return 0;
    }
    if (options.listWorkloads) {
        std::fputs(workloadListing().c_str(), stdout);
        return 0;
    }

    const std::vector<DesignPoint> points = options.expandPoints(&error);
    if (points.empty()) {
        std::fprintf(stderr, "palermo_run: %s\n", error.c_str());
        return 2;
    }

    if (options.listPoints) {
        for (const DesignPoint &point : points)
            std::printf("%s\n", point.id.c_str());
        return 0;
    }

    const std::vector<RunRecord> records =
        SweepRunner(options.jobs).run(points);

    // With --json -, stdout carries pure JSON; the table moves to
    // stderr so pipelines like `palermo_run --json - | jq` work.
    std::FILE *table =
        options.jsonPath == "-" ? stderr : stdout;
    std::fprintf(table, "%-40s%12s%10s%10s%10s%12s\n", "point",
                 "req/kcyc", "bw-util%", "rowhit%", "lat-p50", "stash");
    for (const RunRecord &record : records) {
        const RunMetrics &m = record.metrics;
        char stash[32];
        std::snprintf(stash, sizeof(stash), "%zu/%zu%s", m.stashMax,
                      m.stashCapacity, m.stashOverflowed ? "!" : "");
        std::fprintf(table, "%-40s%12.3f%10.1f%10.1f%10.0f%12s\n",
                     record.point.id.c_str(), m.requestsPerKilocycle,
                     m.bwUtilization * 100, m.rowHitRate * 100,
                     m.latency.quantile(0.50), stash);
    }

    bool ok = true;
    if (!options.jsonPath.empty()) {
        const std::string doc =
            MetricsJson::document("palermo_run", records);
        ok = MetricsJson::writeFile(options.jsonPath, doc);
    }

    std::vector<std::string> problems;
    if (!sanityCheck(records, &problems)) {
        ok = false;
        for (const std::string &problem : problems)
            std::fprintf(stderr, "palermo_run: SANITY: %s\n",
                         problem.c_str());
    }
    return ok ? 0 : 1;
}
