/** @file Unit tests for the Palermo protocol (Algorithm 2) state. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/palermo.hh"

namespace palermo {
namespace {

ProtocolConfig
smallConfig(unsigned prefetch = 1)
{
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    config.ringZ = 4;
    config.ringS = 5;
    config.ringA = 3;
    config.prefetchLen = prefetch;
    config.treetopBytes = {4096, 2048, 1024};
    return config;
}

/** Runs a full request through all levels in protocol order. */
std::uint64_t
fullAccess(PalermoOram &oram, BlockId pa, bool write = false,
           std::uint64_t value = 0)
{
    const auto ids = oram.decompose(pa);
    for (unsigned level = kHierLevels; level-- > 0;)
        oram.beginLevel(level, ids[level]);
    return oram.finishData(pa, write, value);
}

TEST(PalermoOram, ReadYourWrites)
{
    PalermoOram oram(smallConfig());
    Rng rng(1);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 800; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            fullAccess(oram, pa, true, value);
            shadow[pa] = value;
        } else {
            EXPECT_EQ(fullAccess(oram, pa),
                      shadow.count(pa) ? shadow[pa] : 0u);
        }
    }
}

TEST(PalermoOram, PendingBlockUsesRandomLeafAndStashServe)
{
    PalermoOram oram(smallConfig());
    const LevelPlan first = oram.beginLevel(kLevelData, 9);
    EXPECT_FALSE(first.servedFromStash);
    // Block 9 is now pending in the stash. Algorithm 2 line 5: the
    // second access reads a random path and serves from the stash.
    const LevelPlan second = oram.beginLevel(kLevelData, 9);
    EXPECT_TRUE(second.servedFromStash);
    EXPECT_EQ(oram.palermoStats().pendingServes, 1u);
}

TEST(PalermoOram, PendingLeafIndependentOfPosMap)
{
    // While pending, the read leaf must not be the posmap leaf written
    // by the previous access (which has not been exposed on the bus).
    PalermoOram oram(smallConfig());
    oram.beginLevel(kLevelData, 9);
    const Leaf mapped = oram.posMap(kLevelData).get(9);
    int same = 0;
    const int trials = 64;
    for (int i = 0; i < trials; ++i) {
        PalermoOram fresh(smallConfig());
        fresh.beginLevel(kLevelData, 9);
        const Leaf mapped_now = fresh.posMap(kLevelData).get(9);
        const LevelPlan second = fresh.beginLevel(kLevelData, 9);
        same += (second.oldLeaf == mapped_now);
    }
    (void)mapped;
    // A uniformly random leaf collides with the mapped one rarely.
    EXPECT_LT(same, trials / 4);
}

TEST(PalermoOram, InvariantMaintained)
{
    PalermoOram oram(smallConfig());
    Rng rng(2);
    std::vector<BlockId> touched;
    for (int i = 0; i < 300; ++i) {
        const BlockId pa = rng.range(1 << 12);
        fullAccess(oram, pa, true, pa);
        touched.push_back(pa);
        for (BlockId b : touched)
            EXPECT_TRUE(oram.checkBlockInvariant(b)) << "pa " << b;
    }
}

TEST(PalermoOram, StashesBoundedUnderPaperParams)
{
    ProtocolConfig config = smallConfig();
    config.ringZ = 16;
    config.ringS = 27;
    config.ringA = 20;
    PalermoOram oram(config);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i)
        fullAccess(oram, rng.range(1 << 12), rng.chance(0.3), i);
    for (unsigned level = 0; level < kHierLevels; ++level) {
        EXPECT_FALSE(oram.stashOf(level).overflowed());
        EXPECT_LT(oram.stashOf(level).highWatermark(), 256u);
    }
}

TEST(PalermoOram, PreCheckPhaseOrder)
{
    PalermoOram oram(smallConfig());
    const LevelPlan plan = oram.beginLevel(kLevelData, 1);
    ASSERT_GE(plan.phases.size(), 4u);
    EXPECT_EQ(plan.phases[0].kind, PhaseKind::LoadMeta);
    EXPECT_EQ(plan.phases[1].kind, PhaseKind::ResetRead);
    EXPECT_EQ(plan.phases[2].kind, PhaseKind::ResetWrite);
    EXPECT_EQ(plan.phases[3].kind, PhaseKind::ReadPath);
}

TEST(PalermoOram, DecomposeMatchesFanout)
{
    PalermoOram oram(smallConfig());
    const auto ids = oram.decompose(0x345);
    EXPECT_EQ(ids[kLevelData], 0x345u);
    EXPECT_EQ(ids[kLevelPos1], 0x345u / 16);
    EXPECT_EQ(ids[kLevelPos2], 0x345u / 256);
}

TEST(PalermoOram, PrefetchWidensDataBlocks)
{
    PalermoOram oram(smallConfig(4));
    EXPECT_EQ(oram.engine(kLevelData).params().blockBytes, 256u);
    EXPECT_EQ(oram.engine(kLevelData).params().numBlocks, (1u << 12) / 4);
    // PosMap trees unchanged (paper §V-C).
    EXPECT_EQ(oram.engine(kLevelPos1).params().blockBytes, 64u);
    const auto ids = oram.decompose(9);
    EXPECT_EQ(ids[kLevelData], 2u);
}

TEST(PalermoOram, PrefetchFilterAbsorbsGroupMisses)
{
    PalermoOram oram(smallConfig(4));
    EXPECT_FALSE(oram.filterHit(8, false, 0));
    fullAccess(oram, 8);
    // All four lines of the widened block are now LLC-resident.
    EXPECT_TRUE(oram.filterHit(9, false, 0));
    EXPECT_TRUE(oram.filterHit(10, false, 0));
    EXPECT_TRUE(oram.filterHit(11, false, 0));
    EXPECT_EQ(oram.palermoStats().llcHits, 3u);
}

TEST(PalermoOram, PrefetchKeepsStashTagsBounded)
{
    // Paper Fig. 12/§V-C: prefetch widens data blocks but does not
    // increase the number of stash tags.
    ProtocolConfig config = smallConfig(8);
    config.ringZ = 16;
    config.ringS = 27;
    config.ringA = 20;
    PalermoOram oram(config);
    Rng rng(5);
    for (int i = 0; i < 1500; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (!oram.filterHit(pa, false, 0))
            fullAccess(oram, pa);
    }
    EXPECT_FALSE(oram.stashOf(kLevelData).overflowed());
    EXPECT_LT(oram.stashOf(kLevelData).highWatermark(), 256u);
}

TEST(PalermoOram, PrefetchReadYourWrites)
{
    PalermoOram oram(smallConfig(4));
    // Same widened block (lines 4..7 share block 1).
    fullAccess(oram, 4, true, 44);
    EXPECT_EQ(fullAccess(oram, 5), 44u); // Group-granular payload.
}

TEST(PalermoOram, RequestsCounted)
{
    PalermoOram oram(smallConfig());
    fullAccess(oram, 1);
    fullAccess(oram, 2);
    EXPECT_EQ(oram.palermoStats().requests, 2u);
}

} // namespace
} // namespace palermo
