/** @file Unit tests for the Palermo PE-mesh timing controller. */

#include <gtest/gtest.h>

#include "controller/palermo_controller.hh"
#include "controller/palermo_sw_controller.hh"
#include "mem/dram_system.hh"

namespace palermo {
namespace {

ProtocolConfig
tinyConfig()
{
    ProtocolConfig config;
    config.numBlocks = 1 << 10;
    config.ringZ = 4;
    config.ringS = 5;
    config.ringA = 3;
    config.treetopBytes = {2048, 1024, 1024};
    return config;
}

DramConfig
tinyDram()
{
    DramConfig config;
    config.org.rows = 1u << 10;
    return config;
}

PalermoControllerConfig
meshConfig(unsigned columns)
{
    PalermoControllerConfig config;
    config.columns = columns;
    return config;
}

Tick
runToIdle(PalermoController &controller, DramSystem &dram,
          Tick limit = 4'000'000)
{
    while (!controller.idle() && dram.now() < limit) {
        for (const Completion &c : dram.drainCompletions())
            controller.onCompletion(c.tag);
        controller.tick(dram);
        dram.tick();
    }
    return dram.now();
}

/** Feed and drain `n` requests through a fresh controller. */
Tick
pump(PalermoController &controller, DramSystem &dram, unsigned n)
{
    unsigned pushed = 0;
    while (controller.stats().served + controller.stats().dummies < n
           && dram.now() < 8'000'000) {
        while (pushed < n && controller.canAccept()) {
            controller.push(pushed * 137 % (1 << 10), false, 0, false);
            ++pushed;
        }
        for (const Completion &c : dram.drainCompletions())
            controller.onCompletion(c.tag);
        controller.tick(dram);
        dram.tick();
    }
    return runToIdle(controller, dram);
}

TEST(PalermoController, CompletesSingleRequest)
{
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(4));
    controller.push(5, false, 0, false);
    runToIdle(controller, dram);
    EXPECT_TRUE(controller.idle());
    EXPECT_EQ(controller.stats().served, 1u);
}

TEST(PalermoController, OverlapsRequests)
{
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(4));
    pump(controller, dram, 24);
    EXPECT_EQ(controller.stats().served, 24u);
    EXPECT_GT(controller.maxActiveColumns(), 1u);
}

TEST(PalermoController, SingleColumnSerializes)
{
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(1));
    pump(controller, dram, 8);
    EXPECT_EQ(controller.stats().served, 8u);
    EXPECT_EQ(controller.maxActiveColumns(), 1u);
}

TEST(PalermoController, MoreColumnsFinishFaster)
{
    Tick narrow_time;
    Tick wide_time;
    {
        DramSystem dram(tinyDram());
        PalermoController controller(
            std::make_unique<PalermoOram>(tinyConfig()), meshConfig(1));
        narrow_time = pump(controller, dram, 48);
    }
    {
        DramSystem dram(tinyDram());
        PalermoController controller(
            std::make_unique<PalermoOram>(tinyConfig()), meshConfig(8));
        wide_time = pump(controller, dram, 48);
    }
    EXPECT_LT(wide_time, narrow_time);
}

TEST(PalermoController, RetiresInCommitOrder)
{
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(4));
    pump(controller, dram, 16);
    // All samples recorded exactly once per real request.
    EXPECT_EQ(controller.stats().samples.size(), 16u);
}

TEST(PalermoController, RingAdmissionOnlyNextColumn)
{
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(2));
    ASSERT_TRUE(controller.canAccept());
    controller.push(1, false, 0, false);
    ASSERT_TRUE(controller.canAccept());
    controller.push(2, false, 0, false);
    // Both columns busy: ring is full until the head retires.
    EXPECT_FALSE(controller.canAccept());
    runToIdle(controller, dram);
    EXPECT_TRUE(controller.canAccept());
}

TEST(PalermoController, SameAddressBackToBack)
{
    // Pending-PA handling end to end: concurrent requests to one block.
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(4));
    for (int i = 0; i < 4; ++i)
        controller.push(7, false, 0, false);
    runToIdle(controller, dram);
    EXPECT_EQ(controller.stats().served, 4u);
    EXPECT_GE(controller.protocol().palermoStats().pendingServes, 1u);
}

TEST(PalermoController, WriteReadBack)
{
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(4));
    controller.push(9, true, 0x1234, false);
    runToIdle(controller, dram);
    controller.push(9, false, 0, false);
    runToIdle(controller, dram);
    // Functional payload verified through the protocol.
    const auto ids = controller.protocol().decompose(9);
    for (unsigned level = kHierLevels; level-- > 0;)
        controller.protocol().beginLevel(level, ids[level]);
    EXPECT_EQ(controller.protocol().finishData(9, false, 0), 0x1234u);
}

TEST(PalermoController, StashBoundedUnderLoad)
{
    ProtocolConfig config = tinyConfig();
    config.ringZ = 16;
    config.ringS = 27;
    config.ringA = 20;
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(config), meshConfig(8));
    pump(controller, dram, 200);
    for (unsigned level = 0; level < kHierLevels; ++level)
        EXPECT_FALSE(controller.stashOf(level).overflowed());
}

TEST(PalermoSwController, CompletesAndIsSlowerThanHw)
{
    Tick sw_time;
    Tick hw_time;
    {
        DramSystem dram(tinyDram());
        PalermoSwController controller(
            std::make_unique<PalermoOram>(tinyConfig()), 8);
        sw_time = pump(controller, dram, 48);
        EXPECT_EQ(controller.stats().served, 48u);
    }
    {
        DramSystem dram(tinyDram());
        PalermoController controller(
            std::make_unique<PalermoOram>(tinyConfig()), meshConfig(8));
        hw_time = pump(controller, dram, 48);
    }
    EXPECT_LT(hw_time, sw_time);
}

TEST(PalermoController, DummiesCountedSeparately)
{
    DramSystem dram(tinyDram());
    PalermoController controller(
        std::make_unique<PalermoOram>(tinyConfig()), meshConfig(4));
    controller.push(3, false, 0, /*dummy=*/true);
    runToIdle(controller, dram);
    EXPECT_EQ(controller.stats().served, 0u);
    EXPECT_EQ(controller.stats().dummies, 1u);
}

} // namespace
} // namespace palermo
