/** @file Unit tests for the Table II workload trace generators. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/trace_gen.hh"

namespace palermo {
namespace {

constexpr std::uint64_t kLines = 1 << 16;

TEST(TraceGen, AllWorkloadsConstructAndEmit)
{
    for (Workload workload : allWorkloads()) {
        auto trace = makeTrace(workload, kLines, 1);
        for (int i = 0; i < 1000; ++i) {
            const TraceRecord record = trace->next();
            EXPECT_LT(record.line, kLines)
                << workloadName(workload) << " out of range";
        }
    }
}

TEST(TraceGen, DeterministicForSeed)
{
    for (Workload workload : allWorkloads()) {
        auto a = makeTrace(workload, kLines, 7);
        auto b = makeTrace(workload, kLines, 7);
        for (int i = 0; i < 200; ++i) {
            const TraceRecord ra = a->next();
            const TraceRecord rb = b->next();
            EXPECT_EQ(ra.line, rb.line) << workloadName(workload);
            EXPECT_EQ(ra.write, rb.write);
        }
    }
}

TEST(TraceGen, SeedsDiverge)
{
    auto a = makeTrace(Workload::Random, kLines, 1);
    auto b = makeTrace(Workload::Random, kLines, 2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a->next().line == b->next().line);
    EXPECT_LT(same, 5);
}

TEST(TraceGen, StreamIsSequential)
{
    auto trace = makeTrace(Workload::Stream, kLines, 1);
    for (std::uint64_t i = 0; i < 5000; ++i) {
        const TraceRecord record = trace->next();
        EXPECT_EQ(record.line, i % kLines);
        EXPECT_FALSE(record.write);
    }
}

TEST(TraceGen, RandomSpreadsWide)
{
    auto trace = makeTrace(Workload::Random, kLines, 3);
    std::set<BlockId> seen;
    for (int i = 0; i < 4000; ++i)
        seen.insert(trace->next().line);
    // Uniform draws rarely collide at this density.
    EXPECT_GT(seen.size(), 3700u);
}

TEST(TraceGen, RedisIsSkewedAndUnordered)
{
    auto trace = makeTrace(Workload::Redis, kLines, 4);
    std::map<BlockId, int> counts;
    for (int i = 0; i < 20000; ++i)
        ++counts[trace->next().line];
    int max_count = 0;
    for (const auto &[line, count] : counts)
        max_count = std::max(max_count, count);
    // Zipf keys: the hottest line dominates uniform expectation.
    EXPECT_GT(max_count, 50);
}

TEST(TraceGen, LlmReadsEmbeddingRows)
{
    auto trace = makeTrace(Workload::Llm, kLines, 5);
    // Rows are 8 sequential lines.
    const TraceRecord first = trace->next();
    for (unsigned i = 1; i < 8; ++i) {
        const TraceRecord record = trace->next();
        EXPECT_EQ(record.line, (first.line + i) % kLines);
    }
}

TEST(TraceGen, Dlrm2ReadsRowsOf4)
{
    auto trace = makeTrace(Workload::Dlrm2, kLines, 6);
    const TraceRecord first = trace->next();
    for (unsigned i = 1; i < 4; ++i)
        EXPECT_EQ(trace->next().line, (first.line + i) % kLines);
}

TEST(TraceGen, WriteMixesDifferAcrossWorkloads)
{
    std::map<Workload, double> write_frac;
    for (Workload workload :
         {Workload::Mcf, Workload::Redis, Workload::Llm}) {
        auto trace = makeTrace(workload, kLines, 7);
        int writes = 0;
        const int n = 5000;
        for (int i = 0; i < n; ++i)
            writes += trace->next().write;
        write_frac[workload] = static_cast<double>(writes) / n;
    }
    EXPECT_GT(write_frac[Workload::Mcf], 0.1);
    EXPECT_GT(write_frac[Workload::Redis], 0.2);
    EXPECT_DOUBLE_EQ(write_frac[Workload::Llm], 0.0);
}

TEST(TraceGen, McfHasReuse)
{
    auto trace = makeTrace(Workload::Mcf, kLines, 8);
    std::map<BlockId, int> counts;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        ++counts[trace->next().line];
    // Pointer chasing with a recency set revisits lines.
    EXPECT_LT(counts.size(), static_cast<std::size_t>(n));
}

TEST(TraceGen, NamesRoundTrip)
{
    for (Workload workload : allWorkloads())
        EXPECT_EQ(workloadFromName(workloadName(workload)), workload);
    EXPECT_EQ(workloadFromName("stm"), Workload::Stream);
    EXPECT_EQ(workloadFromName("rand"), Workload::Random);
}

TEST(TraceGen, TenWorkloadsInFigureOrder)
{
    const auto &workloads = allWorkloads();
    ASSERT_EQ(workloads.size(), 10u);
    EXPECT_EQ(workloads.front(), Workload::Mcf);
    EXPECT_EQ(workloads.back(), Workload::Random);
}

} // namespace
} // namespace palermo
