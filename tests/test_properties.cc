/**
 * @file Property-based parameter sweeps (TEST_P): the protocol
 * invariants must hold across the whole (Z, S, A) / tree-size / prefetch
 * design space the paper sweeps in Fig. 14.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "common/rng.hh"
#include "oram/level_engine.hh"
#include "oram/palermo.hh"
#include "oram/path_engine.hh"
#include "oram/posmap.hh"

namespace palermo {
namespace {

// ---------------------------------------------------------------------
// RingEngine properties over the paper's Fig. 14(a) (Z, S, A) space.
// ---------------------------------------------------------------------

using RingParams = std::tuple<unsigned, unsigned, unsigned, int>;
// (Z, S, A, mode)

class RingEngineProperty : public ::testing::TestWithParam<RingParams>
{
};

TEST_P(RingEngineProperty, ReadYourWritesAndInvariant)
{
    const auto [z, s, a, mode_int] = GetParam();
    const auto mode = static_cast<ReshuffleMode>(mode_int);
    const std::uint64_t blocks = 1 << 10;
    const OramParams params = OramParams::ring(blocks, z, s, a);
    RingEngine engine(params, 0, mode, 0, 42);
    PosMap pm(blocks, params.numLeaves, 7);
    Rng rng(9);
    std::map<BlockId, std::uint64_t> shadow;

    for (int i = 0; i < 400; ++i) {
        const BlockId block = rng.range(blocks);
        const Leaf leaf = engine.inStash(block)
            ? rng.range(params.numLeaves) : pm.get(block);
        const Leaf new_leaf = rng.range(params.numLeaves);
        pm.set(block, new_leaf);
        engine.access(block, leaf, new_leaf);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            engine.setPayload(block, value);
            shadow[block] = value;
        } else {
            EXPECT_EQ(engine.payloadOf(block),
                      shadow.count(block) ? shadow[block] : 0u);
        }
    }
    for (const auto &[block, value] : shadow) {
        EXPECT_TRUE(engine.satisfiesInvariant(block, pm.get(block)))
            << "Z=" << z << " S=" << s << " A=" << a;
    }
    EXPECT_FALSE(engine.stash().overflowed());
}

INSTANTIATE_TEST_SUITE_P(
    ZsaSweep, RingEngineProperty,
    ::testing::Values(
        // The paper's valid (Z, S, A) points (Fig. 14a) in both modes.
        RingParams{4, 5, 3, 0}, RingParams{4, 5, 3, 1},
        RingParams{8, 12, 8, 0}, RingParams{8, 12, 8, 1},
        RingParams{16, 27, 20, 0}, RingParams{16, 27, 20, 1},
        RingParams{32, 56, 42, 0}, RingParams{32, 56, 42, 1}));

// ---------------------------------------------------------------------
// Tree-size sweep: invariants independent of height.
// ---------------------------------------------------------------------

class TreeSizeProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TreeSizeProperty, RingInvariantAcrossHeights)
{
    const std::uint64_t blocks = GetParam();
    const OramParams params = OramParams::ring(blocks, 4, 5, 3);
    RingEngine engine(params, 0, ReshuffleMode::Pre, 0, 1);
    PosMap pm(blocks, params.numLeaves, 2);
    Rng rng(3);
    std::vector<BlockId> touched;
    for (int i = 0; i < 200; ++i) {
        const BlockId block = rng.range(blocks);
        const Leaf leaf = engine.inStash(block)
            ? rng.range(params.numLeaves) : pm.get(block);
        const Leaf new_leaf = rng.range(params.numLeaves);
        pm.set(block, new_leaf);
        engine.access(block, leaf, new_leaf);
        touched.push_back(block);
    }
    for (BlockId block : touched)
        EXPECT_TRUE(engine.satisfiesInvariant(block, pm.get(block)));
}

INSTANTIATE_TEST_SUITE_P(Heights, TreeSizeProperty,
                         ::testing::Values(64, 256, 1 << 10, 1 << 14,
                                           1 << 18));

// ---------------------------------------------------------------------
// PathEngine properties over bucket size and sibling mode.
// ---------------------------------------------------------------------

using PathParams = std::tuple<unsigned, bool>;

class PathEngineProperty : public ::testing::TestWithParam<PathParams>
{
};

TEST_P(PathEngineProperty, ReadYourWritesAndBoundedStash)
{
    const auto [z, sibling] = GetParam();
    const std::uint64_t blocks = 1 << 10;
    const OramParams params = OramParams::path(blocks, z);
    PathEngine engine(params, 0, 0, sibling, 5);
    PosMap pm(blocks, params.numLeaves, 6);
    Rng rng(7);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 400; ++i) {
        const BlockId block = rng.range(blocks);
        const Leaf leaf = pm.get(block);
        const Leaf new_leaf = rng.range(params.numLeaves);
        pm.set(block, new_leaf);
        engine.access(block, leaf, new_leaf);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            engine.setPayload(block, value);
            shadow[block] = value;
        } else {
            EXPECT_EQ(engine.payloadOf(block),
                      shadow.count(block) ? shadow[block] : 0u);
        }
    }
    EXPECT_FALSE(engine.stash().overflowed());
}

INSTANTIATE_TEST_SUITE_P(
    BucketSweep, PathEngineProperty,
    ::testing::Values(PathParams{2, false}, PathParams{2, true},
                      PathParams{4, false}, PathParams{4, true},
                      PathParams{8, false}));

// ---------------------------------------------------------------------
// Palermo protocol across prefetch lengths (Fig. 13's knob).
// ---------------------------------------------------------------------

class PalermoPrefetchProperty : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PalermoPrefetchProperty, CorrectAndBounded)
{
    const unsigned pf = GetParam();
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    config.ringZ = 8;
    config.ringS = 12;
    config.ringA = 8;
    config.prefetchLen = pf;
    config.treetopBytes = {4096, 2048, 1024};
    PalermoOram oram(config);
    Rng rng(11);
    std::map<BlockId, std::uint64_t> shadow; // Group-granular.
    for (int i = 0; i < 500; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (oram.filterHit(pa, false, 0))
            continue;
        const auto ids = oram.decompose(pa);
        for (unsigned level = kHierLevels; level-- > 0;)
            oram.beginLevel(level, ids[level]);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            oram.finishData(pa, true, value);
            shadow[ids[kLevelData]] = value;
        } else {
            const std::uint64_t got = oram.finishData(pa, false, 0);
            const BlockId group = ids[kLevelData];
            EXPECT_EQ(got, shadow.count(group) ? shadow[group] : 0u)
                << "pf=" << pf;
        }
    }
    for (unsigned level = 0; level < kHierLevels; ++level)
        EXPECT_FALSE(oram.stashOf(level).overflowed()) << "pf=" << pf;
}

INSTANTIATE_TEST_SUITE_P(PrefetchSweep, PalermoPrefetchProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------
// Eviction-leaf sequence: a permutation for every power-of-two size.
// ---------------------------------------------------------------------

class EvictionLeafProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EvictionLeafProperty, FullPermutationPerPeriod)
{
    const std::uint64_t leaves = GetParam();
    std::vector<bool> seen(leaves, false);
    for (std::uint64_t i = 0; i < leaves; ++i) {
        const Leaf leaf = evictionLeaf(i, leaves);
        ASSERT_LT(leaf, leaves);
        EXPECT_FALSE(seen[leaf]);
        seen[leaf] = true;
    }
    // The sequence repeats with the same period.
    EXPECT_EQ(evictionLeaf(leaves, leaves), evictionLeaf(0, leaves));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EvictionLeafProperty,
                         ::testing::Values(1, 2, 8, 64, 1024, 1 << 16));

} // namespace
} // namespace palermo
