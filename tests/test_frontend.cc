/** @file Unit tests for the frontend issue policies. */

#include <gtest/gtest.h>

#include "sim/frontend.hh"

namespace palermo {
namespace {

TEST(Frontend, SaturatedIssuesEverything)
{
    Frontend frontend(makeTrace(Workload::Stream, 1 << 10, 1), 100,
                      false, 0, 1.0, 1);
    Tick now = 0;
    while (!frontend.exhausted()) {
        ASSERT_TRUE(frontend.wantsIssue(now));
        const FrontendRequest req = frontend.produce(now);
        EXPECT_FALSE(req.dummy);
        ++now;
    }
    EXPECT_EQ(frontend.issuedReal(), 100u);
    EXPECT_FALSE(frontend.wantsIssue(now));
}

TEST(Frontend, SaturatedAlwaysWilling)
{
    Frontend frontend(makeTrace(Workload::Random, 1 << 10, 1), 10,
                      false, 0, 1.0, 1);
    EXPECT_TRUE(frontend.wantsIssue(0));
    EXPECT_TRUE(frontend.wantsIssue(12345));
}

TEST(Frontend, ConstantRateSpacesSlots)
{
    Frontend frontend(makeTrace(Workload::Stream, 1 << 10, 1), 50, true,
                      100, 1.0, 1);
    ASSERT_TRUE(frontend.wantsIssue(0));
    frontend.produce(0);
    EXPECT_FALSE(frontend.wantsIssue(50));
    EXPECT_TRUE(frontend.wantsIssue(100));
    frontend.produce(100);
    EXPECT_FALSE(frontend.wantsIssue(150));
}

TEST(Frontend, ConstantRatePadsDummies)
{
    Frontend frontend(makeTrace(Workload::Stream, 1 << 10, 2), 10000,
                      true, 10, 0.5, 3);
    Tick now = 0;
    unsigned slots = 0;
    while (slots < 2000) {
        if (frontend.wantsIssue(now)) {
            frontend.produce(now);
            ++slots;
        }
        ++now;
    }
    const double dummy_frac = static_cast<double>(frontend.issuedDummy())
        / (frontend.issuedDummy() + frontend.issuedReal());
    EXPECT_NEAR(dummy_frac, 0.5, 0.06);
}

TEST(Frontend, TraceRecordsPassThrough)
{
    Frontend frontend(makeTrace(Workload::Stream, 1 << 10, 1), 16,
                      false, 0, 1.0, 1);
    for (std::uint64_t i = 0; i < 16; ++i) {
        const FrontendRequest req = frontend.produce(0);
        EXPECT_EQ(req.pa, i);
    }
    EXPECT_TRUE(frontend.exhausted());
}

} // namespace
} // namespace palermo
