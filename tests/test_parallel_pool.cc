/**
 * @file
 * WorkerPool unit tests: every shard runs exactly once per epoch, the
 * pool survives many reused epochs (persistent threads, no respawn),
 * degenerate shapes (no workers, more threads than shards, zero
 * shards) behave, and shard effects are visible to the coordinator
 * after the barrier.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "sim/parallel.hh"

namespace palermo {
namespace {

struct CountJob
{
    std::vector<std::atomic<unsigned>> *counts;

    static void
    run(void *ctx, unsigned shard)
    {
        auto &job = *static_cast<CountJob *>(ctx);
        (*job.counts)[shard].fetch_add(1, std::memory_order_relaxed);
    }
};

TEST(WorkerPool, EveryShardRunsExactlyOnce)
{
    WorkerPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);

    std::vector<std::atomic<unsigned>> counts(64);
    CountJob job{&counts};
    pool.run(&CountJob::run, &job, 64);
    for (const auto &count : counts)
        EXPECT_EQ(count.load(), 1u);
}

TEST(WorkerPool, CoordinatorOnlyPoolRunsInline)
{
    WorkerPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);

    std::vector<std::atomic<unsigned>> counts(8);
    CountJob job{&counts};
    pool.run(&CountJob::run, &job, 8);
    for (const auto &count : counts)
        EXPECT_EQ(count.load(), 1u);
}

TEST(WorkerPool, MoreThreadsThanShards)
{
    WorkerPool pool(8);
    std::vector<std::atomic<unsigned>> counts(2);
    CountJob job{&counts};
    pool.run(&CountJob::run, &job, 2);
    EXPECT_EQ(counts[0].load(), 1u);
    EXPECT_EQ(counts[1].load(), 1u);
}

TEST(WorkerPool, ZeroShardsIsANoOp)
{
    WorkerPool pool(2);
    std::vector<std::atomic<unsigned>> counts(1);
    CountJob job{&counts};
    pool.run(&CountJob::run, &job, 0);
    EXPECT_EQ(counts[0].load(), 0u);
}

struct SumJob
{
    const std::vector<std::uint64_t> *input;
    std::uint64_t *partials; ///< Indexed by shard.

    static void
    run(void *ctx, unsigned shard)
    {
        auto &job = *static_cast<SumJob *>(ctx);
        job.partials[shard] = (*job.input)[shard] * 2;
    }
};

TEST(WorkerPool, ShardEffectsVisibleAfterBarrier)
{
    WorkerPool pool(3);
    std::vector<std::uint64_t> input(33);
    std::iota(input.begin(), input.end(), 1);
    std::uint64_t partials[33] = {};

    SumJob job{&input, partials};
    pool.run(&SumJob::run, &job, 33);

    std::uint64_t total = 0;
    for (const std::uint64_t partial : partials)
        total += partial;
    EXPECT_EQ(total, 33u * 34u); // 2 * sum(1..33).
}

TEST(WorkerPool, ThousandsOfReusedEpochs)
{
    // Persistent-thread reuse: the same pool must serve many epochs
    // back to back without respawn or lost barriers. A stuck barrier
    // hangs this test (caught by the test timeout); a lost shard shows
    // up in the count.
    WorkerPool pool(4);
    std::vector<std::atomic<unsigned>> counts(4);
    CountJob job{&counts};
    constexpr unsigned kEpochs = 20000;
    for (unsigned epoch = 0; epoch < kEpochs; ++epoch)
        pool.run(&CountJob::run, &job, 4);
    for (const auto &count : counts)
        EXPECT_EQ(count.load(), kEpochs);
}

TEST(WorkerPool, OversubscribedHostStillCompletes)
{
    // More threads than the machine has cores (always true on a 1-core
    // CI runner): the staged spin/yield/futex waits must not livelock.
    const unsigned threads =
        std::max(2u, 2 * std::thread::hardware_concurrency());
    WorkerPool pool(threads);
    std::vector<std::atomic<unsigned>> counts(threads);
    CountJob job{&counts};
    for (unsigned epoch = 0; epoch < 200; ++epoch)
        pool.run(&CountJob::run, &job, threads);
    for (const auto &count : counts)
        EXPECT_EQ(count.load(), 200u);
}

} // namespace
} // namespace palermo
