/** @file Unit tests for the baseline serial timing controller. */

#include <gtest/gtest.h>

#include "controller/serial_controller.hh"
#include "mem/dram_system.hh"
#include "oram/pr_oram.hh"
#include "oram/ring_oram.hh"

namespace palermo {
namespace {

ProtocolConfig
tinyConfig()
{
    ProtocolConfig config;
    config.numBlocks = 1 << 10;
    config.ringZ = 4;
    config.ringS = 5;
    config.ringA = 3;
    config.treetopBytes = {2048, 1024, 1024};
    return config;
}

DramConfig
tinyDram()
{
    DramConfig config;
    config.org.rows = 1u << 10;
    return config;
}

/** Run until the controller drains or the tick limit hits. */
Tick
runToIdle(SerialController &controller, DramSystem &dram,
          Tick limit = 2'000'000)
{
    while (!controller.idle() && dram.now() < limit) {
        for (const Completion &c : dram.drainCompletions())
            controller.onCompletion(c.tag);
        controller.tick(dram);
        dram.tick();
    }
    return dram.now();
}

TEST(SerialController, CompletesSingleRequest)
{
    DramSystem dram(tinyDram());
    SerialController controller(
        std::make_unique<RingOram>(tinyConfig()));
    controller.push(5, false, 0, false);
    runToIdle(controller, dram);
    EXPECT_TRUE(controller.idle());
    EXPECT_EQ(controller.stats().served, 1u);
    EXPECT_EQ(controller.stats().latency.count(), 1u);
}

TEST(SerialController, ServesInOrder)
{
    DramSystem dram(tinyDram());
    SerialController controller(
        std::make_unique<RingOram>(tinyConfig()));
    for (BlockId pa = 0; pa < 6; ++pa)
        controller.push(pa, false, 0, false);
    runToIdle(controller, dram);
    EXPECT_EQ(controller.stats().served, 6u);
    EXPECT_EQ(controller.stats().samples.size(), 6u);
}

TEST(SerialController, AdmissionBounded)
{
    DramSystem dram(tinyDram());
    SerialController controller(
        std::make_unique<RingOram>(tinyConfig()), 16, 4);
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(controller.canAccept());
        controller.push(i, false, 0, false);
    }
    EXPECT_FALSE(controller.canAccept());
}

TEST(SerialController, SyncCyclesDominant)
{
    // The §III-A observation: the serial protocol stalls the memory
    // controller most of the time (ORAM-sync ~72% in the paper).
    DramSystem dram(tinyDram());
    SerialController controller(
        std::make_unique<RingOram>(tinyConfig()));
    for (BlockId pa = 0; pa < 8; ++pa) {
        while (!controller.canAccept()) {
            controller.tick(dram);
            dram.tick();
        }
        controller.push(pa * 37 % (1 << 10), false, 0, false);
    }
    runToIdle(controller, dram);
    EXPECT_GT(controller.stats().syncFraction(), 0.4);
}

TEST(SerialController, AttributesCyclesToAllLevels)
{
    DramSystem dram(tinyDram());
    SerialController controller(
        std::make_unique<RingOram>(tinyConfig()));
    for (BlockId pa = 0; pa < 8; ++pa) {
        while (!controller.canAccept()) {
            controller.tick(dram);
            dram.tick();
        }
        controller.push(pa * 131 % (1 << 10), false, 0, false);
    }
    runToIdle(controller, dram);
    for (unsigned level = 0; level < kHierLevels; ++level) {
        EXPECT_GT(controller.stats().dramCycles[level]
                      + controller.stats().syncCycles[level],
                  0u)
            << "level " << level << " never attributed";
    }
}

TEST(SerialController, DummyRequestsNotServed)
{
    DramSystem dram(tinyDram());
    SerialController controller(
        std::make_unique<RingOram>(tinyConfig()));
    controller.push(3, false, 0, /*dummy=*/true);
    runToIdle(controller, dram);
    EXPECT_EQ(controller.stats().served, 0u);
    EXPECT_EQ(controller.stats().dummies, 1u);
    EXPECT_EQ(controller.stats().samples.size(), 0u);
}

TEST(SerialController, LlcHitsRetireInstantly)
{
    ProtocolConfig config = tinyConfig();
    config.pathZ = 4;
    config.prefetchLen = 4;
    config.throttle = false;
    DramSystem dram(tinyDram());
    SerialController controller(std::make_unique<PrOram>(config));
    controller.push(8, false, 0, false); // Prefetches 8..11.
    runToIdle(controller, dram);
    const Tick before = dram.now();
    controller.push(9, false, 0, false); // LLC hit.
    runToIdle(controller, dram);
    EXPECT_LE(dram.now() - before, 4u);
    EXPECT_GE(controller.stats().llcHits, 1u);
}

TEST(SerialController, WritesReadBack)
{
    DramSystem dram(tinyDram());
    auto protocol = std::make_unique<RingOram>(tinyConfig());
    RingOram *ring = protocol.get();
    SerialController controller(std::move(protocol));
    controller.push(17, true, 0xabcd, false);
    runToIdle(controller, dram);
    const auto plans = ring->access(17, false, 0);
    EXPECT_EQ(plans[0].value, 0xabcdu);
}

TEST(SerialController, IdleCyclesWhenQueueEmpty)
{
    DramSystem dram(tinyDram());
    SerialController controller(
        std::make_unique<RingOram>(tinyConfig()));
    for (int i = 0; i < 10; ++i) {
        controller.tick(dram);
        dram.tick();
    }
    EXPECT_EQ(controller.stats().idleCycles, 10u);
}

} // namespace
} // namespace palermo
