/** @file Unit tests for the hierarchical PathORAM protocol. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/path_oram.hh"

namespace palermo {
namespace {

ProtocolConfig
smallConfig()
{
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    config.pathZ = 4;
    config.treetopBytes = {4096, 2048, 1024};
    return config;
}

TEST(PathOram, ThreeLevelPlans)
{
    PathOram oram(smallConfig());
    const auto plans = oram.access(5, false, 0);
    ASSERT_EQ(plans.size(), 1u);
    ASSERT_EQ(plans[0].levels.size(), kHierLevels);
    EXPECT_EQ(plans[0].levels[0].level, kLevelPos2);
    EXPECT_EQ(plans[0].levels[2].level, kLevelData);
}

TEST(PathOram, ReadYourWritesAcrossHierarchy)
{
    PathOram oram(smallConfig());
    Rng rng(1);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 800; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            oram.access(pa, true, value);
            shadow[pa] = value;
        } else {
            const auto plans = oram.access(pa, false, 0);
            EXPECT_EQ(plans[0].value,
                      shadow.count(pa) ? shadow[pa] : 0u);
        }
    }
}

TEST(PathOram, InvariantMaintained)
{
    PathOram oram(smallConfig());
    Rng rng(2);
    std::vector<BlockId> touched;
    for (int i = 0; i < 300; ++i) {
        const BlockId pa = rng.range(1 << 12);
        oram.access(pa, true, pa);
        touched.push_back(pa);
        for (BlockId b : touched)
            EXPECT_TRUE(oram.checkBlockInvariant(b));
    }
}

TEST(PathOram, StashesBounded)
{
    PathOram oram(smallConfig());
    Rng rng(3);
    for (int i = 0; i < 1500; ++i)
        oram.access(rng.range(1 << 12), rng.chance(0.3), i);
    for (unsigned level = 0; level < kHierLevels; ++level)
        EXPECT_FALSE(oram.stashOf(level).overflowed());
}

TEST(PathOram, MoreOpsThanRingConfigComparable)
{
    // §III-E: RingORAM cuts DRAM traffic versus PathORAM at matched
    // protected capacity. Compare ops per access.
    ProtocolConfig config = smallConfig();
    config.numBlocks = 1 << 16;
    PathOram path(config);

    Rng rng(4);
    std::uint64_t path_ops = 0;
    const int n = 100;
    for (int i = 0; i < n; ++i) {
        const auto plans = path.access(rng.range(1 << 16), false, 0);
        path_ops += plans[0].readOps() + plans[0].writeOps();
    }
    EXPECT_GT(path_ops / n, 150u); // Hundreds per converted access.
}

} // namespace
} // namespace palermo
