/** @file Unit tests for the per-channel FR-FCFS DRAM controller. */

#include <gtest/gtest.h>

#include "mem/channel.hh"

namespace palermo {
namespace {

DramOrg
org4()
{
    DramOrg org;
    org.channels = 1;
    org.ranks = 1;
    org.bankGroups = 2;
    org.banksPerGroup = 2;
    org.rows = 256;
    org.columnsPerRow = 32;
    return org;
}

DecodedAddr
at(unsigned bank_group, unsigned bank, std::uint64_t row, unsigned col)
{
    DecodedAddr dec{};
    dec.channel = 0;
    dec.rank = 0;
    dec.bankGroup = bank_group;
    dec.bank = bank;
    dec.row = row;
    dec.column = col;
    return dec;
}

// Run the channel until `count` completions arrive or `limit` ticks.
std::vector<Completion>
runUntil(Channel &channel, std::size_t count, Tick &now,
         Tick limit = 100000)
{
    std::vector<Completion> all;
    while (all.size() < count && now < limit) {
        channel.tick(now);
        ++now;
        for (const auto &c : channel.completions()) {
            if (c.finishTick <= now)
                all.push_back(c);
        }
        auto &list = channel.completions();
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](const Completion &c) {
                                      return c.finishTick <= now;
                                  }),
                   list.end());
    }
    return all;
}

TEST(Channel, SingleReadColdLatency)
{
    const DramTiming &t = ddr4_3200();
    Channel channel(org4(), t, 16);
    Tick now = 0;
    ASSERT_TRUE(channel.enqueue(at(0, 0, 1, 0), false, 42, now));
    const auto done = runUntil(channel, 1, now);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].tag, 42u);
    // Cold bank: ACT + tRCD + tCL + tBL.
    EXPECT_GE(done[0].finishTick, t.tRCD + t.tCL + t.tBL);
    EXPECT_LE(done[0].finishTick, t.tRCD + t.tCL + t.tBL + 4);
}

TEST(Channel, RowHitFasterThanConflict)
{
    const DramTiming &t = ddr4_3200();
    Channel hit_ch(org4(), t, 16);
    Tick now = 0;
    ASSERT_TRUE(hit_ch.enqueue(at(0, 0, 1, 0), false, 1, now));
    runUntil(hit_ch, 1, now);
    const Tick hit_start = now;
    ASSERT_TRUE(hit_ch.enqueue(at(0, 0, 1, 1), false, 2, now));
    runUntil(hit_ch, 1, now);
    const Tick hit_latency = now - hit_start;

    Channel conf_ch(org4(), t, 16);
    Tick now2 = 0;
    ASSERT_TRUE(conf_ch.enqueue(at(0, 0, 1, 0), false, 1, now2));
    runUntil(conf_ch, 1, now2);
    const Tick conf_start = now2;
    ASSERT_TRUE(conf_ch.enqueue(at(0, 0, 2, 0), false, 2, now2));
    runUntil(conf_ch, 1, now2);
    const Tick conf_latency = now2 - conf_start;

    EXPECT_LT(hit_latency, conf_latency);
    EXPECT_EQ(hit_ch.stats().rowHits.value(), 1u);
    EXPECT_EQ(conf_ch.stats().rowConflicts.value(), 1u);
}

TEST(Channel, ClassifiesColdMiss)
{
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    ASSERT_TRUE(channel.enqueue(at(0, 0, 1, 0), false, 1, now));
    runUntil(channel, 1, now);
    EXPECT_EQ(channel.stats().rowMisses.value(), 1u);
}

TEST(Channel, WriteForwardingServesRead)
{
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    ASSERT_TRUE(channel.enqueue(at(1, 1, 3, 5), true, 0, now));
    ASSERT_TRUE(channel.enqueue(at(1, 1, 3, 5), false, 9, now));
    EXPECT_EQ(channel.stats().forwardedReads.value(), 1u);
    // The forwarded completion appears without any DRAM read command.
    ASSERT_FALSE(channel.completions().empty());
    EXPECT_TRUE(channel.completions()[0].forwarded);
    EXPECT_EQ(channel.completions()[0].tag, 9u);
}

TEST(Channel, WriteCoalescing)
{
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    ASSERT_TRUE(channel.enqueue(at(0, 1, 3, 5), true, 0, now));
    ASSERT_TRUE(channel.enqueue(at(0, 1, 3, 5), true, 0, now));
    EXPECT_EQ(channel.stats().coalescedWrites.value(), 1u);
    EXPECT_EQ(channel.occupancy(), 1u);
}

TEST(Channel, BackpressureWhenFull)
{
    Channel channel(org4(), ddr4_3200(), 2);
    Tick now = 0;
    EXPECT_TRUE(channel.enqueue(at(0, 0, 1, 0), false, 1, now));
    EXPECT_TRUE(channel.enqueue(at(0, 0, 2, 0), false, 2, now));
    EXPECT_FALSE(channel.canEnqueue(false));
    EXPECT_FALSE(channel.enqueue(at(0, 0, 3, 0), false, 3, now));
}

TEST(Channel, FrFcfsPrefersRowHitOverOlderConflict)
{
    // Oldest request conflicts with the open row; a younger row hit to
    // the same bank must be served first.
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    ASSERT_TRUE(channel.enqueue(at(0, 0, 1, 0), false, 1, now));
    runUntil(channel, 1, now); // Row 1 now open.
    ASSERT_TRUE(channel.enqueue(at(0, 0, 2, 0), false, 2, now)); // conflict
    ASSERT_TRUE(channel.enqueue(at(0, 0, 1, 7), false, 3, now)); // hit
    const auto done = runUntil(channel, 2, now);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(done[0].tag, 3u);
    EXPECT_EQ(done[1].tag, 2u);
}

TEST(Channel, WritesEventuallyDrain)
{
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    for (unsigned i = 0; i < 8; ++i)
        ASSERT_TRUE(channel.enqueue(at(0, 0, 1, i), true, 0, now));
    for (; now < 20000 && channel.occupancy() > 0;) {
        channel.tick(now);
        ++now;
    }
    EXPECT_EQ(channel.occupancy(), 0u);
    EXPECT_EQ(channel.stats().writes.value(), 8u);
}

TEST(Channel, RefreshHappens)
{
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    for (; now < 2 * ddr4_3200().tREFI;) {
        channel.tick(now);
        ++now;
    }
    EXPECT_GE(channel.stats().refreshes.value(), 1u);
}

TEST(Channel, QueueOccupancyTracked)
{
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    ASSERT_TRUE(channel.enqueue(at(0, 0, 1, 0), false, 1, now));
    ASSERT_TRUE(channel.enqueue(at(0, 0, 1, 1), false, 2, now));
    channel.tick(now);
    EXPECT_GT(channel.stats().queueOccupancy.mean(), 0.0);
}

TEST(Channel, BusBusyTicksAccumulate)
{
    Channel channel(org4(), ddr4_3200(), 16);
    Tick now = 0;
    ASSERT_TRUE(channel.enqueue(at(0, 0, 1, 0), false, 1, now));
    runUntil(channel, 1, now);
    // Run a little longer so the data burst interval fully passes.
    for (Tick end = now + 16; now < end; ++now)
        channel.tick(now);
    EXPECT_GE(channel.stats().busBusyTicks.value(), ddr4_3200().tBL - 1);
}

} // namespace
} // namespace palermo
