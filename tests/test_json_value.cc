/** @file Round-trip and malformed-input tests for the JSON parser. */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/json_value.hh"
#include "sim/metrics_json.hh"

namespace palermo {
namespace {

JsonValue
parseOk(const std::string &text)
{
    JsonValue value;
    std::string error;
    EXPECT_TRUE(JsonValue::parse(text, &value, &error)) << error;
    return value;
}

std::string
parseError(const std::string &text)
{
    JsonValue value;
    std::string error;
    EXPECT_FALSE(JsonValue::parse(text, &value, &error));
    EXPECT_FALSE(error.empty());
    return error;
}

TEST(JsonValue, Scalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").boolean());
    EXPECT_FALSE(parseOk("false").boolean());
    EXPECT_DOUBLE_EQ(parseOk("42").number(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-3.5e2").number(), -350.0);
    EXPECT_EQ(parseOk("\"hi\"").string(), "hi");
    EXPECT_DOUBLE_EQ(parseOk("  7  ").number(), 7.0); // Whitespace ok.
}

TEST(JsonValue, StringEscapes)
{
    EXPECT_EQ(parseOk(R"("a\"b\\c\/d")").string(), "a\"b\\c/d");
    EXPECT_EQ(parseOk(R"("tab\there")").string(), "tab\there");
    EXPECT_EQ(parseOk(R"("\u0041\u00e9")").string(), "A\xC3\xA9");
}

TEST(JsonValue, ContainersAndLookup)
{
    const JsonValue doc = parseOk(
        R"({"a": 1, "b": [true, null, "x"], "c": {"d": {"e": 9}}})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.members().size(), 3u);
    EXPECT_DOUBLE_EQ(doc.find("a")->number(), 1.0);
    EXPECT_EQ(doc.find("b")->array().size(), 3u);
    EXPECT_EQ(doc.find("b")->array()[2].string(), "x");
    EXPECT_DOUBLE_EQ(doc.at("c.d.e")->number(), 9.0);
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_EQ(doc.at("c.d.missing"), nullptr);
    EXPECT_EQ(doc.at("a.b"), nullptr); // Scalar has no members.
}

TEST(JsonValue, PreservesMemberOrder)
{
    const JsonValue doc = parseOk(R"({"z": 1, "a": 2, "m": 3})");
    ASSERT_EQ(doc.members().size(), 3u);
    EXPECT_EQ(doc.members()[0].first, "z");
    EXPECT_EQ(doc.members()[1].first, "a");
    EXPECT_EQ(doc.members()[2].first, "m");
}

TEST(JsonValue, MalformedInputsReportPosition)
{
    EXPECT_NE(parseError("").find("unexpected end"), std::string::npos);
    EXPECT_NE(parseError("{").find("1:2"), std::string::npos);
    parseError("{\"a\" 1}");       // Missing colon.
    parseError("{\"a\": 1,}");     // Trailing comma wants a key.
    parseError("[1, 2");           // Unterminated array.
    parseError("\"abc");           // Unterminated string.
    parseError("12 34");           // Trailing content.
    parseError("{\"a\": 1} x");    // Trailing content after object.
    parseError("nul");             // Truncated literal.
    parseError("\"\\q\"");         // Unknown escape.
    parseError("\"\\u12\"");       // Truncated \u escape.
    parseError("- 1");             // Bare minus.
    parseError("1.2.3");           // Double dot.
}

TEST(JsonValue, DeepNestingIsBounded)
{
    std::string deep;
    for (int i = 0; i < 200; ++i)
        deep += '[';
    for (int i = 0; i < 200; ++i)
        deep += ']';
    EXPECT_NE(parseError(deep).find("nested too deeply"),
              std::string::npos);
}

TEST(JsonValue, RoundTripsMetricsJsonOutput)
{
    // Feed the parser what our own writer produces.
    JsonWriter writer;
    writer.beginObject();
    writer.field("schema", "palermo-metrics-v1");
    writer.key("values").beginArray();
    writer.value(1.5);
    writer.value(std::uint64_t{18446744073709551615ull});
    writer.value("quote\"and\\slash");
    writer.endArray();
    writer.key("derived").beginObject();
    writer.field("speed.palermo/b20.requests_per_second", 12345.678);
    writer.endObject();
    writer.endObject();

    const JsonValue doc = parseOk(writer.str());
    EXPECT_EQ(doc.find("schema")->string(), "palermo-metrics-v1");
    EXPECT_DOUBLE_EQ(doc.find("values")->array()[0].number(), 1.5);
    EXPECT_EQ(doc.find("values")->array()[2].string(),
              "quote\"and\\slash");
    EXPECT_DOUBLE_EQ(
        doc.at("derived")
            ->find("speed.palermo/b20.requests_per_second")
            ->number(),
        12345.678);
}

} // namespace
} // namespace palermo
