/** @file Unit tests for PrORAM / LAORAM (prefetch + background eviction). */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/pr_oram.hh"

namespace palermo {
namespace {

ProtocolConfig
smallConfig(unsigned prefetch, bool fat_tree = false,
            bool throttle = false)
{
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    config.pathZ = 4;
    config.prefetchLen = prefetch;
    config.fatTree = fat_tree;
    config.throttle = throttle;
    config.prStashCapacity = 256;
    config.treetopBytes = {4096, 2048, 1024};
    return config;
}

TEST(PrOram, NameReflectsVariant)
{
    PrOram pr(smallConfig(4));
    EXPECT_STREQ(pr.name(), "PrORAM");
    PrOram la(smallConfig(4, true));
    EXPECT_STREQ(la.name(), "LAORAM");
}

TEST(PrOram, ReadYourWritesNoPrefetch)
{
    PrOram oram(smallConfig(1));
    Rng rng(1);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 500; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            oram.access(pa, true, value);
            shadow[pa] = value;
        } else {
            const auto plans = oram.access(pa, false, 0);
            EXPECT_EQ(plans.back().value,
                      shadow.count(pa) ? shadow[pa] : 0u);
        }
    }
}

TEST(PrOram, PrefetchFiltersGroupSiblings)
{
    PrOram oram(smallConfig(4));
    const auto first = oram.access(8, false, 0);
    EXPECT_FALSE(first.back().llcHit);
    // Siblings 9..11 were prefetched into the LLC.
    EXPECT_TRUE(oram.access(9, false, 0).back().llcHit);
    EXPECT_TRUE(oram.access(10, false, 0).back().llcHit);
    EXPECT_EQ(oram.prStats().llcHits, 2u);
}

TEST(PrOram, StreamingWithPrefetchInsertsDummies)
{
    // The Fig. 4 mechanism: perfect-locality streaming with same-leaf
    // groups piles the stash up until dummy background evictions fire.
    PrOram oram(smallConfig(8));
    for (BlockId pa = 0; pa < 3000; ++pa)
        oram.access(pa % (1 << 12), false, 0);
    EXPECT_GT(oram.prStats().dummyRequests, 0u);
    EXPECT_GT(oram.prStats().dummyRatio(), 0.1);
}

TEST(PrOram, DummyRatioGrowsWithPrefetchLength)
{
    double previous = -1.0;
    for (unsigned pf : {2u, 8u}) {
        PrOram oram(smallConfig(pf));
        for (BlockId pa = 0; pa < 3000; ++pa)
            oram.access(pa % (1 << 12), false, 0);
        EXPECT_GT(oram.prStats().dummyRatio(), previous);
        previous = oram.prStats().dummyRatio();
    }
}

TEST(PrOram, FatTreeReducesDummyRatio)
{
    PrOram plain(smallConfig(8, false));
    PrOram fat(smallConfig(8, true));
    for (BlockId pa = 0; pa < 3000; ++pa) {
        plain.access(pa % (1 << 12), false, 0);
        fat.access(pa % (1 << 12), false, 0);
    }
    EXPECT_LT(fat.prStats().dummyRatio(), plain.prStats().dummyRatio());
}

TEST(PrOram, ThrottleCutsDummies)
{
    PrOram free_run(smallConfig(8, false, false));
    PrOram throttled(smallConfig(8, false, true));
    for (BlockId pa = 0; pa < 3000; ++pa) {
        free_run.access(pa % (1 << 12), false, 0);
        throttled.access(pa % (1 << 12), false, 0);
    }
    EXPECT_LT(throttled.prStats().dummyRatio(),
              free_run.prStats().dummyRatio());
    EXPECT_GT(throttled.prStats().throttledAccesses, 0u);
}

TEST(PrOram, InvariantUnderGroupRemap)
{
    PrOram oram(smallConfig(4));
    Rng rng(2);
    std::vector<BlockId> touched;
    for (int i = 0; i < 250; ++i) {
        const BlockId pa = rng.range(1 << 12);
        oram.access(pa, true, pa);
        touched.push_back(pa);
        for (BlockId b : touched)
            EXPECT_TRUE(oram.checkBlockInvariant(b)) << "pa " << b;
    }
}

TEST(PrOram, ReadYourWritesWithPrefetch)
{
    PrOram oram(smallConfig(4));
    Rng rng(3);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 400; ++i) {
        const BlockId pa = rng.range(1 << 10);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            oram.access(pa, true, value);
            shadow[pa] = value;
        } else {
            const auto plans = oram.access(pa, false, 0);
            if (!plans.back().llcHit) {
                EXPECT_EQ(plans.back().value,
                          shadow.count(pa) ? shadow[pa] : 0u);
            }
        }
    }
}

TEST(PrOram, DummiesTargetOnlyDataTree)
{
    PrOram oram(smallConfig(8));
    for (BlockId pa = 0; pa < 2000; ++pa) {
        const auto plans = oram.access(pa % (1 << 12), false, 0);
        for (const auto &plan : plans) {
            if (plan.dummy) {
                ASSERT_EQ(plan.levels.size(), 1u);
                EXPECT_EQ(plan.levels[0].level, kLevelData);
            }
        }
    }
}

} // namespace
} // namespace palermo
