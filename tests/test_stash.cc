/** @file Unit tests for the bounded ORAM stash. */

#include <gtest/gtest.h>

#include "oram/oram_params.hh"
#include "oram/stash.hh"

namespace palermo {
namespace {

TEST(Stash, PutTakeRoundTrip)
{
    Stash stash(16);
    stash.put(5, 3, 500);
    ASSERT_TRUE(stash.contains(5));
    EXPECT_EQ(stash.occupancy(), 1u);
    const StashEntry entry = stash.take(5);
    EXPECT_EQ(entry.leaf, 3u);
    EXPECT_EQ(entry.payload, 500u);
    EXPECT_FALSE(stash.contains(5));
}

TEST(Stash, PutOverwrites)
{
    Stash stash(16);
    stash.put(5, 3, 500);
    stash.put(5, 7, 700);
    EXPECT_EQ(stash.occupancy(), 1u);
    EXPECT_EQ(stash.entry(5).leaf, 7u);
    EXPECT_EQ(stash.entry(5).payload, 700u);
}

TEST(Stash, RemapChangesLeafOnly)
{
    Stash stash(16);
    stash.put(5, 3, 500);
    stash.remap(5, 9);
    EXPECT_EQ(stash.entry(5).leaf, 9u);
    EXPECT_EQ(stash.entry(5).payload, 500u);
}

TEST(Stash, WatermarksTrackPeaks)
{
    Stash stash(16);
    for (BlockId b = 0; b < 10; ++b)
        stash.put(b, 0, 0);
    for (BlockId b = 0; b < 8; ++b)
        stash.take(b);
    EXPECT_EQ(stash.occupancy(), 2u);
    EXPECT_EQ(stash.highWatermark(), 10u);
    EXPECT_EQ(stash.windowWatermark(), 10u);
    stash.resetWindowWatermark();
    EXPECT_EQ(stash.windowWatermark(), 2u);
    EXPECT_EQ(stash.highWatermark(), 10u);
}

TEST(Stash, OverflowFlag)
{
    Stash stash(4);
    for (BlockId b = 0; b < 4; ++b)
        stash.put(b, 0, 0);
    EXPECT_FALSE(stash.overflowed());
    stash.put(4, 0, 0);
    EXPECT_TRUE(stash.overflowed());
}

TEST(Stash, EligibleForFiltersByPath)
{
    const OramParams params = OramParams::ring(1 << 8, 4, 5, 3);
    Stash stash(64);
    // Block mapped to leaf 0 is eligible for every node on path(0).
    stash.put(1, 0, 0);
    // Block mapped to the last leaf shares only the root with path(0).
    stash.put(2, params.numLeaves - 1, 0);

    const auto at_root = stash.eligibleFor(0, params, 10);
    EXPECT_EQ(at_root.size(), 2u);

    const NodeId leaf0 = params.nodeAt(params.leafLevel(), 0);
    const auto at_leaf = stash.eligibleFor(leaf0, params, 10);
    ASSERT_EQ(at_leaf.size(), 1u);
    EXPECT_EQ(at_leaf[0], 1u);
}

TEST(Stash, EligibleForHonorsMaxAndExclude)
{
    const OramParams params = OramParams::ring(1 << 8, 4, 5, 3);
    Stash stash(64);
    for (BlockId b = 0; b < 8; ++b)
        stash.put(b, 0, 0);
    EXPECT_EQ(stash.eligibleFor(0, params, 3).size(), 3u);
    const auto without_5 = stash.eligibleFor(0, params, 8, 5);
    EXPECT_EQ(without_5.size(), 7u);
    for (BlockId b : without_5)
        EXPECT_NE(b, 5u);
}

} // namespace
} // namespace palermo
