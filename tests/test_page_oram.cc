/** @file Unit tests for hierarchical PageORAM. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/page_oram.hh"
#include "oram/path_oram.hh"

namespace palermo {
namespace {

ProtocolConfig
smallConfig()
{
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    config.pathZ = 4;
    config.pageZ = 2;
    config.treetopBytes = {4096, 2048, 1024};
    return config;
}

TEST(PageOram, ReadYourWrites)
{
    PageOram oram(smallConfig());
    Rng rng(1);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 500; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            oram.access(pa, true, value);
            shadow[pa] = value;
        } else {
            const auto plans = oram.access(pa, false, 0);
            EXPECT_EQ(plans[0].value,
                      shadow.count(pa) ? shadow[pa] : 0u);
        }
    }
}

TEST(PageOram, InvariantMaintained)
{
    PageOram oram(smallConfig());
    Rng rng(2);
    std::vector<BlockId> touched;
    for (int i = 0; i < 250; ++i) {
        const BlockId pa = rng.range(1 << 12);
        oram.access(pa, true, pa);
        touched.push_back(pa);
        for (BlockId b : touched)
            EXPECT_TRUE(oram.checkBlockInvariant(b));
    }
}

TEST(PageOram, StashesBounded)
{
    PageOram oram(smallConfig());
    Rng rng(3);
    for (int i = 0; i < 1200; ++i)
        oram.access(rng.range(1 << 12), rng.chance(0.3), i);
    for (unsigned level = 0; level < kHierLevels; ++level)
        EXPECT_FALSE(oram.stashOf(level).overflowed());
}

TEST(PageOram, TrafficComparableToPathOram)
{
    // Smaller buckets offset the sibling reads: total traffic stays in
    // the same ballpark as PathORAM (the end-to-end win comes from
    // row-buffer locality, exercised in the integration/bench runs).
    ProtocolConfig config = smallConfig();
    config.numBlocks = 1 << 14;
    PageOram page(config);
    PathOram path(config);
    Rng rng(4);
    std::uint64_t page_ops = 0;
    std::uint64_t path_ops = 0;
    for (int i = 0; i < 100; ++i) {
        const BlockId pa = rng.range(1 << 14);
        const auto page_plans = page.access(pa, false, 0);
        const auto path_plans = path.access(pa, false, 0);
        page_ops += page_plans[0].readOps() + page_plans[0].writeOps();
        path_ops += path_plans[0].readOps() + path_plans[0].writeOps();
    }
    EXPECT_LT(page_ops, path_ops * 3 / 2);
    EXPECT_GT(page_ops, path_ops / 2);
}

TEST(PageOram, SiblingSlotsReadWithPairSharedHeaders)
{
    PageOram oram(smallConfig());
    const auto plans = oram.access(1, false, 0);
    const LevelPlan &data = plans[0].levels.back();
    const auto &params = oram.engine(kLevelData).params();
    const unsigned cached = oram.engine(kLevelData).cachedLevels();
    // Metadata lines: one per on-path node below the tree-top cache.
    EXPECT_EQ(data.find(PhaseKind::LoadMeta)->ops.size(),
              params.levels - cached);
    // Slot reads cover siblings too (2 per level beyond the root).
    EXPECT_GT(data.find(PhaseKind::ReadPath)->ops.size(),
              static_cast<std::size_t>(params.levels - cached)
                  * params.z);
}

} // namespace
} // namespace palermo
