/** @file Unit tests for the hierarchical RingORAM protocol. */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/ring_oram.hh"

namespace palermo {
namespace {

ProtocolConfig
smallConfig()
{
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    config.ringZ = 4;
    config.ringS = 5;
    config.ringA = 3;
    config.treetopBytes = {4096, 2048, 1024};
    return config;
}

TEST(RingOram, ThreeLevelPlansDeepestFirst)
{
    RingOram oram(smallConfig());
    const auto plans = oram.access(0, false, 0);
    ASSERT_EQ(plans.size(), 1u);
    ASSERT_EQ(plans[0].levels.size(), kHierLevels);
    EXPECT_EQ(plans[0].levels[0].level, kLevelPos2);
    EXPECT_EQ(plans[0].levels[1].level, kLevelPos1);
    EXPECT_EQ(plans[0].levels[2].level, kLevelData);
}

TEST(RingOram, ReadYourWritesAcrossHierarchy)
{
    RingOram oram(smallConfig());
    Rng rng(1);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 800; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            oram.access(pa, true, value);
            shadow[pa] = value;
        } else {
            const auto plans = oram.access(pa, false, 0);
            const std::uint64_t expect =
                shadow.count(pa) ? shadow[pa] : 0;
            EXPECT_EQ(plans[0].value, expect) << "iter " << i;
        }
    }
}

TEST(RingOram, DataInvariantMaintained)
{
    RingOram oram(smallConfig());
    Rng rng(2);
    std::vector<BlockId> touched;
    for (int i = 0; i < 300; ++i) {
        const BlockId pa = rng.range(1 << 12);
        oram.access(pa, true, pa);
        touched.push_back(pa);
        for (BlockId b : touched)
            EXPECT_TRUE(oram.checkBlockInvariant(b));
    }
}

TEST(RingOram, AllStashesBounded)
{
    RingOram oram(smallConfig());
    Rng rng(3);
    for (int i = 0; i < 1500; ++i)
        oram.access(rng.range(1 << 12), rng.chance(0.3), i);
    for (unsigned level = 0; level < kHierLevels; ++level)
        EXPECT_FALSE(oram.stashOf(level).overflowed()) << level;
}

TEST(RingOram, PosMapSpacesShrinkByFanout)
{
    RingOram oram(smallConfig());
    EXPECT_EQ(oram.engine(kLevelData).params().numBlocks, 1u << 12);
    EXPECT_EQ(oram.engine(kLevelPos1).params().numBlocks, 1u << 8);
    EXPECT_EQ(oram.engine(kLevelPos2).params().numBlocks, 1u << 4);
}

TEST(RingOram, DistinctAddressSpaces)
{
    // The three trees must occupy disjoint DRAM regions.
    RingOram oram(smallConfig());
    const auto &data = oram.engine(kLevelData).layout();
    const auto &pos1 = oram.engine(kLevelPos1).layout();
    const auto &pos2 = oram.engine(kLevelPos2).layout();
    EXPECT_LE(data.endAddr(), pos1.base());
    EXPECT_LE(pos1.endAddr(), pos2.base());
}

TEST(RingOram, SameSeedSameTraffic)
{
    RingOram a(smallConfig());
    RingOram b(smallConfig());
    for (int i = 0; i < 50; ++i) {
        const auto pa = static_cast<BlockId>(i * 131 % (1 << 12));
        const auto plan_a = a.access(pa, false, 0);
        const auto plan_b = b.access(pa, false, 0);
        ASSERT_EQ(plan_a[0].readOps(), plan_b[0].readOps());
        ASSERT_EQ(plan_a[0].writeOps(), plan_b[0].writeOps());
    }
}

TEST(RingOram, AccessCountsInPaperBallpark)
{
    // §II: RingORAM converts one access into hundreds of DRAM accesses.
    ProtocolConfig config = smallConfig();
    config.ringZ = 16;
    config.ringS = 27;
    config.ringA = 20;
    config.numBlocks = 1 << 16;
    RingOram oram(config);
    Rng rng(4);
    std::uint64_t ops = 0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        const auto plans = oram.access(rng.range(1 << 16), false, 0);
        ops += plans[0].readOps() + plans[0].writeOps();
    }
    const double per_access = static_cast<double>(ops) / n;
    EXPECT_GT(per_access, 100.0);
    EXPECT_LT(per_access, 1500.0);
}

} // namespace
} // namespace palermo
