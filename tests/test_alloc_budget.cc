/**
 * @file
 * Allocation-regression gate for the pooled Palermo hot path.
 *
 * This binary replaces the global operator new (common/alloc_count.hh)
 * and counts heap allocations across the steady-state segment of a
 * Palermo run. With session-lifetime pools in place, a steady-state
 * access should hit the heap only on rare pool growth — the budget
 * below is deliberately small so any reintroduced per-access
 * allocation (a by-value plan, a fresh scratch vector, an unpooled
 * map node) fails loudly.
 *
 * The workload is Stream over a small tree with a warmup long enough
 * to touch every block and grow every pool to its working-set size;
 * the measured segment is the back half.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/alloc_count.hh"
#include "common/rng.hh"
#include "service/kv_service.hh"
#include "sim/experiment.hh"
#include "sim/protocol_registry.hh"
#include "sim/system_config.hh"

namespace palermo {
namespace {

/** Heap allocations per steady-state request, averaged. */
double
steadyStateAllocsPerRequest(ProtocolKind kind, unsigned sim_threads = 1)
{
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 11; // 2048 blocks.
    config.totalRequests = 6000;            // Warmup 3000 > numBlocks.
    config.seed = 1;
    config.simThreads = sim_threads;

    auto session = makeSession(kind, Workload::Stream, config);
    const std::uint64_t warmup_served = static_cast<std::uint64_t>(
        config.totalRequests * config.warmupFraction);
    while (!session->done() && session->served() < warmup_served)
        session->step();

    const unsigned long long before = heapAllocationCount();
    const std::uint64_t served_before = session->served();
    while (!session->done())
        session->step();
    session->drain();
    const unsigned long long after = heapAllocationCount();
    const std::uint64_t requests = session->served() - served_before;

    EXPECT_GT(requests, 0u);
    const double per_request = requests == 0
        ? 0.0
        : static_cast<double>(after - before)
            / static_cast<double>(requests);
    std::printf("%-12s steady-state: %llu allocs / %llu requests "
                "= %.3f per request\n",
                protocolShortName(kind),
                static_cast<unsigned long long>(after - before),
                static_cast<unsigned long long>(requests), per_request);
    return per_request;
}

TEST(AllocBudget, PalermoSteadyStateStaysPooled)
{
    // Budget: pool growth, latency-sample bookkeeping, and the odd
    // first-touch position-map chunk — but nothing per access. The
    // unpooled baseline sat near 10^2 per request.
    EXPECT_LE(steadyStateAllocsPerRequest(ProtocolKind::Palermo), 2.0);
}

TEST(AllocBudget, PathOramSteadyStateStaysPooled)
{
    EXPECT_LE(steadyStateAllocsPerRequest(ProtocolKind::PathOram), 2.0);
}

TEST(AllocBudget, ParallelSteppingStaysPooled)
{
    // --sim-threads must not reintroduce per-request allocation: the
    // WorkerPool's threads are created at session construction (before
    // the measured segment) and its epoch dispatch is a raw function
    // pointer plus caller-owned context — zero heap traffic per cycle.
    EXPECT_LE(
        steadyStateAllocsPerRequest(ProtocolKind::Palermo, 2), 2.0);
}

/**
 * Same discipline one layer up: a closed-loop client fleet against the
 * full serving stack (admission queue, tenant directory, in-flight
 * attribution FIFO, session pump). With the service deques pool-backed,
 * steady-state serving must not allocate per request either.
 */
double
servedClosedLoopAllocsPerRequest()
{
    constexpr unsigned kConcurrency = 8;

    ServiceConfig config;
    config.protocol = ProtocolKind::Palermo;
    config.system.protocol.numBlocks = 1ull << 11;
    config.system.totalRequests = 6000; // Warmup 3000 > numBlocks.
    config.system.warmupFraction = 0.5;
    config.system.seed = 1;
    config.tenants = 2;
    config.queueCapacity = kConcurrency;
    config.warmupCompletions = 3000;

    ObliviousKvService service(config);
    Rng rng(7);
    const std::uint64_t slice = service.tenants().sliceSize();
    const std::uint64_t target = config.system.totalRequests;
    std::uint64_t issued = 0;
    const auto issue = [&](Tick arrival) {
        const auto tenant =
            static_cast<unsigned>(rng.range(config.tenants));
        const Admission admission =
            service.offer(tenant, rng.range(slice), (issued & 7) == 0,
                          issued, arrival);
        EXPECT_EQ(admission, Admission::Accepted);
        ++issued;
    };

    // Think time zero: keep kConcurrency requests in the system.
    while (issued < kConcurrency)
        issue(0);
    while (service.completedTotal() < config.warmupCompletions) {
        const std::uint64_t done = service.step(1);
        for (std::uint64_t i = 0; i < done && issued < target; ++i)
            issue(service.now());
    }

    const unsigned long long before = heapAllocationCount();
    const std::uint64_t served_before = service.completedTotal();
    while (service.completedTotal() < target) {
        const std::uint64_t done = service.step(1);
        for (std::uint64_t i = 0; i < done && issued < target; ++i)
            issue(service.now());
    }
    service.drainAll();
    const unsigned long long after = heapAllocationCount();
    const std::uint64_t requests = service.completedTotal() - served_before;

    EXPECT_GT(requests, 0u);
    const double per_request = requests == 0
        ? 0.0
        : static_cast<double>(after - before)
            / static_cast<double>(requests);
    std::printf("served       steady-state: %llu allocs / %llu requests "
                "= %.3f per request\n",
                static_cast<unsigned long long>(after - before),
                static_cast<unsigned long long>(requests), per_request);
    return per_request;
}

TEST(AllocBudget, ServedClosedLoopStaysPooled)
{
    // The serving layer must add zero steady-state heap traffic on top
    // of the pooled simulator: admission and in-flight FIFOs recycle
    // their deque chunks through session-lifetime pools.
    EXPECT_LE(servedClosedLoopAllocsPerRequest(), 2.0);
}

TEST(AllocBudget, CounterCountsThisBinary)
{
    const unsigned long long before = heapAllocationCount();
    auto *leak_free = new int(7);
    const unsigned long long after = heapAllocationCount();
    EXPECT_GT(after, before);
    delete leak_free;
}

} // namespace
} // namespace palermo
