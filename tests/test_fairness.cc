/**
 * @file Fairness-statistic tests: Jain's index bounds and edge cases,
 * slowdown ratio semantics.
 */

#include <gtest/gtest.h>

#include "scenario/fairness.hh"

namespace palermo {
namespace {

TEST(FairnessTest, JainIndexEqualSharesIsOne)
{
    EXPECT_DOUBLE_EQ(jainIndex({3.0, 3.0, 3.0, 3.0}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({0.5}), 1.0);
}

TEST(FairnessTest, JainIndexStarvationApproachesOneOverN)
{
    const double jain = jainIndex({10.0, 0.0, 0.0, 0.0});
    EXPECT_NEAR(jain, 0.25, 1e-12);
}

TEST(FairnessTest, JainIndexOrderIndependentAndBounded)
{
    const double a = jainIndex({1.0, 2.0, 4.0});
    const double b = jainIndex({4.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 1.0 / 3.0);
    EXPECT_LT(a, 1.0);
}

TEST(FairnessTest, JainIndexDegenerateInputs)
{
    // Empty and all-zero vectors are defined as perfectly fair: there
    // is nothing to be unfair about.
    EXPECT_DOUBLE_EQ(jainIndex({}), 1.0);
    EXPECT_DOUBLE_EQ(jainIndex({0.0, 0.0}), 1.0);
}

TEST(FairnessTest, SlowdownRatioAndDegeneracy)
{
    EXPECT_DOUBLE_EQ(slowdownOf(300.0, 100.0), 3.0);
    EXPECT_DOUBLE_EQ(slowdownOf(100.0, 100.0), 1.0);
    // No isolated baseline -> neutral slowdown, not a division blowup.
    EXPECT_DOUBLE_EQ(slowdownOf(100.0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(slowdownOf(100.0, -5.0), 1.0);
}

} // namespace
} // namespace palermo
