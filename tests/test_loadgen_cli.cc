/**
 * @file palermo_loadgen CLI tests: flag parsing (sweep lists, modes,
 * malformed input), point expansion order, end-to-end design-point
 * runs (open and closed loop), document rendering, and the
 * service-aware sanity gate.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/loadgen.hh"

namespace palermo {
namespace {

bool
parse(const std::vector<const char *> &args, LoadgenOptions *options,
      std::string *error)
{
    return parseLoadgenArgs(static_cast<int>(args.size()), args.data(),
                            options, error);
}

TEST(LoadgenCliTest, DefaultsAreClosedLoopProbe)
{
    LoadgenOptions options;
    std::string error;
    ASSERT_TRUE(parse({}, &options, &error)) << error;
    EXPECT_TRUE(options.openloopRates.empty());
    EXPECT_TRUE(options.closedloopConcurrency.empty());

    const std::vector<LoadPointSpec> points = expandLoadPoints(options);
    ASSERT_EQ(points.size(), 1u);
    EXPECT_TRUE(points[0].closedLoop);
    EXPECT_EQ(points[0].concurrency, 4u);
}

TEST(LoadgenCliTest, ParsesRateAndConcurrencyLists)
{
    LoadgenOptions options;
    std::string error;
    ASSERT_TRUE(parse({"--openloop", "0.5,2,8", "--closedloop=1,16",
                       "--arrival", "fixed", "--dist", "uniform",
                       "--tenants", "4", "--write-frac", "0.25",
                       "--queue-policy", "block", "--requests", "500"},
                      &options, &error))
        << error;
    ASSERT_EQ(options.openloopRates.size(), 3u);
    EXPECT_DOUBLE_EQ(options.openloopRates[0], 0.5);
    EXPECT_DOUBLE_EQ(options.openloopRates[2], 8.0);
    ASSERT_EQ(options.closedloopConcurrency.size(), 2u);
    EXPECT_EQ(options.closedloopConcurrency[1], 16u);
    EXPECT_EQ(options.arrival, ArrivalProcess::Fixed);
    EXPECT_EQ(options.dist, KeyDist::Uniform);
    EXPECT_EQ(options.tenants, 4u);
    EXPECT_DOUBLE_EQ(options.writeFraction, 0.25);
    EXPECT_EQ(options.queuePolicy, QueuePolicy::Block);
    EXPECT_EQ(options.requests, 500u);

    // Expansion order: open points in flag order, then closed points.
    const std::vector<LoadPointSpec> points = expandLoadPoints(options);
    ASSERT_EQ(points.size(), 5u);
    EXPECT_FALSE(points[0].closedLoop);
    EXPECT_DOUBLE_EQ(points[2].rate, 8.0);
    EXPECT_TRUE(points[3].closedLoop);
    EXPECT_EQ(points[4].concurrency, 16u);
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
}

TEST(LoadgenCliTest, RejectsMalformedInput)
{
    LoadgenOptions options;
    std::string error;
    EXPECT_FALSE(parse({"--openloop", "0"}, &options, &error));
    EXPECT_FALSE(parse({"--openloop", "2,"}, &options, &error));
    EXPECT_FALSE(parse({"--openloop", "fast"}, &options, &error));
    EXPECT_FALSE(parse({"--closedloop", "0"}, &options, &error));
    EXPECT_FALSE(parse({"--arrival", "bursty"}, &options, &error));
    EXPECT_FALSE(parse({"--dist", "pareto"}, &options, &error));
    EXPECT_FALSE(parse({"--write-frac", "1.5"}, &options, &error));
    EXPECT_FALSE(parse({"--tenants", "0"}, &options, &error));
    EXPECT_FALSE(parse({"--queue-policy", "drop"}, &options, &error));
    EXPECT_FALSE(parse({"--queue-capacity"}, &options, &error));
    EXPECT_FALSE(parse({"--frobnicate"}, &options, &error));
    EXPECT_FALSE(error.empty());
}

LoadgenOptions
tinyOptions()
{
    LoadgenOptions options;
    options.blocks = 1 << 12;
    options.requests = 120;
    options.warmupFraction = 0.25;
    return options;
}

TEST(LoadgenCliTest, ClosedLoopPointCompletesItsTarget)
{
    const LoadgenOptions options = tinyOptions();
    LoadPointSpec spec;
    spec.closedLoop = true;
    spec.concurrency = 4;

    const ServiceRunRecord record = runLoadPoint(options, spec);
    // 120 measured + 30 warmup, all drained: the measured window
    // balances and the id names the mode.
    EXPECT_EQ(record.service.global.completed, 120u);
    EXPECT_EQ(record.service.global.accepted, 120u);
    EXPECT_EQ(record.service.global.rejected, 0u);
    EXPECT_GT(record.service.achievedPerKilocycle, 0.0);
    EXPECT_EQ(record.base.point.id, "palermo/closed/conc=4");

    std::vector<std::string> problems;
    EXPECT_TRUE(serviceSanityCheck({record}, &problems))
        << (problems.empty() ? "" : problems.front());
}

TEST(LoadgenCliTest, OpenLoopPointTracksOfferedRate)
{
    LoadgenOptions options = tinyOptions();
    options.arrival = ArrivalProcess::Fixed;
    LoadPointSpec spec;
    spec.rate = 2.0; // Far below saturation: nothing may be rejected.

    const ServiceRunRecord record = runLoadPoint(options, spec);
    EXPECT_EQ(record.service.global.rejected, 0u);
    EXPECT_EQ(record.service.global.completed, 120u);
    // Fixed arrivals at rate 2 achieve ~2/kilocycle when unsaturated.
    EXPECT_NEAR(record.service.achievedPerKilocycle, 2.0, 0.3);
    EXPECT_EQ(record.base.point.id, "palermo/open-fixed/rate=2");

    std::vector<std::string> problems;
    EXPECT_TRUE(serviceSanityCheck({record}, &problems))
        << (problems.empty() ? "" : problems.front());
}

TEST(LoadgenCliTest, DocumentIsByteDeterministic)
{
    LoadgenOptions options = tinyOptions();
    options.openloopRates = {2.0};
    options.closedloopConcurrency = {2};

    const auto render = [&options]() {
        std::vector<ServiceRunRecord> records;
        for (const LoadPointSpec &spec : expandLoadPoints(options))
            records.push_back(runLoadPoint(options, spec));
        return loadgenDocument(records);
    };
    const std::string first = render();
    EXPECT_EQ(first, render());
    EXPECT_NE(first.find("\"schema\": \"palermo-metrics-v1\""),
              std::string::npos);
    EXPECT_NE(first.find("\"mode\": \"open\""), std::string::npos);
    EXPECT_NE(first.find("\"mode\": \"closed\""), std::string::npos);
    EXPECT_NE(first.find("\"service\""), std::string::npos);
    EXPECT_NE(first.find("\"max_achieved_per_kilocycle\""),
              std::string::npos);
}

TEST(LoadgenCliTest, SanityGateCatchesLostRequests)
{
    const LoadgenOptions options = tinyOptions();
    LoadPointSpec spec;
    spec.closedLoop = true;
    spec.concurrency = 2;
    ServiceRunRecord record = runLoadPoint(options, spec);

    record.service.global.accepted += 1; // Simulate a lost request.
    std::vector<std::string> problems;
    EXPECT_FALSE(serviceSanityCheck({record}, &problems));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("lost requests"), std::string::npos);
}

} // namespace
} // namespace palermo
