/** @file Unit tests for the multi-channel DRAM system facade. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/dram_system.hh"

namespace palermo {
namespace {

DramConfig
smallConfig()
{
    DramConfig config;
    config.org.channels = 4;
    config.org.rows = 1u << 10;
    config.queueDepth = 32;
    return config;
}

TEST(DramSystem, PeakBandwidthMatchesTableIII)
{
    DramSystem dram(smallConfig());
    EXPECT_DOUBLE_EQ(dram.peakBandwidthGBps(), 102.4);
    EXPECT_DOUBLE_EQ(dram.peakBytesPerTick(), 64.0);
}

TEST(DramSystem, SingleReadCompletes)
{
    DramSystem dram(smallConfig());
    ASSERT_TRUE(dram.enqueue(0x1000, false, 7));
    std::vector<Completion> done;
    for (int i = 0; i < 1000 && done.empty(); ++i) {
        dram.tick();
        for (const auto &c : dram.drainCompletions())
            done.push_back(c);
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].tag, 7u);
    EXPECT_EQ(dram.snapshot().reads, 1u);
}

TEST(DramSystem, CompletionsDrainInFinishOrder)
{
    DramSystem dram(smallConfig());
    Rng rng(1);
    for (std::uint64_t i = 0; i < 16; ++i)
        ASSERT_TRUE(dram.enqueue(rng.next() % (1 << 24) * 64, false, i));
    std::vector<Completion> done;
    for (int i = 0; i < 5000 && done.size() < 16; ++i) {
        dram.tick();
        for (const auto &c : dram.drainCompletions())
            done.push_back(c);
    }
    ASSERT_EQ(done.size(), 16u);
    for (std::size_t i = 1; i < done.size(); ++i)
        EXPECT_LE(done[i - 1].finishTick, done[i].finishTick);
}

TEST(DramSystem, StreamingSaturatesBandwidth)
{
    // Sequential lines interleave channels and walk open rows: the bus
    // should reach high utilization.
    DramSystem dram(smallConfig());
    Addr next_addr = 0;
    std::uint64_t completed = 0;
    const std::uint64_t target = 3000;
    std::uint64_t issued = 0;
    while (completed < target && dram.now() < 200000) {
        while (issued < target
               && dram.enqueue(next_addr, false, issued)) {
            next_addr += kBlockBytes;
            ++issued;
        }
        dram.tick();
        completed += dram.drainCompletions().size();
    }
    ASSERT_EQ(completed, target);
    EXPECT_GT(dram.snapshot().busUtilization(), 0.7);
    EXPECT_GT(dram.snapshot().rowHitRate(), 0.8);
}

TEST(DramSystem, RandomTrafficLowerUtilization)
{
    DramSystem dram(smallConfig());
    Rng rng(2);
    std::uint64_t completed = 0;
    const std::uint64_t target = 1500;
    std::uint64_t issued = 0;
    const std::uint64_t lines =
        smallConfig().org.capacityBytes() / kBlockBytes;
    while (completed < target && dram.now() < 400000) {
        while (issued < target
               && dram.enqueue(rng.range(lines) * kBlockBytes, false,
                               issued)) {
            ++issued;
        }
        dram.tick();
        completed += dram.drainCompletions().size();
    }
    ASSERT_EQ(completed, target);
    const DramSnapshot snap = dram.snapshot();
    EXPECT_LT(snap.rowHitRate(), 0.6);
    EXPECT_GT(snap.avgQueueOccupancy, 1.0);
}

TEST(DramSystem, ResetStatsKeepsState)
{
    DramSystem dram(smallConfig());
    ASSERT_TRUE(dram.enqueue(0, false, 1));
    for (int i = 0; i < 500; ++i)
        dram.tick();
    dram.drainCompletions();
    EXPECT_GT(dram.snapshot().reads, 0u);
    dram.resetStats();
    EXPECT_EQ(dram.snapshot().reads, 0u);
    EXPECT_GT(dram.now(), 0u); // Time itself is preserved.
}

TEST(DramSystem, OccupancyReflectsQueues)
{
    DramSystem dram(smallConfig());
    EXPECT_EQ(dram.occupancy(), 0u);
    ASSERT_TRUE(dram.enqueue(0, false, 1));
    ASSERT_TRUE(dram.enqueue(64, false, 2));
    EXPECT_EQ(dram.occupancy(), 2u);
}

TEST(DramSystem, WriteThenReadForwards)
{
    DramSystem dram(smallConfig());
    ASSERT_TRUE(dram.enqueue(0x2000, true, 0));
    ASSERT_TRUE(dram.enqueue(0x2000, false, 5));
    std::vector<Completion> done;
    for (int i = 0; i < 200 && done.empty(); ++i) {
        dram.tick();
        for (const auto &c : dram.drainCompletions())
            done.push_back(c);
    }
    ASSERT_EQ(done.size(), 1u);
    EXPECT_TRUE(done[0].forwarded);
    EXPECT_EQ(dram.snapshot().forwardedReads, 1u);
}

TEST(DramSystem, SnapshotAggregatesAcrossChannels)
{
    DramSystem dram(smallConfig());
    // One read per channel (consecutive lines interleave).
    for (unsigned i = 0; i < 4; ++i)
        ASSERT_TRUE(dram.enqueue(i * kBlockBytes, false, i));
    std::uint64_t completed = 0;
    for (int i = 0; i < 1000 && completed < 4; ++i) {
        dram.tick();
        completed += dram.drainCompletions().size();
    }
    ASSERT_EQ(completed, 4u);
    EXPECT_EQ(dram.snapshot().reads, 4u);
    EXPECT_EQ(dram.snapshot().rowMisses, 4u);
}

} // namespace
} // namespace palermo
