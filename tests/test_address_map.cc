/** @file Unit tests for DRAM address mapping. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/address_map.hh"

namespace palermo {
namespace {

DramOrg
smallOrg()
{
    DramOrg org;
    org.channels = 4;
    org.ranks = 1;
    org.bankGroups = 4;
    org.banksPerGroup = 4;
    org.rows = 1u << 12;
    org.columnsPerRow = 128;
    return org;
}

TEST(AddressMap, DecodeEncodeRoundTrip)
{
    const AddressMap map(smallOrg());
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr =
            (rng.next() % (smallOrg().capacityBytes() / kBlockBytes))
            * kBlockBytes;
        EXPECT_EQ(map.encode(map.decode(addr)), addr);
    }
}

TEST(AddressMap, CoordinatesInBounds)
{
    const DramOrg org = smallOrg();
    const AddressMap map(org);
    Rng rng(2);
    for (int i = 0; i < 5000; ++i) {
        const Addr addr =
            (rng.next() % (org.capacityBytes() / kBlockBytes))
            * kBlockBytes;
        const DecodedAddr dec = map.decode(addr);
        EXPECT_LT(dec.channel, org.channels);
        EXPECT_LT(dec.rank, org.ranks);
        EXPECT_LT(dec.bankGroup, org.bankGroups);
        EXPECT_LT(dec.bank, org.banksPerGroup);
        EXPECT_LT(dec.row, org.rows);
        EXPECT_LT(dec.column, org.columnsPerRow);
        EXPECT_LT(dec.flatBank(org), org.banksPerChannel());
    }
}

TEST(AddressMap, ConsecutiveLinesInterleaveChannels)
{
    const AddressMap map(smallOrg());
    for (unsigned line = 0; line < 16; ++line) {
        const DecodedAddr dec = map.decode(line * kBlockBytes);
        EXPECT_EQ(dec.channel, line % 4);
    }
}

TEST(AddressMap, BankGroupsInterleaveWithinChannel)
{
    // Within a channel, consecutive lines alternate bank groups so
    // streams pace at tCCD_S.
    const AddressMap map(smallOrg());
    const DecodedAddr a = map.decode(0);
    const DecodedAddr b = map.decode(4 * kBlockBytes);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_NE(a.bankGroup, b.bankGroup);
}

TEST(AddressMap, SameRowForStridedLinesOneBank)
{
    // Stride channels x bankGroups returns to the same bank and walks
    // its open row: row-buffer locality for streams.
    const AddressMap map(smallOrg());
    const DecodedAddr first = map.decode(0);
    const DecodedAddr second = map.decode(16 * kBlockBytes);
    EXPECT_EQ(first.channel, second.channel);
    EXPECT_EQ(first.row, second.row);
    EXPECT_EQ(first.flatBank(smallOrg()), second.flatBank(smallOrg()));
    EXPECT_NE(first.column, second.column);
}

TEST(AddressMap, AlternatePolicyRoundTrip)
{
    const AddressMap map(smallOrg(), MapPolicy::RoCoBaRaCh);
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const Addr addr =
            (rng.next() % (smallOrg().capacityBytes() / kBlockBytes))
            * kBlockBytes;
        EXPECT_EQ(map.encode(map.decode(addr)), addr);
    }
}

TEST(AddressMap, AlternatePolicyInterleavesBanks)
{
    const AddressMap map(smallOrg(), MapPolicy::RoCoBaRaCh);
    const DecodedAddr a = map.decode(0);
    const DecodedAddr b = map.decode(4 * kBlockBytes);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_NE(a.flatBank(smallOrg()), b.flatBank(smallOrg()));
}

TEST(DramOrg, CapacityMath)
{
    const DramOrg org = smallOrg();
    // 4ch x 1rank x 16 banks x 4096 rows x 128 cols x 64B = 2 GiB.
    EXPECT_EQ(org.capacityBytes(), 2ull << 30);
}

} // namespace
} // namespace palermo
