/** @file Unit tests for the lazy position map. */

#include <gtest/gtest.h>

#include <map>

#include "oram/posmap.hh"

namespace palermo {
namespace {

TEST(PosMap, DefaultsAreDeterministic)
{
    PosMap a(1024, 64, 7);
    PosMap b(1024, 64, 7);
    for (BlockId block = 0; block < 256; ++block)
        EXPECT_EQ(a.get(block), b.get(block));
}

TEST(PosMap, DefaultsInRange)
{
    PosMap pm(4096, 128, 9);
    for (BlockId block = 0; block < 4096; block += 7)
        EXPECT_LT(pm.get(block), 128u);
}

TEST(PosMap, DefaultsRoughlyUniform)
{
    PosMap pm(1 << 16, 16, 11);
    std::map<Leaf, int> counts;
    for (BlockId block = 0; block < (1 << 14); ++block)
        ++counts[pm.get(block)];
    EXPECT_EQ(counts.size(), 16u);
    for (const auto &[leaf, count] : counts)
        EXPECT_NEAR(count, 1024, 300);
}

TEST(PosMap, SetOverridesDefault)
{
    PosMap pm(1024, 64, 7);
    const Leaf before = pm.get(10);
    pm.set(10, (before + 1) % 64);
    EXPECT_EQ(pm.get(10), (before + 1) % 64);
    EXPECT_EQ(pm.touchedCount(), 1u);
}

TEST(PosMap, KeySeparation)
{
    PosMap a(1024, 64, 1);
    PosMap b(1024, 64, 2);
    int same = 0;
    for (BlockId block = 0; block < 256; ++block)
        same += (a.get(block) == b.get(block));
    EXPECT_LT(same, 32); // ~1/64 expected collisions.
}

TEST(PosMap, GroupDefaultsShareLeaf)
{
    // PrORAM: consecutive blocks in a prefetch group default to one leaf.
    PosMap pm(1024, 64, 7, /*default_group=*/4);
    for (BlockId group = 0; group < 16; ++group) {
        const Leaf leaf = pm.get(group * 4);
        for (unsigned i = 1; i < 4; ++i)
            EXPECT_EQ(pm.get(group * 4 + i), leaf);
    }
}

TEST(PosMap, GroupOverridesAreIndependent)
{
    PosMap pm(1024, 64, 7, 4);
    const Leaf shared = pm.get(0);
    pm.set(0, (shared + 1) % 64);
    EXPECT_EQ(pm.get(1), shared); // Sibling unchanged.
}

} // namespace
} // namespace palermo
