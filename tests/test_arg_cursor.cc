/** @file Edge-case tests for ArgCursor and the tool arg parsers. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/run_cli.hh"

namespace palermo {
namespace {

/** Build a stable argv from string literals for one cursor run. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : args_(std::move(args))
    {
        for (const std::string &arg : args_)
            pointers_.push_back(arg.c_str());
    }

    int argc() const { return static_cast<int>(pointers_.size()); }
    const char *const *argv() const { return pointers_.data(); }

  private:
    std::vector<std::string> args_;
    std::vector<const char *> pointers_;
};

TEST(ArgCursor, WalksFlagsAndValues)
{
    const Argv args({"--alpha", "1", "--beta=2", "--gamma"});
    ArgCursor cursor(args.argc(), args.argv());
    std::string value;

    ASSERT_TRUE(cursor.advance());
    EXPECT_EQ(cursor.name(), "--alpha");
    ASSERT_TRUE(cursor.value(&value));
    EXPECT_EQ(value, "1"); // Separate-token form consumes the next arg.

    ASSERT_TRUE(cursor.advance());
    EXPECT_EQ(cursor.name(), "--beta");
    ASSERT_TRUE(cursor.value(&value));
    EXPECT_EQ(value, "2"); // '=' form.

    ASSERT_TRUE(cursor.advance());
    EXPECT_EQ(cursor.name(), "--gamma");
    EXPECT_FALSE(cursor.value(&value)); // Exhausted argv.

    EXPECT_FALSE(cursor.advance());
    EXPECT_FALSE(cursor.advance()); // Stays exhausted.
}

TEST(ArgCursor, EqualsEdgeCases)
{
    const Argv args({"--empty=", "--chain=a=b", "--next", "value"});
    ArgCursor cursor(args.argc(), args.argv());
    std::string value;

    ASSERT_TRUE(cursor.advance());
    EXPECT_EQ(cursor.name(), "--empty");
    ASSERT_TRUE(cursor.value(&value));
    EXPECT_EQ(value, ""); // "--flag=" is an explicit empty value.

    ASSERT_TRUE(cursor.advance());
    EXPECT_EQ(cursor.name(), "--chain");
    ASSERT_TRUE(cursor.value(&value));
    EXPECT_EQ(value, "a=b"); // Only the first '=' splits.

    ASSERT_TRUE(cursor.advance());
    ASSERT_TRUE(cursor.value(&value));
    EXPECT_EQ(value, "value");
    EXPECT_FALSE(cursor.advance());
}

TEST(ArgCursor, EmptyArgvNeverAdvances)
{
    ArgCursor cursor(0, nullptr);
    EXPECT_FALSE(cursor.advance());
}

/**
 * Fuzz-ish sweep: every 3-token combination over a small alphabet must
 * parse or fail cleanly (no crash, and failures always carry a
 * message). Run through the real palermo_run parser.
 */
TEST(RunArgs, ArbitraryTokenCombinationsNeverCrash)
{
    const std::vector<std::string> alphabet = {
        "--protocol", "palermo",  "--blocks", "4096", "--seed",
        "--json",     "-",        "=",        "--blocks=0",
        "--reqs=10",  "--paper",  "bogus",    "--sweep", "",
        "--jobs=2",   "--blocks=999999999999999999999999",
    };
    for (const std::string &a : alphabet) {
        for (const std::string &b : alphabet) {
            for (const std::string &c : alphabet) {
                const Argv args({a, b, c});
                RunOptions options;
                std::string error;
                const bool ok = parseRunArgs(args.argc(), args.argv(),
                                             &options, &error);
                if (!ok) {
                    EXPECT_FALSE(error.empty())
                        << a << " " << b << " " << c;
                }
            }
        }
    }
}

TEST(ReplayArgs, ArbitraryTokenCombinationsNeverCrash)
{
    const std::vector<std::string> alphabet = {
        "--trace",    "x.trace", "--depth=0",  "--depth",
        "--blocks=8", "--seed",  "--progress", "nonsense",
        "--json=-",   "",
    };
    for (const std::string &a : alphabet) {
        for (const std::string &b : alphabet) {
            for (const std::string &c : alphabet) {
                const Argv args({a, b, c});
                ReplayOptions options;
                std::string error;
                const bool ok = parseReplayArgs(
                    args.argc(), args.argv(), &options, &error);
                if (!ok) {
                    EXPECT_FALSE(error.empty())
                        << a << " " << b << " " << c;
                }
            }
        }
    }
}

} // namespace
} // namespace palermo
