/** @file Unit tests for the tree-to-DRAM address layout. */

#include <gtest/gtest.h>

#include <set>

#include "oram/layout.hh"

namespace palermo {
namespace {

TEST(TreeLayout, SlotAddressesDistinctAndInFootprint)
{
    const OramParams p = OramParams::ring(1 << 8, 4, 5, 3);
    const TreeLayout layout(0x10000, p);
    std::set<Addr> seen;
    for (NodeId node = 0; node < p.numNodes; ++node) {
        for (unsigned slot = 0; slot < p.slotsAt(p.levelOf(node));
             ++slot) {
            const Addr addr = layout.slotAddr(node, slot);
            EXPECT_TRUE(seen.insert(addr).second);
            EXPECT_GE(addr, layout.base());
            EXPECT_LT(addr, layout.endAddr());
            EXPECT_EQ(addr % kBlockBytes, 0u);
        }
    }
}

TEST(TreeLayout, MetaRegionDisjointFromData)
{
    const OramParams p = OramParams::ring(1 << 8, 4, 5, 3);
    const TreeLayout layout(0, p);
    Addr max_data = 0;
    for (NodeId node = 0; node < p.numNodes; ++node) {
        const unsigned slots = p.slotsAt(p.levelOf(node));
        max_data = std::max(max_data,
                            layout.slotAddr(node, slots - 1));
    }
    for (NodeId node = 0; node < p.numNodes; ++node) {
        EXPECT_GT(layout.metaAddr(node), max_data);
        EXPECT_LT(layout.metaAddr(node), layout.endAddr());
    }
}

TEST(TreeLayout, SiblingsAdjacent)
{
    // Heap layout: the two children of a node occupy consecutive bucket
    // slots — PageORAM's row-locality assumption.
    const OramParams p = OramParams::path(1 << 8, 4);
    const TreeLayout layout(0, p);
    const unsigned slots = p.slotsAt(1);
    EXPECT_EQ(layout.slotAddr(2, 0) - layout.slotAddr(1, 0),
              static_cast<Addr>(slots) * p.blockBytes);
}

TEST(TreeLayout, PerLevelCapacitiesHonored)
{
    OramParams p = OramParams::ring(1 << 8, 4, 5, 3);
    applyFatTree(p);
    const TreeLayout layout(0, p);
    // Root has 2Z+S slots; the last root slot must not collide with the
    // first slot of node 1.
    const Addr root_last =
        layout.slotAddr(0, p.slotsAt(0) - 1);
    EXPECT_EQ(layout.slotAddr(1, 0) - root_last,
              static_cast<Addr>(p.blockBytes));
}

TEST(TreeLayout, WideBlockOps)
{
    const OramParams p = OramParams::ring(1 << 8, 4, 5, 3, 256);
    const TreeLayout layout(0, p);
    std::vector<MemOp> ops;
    layout.appendSlotOps(ops, 0, 0, false);
    ASSERT_EQ(ops.size(), 4u);
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(ops[i].addr, layout.slotAddr(0, 0) + i * kBlockBytes);
        EXPECT_FALSE(ops[i].write);
    }
}

TEST(TreeLayout, FootprintCoversDataAndMeta)
{
    const OramParams p = OramParams::ring(1 << 8, 4, 5, 3);
    const TreeLayout layout(0, p);
    std::uint64_t slots = 0;
    for (unsigned level = 0; level < p.levels; ++level)
        slots += (std::uint64_t{1} << level) * p.slotsAt(level);
    EXPECT_EQ(layout.footprintBytes(),
              slots * p.blockBytes + p.numNodes * kBlockBytes);
}

TEST(TreeLayout, TreesCanBeStacked)
{
    const OramParams p = OramParams::ring(1 << 8, 4, 5, 3);
    const TreeLayout first(0, p);
    const TreeLayout second(first.endAddr(), p);
    EXPECT_EQ(second.base(), first.endAddr());
    EXPECT_GT(second.slotAddr(0, 0), first.metaAddr(p.numNodes - 1));
}

} // namespace
} // namespace palermo
