/** @file Unit tests for tree-top cache sizing. */

#include <gtest/gtest.h>

#include "controller/treetop_cache.hh"
#include "oram/hierarchy.hh"

namespace palermo {
namespace {

TEST(TreetopCache, ZeroBudgetCachesNothing)
{
    const OramParams params = OramParams::ring(1 << 12, 4, 5, 3);
    const TreetopCache cache(params, 0);
    EXPECT_EQ(cache.cachedLevels(), 0u);
    EXPECT_EQ(cache.usedBytes(), 0u);
}

TEST(TreetopCache, BudgetForRootOnly)
{
    const OramParams params = OramParams::ring(1 << 12, 4, 5, 3);
    // Root: (4+5) slots * 64B + 64B meta = 640 bytes.
    const TreetopCache exact(params, 640);
    EXPECT_EQ(exact.cachedLevels(), 1u);
    EXPECT_EQ(exact.usedBytes(), 640u);
    const TreetopCache short_of(params, 639);
    EXPECT_EQ(short_of.cachedLevels(), 0u);
}

TEST(TreetopCache, LevelsGrowWithBudget)
{
    const OramParams params = OramParams::ring(1 << 14, 16, 27, 20);
    unsigned previous = 0;
    for (std::uint64_t budget : {1024ull, 16384ull, 262144ull}) {
        const TreetopCache cache(params, budget);
        EXPECT_GE(cache.cachedLevels(), previous);
        EXPECT_LE(cache.usedBytes(), budget);
        previous = cache.cachedLevels();
    }
    EXPECT_GT(previous, 0u);
}

TEST(TreetopCache, CoverageFraction)
{
    const OramParams params = OramParams::ring(1 << 12, 4, 5, 3);
    const TreetopCache cache(params, 64 * 1024);
    EXPECT_GT(cache.pathCoverage(), 0.0);
    EXPECT_LE(cache.pathCoverage(), 1.0);
    EXPECT_DOUBLE_EQ(cache.pathCoverage(),
                     static_cast<double>(cache.cachedLevels())
                         / params.levels);
}

TEST(TreetopCache, NeverExceedsTreeLevels)
{
    const OramParams params = OramParams::ring(256, 4, 5, 3);
    const TreetopCache cache(params, 1ull << 30);
    EXPECT_LE(cache.cachedLevels(), params.levels);
}

TEST(CachedLevelsFor, AgreesWithTreetopCache)
{
    const OramParams params = OramParams::ring(1 << 14, 16, 27, 20);
    for (std::uint64_t budget : {0ull, 4096ull, 1048576ull}) {
        EXPECT_EQ(cachedLevelsFor(params, budget),
                  TreetopCache(params, budget).cachedLevels());
    }
}

} // namespace
} // namespace palermo
