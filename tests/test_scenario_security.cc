/**
 * @file Cross-tenant interference security tests: the merged
 * attacker-visible leaf sequence of a multi-tenant scenario must look
 * like fresh uniform draws regardless of which tenant produced each
 * access — chi-square uniformity and bounded lag-1 correlation for
 * both the Palermo and Path ORAM protocols, plus the Equation-1
 * mutual-information gate when enough samples accumulate.
 */

#include <gtest/gtest.h>

#include <string>

#include "scenario/engine.hh"
#include "scenario/scenario.hh"

namespace palermo {
namespace {

/**
 * An adversarial pairing: a skewed bursty writer sharing the service
 * with a uniform point-lookup reader. If tenant identity or key skew
 * leaked into the remapped leaf sequence, this is where it would show.
 */
ScenarioSpec
adversarialSpec(ProtocolKind protocol)
{
    ScenarioSpec spec;
    spec.name = "adversarial";
    spec.protocol = protocol;
    spec.blocks = 16384;
    spec.seed = 13;
    spec.duration = 120000;
    spec.warmupCompletions = 32;

    TenantSpec bursty;
    bursty.name = "bursty";
    bursty.rate = 4.0;
    bursty.burstOnCycles = 4000;
    bursty.burstOffCycles = 8000;
    bursty.dist = KeyDist::Zipf;
    bursty.zipfAlpha = 1.2;
    bursty.writeFraction = 0.5;
    spec.tenants.push_back(bursty);

    TenantSpec reader;
    reader.name = "point-lookup";
    reader.rate = 1.5;
    reader.dist = KeyDist::Uniform;
    spec.tenants.push_back(reader);
    return spec;
}

ScenarioRunOptions
securityOnly()
{
    ScenarioRunOptions options;
    options.isolation = false;
    options.security = true;
    return options;
}

void
expectGatesPass(ProtocolKind protocol)
{
    ScenarioOutcome outcome;
    std::string error;
    ASSERT_TRUE(runScenario(adversarialSpec(protocol), securityOnly(),
                            &outcome, &error))
        << error;

    const ScenarioSecurity &security = outcome.security;
    ASSERT_TRUE(security.evaluated);
    EXPECT_GT(security.leafObservations, 100u);
    EXPECT_TRUE(security.chiSquare.uniform)
        << "chi2 " << security.chiSquare.statistic << " vs "
        << security.chiSquare.threshold;
    EXPECT_LE(security.serialCorrelation, security.correlationBound());
    EXPECT_GE(security.serialCorrelation, -security.correlationBound());
    if (security.miEvaluated)
        EXPECT_LE(security.mutualInformationBits,
                  ScenarioSecurity::kMiBound);
    EXPECT_TRUE(security.pass());
}

TEST(ScenarioSecurityTest, PalermoMergedTraceLooksUniform)
{
    expectGatesPass(ProtocolKind::Palermo);
}

TEST(ScenarioSecurityTest, PathOramMergedTraceLooksUniform)
{
    expectGatesPass(ProtocolKind::PathOram);
}

TEST(ScenarioSecurityTest, SkippingSecurityLeavesGateUnevaluated)
{
    ScenarioRunOptions options;
    options.isolation = false;
    options.security = false;
    ScenarioOutcome outcome;
    std::string error;
    ASSERT_TRUE(runScenario(adversarialSpec(ProtocolKind::Palermo),
                            options, &outcome, &error))
        << error;
    EXPECT_FALSE(outcome.security.evaluated);
    EXPECT_TRUE(outcome.security.pass());
}

TEST(ScenarioSecurityTest, CorrelationBoundWidensForShortRuns)
{
    ScenarioSecurity security;
    security.leafObservations = 100;
    // 3/sqrt(100) = 0.3 > the 0.1 fixed bound.
    EXPECT_DOUBLE_EQ(security.correlationBound(), 0.3);
    security.leafObservations = 1000000;
    EXPECT_DOUBLE_EQ(security.correlationBound(),
                     ScenarioSecurity::kCorrelationBound);
    security.leafObservations = 0;
    EXPECT_DOUBLE_EQ(security.correlationBound(),
                     ScenarioSecurity::kCorrelationBound);
}

TEST(ScenarioSecurityTest, GateFailsOnNonUniformSequence)
{
    ScenarioSecurity security;
    security.evaluated = true;
    security.leafObservations = 100000;
    security.chiSquare.uniform = false;
    EXPECT_FALSE(security.pass());

    security.chiSquare.uniform = true;
    security.serialCorrelation = 0.5;
    EXPECT_FALSE(security.pass());

    security.serialCorrelation = 0.0;
    security.miEvaluated = true;
    security.mutualInformationBits = 1.0;
    EXPECT_FALSE(security.pass());

    security.mutualInformationBits = 0.01;
    EXPECT_TRUE(security.pass());
}

} // namespace
} // namespace palermo
