/** @file Malformed-input and round-trip tests for the trace loader. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "sim/trace_file.hh"

namespace palermo {
namespace {

bool
load(const std::string &text, std::vector<FrontendRequest> *out,
     std::string *error)
{
    std::istringstream in(text);
    out->clear();
    error->clear();
    return loadTraceStream(in, "test", out, error);
}

TEST(TraceFile, ParsesReadsWritesAndComments)
{
    std::vector<FrontendRequest> trace;
    std::string error;
    ASSERT_TRUE(load("# header comment\n"
                     "R 5\n"
                     "w 7 99   # inline comment\n"
                     "\n"
                     "W 0\n"
                     "r 12\n",
                     &trace, &error))
        << error;
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[0].pa, 5u);
    EXPECT_FALSE(trace[0].write);
    EXPECT_EQ(trace[1].pa, 7u);
    EXPECT_TRUE(trace[1].write);
    EXPECT_EQ(trace[1].value, 99u);
    EXPECT_TRUE(trace[2].write);
    EXPECT_EQ(trace[2].value, 0u); // Payload optional on writes.
    EXPECT_FALSE(trace[3].write);
    for (const FrontendRequest &request : trace)
        EXPECT_FALSE(request.dummy);
}

TEST(TraceFile, EmptyTraceIsAnError)
{
    std::vector<FrontendRequest> trace;
    std::string error;
    EXPECT_FALSE(load("", &trace, &error));
    EXPECT_NE(error.find("holds no records"), std::string::npos);
    EXPECT_FALSE(load("# only comments\n\n  \n", &trace, &error));
    EXPECT_NE(error.find("holds no records"), std::string::npos);
}

TEST(TraceFile, RejectsMalformedRecordsWithLineNumbers)
{
    std::vector<FrontendRequest> trace;
    std::string error;

    EXPECT_FALSE(load("R 1\nX 2\n", &trace, &error));
    EXPECT_NE(error.find("test:2"), std::string::npos);
    EXPECT_NE(error.find("unknown op"), std::string::npos);

    EXPECT_FALSE(load("R\n", &trace, &error));
    EXPECT_NE(error.find("missing line index"), std::string::npos);

    EXPECT_FALSE(load("R banana\n", &trace, &error));
    EXPECT_NE(error.find("bad line index"), std::string::npos);

    EXPECT_FALSE(load("R 1 77\n", &trace, &error));
    EXPECT_NE(error.find("payload on a read"), std::string::npos);

    EXPECT_FALSE(load("W 1 banana\n", &trace, &error));
    EXPECT_NE(error.find("bad payload"), std::string::npos);

    EXPECT_FALSE(load("W 1 2 3\n", &trace, &error));
    EXPECT_NE(error.find("trailing token"), std::string::npos);
}

TEST(TraceFile, RejectsOverflowValues)
{
    std::vector<FrontendRequest> trace;
    std::string error;
    // One past 2^64 - 1 must not wrap silently.
    EXPECT_FALSE(load("R 18446744073709551616\n", &trace, &error));
    EXPECT_NE(error.find("bad line index"), std::string::npos);
    // The maximum representable index is accepted verbatim.
    ASSERT_TRUE(load("R 18446744073709551615\n", &trace, &error))
        << error;
    EXPECT_EQ(trace[0].pa, 18446744073709551615ull);
    // Negative numbers are not unsigned indices.
    EXPECT_FALSE(load("R -1\n", &trace, &error));
}

TEST(TraceFile, MissingFileIsAnError)
{
    std::vector<FrontendRequest> trace;
    std::string error;
    EXPECT_FALSE(loadTraceFile("/nonexistent/path/x.trace", &trace,
                               &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(TraceFile, LoadsTheShippedExample)
{
    std::vector<FrontendRequest> trace;
    std::string error;
    const std::string path =
        std::string(PALERMO_SOURCE_DIR) + "/tools/traces/tiny.trace";
    ASSERT_TRUE(loadTraceFile(path, &trace, &error)) << error;
    EXPECT_FALSE(trace.empty());
}

} // namespace
} // namespace palermo
