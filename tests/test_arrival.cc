/**
 * @file Traffic-shape primitive tests: arrival gaps (Fixed consumes
 * no randomness, Poisson has the right mean), tenant key samplers
 * (range, determinism, Zipf skew), the piecewise RateCurve inversion
 * against numerical integration, and BurstPattern's active-to-wall
 * clock mapping.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "scenario/arrival.hh"

namespace palermo {
namespace {

TEST(ArrivalTest, NamesRoundTrip)
{
    ArrivalProcess process = ArrivalProcess::Fixed;
    EXPECT_TRUE(arrivalProcessFromName("poisson", &process));
    EXPECT_EQ(process, ArrivalProcess::Poisson);
    EXPECT_TRUE(arrivalProcessFromName("fixed", &process));
    EXPECT_EQ(process, ArrivalProcess::Fixed);
    EXPECT_FALSE(arrivalProcessFromName("bursty", &process));
    EXPECT_STREQ(arrivalProcessName(ArrivalProcess::Poisson), "poisson");

    KeyDist dist = KeyDist::Zipf;
    EXPECT_TRUE(keyDistFromName("uniform", &dist));
    EXPECT_EQ(dist, KeyDist::Uniform);
    EXPECT_TRUE(keyDistFromName("zipf", &dist));
    EXPECT_EQ(dist, KeyDist::Zipf);
    EXPECT_FALSE(keyDistFromName("hot", &dist));
    EXPECT_STREQ(keyDistName(KeyDist::Uniform), "uniform");
}

TEST(ArrivalTest, FixedGapConsumesNoRandomness)
{
    Rng a(42), b(42);
    for (int i = 0; i < 16; ++i)
        EXPECT_DOUBLE_EQ(arrivalGap(ArrivalProcess::Fixed, 125.0, a),
                         125.0);
    // The rng was never touched: it still matches a fresh copy.
    EXPECT_EQ(a.next(), b.next());
}

TEST(ArrivalTest, PoissonGapHasExponentialMean)
{
    Rng rng(7);
    const double mean = 200.0;
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double gap = arrivalGap(ArrivalProcess::Poisson, mean, rng);
        EXPECT_GE(gap, 0.0);
        sum += gap;
    }
    // Sample mean of Exp(1/200) concentrates within a few percent.
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(ArrivalTest, KeySamplerStaysInSliceAndIsDeterministic)
{
    const std::uint64_t slice = 1000;
    TenantKeySampler a(KeyDist::Uniform, 0.99, 3, slice, 99);
    TenantKeySampler b(KeyDist::Uniform, 0.99, 3, slice, 99);
    for (int i = 0; i < 500; ++i) {
        const unsigned tenant = static_cast<unsigned>(i % 3);
        const std::uint64_t key = a.draw(tenant);
        EXPECT_LT(key, slice);
        EXPECT_EQ(key, b.draw(tenant));
    }
}

TEST(ArrivalTest, ZipfSamplerSkewsTowardHotKeys)
{
    const std::uint64_t slice = 4096;
    TenantKeySampler sampler(KeyDist::Zipf, 1.2, 1, slice, 5);
    std::uint64_t hot = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        if (sampler.draw(0) < slice / 16)
            ++hot;
    // Under uniformity the hot 1/16th would get ~6% of draws; a 1.2
    // Zipf concentrates far more than that.
    EXPECT_GT(hot, n / 4);
}

TEST(ArrivalTest, ZipfTenantsDrawIndependentSequences)
{
    TenantKeySampler sampler(KeyDist::Zipf, 0.99, 2, 4096, 11);
    int same = 0;
    for (int i = 0; i < 200; ++i)
        if (sampler.draw(0) == sampler.draw(1))
            ++same;
    EXPECT_LT(same, 100);
}

TEST(RateCurveTest, ConstantCurveInvertsExactly)
{
    const RateCurve curve = RateCurve::constant(2.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(0.0), 2.0);
    EXPECT_DOUBLE_EQ(curve.rateAt(1e9), 2.0);
    // rate 2/kilocycle = density 0.002; u = 1 -> gap 500 cycles.
    EXPECT_NEAR(curve.nextArrival(100.0, 1.0), 600.0, 1e-9);
}

TEST(RateCurveTest, PiecewiseInversionCrossesSegments)
{
    // 1/kc until cycle 1000, then 4/kc.
    const RateCurve curve({{1000, 1.0}, {kTickNever, 4.0}});
    // From t=500: 0.5 units of integral to the boundary (500 cycles at
    // density 0.001), remaining 1.5 units at density 0.004 = 375.
    EXPECT_NEAR(curve.nextArrival(500.0, 2.0), 1375.0, 1e-9);
    // A draw fully inside the first segment never sees the second.
    EXPECT_NEAR(curve.nextArrival(0.0, 0.5), 500.0, 1e-9);
}

TEST(RateCurveTest, SilentTailReturnsNegative)
{
    const RateCurve curve({{1000, 1.0}, {kTickNever, 0.0}});
    // Only 1 unit of integral remains after t=0; asking for 2 runs
    // off the silent end.
    EXPECT_LT(curve.nextArrival(0.0, 2.0), 0.0);
    EXPECT_GT(curve.nextArrival(0.0, 0.5), 0.0);
}

TEST(BurstPatternTest, AlwaysOnIsIdentity)
{
    const BurstPattern burst(5000, 0);
    EXPECT_TRUE(burst.alwaysOn());
    EXPECT_DOUBLE_EQ(burst.wallTime(1234.5), 1234.5);
}

TEST(BurstPatternTest, OffWindowsStretchWallTime)
{
    const BurstPattern burst(100, 300);
    EXPECT_FALSE(burst.alwaysOn());
    // Inside the first on-window: unchanged.
    EXPECT_DOUBLE_EQ(burst.wallTime(50.0), 50.0);
    // One full burst consumed: active 150 = 100 on + skip 300 off + 50.
    EXPECT_DOUBLE_EQ(burst.wallTime(150.0), 450.0);
    // Two full bursts.
    EXPECT_DOUBLE_EQ(burst.wallTime(250.0), 850.0);
}

} // namespace
} // namespace palermo
