/**
 * @file Unit tests for the self-registering protocol registry: name
 * resolution across tokens/display names/aliases, Fig. 10 bar order,
 * capability flags, and the config-normalization hooks that replaced
 * the factory switch.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "controller/controller.hh"
#include "sim/experiment.hh"
#include "sim/protocol_registry.hh"
#include "sim/sweep.hh"

namespace palermo {
namespace {

SystemConfig
tinyConfig()
{
    SystemConfig config;
    config.protocol.numBlocks = 1 << 12;
    config.protocol.treetopBytes = {8192, 4096, 2048};
    config.totalRequests = 60;
    return config;
}

TEST(ProtocolRegistry, AllEightDesignPointsRegistered)
{
    EXPECT_EQ(ProtocolRegistry::instance().size(), 8u);
    for (ProtocolKind kind : allProtocolKinds()) {
        const ProtocolDescriptor *descriptor =
            ProtocolRegistry::instance().find(kind);
        ASSERT_NE(descriptor, nullptr);
        EXPECT_NE(descriptor->displayName, nullptr);
        EXPECT_NE(descriptor->shortToken, nullptr);
        EXPECT_TRUE(static_cast<bool>(descriptor->build));
    }
}

TEST(ProtocolRegistry, BarOrderMatchesFig10)
{
    // The paper's Fig. 10 x-axis, left to right.
    const std::vector<ProtocolKind> expected = {
        ProtocolKind::PathOram,  ProtocolKind::RingOram,
        ProtocolKind::PageOram,  ProtocolKind::PrOram,
        ProtocolKind::IrOram,    ProtocolKind::PalermoSw,
        ProtocolKind::Palermo,   ProtocolKind::PalermoPrefetch,
    };
    EXPECT_EQ(allProtocolKinds(), expected);

    unsigned position = 0;
    for (const ProtocolDescriptor *descriptor :
         ProtocolRegistry::instance().all())
        EXPECT_EQ(descriptor->barOrder, position++)
            << descriptor->displayName;
}

TEST(ProtocolRegistry, ResolvesDisplayNameTokenAndAliases)
{
    for (const ProtocolDescriptor *descriptor :
         ProtocolRegistry::instance().all()) {
        std::vector<std::string> spellings{descriptor->displayName,
                                           descriptor->shortToken};
        for (const std::string &alias : descriptor->aliases)
            spellings.push_back(alias);

        for (const std::string &name : spellings) {
            ProtocolKind kind = ProtocolKind::PathOram;
            EXPECT_TRUE(protocolFromName(name, &kind)) << name;
            EXPECT_EQ(kind, descriptor->kind) << name;

            // Case-insensitive: uppercase every spelling too.
            std::string upper = name;
            std::transform(upper.begin(), upper.end(), upper.begin(),
                           [](unsigned char c) {
                               return static_cast<char>(
                                   std::toupper(c));
                           });
            EXPECT_TRUE(protocolFromName(upper, &kind)) << upper;
            EXPECT_EQ(kind, descriptor->kind) << upper;
        }
    }
}

TEST(ProtocolRegistry, LegacyAliasesStillResolve)
{
    // Spellings the pre-registry parser accepted must keep working.
    const struct
    {
        const char *name;
        ProtocolKind kind;
    } cases[] = {
        {"pathoram", ProtocolKind::PathOram},
        {"RingOram", ProtocolKind::RingOram},
        {"pageoram", ProtocolKind::PageOram},
        {"PrORAM", ProtocolKind::PrOram},
        {"iroram", ProtocolKind::IrOram},
        {"IR-ORAM", ProtocolKind::IrOram},
        {"palermosw", ProtocolKind::PalermoSw},
        {"sw", ProtocolKind::PalermoSw},
        {"palermo-prefetch", ProtocolKind::PalermoPrefetch},
        {"Palermo+Prefetch", ProtocolKind::PalermoPrefetch},
        {"palermo+pf", ProtocolKind::PalermoPrefetch},
    };
    for (const auto &expected : cases) {
        ProtocolKind kind = ProtocolKind::Palermo;
        EXPECT_TRUE(protocolFromName(expected.name, &kind))
            << expected.name;
        EXPECT_EQ(kind, expected.kind) << expected.name;
    }
    ProtocolKind kind;
    EXPECT_FALSE(protocolFromName("quantum-oram", &kind));
    EXPECT_EQ(ProtocolRegistry::instance().findByName("quantum-oram"),
              nullptr);
}

TEST(ProtocolRegistry, NamesAndTokensAreUnique)
{
    std::set<std::string> seen;
    for (const ProtocolDescriptor *descriptor :
         ProtocolRegistry::instance().all()) {
        EXPECT_TRUE(seen.insert(descriptor->displayName).second);
        EXPECT_TRUE(seen.insert(descriptor->shortToken).second);
        for (const std::string &alias : descriptor->aliases)
            EXPECT_TRUE(seen.insert(alias).second) << alias;
    }
}

TEST(ProtocolRegistry, CapabilityFlagsMatchTheDesigns)
{
    const ProtocolRegistry &registry = ProtocolRegistry::instance();
    for (const ProtocolDescriptor *descriptor : registry.all()) {
        const bool prefetching =
            descriptor->kind == ProtocolKind::PrOram
            || descriptor->kind == ProtocolKind::PalermoPrefetch;
        EXPECT_EQ(descriptor->supportsPrefetch, prefetching)
            << descriptor->displayName;
        EXPECT_TRUE(descriptor->constantRateCapable)
            << descriptor->displayName;
    }
}

TEST(ProtocolRegistry, BuildsAControllerForEveryKind)
{
    const SystemConfig config = tinyConfig();
    for (ProtocolKind kind : allProtocolKinds()) {
        const auto controller = makeController(kind, config);
        ASSERT_NE(controller, nullptr) << protocolKindName(kind);
        EXPECT_TRUE(controller->canAccept()) << protocolKindName(kind);
        EXPECT_TRUE(controller->idle()) << protocolKindName(kind);
    }
}

TEST(ProtocolRegistry, NonPrefetchDescriptorsClampPrefetchLen)
{
    // The capability clamp replaced the per-case prefetchLen = 1
    // assignments of the old factory switch: a non-prefetch design
    // given a prefetch config must not widen its blocks.
    SystemConfig config = tinyConfig();
    config.protocol.prefetchLen = 8;
    const RunMetrics plain =
        runExperiment(ProtocolKind::Palermo, Workload::Stream, config);
    SystemConfig clamped = tinyConfig();
    clamped.protocol.prefetchLen = 1;
    const RunMetrics reference =
        runExperiment(ProtocolKind::Palermo, Workload::Stream, clamped);
    EXPECT_EQ(plain.measuredCycles, reference.measuredCycles);
    EXPECT_EQ(plain.dramReads, reference.dramReads);
    EXPECT_EQ(plain.llcHits, 0u);
}

TEST(ProtocolRegistry, PalermoPrefetchDerivesAPrefetchLength)
{
    // Satellite fix: palermo-pf with the no-prefetch default used to
    // silently degenerate to plain Palermo. The descriptor's adjust
    // hook now derives a real prefetch length instead.
    const ProtocolDescriptor &descriptor =
        ProtocolRegistry::instance().at(ProtocolKind::PalermoPrefetch);
    ASSERT_TRUE(static_cast<bool>(descriptor.adjustConfig));

    SystemConfig defaulted = tinyConfig();
    descriptor.adjustConfig(defaulted);
    EXPECT_GT(defaulted.protocol.prefetchLen, 1u);

    // An explicit choice is honored untouched.
    SystemConfig chosen = tinyConfig();
    chosen.protocol.prefetchLen = 8;
    descriptor.adjustConfig(chosen);
    EXPECT_EQ(chosen.protocol.prefetchLen, 8u);

    // End to end: a defaulted palermo-pf run now actually prefetches
    // (LLC hits can only come from widened fills).
    SystemConfig config = tinyConfig();
    config.totalRequests = 200;
    const RunMetrics metrics = runExperiment(
        ProtocolKind::PalermoPrefetch, Workload::Stream, config);
    EXPECT_GT(metrics.llcHits, 0u);
}

TEST(ProtocolRegistry, NormalizedConfigIsWhatRecordsReport)
{
    // Sweep expansion and the bench harness record the normalized
    // config, so JSON never claims a prefetch length the run ignored.
    SystemConfig config = tinyConfig();
    config.protocol.prefetchLen = 8;
    const SystemConfig ring =
        normalizedProtocolConfig(ProtocolKind::RingOram, config);
    EXPECT_EQ(ring.protocol.prefetchLen, 1u);
    const SystemConfig pf =
        normalizedProtocolConfig(ProtocolKind::PalermoPrefetch, config);
    EXPECT_EQ(pf.protocol.prefetchLen, 8u);

    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("protocol=ring,palermo-pf", &spec,
                                 &error))
        << error;
    const std::vector<DesignPoint> points =
        spec.expand(ProtocolKind::Palermo, Workload::Mcf, config);
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].config.protocol.prefetchLen, 1u);
    EXPECT_EQ(points[1].config.protocol.prefetchLen, 8u);
}

TEST(ProtocolRegistry, ConstantRateCapabilityGatesConstruction)
{
    // A protocol that cannot pad with dummies must refuse the §VI
    // constant-rate frontend instead of running it insecurely.
    SystemConfig config = tinyConfig();
    config.constantRate = true;
    EXPECT_DEATH(
        {
            ProtocolDescriptor d;
            d.kind = static_cast<ProtocolKind>(1001);
            d.displayName = "NoDummyORAM";
            d.shortToken = "nodummy";
            d.barOrder = 98;
            d.constantRateCapable = false;
            d.build = [](const SystemConfig &c) {
                return makeController(ProtocolKind::Palermo, c);
            };
            ProtocolRegistry::instance().add(std::move(d));
            makeController(static_cast<ProtocolKind>(1001), config);
        },
        "constant-rate");
}

TEST(ProtocolRegistry, RejectsDuplicateRegistration)
{
    ProtocolDescriptor duplicate;
    duplicate.kind = ProtocolKind::Palermo;
    duplicate.displayName = "Palermo2";
    duplicate.shortToken = "palermo2";
    duplicate.barOrder = 99;
    duplicate.build = [](const SystemConfig &config) {
        return makeController(ProtocolKind::Palermo, config);
    };
    EXPECT_DEATH(ProtocolRegistry::instance().add(duplicate),
                 "duplicate protocol kind");

    ProtocolDescriptor clash = duplicate;
    clash.kind = static_cast<ProtocolKind>(1000);
    clash.displayName = "PathORAM"; // Name owned by the baseline.
    EXPECT_DEATH(ProtocolRegistry::instance().add(clash),
                 "registered twice");
}

} // namespace
} // namespace palermo
