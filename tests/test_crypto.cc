/** @file Unit tests for the crypto substrate (Speck, CTR mode, PRF). */

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/rng.hh"
#include "crypto/ctr_mode.hh"
#include "crypto/prf.hh"
#include "crypto/speck.hh"

namespace palermo {
namespace {

TEST(Speck, EncryptDecryptRoundTrip)
{
    const Speck128 cipher({0x0706050403020100ull, 0x0f0e0d0c0b0a0908ull});
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const Speck128::Block plain = {rng.next(), rng.next()};
        EXPECT_EQ(cipher.decrypt(cipher.encrypt(plain)), plain);
    }
}

TEST(Speck, EncryptionChangesData)
{
    const Speck128 cipher({1, 2});
    const Speck128::Block plain = {0, 0};
    EXPECT_NE(cipher.encrypt(plain), plain);
}

TEST(Speck, DifferentKeysDifferentCiphertexts)
{
    const Speck128 a({1, 2});
    const Speck128 b({1, 3});
    const Speck128::Block plain = {42, 43};
    EXPECT_NE(a.encrypt(plain), b.encrypt(plain));
}

TEST(Speck, AvalancheOnPlaintextBitFlip)
{
    const Speck128 cipher({0xdeadbeefull, 0xcafef00dull});
    Rng rng(2);
    double total_flips = 0.0;
    const int trials = 200;
    for (int i = 0; i < trials; ++i) {
        Speck128::Block plain = {rng.next(), rng.next()};
        const auto base = cipher.encrypt(plain);
        plain[0] ^= 1ull << (i % 64);
        const auto flipped = cipher.encrypt(plain);
        total_flips += std::popcount(base[0] ^ flipped[0])
            + std::popcount(base[1] ^ flipped[1]);
    }
    // A good cipher flips ~64 of 128 output bits per input bit flip.
    EXPECT_NEAR(total_flips / trials, 64.0, 6.0);
}

TEST(Speck, Injective)
{
    const Speck128 cipher({7, 8});
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (std::uint64_t i = 0; i < 4096; ++i) {
        const auto c = cipher.encrypt({i, 0});
        EXPECT_TRUE(seen.insert({c[0], c[1]}).second);
    }
}

TEST(CtrMode, RoundTrip)
{
    const CtrEncryptor enc({11, 22});
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        Payload64 plain;
        for (auto &lane : plain)
            lane = rng.next();
        const Addr addr = rng.next();
        const std::uint64_t version = rng.next();
        const Payload64 cipher = enc.encrypt(plain, addr, version);
        EXPECT_NE(cipher, plain);
        EXPECT_EQ(enc.decrypt(cipher, addr, version), plain);
    }
}

TEST(CtrMode, FreshCiphertextPerVersion)
{
    // Rewriting the same plaintext must produce a different ciphertext
    // (the ORAM obliviousness argument depends on this).
    const CtrEncryptor enc({11, 22});
    Payload64 plain{};
    const Payload64 v1 = enc.encrypt(plain, 0x1000, 1);
    const Payload64 v2 = enc.encrypt(plain, 0x1000, 2);
    EXPECT_NE(v1, v2);
}

TEST(CtrMode, FreshCiphertextPerAddress)
{
    const CtrEncryptor enc({11, 22});
    Payload64 plain{};
    EXPECT_NE(enc.encrypt(plain, 0x1000, 1), enc.encrypt(plain, 0x1040, 1));
}

TEST(Prf, Deterministic)
{
    const Prf prf(99);
    EXPECT_EQ(prf.eval(123), prf.eval(123));
    EXPECT_NE(prf.eval(123), prf.eval(124));
}

TEST(Prf, KeySeparation)
{
    const Prf a(1);
    const Prf b(2);
    EXPECT_NE(a.eval(5), b.eval(5));
}

TEST(Prf, EvalModBounded)
{
    const Prf prf(7);
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_LT(prf.evalMod(i, 37), 37u);
}

TEST(Prf, EvalModRoughlyUniform)
{
    const Prf prf(8);
    std::array<int, 16> counts{};
    const int n = 16000;
    for (int i = 0; i < n; ++i)
        ++counts[prf.evalMod(i, 16)];
    for (int c : counts)
        EXPECT_NEAR(c, n / 16, n / 16 / 3);
}

} // namespace
} // namespace palermo
