/** @file Unit tests for palermo_run flag parsing and name lookup. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/run_cli.hh"

namespace palermo {
namespace {

bool
parse(const std::vector<const char *> &args, RunOptions *options,
      std::string *error)
{
    return parseRunArgs(static_cast<int>(args.size()), args.data(),
                        options, error);
}

TEST(ProtocolFromName, AcceptsShortAndDisplayNames)
{
    ProtocolKind kind = ProtocolKind::PathOram;
    EXPECT_TRUE(protocolFromName("palermo", &kind));
    EXPECT_EQ(kind, ProtocolKind::Palermo);
    EXPECT_TRUE(protocolFromName("RingORAM", &kind));
    EXPECT_EQ(kind, ProtocolKind::RingOram);
    EXPECT_TRUE(protocolFromName("palermo-pf", &kind));
    EXPECT_EQ(kind, ProtocolKind::PalermoPrefetch);
    EXPECT_TRUE(protocolFromName("ir-oram", &kind));
    EXPECT_EQ(kind, ProtocolKind::IrOram);
    EXPECT_FALSE(protocolFromName("quantum-oram", &kind));
}

TEST(ProtocolFromName, RoundTripsEveryKind)
{
    for (ProtocolKind kind : allProtocolKinds()) {
        ProtocolKind parsed = ProtocolKind::PathOram;
        EXPECT_TRUE(protocolFromName(protocolShortName(kind), &parsed))
            << protocolShortName(kind);
        EXPECT_EQ(parsed, kind);
    }
}

TEST(WorkloadFromName, GraphAliasMapsToPageRank)
{
    Workload workload = Workload::Mcf;
    EXPECT_TRUE(tryWorkloadFromName("graph", &workload));
    EXPECT_EQ(workload, Workload::PageRank);
    EXPECT_TRUE(tryWorkloadFromName("rand", &workload));
    EXPECT_EQ(workload, Workload::Random);
    EXPECT_FALSE(tryWorkloadFromName("doom", &workload));
}

TEST(ParseRunArgs, DefaultsWhenEmpty)
{
    RunOptions options;
    std::string error;
    ASSERT_TRUE(parse({}, &options, &error)) << error;
    EXPECT_EQ(options.protocol, ProtocolKind::Palermo);
    EXPECT_EQ(options.workload, Workload::Random);
    EXPECT_EQ(options.jobs, 1u);
    EXPECT_TRUE(options.sweep.empty());
    EXPECT_FALSE(options.help);
}

TEST(ParseRunArgs, AcceptanceCriteriaInvocation)
{
    RunOptions options;
    std::string error;
    ASSERT_TRUE(parse({"--protocol", "palermo", "--workload", "graph",
                       "--sweep", "prefetch=0,4,8", "--jobs", "4",
                       "--json", "out.json"},
                      &options, &error))
        << error;
    EXPECT_EQ(options.protocol, ProtocolKind::Palermo);
    EXPECT_EQ(options.workload, Workload::PageRank);
    EXPECT_EQ(options.sweep, "prefetch=0,4,8");
    EXPECT_EQ(options.jobs, 4u);
    EXPECT_EQ(options.jsonPath, "out.json");

    const auto points = options.expandPoints(&error);
    ASSERT_EQ(points.size(), 3u) << error;
    EXPECT_EQ(points[0].id, "palermo/pr/prefetch=0");
    EXPECT_EQ(points[2].id, "palermo/pr/prefetch=8");
}

TEST(ParseRunArgs, EqualsFormAndRepeatedSweep)
{
    RunOptions options;
    std::string error;
    ASSERT_TRUE(parse({"--protocol=ring", "--workload=llm",
                       "--sweep=pe=1,8", "--sweep=channels=2,4",
                       "--jobs=2"},
                      &options, &error))
        << error;
    EXPECT_EQ(options.protocol, ProtocolKind::RingOram);
    EXPECT_EQ(options.sweep, "pe=1,8;channels=2,4");
    const auto points = options.expandPoints(&error);
    EXPECT_EQ(points.size(), 4u);
}

TEST(ParseRunArgs, NumericOverrides)
{
    RunOptions options;
    std::string error;
    ASSERT_TRUE(parse({"--blocks", "4096", "--reqs", "100", "--seed",
                       "42", "--constant-rate"},
                      &options, &error))
        << error;
    const SystemConfig config = options.baseConfig();
    EXPECT_EQ(config.protocol.numBlocks, 4096u);
    EXPECT_EQ(config.totalRequests, 100u);
    EXPECT_EQ(config.seed, 42u);
    EXPECT_EQ(config.protocol.seed, 42u);
    EXPECT_TRUE(config.constantRate);
}

TEST(ParseRunArgs, RejectsBadInput)
{
    RunOptions options;
    std::string error;
    EXPECT_FALSE(parse({"--protocol"}, &options, &error));
    EXPECT_FALSE(parse({"--protocol", "bogus"}, &options, &error));
    EXPECT_FALSE(parse({"--workload", "bogus"}, &options, &error));
    EXPECT_FALSE(parse({"--blocks", "zero"}, &options, &error));
    EXPECT_FALSE(parse({"--blocks", "0"}, &options, &error));
    EXPECT_FALSE(parse({"--jobs", "0"}, &options, &error));
    EXPECT_FALSE(parse({"--frobnicate"}, &options, &error));
    EXPECT_FALSE(error.empty());
}

TEST(ParseRunArgs, BadSweepSurfacesAtExpansion)
{
    RunOptions options;
    std::string error;
    ASSERT_TRUE(parse({"--sweep", "bogus=1"}, &options, &error));
    const auto points = options.expandPoints(&error);
    EXPECT_TRUE(points.empty());
    EXPECT_FALSE(error.empty());
}

TEST(ParseRunArgs, HelpFlag)
{
    RunOptions options;
    std::string error;
    ASSERT_TRUE(parse({"--help"}, &options, &error));
    EXPECT_TRUE(options.help);
    // Usage names every flag it parses.
    const std::string usage = runUsage();
    for (const char *flag :
         {"--protocol", "--workload", "--blocks", "--reqs", "--seed",
          "--sweep", "--jobs", "--json", "--list", "--list-protocols",
          "--list-workloads", "--paper"})
        EXPECT_NE(usage.find(flag), std::string::npos) << flag;
}

TEST(ParseRunArgs, ListingFlags)
{
    RunOptions options;
    std::string error;
    ASSERT_TRUE(parse({"--list-protocols"}, &options, &error));
    EXPECT_TRUE(options.listProtocols);
    EXPECT_FALSE(options.listWorkloads);
    ASSERT_TRUE(parse({"--list-workloads"}, &options, &error));
    EXPECT_TRUE(options.listWorkloads);
}

TEST(Listings, ProtocolListingCoversRegistryInBarOrder)
{
    const std::string listing = protocolListing();
    // Every registered token appears, on its own line, in bar order.
    std::size_t last = 0;
    for (ProtocolKind kind : allProtocolKinds()) {
        const std::string token = protocolShortName(kind);
        const std::size_t pos = listing.find(token);
        ASSERT_NE(pos, std::string::npos) << token;
        EXPECT_GE(pos, last) << token << " out of bar order";
        last = pos;
    }
    // Capability flags surface for the prefetch-capable designs.
    EXPECT_NE(listing.find("prefetch"), std::string::npos);
    EXPECT_NE(listing.find("aliases:"), std::string::npos);
}

TEST(Listings, WorkloadListingCoversAllWorkloads)
{
    const std::string listing = workloadListing();
    for (Workload workload : allWorkloads())
        EXPECT_NE(listing.find(workloadName(workload)),
                  std::string::npos)
            << workloadName(workload);
}

TEST(Listings, UsageNamesEveryRegisteredProtocol)
{
    for (const std::string &usage : {runUsage(), replayUsage()})
        for (ProtocolKind kind : allProtocolKinds())
            EXPECT_NE(usage.find(protocolShortName(kind)),
                      std::string::npos)
                << protocolShortName(kind);
}

bool
parseReplay(const std::vector<const char *> &args,
            ReplayOptions *options, std::string *error)
{
    return parseReplayArgs(static_cast<int>(args.size()), args.data(),
                           options, error);
}

TEST(ParseReplayArgs, DefaultsAndFullInvocation)
{
    ReplayOptions options;
    std::string error;
    ASSERT_TRUE(parseReplay({}, &options, &error)) << error;
    EXPECT_EQ(options.protocol, ProtocolKind::Palermo);
    EXPECT_EQ(options.depth, 8u);
    EXPECT_EQ(options.progress, 0u);
    EXPECT_TRUE(options.tracePath.empty());

    ASSERT_TRUE(parseReplay({"--trace", "t.trace", "--protocol=ring",
                             "--blocks", "4096", "--seed=7",
                             "--depth", "4", "--progress=50", "--json",
                             "-"},
                            &options, &error))
        << error;
    EXPECT_EQ(options.tracePath, "t.trace");
    EXPECT_EQ(options.protocol, ProtocolKind::RingOram);
    EXPECT_EQ(options.depth, 4u);
    EXPECT_EQ(options.progress, 50u);
    EXPECT_EQ(options.jsonPath, "-");

    const SystemConfig config = options.baseConfig();
    EXPECT_EQ(config.protocol.numBlocks, 4096u);
    EXPECT_EQ(config.seed, 7u);
    EXPECT_EQ(config.protocol.seed, 7u);
}

TEST(ParseReplayArgs, RejectsBadInput)
{
    ReplayOptions options;
    std::string error;
    EXPECT_FALSE(parseReplay({"--trace"}, &options, &error));
    EXPECT_FALSE(parseReplay({"--protocol", "bogus"}, &options, &error));
    EXPECT_FALSE(parseReplay({"--depth", "0"}, &options, &error));
    EXPECT_FALSE(parseReplay({"--progress", "x"}, &options, &error));
    EXPECT_FALSE(parseReplay({"--jobs", "2"}, &options, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace palermo
