/** @file Unit tests for IR-ORAM (PosMap bypass + mid-tree shrink). */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/ir_oram.hh"

namespace palermo {
namespace {

ProtocolConfig
smallConfig()
{
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    config.pathZ = 4;
    config.treetopBytes = {8192, 2048, 1024};
    return config;
}

TEST(IrOram, ImmediateReaccessBypassesPosmaps)
{
    IrOram oram(smallConfig());
    const auto first = oram.access(7, false, 0);
    EXPECT_EQ(first[0].levels.size(), kHierLevels);
    // Block 7 is on-chip (stash or tree-top); the next access skips the
    // recursive PosMap ORAMs.
    const auto second = oram.access(7, false, 0);
    EXPECT_EQ(second[0].levels.size(), 1u);
    EXPECT_EQ(second[0].levels[0].level, kLevelData);
    EXPECT_EQ(oram.irStats().posmapBypasses, 1u);
}

TEST(IrOram, ColdAccessTakesFullHierarchy)
{
    IrOram oram(smallConfig());
    const auto plans = oram.access(100, false, 0);
    EXPECT_EQ(plans[0].levels.size(), kHierLevels);
    EXPECT_EQ(oram.irStats().posmapBypasses, 0u);
}

TEST(IrOram, ReadYourWrites)
{
    IrOram oram(smallConfig());
    Rng rng(1);
    std::map<BlockId, std::uint64_t> shadow;
    for (int i = 0; i < 500; ++i) {
        const BlockId pa = rng.range(1 << 12);
        if (rng.chance(0.5)) {
            const std::uint64_t value = rng.next();
            oram.access(pa, true, value);
            shadow[pa] = value;
        } else {
            const auto plans = oram.access(pa, false, 0);
            EXPECT_EQ(plans[0].value,
                      shadow.count(pa) ? shadow[pa] : 0u);
        }
    }
}

TEST(IrOram, InvariantMaintained)
{
    IrOram oram(smallConfig());
    Rng rng(2);
    std::vector<BlockId> touched;
    for (int i = 0; i < 250; ++i) {
        const BlockId pa = rng.range(1 << 12);
        oram.access(pa, true, pa);
        touched.push_back(pa);
        for (BlockId b : touched)
            EXPECT_TRUE(oram.checkBlockInvariant(b));
    }
}

TEST(IrOram, MidTreeBucketsShrunk)
{
    IrOram oram(smallConfig());
    const auto &params = oram.engine(kLevelData).params();
    EXPECT_LT(params.capacityAt(params.levels / 2), params.capacityAt(0));
}

TEST(IrOram, HotWorkloadBypassesOften)
{
    IrOram oram(smallConfig());
    Rng rng(3);
    // A tiny hot set keeps blocks on-chip between accesses.
    for (int i = 0; i < 400; ++i)
        oram.access(rng.range(8), false, 0);
    EXPECT_GT(oram.irStats().bypassRate(), 0.3);
}

TEST(IrOram, ColdScanRarelyBypasses)
{
    IrOram oram(smallConfig());
    for (BlockId pa = 0; pa < 400; ++pa)
        oram.access(pa * 7 % (1 << 12), false, 0);
    EXPECT_LT(oram.irStats().bypassRate(), 0.2);
}

TEST(IrOram, StashesBounded)
{
    IrOram oram(smallConfig());
    Rng rng(4);
    for (int i = 0; i < 1200; ++i)
        oram.access(rng.range(1 << 12), rng.chance(0.3), i);
    for (unsigned level = 0; level < kHierLevels; ++level)
        EXPECT_FALSE(oram.stashOf(level).overflowed());
}

} // namespace
} // namespace palermo
