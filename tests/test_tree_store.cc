/** @file Unit tests for the lazily allocated tree store. */

#include <gtest/gtest.h>

#include "oram/tree_store.hh"

namespace palermo {
namespace {

TEST(TreeStore, LazyMaterialization)
{
    TreeStore store(OramParams::ring(1 << 8, 4, 5, 3));
    EXPECT_EQ(store.touchedCount(), 0u);
    EXPECT_FALSE(store.touched(0));
    store.node(0);
    EXPECT_TRUE(store.touched(0));
    EXPECT_EQ(store.touchedCount(), 1u);
}

TEST(TreeStore, NodeCapacityFollowsLevel)
{
    OramParams params = OramParams::ring(1 << 8, 4, 5, 3);
    applyFatTree(params);
    TreeStore store(params);
    EXPECT_EQ(store.node(0).capacity(), params.capacityAt(0));
    const NodeId leaf = params.nodeAt(params.leafLevel(), 0);
    EXPECT_EQ(store.node(leaf).capacity(),
              params.capacityAt(params.leafLevel()));
}

TEST(TreeStore, PeekDoesNotMaterialize)
{
    TreeStore store(OramParams::ring(1 << 8, 4, 5, 3));
    EXPECT_FALSE(store.peek(3));
    EXPECT_EQ(store.touchedCount(), 0u);
    store.node(3);
    EXPECT_TRUE(store.peek(3));
}

TEST(TreeStore, StatePersists)
{
    TreeStore store(OramParams::ring(1 << 8, 4, 5, 3));
    store.node(5).resetWith({{42, 420, 0}});
    EXPECT_EQ(store.node(5).slotOf(42) >= 0, true);
    EXPECT_EQ(store.totalValidBlocks(), 1u);
}

TEST(TreeStore, HugeGeometryConstructibleLazily)
{
    // The paper's 16 GB space: 2^28 blocks. Lazy allocation means
    // touching one path costs only `levels` buckets of host memory.
    const OramParams params = OramParams::ring(1ull << 28, 16, 27, 20);
    TreeStore store(params);
    for (NodeId node : params.pathNodes(12345))
        store.node(node);
    EXPECT_EQ(store.touchedCount(), params.levels);
}

} // namespace
} // namespace palermo
