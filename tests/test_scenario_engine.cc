/**
 * @file Scenario engine tests: accounting invariants of a shared
 * multi-tenant run (per-tenant sums match globals, accepted ==
 * completed after drain), byte-identity of the rendered document
 * across --sim-threads 1/2/4, isolation baselines, closed-loop
 * concurrency limits, and trace-backed tenants (via the checked-in
 * tiny.trace).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/engine.hh"
#include "scenario/scenario.hh"
#include "scenario/scenario_cli.hh"

namespace palermo {
namespace {

/** Small two-tenant scenario that runs in well under a second. */
ScenarioSpec
smallSpec()
{
    ScenarioSpec spec;
    spec.name = "unit";
    spec.blocks = 16384;
    spec.seed = 21;
    spec.duration = 30000;
    spec.warmupCompletions = 16;

    TenantSpec open;
    open.name = "open";
    open.rate = 0.7;
    open.dist = KeyDist::Zipf;
    open.writeFraction = 0.25;
    spec.tenants.push_back(open);

    TenantSpec closed;
    closed.name = "closed";
    closed.closedLoop = true;
    closed.concurrency = 3;
    closed.dist = KeyDist::Uniform;
    spec.tenants.push_back(closed);
    return spec;
}

ScenarioRunOptions
fastOptions()
{
    ScenarioRunOptions options;
    options.isolation = false;
    options.security = false;
    return options;
}

TEST(ScenarioEngineTest, AccountingInvariantsHold)
{
    ScenarioOutcome outcome;
    std::string error;
    ASSERT_TRUE(runScenario(smallSpec(), fastOptions(), &outcome,
                            &error))
        << error;

    ASSERT_EQ(outcome.tenants.size(), 2u);
    EXPECT_GT(outcome.service.global.completed, 0u);
    EXPECT_EQ(outcome.service.global.accepted,
              outcome.service.global.completed);

    std::uint64_t sum = 0;
    for (const TenantOutcome &tenant : outcome.tenants) {
        EXPECT_EQ(tenant.scope.accepted, tenant.scope.completed)
            << tenant.name;
        EXPECT_GT(tenant.scope.completed, 0u) << tenant.name;
        sum += tenant.scope.completed;
    }
    EXPECT_EQ(sum, outcome.service.global.completed);

    std::vector<std::string> problems;
    EXPECT_TRUE(scenarioSanityCheck(outcome, &problems))
        << (problems.empty() ? "" : problems.front());
}

TEST(ScenarioEngineTest, DocumentBytesIdenticalAcrossSimThreads)
{
    const ScenarioSpec spec = smallSpec();
    std::string baseline;
    for (unsigned threads : {1u, 2u, 4u}) {
        ScenarioRunOptions options;
        options.simThreads = threads;
        ScenarioOutcome outcome;
        std::string error;
        ASSERT_TRUE(runScenario(spec, options, &outcome, &error))
            << "threads=" << threads << ": " << error;
        const std::string doc = scenarioDocument(outcome, "unit");
        if (baseline.empty())
            baseline = doc;
        else
            EXPECT_EQ(doc, baseline) << "threads=" << threads;
    }
}

TEST(ScenarioEngineTest, RepeatRunsAreByteIdentical)
{
    const ScenarioSpec spec = smallSpec();
    ScenarioOutcome a, b;
    std::string error;
    ASSERT_TRUE(runScenario(spec, fastOptions(), &a, &error)) << error;
    ASSERT_TRUE(runScenario(spec, fastOptions(), &b, &error)) << error;
    EXPECT_EQ(scenarioDocument(a, "unit"), scenarioDocument(b, "unit"));
}

TEST(ScenarioEngineTest, IsolationBaselinesMeasureSlowdown)
{
    ScenarioRunOptions options;
    options.security = false;
    ScenarioOutcome outcome;
    std::string error;
    ASSERT_TRUE(runScenario(smallSpec(), options, &outcome, &error))
        << error;

    ASSERT_EQ(outcome.isolationRuns.size(), 2u);
    for (const TenantOutcome &tenant : outcome.tenants) {
        EXPECT_TRUE(tenant.isolated) << tenant.name;
        EXPECT_GT(tenant.isolatedMean, 0.0) << tenant.name;
        EXPECT_GT(tenant.slowdownMean, 0.0) << tenant.name;
        EXPECT_GT(tenant.slowdownP99, 0.0) << tenant.name;
    }
    EXPECT_GT(outcome.jainAchieved, 0.0);
    EXPECT_LE(outcome.jainAchieved, 1.0 + 1e-12);
    EXPECT_GT(outcome.jainSlowdown, 0.0);
}

TEST(ScenarioEngineTest, SeedChangesTheRun)
{
    ScenarioSpec spec = smallSpec();
    ScenarioOutcome a;
    std::string error;
    ASSERT_TRUE(runScenario(spec, fastOptions(), &a, &error)) << error;
    spec.seed = 22;
    ScenarioOutcome b;
    ASSERT_TRUE(runScenario(spec, fastOptions(), &b, &error)) << error;
    EXPECT_NE(scenarioDocument(a, "unit"), scenarioDocument(b, "unit"));
}

TEST(ScenarioEngineTest, TraceTenantReplaysRecordedKeys)
{
    ScenarioSpec spec = smallSpec();
    TenantSpec replay;
    replay.name = "replay";
    replay.source = SourceKind::Trace;
    replay.resolvedTracePath =
        std::string(PALERMO_SOURCE_DIR) + "/tools/traces/tiny.trace";
    replay.rate = 0.5;
    replay.dist = KeyDist::Zipf; // Ignored for traces.
    spec.tenants.push_back(replay);

    ScenarioOutcome outcome;
    std::string error;
    ASSERT_TRUE(runScenario(spec, fastOptions(), &outcome, &error))
        << error;
    ASSERT_EQ(outcome.tenants.size(), 3u);
    EXPECT_GT(outcome.tenants[2].scope.completed, 0u);

    std::vector<std::string> problems;
    EXPECT_TRUE(scenarioSanityCheck(outcome, &problems))
        << (problems.empty() ? "" : problems.front());
}

TEST(ScenarioEngineTest, MissingTraceFileFailsCleanly)
{
    ScenarioSpec spec = smallSpec();
    TenantSpec replay;
    replay.name = "replay";
    replay.source = SourceKind::Trace;
    replay.resolvedTracePath = "/nonexistent/void.trace";
    spec.tenants.push_back(replay);

    ScenarioOutcome outcome;
    std::string error;
    EXPECT_FALSE(runScenario(spec, fastOptions(), &outcome, &error));
    EXPECT_FALSE(error.empty());
}

} // namespace
} // namespace palermo
