/** @file Unit tests for the security analysis toolkit. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "security/mutual_info.hh"
#include "security/uniformity.hh"

namespace palermo {
namespace {

TEST(MutualInformation, ZeroWhenIndistinguishable)
{
    EXPECT_NEAR(mutualInformation(0.5, 0.5), 0.0, 1e-12);
    EXPECT_NEAR(mutualInformation(0.3, 0.3), 0.0, 1e-12);
}

TEST(MutualInformation, OneBitWhenFullyDistinguishable)
{
    EXPECT_NEAR(mutualInformation(1.0, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(mutualInformation(0.0, 1.0), 1.0, 1e-12);
}

TEST(MutualInformation, MonotoneInSeparation)
{
    const double weak = mutualInformation(0.55, 0.45);
    const double strong = mutualInformation(0.9, 0.1);
    EXPECT_GT(strong, weak);
    EXPECT_GT(weak, 0.0);
}

TEST(MutualInformation, SymmetricInArguments)
{
    EXPECT_NEAR(mutualInformation(0.7, 0.2), mutualInformation(0.2, 0.7),
                1e-12);
}

TEST(AttackerModel, FitsIndependentSamples)
{
    // Latency independent of behavior: p1 ~ p2 ~ 0.5, M ~ 0.
    Rng rng(1);
    std::vector<LatencySample> samples;
    for (int i = 0; i < 20000; ++i)
        samples.push_back({rng.uniform() * 1000.0, rng.chance(0.3)});
    const AttackerModel model = fitAttackerModel(samples);
    EXPECT_NEAR(model.p1, 0.5, 0.03);
    EXPECT_NEAR(model.p2, 0.5, 0.03);
    EXPECT_LT(mutualInformationOf(samples), 0.002);
}

TEST(AttackerModel, DetectsLeakySamples)
{
    // Stash hits are fast: a timing side channel the metric must flag.
    Rng rng(2);
    std::vector<LatencySample> samples;
    for (int i = 0; i < 5000; ++i) {
        const bool stash = rng.chance(0.5);
        const double latency = stash ? 100.0 + rng.uniform() * 50
                                     : 500.0 + rng.uniform() * 50;
        samples.push_back({latency, stash});
    }
    EXPECT_GT(mutualInformationOf(samples), 0.9);
}

TEST(AttackerModel, MedianSplitsSamples)
{
    std::vector<LatencySample> samples;
    for (int i = 0; i < 1000; ++i)
        samples.push_back({static_cast<double>(i), false});
    const AttackerModel model = fitAttackerModel(samples);
    EXPECT_NEAR(model.p2, 0.5, 0.01);
}

TEST(ChiSquare, AcceptsUniformCounts)
{
    Rng rng(3);
    std::vector<std::uint64_t> counts(64, 0);
    for (int i = 0; i < 64000; ++i)
        ++counts[rng.range(64)];
    EXPECT_TRUE(chiSquareUniform(counts).uniform);
}

TEST(ChiSquare, RejectsSkewedCounts)
{
    std::vector<std::uint64_t> counts(64, 100);
    counts[0] = 5000;
    EXPECT_FALSE(chiSquareUniform(counts).uniform);
}

TEST(LeafUniformity, RandomLeavesPass)
{
    Rng rng(4);
    std::vector<Leaf> leaves;
    for (int i = 0; i < 50000; ++i)
        leaves.push_back(rng.range(1 << 14));
    EXPECT_TRUE(leafUniformity(leaves, 1 << 14).uniform);
}

TEST(LeafUniformity, HotLeafFails)
{
    Rng rng(5);
    std::vector<Leaf> leaves;
    for (int i = 0; i < 20000; ++i)
        leaves.push_back(rng.chance(0.3) ? 7 : rng.range(1 << 14));
    EXPECT_FALSE(leafUniformity(leaves, 1 << 14).uniform);
}

TEST(SerialCorrelation, NearZeroForIndependentDraws)
{
    Rng rng(6);
    std::vector<Leaf> leaves;
    for (int i = 0; i < 50000; ++i)
        leaves.push_back(rng.range(1024));
    EXPECT_NEAR(serialCorrelation(leaves), 0.0, 0.02);
}

TEST(SerialCorrelation, HighForRamp)
{
    std::vector<Leaf> leaves;
    for (Leaf l = 0; l < 1000; ++l)
        leaves.push_back(l);
    EXPECT_GT(serialCorrelation(leaves), 0.9);
}

} // namespace
} // namespace palermo
