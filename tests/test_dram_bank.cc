/** @file Unit tests for the per-bank DRAM state machine. */

#include <gtest/gtest.h>

#include "mem/bank.hh"

namespace palermo {
namespace {

const DramTiming &t = ddr4_3200();

TEST(Bank, StartsClosedAndActivatable)
{
    Bank bank;
    EXPECT_FALSE(bank.isOpen());
    EXPECT_TRUE(bank.canActivate(0));
    EXPECT_FALSE(bank.canPrecharge(0));
    EXPECT_FALSE(bank.canColumn(0, false));
}

TEST(Bank, ActivateOpensRow)
{
    Bank bank;
    bank.activate(0, 77, t);
    EXPECT_TRUE(bank.isOpen());
    EXPECT_EQ(bank.openRow(), 77u);
    EXPECT_FALSE(bank.canActivate(0)); // Already open.
}

TEST(Bank, ColumnWaitsForTrcd)
{
    Bank bank;
    bank.activate(0, 1, t);
    EXPECT_FALSE(bank.canColumn(t.tRCD - 1, false));
    EXPECT_TRUE(bank.canColumn(t.tRCD, false));
    EXPECT_TRUE(bank.canColumn(t.tRCD, true));
}

TEST(Bank, PrechargeWaitsForTras)
{
    Bank bank;
    bank.activate(0, 1, t);
    EXPECT_FALSE(bank.canPrecharge(t.tRAS - 1));
    EXPECT_TRUE(bank.canPrecharge(t.tRAS));
}

TEST(Bank, ReactivateWaitsForTrp)
{
    Bank bank;
    bank.activate(0, 1, t);
    bank.precharge(t.tRAS, t);
    EXPECT_FALSE(bank.isOpen());
    EXPECT_FALSE(bank.canActivate(t.tRAS + t.tRP - 1));
    EXPECT_TRUE(bank.canActivate(t.tRAS + t.tRP));
}

TEST(Bank, ActToActRespectsTrc)
{
    Bank bank;
    bank.activate(0, 1, t);
    // Precharge as early as allowed, then the next ACT still waits tRC.
    bank.precharge(t.tRAS, t);
    EXPECT_GE(t.tRC, t.tRAS + t.tRP);
    EXPECT_TRUE(bank.canActivate(t.tRC));
}

TEST(Bank, ReadPushesPrechargeByTrtp)
{
    Bank bank;
    bank.activate(0, 1, t);
    const Tick cas = t.tRCD + 30; // Late read.
    bank.column(cas, false, t);
    EXPECT_FALSE(bank.canPrecharge(cas + t.tRTP - 1));
    EXPECT_TRUE(bank.canPrecharge(cas + t.tRTP));
}

TEST(Bank, WritePushesPrechargeByWriteRecovery)
{
    Bank bank;
    bank.activate(0, 1, t);
    const Tick cas = t.tRAS; // Past tRAS so only tWR gates.
    bank.column(cas, true, t);
    const Tick earliest = cas + t.tCWL + t.tBL + t.tWR;
    EXPECT_FALSE(bank.canPrecharge(earliest - 1));
    EXPECT_TRUE(bank.canPrecharge(earliest));
}

TEST(Bank, RefreshClosesAndBlocks)
{
    Bank bank;
    bank.activate(0, 5, t);
    bank.precharge(t.tRAS, t);
    const Tick ref = t.tRAS + t.tRP;
    bank.refresh(ref, t);
    EXPECT_FALSE(bank.isOpen());
    EXPECT_FALSE(bank.canActivate(ref + t.tRFC - 1));
    EXPECT_TRUE(bank.canActivate(ref + t.tRFC));
}

TEST(DramTiming, PresetSanity)
{
    EXPECT_EQ(t.tBL, 4u);
    EXPECT_GT(t.tRC, t.tRAS);
    EXPECT_GT(t.tRAS, t.tRCD);
    EXPECT_DOUBLE_EQ(t.bytesPerCycle(), 16.0);
    // 4 channels x 16 B/cycle x 1.6 GHz = 102.4 GB/s (Table III).
    EXPECT_DOUBLE_EQ(t.bytesPerCycle() * 4 * t.clockGHz, 102.4);

    const DramTiming &slow = ddr4_2400();
    EXPECT_LT(slow.tCL, t.tCL);
    EXPECT_LT(slow.clockGHz, t.clockGHz);
}

} // namespace
} // namespace palermo
