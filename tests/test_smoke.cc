/**
 * @file Link-level smoke test: SystemConfig defaults construct, one
 * end-to-end PalermoOram access round-trips a value, and a tiny timed
 * run exercises the full frontend -> controller -> DDR4 link graph.
 * Kept deliberately shallow so tier-1 catches build/link regressions
 * even when a deeper unit test is skipped or filtered out.
 */

#include <gtest/gtest.h>

#include "oram/palermo.hh"
#include "sim/experiment.hh"

namespace palermo {
namespace {

TEST(Smoke, SystemConfigDefaultsConstruct)
{
    // Bench env overrides would make the two geometries identical.
    for (const char *var : {"PALERMO_REQS", "PALERMO_BLOCKS", "PALERMO_SEED"})
        unsetenv(var);

    const SystemConfig bench = SystemConfig::benchDefault();
    EXPECT_GT(bench.protocol.numBlocks, 0u);
    EXPECT_FALSE(bench.describe().empty());

    const SystemConfig paper = SystemConfig::paperTableIII();
    EXPECT_GT(paper.protocol.numBlocks, bench.protocol.numBlocks);
}

TEST(Smoke, PalermoOramEndToEndAccess)
{
    SystemConfig config = SystemConfig::benchDefault();
    config.protocol.numBlocks = 1 << 12; // Shrink so the smoke stays fast.
    config.protocol.treetopBytes = {8192, 4096, 2048};

    PalermoOram oram(config.protocol);
    const BlockId pa = 42;
    const std::uint64_t payload = 0xfeedface;

    // One full request in protocol order: PosMap2 -> PosMap1 -> data.
    const auto ids = oram.decompose(pa);
    for (unsigned level = kHierLevels; level-- > 0;)
        oram.beginLevel(level, ids[level]);
    oram.finishData(pa, true, payload);

    for (unsigned level = kHierLevels; level-- > 0;)
        oram.beginLevel(level, ids[level]);
    EXPECT_EQ(oram.finishData(pa, false, 0), payload);
    EXPECT_EQ(oram.palermoStats().requests, 2u);
}

TEST(Smoke, TimedSimulationCompletes)
{
    SystemConfig config = SystemConfig::benchDefault();
    config.protocol.numBlocks = 1 << 12;
    config.protocol.treetopBytes = {8192, 4096, 2048};
    config.totalRequests = 64;
    config.dram.org.rows = 1u << 10;

    const RunMetrics metrics =
        runExperiment(ProtocolKind::Palermo, Workload::Random, config);
    EXPECT_EQ(metrics.served, config.totalRequests);
    EXPECT_GT(metrics.requestsPerKilocycle, 0.0);
}

} // namespace
} // namespace palermo
