/** @file Unit + property tests for the hot-path allocation pools. */

#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/pool.hh"

namespace palermo {
namespace {

TEST(PoolResource, ServesDistinctBlocks)
{
    PoolResource pool;
    void *a = pool.allocate(64, 8);
    void *b = pool.allocate(64, 8);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a, b);
    // Both blocks are writable over their full size.
    std::memset(a, 0xAA, 64);
    std::memset(b, 0x55, 64);
    pool.deallocate(a, 64, 8);
    pool.deallocate(b, 64, 8);
}

TEST(PoolResource, ReusesFreedBlocksLifo)
{
    PoolResource pool;
    void *a = pool.allocate(48, 8);
    void *b = pool.allocate(48, 8);
    pool.deallocate(a, 48, 8);
    pool.deallocate(b, 48, 8);
    // LIFO: the most recently freed block comes back first.
    EXPECT_EQ(pool.allocate(48, 8), b);
    EXPECT_EQ(pool.allocate(48, 8), a);
    EXPECT_EQ(pool.reuseHits(), 2u);
}

TEST(PoolResource, SizeClassesDoNotMix)
{
    PoolResource pool;
    void *small = pool.allocate(16, 8);
    pool.deallocate(small, 16, 8);
    // A larger request must not be served from the 16-byte class.
    void *large = pool.allocate(256, 8);
    EXPECT_NE(large, small);
    pool.deallocate(large, 256, 8);
}

TEST(PoolResource, LiveBytesTracksOutstanding)
{
    PoolResource pool;
    EXPECT_EQ(pool.liveBytes(), 0u);
    void *a = pool.allocate(100, 8);
    const std::size_t live = pool.liveBytes();
    EXPECT_GE(live, 100u); // Rounded up to the size class.
    void *b = pool.allocate(100, 8);
    EXPECT_EQ(pool.liveBytes(), 2 * live);
    pool.deallocate(b, 100, 8);
    pool.deallocate(a, 100, 8);
    EXPECT_EQ(pool.liveBytes(), 0u);
}

TEST(PoolResource, GrowsNewChunksAtCapacity)
{
    PoolResource pool(/*chunk_bytes=*/256);
    std::vector<void *> blocks;
    for (int i = 0; i < 64; ++i)
        blocks.push_back(pool.allocate(64, 8));
    EXPECT_GT(pool.chunkCount(), 1u);
    // Everything stays usable across chunk growth.
    for (void *p : blocks)
        std::memset(p, 0x5A, 64);
    for (void *p : blocks)
        pool.deallocate(p, 64, 8);
    // Steady state: the same working set re-allocates with no growth.
    const std::size_t chunks = pool.chunkCount();
    for (int round = 0; round < 4; ++round) {
        blocks.clear();
        for (int i = 0; i < 64; ++i)
            blocks.push_back(pool.allocate(64, 8));
        for (void *p : blocks)
            pool.deallocate(p, 64, 8);
    }
    EXPECT_EQ(pool.chunkCount(), chunks);
    EXPECT_GT(pool.reuseHits(), 0u);
}

TEST(PoolResource, OversizedRequestGetsOwnChunk)
{
    PoolResource pool(/*chunk_bytes=*/128);
    void *big = pool.allocate(4096, 8);
    ASSERT_NE(big, nullptr);
    std::memset(big, 0x11, 4096);
    pool.deallocate(big, 4096, 8);
    EXPECT_EQ(pool.allocate(4096, 8), big);
}

TEST(PoolResource, OverAlignedRequestsWork)
{
    PoolResource pool;
    constexpr std::size_t align = 2 * alignof(std::max_align_t);
    void *p = pool.allocate(align, align);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
    pool.deallocate(p, align, align);
}

TEST(PoolAllocator, StdContainersRecycleNodes)
{
    PoolResource pool;
    using Alloc = PoolAllocator<std::pair<const int, int>>;
    std::unordered_map<int, int, std::hash<int>, std::equal_to<int>,
                       Alloc>
        map{Alloc(&pool)};
    for (int i = 0; i < 100; ++i)
        map[i] = i;
    for (int i = 0; i < 100; ++i)
        map.erase(i);
    const std::size_t chunks = pool.chunkCount();
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 100; ++i)
            map[i] = i;
        for (int i = 0; i < 100; ++i)
            map.erase(i);
    }
    // Refilling the same map reuses freed nodes, never new chunks.
    EXPECT_EQ(pool.chunkCount(), chunks);
    EXPECT_GT(pool.reuseHits(), 0u);
}

TEST(PoolAllocator, DequeAndListShareOneResource)
{
    PoolResource pool;
    std::deque<int, PoolAllocator<int>> deque{PoolAllocator<int>(&pool)};
    std::list<int, PoolAllocator<int>> list{PoolAllocator<int>(&pool)};
    for (int i = 0; i < 1000; ++i) {
        deque.push_back(i);
        list.push_back(i);
    }
    while (!deque.empty())
        deque.pop_front();
    list.clear();
    EXPECT_GT(pool.chunkCount(), 0u);
    // Distinct element sizes land in distinct size classes; refills hit
    // the free lists.
    const std::size_t chunks = pool.chunkCount();
    for (int i = 0; i < 1000; ++i) {
        deque.push_back(i);
        list.push_back(i);
    }
    EXPECT_EQ(pool.chunkCount(), chunks);
}

TEST(PoolAllocator, EqualityMeansSameResource)
{
    PoolResource a;
    PoolResource b;
    EXPECT_TRUE(PoolAllocator<int>(&a) == PoolAllocator<char>(&a));
    EXPECT_TRUE(PoolAllocator<int>(&a) != PoolAllocator<int>(&b));
}

/** Object with observable reset semantics for ObjectPool tests. */
struct Scratch
{
    std::vector<int> data;
    int resets = 0;

    void
    reset()
    {
        data.clear();
        ++resets;
    }
};

TEST(ObjectPool, AcquireReleaseRecycles)
{
    ObjectPool<Scratch> pool;
    Scratch *first = pool.acquire();
    first->data.assign(100, 7);
    pool.release(first);
    EXPECT_EQ(pool.totalCreated(), 1u);
    EXPECT_EQ(pool.freeCount(), 1u);

    Scratch *again = pool.acquire();
    EXPECT_EQ(again, first);
    EXPECT_EQ(again->resets, 1);
    // reset() cleared content but kept the buffer capacity.
    EXPECT_TRUE(again->data.empty());
    EXPECT_GE(again->data.capacity(), 100u);
    pool.release(again);
}

TEST(ObjectPool, LifoOrderAndGrowth)
{
    ObjectPool<Scratch> pool;
    Scratch *a = pool.acquire();
    Scratch *b = pool.acquire();
    Scratch *c = pool.acquire();
    EXPECT_EQ(pool.totalCreated(), 3u);
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.acquire(), b); // Most recently released first.
    EXPECT_EQ(pool.acquire(), a);
    EXPECT_EQ(pool.totalCreated(), 3u);
    // All instances out: the next acquire constructs a fourth.
    Scratch *d = pool.acquire();
    EXPECT_EQ(pool.totalCreated(), 4u);
    pool.release(a);
    pool.release(b);
    pool.release(c);
    pool.release(d);
    EXPECT_EQ(pool.freeCount(), 4u);
}

/**
 * Property sweep: a pseudo-random allocate/deallocate interleaving
 * with content checks. Under ASan this doubles as a no-double-free,
 * no-overlap, no-use-after-free check on the pool's bookkeeping.
 */
TEST(PoolResource, RandomInterleavingKeepsBlocksDisjoint)
{
    PoolResource pool(/*chunk_bytes=*/512);
    struct Live
    {
        unsigned char *p;
        std::size_t bytes;
        unsigned char fill;
    };
    std::vector<Live> live;
    std::uint64_t state = 0x243F6A8885A308D3ull; // Deterministic LCG.
    const auto next = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint32_t>(state >> 33);
    };

    for (int step = 0; step < 5000; ++step) {
        const bool allocate = live.empty() || (next() % 3u) != 0u;
        if (allocate) {
            const std::size_t bytes = 8 + next() % 300;
            auto *p = static_cast<unsigned char *>(
                pool.allocate(bytes, 8));
            const auto fill = static_cast<unsigned char>(next());
            std::memset(p, fill, bytes);
            live.push_back(Live{p, bytes, fill});
        } else {
            const std::size_t victim = next() % live.size();
            const Live entry = live[victim];
            // The block still holds its fill: nothing overlapped it.
            for (std::size_t i = 0; i < entry.bytes; ++i)
                ASSERT_EQ(entry.p[i], entry.fill);
            pool.deallocate(entry.p, entry.bytes, 8);
            live[victim] = live.back();
            live.pop_back();
        }
    }
    for (const Live &entry : live) {
        for (std::size_t i = 0; i < entry.bytes; ++i)
            ASSERT_EQ(entry.p[i], entry.fill);
        pool.deallocate(entry.p, entry.bytes, 8);
    }
    EXPECT_EQ(pool.liveBytes(), 0u);
}

} // namespace
} // namespace palermo
