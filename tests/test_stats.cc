/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace palermo {
namespace {

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, TracksMeanMinMax)
{
    Average avg;
    avg.sample(2.0);
    avg.sample(4.0);
    avg.sample(9.0);
    EXPECT_EQ(avg.count(), 3u);
    EXPECT_DOUBLE_EQ(avg.mean(), 5.0);
    EXPECT_DOUBLE_EQ(avg.min(), 2.0);
    EXPECT_DOUBLE_EQ(avg.max(), 9.0);
}

TEST(Average, EmptyIsZero)
{
    Average avg;
    EXPECT_DOUBLE_EQ(avg.mean(), 0.0);
    EXPECT_DOUBLE_EQ(avg.min(), 0.0);
    EXPECT_DOUBLE_EQ(avg.max(), 0.0);
}

TEST(Histogram, CountsAndMean)
{
    Histogram h(10.0, 10);
    h.sample(5.0);
    h.sample(15.0);
    h.sample(25.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, OverflowBucketCatchesLargeSamples)
{
    Histogram h(1.0, 4);
    h.sample(1000.0);
    EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Histogram, MedianApproximation)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, FractionAbove)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i));
    EXPECT_NEAR(h.fractionAbove(49.9), 0.5, 0.03);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(1.0, 4);
    h.sample(1.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(TimeWeighted, TimeAverage)
{
    TimeWeighted tw;
    tw.accumulate(10.0, 3);
    tw.accumulate(0.0, 7);
    EXPECT_DOUBLE_EQ(tw.mean(), 3.0);
    EXPECT_EQ(tw.ticks(), 10u);
}

TEST(TimeWeighted, ResetClears)
{
    TimeWeighted tw;
    tw.accumulate(5.0, 2);
    tw.reset();
    EXPECT_DOUBLE_EQ(tw.mean(), 0.0);
}

TEST(StatSet, SetGetHas)
{
    StatSet set;
    set.set("speedup", 2.8);
    EXPECT_TRUE(set.has("speedup"));
    EXPECT_FALSE(set.has("missing"));
    EXPECT_DOUBLE_EQ(set.get("speedup"), 2.8);
    EXPECT_NE(set.toString().find("speedup"), std::string::npos);
}

TEST(Geomean, MatchesHandComputation)
{
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-9);
}

} // namespace
} // namespace palermo
