/**
 * @file Scenario schema tests: canonical round-trip idempotency,
 * strict-parser diagnostics for every contradictory knob combination,
 * and a deterministic mutation fuzz over the canonical text (the
 * parser must reject or accept, never crash or hang).
 */

#include <gtest/gtest.h>

#include <string>

#include "common/rng.hh"
#include "scenario/scenario.hh"

namespace palermo {
namespace {

/** A scenario exercising every optional knob at least once. */
const char *kFullScenario = R"json({
  "name": "full",
  "protocol": "path",
  "blocks": 16384,
  "seed": 9,
  "duration": 50000,
  "warmup_completions": 32,
  "queue_capacity": 32,
  "queue_policy": "block",
  "session_depth": 4,
  "tenants": [
    {
      "name": "curvy",
      "mode": "open",
      "arrival": "poisson",
      "rate_curve": [
        {"until": 10000, "rate": 0.5},
        {"until": 20000, "rate": 2.0},
        {"rate": 0.25}
      ],
      "dist": "zipf",
      "zipf_alpha": 1.1,
      "write_fraction": 0.25,
      "scan_fraction": 0.1,
      "scan_length": 4
    },
    {
      "name": "bursty",
      "mode": "open",
      "arrival": "fixed",
      "rate": 1.5,
      "burst": {"on": 2000, "off": 6000},
      "dist": "uniform"
    },
    {
      "name": "closed",
      "mode": "closed",
      "concurrency": 8,
      "dist": "zipf",
      "zipf_alpha": 0.8,
      "write_fraction": 0.5
    },
    {
      "name": "replay",
      "mode": "open",
      "arrival": "poisson",
      "rate": 0.5,
      "trace": "traces/foo.trace"
    }
  ]
})json";

TEST(ScenarioTest, ParsesEveryKnob)
{
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(parseScenario(kFullScenario, "/base", &spec, &error))
        << error;

    EXPECT_EQ(spec.name, "full");
    EXPECT_EQ(spec.protocol, ProtocolKind::PathOram);
    EXPECT_EQ(spec.blocks, 16384u);
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_EQ(spec.duration, 50000u);
    EXPECT_EQ(spec.warmupCompletions, 32u);
    EXPECT_EQ(spec.queueCapacity, 32u);
    EXPECT_EQ(spec.queuePolicy, QueuePolicy::Block);
    EXPECT_EQ(spec.sessionDepth, 4u);
    ASSERT_EQ(spec.tenants.size(), 4u);

    const TenantSpec &curvy = spec.tenants[0];
    EXPECT_FALSE(curvy.closedLoop);
    ASSERT_EQ(curvy.rateCurve.size(), 3u);
    EXPECT_EQ(curvy.rateCurve[0].untilCycle, 10000u);
    EXPECT_EQ(curvy.rateCurve[2].untilCycle, kTickNever);
    EXPECT_DOUBLE_EQ(curvy.scanFraction, 0.1);
    EXPECT_EQ(curvy.scanLength, 4u);

    const TenantSpec &bursty = spec.tenants[1];
    EXPECT_EQ(bursty.process, ArrivalProcess::Fixed);
    EXPECT_EQ(bursty.burstOnCycles, 2000u);
    EXPECT_EQ(bursty.burstOffCycles, 6000u);
    EXPECT_EQ(bursty.dist, KeyDist::Uniform);

    const TenantSpec &closed = spec.tenants[2];
    EXPECT_TRUE(closed.closedLoop);
    EXPECT_EQ(closed.concurrency, 8u);

    const TenantSpec &replay = spec.tenants[3];
    EXPECT_EQ(replay.source, SourceKind::Trace);
    EXPECT_EQ(replay.tracePath, "traces/foo.trace");
    EXPECT_EQ(replay.resolvedTracePath, "/base/traces/foo.trace");
}

TEST(ScenarioTest, RoundTripIsIdempotent)
{
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(parseScenario(kFullScenario, ".", &spec, &error))
        << error;

    const std::string once = writeScenario(spec);
    ScenarioSpec reparsed;
    ASSERT_TRUE(parseScenario(once, ".", &reparsed, &error)) << error;
    const std::string twice = writeScenario(reparsed);
    EXPECT_EQ(once, twice);
}

/** Expect a parse failure whose message mentions @p needle. */
void
expectRejects(const std::string &text, const std::string &needle)
{
    ScenarioSpec spec;
    std::string error;
    EXPECT_FALSE(parseScenario(text, ".", &spec, &error)) << text;
    EXPECT_NE(error.find(needle), std::string::npos)
        << "error '" << error << "' does not mention '" << needle
        << "'";
}

TEST(ScenarioTest, RejectsContradictoryKnobs)
{
    const std::string head =
        R"({"name": "x", "tenants": [{"name": "t", )";
    // Closed loop owns its pacing: no open-loop shaping allowed.
    expectRejects(head + R"("mode": "closed", "rate": 1.0}]})",
                  "rate");
    expectRejects(head + R"("mode": "closed", "arrival": "poisson"}]})",
                  "arrival");
    expectRejects(
        head + R"("mode": "closed", "burst": {"on": 1, "off": 1}}]})",
        "burst");
    // Open loop has no concurrency knob.
    expectRejects(head + R"("mode": "open", "concurrency": 4}]})",
                  "concurrency");
    // Trace tenants replay recorded keys; samplers don't apply.
    expectRejects(head + R"("trace": "a.trace", "dist": "zipf"}]})",
                  "dist");
    expectRejects(
        head + R"("trace": "a.trace", "write_fraction": 0.5}]})",
        "write_fraction");
    // Scan length without a scan fraction is dead config.
    expectRejects(head + R"("scan_length": 4}]})", "scan_length");
}

TEST(ScenarioTest, RejectsMalformedStructure)
{
    expectRejects("", "");
    expectRejects("[]", "");
    expectRejects(R"({"name": "x"})", "tenants");
    expectRejects(R"({"name": "x", "tenants": []})", "tenants");
    expectRejects(R"({"name": "x", "bogus": 1, "tenants": []})",
                  "bogus");
    expectRejects(
        R"({"name": "x", "tenants": [{"name": "a"}, {"name": "a"}]})",
        "duplicate");
    expectRejects(
        R"({"name": "x", "protocol": "nope", "tenants": [{"name": "a"}]})",
        "protocol");
    // Rate-curve boundaries must strictly increase.
    expectRejects(
        R"({"name": "x", "tenants": [{"name": "a", "rate_curve": [)"
        R"({"until": 100, "rate": 1.0}, {"until": 50, "rate": 1.0}]}]})",
        "");
    // A curve that is silent everywhere generates nothing.
    expectRejects(
        R"({"name": "x", "tenants": [{"name": "a", "rate_curve": [)"
        R"({"rate": 0.0}]}]})",
        "");
}

TEST(ScenarioTest, MutationFuzzNeverCrashes)
{
    ScenarioSpec spec;
    std::string error;
    ASSERT_TRUE(parseScenario(kFullScenario, ".", &spec, &error));
    const std::string canonical = writeScenario(spec);

    // Truncations at every prefix length (step 7 keeps it quick).
    for (std::size_t len = 0; len < canonical.size(); len += 7) {
        ScenarioSpec out;
        std::string err;
        parseScenario(canonical.substr(0, len), ".", &out, &err);
    }

    // Deterministic byte flips: overwrite one position with a byte
    // drawn from a structural-character alphabet.
    const char alphabet[] = "{}[]\",:x0-";
    Rng rng(2024);
    for (int i = 0; i < 2000; ++i) {
        std::string mutated = canonical;
        const std::size_t pos =
            static_cast<std::size_t>(rng.range(mutated.size()));
        mutated[pos] =
            alphabet[rng.range(sizeof(alphabet) - 1)];
        ScenarioSpec out;
        std::string err;
        if (!parseScenario(mutated, ".", &out, &err))
            EXPECT_FALSE(err.empty());
    }
}

} // namespace
} // namespace palermo
