/**
 * @file
 * FlatMap/FlatSet unit tests plus a randomized differential fuzz
 * against std::unordered_map. The fuzz drives insert/erase/find/clear
 * through long churn phases so backward-shift deletion and rehash get
 * exercised at every load factor; the sanitizer CI jobs run this under
 * ASan/UBSan, which is where slot-lifetime bugs would surface.
 */

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace palermo {
namespace {

TEST(FlatMapTest, EmptyMapBehaves)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_EQ(map.size(), 0u);
    EXPECT_TRUE(map.empty());
    EXPECT_FALSE(map.contains(7));
    EXPECT_EQ(map.find(7), map.end());
    EXPECT_EQ(map.findValue(7), nullptr);
    EXPECT_EQ(map.erase(7), 0u);
    EXPECT_EQ(map.begin(), map.end());
}

TEST(FlatMapTest, InsertFindErase)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    auto [it, inserted] = map.emplace(42, 1);
    EXPECT_TRUE(inserted);
    EXPECT_EQ(it->first, 42u);
    EXPECT_EQ(it->second, 1u);

    auto [again, fresh] = map.emplace(42, 2);
    EXPECT_FALSE(fresh);
    EXPECT_EQ(again->second, 1u) << "emplace must not overwrite";

    map.insert_or_assign(42, 3);
    EXPECT_EQ(map.at(42), 3u);

    map[99] = 7;
    EXPECT_EQ(map.size(), 2u);
    EXPECT_EQ(map.at(99), 7u);

    EXPECT_EQ(map.erase(42), 1u);
    EXPECT_EQ(map.erase(42), 0u);
    EXPECT_EQ(map.size(), 1u);
    EXPECT_FALSE(map.contains(42));
    EXPECT_TRUE(map.contains(99));
}

TEST(FlatMapTest, ExtremeKeysAreOrdinary)
{
    // kInvalid (all-ones) is a real key in several tables; FlatMap
    // must not reserve any key value.
    FlatMap<std::uint64_t, int> map;
    map[kInvalid] = 1;
    map[0] = 2;
    EXPECT_EQ(map.at(kInvalid), 1);
    EXPECT_EQ(map.at(0), 2);
    EXPECT_EQ(map.erase(kInvalid), 1u);
    EXPECT_TRUE(map.contains(0));
}

TEST(FlatMapTest, GrowthKeepsAllEntries)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    constexpr std::uint64_t kCount = 10000;
    for (std::uint64_t i = 0; i < kCount; ++i)
        map.emplace(i * 0x10001, i);
    EXPECT_EQ(map.size(), kCount);
    for (std::uint64_t i = 0; i < kCount; ++i) {
        const std::uint64_t *v = map.findValue(i * 0x10001);
        ASSERT_NE(v, nullptr) << "lost key " << i;
        EXPECT_EQ(*v, i);
    }
}

TEST(FlatMapTest, IterationVisitsEachEntryOnce)
{
    FlatMap<std::uint64_t, std::uint64_t> map;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    for (std::uint64_t i = 0; i < 257; ++i) {
        map.emplace(i * 31, i);
        ref.emplace(i * 31, i);
    }
    std::size_t seen = 0;
    for (const auto &[key, value] : map) {
        auto it = ref.find(key);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(it->second, value);
        ++seen;
    }
    EXPECT_EQ(seen, ref.size());
}

TEST(FlatMapTest, EraseByIteratorCompactsChain)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t i = 0; i < 64; ++i)
        map.emplace(i, static_cast<int>(i));
    auto it = map.find(17);
    ASSERT_NE(it, map.end());
    map.erase(it);
    EXPECT_EQ(map.size(), 63u);
    EXPECT_FALSE(map.contains(17));
    for (std::uint64_t i = 0; i < 64; ++i) {
        if (i != 17)
            EXPECT_TRUE(map.contains(i)) << i;
    }
}

TEST(FlatMapTest, ClearRetainsCapacity)
{
    FlatMap<std::uint64_t, int> map;
    for (std::uint64_t i = 0; i < 100; ++i)
        map.emplace(i, 1);
    const std::size_t cap = map.capacity();
    map.clear();
    EXPECT_EQ(map.size(), 0u);
    EXPECT_EQ(map.capacity(), cap);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_FALSE(map.contains(i));
    map.emplace(5, 2);
    EXPECT_EQ(map.at(5), 2);
}

TEST(FlatMapTest, ReserveAvoidsRehash)
{
    FlatMap<std::uint64_t, int> map;
    map.reserve(1000);
    const std::size_t cap = map.capacity();
    EXPECT_GE(cap, 1000u);
    for (std::uint64_t i = 0; i < 1000; ++i)
        map.emplace(i, 1);
    EXPECT_EQ(map.capacity(), cap);
}

TEST(FlatMapTest, PoolBackedRecyclesOnRegrowth)
{
    PoolResource pool;
    {
        FlatMap<std::uint64_t, std::uint64_t> map(&pool);
        for (std::uint64_t i = 0; i < 5000; ++i)
            map.emplace(i, i);
        for (std::uint64_t i = 0; i < 5000; ++i)
            EXPECT_EQ(*map.findValue(i), i);
    }
    // Destroyed map returned its table; a same-shape map reuses it.
    const std::uint64_t before = pool.reuseHits();
    FlatMap<std::uint64_t, std::uint64_t> map(&pool);
    for (std::uint64_t i = 0; i < 5000; ++i)
        map.emplace(i, i);
    EXPECT_GT(pool.reuseHits(), before);
}

TEST(FlatMapTest, MoveTransfersTable)
{
    FlatMap<std::uint64_t, int> a;
    for (std::uint64_t i = 0; i < 100; ++i)
        a.emplace(i, static_cast<int>(i));
    FlatMap<std::uint64_t, int> b(std::move(a));
    EXPECT_EQ(b.size(), 100u);
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(b.at(42), 42);

    FlatMap<std::uint64_t, int> c;
    c.emplace(7, 7);
    c = std::move(b);
    EXPECT_EQ(c.size(), 100u);
    EXPECT_FALSE(c.contains(7) && c.at(7) != 7);
    EXPECT_EQ(c.at(99), 99);
}

TEST(FlatMapTest, NonTrivialValueLifetimes)
{
    // std::string values exercise construct/destroy/move on rehash and
    // backward shift; ASan verifies no leak or double-destroy.
    FlatMap<std::uint64_t, std::string> map;
    for (std::uint64_t i = 0; i < 500; ++i)
        map.emplace(i, std::string(32, static_cast<char>('a' + i % 26)));
    for (std::uint64_t i = 0; i < 500; i += 2)
        map.erase(i);
    for (std::uint64_t i = 1; i < 500; i += 2) {
        const std::string *v = map.findValue(i);
        ASSERT_NE(v, nullptr);
        EXPECT_EQ((*v)[0], static_cast<char>('a' + i % 26));
    }
}

TEST(FlatSetTest, BasicOperations)
{
    FlatSet<std::uint64_t> set;
    EXPECT_TRUE(set.insert(3));
    EXPECT_FALSE(set.insert(3));
    EXPECT_TRUE(set.insert(5));
    EXPECT_EQ(set.size(), 2u);
    EXPECT_TRUE(set.contains(3));
    EXPECT_FALSE(set.contains(4));
    EXPECT_EQ(set.erase(3), 1u);
    EXPECT_EQ(set.erase(3), 0u);
    EXPECT_FALSE(set.contains(3));
}

/**
 * Differential fuzz: random operation mix, checked against
 * std::unordered_map after every phase. Keys are drawn from a small
 * domain so erase hits often and probe chains overlap heavily.
 */
void
fuzzAgainstReference(std::uint64_t seed, std::uint64_t key_domain,
                     unsigned rounds, PoolResource *pool)
{
    Rng rng(seed);
    FlatMap<std::uint64_t, std::uint64_t> map(pool);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    for (unsigned round = 0; round < rounds; ++round) {
        const unsigned op = static_cast<unsigned>(rng.range(100));
        const std::uint64_t key = rng.range(key_domain);
        if (op < 45) {
            const std::uint64_t value = rng.next();
            auto [it, inserted] = map.emplace(key, value);
            auto [rit, rinserted] = ref.emplace(key, value);
            ASSERT_EQ(inserted, rinserted) << "round " << round;
            ASSERT_EQ(it->second, rit->second);
        } else if (op < 60) {
            const std::uint64_t value = rng.next();
            map.insert_or_assign(key, value);
            ref[key] = value;
        } else if (op < 85) {
            ASSERT_EQ(map.erase(key), ref.erase(key)) << "round " << round;
        } else if (op < 99) {
            const std::uint64_t *v = map.findValue(key);
            auto rit = ref.find(key);
            if (rit == ref.end()) {
                ASSERT_EQ(v, nullptr) << "round " << round << " key " << key;
            } else {
                ASSERT_NE(v, nullptr) << "round " << round << " key " << key;
                ASSERT_EQ(*v, rit->second);
            }
        } else {
            map.clear();
            ref.clear();
        }
        ASSERT_EQ(map.size(), ref.size()) << "round " << round;
    }

    // Full cross-check both directions.
    for (const auto &[key, value] : ref) {
        const std::uint64_t *v = map.findValue(key);
        ASSERT_NE(v, nullptr) << "missing key " << key;
        ASSERT_EQ(*v, value);
    }
    std::size_t visited = 0;
    for (const auto &[key, value] : map) {
        auto rit = ref.find(key);
        ASSERT_NE(rit, ref.end()) << "phantom key " << key;
        ASSERT_EQ(rit->second, value);
        ++visited;
    }
    ASSERT_EQ(visited, ref.size());
}

TEST(FlatMapFuzzTest, SmallDomainHeavyChurn)
{
    fuzzAgainstReference(1, 64, 20000, nullptr);
}

TEST(FlatMapFuzzTest, MediumDomain)
{
    fuzzAgainstReference(2, 4096, 40000, nullptr);
}

TEST(FlatMapFuzzTest, LargeDomainPoolBacked)
{
    PoolResource pool;
    fuzzAgainstReference(3, 1u << 20, 40000, &pool);
}

TEST(FlatMapFuzzTest, ManySeeds)
{
    for (std::uint64_t seed = 10; seed < 18; ++seed)
        fuzzAgainstReference(seed, 256, 8000, nullptr);
}

} // namespace
} // namespace palermo
