/** @file Unit tests for the RingORAM protocol engine (both modes). */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/level_engine.hh"
#include "oram/posmap.hh"

namespace palermo {
namespace {

/** Drives one engine with an external authoritative posmap. */
struct Harness
{
    OramParams params;
    RingEngine engine;
    PosMap pm;
    Rng rng;
    std::map<BlockId, std::uint64_t> shadow;

    Harness(std::uint64_t blocks, unsigned z, unsigned s, unsigned a,
            ReshuffleMode mode, unsigned cached = 0)
        : params(OramParams::ring(blocks, z, s, a)),
          engine(params, 0, mode, cached, 42),
          pm(blocks, params.numLeaves, 7), rng(13)
    {
    }

    LevelPlan access(BlockId block)
    {
        Leaf leaf;
        if (engine.inStash(block))
            leaf = rng.range(params.numLeaves);
        else
            leaf = pm.get(block);
        const Leaf new_leaf = rng.range(params.numLeaves);
        pm.set(block, new_leaf);
        return engine.access(block, leaf, new_leaf);
    }

    std::uint64_t read(BlockId block)
    {
        access(block);
        return engine.payloadOf(block);
    }

    void write(BlockId block, std::uint64_t value)
    {
        access(block);
        engine.setPayload(block, value);
        shadow[block] = value;
    }
};

TEST(RingEngine, FreshReadReturnsZero)
{
    Harness h(256, 4, 5, 3, ReshuffleMode::Post);
    EXPECT_EQ(h.read(10), 0u);
}

TEST(RingEngine, ReadYourWrites)
{
    for (ReshuffleMode mode : {ReshuffleMode::Post, ReshuffleMode::Pre}) {
        Harness h(256, 4, 5, 3, mode);
        Rng rng(99);
        for (int i = 0; i < 600; ++i) {
            const BlockId block = rng.range(256);
            if (rng.chance(0.5)) {
                h.write(block, rng.next());
            } else {
                const std::uint64_t expect = h.shadow.count(block)
                    ? h.shadow[block] : 0;
                EXPECT_EQ(h.read(block), expect)
                    << "mode " << static_cast<int>(mode) << " iter " << i;
            }
        }
    }
}

TEST(RingEngine, InvariantHoldsThroughout)
{
    for (ReshuffleMode mode : {ReshuffleMode::Post, ReshuffleMode::Pre}) {
        Harness h(256, 4, 5, 3, mode);
        Rng rng(5);
        for (int i = 0; i < 400; ++i) {
            const BlockId block = rng.range(256);
            h.write(block, block + 1);
            for (const auto &[b, v] : h.shadow) {
                EXPECT_TRUE(h.engine.satisfiesInvariant(b, h.pm.get(b)))
                    << "block " << b << " lost";
            }
        }
    }
}

TEST(RingEngine, StashStaysBounded)
{
    Harness h(1 << 12, 16, 27, 20, ReshuffleMode::Pre);
    Rng rng(6);
    for (int i = 0; i < 2000; ++i)
        h.access(rng.range(1 << 12));
    EXPECT_FALSE(h.engine.stash().overflowed());
    EXPECT_LT(h.engine.stash().highWatermark(), 200u);
}

TEST(RingEngine, PostModePhaseOrder)
{
    Harness h(256, 4, 5, 3, ReshuffleMode::Post);
    const LevelPlan plan = h.access(1);
    ASSERT_GE(plan.phases.size(), 3u);
    EXPECT_EQ(plan.phases[0].kind, PhaseKind::LoadMeta);
    EXPECT_EQ(plan.phases[1].kind, PhaseKind::ReadPath);
    EXPECT_EQ(plan.phases[2].kind, PhaseKind::ResetRead);
}

TEST(RingEngine, PreModePhaseOrder)
{
    Harness h(256, 4, 5, 3, ReshuffleMode::Pre);
    const LevelPlan plan = h.access(1);
    ASSERT_GE(plan.phases.size(), 4u);
    EXPECT_EQ(plan.phases[0].kind, PhaseKind::LoadMeta);
    EXPECT_EQ(plan.phases[1].kind, PhaseKind::ResetRead);
    EXPECT_EQ(plan.phases[2].kind, PhaseKind::ResetWrite);
    EXPECT_EQ(plan.phases[3].kind, PhaseKind::ReadPath);
}

TEST(RingEngine, LoadMetaCoversPath)
{
    Harness h(256, 4, 5, 3, ReshuffleMode::Post);
    const LevelPlan plan = h.access(1);
    EXPECT_EQ(plan.find(PhaseKind::LoadMeta)->ops.size(),
              h.params.levels);
}

TEST(RingEngine, ReadPathOneSlotPerNodePlusMetaUpdate)
{
    Harness h(256, 4, 5, 3, ReshuffleMode::Post);
    const LevelPlan plan = h.access(1);
    const Phase *rp = plan.find(PhaseKind::ReadPath);
    ASSERT_NE(rp, nullptr);
    // One slot read + one metadata update write per path node.
    EXPECT_EQ(rp->readCount(), h.params.levels);
    EXPECT_EQ(rp->writeCount(), h.params.levels);
}

TEST(RingEngine, EvictionEveryA)
{
    Harness h(256, 4, 5, 4, ReshuffleMode::Post);
    int evictions = 0;
    for (int i = 1; i <= 40; ++i) {
        const LevelPlan plan = h.access(
            static_cast<BlockId>(i * 37 % 256));
        if (plan.hasEvict) {
            ++evictions;
            EXPECT_EQ(i % 4, 0) << "eviction off schedule";
            const Phase *epw = plan.find(PhaseKind::EvictWrite);
            ASSERT_NE(epw, nullptr);
            // Full bucket rewrite + meta per path node.
            EXPECT_EQ(epw->ops.size(),
                      h.params.levels * (h.params.slotsAt(0) + 1));
        }
    }
    EXPECT_EQ(evictions, 10);
}

TEST(RingEngine, DummiesNeverExhausted)
{
    // Hammer a single block so its path buckets hit the reshuffle
    // threshold constantly; touchDummy must never fail (engine panics
    // if the protocol is violated).
    for (ReshuffleMode mode : {ReshuffleMode::Post, ReshuffleMode::Pre}) {
        Harness h(256, 4, 5, 3, mode);
        for (int i = 0; i < 300; ++i)
            h.access(7);
        SUCCEED();
    }
}

TEST(RingEngine, PreModeResetsEarlier)
{
    // In Pre mode a bucket resets at S-1 touches, so access counters
    // stay strictly below S; in Post mode they can reach S.
    Harness h(64, 4, 5, 1000, ReshuffleMode::Pre);
    for (int i = 0; i < 200; ++i)
        h.access(static_cast<BlockId>(i % 64));
    for (NodeId node = 0; node < h.params.numNodes; ++node) {
        if (const auto meta = h.engine.tree().peek(node))
            EXPECT_LT(meta.accessed(), h.params.s);
    }
}

TEST(RingEngine, ServedFromStashOnPendingBlock)
{
    Harness h(256, 4, 5, 1000, ReshuffleMode::Pre);
    const LevelPlan first = h.access(9);
    EXPECT_FALSE(first.servedFromStash);
    ASSERT_TRUE(h.engine.inStash(9));
    const LevelPlan second = h.access(9);
    EXPECT_TRUE(second.servedFromStash);
}

TEST(RingEngine, FreshBlockFlag)
{
    Harness h(256, 4, 5, 3, ReshuffleMode::Post);
    EXPECT_TRUE(h.access(3).freshBlock);
    // Still in stash: pending serve, not fresh.
    EXPECT_FALSE(h.access(3).freshBlock);
}

TEST(RingEngine, TreeTopCacheSuppressesOps)
{
    Harness cached(256, 4, 5, 3, ReshuffleMode::Post, /*cached=*/3);
    Harness uncached(256, 4, 5, 3, ReshuffleMode::Post, 0);
    const LevelPlan with_cache = cached.access(1);
    const LevelPlan without = uncached.access(1);
    EXPECT_EQ(with_cache.find(PhaseKind::LoadMeta)->ops.size(),
              cached.params.levels - 3);
    EXPECT_LT(with_cache.readOps(), without.readOps());
}

TEST(RingEngine, ResetBucketReadsArePadded)
{
    // ResetBucket always reads exactly Z offsets per resetting node so
    // occupancy is not observable on the bus.
    Harness h(64, 4, 5, 1000, ReshuffleMode::Pre);
    for (int i = 0; i < 200; ++i) {
        const LevelPlan plan = h.access(static_cast<BlockId>(i % 64));
        const Phase *err = plan.find(PhaseKind::ResetRead);
        ASSERT_NE(err, nullptr);
        EXPECT_EQ(err->ops.size() % h.params.z, 0u);
    }
}

TEST(RingEngine, StatsAccumulate)
{
    Harness h(256, 4, 5, 4, ReshuffleMode::Post);
    for (int i = 0; i < 40; ++i)
        h.access(static_cast<BlockId>(i % 17));
    const EngineStats &stats = h.engine.stats();
    EXPECT_EQ(stats.accesses, 40u);
    EXPECT_EQ(stats.evictions, 10u);
    EXPECT_GT(stats.freshBlocks, 0u);
}

} // namespace
} // namespace palermo
