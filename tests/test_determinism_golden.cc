/**
 * @file
 * Golden-file determinism gate for the simulator's hot path.
 *
 * Renders a fixed palermo + path-oram grid to a palermo-metrics-v1
 * document and byte-compares it against tests/golden/metrics_grid.json.
 * This pins the simulation cycle-exactly: any change to engine
 * ordering, stash iteration, DRAM scheduling, or JSON formatting shows
 * up as a byte diff. Perf refactors (like the allocation pooling) must
 * keep this green untouched — that is the "byte-identical metrics
 * JSON" correctness bar from the speed work.
 *
 * The provenance header's "git" value changes every commit, so it is
 * normalized out on both sides before comparing. To regenerate after
 * an INTENDED behavior change:
 *   PALERMO_UPDATE_GOLDEN=1 ./test_determinism_golden
 * and commit the new golden with the change that explains it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/metrics_json.hh"
#include "sim/protocol_registry.hh"

namespace palermo {
namespace {

const char *const kGoldenRelPath = "/tests/golden/metrics_grid.json";

std::string
goldenPath()
{
    return std::string(PALERMO_SOURCE_DIR) + kGoldenRelPath;
}

/** The fixed grid: two protocols, two tree sizes, fixed seed. */
std::string
renderGrid()
{
    struct GridPoint
    {
        ProtocolKind kind;
        unsigned log2Blocks;
    };
    const std::vector<GridPoint> grid = {
        {ProtocolKind::Palermo, 12},
        {ProtocolKind::Palermo, 14},
        {ProtocolKind::PathOram, 12},
        {ProtocolKind::PathOram, 14},
    };

    std::vector<RunRecord> records;
    for (const GridPoint &point : grid) {
        SystemConfig config;
        config.protocol.numBlocks = 1ull << point.log2Blocks;
        config.totalRequests = 600;
        config.seed = 1;
        config = normalizedProtocolConfig(point.kind, config);

        RunRecord record;
        record.point.index = records.size();
        record.point.kind = point.kind;
        record.point.workload = Workload::Random;
        record.point.config = config;
        record.point.id = std::string(protocolShortName(point.kind))
            + "/b" + std::to_string(point.log2Blocks);
        record.metrics =
            runExperiment(point.kind, Workload::Random, config);
        records.push_back(std::move(record));
    }
    return MetricsJson::document("test_determinism_golden", records);
}

/** Blank out the commit-dependent provenance value. */
std::string
normalizeGit(std::string document)
{
    const std::string key = "\"git\": \"";
    const std::size_t start = document.find(key);
    if (start == std::string::npos)
        return document;
    const std::size_t value_start = start + key.size();
    const std::size_t value_end = document.find('"', value_start);
    if (value_end == std::string::npos)
        return document;
    document.replace(value_start, value_end - value_start, "GIT");
    return document;
}

TEST(DeterminismGolden, GridMatchesCheckedInBytes)
{
    const std::string fresh = normalizeGit(renderGrid());
    ASSERT_FALSE(fresh.empty());
    ASSERT_NE(fresh.find("\"git\": \"GIT\""), std::string::npos)
        << "provenance normalization failed";

    if (std::getenv("PALERMO_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(goldenPath(), std::ios::binary);
        ASSERT_TRUE(out) << "cannot write " << goldenPath();
        out << fresh;
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "golden updated: " << goldenPath();
    }

    std::ifstream in(goldenPath(), std::ios::binary);
    ASSERT_TRUE(in) << "missing golden " << goldenPath()
                    << " (regenerate with PALERMO_UPDATE_GOLDEN=1)";
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string golden = normalizeGit(buffer.str());

    if (golden == fresh)
        return;
    // Report the first divergent byte so the diff is findable in a
    // multi-kilobyte document.
    std::size_t at = 0;
    while (at < golden.size() && at < fresh.size()
           && golden[at] == fresh[at])
        ++at;
    const std::size_t from = at < 60 ? 0 : at - 60;
    FAIL() << "document diverges from golden at byte " << at
           << "\n...golden: "
           << golden.substr(from, std::min<std::size_t>(
                                      120, golden.size() - from))
           << "\n...fresh:  "
           << fresh.substr(from, std::min<std::size_t>(
                                     120, fresh.size() - from))
           << "\n(if this change is intended, regenerate with "
              "PALERMO_UPDATE_GOLDEN=1 and commit the new golden)";
}

/** Two in-process runs of the same grid must already agree. */
TEST(DeterminismGolden, BackToBackRunsAgree)
{
    EXPECT_EQ(renderGrid(), renderGrid());
}

} // namespace
} // namespace palermo
