/**
 * @file ObliviousKvService tests: end-to-end serving semantics over
 * the real timing stack — backpressure policies, per-tenant
 * accounting and isolation, the warmup measurement boundary
 * (accepted == completed after a full drain), and byte-determinism
 * of the rendered service snapshot across repeat runs and
 * --sim-threads values.
 */

#include <gtest/gtest.h>

#include <string>

#include "service/kv_service.hh"
#include "service/service_metrics.hh"
#include "sim/metrics_json.hh"

namespace palermo {
namespace {

ServiceConfig
tinyService(unsigned tenants = 1, std::uint64_t requests = 64)
{
    ServiceConfig config;
    config.system.protocol.numBlocks = 1 << 12;
    config.system.protocol.treetopBytes = {8192, 4096, 2048};
    config.system.dram.org.rows = 1u << 10;
    config.system.totalRequests = requests;
    config.system.warmupFraction = 0.0;
    config.tenants = tenants;
    config.queueCapacity = 8;
    // Block by default so offerBlocking() can push every request
    // through a full queue; the Reject tests override this.
    config.queuePolicy = QueuePolicy::Block;
    config.sessionDepth = 4;
    return config;
}

/** Offer-and-step until the arrival is accepted (Block discipline). */
void
offerBlocking(ObliviousKvService &service, unsigned tenant,
              std::uint64_t key, Tick arrival)
{
    while (service.offer(tenant, key, false, 0, arrival)
           == Admission::WouldBlock)
        service.step(1);
}

TEST(KvServiceTest, ServesEveryAcceptedRequest)
{
    ObliviousKvService service(tinyService(1, 32));
    for (std::uint64_t key = 0; key < 32; ++key)
        offerBlocking(service, 0, key, service.now());
    service.drainAll();

    const ServiceSnapshot snapshot = service.snapshot();
    EXPECT_EQ(service.completedTotal(), 32u);
    EXPECT_EQ(snapshot.global.accepted, 32u);
    EXPECT_EQ(snapshot.global.completed, 32u);
    EXPECT_EQ(snapshot.global.rejected, 0u);
    EXPECT_EQ(snapshot.global.latency.count(), 32u);
    EXPECT_GT(snapshot.global.latency.mean(), 0.0);
    EXPECT_GT(snapshot.achievedPerKilocycle, 0.0);
    EXPECT_TRUE(service.quiescent());
}

TEST(KvServiceTest, RejectPolicyShedsOverload)
{
    ServiceConfig config = tinyService(1, 64);
    config.queueCapacity = 4;
    config.queuePolicy = QueuePolicy::Reject;
    ObliviousKvService service(config);

    // Burst far past queue + session depth at tick 0: the excess must
    // be rejected, never silently dropped or queued.
    std::uint64_t accepted = 0, rejected = 0;
    for (std::uint64_t key = 0; key < 32; ++key) {
        const Admission admission =
            service.offer(0, key, false, 0, 0);
        ASSERT_NE(admission, Admission::WouldBlock);
        (admission == Admission::Accepted ? accepted : rejected) += 1;
    }
    EXPECT_GT(rejected, 0u);
    service.drainAll();

    const ServiceSnapshot snapshot = service.snapshot();
    EXPECT_EQ(snapshot.global.offered, 32u);
    EXPECT_EQ(snapshot.global.accepted, accepted);
    EXPECT_EQ(snapshot.global.rejected, rejected);
    EXPECT_EQ(snapshot.global.completed, accepted);
}

TEST(KvServiceTest, BlockPolicyNeverRejects)
{
    ServiceConfig config = tinyService(1, 48);
    config.queueCapacity = 4;
    config.queuePolicy = QueuePolicy::Block;
    ObliviousKvService service(config);

    for (std::uint64_t key = 0; key < 48; ++key)
        offerBlocking(service, 0, key, service.now());
    service.drainAll();

    const ServiceSnapshot snapshot = service.snapshot();
    EXPECT_EQ(snapshot.global.rejected, 0u);
    EXPECT_EQ(snapshot.global.completed, 48u);
    // The bound held: the queue never grew past its capacity.
    EXPECT_LE(snapshot.queueHighWatermark, 4u);
}

TEST(KvServiceTest, PerTenantAccountingSumsToGlobal)
{
    ObliviousKvService service(tinyService(3, 60));
    for (std::uint64_t i = 0; i < 60; ++i)
        offerBlocking(service, i % 3, i, service.now());
    service.drainAll();

    const ServiceSnapshot snapshot = service.snapshot();
    ASSERT_EQ(snapshot.perTenant.size(), 3u);
    std::uint64_t completed = 0, accepted = 0;
    for (const ServiceScopeSnapshot &tenant : snapshot.perTenant) {
        EXPECT_EQ(tenant.completed, 20u);
        completed += tenant.completed;
        accepted += tenant.accepted;
    }
    EXPECT_EQ(completed, snapshot.global.completed);
    EXPECT_EQ(accepted, snapshot.global.accepted);
}

TEST(KvServiceTest, TenantKeysStayInsideTheirSlices)
{
    ObliviousKvService service(tinyService(4, 16));
    const TenantDirectory &tenants = service.tenants();
    // The same key from different tenants must resolve into each
    // tenant's own slice — isolation is structural, not statistical.
    for (unsigned tenant = 0; tenant < 4; ++tenant) {
        for (std::uint64_t key = 0; key < 64; ++key)
            EXPECT_TRUE(
                tenants.owns(tenant, tenants.blockOf(tenant, key)));
    }
}

TEST(KvServiceTest, WarmupBoundaryBalancesAcceptedAndCompleted)
{
    ServiceConfig config = tinyService(2, 96);
    config.warmupCompletions = 32;
    config.system.totalRequests = 96;
    config.system.warmupFraction = 32.0 / 96.0;
    ObliviousKvService service(config);

    for (std::uint64_t i = 0; i < 96; ++i)
        offerBlocking(service, i % 2, i, service.now());
    service.drainAll();

    const ServiceSnapshot snapshot = service.snapshot();
    // Completions before the boundary are forgotten; requests in
    // flight at the boundary are credited as accepted, so a fully
    // drained window balances exactly.
    EXPECT_EQ(service.completedTotal(), 96u);
    EXPECT_EQ(snapshot.global.completed, 96u - 32u);
    EXPECT_EQ(snapshot.global.accepted, snapshot.global.completed);
    EXPECT_EQ(snapshot.global.latency.count(),
              snapshot.global.completed);
}

TEST(KvServiceTest, LatencyIncludesQueueingDelay)
{
    ServiceConfig config = tinyService(1, 24);
    config.queueCapacity = 24;
    ObliviousKvService service(config);
    for (std::uint64_t key = 0; key < 24; ++key)
        ASSERT_EQ(service.offer(0, key, false, 0, 0),
                  Admission::Accepted);
    service.drainAll();

    const ServiceSnapshot snapshot = service.snapshot();
    // A tick-0 burst makes queueing delay visible: the last-admitted
    // request waited, so max latency strictly exceeds min latency and
    // queueing delay is non-degenerate.
    EXPECT_GT(snapshot.global.queueingDelay.max(), 0.0);
    EXPECT_GT(snapshot.global.latency.max(),
              snapshot.global.latency.min());
    EXPECT_GE(snapshot.global.latency.quantile(0.99),
              snapshot.global.latency.quantile(0.50));
}

/** Render a snapshot to JSON text for byte comparison. */
std::string
renderSnapshot(const ServiceSnapshot &snapshot)
{
    JsonWriter w;
    w.beginObject();
    w.key("service");
    writeServiceSnapshot(w, snapshot);
    w.endObject();
    return w.str();
}

TEST(KvServiceTest, DeterministicAcrossRunsAndSimThreads)
{
    const auto run = [](unsigned sim_threads) {
        ServiceConfig config = tinyService(2, 48);
        config.system.simThreads = sim_threads;
        ObliviousKvService service(config);
        for (std::uint64_t i = 0; i < 48; ++i)
            offerBlocking(service, i % 2, i * 7, service.now());
        service.drainAll();
        return renderSnapshot(service.snapshot());
    };
    const std::string serial = run(1);
    EXPECT_EQ(serial, run(1)) << "repeat run diverged";
    EXPECT_EQ(serial, run(2)) << "sim-threads=2 diverged";
}

} // namespace
} // namespace palermo
