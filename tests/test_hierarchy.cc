/** @file Unit tests for hierarchy plumbing: config, filter, prefill. */

#include <gtest/gtest.h>

#include "oram/hierarchy.hh"
#include "oram/ring_oram.hh"

namespace palermo {
namespace {

TEST(ProtocolConfig, LevelBlocksShrinkByFanout)
{
    ProtocolConfig config;
    config.numBlocks = 1 << 16;
    config.posFanout = 16;
    const auto blocks = config.levelBlocks();
    EXPECT_EQ(blocks[kLevelData], 1u << 16);
    EXPECT_EQ(blocks[kLevelPos1], 1u << 12);
    EXPECT_EQ(blocks[kLevelPos2], 1u << 8);
}

TEST(ProtocolConfig, LevelBlocksRoundUp)
{
    ProtocolConfig config;
    config.numBlocks = 17;
    config.posFanout = 16;
    const auto blocks = config.levelBlocks();
    EXPECT_EQ(blocks[kLevelPos1], 2u);
    EXPECT_EQ(blocks[kLevelPos2], 1u);
}

TEST(ProtocolConfig, DecomposeConsistent)
{
    ProtocolConfig config;
    config.numBlocks = 1 << 12;
    const auto ids = config.decompose(0xABC);
    EXPECT_EQ(ids[kLevelData], 0xABCu);
    EXPECT_EQ(ids[kLevelPos1], 0xABCu / 16);
    EXPECT_EQ(ids[kLevelPos2], 0xABCu / 256);
    const auto blocks = config.levelBlocks();
    for (unsigned level = 0; level < kHierLevels; ++level)
        EXPECT_LT(ids[level], blocks[level]);
}

TEST(PrefetchFilter, HitAfterInsert)
{
    PrefetchFilter filter(4);
    EXPECT_FALSE(filter.hit(1));
    filter.insert(1);
    EXPECT_TRUE(filter.hit(1));
}

TEST(PrefetchFilter, LruEviction)
{
    PrefetchFilter filter(2);
    filter.insert(1);
    filter.insert(2);
    filter.insert(3); // Evicts 1.
    EXPECT_FALSE(filter.hit(1));
    EXPECT_TRUE(filter.hit(2));
    EXPECT_TRUE(filter.hit(3));
}

TEST(PrefetchFilter, HitRefreshesRecency)
{
    PrefetchFilter filter(2);
    filter.insert(1);
    filter.insert(2);
    EXPECT_TRUE(filter.hit(1)); // 1 becomes most recent.
    filter.insert(3);           // Evicts 2.
    EXPECT_TRUE(filter.hit(1));
    EXPECT_FALSE(filter.hit(2));
}

TEST(PrefetchFilter, ReinsertIsIdempotent)
{
    PrefetchFilter filter(2);
    filter.insert(1);
    filter.insert(1);
    filter.insert(2);
    EXPECT_TRUE(filter.hit(1));
    EXPECT_EQ(filter.size(), 2u);
}

TEST(Prefill, FirstAccessFindsPlantedBlocks)
{
    ProtocolConfig config;
    config.numBlocks = 1 << 10;
    config.ringZ = 4;
    config.ringS = 5;
    config.ringA = 3;
    config.prefill = true;
    RingOram oram(config);
    // Prefilled: no access conjures a fresh block.
    for (BlockId pa = 0; pa < 64; ++pa) {
        const auto plans = oram.access(pa * 7 % (1 << 10), false, 0);
        for (const auto &level : plans[0].levels)
            EXPECT_FALSE(level.freshBlock) << "pa " << pa;
    }
}

TEST(Prefill, DisabledStartsEmpty)
{
    ProtocolConfig config;
    config.numBlocks = 1 << 10;
    config.ringZ = 4;
    config.ringS = 5;
    config.ringA = 3;
    config.prefill = false;
    RingOram oram(config);
    const auto plans = oram.access(5, false, 0);
    EXPECT_TRUE(plans[0].levels.back().freshBlock);
}

TEST(Prefill, PlantedBlocksSatisfyInvariant)
{
    ProtocolConfig config;
    config.numBlocks = 1 << 10;
    config.ringZ = 4;
    config.ringS = 5;
    config.ringA = 3;
    RingOram oram(config);
    for (BlockId pa = 0; pa < (1 << 10); pa += 13)
        EXPECT_TRUE(oram.checkBlockInvariant(pa)) << pa;
}

TEST(Prefill, SkipsHugeSpaces)
{
    // Above kPrefillLimit construction must stay cheap (lazy).
    ProtocolConfig config;
    config.numBlocks = 1ull << 26;
    RingOram oram(config);
    EXPECT_TRUE(oram.access(123, false, 0)[0].levels.back().freshBlock);
}

TEST(CachedLevelsFor, MonotoneInBudget)
{
    const OramParams params = OramParams::ring(1 << 14, 16, 27, 20);
    unsigned previous = 0;
    for (std::uint64_t budget = 0; budget < (1 << 20);
         budget = budget * 2 + 1024) {
        const unsigned levels = cachedLevelsFor(params, budget);
        EXPECT_GE(levels, previous);
        previous = levels;
    }
}

} // namespace
} // namespace palermo
