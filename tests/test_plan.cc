/** @file Unit tests for access-plan structures and helpers. */

#include <gtest/gtest.h>

#include "oram/plan.hh"

namespace palermo {
namespace {

Phase
makePhase(PhaseKind kind, unsigned reads, unsigned writes)
{
    Phase phase{kind, {}};
    for (unsigned i = 0; i < reads; ++i)
        phase.ops.push_back({i * 64ull, false});
    for (unsigned i = 0; i < writes; ++i)
        phase.ops.push_back({(100 + i) * 64ull, true});
    return phase;
}

TEST(Phase, CountsReadsAndWrites)
{
    const Phase phase = makePhase(PhaseKind::ReadPath, 3, 2);
    EXPECT_EQ(phase.readCount(), 3u);
    EXPECT_EQ(phase.writeCount(), 2u);
}

TEST(Phase, EmptyPhase)
{
    const Phase phase{PhaseKind::LoadMeta, {}};
    EXPECT_EQ(phase.readCount(), 0u);
    EXPECT_EQ(phase.writeCount(), 0u);
}

TEST(PhaseKindName, AllNamed)
{
    for (PhaseKind kind :
         {PhaseKind::LoadMeta, PhaseKind::ResetRead, PhaseKind::ResetWrite,
          PhaseKind::ReadPath, PhaseKind::EvictRead,
          PhaseKind::EvictWrite}) {
        EXPECT_STRNE(phaseKindName(kind), "?");
    }
}

TEST(LevelPlan, AggregatesOps)
{
    LevelPlan plan;
    plan.phases.push_back(makePhase(PhaseKind::LoadMeta, 5, 0));
    plan.phases.push_back(makePhase(PhaseKind::ReadPath, 7, 7));
    plan.phases.push_back(makePhase(PhaseKind::EvictWrite, 0, 9));
    EXPECT_EQ(plan.readOps(), 12u);
    EXPECT_EQ(plan.writeOps(), 16u);
}

TEST(LevelPlan, FindLocatesPhase)
{
    LevelPlan plan;
    plan.phases.push_back(makePhase(PhaseKind::LoadMeta, 1, 0));
    plan.phases.push_back(makePhase(PhaseKind::ReadPath, 2, 0));
    ASSERT_NE(plan.find(PhaseKind::ReadPath), nullptr);
    EXPECT_EQ(plan.find(PhaseKind::ReadPath)->ops.size(), 2u);
    EXPECT_EQ(plan.find(PhaseKind::EvictRead), nullptr);
}

TEST(RequestPlan, AggregatesAcrossLevels)
{
    RequestPlan request;
    for (unsigned level = 0; level < 3; ++level) {
        LevelPlan plan;
        plan.level = level;
        plan.phases.push_back(makePhase(PhaseKind::ReadPath, 4, 1));
        request.levels.push_back(std::move(plan));
    }
    EXPECT_EQ(request.readOps(), 12u);
    EXPECT_EQ(request.writeOps(), 3u);
}

} // namespace
} // namespace palermo
