/** @file Unit tests for bucket (NodeMeta) functional state. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "oram/node_meta.hh"

namespace palermo {
namespace {

TEST(NodeMeta, FreshBucketAllDummies)
{
    NodeMeta meta(4, 9);
    EXPECT_EQ(meta.validRealCount(), 0u);
    EXPECT_EQ(meta.accessed(), 0u);
    EXPECT_EQ(meta.slotOf(7), -1);
    EXPECT_FALSE(meta.needsReset());
}

TEST(NodeMeta, ResetWithPlacesBlocks)
{
    NodeMeta meta(4, 9);
    meta.resetWith({{10, 100, 0}, {11, 101, 1}});
    EXPECT_EQ(meta.validRealCount(), 2u);
    EXPECT_GE(meta.slotOf(10), 0);
    EXPECT_GE(meta.slotOf(11), 0);
    EXPECT_EQ(meta.slotOf(12), -1);
}

TEST(NodeMeta, TakeRealRemovesAndCounts)
{
    NodeMeta meta(4, 9);
    meta.resetWith({{10, 100, 3}});
    const int slot = meta.slotOf(10);
    ASSERT_GE(slot, 0);
    const BlockContent content = meta.takeReal(slot);
    EXPECT_EQ(content.block, 10u);
    EXPECT_EQ(content.payload, 100u);
    EXPECT_EQ(content.leaf, 3u);
    EXPECT_EQ(meta.slotOf(10), -1);
    EXPECT_EQ(meta.accessed(), 1u);
    EXPECT_EQ(meta.validRealCount(), 0u);
}

TEST(NodeMeta, TouchDummyConsumesSlots)
{
    // An empty bucket's slots are all dummies (7 here); each touch
    // consumes one permanently until a reset.
    NodeMeta meta(2, 7);
    Rng rng(1);
    for (int i = 0; i < 7; ++i)
        EXPECT_GE(meta.touchDummy(rng), 0);
    EXPECT_EQ(meta.accessed(), 7u);
    EXPECT_EQ(meta.touchDummy(rng), -1);
    EXPECT_TRUE(meta.needsReset());
}

TEST(NodeMeta, FullBucketHasExactlySDummies)
{
    // With Z real blocks resident, exactly S = slots - Z dummies remain.
    NodeMeta meta(2, 7);
    meta.resetWith({{1, 0, 0}, {2, 0, 0}});
    Rng rng(1);
    for (int i = 0; i < 5; ++i)
        EXPECT_GE(meta.touchDummy(rng), 0);
    EXPECT_EQ(meta.touchDummy(rng), -1);
    // The real blocks are untouched.
    EXPECT_GE(meta.slotOf(1), 0);
    EXPECT_GE(meta.slotOf(2), 0);
}

TEST(NodeMeta, TouchDummySkipsRealBlocks)
{
    NodeMeta meta(2, 3); // 2 real-capable + 1 extra slot.
    meta.resetWith({{5, 0, 0}, {6, 0, 0}});
    Rng rng(2);
    // Only one dummy slot exists; it must be chosen, not a real block.
    const int slot = meta.touchDummy(rng);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(meta.slotOf(5) >= 0, true);
    EXPECT_EQ(meta.slotOf(6) >= 0, true);
}

TEST(NodeMeta, TouchedDummiesNeverRepeat)
{
    NodeMeta meta(4, 20);
    Rng rng(3);
    std::set<int> seen;
    for (int i = 0; i < 16; ++i) {
        const int slot = meta.touchDummy(rng);
        ASSERT_GE(slot, 0);
        EXPECT_TRUE(seen.insert(slot).second);
    }
}

TEST(NodeMeta, TakeAllValidDrains)
{
    NodeMeta meta(4, 9);
    meta.resetWith({{1, 10, 0}, {2, 20, 1}, {3, 30, 2}});
    auto blocks = meta.takeAllValid();
    EXPECT_EQ(blocks.size(), 3u);
    EXPECT_EQ(meta.validRealCount(), 0u);
    // A second drain yields nothing.
    EXPECT_TRUE(meta.takeAllValid().empty());
}

TEST(NodeMeta, ResetClearsAccessCounter)
{
    NodeMeta meta(2, 5);
    Rng rng(4);
    meta.touchDummy(rng);
    meta.touchDummy(rng);
    EXPECT_EQ(meta.accessed(), 2u);
    meta.resetWith({});
    EXPECT_EQ(meta.accessed(), 0u);
    EXPECT_FALSE(meta.needsReset());
}

TEST(NodeMeta, ReadAfterResetFindsNewBlocks)
{
    NodeMeta meta(2, 5);
    meta.resetWith({{8, 80, 0}});
    ASSERT_GE(meta.slotOf(8), 0);
    meta.resetWith({{9, 90, 1}});
    EXPECT_EQ(meta.slotOf(8), -1);
    EXPECT_GE(meta.slotOf(9), 0);
}

} // namespace
} // namespace palermo
