/**
 * @file
 * Unit tests for bucket functional state (TreeStore's SoA slot arrays
 * behind the Bucket view, formerly the NodeMeta class).
 */

#include <set>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "oram/tree_store.hh"

namespace palermo {
namespace {

/**
 * A tree store whose root bucket has the requested shape; RingORAM
 * geometry with Z = capacity and S = slots - capacity.
 */
TreeStore
makeStore(unsigned capacity, unsigned slots)
{
    return TreeStore(OramParams::ring(8, capacity, slots - capacity, 2));
}

TEST(TreeStoreBucket, FreshBucketAllDummies)
{
    TreeStore store = makeStore(4, 9);
    auto meta = store.node(0);
    EXPECT_EQ(meta.capacity(), 4u);
    EXPECT_EQ(meta.slots(), 9u);
    EXPECT_EQ(meta.validRealCount(), 0u);
    EXPECT_EQ(meta.accessed(), 0u);
    EXPECT_EQ(meta.slotOf(7), -1);
    EXPECT_FALSE(meta.needsReset());
}

TEST(TreeStoreBucket, ResetWithPlacesBlocks)
{
    TreeStore store = makeStore(4, 9);
    auto meta = store.node(0);
    meta.resetWith({{10, 100, 0}, {11, 101, 1}});
    EXPECT_EQ(meta.validRealCount(), 2u);
    EXPECT_GE(meta.slotOf(10), 0);
    EXPECT_GE(meta.slotOf(11), 0);
    EXPECT_EQ(meta.slotOf(12), -1);
}

TEST(TreeStoreBucket, TakeRealRemovesAndCounts)
{
    TreeStore store = makeStore(4, 9);
    auto meta = store.node(0);
    meta.resetWith({{10, 100, 3}});
    const int slot = meta.slotOf(10);
    ASSERT_GE(slot, 0);
    const BlockContent content = meta.takeReal(slot);
    EXPECT_EQ(content.block, 10u);
    EXPECT_EQ(content.payload, 100u);
    EXPECT_EQ(content.leaf, 3u);
    EXPECT_EQ(meta.slotOf(10), -1);
    EXPECT_EQ(meta.accessed(), 1u);
    EXPECT_EQ(meta.validRealCount(), 0u);
}

TEST(TreeStoreBucket, TouchDummyConsumesSlots)
{
    // An empty bucket's slots are all dummies (7 here); each touch
    // consumes one permanently until a reset.
    TreeStore store = makeStore(2, 7);
    auto meta = store.node(0);
    Rng rng(1);
    for (int i = 0; i < 7; ++i)
        EXPECT_GE(meta.touchDummy(rng), 0);
    EXPECT_EQ(meta.accessed(), 7u);
    EXPECT_EQ(meta.touchDummy(rng), -1);
    EXPECT_TRUE(meta.needsReset());
}

TEST(TreeStoreBucket, FullBucketHasExactlySDummies)
{
    // With Z real blocks resident, exactly S = slots - Z dummies remain.
    TreeStore store = makeStore(2, 7);
    auto meta = store.node(0);
    meta.resetWith({{1, 0, 0}, {2, 0, 0}});
    Rng rng(1);
    for (int i = 0; i < 5; ++i)
        EXPECT_GE(meta.touchDummy(rng), 0);
    EXPECT_EQ(meta.touchDummy(rng), -1);
    // The real blocks are untouched.
    EXPECT_GE(meta.slotOf(1), 0);
    EXPECT_GE(meta.slotOf(2), 0);
}

TEST(TreeStoreBucket, TouchDummySkipsRealBlocks)
{
    TreeStore store = makeStore(2, 3); // 2 real-capable + 1 extra slot.
    auto meta = store.node(0);
    meta.resetWith({{5, 0, 0}, {6, 0, 0}});
    Rng rng(2);
    // Only one dummy slot exists; it must be chosen, not a real block.
    const int slot = meta.touchDummy(rng);
    ASSERT_GE(slot, 0);
    EXPECT_EQ(meta.slotOf(5) >= 0, true);
    EXPECT_EQ(meta.slotOf(6) >= 0, true);
}

TEST(TreeStoreBucket, TouchedDummiesNeverRepeat)
{
    TreeStore store = makeStore(4, 20);
    auto meta = store.node(0);
    Rng rng(3);
    std::set<int> seen;
    for (int i = 0; i < 16; ++i) {
        const int slot = meta.touchDummy(rng);
        ASSERT_GE(slot, 0);
        EXPECT_TRUE(seen.insert(slot).second);
    }
}

TEST(TreeStoreBucket, TakeAllValidDrains)
{
    TreeStore store = makeStore(4, 9);
    auto meta = store.node(0);
    meta.resetWith({{1, 10, 0}, {2, 20, 1}, {3, 30, 2}});
    auto blocks = meta.takeAllValid();
    EXPECT_EQ(blocks.size(), 3u);
    EXPECT_EQ(meta.validRealCount(), 0u);
    // A second drain yields nothing.
    EXPECT_TRUE(meta.takeAllValid().empty());
}

TEST(TreeStoreBucket, ResetClearsAccessCounter)
{
    TreeStore store = makeStore(2, 5);
    auto meta = store.node(0);
    Rng rng(4);
    meta.touchDummy(rng);
    meta.touchDummy(rng);
    EXPECT_EQ(meta.accessed(), 2u);
    meta.resetWith({});
    EXPECT_EQ(meta.accessed(), 0u);
    EXPECT_FALSE(meta.needsReset());
}

TEST(TreeStoreBucket, ReadAfterResetFindsNewBlocks)
{
    TreeStore store = makeStore(2, 5);
    auto meta = store.node(0);
    meta.resetWith({{8, 80, 0}});
    ASSERT_GE(meta.slotOf(8), 0);
    meta.resetWith({{9, 90, 1}});
    EXPECT_EQ(meta.slotOf(8), -1);
    EXPECT_GE(meta.slotOf(9), 0);
}

TEST(TreeStoreBucket, ViewsShareState)
{
    // Two Bucket views of the same node observe each other's writes —
    // they are references into the store's arrays, not copies.
    TreeStore store = makeStore(4, 9);
    auto a = store.node(0);
    auto b = store.node(0);
    a.resetWith({{10, 100, 0}});
    EXPECT_GE(b.slotOf(10), 0);
    b.takeReal(b.slotOf(10));
    EXPECT_EQ(a.slotOf(10), -1);
    EXPECT_EQ(a.accessed(), 1u);
}

} // namespace
} // namespace palermo
