/**
 * @file
 * Serial-vs-parallel byte-identity gate for channel-sharded stepping.
 *
 * The contract of --sim-threads is that it is an execution knob, not a
 * design point: for any thread count, every stat, stash sample, and
 * metrics-JSON byte must equal the serial run. These tests render the
 * same fixed grids the determinism golden uses (scaled down so the
 * epoch barriers stay cheap on single-core CI) at thread counts
 * {1, 2, 4, hardware_concurrency} and byte-compare the documents; a
 * constant-rate grid exercises the batched quiescent-window path, and
 * a step-pattern test pins finish()'s epoch chunking against a manual
 * step(1) loop.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "sim/experiment.hh"
#include "sim/metrics_json.hh"
#include "sim/protocol_registry.hh"

namespace palermo {
namespace {

/** Thread counts under test: serial, small, wide, and whatever the
 *  host reports (deduplicated by the caller's comparisons being
 *  against the serial document anyway). */
std::vector<unsigned>
threadGrid()
{
    return {1, 2, 4, std::max(1u, std::thread::hardware_concurrency())};
}

/**
 * Render the tiny grid at one thread count. Identical inputs except
 * simThreads must produce identical bytes.
 */
std::string
renderGrid(unsigned sim_threads, bool constant_rate)
{
    struct GridPoint
    {
        ProtocolKind kind;
        unsigned log2Blocks;
    };
    const std::vector<GridPoint> grid = {
        {ProtocolKind::Palermo, 10},
        {ProtocolKind::PathOram, 10},
    };

    std::vector<RunRecord> records;
    for (const GridPoint &point : grid) {
        SystemConfig config;
        config.protocol.numBlocks = 1ull << point.log2Blocks;
        config.totalRequests = 200;
        config.seed = 1;
        config.constantRate = constant_rate;
        config.simThreads = sim_threads;
        config = normalizedProtocolConfig(point.kind, config);

        RunRecord record;
        record.point.index = records.size();
        record.point.kind = point.kind;
        record.point.workload = Workload::Random;
        record.point.config = config;
        record.point.id = std::string(protocolShortName(point.kind))
            + "/b" + std::to_string(point.log2Blocks);
        record.metrics =
            runExperiment(point.kind, Workload::Random, config);
        records.push_back(std::move(record));
    }
    return MetricsJson::document("test_parallel_identity", records);
}

TEST(ParallelIdentity, SaturatedGridBytesMatchSerial)
{
    const std::string serial = renderGrid(1, false);
    ASSERT_FALSE(serial.empty());
    for (const unsigned threads : threadGrid()) {
        if (threads == 1)
            continue;
        EXPECT_EQ(serial, renderGrid(threads, false))
            << "saturated grid diverged at --sim-threads " << threads;
    }
}

TEST(ParallelIdentity, ConstantRateGridBytesMatchSerial)
{
    // Constant-rate issue leaves long idle gaps between requests, so
    // this grid spends most of its cycles in the batched
    // quiescent-window path (Controller::tickIdle +
    // DramSystem::tickWindow) — the epoch-batching half of the
    // parallel stepping contract.
    const std::string serial = renderGrid(1, true);
    ASSERT_FALSE(serial.empty());
    for (const unsigned threads : threadGrid()) {
        if (threads == 1)
            continue;
        EXPECT_EQ(serial, renderGrid(threads, true))
            << "constant-rate grid diverged at --sim-threads "
            << threads;
    }
}

/** Run one session to completion with per-cycle step(1) calls. */
RunMetrics
runStepwise(ProtocolKind kind, const SystemConfig &config)
{
    auto session = makeSession(kind, Workload::Random, config);
    while (!session->done())
        session->step(1);
    session->drain();
    return session->snapshot();
}

TEST(ParallelIdentity, FinishChunkingMatchesStepwiseDrive)
{
    // finish() batches quiescent windows and checks done() once per
    // epoch; an external driver steps one cycle at a time. Both must
    // land on the same final state — here compared through the full
    // rendered document, same-config single point each.
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 10;
    config.totalRequests = 150;
    config.seed = 7;
    config.constantRate = true;
    config.simThreads = 4;
    config = normalizedProtocolConfig(ProtocolKind::Palermo, config);

    const auto render = [&](const RunMetrics &metrics) {
        RunRecord record;
        record.point.kind = ProtocolKind::Palermo;
        record.point.workload = Workload::Random;
        record.point.config = config;
        record.point.id = "palermo/step-pattern";
        record.metrics = metrics;
        return MetricsJson::document("test_parallel_identity", {record});
    };

    const RunMetrics chunked =
        runExperiment(ProtocolKind::Palermo, Workload::Random, config);
    const RunMetrics stepwise =
        runStepwise(ProtocolKind::Palermo, config);
    EXPECT_EQ(render(chunked), render(stepwise));
}

TEST(ParallelIdentity, ThreadsBeyondChannelsStillIdentical)
{
    // More threads than channels: shards clamp to the channel count
    // and the spare workers idle at the barrier.
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 10;
    config.totalRequests = 120;
    config.seed = 3;
    config = normalizedProtocolConfig(ProtocolKind::Palermo, config);

    SystemConfig wide = config;
    wide.simThreads = 16;
    const RunMetrics a =
        runExperiment(ProtocolKind::Palermo, Workload::Random, config);
    const RunMetrics b =
        runExperiment(ProtocolKind::Palermo, Workload::Random, wide);
    EXPECT_EQ(a.measuredRequests, b.measuredRequests);
    EXPECT_EQ(a.measuredCycles, b.measuredCycles);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.stashSamples, b.stashSamples);
    EXPECT_EQ(a.avgOutstanding, b.avgOutstanding);
}

} // namespace
} // namespace palermo
