/** @file Unit tests for SweepSpec parsing/expansion and SweepRunner. */

#include <gtest/gtest.h>

#include <string>

#include "sim/metrics_json.hh"
#include "sim/sweep.hh"

namespace palermo {
namespace {

/** Tiny geometry so every runner test completes in milliseconds. */
SystemConfig
tinyConfig()
{
    SystemConfig config;
    config.protocol.numBlocks = 1ull << 12;
    config.protocol.treetopBytes = {8 * 1024, 4 * 1024, 2 * 1024};
    config.totalRequests = 60;
    return config;
}

TEST(SweepSpec, ParseSingleAxis)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("prefetch=0,4,8", &spec, &error))
        << error;
    ASSERT_EQ(spec.prefetchLens.size(), 3u);
    EXPECT_EQ(spec.prefetchLens[0], 0u);
    EXPECT_EQ(spec.prefetchLens[2], 8u);
    EXPECT_EQ(spec.pointCount(), 3u);
}

TEST(SweepSpec, ParseMultipleAxes)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(
        "protocol=ring,palermo;workload=mcf,llm;zsa=4:5:3,8:12:8;"
        "pe=1,8;channels=2;seed=1,2",
        &spec, &error))
        << error;
    EXPECT_EQ(spec.protocols.size(), 2u);
    EXPECT_EQ(spec.workloads.size(), 2u);
    EXPECT_EQ(spec.zsaPoints.size(), 2u);
    EXPECT_EQ(spec.zsaPoints[1].s, 12u);
    EXPECT_EQ(spec.peColumns.size(), 2u);
    EXPECT_EQ(spec.channels.size(), 1u);
    EXPECT_EQ(spec.seeds.size(), 2u);
    EXPECT_EQ(spec.pointCount(), 2u * 2 * 2 * 2 * 1 * 2);
}

TEST(SweepSpec, ParseAliasesAndWhitespace)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(
        SweepSpec::parse("pf=2 wl=graph proto=palermo", &spec, &error))
        << error;
    EXPECT_EQ(spec.prefetchLens.size(), 1u);
    ASSERT_EQ(spec.workloads.size(), 1u);
    EXPECT_EQ(spec.workloads[0], Workload::PageRank);
    EXPECT_EQ(spec.protocols.size(), 1u);
}

TEST(SweepSpec, ParseRejectsMalformedInput)
{
    SweepSpec spec;
    std::string error;
    EXPECT_FALSE(SweepSpec::parse("prefetch", &spec, &error));
    EXPECT_FALSE(SweepSpec::parse("prefetch=", &spec, &error));
    EXPECT_FALSE(SweepSpec::parse("bogus=1", &spec, &error));
    EXPECT_FALSE(SweepSpec::parse("protocol=quantum", &spec, &error));
    EXPECT_FALSE(SweepSpec::parse("workload=doom", &spec, &error));
    EXPECT_FALSE(SweepSpec::parse("zsa=4:5", &spec, &error));
    EXPECT_FALSE(SweepSpec::parse("pe=0", &spec, &error));
    EXPECT_FALSE(SweepSpec::parse("prefetch=x", &spec, &error));
    EXPECT_FALSE(error.empty());
}

TEST(SweepSpec, EmptySpecExpandsToBasePoint)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("", &spec, &error));
    EXPECT_TRUE(spec.empty());
    const auto points = spec.expand(ProtocolKind::RingOram,
                                    Workload::Mcf, tinyConfig());
    ASSERT_EQ(points.size(), 1u);
    EXPECT_EQ(points[0].kind, ProtocolKind::RingOram);
    EXPECT_EQ(points[0].workload, Workload::Mcf);
    EXPECT_EQ(points[0].id, "ring/mcf");
}

TEST(SweepSpec, ExpandOrderAndIdsAreStable)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("workload=mcf,llm;prefetch=0,4", &spec,
                                 &error));
    const auto points = spec.expand(ProtocolKind::Palermo,
                                    Workload::Random, tinyConfig());
    ASSERT_EQ(points.size(), 4u);
    EXPECT_EQ(points[0].id, "palermo/mcf/prefetch=0");
    EXPECT_EQ(points[1].id, "palermo/mcf/prefetch=4");
    EXPECT_EQ(points[2].id, "palermo/llm/prefetch=0");
    EXPECT_EQ(points[3].id, "palermo/llm/prefetch=4");
    for (std::size_t i = 0; i < points.size(); ++i)
        EXPECT_EQ(points[i].index, i);
}

TEST(SweepSpec, PrefetchUpgradesPalermoKind)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("prefetch=0,4", &spec, &error));
    const auto points = spec.expand(ProtocolKind::Palermo,
                                    Workload::Random, tinyConfig());
    ASSERT_EQ(points.size(), 2u);
    // pf=0 means "no prefetch": plain Palermo with prefetchLen 1.
    EXPECT_EQ(points[0].kind, ProtocolKind::Palermo);
    EXPECT_EQ(points[0].config.protocol.prefetchLen, 1u);
    // pf=4 upgrades to the prefetching controller configuration.
    EXPECT_EQ(points[1].kind, ProtocolKind::PalermoPrefetch);
    EXPECT_EQ(points[1].config.protocol.prefetchLen, 4u);
}

TEST(SweepSpec, SeedAxisSetsPointSeeds)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("seed=7,9", &spec, &error));
    const auto points = spec.expand(ProtocolKind::Palermo,
                                    Workload::Random, tinyConfig());
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].config.seed, 7u);
    EXPECT_EQ(points[0].config.protocol.seed, 7u);
    EXPECT_EQ(points[1].config.seed, 9u);
    EXPECT_NE(points[0].id, points[1].id);
}

TEST(SweepRunner, RecordsFollowPointOrder)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(
        SweepSpec::parse("protocol=ring,palermo", &spec, &error));
    const auto points = spec.expand(ProtocolKind::Palermo,
                                    Workload::Stream, tinyConfig());
    const auto records = SweepRunner(2).run(points);
    ASSERT_EQ(records.size(), points.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].point.id, points[i].id);
        EXPECT_GT(records[i].metrics.measuredRequests, 0u);
    }
}

TEST(SweepRunner, SerialAndParallelRunsAreByteIdentical)
{
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse(
        "protocol=ring,palermo;prefetch=0,4", &spec, &error));
    const auto points = spec.expand(ProtocolKind::Palermo,
                                    Workload::PageRank, tinyConfig());
    ASSERT_EQ(points.size(), 4u);

    const auto serial = SweepRunner(1).run(points);
    const auto parallel = SweepRunner(4).run(points);
    const std::string serial_doc =
        MetricsJson::document("test", serial);
    const std::string parallel_doc =
        MetricsJson::document("test", parallel);
    EXPECT_EQ(serial_doc, parallel_doc);
}

TEST(SanityCheck, FlagsOverflowAndDegenerateRuns)
{
    RunRecord good;
    good.point.id = "good";
    good.metrics.measuredRequests = 10;
    good.metrics.requestsPerKilocycle = 1.0;

    RunRecord overflowed = good;
    overflowed.point.id = "overflowed";
    overflowed.metrics.stashOverflowed = true;

    RunRecord empty = good;
    empty.point.id = "empty";
    empty.metrics.measuredRequests = 0;
    empty.metrics.requestsPerKilocycle = 0.0;

    std::vector<std::string> problems;
    EXPECT_TRUE(sanityCheck({good}, &problems));
    EXPECT_TRUE(problems.empty());

    EXPECT_FALSE(sanityCheck({good, overflowed, empty}, &problems));
    EXPECT_EQ(problems.size(), 3u); // overflow + no-requests + 0 tput.

    // Experiments that force stash pressure opt out per point.
    overflowed.point.allowStashOverflow = true;
    problems.clear();
    EXPECT_TRUE(sanityCheck({good, overflowed}, &problems));
}

} // namespace
} // namespace palermo
