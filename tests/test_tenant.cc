/**
 * @file TenantDirectory tests: structural namespace isolation (no key
 * can resolve outside its tenant's slice), determinism in (seed,
 * tenant, key), and the equal-slice geometry the fairness story
 * depends on.
 */

#include <gtest/gtest.h>

#include <set>

#include "service/tenant.hh"

namespace palermo {
namespace {

TEST(TenantDirectoryTest, SingleTenantOwnsWholeSpaceFloor)
{
    const TenantDirectory dir(1, 4096, 1);
    EXPECT_EQ(dir.sliceSize(), 4096u);
    EXPECT_EQ(dir.sliceBase(0), 0u);
    EXPECT_TRUE(dir.owns(0, 0));
    EXPECT_TRUE(dir.owns(0, 4095));
}

TEST(TenantDirectoryTest, SlicesAreEqualSizedAndDisjoint)
{
    // 4096 / 3 = 1365 with remainder 1: every tenant gets exactly
    // 1365 lines and the top line stays unmapped.
    const TenantDirectory dir(3, 4096, 1);
    EXPECT_EQ(dir.sliceSize(), 1365u);
    EXPECT_EQ(dir.sliceBase(0), 0u);
    EXPECT_EQ(dir.sliceBase(1), 1365u);
    EXPECT_EQ(dir.sliceBase(2), 2730u);
    EXPECT_FALSE(dir.owns(0, 1365));
    EXPECT_TRUE(dir.owns(1, 1365));
    EXPECT_FALSE(dir.owns(2, 4095)); // Remainder line is unmapped.
}

TEST(TenantDirectoryTest, EveryKeyResolvesInsideItsSlice)
{
    const TenantDirectory dir(4, 1 << 12, 7);
    for (unsigned tenant = 0; tenant < 4; ++tenant) {
        for (std::uint64_t key = 0; key < 2000; ++key) {
            const BlockId block = dir.blockOf(tenant, key);
            EXPECT_TRUE(dir.owns(tenant, block))
                << "tenant " << tenant << " key " << key
                << " resolved to " << block;
        }
    }
}

TEST(TenantDirectoryTest, DeterministicInSeedTenantKey)
{
    const TenantDirectory a(4, 1 << 12, 42);
    const TenantDirectory b(4, 1 << 12, 42);
    const TenantDirectory c(4, 1 << 12, 43);
    bool seed_matters = false;
    for (std::uint64_t key = 0; key < 256; ++key) {
        EXPECT_EQ(a.blockOf(1, key), b.blockOf(1, key));
        if (a.blockOf(1, key) != c.blockOf(1, key))
            seed_matters = true;
    }
    EXPECT_TRUE(seed_matters) << "seed does not key the layout";
}

TEST(TenantDirectoryTest, TenantsHashTheSameKeyDifferently)
{
    // Domain separation: identical key streams from different tenants
    // must not produce slice-relative collisions in lockstep.
    const TenantDirectory dir(2, 1 << 12, 5);
    unsigned differing = 0;
    for (std::uint64_t key = 0; key < 256; ++key) {
        const std::uint64_t off0 = dir.blockOf(0, key) - dir.sliceBase(0);
        const std::uint64_t off1 = dir.blockOf(1, key) - dir.sliceBase(1);
        if (off0 != off1)
            ++differing;
    }
    EXPECT_GT(differing, 200u);
}

TEST(TenantDirectoryTest, KeysSpreadAcrossTheSlice)
{
    const TenantDirectory dir(2, 1 << 12, 9);
    std::set<BlockId> blocks;
    for (std::uint64_t key = 0; key < 1000; ++key)
        blocks.insert(dir.blockOf(0, key));
    // A PRF over a 2048-line slice must not funnel 1000 keys into a
    // handful of lines.
    EXPECT_GT(blocks.size(), 500u);
}

TEST(TenantDirectoryTest, StringKeysResolveDeterministically)
{
    const TenantDirectory dir(2, 1 << 12, 3);
    const BlockId first = dir.blockOfKey(1, "user:1234:profile");
    EXPECT_EQ(dir.blockOfKey(1, "user:1234:profile"), first);
    EXPECT_TRUE(dir.owns(1, first));
    EXPECT_NE(dir.blockOfKey(1, "user:1234:profile"),
              dir.blockOfKey(1, "user:1234:profilf"));
}

} // namespace
} // namespace palermo
