/**
 * @file End-to-end integration tests: every design point runs a small
 * workload to completion through the full frontend -> controller -> DDR4
 * stack, and the paper's headline orderings hold in miniature.
 */

#include <gtest/gtest.h>

#include "security/mutual_info.hh"
#include "sim/experiment.hh"

namespace palermo {
namespace {

SystemConfig
tinySystem(std::uint64_t requests = 240)
{
    SystemConfig config;
    config.protocol.numBlocks = 1 << 12;
    config.protocol.ringZ = 16;
    config.protocol.ringS = 27;
    config.protocol.ringA = 20;
    config.protocol.treetopBytes = {8192, 4096, 2048};
    config.totalRequests = requests;
    config.dram.org.rows = 1u << 10;
    return config;
}

const ProtocolKind kAllKinds[] = {
    ProtocolKind::PathOram,   ProtocolKind::RingOram,
    ProtocolKind::PageOram,   ProtocolKind::PrOram,
    ProtocolKind::IrOram,     ProtocolKind::PalermoSw,
    ProtocolKind::Palermo,    ProtocolKind::PalermoPrefetch,
};

TEST(Integration, EveryProtocolCompletesRandomWorkload)
{
    for (ProtocolKind kind : kAllKinds) {
        SystemConfig config = tinySystem(160);
        if (kind == ProtocolKind::PrOram
            || kind == ProtocolKind::PalermoPrefetch) {
            config.protocol.prefetchLen = 4;
        }
        const RunMetrics metrics =
            runExperiment(kind, Workload::Random, config);
        EXPECT_EQ(metrics.served, config.totalRequests)
            << protocolKindName(kind);
        EXPECT_GT(metrics.requestsPerKilocycle, 0.0)
            << protocolKindName(kind);
    }
}

TEST(Integration, PalermoBeatsRingOramOnRandom)
{
    const SystemConfig config = tinySystem(320);
    const RunMetrics ring =
        runExperiment(ProtocolKind::RingOram, Workload::Random, config);
    const RunMetrics palermo =
        runExperiment(ProtocolKind::Palermo, Workload::Random, config);
    EXPECT_GT(speedupOver(ring, palermo), 1.3);
}

TEST(Integration, PalermoRaisesBandwidthUtilization)
{
    const SystemConfig config = tinySystem(320);
    const RunMetrics ring =
        runExperiment(ProtocolKind::RingOram, Workload::Llm, config);
    const RunMetrics palermo =
        runExperiment(ProtocolKind::Palermo, Workload::Llm, config);
    EXPECT_GT(palermo.bwUtilization, ring.bwUtilization);
    EXPECT_GT(palermo.avgOutstanding, ring.avgOutstanding);
}

TEST(Integration, RingOramBandwidthBelow30Percent)
{
    // Fig. 3a: the serial RingORAM baseline underutilizes DRAM.
    const SystemConfig config = tinySystem(320);
    const RunMetrics ring =
        runExperiment(ProtocolKind::RingOram, Workload::Random, config);
    EXPECT_LT(ring.bwUtilization, 0.4);
}

TEST(Integration, StashStaysBoundedEverywhere)
{
    for (ProtocolKind kind :
         {ProtocolKind::RingOram, ProtocolKind::Palermo,
          ProtocolKind::PathOram}) {
        const RunMetrics metrics =
            runExperiment(kind, Workload::Redis, tinySystem(300));
        EXPECT_FALSE(metrics.stashOverflowed) << protocolKindName(kind);
        EXPECT_LE(metrics.stashMax, metrics.stashCapacity);
    }
}

TEST(Integration, PalermoLatencyLeaksNothing)
{
    // Fig. 9's table: mutual information ~ 0.
    SystemConfig config = tinySystem(500);
    const RunMetrics metrics =
        runExperiment(ProtocolKind::Palermo, Workload::Redis, config);
    ASSERT_GT(metrics.samples.size(), 100u);
    EXPECT_LT(mutualInformationOf(metrics.samples), 0.05);
}

TEST(Integration, PrefetchHelpsSequentialWorkloads)
{
    SystemConfig base = tinySystem(400);
    SystemConfig prefetch = base;
    prefetch.protocol.prefetchLen = 8;
    const RunMetrics plain =
        runExperiment(ProtocolKind::Palermo, Workload::Stream, base);
    const RunMetrics with_pf = runExperiment(
        ProtocolKind::PalermoPrefetch, Workload::Stream, prefetch);
    EXPECT_GT(speedupOver(plain, with_pf), 1.5);
    EXPECT_GT(with_pf.llcHits, 0u);
}

TEST(Integration, ConstantRateModeRuns)
{
    SystemConfig config = tinySystem(100);
    config.constantRate = true;
    config.issueInterval = 600;
    const RunMetrics metrics =
        runExperiment(ProtocolKind::Palermo, Workload::Mcf, config);
    EXPECT_EQ(metrics.served, 100u);
    EXPECT_GT(metrics.dummies, 0u); // Padding fired.
}

TEST(Integration, DeterministicAcrossRuns)
{
    const SystemConfig config = tinySystem(150);
    const RunMetrics a =
        runExperiment(ProtocolKind::RingOram, Workload::Mcf, config);
    const RunMetrics b =
        runExperiment(ProtocolKind::RingOram, Workload::Mcf, config);
    EXPECT_EQ(a.measuredCycles, b.measuredCycles);
    EXPECT_EQ(a.dramReads, b.dramReads);
}

TEST(Integration, SerialBaselineMostlySyncStalled)
{
    const RunMetrics ring = runExperiment(ProtocolKind::RingOram,
                                          Workload::Llm, tinySystem(320));
    EXPECT_GT(ring.syncFraction, 0.45);
}

} // namespace
} // namespace palermo
