/**
 * @file BoundedRequestQueue tests: backpressure policy semantics
 * (Reject counts and drops, Block leaves state untouched for a
 * retry), strict FIFO ordering across mixed tenants, and the
 * occupancy bookkeeping the service snapshot reports.
 */

#include <gtest/gtest.h>

#include <vector>

#include "service/request_queue.hh"

namespace palermo {
namespace {

ServiceRequest
makeRequest(std::uint32_t tenant, BlockId block, Tick arrival = 0)
{
    ServiceRequest request;
    request.tenant = tenant;
    request.block = block;
    request.arrival = arrival;
    return request;
}

TEST(RequestQueueTest, PolicyNamesRoundTrip)
{
    QueuePolicy policy = QueuePolicy::Block;
    EXPECT_TRUE(queuePolicyFromName("reject", &policy));
    EXPECT_EQ(policy, QueuePolicy::Reject);
    EXPECT_TRUE(queuePolicyFromName("block", &policy));
    EXPECT_EQ(policy, QueuePolicy::Block);
    EXPECT_FALSE(queuePolicyFromName("drop", &policy));
    EXPECT_STREQ(queuePolicyName(QueuePolicy::Reject), "reject");
    EXPECT_STREQ(queuePolicyName(QueuePolicy::Block), "block");
}

TEST(RequestQueueTest, AcceptsUntilFullThenRejects)
{
    BoundedRequestQueue queue(3, QueuePolicy::Reject);
    EXPECT_TRUE(queue.empty());
    for (std::uint32_t i = 0; i < 3; ++i)
        EXPECT_EQ(queue.offer(makeRequest(0, i)), Admission::Accepted);
    EXPECT_TRUE(queue.full());

    // Full + Reject: the arrival is dropped and counted, the queue
    // contents are untouched.
    EXPECT_EQ(queue.offer(makeRequest(0, 99)), Admission::Rejected);
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.accepted(), 3u);
    EXPECT_EQ(queue.rejected(), 1u);

    // Popping one reopens admission.
    EXPECT_EQ(queue.pop().block, 0u);
    EXPECT_EQ(queue.offer(makeRequest(0, 100)), Admission::Accepted);
    EXPECT_EQ(queue.accepted(), 4u);
}

TEST(RequestQueueTest, BlockPolicyLeavesStateUntouched)
{
    BoundedRequestQueue queue(2, QueuePolicy::Block);
    EXPECT_EQ(queue.offer(makeRequest(0, 1)), Admission::Accepted);
    EXPECT_EQ(queue.offer(makeRequest(0, 2)), Admission::Accepted);

    // WouldBlock is not an admission outcome: nothing is counted, so
    // the caller can retry the identical request later.
    EXPECT_EQ(queue.offer(makeRequest(0, 3)), Admission::WouldBlock);
    EXPECT_EQ(queue.offer(makeRequest(0, 3)), Admission::WouldBlock);
    EXPECT_EQ(queue.size(), 2u);
    EXPECT_EQ(queue.accepted(), 2u);
    EXPECT_EQ(queue.rejected(), 0u);

    queue.pop();
    EXPECT_EQ(queue.offer(makeRequest(0, 3)), Admission::Accepted);
    EXPECT_EQ(queue.accepted(), 3u);
}

TEST(RequestQueueTest, FifoAcrossMixedTenants)
{
    BoundedRequestQueue queue(8, QueuePolicy::Reject);
    // Interleave three tenants; admission order must be preserved
    // exactly (no per-tenant reordering or priority).
    const std::uint32_t tenants[] = {2, 0, 1, 1, 0, 2, 0, 1};
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(queue.offer(makeRequest(tenants[i], i)),
                  Admission::Accepted);
    for (std::size_t i = 0; i < 8; ++i) {
        const ServiceRequest request = queue.pop();
        EXPECT_EQ(request.tenant, tenants[i]);
        EXPECT_EQ(request.block, i);
        EXPECT_EQ(request.sequence, i);
    }
    EXPECT_TRUE(queue.empty());
}

TEST(RequestQueueTest, SequenceNumbersSurviveRejections)
{
    BoundedRequestQueue queue(1, QueuePolicy::Reject);
    EXPECT_EQ(queue.offer(makeRequest(0, 0)), Admission::Accepted);
    EXPECT_EQ(queue.offer(makeRequest(0, 1)), Admission::Rejected);
    queue.pop();
    EXPECT_EQ(queue.offer(makeRequest(0, 2)), Admission::Accepted);
    // Rejected arrivals consume no sequence number: the FIFO witness
    // stays dense over accepted requests only.
    EXPECT_EQ(queue.front().sequence, 1u);
}

TEST(RequestQueueTest, HighWatermarkTracksDeepestOccupancy)
{
    BoundedRequestQueue queue(4, QueuePolicy::Reject);
    queue.offer(makeRequest(0, 0));
    queue.offer(makeRequest(0, 1));
    queue.offer(makeRequest(0, 2));
    EXPECT_EQ(queue.highWatermark(), 3u);
    queue.pop();
    queue.pop();
    EXPECT_EQ(queue.highWatermark(), 3u); // Never decreases.
    queue.offer(makeRequest(0, 3));
    EXPECT_EQ(queue.highWatermark(), 3u);
}

TEST(RequestQueueTest, ForEachVisitsFifoOrder)
{
    BoundedRequestQueue queue(4, QueuePolicy::Reject);
    for (std::uint32_t i = 0; i < 3; ++i)
        queue.offer(makeRequest(i, 10 + i));
    std::vector<BlockId> seen;
    queue.forEach([&](const ServiceRequest &request) {
        seen.push_back(request.block);
    });
    EXPECT_EQ(seen, (std::vector<BlockId>{10, 11, 12}));
}

} // namespace
} // namespace palermo
