/** @file Unit tests for the JsonWriter and metrics-v1 serialization. */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <string>

#include "sim/metrics_json.hh"
#include "sim/sweep.hh"

namespace palermo {
namespace {

/**
 * Minimal recursive-descent JSON validator: enough grammar to prove
 * every document the serializer emits is well-formed without pulling
 * in a JSON library dependency.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        skipSpace();
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipSpace();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (peek() != ':')
                return false;
            ++pos_;
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipSpace();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E'))
            ++pos_;
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::string expect(word);
        if (text_.compare(pos_, expect.size(), expect) != 0)
            return false;
        pos_ += expect.size();
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

    void
    skipSpace()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

RunRecord
sampleRecord()
{
    RunRecord record;
    record.point.kind = ProtocolKind::Palermo;
    record.point.workload = Workload::PageRank;
    record.point.config = SystemConfig::benchDefault();
    record.point.id = "palermo/pr";
    record.metrics.measuredRequests = 1000;
    record.metrics.measuredCycles = 250000;
    record.metrics.requestsPerKilocycle = 4.0;
    record.metrics.bwUtilization = 0.61;
    record.metrics.stashMax = 119;
    record.metrics.stashCapacity = 256;
    record.metrics.stashSamples = {10, 20, 119};
    return record;
}

TEST(JsonWriter, NestedStructure)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", "palermo");
    w.field("count", std::uint64_t{3});
    w.key("values").beginArray();
    w.value(1.5);
    w.value(false);
    w.endArray();
    w.endObject();
    const std::string text = w.str();
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"name\": \"palermo\""), std::string::npos);
    EXPECT_NE(text.find("1.5"), std::string::npos);
}

TEST(JsonWriter, EscapesControlCharacters)
{
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonNumber, DeterministicShortestForm)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    // Round-trip stability: rendering the same value twice is
    // byte-identical (to_chars shortest form is canonical).
    EXPECT_EQ(jsonNumber(1.0 / 3.0), jsonNumber(1.0 / 3.0));
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(MetricsJson, DocumentIsValidJson)
{
    const std::string doc =
        MetricsJson::document("test_tool", {sampleRecord()},
                              {{"gmean/palermo", 2.4}});
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
}

TEST(MetricsJson, SchemaFieldsPresent)
{
    const std::string doc =
        MetricsJson::document("test_tool", {sampleRecord()},
                              {{"gmean/palermo", 2.4}});
    // Stable-schema contract: these keys are what CI and analysis
    // scripts key on; renaming them is a schema version bump.
    for (const char *needle :
         {"\"schema\": \"palermo-metrics-v1\"", "\"generator\"",
          "\"tool\": \"test_tool\"", "\"git\"", "\"points\"",
          "\"id\": \"palermo/pr\"", "\"protocol\": \"Palermo\"",
          "\"workload\": \"pr\"", "\"seed\"", "\"config\"",
          "\"metrics\"", "\"requests_per_kilocycle\"", "\"stash\"",
          "\"overflowed\"", "\"latency\"", "\"derived\"",
          "\"gmean/palermo\": 2.4"}) {
        EXPECT_NE(doc.find(needle), std::string::npos)
            << "missing " << needle;
    }
}

TEST(MetricsJson, SerializationIsDeterministic)
{
    const RunRecord record = sampleRecord();
    const std::string a = MetricsJson::document("tool", {record});
    const std::string b = MetricsJson::document("tool", {record});
    EXPECT_EQ(a, b);
}

TEST(MetricsJson, DerivedMapSortedByKey)
{
    const std::string doc = MetricsJson::document(
        "tool", {}, {{"zeta", 1.0}, {"alpha", 2.0}, {"mid", 3.0}});
    const std::size_t alpha = doc.find("\"alpha\"");
    const std::size_t mid = doc.find("\"mid\"");
    const std::size_t zeta = doc.find("\"zeta\"");
    ASSERT_NE(alpha, std::string::npos);
    ASSERT_NE(mid, std::string::npos);
    ASSERT_NE(zeta, std::string::npos);
    EXPECT_LT(alpha, mid);
    EXPECT_LT(mid, zeta);
}

TEST(MetricsJson, EmptyDocumentStillValid)
{
    const std::string doc = MetricsJson::document("tool", {});
    EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
    EXPECT_NE(doc.find("\"points\": []"), std::string::npos);
}

} // namespace
} // namespace palermo
