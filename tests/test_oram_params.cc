/** @file Unit tests for ORAM geometry and parameters. */

#include <gtest/gtest.h>

#include <set>

#include "oram/oram_params.hh"

namespace palermo {
namespace {

TEST(OramParams, RingDerivation)
{
    const OramParams p = OramParams::ring(1 << 18, 16, 27, 20);
    EXPECT_EQ(p.numLeaves, (1u << 18) / 16);
    EXPECT_EQ(p.numNodes, 2 * p.numLeaves - 1);
    EXPECT_EQ(p.levels, 15u);
    EXPECT_EQ(p.slotsAt(0), 43u);
    EXPECT_EQ(p.capacityAt(0), 16u);
}

TEST(OramParams, PathDerivation)
{
    const OramParams p = OramParams::path(1 << 16, 4);
    EXPECT_EQ(p.s, 0u);
    EXPECT_EQ(p.numLeaves, (1u << 16) / 4);
    EXPECT_EQ(p.slotsAt(3), 4u);
}

TEST(OramParams, NonPowerOfTwoBlocksRoundUp)
{
    const OramParams p = OramParams::ring(1000, 16, 27, 20);
    EXPECT_GE(p.numLeaves * 16, 1000u);
    EXPECT_EQ(p.numLeaves & (p.numLeaves - 1), 0u);
}

TEST(OramParams, NodeIndexing)
{
    const OramParams p = OramParams::ring(1 << 10, 4, 5, 3);
    EXPECT_EQ(p.nodeAt(0, 0), 0u);
    EXPECT_EQ(p.nodeAt(1, 0), 1u);
    EXPECT_EQ(p.nodeAt(1, 1), 2u);
    EXPECT_EQ(p.nodeAt(2, 3), 6u);
    EXPECT_EQ(p.levelOf(0), 0u);
    EXPECT_EQ(p.levelOf(1), 1u);
    EXPECT_EQ(p.levelOf(6), 2u);
    EXPECT_EQ(p.parentOf(6), 2u);
    EXPECT_EQ(p.parentOf(5), 2u);
    EXPECT_EQ(p.parentOf(0), 0u);
}

TEST(OramParams, PathNodesRootToLeaf)
{
    const OramParams p = OramParams::ring(1 << 10, 4, 5, 3);
    const Leaf leaf = p.numLeaves - 1;
    const auto path = p.pathNodes(leaf);
    ASSERT_EQ(path.size(), p.levels);
    EXPECT_EQ(path.front(), 0u);
    EXPECT_EQ(path.back(), p.numNodes - 1);
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_EQ(p.parentOf(path[i]), path[i - 1]);
}

TEST(OramParams, OnPathConsistentWithPathNodes)
{
    const OramParams p = OramParams::ring(1 << 10, 4, 5, 3);
    for (Leaf leaf = 0; leaf < p.numLeaves; leaf += 17) {
        std::set<NodeId> on_path;
        for (NodeId node : p.pathNodes(leaf))
            on_path.insert(node);
        for (NodeId node = 0; node < p.numNodes; node += 3) {
            EXPECT_EQ(p.onPath(node, leaf), on_path.count(node) > 0)
                << "node " << node << " leaf " << leaf;
        }
    }
}

TEST(OramParams, AncestorAgreesWithShift)
{
    const OramParams p = OramParams::ring(1 << 12, 8, 12, 8);
    const Leaf leaf = 0b1011 % p.numLeaves;
    EXPECT_EQ(p.ancestorOfLeaf(leaf, 0), 0u);
    EXPECT_EQ(p.ancestorOfLeaf(leaf, p.leafLevel()),
              p.nodeAt(p.leafLevel(), leaf));
}

TEST(EvictionLeaf, IsPermutationOverPeriod)
{
    const std::uint64_t leaves = 64;
    std::set<Leaf> seen;
    for (std::uint64_t i = 0; i < leaves; ++i)
        seen.insert(evictionLeaf(i, leaves));
    EXPECT_EQ(seen.size(), leaves);
}

TEST(EvictionLeaf, SpreadsConsecutiveCounters)
{
    // Bit reversal sends consecutive counters to opposite subtrees:
    // counters 0 and 1 differ in the top leaf bit.
    const std::uint64_t leaves = 64;
    EXPECT_EQ(evictionLeaf(0, leaves), 0u);
    EXPECT_EQ(evictionLeaf(1, leaves), leaves / 2);
}

TEST(FatTree, RootDoubleLeafSingle)
{
    OramParams p = OramParams::ring(1 << 12, 8, 12, 8);
    applyFatTree(p);
    EXPECT_EQ(p.capacityAt(0), 16u);
    EXPECT_EQ(p.capacityAt(p.leafLevel()), 8u);
    for (unsigned level = 1; level < p.levels; ++level)
        EXPECT_LE(p.capacityAt(level), p.capacityAt(level - 1));
}

TEST(IrShrink, MiddleBandSmaller)
{
    OramParams p = OramParams::path(1 << 12, 4);
    applyIrTreeShrink(p);
    EXPECT_EQ(p.capacityAt(0), 4u);
    EXPECT_EQ(p.capacityAt(p.leafLevel()), 4u);
    EXPECT_LT(p.capacityAt(p.levels / 2), 4u);
}

TEST(OramParams, WideBlocks)
{
    const OramParams p = OramParams::ring(1 << 10, 16, 27, 20, 256);
    EXPECT_EQ(p.linesPerSlot(), 4u);
}

} // namespace
} // namespace palermo
