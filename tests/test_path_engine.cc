/** @file Unit tests for the PathORAM protocol engine (and PageORAM mode). */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "oram/path_engine.hh"
#include "oram/posmap.hh"

namespace palermo {
namespace {

struct Harness
{
    OramParams params;
    PathEngine engine;
    PosMap pm;
    Rng rng;
    std::map<BlockId, std::uint64_t> shadow;

    Harness(std::uint64_t blocks, unsigned z, bool sibling = false,
            unsigned cached = 0, std::size_t stash_cap = 256)
        : params(OramParams::path(blocks, z)),
          engine(params, 0, cached, sibling, 21, stash_cap),
          pm(blocks, params.numLeaves, 3), rng(17)
    {
    }

    LevelPlan access(BlockId block)
    {
        const Leaf leaf = pm.get(block);
        const Leaf new_leaf = rng.range(params.numLeaves);
        pm.set(block, new_leaf);
        return engine.access(block, leaf, new_leaf);
    }

    std::uint64_t read(BlockId block)
    {
        access(block);
        return engine.payloadOf(block);
    }

    void write(BlockId block, std::uint64_t value)
    {
        access(block);
        engine.setPayload(block, value);
        shadow[block] = value;
    }
};

TEST(PathEngine, FreshReadReturnsZero)
{
    Harness h(256, 4);
    EXPECT_EQ(h.read(10), 0u);
}

TEST(PathEngine, ReadYourWrites)
{
    Harness h(256, 4);
    Rng rng(23);
    for (int i = 0; i < 600; ++i) {
        const BlockId block = rng.range(256);
        if (rng.chance(0.5)) {
            h.write(block, rng.next());
        } else {
            const std::uint64_t expect =
                h.shadow.count(block) ? h.shadow[block] : 0;
            EXPECT_EQ(h.read(block), expect) << "iter " << i;
        }
    }
}

TEST(PathEngine, InvariantHoldsThroughout)
{
    Harness h(256, 4);
    Rng rng(29);
    for (int i = 0; i < 300; ++i) {
        h.write(rng.range(256), i);
        for (const auto &[b, v] : h.shadow)
            EXPECT_TRUE(h.engine.satisfiesInvariant(b, h.pm.get(b)));
    }
}

TEST(PathEngine, StashBounded)
{
    Harness h(1 << 12, 4);
    Rng rng(31);
    for (int i = 0; i < 2000; ++i)
        h.access(rng.range(1 << 12));
    EXPECT_FALSE(h.engine.stash().overflowed());
}

TEST(PathEngine, PhaseStructure)
{
    Harness h(256, 4);
    const LevelPlan plan = h.access(1);
    ASSERT_EQ(plan.phases.size(), 3u);
    EXPECT_EQ(plan.phases[0].kind, PhaseKind::LoadMeta);
    EXPECT_EQ(plan.phases[1].kind, PhaseKind::ReadPath);
    EXPECT_EQ(plan.phases[2].kind, PhaseKind::EvictWrite);
    EXPECT_TRUE(plan.hasEvict); // PathORAM evicts every access.
}

TEST(PathEngine, WholeBucketsRead)
{
    Harness h(256, 4);
    const LevelPlan plan = h.access(1);
    // Z slots per path node.
    EXPECT_EQ(plan.find(PhaseKind::ReadPath)->ops.size(),
              h.params.levels * 4);
    // Z writes + 1 meta write per node.
    EXPECT_EQ(plan.find(PhaseKind::EvictWrite)->ops.size(),
              h.params.levels * 5);
}

TEST(PathEngine, MoreTrafficThanRingPerAccess)
{
    // The §III-E comparison direction: PathORAM moves whole buckets.
    Harness h(1 << 10, 4);
    const LevelPlan plan = h.access(1);
    EXPECT_GT(plan.find(PhaseKind::ReadPath)->readCount(),
              h.params.levels); // Ring reads one slot per node.
}

TEST(PathEngine, DummyAccessServesNothing)
{
    Harness h(256, 4);
    h.write(5, 55);
    const std::size_t occ_before = h.engine.stash().occupancy();
    const LevelPlan plan = h.engine.dummyAccess(3);
    EXPECT_FALSE(plan.freshBlock);
    // A dummy drains (or keeps) the stash; it never grows it.
    EXPECT_LE(h.engine.stash().occupancy(), occ_before);
    EXPECT_EQ(h.read(5), 55u);
}

TEST(PathEngine, EvictionSinksBlocksOutOfStash)
{
    Harness h(256, 4);
    for (BlockId b = 0; b < 32; ++b)
        h.write(b, b);
    // Repeated accesses evict along fresh paths; the stash must not
    // retain everything.
    EXPECT_LT(h.engine.stash().occupancy(), 32u);
}

TEST(PathEngine, TreeTopCacheSuppressesOps)
{
    Harness cached(256, 4, false, 3);
    Harness uncached(256, 4, false, 0);
    EXPECT_LT(cached.access(1).readOps(), uncached.access(1).readOps());
}

TEST(PageMode, AccessSetIncludesSiblings)
{
    Harness page(256, 2, /*sibling=*/true);
    Harness plain(256, 2, false);
    const LevelPlan page_plan = page.access(1);
    const LevelPlan plain_plan = plain.access(1);
    // Slot reads cover path + siblings = 2L-1 buckets vs L buckets.
    EXPECT_EQ(page_plan.find(PhaseKind::ReadPath)->ops.size(),
              (2 * page.params.levels - 1) * 2);
    EXPECT_EQ(plain_plan.find(PhaseKind::ReadPath)->ops.size(),
              plain.params.levels * 2);
    // Pair-shared headers: metadata lines follow the path only.
    EXPECT_EQ(page_plan.find(PhaseKind::LoadMeta)->ops.size(),
              page.params.levels);
}

TEST(PageMode, ReadYourWrites)
{
    Harness h(256, 2, true);
    Rng rng(37);
    for (int i = 0; i < 500; ++i) {
        const BlockId block = rng.range(256);
        if (rng.chance(0.5)) {
            h.write(block, rng.next());
        } else {
            const std::uint64_t expect =
                h.shadow.count(block) ? h.shadow[block] : 0;
            EXPECT_EQ(h.read(block), expect) << "iter " << i;
        }
    }
}

TEST(PageMode, InvariantWithSiblingResidence)
{
    Harness h(256, 2, true);
    Rng rng(41);
    for (int i = 0; i < 300; ++i) {
        h.write(rng.range(256), i);
        for (const auto &[b, v] : h.shadow)
            EXPECT_TRUE(h.engine.satisfiesInvariant(b, h.pm.get(b)));
    }
}

TEST(PageMode, SmallerBucketsStillBounded)
{
    Harness h(1 << 12, 2, true, 0, 256);
    Rng rng(43);
    for (int i = 0; i < 1500; ++i)
        h.access(rng.range(1 << 12));
    EXPECT_FALSE(h.engine.stash().overflowed());
}

} // namespace
} // namespace palermo
