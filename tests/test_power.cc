/** @file Unit tests for the analytical area/power model. */

#include <gtest/gtest.h>

#include "power/area_power.hh"

namespace palermo {
namespace {

TEST(AreaPower, TableIIITotalsMatchPaper)
{
    const AreaPowerEstimate est = estimateController({});
    // Fig. 15: 5.78 mm^2 and 2.14 W; the analytical model is calibrated
    // to land within 10%.
    EXPECT_NEAR(est.totalAreaMm2(), 5.78, 0.58);
    EXPECT_NEAR(est.totalPowerW(), 2.14, 0.22);
}

TEST(AreaPower, ComponentsPresent)
{
    const AreaPowerEstimate est = estimateController({});
    ASSERT_EQ(est.components.size(), 6u);
    bool has_treetop = false;
    bool has_posmap = false;
    for (const auto &c : est.components) {
        EXPECT_GT(c.areaMm2, 0.0);
        EXPECT_GT(c.powerW, 0.0);
        has_treetop |= (c.name == "Tree-top caches");
        has_posmap |= (c.name == "PosMap3 eDRAM");
    }
    EXPECT_TRUE(has_treetop);
    EXPECT_TRUE(has_posmap);
}

TEST(AreaPower, CachesDominate)
{
    // Paper: the majority of area/power is on-chip memories (tree-top
    // caches + PE buffers + PosMap3), not control logic.
    const AreaPowerEstimate est = estimateController({});
    double memory_area = 0.0;
    double logic_area = 0.0;
    for (const auto &c : est.components) {
        if (c.name == "PE control logic" || c.name == "Crypto units")
            logic_area += c.areaMm2;
        else
            memory_area += c.areaMm2;
    }
    EXPECT_GT(memory_area, 2 * logic_area);
}

TEST(AreaPower, ScalesWithPeColumns)
{
    ControllerFloorplan narrow;
    narrow.peColumns = 1;
    ControllerFloorplan wide;
    wide.peColumns = 32;
    EXPECT_LT(estimateController(narrow).totalAreaMm2(),
              estimateController(wide).totalAreaMm2());
    EXPECT_LT(estimateController(narrow).totalPowerW(),
              estimateController(wide).totalPowerW());
}

TEST(AreaPower, ScalesWithCaches)
{
    ControllerFloorplan small;
    small.treetopBytesTotal = 64 * 1024;
    ControllerFloorplan large;
    large.treetopBytesTotal = 4ull * 1024 * 1024;
    EXPECT_LT(estimateController(small).totalAreaMm2(),
              estimateController(large).totalAreaMm2());
}

TEST(AreaPower, PowerScalesWithFrequency)
{
    ControllerFloorplan slow;
    slow.clockGHz = 0.8;
    ControllerFloorplan fast;
    fast.clockGHz = 1.6;
    EXPECT_LT(estimateController(slow).totalPowerW(),
              estimateController(fast).totalPowerW());
    EXPECT_DOUBLE_EQ(estimateController(slow).totalAreaMm2(),
                     estimateController(fast).totalAreaMm2());
}

} // namespace
} // namespace palermo
