/** @file Unit tests for the deterministic RNG and Zipf sampler. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"

namespace palermo {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence)
{
    Rng a(7);
    const std::uint64_t first = a.next();
    a.next();
    a.seed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, RangeStaysInBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.range(17), 17u);
}

TEST(Rng, RangeOfOneIsZero)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.range(1), 0u);
}

TEST(Rng, RangeCoversAllValues)
{
    Rng rng(5);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 2000; ++i)
        ++seen[rng.range(8)];
    EXPECT_EQ(seen.size(), 8u);
    for (const auto &[value, count] : seen)
        EXPECT_GT(count, 100) << "value " << value << " undersampled";
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng rng(11);
    bool hit_lo = false;
    bool hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t v = rng.between(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        hit_lo |= (v == 10);
        hit_hi |= (v == 13);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Mix64, DistinctInputsDistinctOutputs)
{
    std::map<std::uint64_t, std::uint64_t> seen;
    for (std::uint64_t i = 0; i < 10000; ++i) {
        const std::uint64_t h = mix64(i);
        EXPECT_EQ(seen.count(h), 0u);
        seen[i] = h;
    }
}

TEST(Zipf, SamplesInRange)
{
    ZipfSampler zipf(100, 0.99, 1);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(zipf.sample(), 100u);
}

TEST(Zipf, SkewFavorsLowRanks)
{
    ZipfSampler zipf(1000, 1.0, 2);
    std::uint64_t top10 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        top10 += (zipf.sample() < 10);
    // Zipf(1.0) over 1000 items: top-10 mass ~ H(10)/H(1000) ~ 39%.
    EXPECT_GT(static_cast<double>(top10) / n, 0.25);
}

TEST(Zipf, AlphaZeroIsNearUniform)
{
    ZipfSampler zipf(100, 0.0, 3);
    std::uint64_t top10 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        top10 += (zipf.sample() < 10);
    EXPECT_NEAR(static_cast<double>(top10) / n, 0.10, 0.02);
}

TEST(Zipf, HugeSpaceTailSampled)
{
    // Space larger than the exact CDF table: tail ranks must appear.
    ZipfSampler zipf(1ull << 24, 0.5, 4);
    bool tail = false;
    for (int i = 0; i < 20000; ++i)
        tail |= (zipf.sample() >= (1ull << 20));
    EXPECT_TRUE(tail);
}

} // namespace
} // namespace palermo
