/**
 * @file SimSession tests: the re-entrant submit/step/drain/snapshot
 * API reproduces the legacy one-call runExperiment byte for byte, and
 * supports the external-driver patterns (trace replay, interleaved
 * tenants, mid-run observation) the monolithic loop could not.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "sim/metrics_json.hh"
#include "sim/sweep.hh"

namespace palermo {
namespace {

SystemConfig
tinySystem(std::uint64_t requests = 160)
{
    SystemConfig config;
    config.protocol.numBlocks = 1 << 12;
    config.protocol.treetopBytes = {8192, 4096, 2048};
    config.totalRequests = requests;
    config.dram.org.rows = 1u << 10;
    return config;
}

/** Render one run as a full palermo-metrics-v1 document. */
std::string
renderDocument(ProtocolKind kind, Workload workload,
               const SystemConfig &config, const RunMetrics &metrics)
{
    RunRecord record;
    record.point.kind = kind;
    record.point.workload = workload;
    record.point.config = config;
    record.point.id = std::string(protocolShortName(kind)) + "/"
        + workloadName(workload);
    record.metrics = metrics;
    return MetricsJson::document("test_session", {record});
}

/**
 * Drive an externally fed session to completion: pre-produce the
 * whole miss stream from the standard frontend (its produce order is
 * timing-independent in saturated mode), submit everything, step
 * until done. This is the SimSession-driven path of the acceptance
 * criteria.
 */
RunMetrics
runExternallyDriven(ProtocolKind kind, Workload workload,
                    const SystemConfig &config)
{
    const auto frontend = makeFrontend(workload, config);
    SimSession session(kind, config);
    for (std::uint64_t i = 0; i < config.totalRequests; ++i)
        session.submit(frontend->produce(0));
    while (!session.done())
        session.step();
    session.drain();
    return session.snapshot();
}

TEST(SimSession, ExternalDriverMatchesRunExperimentByteForByte)
{
    // A fixed (protocol, workload, seed) grid, covering both serial
    // and PE-mesh controllers plus an explicit prefetch point.
    struct Point
    {
        ProtocolKind kind;
        Workload workload;
        std::uint64_t seed;
        unsigned prefetchLen;
    };
    const Point grid[] = {
        {ProtocolKind::PathOram, Workload::Mcf, 1, 1},
        {ProtocolKind::RingOram, Workload::Llm, 2, 1},
        {ProtocolKind::PrOram, Workload::Redis, 1, 2},
        {ProtocolKind::Palermo, Workload::Random, 3, 1},
        {ProtocolKind::PalermoPrefetch, Workload::Stream, 1, 4},
    };

    for (const Point &point : grid) {
        SystemConfig config = tinySystem();
        config.seed = point.seed;
        config.protocol.seed = point.seed;
        config.protocol.prefetchLen = point.prefetchLen;

        const RunMetrics legacy =
            runExperiment(point.kind, point.workload, config);
        const RunMetrics driven =
            runExternallyDriven(point.kind, point.workload, config);

        EXPECT_EQ(
            renderDocument(point.kind, point.workload, config, legacy),
            renderDocument(point.kind, point.workload, config, driven))
            << protocolKindName(point.kind) << "/"
            << workloadName(point.workload);
    }
}

TEST(SimSession, FrontendBoundSessionEqualsRunExperiment)
{
    // runExperiment is a thin wrapper; driving the same session by
    // hand in awkward step sizes must land on identical metrics.
    const SystemConfig config = tinySystem();
    const RunMetrics reference =
        runExperiment(ProtocolKind::RingOram, Workload::Mcf, config);

    SimSession session(ProtocolKind::RingOram, config,
                       makeFrontend(Workload::Mcf, config));
    while (!session.done())
        session.step(7); // Uneven chunks: done() re-checked inside.
    // step() may overshoot done() by a few cycles; the legacy loop
    // stops exactly at the boundary, so compare with a 1-step driver.
    SimSession exact(ProtocolKind::RingOram, config,
                     makeFrontend(Workload::Mcf, config));
    while (!exact.done())
        exact.step();
    exact.drain();
    const RunMetrics driven = exact.snapshot();
    EXPECT_EQ(renderDocument(ProtocolKind::RingOram, Workload::Mcf,
                             config, reference),
              renderDocument(ProtocolKind::RingOram, Workload::Mcf,
                             config, driven));
    EXPECT_TRUE(session.done());
}

TEST(SimSession, StepAdvancesExactlyTheRequestedCycles)
{
    const SystemConfig config = tinySystem();
    SimSession session(ProtocolKind::Palermo, config,
                       makeFrontend(Workload::Random, config));
    EXPECT_EQ(session.now(), 0u);
    session.step();
    EXPECT_EQ(session.now(), 1u);
    session.step(99);
    EXPECT_EQ(session.now(), 100u);
}

TEST(SimSession, SnapshotIsObservableMidRunAndNonPerturbing)
{
    const SystemConfig config = tinySystem(240);

    SimSession plain(ProtocolKind::Palermo, config,
                     makeFrontend(Workload::Mcf, config));
    const RunMetrics undisturbed = plain.finish();

    SimSession observed(ProtocolKind::Palermo, config,
                        makeFrontend(Workload::Mcf, config));
    std::uint64_t last_served = 0;
    bool saw_midrun_throughput = false;
    while (!observed.done()) {
        observed.step(50);
        const RunMetrics mid = observed.snapshot();
        EXPECT_GE(mid.served, last_served); // Monotonic under observation.
        last_served = mid.served;
        if (mid.served > 0 && !observed.done())
            saw_midrun_throughput = mid.requestsPerKilocycle > 0.0;
    }
    observed.drain();
    const RunMetrics watched = observed.snapshot();

    EXPECT_TRUE(saw_midrun_throughput);
    EXPECT_EQ(undisturbed.served, watched.served);
    EXPECT_EQ(undisturbed.dramReads, watched.dramReads);
    EXPECT_EQ(undisturbed.stashMax, watched.stashMax);
}

TEST(SimSession, ExternalBacklogDrainsAtControllerPace)
{
    SystemConfig config = tinySystem(12);
    SimSession session(ProtocolKind::RingOram, config);
    for (BlockId pa = 0; pa < 12; ++pa)
        session.submit(pa, /*write=*/pa % 3 == 0, /*value=*/pa);
    EXPECT_EQ(session.backlog(), 12u);

    while (!session.done())
        session.step();
    EXPECT_EQ(session.backlog(), 0u);
    session.drain();
    const RunMetrics metrics = session.snapshot();
    EXPECT_EQ(metrics.served, 12u);
}

TEST(SimSession, InterleavedTenantsShareOneSession)
{
    // Two logical request streams interleaved by an external driver —
    // the multi-tenant pattern the monolithic loop could not express.
    SystemConfig config = tinySystem(200);
    const auto tenant_a = makeTrace(Workload::Stream,
                                    config.protocol.numBlocks, 11);
    const auto tenant_b = makeTrace(Workload::Random,
                                    config.protocol.numBlocks, 22);

    SimSession session(ProtocolKind::Palermo, config);
    std::uint64_t submitted = 0;
    while (!session.done()) {
        while (submitted < config.totalRequests
               && session.backlog() < 4) {
            TraceGen &tenant =
                (submitted % 2 == 0) ? *tenant_a : *tenant_b;
            const TraceRecord record = tenant.next();
            session.submit(record.line, record.write, submitted);
            ++submitted;
        }
        session.step();
    }
    session.drain();
    const RunMetrics metrics = session.snapshot();
    EXPECT_EQ(metrics.served, 200u);
    EXPECT_FALSE(metrics.stashOverflowed);
    EXPECT_GT(metrics.requestsPerKilocycle, 0.0);
}

TEST(SimSession, DrainIsIdempotent)
{
    const SystemConfig config = tinySystem(80);
    SimSession session(ProtocolKind::PathOram, config,
                       makeFrontend(Workload::Random, config));
    const RunMetrics first = session.finish();
    session.drain(); // No-op on an idle controller.
    const RunMetrics second = session.snapshot();
    EXPECT_EQ(first.measuredCycles, second.measuredCycles);
    EXPECT_EQ(first.dramWrites, second.dramWrites);
}

TEST(SimSession, SubmitOnFrontendBoundSessionIsAnError)
{
    const SystemConfig config = tinySystem(40);
    SimSession session(ProtocolKind::Palermo, config,
                       makeFrontend(Workload::Random, config));
    EXPECT_DEATH(session.submit(0), "bound frontend");
}

TEST(SimSession, SweepRunnerStaysByteDeterministicOverSessions)
{
    // The sweep runner now drives sessions; serial and parallel
    // execution of the same grid must still render identical JSON.
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(SweepSpec::parse("protocol=ring,palermo;seed=1,2",
                                 &spec, &error))
        << error;
    const std::vector<DesignPoint> points =
        spec.expand(ProtocolKind::Palermo, Workload::Mcf,
                    tinySystem(80));
    const std::string serial = MetricsJson::document(
        "test_session", SweepRunner(1).run(points));
    const std::string parallel = MetricsJson::document(
        "test_session", SweepRunner(4).run(points));
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace palermo
