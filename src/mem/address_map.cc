/**
 * @file
 * RoBaRaCoCh (and variants) bit-slicing from physical address to
 * channel/rank/bank-group/bank/row/column coordinates.
 */

#include "mem/address_map.hh"

#include "common/log.hh"

namespace palermo {

namespace {

// Pull the low `bits(count)` out of value, shifting value right.
inline std::uint64_t
takeBits(std::uint64_t &value, unsigned count_values)
{
    // count_values is a field cardinality, not a bit count; fields are
    // always powers of two here.
    const std::uint64_t field = value % count_values;
    value /= count_values;
    return field;
}

} // namespace

std::uint64_t
DramOrg::capacityBytes() const
{
    return static_cast<std::uint64_t>(channels) * ranks * bankGroups
        * banksPerGroup * rows * columnsPerRow * kBlockBytes;
}

AddressMap::AddressMap(const DramOrg &org, MapPolicy policy)
    : org_(org), policy_(policy)
{
    palermo_assert(org.channels > 0 && org.ranks > 0);
    palermo_assert(org.bankGroups > 0 && org.banksPerGroup > 0);
    palermo_assert(org.rows > 0 && org.columnsPerRow > 0);
}

DecodedAddr
AddressMap::decode(Addr addr) const
{
    std::uint64_t line = addr / kBlockBytes;
    DecodedAddr dec{};
    switch (policy_) {
      case MapPolicy::RoBaRaCoCh:
        // Bank-group bits sit below the column bits so that consecutive
        // lines within a channel alternate bank groups: back-to-back
        // CAS commands then pace at tCCD_S (= tBL) instead of tCCD_L,
        // which is what lets streams saturate the data bus on DDR4.
        dec.channel = static_cast<unsigned>(takeBits(line, org_.channels));
        dec.bankGroup = static_cast<unsigned>(
            takeBits(line, org_.bankGroups));
        dec.column = static_cast<unsigned>(
            takeBits(line, org_.columnsPerRow));
        dec.rank = static_cast<unsigned>(takeBits(line, org_.ranks));
        dec.bank = static_cast<unsigned>(
            takeBits(line, org_.banksPerGroup));
        dec.row = line % org_.rows;
        break;
      case MapPolicy::RoCoBaRaCh:
        dec.channel = static_cast<unsigned>(takeBits(line, org_.channels));
        dec.rank = static_cast<unsigned>(takeBits(line, org_.ranks));
        dec.bank = static_cast<unsigned>(
            takeBits(line, org_.banksPerGroup));
        dec.bankGroup = static_cast<unsigned>(
            takeBits(line, org_.bankGroups));
        dec.column = static_cast<unsigned>(
            takeBits(line, org_.columnsPerRow));
        dec.row = line % org_.rows;
        break;
    }
    return dec;
}

Addr
AddressMap::encode(const DecodedAddr &dec) const
{
    std::uint64_t line = 0;
    switch (policy_) {
      case MapPolicy::RoBaRaCoCh:
        line = dec.row;
        line = line * org_.banksPerGroup + dec.bank;
        line = line * org_.ranks + dec.rank;
        line = line * org_.columnsPerRow + dec.column;
        line = line * org_.bankGroups + dec.bankGroup;
        line = line * org_.channels + dec.channel;
        break;
      case MapPolicy::RoCoBaRaCh:
        line = dec.row;
        line = line * org_.columnsPerRow + dec.column;
        line = line * org_.bankGroups + dec.bankGroup;
        line = line * org_.banksPerGroup + dec.bank;
        line = line * org_.ranks + dec.rank;
        line = line * org_.channels + dec.channel;
        break;
    }
    return line * kBlockBytes;
}

} // namespace palermo
