/**
 * @file
 * Per-bank DRAM state machine: open row tracking plus the earliest tick at
 * which each command class (ACT/PRE/RD/WR) becomes legal for this bank.
 */

#ifndef PALERMO_MEM_BANK_HH
#define PALERMO_MEM_BANK_HH

#include "common/types.hh"
#include "mem/dram_timing.hh"

namespace palermo {

/** One DRAM bank's row-buffer state and timing gates. */
class Bank
{
  public:
    /** True if any row is open in this bank's row buffer. */
    bool isOpen() const { return openRow_ != kInvalid; }

    /** Currently open row, or kInvalid. */
    std::uint64_t openRow() const { return openRow_; }

    bool canActivate(Tick now) const { return !isOpen() && now >= nextAct_; }
    bool canPrecharge(Tick now) const { return isOpen() && now >= nextPre_; }
    bool canColumn(Tick now, bool write) const
    {
        return isOpen() && now >= (write ? nextWr_ : nextRd_);
    }

    /** Earliest tick a column command could issue (given the row stays). */
    Tick nextColumnAt(bool write) const { return write ? nextWr_ : nextRd_; }
    Tick nextActAt() const { return nextAct_; }
    Tick nextPreAt() const { return nextPre_; }

    /** Apply an ACT command at the given tick. */
    void activate(Tick now, std::uint64_t row, const DramTiming &t);

    /** Apply a PRE command at the given tick. */
    void precharge(Tick now, const DramTiming &t);

    /** Apply a RD/WR column command at the given tick. */
    void column(Tick now, bool write, const DramTiming &t);

    /** Refresh: close the row and block activates until now + tRFC. */
    void refresh(Tick now, const DramTiming &t);

  private:
    std::uint64_t openRow_ = kInvalid;
    Tick nextAct_ = 0;
    Tick nextPre_ = 0;
    Tick nextRd_ = 0;
    Tick nextWr_ = 0;
};

} // namespace palermo

#endif // PALERMO_MEM_BANK_HH
