/**
 * @file
 * Physical address to DRAM coordinate mapping.
 *
 * Default policy is RoBaRaCoCh (row : bank : rank : column : bank-group :
 * channel from MSB to LSB above the line offset): consecutive 64B lines
 * interleave across channels first, then across bank groups (so streams
 * pace CAS commands at tCCD_S, not tCCD_L), then across the columns of a
 * row — an ORAM bucket's slots spread over all channels and still enjoy
 * row-buffer locality within each bank.
 */

#ifndef PALERMO_MEM_ADDRESS_MAP_HH
#define PALERMO_MEM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"

namespace palermo {

/** DRAM organization (geometry) parameters. */
struct DramOrg
{
    unsigned channels = 4;
    unsigned ranks = 1;
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    unsigned rows = 1u << 16;
    unsigned columnsPerRow = 128; ///< 64B columns per 8KB row

    unsigned banksPerChannel() const
    {
        return ranks * bankGroups * banksPerGroup;
    }

    /** Total addressable bytes across all channels. */
    std::uint64_t capacityBytes() const;
};

/** Decoded DRAM coordinates for one 64B line. */
struct DecodedAddr
{
    unsigned channel;
    unsigned rank;
    unsigned bankGroup;
    unsigned bank;      ///< bank within its group
    std::uint64_t row;
    unsigned column;

    /** Flat bank index within the channel. */
    unsigned flatBank(const DramOrg &org) const
    {
        return (rank * org.bankGroups + bankGroup) * org.banksPerGroup
            + bank;
    }
};

/** Interleaving policies. */
enum class MapPolicy
{
    RoBaRaCoCh, ///< row:bank:rank:column:channel (channel-interleaved)
    RoCoBaRaCh, ///< row:column:bank:rank:channel (bank-interleaved lines)
};

/** Address mapper for a given organization and policy. */
class AddressMap
{
  public:
    explicit AddressMap(const DramOrg &org,
                        MapPolicy policy = MapPolicy::RoBaRaCoCh);

    /** Decode a byte address into DRAM coordinates. */
    DecodedAddr decode(Addr addr) const;

    /** Re-encode coordinates into the canonical byte address (inverse). */
    Addr encode(const DecodedAddr &dec) const;

    const DramOrg &org() const { return org_; }
    MapPolicy policy() const { return policy_; }

  private:
    DramOrg org_;
    MapPolicy policy_;
};

} // namespace palermo

#endif // PALERMO_MEM_ADDRESS_MAP_HH
