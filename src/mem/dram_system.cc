/**
 * @file
 * Channel routing, per-tick advancement, completion delivery, and
 * aggregate bandwidth/row-hit statistics.
 */

#include "mem/dram_system.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/parallel.hh"

namespace palermo {

namespace {

/** Stack bound on shards per epoch (keeps dispatch allocation-free). */
constexpr std::size_t kMaxTickShards = 64;

/**
 * One sharded advancement epoch: each shard owns a contiguous range of
 * channels and steps them through [start, start + cycles) before the
 * pool barrier. Outputs are indexed by shard (dynamic shard-to-thread
 * assignment), and summed in any order the total is exact — every
 * addend is a small integer occupancy.
 */
struct TickJob
{
    std::vector<std::unique_ptr<Channel>> *channels;
    Tick start;
    std::uint64_t cycles;
    unsigned shards;
    std::uint64_t *sums; ///< Per-shard occupancy integrals (or null).

    /** Contiguous [lo, hi) channel range of one shard. */
    void
    range(unsigned shard, std::size_t *lo, std::size_t *hi) const
    {
        const std::size_t n = channels->size();
        const std::size_t base = n / shards;
        const std::size_t extra = n % shards;
        *lo = shard * base + std::min<std::size_t>(shard, extra);
        *hi = *lo + base + (shard < extra ? 1 : 0);
    }

    static void
    runShard(void *ctx, unsigned shard)
    {
        const TickJob &job = *static_cast<const TickJob *>(ctx);
        std::size_t lo, hi;
        job.range(shard, &lo, &hi);
        std::uint64_t sum = 0;
        for (std::size_t c = lo; c < hi; ++c)
            sum += (*job.channels)[c]->tickWindow(job.start, job.cycles);
        if (job.sums != nullptr)
            job.sums[shard] = sum;
    }
};

} // namespace

double
DramSnapshot::rowHitRate() const
{
    const auto total = rowHits + rowMisses + rowConflicts;
    return total ? static_cast<double>(rowHits) / total : 0.0;
}

double
DramSnapshot::rowConflictRate() const
{
    const auto total = rowHits + rowMisses + rowConflicts;
    return total ? static_cast<double>(rowConflicts) / total : 0.0;
}

double
DramSnapshot::busUtilization() const
{
    return totalTicks
        ? static_cast<double>(busBusyTicks) / totalTicks : 0.0;
}

DramSystem::DramSystem(const DramConfig &config)
    : config_(config), map_(config.org, config.policy)
{
    palermo_assert(config.org.channels > 0);
    channels_.reserve(config.org.channels);
    for (unsigned c = 0; c < config.org.channels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            config.org, config.timing, config.queueDepth));
    }
}

bool
DramSystem::canEnqueue(Addr addr, bool is_write) const
{
    const DecodedAddr dec = map_.decode(addr);
    return channels_[dec.channel]->canEnqueue(is_write);
}

bool
DramSystem::enqueue(Addr addr, bool is_write, std::uint64_t tag)
{
    const DecodedAddr dec = map_.decode(addr);
    return channels_[dec.channel]->enqueue(dec, is_write, tag, now_);
}

void
DramSystem::tick()
{
    for (auto &channel : channels_)
        channel->tick(now_);
    ++now_;
}

void
DramSystem::tickParallel(WorkerPool &pool)
{
    // Sharding an all-idle cycle costs more than the idle ticks do;
    // the gate depends only on simulation state, so serial and
    // parallel runs take it identically.
    if (pool.threads() <= 1 || channels_.size() <= 1
        || occupancy() == 0) {
        tick();
        return;
    }
    const unsigned shards = static_cast<unsigned>(std::min(
        {static_cast<std::size_t>(pool.threads()), channels_.size(),
         kMaxTickShards}));
    TickJob job{&channels_, now_, 1, shards, nullptr};
    pool.run(&TickJob::runShard, &job, shards);
    ++now_;
}

std::uint64_t
DramSystem::tickWindow(WorkerPool *pool, std::uint64_t cycles)
{
    // The window is cross-channel quiet (caller-proven), so each shard
    // may advance its channels through all `cycles` before the single
    // barrier. Run serially when the pool is trivial or the window is
    // too short to amortize a barrier.
    const std::size_t n = channels_.size();
    std::uint64_t integral = 0;
    if (pool == nullptr || pool->threads() <= 1 || n <= 1
        || cycles < 8) {
        for (auto &channel : channels_)
            integral += channel->tickWindow(now_, cycles);
    } else {
        const unsigned shards = static_cast<unsigned>(std::min(
            {static_cast<std::size_t>(pool->threads()), n,
             kMaxTickShards}));
        std::uint64_t sums[kMaxTickShards] = {};
        TickJob job{&channels_, now_, cycles, shards, sums};
        pool->run(&TickJob::runShard, &job, shards);
        for (unsigned s = 0; s < shards; ++s)
            integral += sums[s];
    }
    now_ += cycles;
    return integral;
}

bool
DramSystem::readQuiescent() const
{
    if (!pending_.empty())
        return false;
    for (const auto &channel : channels_) {
        if (!channel->readQuiescent())
            return false;
    }
    return true;
}

const std::vector<Completion> &
DramSystem::drainCompletions()
{
    // Move channel completions whose finish tick has passed into the
    // ready list; keep future ones pending (reads complete at
    // issue + tCL + tBL, which is later than the CAS issue tick).
    for (auto &channel : channels_) {
        auto &list = channel->completions();
        for (auto &completion : list)
            pending_.push_back(completion);
        list.clear();
    }
    ready_.clear();
    auto split = std::partition(
        pending_.begin(), pending_.end(),
        [this](const Completion &c) { return c.finishTick > now_; });
    ready_.assign(split, pending_.end());
    pending_.erase(split, pending_.end());
    std::sort(ready_.begin(), ready_.end(),
              [](const Completion &a, const Completion &b) {
                  return a.finishTick < b.finishTick;
              });
    return ready_;
}

bool
DramSystem::dataBusActive() const
{
    for (const auto &channel : channels_) {
        if (channel->dataBusActive())
            return true;
    }
    return false;
}

std::size_t
DramSystem::occupancy() const
{
    std::size_t total = 0;
    for (const auto &channel : channels_)
        total += channel->occupancy();
    return total;
}

void
DramSystem::resetStats()
{
    for (auto &channel : channels_)
        channel->stats().reset();
}

DramSnapshot
DramSystem::snapshot() const
{
    DramSnapshot snap;
    double occ = 0.0;
    double latency = 0.0;
    std::uint64_t latency_samples = 0;
    for (const auto &channel : channels_) {
        const ChannelStats &s = channel->stats();
        snap.reads += s.reads.value();
        snap.writes += s.writes.value();
        snap.rowHits += s.rowHits.value();
        snap.rowMisses += s.rowMisses.value();
        snap.rowConflicts += s.rowConflicts.value();
        snap.forwardedReads += s.forwardedReads.value();
        snap.busBusyTicks += s.busBusyTicks.value();
        snap.totalTicks = std::max(snap.totalTicks, s.totalTicks.value());
        occ += s.queueOccupancy.mean();
        latency += s.readLatency.mean() * s.readLatency.count();
        latency_samples += s.readLatency.count();
    }
    // Bus utilization denominator: each channel contributes its ticks.
    snap.totalTicks *= channels_.size();
    snap.avgQueueOccupancy = occ;
    snap.avgReadLatency =
        latency_samples ? latency / latency_samples : 0.0;
    return snap;
}

double
DramSystem::peakBytesPerTick() const
{
    return config_.timing.bytesPerCycle() * config_.org.channels;
}

double
DramSystem::peakBandwidthGBps() const
{
    return peakBytesPerTick() * config_.timing.clockGHz;
}

} // namespace palermo
