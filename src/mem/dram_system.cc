/**
 * @file
 * Channel routing, per-tick advancement, completion delivery, and
 * aggregate bandwidth/row-hit statistics.
 */

#include "mem/dram_system.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

double
DramSnapshot::rowHitRate() const
{
    const auto total = rowHits + rowMisses + rowConflicts;
    return total ? static_cast<double>(rowHits) / total : 0.0;
}

double
DramSnapshot::rowConflictRate() const
{
    const auto total = rowHits + rowMisses + rowConflicts;
    return total ? static_cast<double>(rowConflicts) / total : 0.0;
}

double
DramSnapshot::busUtilization() const
{
    return totalTicks
        ? static_cast<double>(busBusyTicks) / totalTicks : 0.0;
}

DramSystem::DramSystem(const DramConfig &config)
    : config_(config), map_(config.org, config.policy)
{
    palermo_assert(config.org.channels > 0);
    channels_.reserve(config.org.channels);
    for (unsigned c = 0; c < config.org.channels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            config.org, config.timing, config.queueDepth));
    }
}

bool
DramSystem::canEnqueue(Addr addr, bool is_write) const
{
    const DecodedAddr dec = map_.decode(addr);
    return channels_[dec.channel]->canEnqueue(is_write);
}

bool
DramSystem::enqueue(Addr addr, bool is_write, std::uint64_t tag)
{
    const DecodedAddr dec = map_.decode(addr);
    return channels_[dec.channel]->enqueue(dec, is_write, tag, now_);
}

void
DramSystem::tick()
{
    for (auto &channel : channels_)
        channel->tick(now_);
    ++now_;
}

const std::vector<Completion> &
DramSystem::drainCompletions()
{
    // Move channel completions whose finish tick has passed into the
    // ready list; keep future ones pending (reads complete at
    // issue + tCL + tBL, which is later than the CAS issue tick).
    for (auto &channel : channels_) {
        auto &list = channel->completions();
        for (auto &completion : list)
            pending_.push_back(completion);
        list.clear();
    }
    ready_.clear();
    auto split = std::partition(
        pending_.begin(), pending_.end(),
        [this](const Completion &c) { return c.finishTick > now_; });
    ready_.assign(split, pending_.end());
    pending_.erase(split, pending_.end());
    std::sort(ready_.begin(), ready_.end(),
              [](const Completion &a, const Completion &b) {
                  return a.finishTick < b.finishTick;
              });
    return ready_;
}

bool
DramSystem::dataBusActive() const
{
    for (const auto &channel : channels_) {
        if (channel->dataBusActive())
            return true;
    }
    return false;
}

std::size_t
DramSystem::occupancy() const
{
    std::size_t total = 0;
    for (const auto &channel : channels_)
        total += channel->occupancy();
    return total;
}

void
DramSystem::resetStats()
{
    for (auto &channel : channels_)
        channel->stats().reset();
}

DramSnapshot
DramSystem::snapshot() const
{
    DramSnapshot snap;
    double occ = 0.0;
    double latency = 0.0;
    std::uint64_t latency_samples = 0;
    for (const auto &channel : channels_) {
        const ChannelStats &s = channel->stats();
        snap.reads += s.reads.value();
        snap.writes += s.writes.value();
        snap.rowHits += s.rowHits.value();
        snap.rowMisses += s.rowMisses.value();
        snap.rowConflicts += s.rowConflicts.value();
        snap.forwardedReads += s.forwardedReads.value();
        snap.busBusyTicks += s.busBusyTicks.value();
        snap.totalTicks = std::max(snap.totalTicks, s.totalTicks.value());
        occ += s.queueOccupancy.mean();
        latency += s.readLatency.mean() * s.readLatency.count();
        latency_samples += s.readLatency.count();
    }
    // Bus utilization denominator: each channel contributes its ticks.
    snap.totalTicks *= channels_.size();
    snap.avgQueueOccupancy = occ;
    snap.avgReadLatency =
        latency_samples ? latency / latency_samples : 0.0;
    return snap;
}

double
DramSystem::peakBytesPerTick() const
{
    return config_.timing.bytesPerCycle() * config_.org.channels;
}

double
DramSystem::peakBandwidthGBps() const
{
    return peakBytesPerTick() * config_.timing.clockGHz;
}

} // namespace palermo
