/**
 * @file
 * Open-row tracking and per-command-class earliest-legal-tick updates
 * for one DRAM bank.
 */

#include "mem/bank.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

void
Bank::activate(Tick now, std::uint64_t row, const DramTiming &t)
{
    palermo_assert(canActivate(now), "ACT issued while illegal");
    openRow_ = row;
    nextRd_ = std::max(nextRd_, now + t.tRCD);
    nextWr_ = std::max(nextWr_, now + t.tRCD);
    nextPre_ = std::max(nextPre_, now + t.tRAS);
    nextAct_ = std::max(nextAct_, now + t.tRC);
}

void
Bank::precharge(Tick now, const DramTiming &t)
{
    palermo_assert(canPrecharge(now), "PRE issued while illegal");
    openRow_ = kInvalid;
    nextAct_ = std::max(nextAct_, now + t.tRP);
}

void
Bank::column(Tick now, bool write, const DramTiming &t)
{
    palermo_assert(canColumn(now, write), "CAS issued while illegal");
    if (write) {
        // Write data occupies the bus [now+tCWL, now+tCWL+tBL); the row
        // may not close until tWR after the data burst completes.
        nextPre_ = std::max(nextPre_,
                            now + t.tCWL + t.tBL + t.tWR);
    } else {
        nextPre_ = std::max(nextPre_, now + t.tRTP);
    }
}

void
Bank::refresh(Tick now, const DramTiming &t)
{
    openRow_ = kInvalid;
    nextAct_ = std::max(nextAct_, now + t.tRFC);
}

} // namespace palermo
