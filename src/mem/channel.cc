/**
 * @file
 * FR-FCFS scheduling, write-drain hysteresis, tRRD/tFAW windows,
 * CAS-to-CAS gating, and refresh for one DDR4 channel.
 */

#include "mem/channel.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

void
ChannelStats::reset()
{
    reads.reset();
    writes.reset();
    rowHits.reset();
    rowMisses.reset();
    rowConflicts.reset();
    forwardedReads.reset();
    coalescedWrites.reset();
    refreshes.reset();
    busBusyTicks.reset();
    totalTicks.reset();
    queueOccupancy.reset();
    readLatency.reset();
}

Channel::Channel(const DramOrg &org, const DramTiming &timing,
                 unsigned queue_depth)
    : org_(org), timing_(timing), queueDepth_(queue_depth),
      banks_(org.banksPerChannel()),
      readQueue_(PoolAllocator<Entry>(&pool_)),
      writeQueue_(PoolAllocator<Entry>(&pool_)),
      rowWant_(&pool_),
      openRowWant_(org.banksPerChannel(), 0),
      bankWant_(org.banksPerChannel(), 0),
      actWindow_(PoolAllocator<Tick>(&pool_)),
      nextRefresh_(timing.tREFI),
      drainHigh_(std::max(2u, queue_depth * 3 / 4)),
      drainLow_(std::max(1u, queue_depth / 4))
{
}

bool
Channel::canEnqueue(bool is_write) const
{
    const auto &queue = is_write ? writeQueue_ : readQueue_;
    return queue.size() < queueDepth_;
}

void
Channel::trackEnqueue(const Entry &e)
{
    ++rowWant_[rowKey(e.flatBank, e.dec.row)];
    ++bankWant_[e.flatBank];
    const Bank &bank = banks_[e.flatBank];
    if (!bank.isOpen()) {
        ++closedBankWant_;
    } else if (bank.openRow() == e.dec.row) {
        ++openRowWant_[e.flatBank];
        ++rowHitWant_;
    }
    resetScanMemos();
}

void
Channel::trackDequeue(const Entry &e)
{
    const auto it = rowWant_.find(rowKey(e.flatBank, e.dec.row));
    if (--it->second == 0)
        rowWant_.erase(it);
    --bankWant_[e.flatBank];
    const Bank &bank = banks_[e.flatBank];
    if (!bank.isOpen()) {
        --closedBankWant_;
    } else if (bank.openRow() == e.dec.row) {
        --openRowWant_[e.flatBank];
        --rowHitWant_;
    }
    resetScanMemos();
}

void
Channel::closeRow(std::size_t flat_bank, Tick now)
{
    banks_[flat_bank].precharge(now, timing_);
    // Open -> closed: the bank's row-hit entries (if any) and its
    // mismatched entries all become closed-bank demand.
    rowHitWant_ -= openRowWant_[flat_bank];
    openRowWant_[flat_bank] = 0;
    closedBankWant_ += bankWant_[flat_bank];
    resetScanMemos();
}

bool
Channel::enqueue(const DecodedAddr &dec, bool is_write, std::uint64_t tag,
                 Tick now)
{
    const unsigned flat_bank = dec.flatBank(org_);
    if (is_write) {
        // Coalesce with an already-queued write to the same line.
        for (auto &entry : writeQueue_) {
            if (entry.dec.row == dec.row && entry.dec.column == dec.column
                && entry.flatBank == flat_bank) {
                stats_.coalescedWrites.inc();
                return true;
            }
        }
        if (writeQueue_.size() >= queueDepth_)
            return false;
        writeQueue_.push_back({dec, tag, now, flat_bank});
        trackEnqueue(writeQueue_.back());
        stats_.writes.inc();
        return true;
    }

    // Read: forward from the write queue when the line is still pending
    // there (the hardware controller's store-to-load forwarding). This is
    // what lets Palermo's east sibling read data whose ER writes were
    // issued but not yet committed to the array.
    for (const auto &entry : writeQueue_) {
        if (entry.dec.row == dec.row && entry.dec.column == dec.column
            && entry.flatBank == flat_bank) {
            stats_.forwardedReads.inc();
            stats_.reads.inc();
            const Tick finish = now + timing_.tCL;
            completions_.push_back({tag, finish, true});
            stats_.readLatency.sample(static_cast<double>(timing_.tCL));
            return true;
        }
    }
    if (readQueue_.size() >= queueDepth_)
        return false;
    readQueue_.push_back({dec, tag, now, flat_bank});
    trackEnqueue(readQueue_.back());
    return true;
}

void
Channel::tick(Tick now)
{
    stats_.totalTicks.inc();
    stats_.queueOccupancy.accumulate(
        static_cast<double>(occupancy()), 1);

    // Retire due bus events to maintain the instantaneous activity flag.
    while (!busEvents_.empty() && busEvents_.top().tick <= now) {
        activeTransfers_ += busEvents_.top().delta;
        busEvents_.pop();
    }
    busActiveNow_ = activeTransfers_ > 0;
    if (busActiveNow_)
        stats_.busBusyTicks.inc();

    if (refreshPending_ || now >= nextRefresh_) {
        handleRefresh(now);
        return;
    }

    // Write drain hysteresis.
    if (!writeMode_) {
        if (writeQueue_.size() >= drainHigh_
            || (readQueue_.empty() && !writeQueue_.empty())) {
            writeMode_ = true;
        }
    } else {
        if (writeQueue_.size() <= drainLow_
            || (writeQueue_.empty() && !readQueue_.empty())) {
            writeMode_ = false;
        }
    }

    if (writeMode_) {
        if (!trySchedule(now, writeQueue_, true))
            trySchedule(now, readQueue_, false);
    } else {
        if (!trySchedule(now, readQueue_, false))
            trySchedule(now, writeQueue_, true);
    }
}

std::uint64_t
Channel::tickWindow(Tick now, std::uint64_t cycles)
{
    std::uint64_t integral = 0;
    for (std::uint64_t i = 0; i < cycles; ++i) {
        tick(now + i);
        integral += occupancy();
    }
    return integral;
}

void
Channel::handleRefresh(Tick now)
{
    refreshPending_ = true;
    // Close open banks as their precharge constraints allow, then issue
    // the all-bank refresh.
    bool any_open = false;
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        if (banks_[b].isOpen()) {
            any_open = true;
            if (banks_[b].canPrecharge(now)) {
                closeRow(b, now);
            }
        }
    }
    if (any_open)
        return;
    for (auto &bank : banks_)
        bank.refresh(now, timing_);
    stats_.refreshes.inc();
    refreshPending_ = false;
    nextRefresh_ = now + timing_.tREFI;
}

bool
Channel::rowWanted(std::uint64_t flat_bank, std::uint64_t row) const
{
    // Exact mirror of a scan over both queues: rowWant_ counts every
    // queued entry by (flat bank, row). Callers asking about a bank's
    // currently open row take the incremental per-bank count instead
    // (openRowWant_, maintained by trackEnqueue/trackDequeue and
    // re-derived from this table on each ACT).
    return rowWant_.contains(rowKey(flat_bank, row));
}

bool
Channel::casTimingOk(Tick now, const Entry &e, bool is_write) const
{
    const Bank &bank = banks_[e.flatBank];
    if (!bank.isOpen() || bank.openRow() != e.dec.row)
        return false;
    if (!bank.canColumn(now, is_write))
        return false;
    // CAS-to-CAS spacing.
    if (lastCasValid_) {
        const unsigned gap = (e.dec.bankGroup == lastCasBankGroup_)
            ? timing_.tCCD_L : timing_.tCCD_S;
        if (now < lastCas_ + gap)
            return false;
    }
    // Write-to-read turnaround.
    if (!is_write && lastWriteValid_) {
        const unsigned wtr = (e.dec.bankGroup == lastWriteBankGroup_)
            ? timing_.tWTR_L : timing_.tWTR_S;
        if (now < lastWriteDataEnd_ + wtr)
            return false;
    }
    // Data bus must be free when this burst would start.
    const Tick data_start = now + (is_write ? timing_.tCWL : timing_.tCL);
    if (data_start < busFreeAt_)
        return false;
    return true;
}

bool
Channel::actTimingOk(Tick now, const Entry &e) const
{
    // tRRD_S and tFAW are entry-independent; tryActivate checks them
    // once before scanning.
    const Bank &bank = banks_[e.flatBank];
    if (!bank.canActivate(now))
        return false;
    if (lastActValid_ && e.dec.bankGroup == lastActBankGroup_
        && now < lastAct_ + timing_.tRRD_L) {
        return false;
    }
    return true;
}

void
Channel::scheduleBusBeat(Tick start, Tick end)
{
    busEvents_.push({start, +1});
    busEvents_.push({end, -1});
    busFreeAt_ = end;
}

void
Channel::recordCas(Tick now, Entry &e, bool is_write)
{
    lastCas_ = now;
    lastCasBankGroup_ = e.dec.bankGroup;
    lastCasValid_ = true;

    const Tick data_start = now + (is_write ? timing_.tCWL : timing_.tCL);
    const Tick data_end = data_start + timing_.tBL;
    scheduleBusBeat(data_start, data_end);

    if (is_write) {
        lastWriteDataEnd_ = data_end;
        lastWriteBankGroup_ = e.dec.bankGroup;
        lastWriteValid_ = true;
    }

    // Row-buffer outcome classification for this request.
    if (e.hadConflict)
        stats_.rowConflicts.inc();
    else if (e.hadActivate)
        stats_.rowMisses.inc();
    else
        stats_.rowHits.inc();
}

bool
Channel::tryColumn(Tick now, EntryQueue &queue, bool is_write)
{
    // No queued entry anywhere targets an open row: nothing can pass
    // casTimingOk's open-row check, skip the scan.
    if (rowHitWant_ == 0)
        return false;
    // Every row hit was timing-blocked at the last failed scan and no
    // tracked event has moved a deadline earlier since.
    if (now < (is_write ? casRetryWrite_ : casRetryRead_))
        return false;
    // Entry-independent gates, hoisted out of the scan: no entry can
    // pass casTimingOk while the shortest CAS-to-CAS gap is pending or
    // the data bus is reserved past this burst's start.
    if (lastCasValid_
        && now < lastCas_ + std::min(timing_.tCCD_L, timing_.tCCD_S)) {
        return false;
    }
    const Tick cas_lat = is_write ? timing_.tCWL : timing_.tCL;
    if (now + cas_lat < busFreeAt_)
        return false;

    // Earliest tick a row hit of this queue clears every CAS gate,
    // piggy-backed on the scan for the casRetry memo.
    Tick earliest = kInvalid;
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        const Entry &cand = *it;
        // Only row hits matter; one counter load filters the rest.
        if (openRowWant_[cand.flatBank] == 0)
            continue;
        const Bank &bank = banks_[cand.flatBank];
        if (bank.openRow() != cand.dec.row)
            continue;
        if (!casTimingOk(now, cand, is_write)) {
            Tick at = bank.nextColumnAt(is_write);
            if (lastCasValid_) {
                const unsigned gap =
                    (cand.dec.bankGroup == lastCasBankGroup_)
                    ? timing_.tCCD_L : timing_.tCCD_S;
                at = std::max(at, lastCas_ + gap);
            }
            if (!is_write && lastWriteValid_) {
                const unsigned wtr =
                    (cand.dec.bankGroup == lastWriteBankGroup_)
                    ? timing_.tWTR_L : timing_.tWTR_S;
                at = std::max(at, lastWriteDataEnd_ + wtr);
            }
            if (busFreeAt_ > cas_lat)
                at = std::max(at, busFreeAt_ - cas_lat);
            earliest = std::min(earliest, at);
            continue;
        }
        Entry entry = *it;
        banks_[entry.flatBank].column(now, is_write, timing_);
        recordCas(now, entry, is_write);
        if (!is_write) {
            const Tick finish = now + timing_.tCL + timing_.tBL;
            completions_.push_back({entry.tag, finish, false});
            stats_.reads.inc();
            stats_.readLatency.sample(
                static_cast<double>(finish - entry.enqueueTick));
        }
        trackDequeue(entry);
        queue.erase(it);
        return true;
    }
    // Gating state only pushes deadlines later between tracked events,
    // so "no hit in this queue can issue before `earliest`" holds until
    // an event resets the memo. kInvalid when this queue holds no hits.
    (is_write ? casRetryWrite_ : casRetryRead_) = earliest;
    return false;
}

bool
Channel::tryActivate(Tick now, EntryQueue &queue)
{
    // No queued entry anywhere sits on a closed bank: no ACT possible.
    if (closedBankWant_ == 0)
        return false;
    // Entry-independent ACT gates (tRRD_S, tFAW), hoisted out of the
    // scan; actTimingOk keeps the per-bank-group tRRD_L check.
    if (lastActValid_ && now < lastAct_ + timing_.tRRD_S)
        return false;
    if (actWindow_.size() >= 4 && now < actWindow_.front() + timing_.tFAW)
        return false;

    for (auto &entry : queue) {
        const Bank &bank = banks_[entry.flatBank];
        if (bank.isOpen())
            continue;
        if (!actTimingOk(now, entry))
            continue;
        banks_[entry.flatBank].activate(now, entry.dec.row, timing_);
        // Closed -> open: the bank's entries leave the closed-bank
        // class; those matching the fresh row (exact count from the
        // (bank, row) table — one probe per ACT) become row hits.
        const std::uint32_t *want =
            rowWant_.findValue(rowKey(entry.flatBank, entry.dec.row));
        const std::uint32_t hits = want != nullptr ? *want : 0;
        openRowWant_[entry.flatBank] = hits;
        rowHitWant_ += hits;
        closedBankWant_ -= bankWant_[entry.flatBank];
        resetScanMemos();
        entry.hadActivate = true;
        lastAct_ = now;
        lastActBankGroup_ = entry.dec.bankGroup;
        lastActValid_ = true;
        actWindow_.push_back(now);
        if (actWindow_.size() > 4)
            actWindow_.pop_front();
        return true;
    }
    return false;
}

bool
Channel::tryPrecharge(Tick now, EntryQueue &queue, bool is_write)
{
    // Precharge needs an entry whose bank is open at a different row —
    // the class that is neither a row hit nor closed-bank demand. Empty
    // class (counted across both queues): skip the scan.
    if (readQueue_.size() + writeQueue_.size()
        == rowHitWant_ + closedBankWant_) {
        return false;
    }
    // Every candidate bank was timing-blocked at the last failed sweep
    // and nothing has changed since: the sweep cannot succeed yet.
    if (now < preRetryAt_)
        return false;
    // Short queues: the entry-major scan touches fewer banks than a
    // bank-major sweep would.
    if (queue.size() <= 8) {
        for (auto &entry : queue) {
            Bank &bank = banks_[entry.flatBank];
            if (!bank.isOpen() || bank.openRow() == entry.dec.row)
                continue;
            // FR-FCFS: do not close a row other requests still want.
            if (openRowWanted(entry.flatBank))
                continue;
            if (!bank.canPrecharge(now))
                continue;
            closeRow(entry.flatBank, now);
            entry.hadConflict = true;
            return true;
        }
        (void)is_write;
        return false;
    }

    // Bank-major scan: whether a bank may be closed is entry-independent
    // (open, precharge timing met, open row wanted by no queued request —
    // an entry whose row IS the open row keeps it wanted, so a flagged
    // bank always mismatches every queued entry's row). The first entry
    // in queue order whose bank is flagged is exactly the entry the
    // original entry-major scan would have picked.
    prechargeOk_.assign(banks_.size(), 0);
    bool any = false;
    // Piggy-backed on the sweep: earliest precharge deadline among
    // demanded banks blocked only on timing, for the preRetryAt_ memo.
    Tick earliest = kInvalid;
    for (std::size_t b = 0; b < banks_.size(); ++b) {
        // Banks nobody queues for can never match the entry scan below;
        // leaving them unflagged also lets the memo arm while they sit
        // open and idle.
        if (bankWant_[b] == 0)
            continue;
        Bank &bank = banks_[b];
        if (!bank.isOpen())
            continue;
        // FR-FCFS: do not close a row other requests still want.
        if (openRowWanted(b))
            continue;
        if (!bank.canPrecharge(now)) {
            earliest = std::min(earliest, bank.nextPreAt());
            continue;
        }
        prechargeOk_[b] = 1;
        any = true;
    }
    if (!any) {
        (void)is_write;
        // No bank is eligible now; none can become eligible before the
        // earliest deadline absent a tracked event (which resets the
        // memo). kInvalid when only an event can create a candidate.
        preRetryAt_ = earliest;
        return false;
    }
    for (auto &entry : queue) {
        if (!prechargeOk_[entry.flatBank])
            continue;
        closeRow(entry.flatBank, now);
        entry.hadConflict = true;
        return true;
    }
    // Also mark conflicts for entries whose bank got closed on their
    // behalf earlier: handled by hadConflict flag persistence. A flagged
    // bank is eligible now (demand may sit in the other queue), so
    // armPreRetry would not allow a skip — leave it disarmed.
    return false;
}

bool
Channel::trySchedule(Tick now, EntryQueue &queue, bool is_write)
{
    if (queue.empty())
        return false;
    if (tryColumn(now, queue, is_write))
        return true;
    if (tryActivate(now, queue))
        return true;
    if (tryPrecharge(now, queue, is_write))
        return true;
    return false;
}

} // namespace palermo
