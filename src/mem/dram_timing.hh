/**
 * @file
 * DDR4 timing parameter sets, expressed in memory-bus clock cycles.
 *
 * The whole simulator runs in one clock domain at 1.6 GHz (tCK = 0.625ns):
 * the Palermo controller frequency from the paper's RTL results, which is
 * also the DDR4-3200 bus clock. All parameters below are therefore both
 * DRAM cycles and controller cycles.
 */

#ifndef PALERMO_MEM_DRAM_TIMING_HH
#define PALERMO_MEM_DRAM_TIMING_HH

#include <string>

#include "common/types.hh"

namespace palermo {

/** DDR4 device timing constraints (cycle counts at the bus clock). */
struct DramTiming
{
    std::string name;

    unsigned tCL;     ///< CAS (read) latency
    unsigned tCWL;    ///< CAS write latency
    unsigned tRCD;    ///< ACT to CAS delay
    unsigned tRP;     ///< PRE to ACT delay
    unsigned tRAS;    ///< ACT to PRE delay
    unsigned tRC;     ///< ACT to ACT (same bank)
    unsigned tBL;     ///< Burst length in clock cycles (BL8 = 4)
    unsigned tCCD_S;  ///< CAS to CAS, different bank group
    unsigned tCCD_L;  ///< CAS to CAS, same bank group
    unsigned tRTP;    ///< Read to PRE
    unsigned tWR;     ///< Write recovery (write data end to PRE)
    unsigned tWTR_S;  ///< Write data end to read CAS, diff bank group
    unsigned tWTR_L;  ///< Write data end to read CAS, same bank group
    unsigned tRRD_S;  ///< ACT to ACT, different bank group
    unsigned tRRD_L;  ///< ACT to ACT, same bank group
    unsigned tFAW;    ///< Four-activate window
    unsigned tREFI;   ///< Refresh interval
    unsigned tRFC;    ///< Refresh cycle time

    /** Clock frequency in GHz (for converting cycles to wall time). */
    double clockGHz;

    /** Peak data-bus bandwidth per channel in bytes per cycle. */
    double bytesPerCycle() const
    {
        return static_cast<double>(kBlockBytes) / tBL;
    }
};

/** DDR4-3200AA, the paper's Table III configuration. */
const DramTiming &ddr4_3200();

/** DDR4-2400 for sensitivity experiments. */
const DramTiming &ddr4_2400();

} // namespace palermo

#endif // PALERMO_MEM_DRAM_TIMING_HH
