/**
 * @file
 * Per-channel DRAM controller: FR-FCFS scheduling over split read/write
 * queues, write-drain hysteresis, write-to-read forwarding, bank timing,
 * tRRD/tFAW activate windows, CAS-to-CAS gating, and all-bank refresh.
 *
 * Thread ownership (channel-sharded parallel stepping): every mutable
 * member of Channel — banks_, both queues, rowWant_, completions_, the
 * bus-event heap, refresh/drain state, stats_, and the PoolResource
 * backing the queue containers — is owned exclusively by this channel.
 * Channels never read or write each other's state, and `rowKey` is the
 * only static (a pure function), so disjoint channels may tick
 * concurrently on different threads within one DramSystem cycle epoch.
 * enqueue()/completions() remain coordinator-only: traffic routing and
 * completion draining happen between epochs on the session thread.
 */

#ifndef PALERMO_MEM_CHANNEL_HH
#define PALERMO_MEM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/bank.hh"
#include "mem/dram_timing.hh"

namespace palermo {

/** A finished read returned to the requester. */
struct Completion
{
    std::uint64_t tag;   ///< Caller-provided identifier.
    Tick finishTick;     ///< Tick at which read data became available.
    bool forwarded;      ///< Served from the write queue, not the array.
};

/** Aggregated per-channel statistics. */
struct ChannelStats
{
    Counter reads;
    Counter writes;
    Counter rowHits;
    Counter rowMisses;
    Counter rowConflicts;
    Counter forwardedReads;
    Counter coalescedWrites;
    Counter refreshes;
    Counter busBusyTicks;
    Counter totalTicks;
    TimeWeighted queueOccupancy;
    Average readLatency;

    void reset();
};

/** One DDR4 channel with its own command/data bus and bank set. */
class Channel
{
  public:
    Channel(const DramOrg &org, const DramTiming &timing,
            unsigned queue_depth);

    /** True if the relevant queue can accept another request. */
    bool canEnqueue(bool is_write) const;

    /**
     * Enqueue a request whose address decodes to this channel.
     * Reads that hit the write queue complete via forwarding.
     * @return false if the queue is full (caller must retry).
     */
    bool enqueue(const DecodedAddr &dec, bool is_write, std::uint64_t tag,
                 Tick now);

    /** Advance one cycle: issue at most one command, retire data. */
    void tick(Tick now);

    /**
     * Advance a batch of cycles [now, now + cycles) in one call — the
     * batched-epoch fast path used when the coordinator proved no
     * cross-channel event (enqueue, completion delivery) can occur in
     * the window. State evolution is exactly `cycles` calls to tick().
     * @return The post-tick occupancy integral: sum over the window's
     *         cycles of occupancy() after each tick. All addends are
     *         small integers, so the sum is exact and order-free.
     */
    std::uint64_t tickWindow(Tick now, std::uint64_t cycles);

    /**
     * True when no read activity is pending: the read queue is empty
     * and no completion awaits draining. Queued writes may still drain
     * silently, so this — not occupancy() == 0 — is the channel-side
     * gate for the batched-epoch fast path.
     */
    bool readQuiescent() const
    {
        return readQueue_.empty() && completions_.empty();
    }

    /** Drain completions produced so far (appended in finish order). */
    std::vector<Completion> &completions() { return completions_; }

    /** True if the data bus carried a beat during the last tick. */
    bool dataBusActive() const { return busActiveNow_; }

    /** Outstanding requests in both queues. */
    std::size_t occupancy() const
    {
        return readQueue_.size() + writeQueue_.size();
    }

    ChannelStats &stats() { return stats_; }
    const ChannelStats &stats() const { return stats_; }

  private:
    struct Entry
    {
        DecodedAddr dec;
        std::uint64_t tag;
        Tick enqueueTick;
        unsigned flatBank; ///< Cached dec.flatBank(org_).
        bool hadActivate = false;
        bool hadConflict = false;
    };

    struct BusEvent
    {
        Tick tick;
        int delta;
        bool operator>(const BusEvent &o) const { return tick > o.tick; }
    };

    /** Pool-backed request queue: deque chunks recycle across requests. */
    using EntryQueue = std::deque<Entry, PoolAllocator<Entry>>;

    // Scheduling helpers; each issues at most one command and returns
    // true if a command went out this cycle.
    bool trySchedule(Tick now, EntryQueue &queue, bool is_write);
    bool tryColumn(Tick now, EntryQueue &queue, bool is_write);
    bool tryActivate(Tick now, EntryQueue &queue);
    bool tryPrecharge(Tick now, EntryQueue &queue, bool is_write);
    void handleRefresh(Tick now);

    bool casTimingOk(Tick now, const Entry &e, bool is_write) const;
    bool actTimingOk(Tick now, const Entry &e) const;
    bool rowWanted(std::uint64_t flat_bank, std::uint64_t row) const;

    /** rowWanted for a bank's currently open row: one array read. */
    bool openRowWanted(std::uint64_t flat_bank) const
    {
        return openRowWant_[flat_bank] > 0;
    }
    void recordCas(Tick now, Entry &e, bool is_write);
    void scheduleBusBeat(Tick start, Tick end);

    /** Key of the queued-request count per (flat bank, row). */
    static std::uint64_t rowKey(std::uint64_t flat_bank, std::uint64_t row)
    {
        return (row << 16) | flat_bank;
    }
    void trackEnqueue(const Entry &e);
    void trackDequeue(const Entry &e);

    /** Precharge a bank and reclassify its queued entries as
     * closed-bank demand. Every open->closed transition goes through
     * here so the scheduler-gate counters stay exact. */
    void closeRow(std::size_t flat_bank, Tick now);

    const DramOrg org_;
    const DramTiming timing_;
    const unsigned queueDepth_;

    /** Queued requests per (flat bank, row); exact rowWanted() lookup.
     * Flat map: this is probed once per queue scan step, the hottest
     * lookup in the DRAM model. Counts only — never iterated. */
    using RowWantMap = FlatMap<std::uint64_t, std::uint32_t>;

    std::vector<Bank> banks_;
    PoolResource pool_; ///< Backs the containers below; declared first.
    EntryQueue readQueue_;
    EntryQueue writeQueue_;
    RowWantMap rowWant_;
    /** Queued entries wanting each bank's open row (exact; see
     * rowWanted). Zero for closed banks, recomputed on ACT. */
    std::vector<std::uint32_t> openRowWant_;
    /** Queued entries per flat bank, regardless of row. */
    std::vector<std::uint32_t> bankWant_;
    std::vector<std::uint8_t> prechargeOk_; ///< tryPrecharge scratch.

    // Every queued entry is, at any instant, in exactly one scheduler
    // class: row-hit (its bank is open at its row), closed-bank (CAS
    // needs an ACT first), or open-row-mismatch (needs a PRE). The two
    // counters below track the first two classes across both queues;
    // the third is total-queued minus both. Each tryColumn/tryActivate/
    // tryPrecharge scan bails out in O(1) when its class is empty, which
    // is the common case on row-conflict-heavy ORAM traffic.
    std::uint64_t rowHitWant_ = 0;    ///< Entries in the row-hit class.
    std::uint64_t closedBankWant_ = 0; ///< Entries on closed banks.

    /**
     * Earliest tick the precharge sweep could succeed, memoized when a
     * sweep comes up empty with every candidate bank blocked purely on
     * tRAS/tRTP/tWR timing. Valid until any event that can change the
     * candidate set — enqueue, dequeue, ACT, precharge — which all reset
     * it to 0 (always sweep). Lets the per-tick scheduler skip the
     * bank-major sweep across multi-tick timing windows.
     */
    Tick preRetryAt_ = 0;

    /**
     * Per-queue analogue of preRetryAt_ for the CAS scan: earliest tick
     * any current row-hit entry of that queue could clear every CAS
     * gate (tRCD/tCCD/tWTR/data bus), memoized on a failed scan. The
     * gating state only pushes deadlines later between tracked events,
     * so the memo stays a valid lower bound until one resets it.
     */
    Tick casRetryRead_ = 0;
    Tick casRetryWrite_ = 0;

    /** Reset the scheduler-scan memos (queue or bank state changed). */
    void resetScanMemos()
    {
        preRetryAt_ = 0;
        casRetryRead_ = 0;
        casRetryWrite_ = 0;
    }
    std::vector<Completion> completions_;

    // Channel-level gating state.
    Tick busFreeAt_ = 0;            ///< Data bus reserved through here.
    Tick lastCas_ = 0;              ///< Last CAS issue tick.
    unsigned lastCasBankGroup_ = 0;
    bool lastCasValid_ = false;
    Tick lastWriteDataEnd_ = 0;     ///< For tWTR write->read gating.
    unsigned lastWriteBankGroup_ = 0;
    bool lastWriteValid_ = false;
    Tick lastAct_ = 0;
    unsigned lastActBankGroup_ = 0;
    bool lastActValid_ = false;
    std::deque<Tick, PoolAllocator<Tick>> actWindow_; ///< Last 4 ACTs (tFAW).

    // Refresh state.
    Tick nextRefresh_;
    bool refreshPending_ = false;

    // Write drain hysteresis.
    bool writeMode_ = false;
    unsigned drainHigh_;
    unsigned drainLow_;

    // Instantaneous data-bus activity tracking.
    std::priority_queue<BusEvent, std::vector<BusEvent>,
                        std::greater<BusEvent>> busEvents_;
    int activeTransfers_ = 0;
    bool busActiveNow_ = false;

    ChannelStats stats_;
};

} // namespace palermo

#endif // PALERMO_MEM_CHANNEL_HH
