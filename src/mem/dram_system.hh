/**
 * @file
 * Multi-channel DRAM system facade: routes requests to channels via the
 * address map, advances all channels per tick, aggregates statistics, and
 * hands read completions back to the ORAM controller.
 */

#ifndef PALERMO_MEM_DRAM_SYSTEM_HH
#define PALERMO_MEM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/channel.hh"
#include "mem/dram_timing.hh"

namespace palermo {

class WorkerPool;

/** Construction parameters for the outsourced DRAM (Table III). */
struct DramConfig
{
    DramOrg org;
    DramTiming timing = ddr4_3200();
    MapPolicy policy = MapPolicy::RoBaRaCoCh;
    unsigned queueDepth = 64;
};

/** Aggregated system-level DRAM statistics snapshot. */
struct DramSnapshot
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t forwardedReads = 0;
    std::uint64_t busBusyTicks = 0;
    std::uint64_t totalTicks = 0;
    double avgQueueOccupancy = 0.0;
    double avgReadLatency = 0.0;

    /** Fraction of classified column accesses that were row hits. */
    double rowHitRate() const;
    /** Fraction that were row-buffer conflicts. */
    double rowConflictRate() const;
    /** Data-bus utilization in [0, 1], averaged over channels. */
    double busUtilization() const;
};

/** The untrusted outsourced memory: N channels of DDR4. */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config);

    /** True if the owning channel's queue can accept this request. */
    bool canEnqueue(Addr addr, bool is_write) const;

    /**
     * Enqueue one 64B request. Tags identify completions for reads.
     * @return false when the channel queue is full.
     */
    bool enqueue(Addr addr, bool is_write, std::uint64_t tag);

    /** Advance one cycle across all channels. */
    void tick();

    /**
     * Advance one cycle with channel ticks sharded across the pool's
     * threads (channels are mutually independent within a cycle, so
     * the result is byte-identical to tick()). Falls back to the
     * serial loop when the pool is trivial, there is a single channel,
     * or every queue is empty (idle ticks are too cheap to shard).
     */
    void tickParallel(WorkerPool &pool);

    /**
     * Batched-epoch fast path: advance `cycles` cycles with one
     * barrier (or none, serially, when `pool` is null/trivial). Legal
     * only when the caller proved the window is cross-channel quiet —
     * readQuiescent() holds and nothing will be enqueued — since
     * channels advance through the whole window independently.
     * @return Sum over the window of post-tick occupancy() across all
     *         channels (exact: integer addends), so the caller can
     *         keep its time-weighted occupancy bit-identical to the
     *         per-cycle path.
     */
    std::uint64_t tickWindow(WorkerPool *pool, std::uint64_t cycles);

    /**
     * True when no read is queued in any channel and no completion is
     * pending delivery (channel outboxes and the internal pending list
     * are empty). Writes may still be draining; they produce no
     * observable event, so this is the DRAM-side batched-epoch gate.
     */
    bool readQuiescent() const;

    /** Current tick. */
    Tick now() const { return now_; }

    /**
     * Collect read completions that became visible by the current tick,
     * in finish order. The internal buffers are drained; the returned
     * reference is valid until the next drain.
     */
    const std::vector<Completion> &drainCompletions();

    /** True if any channel moved data during the last tick. */
    bool dataBusActive() const;

    /** Current total queued requests across channels. */
    std::size_t occupancy() const;

    /** Zero all statistics (warmup boundary); state is preserved. */
    void resetStats();

    /** Aggregate statistics across channels. */
    DramSnapshot snapshot() const;

    /** Peak bandwidth in bytes per tick across all channels. */
    double peakBytesPerTick() const;

    /** Peak bandwidth in GB/s. */
    double peakBandwidthGBps() const;

    const DramConfig &config() const { return config_; }
    const AddressMap &addressMap() const { return map_; }

  private:
    DramConfig config_;
    AddressMap map_;
    std::vector<std::unique_ptr<Channel>> channels_;
    Tick now_ = 0;
    std::vector<Completion> ready_;
    std::vector<Completion> pending_;
};

} // namespace palermo

#endif // PALERMO_MEM_DRAM_SYSTEM_HH
