/**
 * @file
 * Multi-channel DRAM system facade: routes requests to channels via the
 * address map, advances all channels per tick, aggregates statistics, and
 * hands read completions back to the ORAM controller.
 */

#ifndef PALERMO_MEM_DRAM_SYSTEM_HH
#define PALERMO_MEM_DRAM_SYSTEM_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/address_map.hh"
#include "mem/channel.hh"
#include "mem/dram_timing.hh"

namespace palermo {

/** Construction parameters for the outsourced DRAM (Table III). */
struct DramConfig
{
    DramOrg org;
    DramTiming timing = ddr4_3200();
    MapPolicy policy = MapPolicy::RoBaRaCoCh;
    unsigned queueDepth = 64;
};

/** Aggregated system-level DRAM statistics snapshot. */
struct DramSnapshot
{
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t rowConflicts = 0;
    std::uint64_t forwardedReads = 0;
    std::uint64_t busBusyTicks = 0;
    std::uint64_t totalTicks = 0;
    double avgQueueOccupancy = 0.0;
    double avgReadLatency = 0.0;

    /** Fraction of classified column accesses that were row hits. */
    double rowHitRate() const;
    /** Fraction that were row-buffer conflicts. */
    double rowConflictRate() const;
    /** Data-bus utilization in [0, 1], averaged over channels. */
    double busUtilization() const;
};

/** The untrusted outsourced memory: N channels of DDR4. */
class DramSystem
{
  public:
    explicit DramSystem(const DramConfig &config);

    /** True if the owning channel's queue can accept this request. */
    bool canEnqueue(Addr addr, bool is_write) const;

    /**
     * Enqueue one 64B request. Tags identify completions for reads.
     * @return false when the channel queue is full.
     */
    bool enqueue(Addr addr, bool is_write, std::uint64_t tag);

    /** Advance one cycle across all channels. */
    void tick();

    /** Current tick. */
    Tick now() const { return now_; }

    /**
     * Collect read completions that became visible by the current tick,
     * in finish order. The internal buffers are drained; the returned
     * reference is valid until the next drain.
     */
    const std::vector<Completion> &drainCompletions();

    /** True if any channel moved data during the last tick. */
    bool dataBusActive() const;

    /** Current total queued requests across channels. */
    std::size_t occupancy() const;

    /** Zero all statistics (warmup boundary); state is preserved. */
    void resetStats();

    /** Aggregate statistics across channels. */
    DramSnapshot snapshot() const;

    /** Peak bandwidth in bytes per tick across all channels. */
    double peakBytesPerTick() const;

    /** Peak bandwidth in GB/s. */
    double peakBandwidthGBps() const;

    const DramConfig &config() const { return config_; }
    const AddressMap &addressMap() const { return map_; }

  private:
    DramConfig config_;
    AddressMap map_;
    std::vector<std::unique_ptr<Channel>> channels_;
    Tick now_ = 0;
    std::vector<Completion> ready_;
    std::vector<Completion> pending_;
};

} // namespace palermo

#endif // PALERMO_MEM_DRAM_SYSTEM_HH
