/**
 * @file
 * DDR4-3200AA (and related speed bins) timing tables in 1.6 GHz
 * bus-clock cycles.
 */

#include "mem/dram_timing.hh"

namespace palermo {

const DramTiming &
ddr4_3200()
{
    static const DramTiming timing = {
        .name = "DDR4-3200AA",
        .tCL = 22,
        .tCWL = 16,
        .tRCD = 22,
        .tRP = 22,
        .tRAS = 52,
        .tRC = 74,
        .tBL = 4,
        .tCCD_S = 4,
        .tCCD_L = 8,
        .tRTP = 12,
        .tWR = 24,
        .tWTR_S = 4,
        .tWTR_L = 12,
        .tRRD_S = 8,
        .tRRD_L = 11,
        .tFAW = 34,
        .tREFI = 12480,
        .tRFC = 560,
        .clockGHz = 1.6,
    };
    return timing;
}

const DramTiming &
ddr4_2400()
{
    static const DramTiming timing = {
        .name = "DDR4-2400",
        .tCL = 17,
        .tCWL = 12,
        .tRCD = 17,
        .tRP = 17,
        .tRAS = 39,
        .tRC = 56,
        .tBL = 4,
        .tCCD_S = 4,
        .tCCD_L = 6,
        .tRTP = 9,
        .tWR = 18,
        .tWTR_S = 3,
        .tWTR_L = 9,
        .tRRD_S = 6,
        .tRRD_L = 8,
        .tFAW = 26,
        .tREFI = 9360,
        .tRFC = 420,
        .clockGHz = 1.2,
    };
    return timing;
}

} // namespace palermo
