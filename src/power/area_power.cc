/**
 * @file
 * Per-component 28nm area/power coefficients and floorplan
 * composition for the Fig. 15 estimate.
 */

#include "power/area_power.hh"

namespace palermo {

namespace {

// 28nm technology coefficients, calibrated against the paper's
// post-synthesis totals (Fig. 15: 5.78 mm^2, 2.14 W for the Table III
// floorplan). SRAM density from CACTI-style estimates; eDRAM ~2.5x
// denser; logic blocks sized per synthesized FSM + datapath.
constexpr double kSramMm2PerMB = 1.30;
constexpr double kEdramMm2PerMB = 0.17;
constexpr double kSramWPerMBGHz = 0.35;
constexpr double kEdramWPerMBGHz = 0.030;
constexpr double kPeLogicMm2 = 0.028;      // FSM + address datapath.
constexpr double kPeLogicWPerGHz = 0.008;
constexpr double kCryptoUnitMm2 = 0.075;   // AES-class pipeline.
constexpr double kCryptoUnitWPerGHz = 0.020;

double
toMB(std::uint64_t bytes)
{
    return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

} // namespace

double
AreaPowerEstimate::totalAreaMm2() const
{
    double total = 0.0;
    for (const auto &c : components)
        total += c.areaMm2;
    return total;
}

double
AreaPowerEstimate::totalPowerW() const
{
    double total = 0.0;
    for (const auto &c : components)
        total += c.powerW;
    return total;
}

AreaPowerEstimate
estimateController(const ControllerFloorplan &plan)
{
    AreaPowerEstimate est;
    const unsigned pes = plan.peRows * plan.peColumns;
    const double ghz = plan.clockGHz;

    const double pe_buffer_mb =
        toMB(static_cast<std::uint64_t>(pes) * plan.peBufferBytesPerPe);
    est.components.push_back({
        "PE data buffers",
        pe_buffer_mb * kSramMm2PerMB,
        pe_buffer_mb * kSramWPerMBGHz * ghz,
    });
    est.components.push_back({
        "PE control logic",
        pes * kPeLogicMm2,
        pes * kPeLogicWPerGHz * ghz,
    });
    const double treetop_mb = toMB(plan.treetopBytesTotal);
    est.components.push_back({
        "Tree-top caches",
        treetop_mb * kSramMm2PerMB,
        treetop_mb * kSramWPerMBGHz * ghz,
    });
    const double posmap_mb = toMB(plan.posmap3Bytes);
    est.components.push_back({
        "PosMap3 eDRAM",
        posmap_mb * kEdramMm2PerMB,
        posmap_mb * kEdramWPerMBGHz * ghz,
    });
    const double stash_mb = toMB(plan.stashBytesTotal);
    est.components.push_back({
        "Stashes",
        stash_mb * kSramMm2PerMB,
        stash_mb * kSramWPerMBGHz * ghz,
    });
    est.components.push_back({
        "Crypto units",
        plan.cryptoUnits * kCryptoUnitMm2,
        plan.cryptoUnits * kCryptoUnitWPerGHz * ghz,
    });
    return est;
}

} // namespace palermo
