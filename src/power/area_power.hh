/**
 * @file
 * Analytical area/power model of the Palermo ORAM controller (Fig. 15).
 *
 * The paper synthesizes SystemVerilog RTL with a commercial 28nm library
 * and uses CACTI for the SRAM macros; neither flow is available here
 * (DESIGN.md §1, substitution 18), so this model composes per-component
 * 28nm density/power coefficients — SRAM, eDRAM, and synthesized logic —
 * calibrated so the Table III configuration reproduces the paper's
 * totals (5.78 mm^2, 2.14 W at 1.6 GHz). The value of the model is its
 * scaling behavior: benches sweep PE count and cache capacities.
 */

#ifndef PALERMO_POWER_AREA_POWER_HH
#define PALERMO_POWER_AREA_POWER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace palermo {

/** One hardware component's estimate. */
struct ComponentEstimate
{
    std::string name;
    double areaMm2;
    double powerW;
};

/** Palermo controller structural parameters (Table III defaults). */
struct ControllerFloorplan
{
    unsigned peRows = 3;
    unsigned peColumns = 8;
    std::uint64_t peBufferBytesPerPe = 24 * 1024;
    std::uint64_t treetopBytesTotal = 3 * 256 * 1024; ///< 24 x 32 KB.
    std::uint64_t posmap3Bytes = 16ull * 1024 * 1024; ///< 16 x 1 MB eDRAM.
    std::uint64_t stashBytesTotal = 3 * 16 * 1024;    ///< 48 KB SRAM.
    unsigned cryptoUnits = 8;
    double clockGHz = 1.6;
};

/** Full-controller estimate with component breakdown. */
struct AreaPowerEstimate
{
    std::vector<ComponentEstimate> components;
    double totalAreaMm2() const;
    double totalPowerW() const;
};

/** Evaluate the model for a floorplan. */
AreaPowerEstimate estimateController(const ControllerFloorplan &plan);

} // namespace palermo

#endif // PALERMO_POWER_AREA_POWER_HH
