/**
 * @file
 * The scenario engine: N declared traffic sources, one shared service.
 *
 * Open-loop tenants are expanded into a single merged arrival schedule
 * before the service is even constructed — every arrival instant, key,
 * and write flag is a pure function of (spec, tenant index), so the
 * merged schedule is byte-deterministic and, because the service itself
 * is sim-thread-invisible, so is every output byte across --sim-threads
 * values. Closed-loop tenants ride the completion sink: each response
 * re-issues that tenant's next request, the classic think-time-zero
 * discipline, attributed per tenant.
 *
 * Interference is measured against isolation: after the shared run,
 * each tenant is re-run alone in an identical service (same tenant
 * count, hence the same slice geometry and key mapping — the other
 * tenants are merely silent), and slowdown = shared / isolated for
 * mean and p99 latency. Jain's index condenses achieved throughput
 * and slowdown into scalar fairness numbers.
 *
 * Security runs on the merged run's whole history: the data-tree leaf
 * sequence a bus observer would record (dummies included, warmup
 * included) goes through the chi-square uniformity gate and the lag-1
 * correlation probe, and the Equation-1 timing attacker is fit to the
 * per-request latency/stash samples — the single-stream Fig. 9
 * argument, re-checked on the interleaved multi-tenant trace.
 */

#ifndef PALERMO_SCENARIO_ENGINE_HH
#define PALERMO_SCENARIO_ENGINE_HH

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "scenario/fairness.hh"
#include "scenario/scenario.hh"
#include "security/mutual_info.hh"
#include "security/uniformity.hh"
#include "service/kv_service.hh"
#include "sim/sweep.hh"

namespace palermo {

/** How to run a scenario (driver-level knobs, not part of the spec). */
struct ScenarioRunOptions
{
    unsigned simThreads = 1;
    bool isolation = true; ///< Run per-tenant isolation baselines.
    bool security = true;  ///< Record the leaf trace, run the gates.
};

/** One tenant's outcome in the shared run (plus its iso baseline). */
struct TenantOutcome
{
    std::string name;
    bool closedLoop = false;
    ServiceScopeSnapshot scope; ///< Measured-window counters/latency.

    double demandPerKilocycle = 0.0;   ///< Offered rate, measured window.
    double achievedPerKilocycle = 0.0; ///< Completion rate.

    // Interference vs the tenant running alone (when isolation ran).
    bool isolated = false;
    double isolatedMean = 0.0;
    double isolatedP99 = 0.0;
    double slowdownMean = 1.0;
    double slowdownP99 = 1.0;
};

/** Security-gate results over the merged attacker-visible sequence. */
struct ScenarioSecurity
{
    bool evaluated = false;
    std::uint64_t leafObservations = 0;
    ChiSquareResult chiSquare{0.0, 0, 0.0, true};
    double serialCorrelation = 0.0;
    AttackerModel attacker{0.5, 0.5, 0.0, 0, 0};
    double mutualInformationBits = 0.0;
    bool miEvaluated = false; ///< Enough stash/tree samples to fit.

    /** Correlation magnitude considered remap-independent. */
    static constexpr double kCorrelationBound = 0.1;
    /** Equation-1 leakage considered timing-safe (paper Fig. 9). */
    static constexpr double kMiBound = 0.1;

    /**
     * Accepted lag-1 correlation magnitude for this run. A truly
     * random leaf sequence has lag-1 autocorrelation ~ N(0, 1/n), so
     * short runs widen the gate to three standard errors; the fixed
     * bound takes over once n makes it the stricter test.
     */
    double correlationBound() const
    {
        if (leafObservations < 2)
            return kCorrelationBound;
        const double three_se =
            3.0 / std::sqrt(static_cast<double>(leafObservations));
        return three_se > kCorrelationBound ? three_se
                                            : kCorrelationBound;
    }

    /** All evaluated gates hold. */
    bool pass() const
    {
        if (!evaluated)
            return true;
        if (!chiSquare.uniform)
            return false;
        const double bound = correlationBound();
        if (serialCorrelation > bound || serialCorrelation < -bound)
            return false;
        if (miEvaluated && mutualInformationBits > kMiBound)
            return false;
        return true;
    }
};

/** One isolation baseline run (rendered as its own JSON point). */
struct IsolationRecord
{
    std::string tenant;
    RunRecord base;
    ServiceSnapshot service;
};

/** Everything one scenario run produces. */
struct ScenarioOutcome
{
    ScenarioSpec spec;
    RunRecord base;          ///< Shared run: config + sim metrics.
    ServiceSnapshot service; ///< Shared run: client-visible view.
    std::vector<TenantOutcome> tenants;
    std::vector<IsolationRecord> isolationRuns;

    double jainAchieved = 1.0; ///< Jain over achieved rates.
    double jainSlowdown = 1.0; ///< Jain over p99 slowdowns.
    ScenarioSecurity security;
};

/**
 * Run a scenario to completion. Deterministic in (spec, options).
 * Returns false (with *error) when a tenant's trace file cannot be
 * loaded; the simulation itself cannot fail.
 */
bool runScenario(const ScenarioSpec &spec,
                 const ScenarioRunOptions &options, ScenarioOutcome *out,
                 std::string *error);

/**
 * Scenario-level sanity gate: per-tenant accounting closes (accepted ==
 * completed after the drain, tenant sums match the global scope),
 * quantiles are ordered, the stash behaved, and the security gates
 * hold when they ran. Appends one line per problem; true when clean.
 */
bool scenarioSanityCheck(const ScenarioOutcome &outcome,
                         std::vector<std::string> *problems);

} // namespace palermo

#endif // PALERMO_SCENARIO_ENGINE_HH
