/**
 * @file
 * Scenario parsing, validation, and canonical rendering.
 */

#include "scenario/scenario.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "sim/json_value.hh"
#include "sim/metrics_json.hh"

namespace palermo {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Largest double that still holds every integer exactly. */
constexpr double kMaxExactInteger = 9007199254740992.0; // 2^53

bool
toUnsigned(const JsonValue &value, std::uint64_t *out)
{
    if (!value.isNumber())
        return false;
    const double number = value.number();
    if (!(number >= 0.0) || number > kMaxExactInteger
        || number != std::floor(number))
        return false;
    *out = static_cast<std::uint64_t>(number);
    return true;
}

bool
toFraction(const JsonValue &value, double *out)
{
    if (!value.isNumber())
        return false;
    const double number = value.number();
    if (!(number >= 0.0) || !(number <= 1.0))
        return false;
    *out = number;
    return true;
}

/** Every member key must appear in the allowed list. */
bool
checkKeys(const JsonValue &object, const char *const *allowed,
          std::size_t count, const std::string &where,
          std::string *error)
{
    for (const auto &[key, value] : object.members()) {
        (void)value;
        bool known = false;
        for (std::size_t i = 0; i < count; ++i)
            known = known || key == allowed[i];
        if (!known)
            return fail(error, where + ": unknown key '" + key + "'");
    }
    return true;
}

bool
parseRateCurve(const JsonValue &value, const std::string &where,
               std::vector<RateCurve::Segment> *out, std::string *error)
{
    if (!value.isArray() || value.array().empty())
        return fail(error, where + ": needs a non-empty array");
    bool any_positive = false;
    for (std::size_t i = 0; i < value.array().size(); ++i) {
        const JsonValue &entry = value.array()[i];
        const std::string at = where + "[" + std::to_string(i) + "]";
        static const char *const keys[] = {"until", "rate"};
        if (!entry.isObject())
            return fail(error, at + ": needs an object");
        if (!checkKeys(entry, keys, 2, at, error))
            return false;
        RateCurve::Segment segment{kTickNever, 0.0};
        const bool last = i + 1 == value.array().size();
        if (const JsonValue *until = entry.find("until")) {
            if (last)
                return fail(error, at + ": the final segment is "
                                       "open-ended (omit 'until')");
            if (!toUnsigned(*until, &segment.untilCycle)
                || segment.untilCycle == 0)
                return fail(error,
                            at + ".until: needs a positive integer");
            if (!out->empty()
                && segment.untilCycle <= out->back().untilCycle)
                return fail(error,
                            at + ".until: must increase strictly");
        } else if (!last) {
            return fail(error,
                        at + ": only the final segment omits 'until'");
        }
        const JsonValue *rate = entry.find("rate");
        if (!rate || !rate->isNumber() || !(rate->number() >= 0.0))
            return fail(error, at + ".rate: needs a number >= 0");
        segment.ratePerKilocycle = rate->number();
        any_positive = any_positive || segment.ratePerKilocycle > 0.0;
        out->push_back(segment);
    }
    if (!any_positive)
        return fail(error, where + ": every segment is silent");
    return true;
}

bool
parseTenant(const JsonValue &value, const std::string &base_dir,
            std::size_t index, TenantSpec *out, std::string *error)
{
    const std::string where = "tenants[" + std::to_string(index) + "]";
    if (!value.isObject())
        return fail(error, where + ": needs an object");
    static const char *const keys[] = {
        "name",       "trace",        "mode",          "arrival",
        "rate",       "rate_curve",   "concurrency",   "burst",
        "dist",       "zipf_alpha",   "write_fraction", "scan_fraction",
        "scan_length",
    };
    if (!checkKeys(value, keys, sizeof(keys) / sizeof(keys[0]), where,
                   error))
        return false;

    TenantSpec tenant;
    const JsonValue *name = value.find("name");
    if (!name || !name->isString() || name->string().empty())
        return fail(error, where + ".name: needs a non-empty string");
    tenant.name = name->string();

    if (const JsonValue *trace = value.find("trace")) {
        if (!trace->isString() || trace->string().empty())
            return fail(error,
                        where + ".trace: needs a non-empty path");
        tenant.source = SourceKind::Trace;
        tenant.tracePath = trace->string();
        tenant.resolvedTracePath =
            (base_dir.empty() || trace->string().front() == '/')
                ? trace->string()
                : base_dir + "/" + trace->string();
    }

    if (const JsonValue *mode = value.find("mode")) {
        if (!mode->isString()
            || (mode->string() != "open" && mode->string() != "closed"))
            return fail(error, where + ".mode: needs open|closed");
        tenant.closedLoop = mode->string() == "closed";
    }

    const bool open = !tenant.closedLoop;
    if (const JsonValue *arrival = value.find("arrival")) {
        if (!open)
            return fail(error, where + ".arrival: closed-loop sources "
                                       "have no arrival process");
        if (!arrival->isString()
            || !arrivalProcessFromName(arrival->string(),
                                       &tenant.process))
            return fail(error, where + ".arrival: needs poisson|fixed");
    }
    const JsonValue *rate = value.find("rate");
    const JsonValue *curve = value.find("rate_curve");
    if (!open && (rate || curve))
        return fail(error, where + ": closed-loop sources take a "
                                   "concurrency, not a rate");
    if (rate && curve)
        return fail(error,
                    where + ": give 'rate' or 'rate_curve', not both");
    if (rate) {
        if (!rate->isNumber() || !(rate->number() > 0.0))
            return fail(error, where + ".rate: needs a number > 0");
        tenant.rate = rate->number();
    }
    if (curve
        && !parseRateCurve(*curve, where + ".rate_curve",
                           &tenant.rateCurve, error))
        return false;

    if (const JsonValue *concurrency = value.find("concurrency")) {
        if (open)
            return fail(error, where + ".concurrency: open-loop "
                                       "sources take a rate");
        std::uint64_t parsed = 0;
        if (!toUnsigned(*concurrency, &parsed) || parsed == 0
            || parsed > 1u << 20)
            return fail(error,
                        where + ".concurrency: needs a positive count");
        tenant.concurrency = static_cast<unsigned>(parsed);
    }

    if (const JsonValue *burst = value.find("burst")) {
        if (!open)
            return fail(error, where + ".burst: closed-loop sources "
                                       "cannot burst");
        static const char *const burst_keys[] = {"on", "off"};
        if (!burst->isObject())
            return fail(error, where + ".burst: needs an object");
        if (!checkKeys(*burst, burst_keys, 2, where + ".burst", error))
            return false;
        const JsonValue *on = burst->find("on");
        const JsonValue *off = burst->find("off");
        if (!on || !toUnsigned(*on, &tenant.burstOnCycles)
            || tenant.burstOnCycles == 0)
            return fail(error,
                        where + ".burst.on: needs a positive cycle "
                                "count");
        if (!off || !toUnsigned(*off, &tenant.burstOffCycles)
            || tenant.burstOffCycles == 0)
            return fail(error,
                        where + ".burst.off: needs a positive cycle "
                                "count (omit burst for always-on)");
    }

    const bool synthetic = tenant.source == SourceKind::Synthetic;
    if (const JsonValue *dist = value.find("dist")) {
        if (!synthetic)
            return fail(error, where + ".dist: trace sources take "
                                       "their keys from the trace");
        if (!dist->isString()
            || !keyDistFromName(dist->string(), &tenant.dist))
            return fail(error, where + ".dist: needs zipf|uniform");
    }
    if (const JsonValue *alpha = value.find("zipf_alpha")) {
        if (!synthetic || tenant.dist != KeyDist::Zipf)
            return fail(error, where + ".zipf_alpha: only Zipf "
                                       "synthetic sources take a skew");
        if (!alpha->isNumber() || !(alpha->number() >= 0.0))
            return fail(error,
                        where + ".zipf_alpha: needs a number >= 0");
        tenant.zipfAlpha = alpha->number();
    }
    if (const JsonValue *write = value.find("write_fraction")) {
        if (!synthetic)
            return fail(error, where + ".write_fraction: trace sources "
                                       "replay their own read/write mix");
        if (!toFraction(*write, &tenant.writeFraction))
            return fail(error,
                        where + ".write_fraction: needs 0 <= F <= 1");
    }
    if (const JsonValue *scan = value.find("scan_fraction")) {
        if (!synthetic)
            return fail(error, where + ".scan_fraction: trace sources "
                                       "replay their own pattern");
        if (!toFraction(*scan, &tenant.scanFraction))
            return fail(error,
                        where + ".scan_fraction: needs 0 <= F <= 1");
    }
    if (const JsonValue *length = value.find("scan_length")) {
        if (!synthetic || !value.find("scan_fraction"))
            return fail(error, where + ".scan_length: needs a "
                                       "scan_fraction alongside");
        if (!toUnsigned(*length, &tenant.scanLength)
            || tenant.scanLength < 2)
            return fail(error,
                        where + ".scan_length: needs an integer >= 2");
    }
    if (tenant.scanFraction > 0.0 && !value.find("scan_length"))
        tenant.scanLength = 8; // Documented default.

    *out = tenant;
    return true;
}

} // namespace

const char *
sourceKindName(SourceKind kind)
{
    switch (kind) {
      case SourceKind::Synthetic: return "synthetic";
      case SourceKind::Trace: return "trace";
    }
    return "synthetic";
}

bool
parseScenario(const std::string &text, const std::string &base_dir,
              ScenarioSpec *out, std::string *error)
{
    JsonValue document;
    if (!JsonValue::parse(text, &document, error))
        return false;
    if (!document.isObject())
        return fail(error, "scenario: top level must be an object");
    static const char *const keys[] = {
        "name",          "protocol",       "blocks",
        "seed",          "duration",       "warmup_completions",
        "queue_capacity", "queue_policy",  "session_depth",
        "tenants",
    };
    if (!checkKeys(document, keys, sizeof(keys) / sizeof(keys[0]),
                   "scenario", error))
        return false;

    ScenarioSpec spec;
    const JsonValue *name = document.find("name");
    if (!name || !name->isString() || name->string().empty())
        return fail(error, "scenario.name: needs a non-empty string");
    spec.name = name->string();

    if (const JsonValue *protocol = document.find("protocol")) {
        if (!protocol->isString()
            || !protocolFromName(protocol->string(), &spec.protocol))
            return fail(error, "scenario.protocol: unknown protocol '"
                                   + (protocol->isString()
                                          ? protocol->string()
                                          : std::string("?"))
                                   + "'");
    }
    if (const JsonValue *blocks = document.find("blocks")) {
        if (!toUnsigned(*blocks, &spec.blocks) || spec.blocks == 0)
            return fail(error,
                        "scenario.blocks: needs a positive integer");
    }
    if (const JsonValue *seed = document.find("seed")) {
        if (!toUnsigned(*seed, &spec.seed))
            return fail(error,
                        "scenario.seed: needs an unsigned integer");
    }
    if (const JsonValue *duration = document.find("duration")) {
        if (!toUnsigned(*duration, &spec.duration)
            || spec.duration == 0)
            return fail(error,
                        "scenario.duration: needs a positive cycle "
                        "count");
    }
    if (const JsonValue *warmup = document.find("warmup_completions")) {
        if (!toUnsigned(*warmup, &spec.warmupCompletions))
            return fail(error, "scenario.warmup_completions: needs an "
                               "unsigned integer");
    }
    if (const JsonValue *capacity = document.find("queue_capacity")) {
        if (!toUnsigned(*capacity, &spec.queueCapacity)
            || spec.queueCapacity == 0)
            return fail(error, "scenario.queue_capacity: needs a "
                               "positive integer");
    }
    if (const JsonValue *policy = document.find("queue_policy")) {
        if (!policy->isString()
            || !queuePolicyFromName(policy->string(),
                                    &spec.queuePolicy))
            return fail(error,
                        "scenario.queue_policy: needs reject|block");
    }
    if (const JsonValue *depth = document.find("session_depth")) {
        if (!toUnsigned(*depth, &spec.sessionDepth)
            || spec.sessionDepth == 0)
            return fail(error, "scenario.session_depth: needs a "
                               "positive integer");
    }

    const JsonValue *tenants = document.find("tenants");
    if (!tenants || !tenants->isArray() || tenants->array().empty())
        return fail(error,
                    "scenario.tenants: needs a non-empty array");
    for (std::size_t i = 0; i < tenants->array().size(); ++i) {
        TenantSpec tenant;
        if (!parseTenant(tenants->array()[i], base_dir, i, &tenant,
                         error))
            return false;
        for (const TenantSpec &existing : spec.tenants)
            if (existing.name == tenant.name)
                return fail(error, "tenants[" + std::to_string(i)
                                       + "].name: duplicate tenant '"
                                       + tenant.name + "'");
        spec.tenants.push_back(std::move(tenant));
    }

    *out = std::move(spec);
    return true;
}

bool
loadScenarioFile(const std::string &path, ScenarioSpec *out,
                 std::string *error)
{
    std::ifstream in(path);
    if (!in)
        return fail(error, "cannot open scenario file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    const std::size_t slash = path.find_last_of('/');
    const std::string base_dir =
        slash == std::string::npos ? std::string() : path.substr(0, slash);
    if (!parseScenario(text.str(), base_dir, out, error)) {
        if (error)
            *error = path + ": " + *error;
        return false;
    }
    return true;
}

std::string
writeScenario(const ScenarioSpec &spec)
{
    JsonWriter w;
    w.beginObject();
    w.field("name", spec.name);
    w.field("protocol", protocolShortName(spec.protocol));
    if (spec.blocks)
        w.field("blocks", spec.blocks);
    w.field("seed", spec.seed);
    w.field("duration", spec.duration);
    w.field("warmup_completions", spec.warmupCompletions);
    w.field("queue_capacity", spec.queueCapacity);
    w.field("queue_policy", queuePolicyName(spec.queuePolicy));
    w.field("session_depth", spec.sessionDepth);
    w.key("tenants").beginArray();
    for (const TenantSpec &tenant : spec.tenants) {
        w.beginObject();
        w.field("name", tenant.name);
        if (tenant.source == SourceKind::Trace)
            w.field("trace", tenant.tracePath);
        w.field("mode", tenant.closedLoop ? "closed" : "open");
        if (tenant.closedLoop) {
            w.field("concurrency", tenant.concurrency);
        } else {
            w.field("arrival", arrivalProcessName(tenant.process));
            if (tenant.rateCurve.empty()) {
                w.field("rate", tenant.rate);
            } else {
                w.key("rate_curve").beginArray();
                for (const RateCurve::Segment &segment :
                     tenant.rateCurve) {
                    w.beginObject();
                    if (segment.untilCycle != kTickNever)
                        w.field("until", segment.untilCycle);
                    w.field("rate", segment.ratePerKilocycle);
                    w.endObject();
                }
                w.endArray();
            }
            if (tenant.burstOffCycles) {
                w.key("burst").beginObject();
                w.field("on", tenant.burstOnCycles);
                w.field("off", tenant.burstOffCycles);
                w.endObject();
            }
        }
        if (tenant.source == SourceKind::Synthetic) {
            w.field("dist", keyDistName(tenant.dist));
            if (tenant.dist == KeyDist::Zipf)
                w.field("zipf_alpha", tenant.zipfAlpha);
            if (tenant.scanFraction > 0.0) {
                w.field("scan_fraction", tenant.scanFraction);
                w.field("scan_length", tenant.scanLength);
            }
            w.field("write_fraction", tenant.writeFraction);
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    std::string text = w.str();
    text.push_back('\n');
    return text;
}

} // namespace palermo
