/**
 * @file
 * Declarative multi-tenant scenario schema.
 *
 * A scenario file is a JSON description of N traffic sources sharing
 * one ObliviousKvService: each tenant declares its arrival discipline
 * (open-loop Poisson/fixed at a rate or piecewise rate curve, with
 * optional on/off bursts — or closed-loop at a concurrency), its key
 * population (Zipf/uniform point lookups with an optional sequential
 * scan mix, or a replayed trace file), and its read/write mix. The
 * parser is strict — unknown keys, wrong types, and contradictory
 * combinations (a closed-loop rate curve, a Zipf trace) are errors
 * with a field path in the message — because a silently ignored knob
 * in an experiment spec produces a wrong paper figure, not a crash.
 *
 * writeScenario() renders the canonical form: parse-then-write is
 * idempotent (byte-stable), which is what the round-trip test pins.
 */

#ifndef PALERMO_SCENARIO_SCENARIO_HH
#define PALERMO_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/arrival.hh"
#include "service/request_queue.hh"
#include "sim/system_config.hh"

namespace palermo {

/** Where a tenant's requests come from. */
enum class SourceKind
{
    Synthetic, ///< Sampled keys (Zipf/uniform, optional scans).
    Trace,     ///< Replayed from a trace file, paced by the arrivals.
};

/** One tenant's traffic shape. */
struct TenantSpec
{
    std::string name;

    SourceKind source = SourceKind::Synthetic;
    std::string tracePath;         ///< As written in the file.
    std::string resolvedTracePath; ///< Relative to the scenario file.

    /** Open loop fires at a rate; closed loop holds a concurrency. */
    bool closedLoop = false;
    ArrivalProcess process = ArrivalProcess::Poisson;
    double rate = 1.0; ///< Requests per kilocycle (open loop).
    /** Piecewise rate (open loop); empty means constant `rate`. */
    std::vector<RateCurve::Segment> rateCurve;
    unsigned concurrency = 4; ///< Outstanding requests (closed loop).

    /** On/off gating (open loop); offCycles == 0 means always on. */
    std::uint64_t burstOnCycles = 0;
    std::uint64_t burstOffCycles = 0;

    KeyDist dist = KeyDist::Zipf;
    double zipfAlpha = 0.99;
    double writeFraction = 0.0;

    /** Fraction of arrivals that start a sequential scan instead of a
     * point lookup; the next scanLength-1 arrivals continue it. */
    double scanFraction = 0.0;
    std::uint64_t scanLength = 8;

    /** The rate curve in effect (constant `rate` when none given). */
    RateCurve curve() const
    {
        return rateCurve.empty() ? RateCurve::constant(rate)
                                 : RateCurve(rateCurve);
    }
};

/** One full scenario: the shared service plus its tenants. */
struct ScenarioSpec
{
    std::string name;
    ProtocolKind protocol = ProtocolKind::Palermo;
    std::uint64_t blocks = 0; ///< 0 keeps the protocol default.
    std::uint64_t seed = 1;
    /** Cycles of arrival generation (accepted work still drains). */
    std::uint64_t duration = 100000;
    /** Completions before the measured window opens. */
    std::uint64_t warmupCompletions = 0;

    std::uint64_t queueCapacity = 64;
    QueuePolicy queuePolicy = QueuePolicy::Reject;
    std::uint64_t sessionDepth = 8;

    std::vector<TenantSpec> tenants;
};

/**
 * Parse a scenario document. @p base_dir anchors relative trace paths
 * (pass the scenario file's directory). On failure returns false and
 * fills *error with a field-path diagnostic.
 */
bool parseScenario(const std::string &text, const std::string &base_dir,
                   ScenarioSpec *out, std::string *error);

/** Read and parse a scenario file (trace paths resolve beside it). */
bool loadScenarioFile(const std::string &path, ScenarioSpec *out,
                      std::string *error);

/** Render the canonical JSON form (ends with a newline). */
std::string writeScenario(const ScenarioSpec &spec);

const char *sourceKindName(SourceKind kind);

} // namespace palermo

#endif // PALERMO_SCENARIO_SCENARIO_HH
