/**
 * @file
 * Arrival-process and key-sampler implementations.
 */

#include "scenario/arrival.hh"

#include <cmath>

#include "common/log.hh"

namespace palermo {

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
      case ArrivalProcess::Poisson: return "poisson";
      case ArrivalProcess::Fixed: return "fixed";
    }
    return "poisson";
}

bool
arrivalProcessFromName(const std::string &name, ArrivalProcess *process)
{
    if (name == "poisson")
        *process = ArrivalProcess::Poisson;
    else if (name == "fixed")
        *process = ArrivalProcess::Fixed;
    else
        return false;
    return true;
}

const char *
keyDistName(KeyDist dist)
{
    switch (dist) {
      case KeyDist::Zipf: return "zipf";
      case KeyDist::Uniform: return "uniform";
    }
    return "zipf";
}

bool
keyDistFromName(const std::string &name, KeyDist *dist)
{
    if (name == "zipf")
        *dist = KeyDist::Zipf;
    else if (name == "uniform")
        *dist = KeyDist::Uniform;
    else
        return false;
    return true;
}

double
arrivalGap(ArrivalProcess process, double mean_gap, Rng &rng)
{
    // Fixed draws nothing: a paced stream and a Poisson stream with the
    // same seed must not share a random sequence prefix.
    if (process == ArrivalProcess::Fixed)
        return mean_gap;
    return -std::log(1.0 - rng.uniform()) * mean_gap;
}

TenantKeySampler::TenantKeySampler(KeyDist dist, double zipf_alpha,
                                   unsigned tenants,
                                   std::uint64_t slice_size,
                                   std::uint64_t seed)
    : dist_(dist), sliceSize_(slice_size),
      rng_(mix64(seed ^ 0x6b657964726177ull))
{
    palermo_assert(slice_size > 0, "key sampler needs a non-empty slice");
    if (dist_ == KeyDist::Zipf) {
        zipf_.reserve(tenants);
        for (unsigned t = 0; t < tenants; ++t)
            zipf_.emplace_back(slice_size, zipf_alpha,
                               mix64(seed ^ (0x5a49u + t)));
    }
}

std::uint64_t
TenantKeySampler::draw(unsigned tenant)
{
    if (dist_ == KeyDist::Zipf)
        return zipf_[tenant].sample();
    return rng_.range(sliceSize_);
}

RateCurve::RateCurve(std::vector<Segment> segments)
    : segments_(std::move(segments))
{
    palermo_assert(!segments_.empty(),
                   "a rate curve needs at least one segment");
}

RateCurve
RateCurve::constant(double rate_per_kilocycle)
{
    return RateCurve({Segment{kTickNever, rate_per_kilocycle}});
}

double
RateCurve::rateAt(double t) const
{
    for (const Segment &segment : segments_) {
        if (t < static_cast<double>(segment.untilCycle))
            return segment.ratePerKilocycle;
    }
    return segments_.back().ratePerKilocycle;
}

double
RateCurve::nextArrival(double t, double u) const
{
    double start = t;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
        const Segment &segment = segments_[i];
        const double end = static_cast<double>(segment.untilCycle);
        if (end <= start && i + 1 < segments_.size())
            continue;
        const double density = segment.ratePerKilocycle / 1000.0;
        const bool last = i + 1 == segments_.size();
        if (last) {
            // The final segment holds forever: either it absorbs the
            // remaining mass or no arrival ever happens.
            if (density <= 0.0)
                return -1.0;
            return start + u / density;
        }
        const double capacity = density * (end - start);
        if (u < capacity)
            return start + u / density;
        u -= capacity;
        start = end;
    }
    return -1.0; // Unreachable: the last segment always returns.
}

double
BurstPattern::wallTime(double active) const
{
    if (alwaysOn())
        return active;
    palermo_assert(on_ > 0, "bursting source needs a positive on-window");
    const double on = static_cast<double>(on_);
    const double period = on + static_cast<double>(off_);
    const double bursts = std::floor(active / on);
    const double remainder = active - bursts * on;
    return bursts * period + remainder;
}

} // namespace palermo
