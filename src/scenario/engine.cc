/**
 * @file
 * Scenario execution: arrival expansion, the merged drive loop,
 * isolation baselines, and the fairness/security condensation.
 */

#include "scenario/engine.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/log.hh"
#include "sim/protocol_registry.hh"
#include "sim/trace_file.hh"

namespace palermo {

namespace {

/** One pre-expanded open-loop arrival, ready to merge. */
struct MergedArrival
{
    Tick due;
    std::uint32_t tenant;
    std::uint64_t key;
    bool write;
    std::uint64_t value = 0; ///< Payload: merged-schedule position.
};

/** A re-issue a closed-loop client owes once the queue has room. */
struct OwedIssue
{
    std::uint32_t tenant;
    Tick arrival;
};

/** Per-tenant RNG/seed derivation: a pure function of (spec, index),
 * identical between the shared run and that tenant's isolation run. */
std::uint64_t
tenantSeed(const ScenarioSpec &spec, std::size_t index)
{
    return mix64(spec.seed ^ (0x7363656e61ull + index));
}

/** Cyclic reader over a tenant's trace (the trace is its key stream). */
struct TraceCursor
{
    const std::vector<FrontendRequest> *trace = nullptr;
    std::size_t next = 0;

    FrontendRequest
    advance()
    {
        const FrontendRequest request = (*trace)[next];
        next = (next + 1) % trace->size();
        return request;
    }
};

/** Live state of one closed-loop source during the drive loop. */
struct ClosedSource
{
    std::uint32_t tenant;
    const TenantSpec *spec;
    Rng rng;
    TenantKeySampler keys;
    TraceCursor cursor; ///< Only bound for trace sources.
    std::uint64_t issued = 0;
};

/**
 * Expand one open-loop tenant's full arrival schedule: rate-curve
 * inversion on the active-time clock, burst gating back onto the wall
 * clock, scan-run key generation. Appends to *out in time order.
 */
void
expandOpenTenant(const ScenarioSpec &spec, std::size_t index,
                 std::uint64_t slice_size, const TraceCursor &trace,
                 std::vector<MergedArrival> *out)
{
    const TenantSpec &tenant = spec.tenants[index];
    const std::uint64_t seed = tenantSeed(spec, index);
    Rng rng(mix64(seed ^ 0x617272697665ull));
    TenantKeySampler keys(tenant.dist, tenant.zipfAlpha, 1, slice_size,
                          seed);
    const RateCurve curve = tenant.curve();
    const BurstPattern burst(tenant.burstOnCycles,
                             tenant.burstOffCycles);
    TraceCursor cursor = trace;

    double active = 0.0;
    std::uint64_t scan_left = 0;
    std::uint64_t scan_key = 0;
    for (;;) {
        // One unit of integrated rate per arrival: exponential for
        // Poisson, exactly 1 for fixed pacing (no randomness drawn).
        const double u = tenant.process == ArrivalProcess::Fixed
            ? 1.0
            : -std::log(1.0 - rng.uniform());
        const double next = curve.nextArrival(active, u);
        if (next < 0.0)
            break; // The curve went silent for good.
        active = next;
        const double wall = burst.wallTime(active);
        if (wall >= static_cast<double>(spec.duration))
            break;

        MergedArrival arrival;
        arrival.due = static_cast<Tick>(wall);
        arrival.tenant = static_cast<std::uint32_t>(index);
        if (tenant.source == SourceKind::Trace) {
            const FrontendRequest request = cursor.advance();
            arrival.key = request.pa % slice_size;
            arrival.write = request.write;
        } else {
            if (scan_left > 0) {
                scan_key = (scan_key + 1) % slice_size;
                arrival.key = scan_key;
                --scan_left;
            } else {
                arrival.key = keys.draw(0);
                if (tenant.scanFraction > 0.0
                    && rng.chance(tenant.scanFraction)) {
                    scan_key = arrival.key;
                    scan_left = tenant.scanLength - 1;
                }
            }
            arrival.write = rng.chance(tenant.writeFraction);
        }
        out->push_back(arrival);
    }
}

/** Next request of a closed-loop client (think time zero). */
MergedArrival
nextClosedRequest(ClosedSource &source)
{
    MergedArrival request;
    request.due = 0; // Caller stamps the arrival tick.
    request.tenant = source.tenant;
    if (source.spec->source == SourceKind::Trace) {
        const FrontendRequest entry = source.cursor.advance();
        request.key = entry.pa % source.keys.sliceSize();
        request.write = entry.write;
    } else {
        request.key = source.keys.draw(0);
        request.write = source.rng.chance(source.spec->writeFraction);
    }
    ++source.issued;
    return request;
}

ServiceConfig
serviceConfigFor(const ScenarioSpec &spec,
                 const ScenarioRunOptions &options,
                 std::uint64_t planned, std::uint64_t warmup)
{
    ServiceConfig config;
    config.protocol = spec.protocol;
    config.system = SystemConfig::benchDefault();
    if (spec.blocks)
        config.system.protocol.numBlocks = spec.blocks;
    config.system.seed = spec.seed;
    config.system.protocol.seed = spec.seed;
    config.system.simThreads = options.simThreads;
    config.system.totalRequests = planned ? planned : 1;
    config.system.warmupFraction = planned
        ? static_cast<double>(warmup) / static_cast<double>(planned)
        : 0.0;
    config.tenants = static_cast<unsigned>(spec.tenants.size());
    config.queueCapacity = spec.queueCapacity;
    // The initial closed-loop burst must be admissible in full, as in
    // the loadgen: a smaller queue would shed clients at tick 0.
    std::uint64_t closed_total = 0;
    for (const TenantSpec &tenant : spec.tenants)
        if (tenant.closedLoop)
            closed_total += tenant.concurrency;
    config.queueCapacity = std::max<std::size_t>(
        config.queueCapacity, closed_total);
    config.queuePolicy = spec.queuePolicy;
    config.sessionDepth = spec.sessionDepth;
    config.warmupCompletions = warmup;
    return config;
}

/** Everything one service run leaves behind. */
struct RunProducts
{
    ServiceSnapshot service;
    RunMetrics metrics;
    SystemConfig system;
    std::vector<Leaf> leaves;
    std::uint64_t leafSpace = 0;
};

/**
 * Drive one service instance to completion. @p active selects a single
 * generating tenant (isolation baseline) or all of them (-1). The
 * service shape — tenant count, slice geometry, key mapping — is
 * identical either way; isolation only silences the other sources.
 */
bool
runOnce(const ScenarioSpec &spec, const ScenarioRunOptions &options,
        int active, std::uint64_t warmup, bool record_leaves,
        RunProducts *out, std::string *error)
{
    const auto is_active = [&](std::size_t index) {
        return active < 0 || static_cast<std::size_t>(active) == index;
    };

    // Load every active trace source once, up front.
    std::vector<std::vector<FrontendRequest>> traces(spec.tenants.size());
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        const TenantSpec &tenant = spec.tenants[i];
        if (tenant.source != SourceKind::Trace || !is_active(i))
            continue;
        if (!loadTraceFile(tenant.resolvedTracePath, &traces[i], error))
            return false;
    }

    // Expansion needs the slice size, which needs a directory with the
    // final geometry; build a throwaway directory from the normalized
    // config rather than the service (which does not exist yet).
    ServiceConfig probe = serviceConfigFor(spec, options, 1, 0);
    const SystemConfig normalized =
        normalizedProtocolConfig(probe.protocol, probe.system);
    const TenantDirectory geometry(
        probe.tenants, normalized.protocol.numBlocks, normalized.seed);
    const std::uint64_t slice_size = geometry.sliceSize();

    // Pre-expand and merge the open-loop schedule. stable_sort on the
    // due tick alone keeps equal-tick arrivals in tenant order — the
    // same deterministic interleaving every run, every thread count.
    std::vector<MergedArrival> merged;
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        if (spec.tenants[i].closedLoop || !is_active(i))
            continue;
        TraceCursor cursor;
        cursor.trace = &traces[i];
        expandOpenTenant(spec, i, slice_size, cursor, &merged);
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const MergedArrival &a, const MergedArrival &b) {
                         return a.due < b.due;
                     });
    for (std::size_t i = 0; i < merged.size(); ++i)
        merged[i].value = i;

    // Closed-loop sources and a deterministic completion estimate for
    // the session's warmup/stash-window sizing.
    std::vector<ClosedSource> closed;
    std::uint64_t planned = merged.size();
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        const TenantSpec &tenant = spec.tenants[i];
        if (!tenant.closedLoop || !is_active(i))
            continue;
        const std::uint64_t seed = tenantSeed(spec, i);
        ClosedSource source{
            static_cast<std::uint32_t>(i),
            &tenant,
            Rng(mix64(seed ^ 0x617272697665ull)),
            TenantKeySampler(tenant.dist, tenant.zipfAlpha, 1,
                             slice_size, seed),
            TraceCursor{&traces[i], 0},
            0,
        };
        closed.push_back(std::move(source));
        planned += tenant.concurrency
            + tenant.concurrency * (spec.duration / 1000);
    }

    ObliviousKvService service(
        serviceConfigFor(spec, options, planned, warmup));
    if (record_leaves)
        service.enableLeafTrace();

    // The sink only records; re-issues happen outside step(), so the
    // service never re-enters itself.
    std::vector<ServiceCompletion> finished;
    service.setCompletionSink([&](const ServiceCompletion &completion) {
        finished.push_back(completion);
    });

    std::vector<ClosedSource *> closedByTenant(spec.tenants.size(),
                                               nullptr);
    for (ClosedSource &source : closed)
        closedByTenant[source.tenant] = &source;

    std::deque<OwedIssue> owed; ///< Closed re-issues awaiting room.
    const auto issueClosed = [&](ClosedSource &source, Tick arrival) {
        const MergedArrival request = nextClosedRequest(source);
        return service.offer(request.tenant, request.key, request.write,
                             source.issued, arrival);
    };
    const auto tryOwed = [&]() {
        while (!owed.empty()) {
            const OwedIssue head = owed.front();
            // Never burn a rejection on a closed-loop client: wait for
            // room instead — its latency clock is already running.
            if (service.config().queuePolicy == QueuePolicy::Reject
                && service.queue().full())
                break;
            if (issueClosed(*closedByTenant[head.tenant], head.arrival)
                == Admission::WouldBlock)
                break;
            owed.pop_front();
        }
    };
    const auto handleFinished = [&]() {
        for (const ServiceCompletion &completion : finished) {
            ClosedSource *source = closedByTenant[completion.tenant];
            if (source && completion.completion < spec.duration)
                owed.push_back(
                    OwedIssue{completion.tenant, completion.completion});
        }
        finished.clear();
        tryOwed();
    };

    // Tick-0 burst: every closed client in the system before time runs.
    for (ClosedSource &source : closed)
        for (unsigned i = 0; i < source.spec->concurrency; ++i) {
            const Admission admission = issueClosed(source, 0);
            palermo_assert(admission == Admission::Accepted,
                           "initial closed burst must be admissible");
        }

    std::size_t next = 0;
    std::deque<MergedArrival> blocked; ///< Open-loop WouldBlock retries.
    const bool paced = !closed.empty();
    for (;;) {
        handleFinished();
        if (!blocked.empty()) {
            const MergedArrival &head = blocked.front();
            if (service.offer(head.tenant, head.key, head.write,
                              head.value, head.due)
                != Admission::WouldBlock)
                blocked.pop_front();
            else
                service.step(1);
            continue;
        }
        if (next < merged.size()) {
            const Tick due = merged[next].due;
            const Tick now = service.now();
            if (now < due) {
                // Closed-loop clients need cycle-granular re-issue
                // (think time zero); a purely open mix can cross the
                // whole gap in one batched call.
                service.step(paced ? 1 : due - now);
                continue;
            }
            const MergedArrival &arrival = merged[next];
            if (service.offer(arrival.tenant, arrival.key,
                              arrival.write, arrival.value, arrival.due)
                == Admission::WouldBlock)
                blocked.push_back(arrival);
            ++next;
            continue;
        }
        if (paced && service.now() < spec.duration) {
            service.step(1);
            continue;
        }
        break;
    }
    // Generation is over: drop any re-issues still owed (their clients
    // completed after the duration horizon) and settle the tail.
    owed.clear();
    service.drainAll();
    finished.clear();

    out->service = service.snapshot();
    out->metrics = service.simMetrics();
    out->system = service.config().system;
    if (record_leaves) {
        out->leaves = service.leafTrace();
        out->leafSpace = service.leafSpace();
    }
    return true;
}

/** Histogram bins for the uniformity test, scaled to the evidence so
 * sparse CI-sized traces keep ~8+ expected observations per bin. */
std::size_t
uniformityBins(std::size_t observations, std::uint64_t leaf_space)
{
    std::size_t bins = 64;
    while (bins > 8 && observations < bins * 8)
        bins /= 2;
    if (leaf_space < bins)
        bins = static_cast<std::size_t>(leaf_space);
    return bins;
}

std::string
scenarioPointId(const ScenarioSpec &spec)
{
    return std::string(protocolShortName(spec.protocol)) + "/scenario/"
        + spec.name;
}

RunRecord
condenseBase(const ScenarioSpec &spec, const RunProducts &products,
             std::size_t index, const std::string &id,
             const std::string &label)
{
    RunRecord record;
    record.point.index = index;
    record.point.kind = spec.protocol;
    record.point.workload = Workload::Redis; // Label overrides.
    record.point.workloadLabel = label;
    record.point.config = products.system;
    record.point.id = id;
    record.metrics = products.metrics;
    return record;
}

double
ratePerKilocycle(std::uint64_t count, std::uint64_t cycles)
{
    return 1000.0 * static_cast<double>(count)
        / static_cast<double>(cycles ? cycles : 1);
}

} // namespace

bool
runScenario(const ScenarioSpec &spec, const ScenarioRunOptions &options,
            ScenarioOutcome *out, std::string *error)
{
    ScenarioOutcome outcome;
    outcome.spec = spec;

    RunProducts shared;
    if (!runOnce(spec, options, -1, spec.warmupCompletions,
                 options.security, &shared, error))
        return false;
    outcome.base = condenseBase(spec, shared, 0, scenarioPointId(spec),
                                "scenario:" + spec.name);
    outcome.service = shared.service;

    // Per-tenant condensation from the shared run.
    for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
        const ServiceScopeSnapshot &scope = shared.service.perTenant[i];
        TenantOutcome tenant;
        tenant.name = spec.tenants[i].name;
        tenant.closedLoop = spec.tenants[i].closedLoop;
        tenant.scope = scope;
        tenant.demandPerKilocycle =
            ratePerKilocycle(scope.offered,
                             shared.service.measuredCycles);
        tenant.achievedPerKilocycle =
            ratePerKilocycle(scope.completed,
                             shared.service.measuredCycles);
        outcome.tenants.push_back(std::move(tenant));
    }

    // Isolation baselines: the same service shape, one tenant talking.
    if (options.isolation) {
        // Scale the warmup boundary to one tenant's share so a light
        // source still opens its measured window.
        const std::uint64_t iso_warmup =
            spec.warmupCompletions / spec.tenants.size();
        for (std::size_t i = 0; i < spec.tenants.size(); ++i) {
            RunProducts alone;
            if (!runOnce(spec, options, static_cast<int>(i), iso_warmup,
                         false, &alone, error))
                return false;
            IsolationRecord record;
            record.tenant = spec.tenants[i].name;
            record.base = condenseBase(
                spec, alone, 1 + i,
                scenarioPointId(spec) + "/iso/" + spec.tenants[i].name,
                "scenario:" + spec.name + ":iso:"
                    + spec.tenants[i].name);
            record.service = alone.service;
            outcome.isolationRuns.push_back(std::move(record));

            TenantOutcome &tenant = outcome.tenants[i];
            const ServiceScopeSnapshot &iso =
                alone.service.perTenant[i];
            tenant.isolated = true;
            tenant.isolatedMean = iso.latency.mean();
            tenant.isolatedP99 = iso.latency.quantile(0.99);
            tenant.slowdownMean = slowdownOf(tenant.scope.latency.mean(),
                                             tenant.isolatedMean);
            tenant.slowdownP99 =
                slowdownOf(tenant.scope.latency.quantile(0.99),
                           tenant.isolatedP99);
        }
    }

    // Fairness scalars.
    std::vector<double> achieved;
    std::vector<double> slowdowns;
    for (const TenantOutcome &tenant : outcome.tenants) {
        achieved.push_back(tenant.achievedPerKilocycle);
        slowdowns.push_back(tenant.slowdownP99);
    }
    outcome.jainAchieved = jainIndex(achieved);
    outcome.jainSlowdown =
        options.isolation ? jainIndex(slowdowns) : 1.0;

    // Security gates over the merged attacker view.
    if (options.security) {
        ScenarioSecurity &security = outcome.security;
        security.evaluated = true;
        security.leafObservations = shared.leaves.size();
        security.chiSquare = leafUniformity(
            shared.leaves, shared.leafSpace,
            uniformityBins(shared.leaves.size(), shared.leafSpace));
        security.serialCorrelation = serialCorrelation(shared.leaves);
        security.attacker = fitAttackerModel(shared.metrics.samples);
        security.miEvaluated = security.attacker.stashSamples >= 50
            && security.attacker.treeSamples >= 50;
        if (security.miEvaluated)
            security.mutualInformationBits = mutualInformation(
                security.attacker.p1, security.attacker.p2);
    }

    *out = std::move(outcome);
    return true;
}

bool
scenarioSanityCheck(const ScenarioOutcome &outcome,
                    std::vector<std::string> *problems)
{
    bool clean = true;
    const auto report = [&](const std::string &message) {
        clean = false;
        if (problems)
            problems->push_back(message);
    };
    const std::string &id = outcome.base.point.id;
    const ServiceScopeSnapshot &global = outcome.service.global;

    if (outcome.base.metrics.stashOverflowed)
        report(id + ": stash overflowed");
    if (global.completed == 0)
        report(id + ": no responses completed");
    if (global.accepted != global.completed)
        report(id + ": " + std::to_string(global.accepted)
               + " accepted but " + std::to_string(global.completed)
               + " completed (lost requests)");
    if (global.latency.quantile(0.99) < global.latency.quantile(0.50))
        report(id + ": latency quantiles out of order");

    std::uint64_t offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    for (const TenantOutcome &tenant : outcome.tenants) {
        const std::string at = id + " tenant " + tenant.name;
        if (tenant.scope.accepted != tenant.scope.completed)
            report(at + ": accepted != completed after drain");
        if (tenant.scope.latency.quantile(0.99)
            < tenant.scope.latency.quantile(0.50))
            report(at + ": latency quantiles out of order");
        offered += tenant.scope.offered;
        accepted += tenant.scope.accepted;
        rejected += tenant.scope.rejected;
        completed += tenant.scope.completed;
    }
    if (offered != global.offered || accepted != global.accepted
        || rejected != global.rejected || completed != global.completed)
        report(id + ": per-tenant sums disagree with the global scope");

    for (const IsolationRecord &record : outcome.isolationRuns)
        if (record.base.metrics.stashOverflowed)
            report(record.base.point.id + ": stash overflowed");

    if (outcome.security.evaluated && !outcome.security.pass())
        report(id + ": merged-trace security gates failed");
    return clean;
}

} // namespace palermo
