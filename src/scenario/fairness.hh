/**
 * @file
 * Cross-tenant fairness and interference statistics.
 *
 * Jain's fairness index condenses per-tenant allocations into one
 * scalar in (0, 1]: 1 when every tenant gets the same share, 1/n when
 * one tenant takes everything. The scenario engine applies it to
 * achieved throughput (who got served) and to slowdown-vs-isolation
 * (who paid for the sharing), so a saturated mix reads as two numbers
 * instead of N latency tables.
 */

#ifndef PALERMO_SCENARIO_FAIRNESS_HH
#define PALERMO_SCENARIO_FAIRNESS_HH

#include <vector>

namespace palermo {

/**
 * Jain's fairness index: (sum x)^2 / (n * sum x^2) over non-negative
 * allocations. Returns 1.0 for empty or all-zero input (nothing is
 * being divided, so nothing is unfair).
 */
double jainIndex(const std::vector<double> &allocations);

/**
 * Slowdown of a shared-run statistic against its isolated baseline:
 * shared / isolated, with degenerate baselines (isolated <= 0)
 * reported as 1.0 (no measurable interference).
 */
double slowdownOf(double shared, double isolated);

} // namespace palermo

#endif // PALERMO_SCENARIO_FAIRNESS_HH
