/**
 * @file
 * Shared traffic-shape primitives: arrival processes and key samplers.
 *
 * One home for the randomness that turns a seed into client behavior,
 * used by both the single-stream load generator (src/service/loadgen)
 * and the multi-tenant scenario engine (src/scenario/engine). Arrival
 * instants accumulate in exact doubles so fixed-interval streams never
 * drift; every sampler draws from an explicitly seeded Rng, so a
 * traffic source is a pure function of (spec, seed) and merged
 * multi-source schedules are byte-deterministic.
 *
 * The RateCurve solves the inhomogeneous-Poisson inversion for
 * piecewise-constant rate functions (diurnal curves), and
 * BurstPattern maps "active time" onto wall time for on/off sources:
 * a bursty tenant is an ordinary arrival process run on a clock that
 * only advances during its on-windows.
 */

#ifndef PALERMO_SCENARIO_ARRIVAL_HH
#define PALERMO_SCENARIO_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace palermo {

/** How open-loop arrival instants are spaced. */
enum class ArrivalProcess
{
    Poisson, ///< Exponential inter-arrival gaps (memoryless clients).
    Fixed,   ///< Constant inter-arrival gaps (paced clients).
};

const char *arrivalProcessName(ArrivalProcess process);

/** Parse "poisson"/"fixed"; returns false on unknown names. */
bool arrivalProcessFromName(const std::string &name,
                            ArrivalProcess *process);

/** How keys are drawn within a tenant's namespace. */
enum class KeyDist
{
    Zipf,    ///< Skewed popularity (hot keys), alpha-parameterized.
    Uniform, ///< Every key equally likely.
};

const char *keyDistName(KeyDist dist);

/** Parse "zipf"/"uniform"; returns false on unknown names. */
bool keyDistFromName(const std::string &name, KeyDist *dist);

/**
 * One inter-arrival gap in cycles: exactly @p mean_gap for Fixed
 * (consumes no randomness), exponential with that mean for Poisson
 * (consumes one uniform draw).
 */
double arrivalGap(ArrivalProcess process, double mean_gap, Rng &rng);

/**
 * Per-tenant key source: one sampler per tenant namespace, Zipf or
 * uniform over [0, slice_size). Seeding is a pure function of
 * (seed, tenant), so two instances with the same parameters produce
 * identical draw sequences.
 */
class TenantKeySampler
{
  public:
    TenantKeySampler(KeyDist dist, double zipf_alpha, unsigned tenants,
                     std::uint64_t slice_size, std::uint64_t seed);

    /** Draw one key in [0, sliceSize) for the given tenant. */
    std::uint64_t draw(unsigned tenant);

    KeyDist dist() const { return dist_; }
    std::uint64_t sliceSize() const { return sliceSize_; }

  private:
    KeyDist dist_;
    std::uint64_t sliceSize_;
    Rng rng_;
    std::vector<ZipfSampler> zipf_;
};

/**
 * Piecewise-constant rate function (requests per kilocycle). Segments
 * cover [0, boundary_0), [boundary_0, boundary_1), ...; time beyond
 * the last boundary holds the final segment's rate. A single-segment
 * curve is a plain constant rate.
 */
class RateCurve
{
  public:
    struct Segment
    {
        std::uint64_t untilCycle; ///< Exclusive end (kTickNever = open).
        double ratePerKilocycle;  ///< >= 0; 0 means silent.
    };

    explicit RateCurve(std::vector<Segment> segments);

    /** Constant-rate convenience. */
    static RateCurve constant(double rate_per_kilocycle);

    /** Rate in effect at the given instant. */
    double rateAt(double t) const;

    /**
     * Next arrival instant after @p t for a unit-mean exponential (or
     * deterministic, for Fixed) draw @p u: solves the integral
     * `∫_t^T rate(s)/1000 ds = u` for T. Returns a negative value when
     * the curve is silent forever after t (no further arrival).
     */
    double nextArrival(double t, double u) const;

    const std::vector<Segment> &segments() const { return segments_; }

  private:
    std::vector<Segment> segments_;
};

/**
 * Deterministic on/off gating: the source is active during
 * [k*(on+off), k*(on+off)+on) for k = 0, 1, .... Arrival processes
 * run on the active-time clock; wallTime() maps an active-time
 * instant back onto the simulated clock. on == 0 disables the source;
 * off == 0 means always on.
 */
class BurstPattern
{
  public:
    BurstPattern(std::uint64_t on_cycles, std::uint64_t off_cycles)
        : on_(on_cycles), off_(off_cycles)
    {
    }

    bool alwaysOn() const { return off_ == 0; }

    /** Map cumulative active time to the simulated-clock instant. */
    double wallTime(double active) const;

  private:
    std::uint64_t on_;
    std::uint64_t off_;
};

} // namespace palermo

#endif // PALERMO_SCENARIO_ARRIVAL_HH
