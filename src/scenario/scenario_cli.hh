/**
 * @file
 * Scenario driver plumbing shared by tools/palermo_scenario and
 * palermo_replay's --scenario mode (and unit-tested like run_cli):
 * flag parsing, the human-readable per-tenant table, and the
 * palermo-metrics-v1 document with the per-tenant "scenario" block.
 */

#ifndef PALERMO_SCENARIO_SCENARIO_CLI_HH
#define PALERMO_SCENARIO_SCENARIO_CLI_HH

#include <string>

#include "scenario/engine.hh"

namespace palermo {

/** Everything palermo_scenario accepts on its command line. */
struct ScenarioCliOptions
{
    std::string scenarioPath;   ///< Positional or --scenario FILE.
    std::string jsonPath;       ///< --json PATH ("-" = stdout).
    unsigned simThreads = 1;    ///< --sim-threads N per session.
    bool noIsolation = false;   ///< --no-isolation: skip baselines.
    bool noSecurity = false;    ///< --no-security: skip the gates.
    bool listProtocols = false; ///< --list-protocols (registry).
    bool help = false;          ///< --help / -h.

    /** Resolve engine options from the flags. */
    ScenarioRunOptions runOptions() const
    {
        ScenarioRunOptions options;
        options.simThreads = simThreads;
        options.isolation = !noIsolation;
        options.security = !noSecurity;
        return options;
    }
};

/** Parse palermo_scenario argv (excluding argv[0]). */
bool parseScenarioCliArgs(int argc, const char *const *argv,
                          ScenarioCliOptions *options,
                          std::string *error);

/** Usage text for palermo_scenario. */
std::string scenarioUsage();

/** Human-readable per-tenant summary table. */
std::string scenarioTable(const ScenarioOutcome &outcome);

/**
 * Render one scenario run as a palermo-metrics-v1 document: the shared
 * run as point 0 with "scenario" (per-tenant stats, fairness,
 * security) and "service" blocks, each isolation baseline as its own
 * point, and fairness/interference scalars under "derived".
 * Byte-deterministic; @p tool names the producing binary.
 */
std::string scenarioDocument(const ScenarioOutcome &outcome,
                             const std::string &tool);

} // namespace palermo

#endif // PALERMO_SCENARIO_SCENARIO_CLI_HH
