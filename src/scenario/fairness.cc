/**
 * @file
 * Jain's index and slowdown arithmetic.
 */

#include "scenario/fairness.hh"

namespace palermo {

double
jainIndex(const std::vector<double> &allocations)
{
    double sum = 0.0;
    double sum_sq = 0.0;
    for (double x : allocations) {
        sum += x;
        sum_sq += x * x;
    }
    if (allocations.empty() || sum_sq <= 0.0)
        return 1.0;
    return (sum * sum)
        / (static_cast<double>(allocations.size()) * sum_sq);
}

double
slowdownOf(double shared, double isolated)
{
    if (isolated <= 0.0)
        return 1.0;
    return shared / isolated;
}

} // namespace palermo
