/**
 * @file
 * Scenario CLI parsing and output rendering.
 */

#include "scenario/scenario_cli.hh"

#include <cstdio>
#include <sstream>

#include "service/service_metrics.hh"
#include "sim/metrics_json.hh"
#include "sim/run_cli.hh"

namespace palermo {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

void
writeTenantBlock(JsonWriter &w, const TenantOutcome &tenant)
{
    w.beginObject();
    w.field("name", tenant.name);
    w.field("mode", tenant.closedLoop ? "closed" : "open");
    w.field("demand_per_kilocycle", tenant.demandPerKilocycle);
    w.field("achieved_per_kilocycle", tenant.achievedPerKilocycle);
    if (tenant.isolated) {
        w.field("isolated_latency_mean", tenant.isolatedMean);
        w.field("isolated_latency_p99", tenant.isolatedP99);
        w.field("slowdown_mean", tenant.slowdownMean);
        w.field("slowdown_p99", tenant.slowdownP99);
    }
    w.key("scope");
    writeServiceScope(w, tenant.scope);
    w.endObject();
}

void
writeSecurityBlock(JsonWriter &w, const ScenarioSecurity &security)
{
    w.beginObject();
    w.field("evaluated", security.evaluated);
    w.field("leaf_observations", security.leafObservations);
    w.field("chi_square", security.chiSquare.statistic);
    w.field("chi_square_threshold", security.chiSquare.threshold);
    w.field("uniform", security.chiSquare.uniform);
    w.field("serial_correlation", security.serialCorrelation);
    w.field("serial_correlation_bound", security.correlationBound());
    w.field("mi_evaluated", security.miEvaluated);
    w.field("mutual_information_bits",
            security.mutualInformationBits);
    w.field("pass", security.pass());
    w.endObject();
}

} // namespace

bool
parseScenarioCliArgs(int argc, const char *const *argv,
                     ScenarioCliOptions *options, std::string *error)
{
    ScenarioCliOptions result;

    ArgCursor cursor(argc, argv);
    while (cursor.advance()) {
        const std::string name = cursor.name();
        std::string value;

        if (name == "--help" || name == "-h") {
            result.help = true;
        } else if (name == "--list-protocols") {
            result.listProtocols = true;
        } else if (name == "--no-isolation") {
            result.noIsolation = true;
        } else if (name == "--no-security") {
            result.noSecurity = true;
        } else if (name == "--scenario") {
            if (!cursor.value(&value))
                return fail(error, "--scenario needs a file path");
            result.scenarioPath = value;
        } else if (name == "--sim-threads") {
            std::uint64_t threads = 0;
            if (!cursor.value(&value)
                || !parseUnsigned(value, &threads) || threads == 0)
                return fail(error,
                            "--sim-threads needs a positive integer");
            result.simThreads = static_cast<unsigned>(threads);
        } else if (name == "--json") {
            if (!cursor.value(&value))
                return fail(error, "--json needs a path (or '-')");
            result.jsonPath = value;
        } else if (!name.empty() && name.front() != '-') {
            if (!result.scenarioPath.empty())
                return fail(error,
                            "only one scenario file per invocation");
            result.scenarioPath = name;
        } else {
            return fail(error, "unknown flag '" + name + "'");
        }
    }

    *options = result;
    return true;
}

std::string
scenarioTable(const ScenarioOutcome &outcome)
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-16s%8s%12s%12s%10s%10s%12s\n", "tenant", "mode",
                  "demand/kc", "ach/kc", "lat-p50", "lat-p99",
                  "slow-p99");
    out += line;
    for (const TenantOutcome &tenant : outcome.tenants) {
        std::snprintf(line, sizeof(line),
                      "%-16s%8s%12.3f%12.3f%10.0f%10.0f%12.2f\n",
                      tenant.name.c_str(),
                      tenant.closedLoop ? "closed" : "open",
                      tenant.demandPerKilocycle,
                      tenant.achievedPerKilocycle,
                      tenant.scope.latency.quantile(0.50),
                      tenant.scope.latency.quantile(0.99),
                      tenant.isolated ? tenant.slowdownP99 : 1.0);
        out += line;
    }
    std::snprintf(line, sizeof(line),
                  "jain(achieved) %.3f  jain(slowdown-p99) %.3f\n",
                  outcome.jainAchieved, outcome.jainSlowdown);
    out += line;
    if (outcome.security.evaluated) {
        std::snprintf(
            line, sizeof(line),
            "security: %s  (chi2 %.1f/%.1f  corr %+.4f  MI %s)\n",
            outcome.security.pass() ? "PASS" : "FAIL",
            outcome.security.chiSquare.statistic,
            outcome.security.chiSquare.threshold,
            outcome.security.serialCorrelation,
            outcome.security.miEvaluated
                ? jsonNumber(outcome.security.mutualInformationBits)
                      .c_str()
                : "n/a");
        out += line;
    }
    return out;
}

std::string
scenarioDocument(const ScenarioOutcome &outcome,
                 const std::string &tool)
{
    JsonWriter w;
    w.beginObject();
    MetricsJson::writeHeader(w, tool);
    w.key("points").beginArray();
    MetricsJson::writeRecord(w, outcome.base, [&](JsonWriter &inner) {
        inner.field("mode", "scenario");
        inner.key("scenario").beginObject();
        inner.field("name", outcome.spec.name);
        inner.field("duration", outcome.spec.duration);
        inner.field("tenant_count",
                    static_cast<std::uint64_t>(
                        outcome.tenants.size()));
        inner.key("tenants").beginArray();
        for (const TenantOutcome &tenant : outcome.tenants)
            writeTenantBlock(inner, tenant);
        inner.endArray();
        inner.key("fairness").beginObject();
        inner.field("jain_achieved", outcome.jainAchieved);
        inner.field("jain_slowdown_p99", outcome.jainSlowdown);
        inner.endObject();
        inner.key("security");
        writeSecurityBlock(inner, outcome.security);
        inner.endObject();
        inner.key("service");
        writeServiceSnapshot(inner, outcome.service);
    });
    for (const IsolationRecord &record : outcome.isolationRuns) {
        MetricsJson::writeRecord(
            w, record.base, [&](JsonWriter &inner) {
                inner.field("mode", "isolation");
                inner.field("isolated_tenant", record.tenant);
                inner.key("service");
                writeServiceSnapshot(inner, record.service);
            });
    }
    w.endArray();
    double max_slowdown = 1.0;
    for (const TenantOutcome &tenant : outcome.tenants)
        if (tenant.isolated && tenant.slowdownP99 > max_slowdown)
            max_slowdown = tenant.slowdownP99;
    MetricsJson::writeDerived(
        w, {
               {"achieved_per_kilocycle",
                outcome.service.achievedPerKilocycle},
               {"jain_achieved", outcome.jainAchieved},
               {"jain_slowdown_p99", outcome.jainSlowdown},
               {"max_slowdown_p99", max_slowdown},
           });
    w.endObject();
    std::string text = w.str();
    text.push_back('\n');
    return text;
}

std::string
scenarioUsage()
{
    std::ostringstream os;
    os << "usage: palermo_scenario [options] <scenario.json>\n"
       << "\n"
       << "Run a declarative multi-tenant scenario over one shared\n"
       << "oblivious KV service: merge every tenant's arrivals in\n"
       << "simulated time, measure per-tenant latency, fairness, and\n"
       << "interference against isolation baselines, and check the\n"
       << "uniformity/mutual-information security gates on the merged\n"
       << "attacker-visible sequence.\n"
       << "\n"
       << "options:\n"
       << "  --scenario FILE     scenario JSON (or pass it "
          "positionally)\n"
       << "  --json PATH         palermo-metrics-v1 output "
          "('-' = stdout)\n"
       << "  --sim-threads N     threads stepping each session\n"
       << "                      (byte-identical to serial; "
          "default: 1)\n"
       << "  --no-isolation      skip the per-tenant isolation "
          "baselines\n"
       << "  --no-security       skip the merged-trace security "
          "gates\n"
       << "  --list-protocols    print the protocol registry and "
          "exit\n"
       << "  --help              this text\n"
       << "\n"
       << "example:\n"
       << "  palermo_scenario tools/scenarios/bursty-neighbor.json \\\n"
       << "      --json out.json\n";
    return os.str();
}

} // namespace palermo
