/**
 * @file
 * Palermo-SW: the software-only Palermo protocol (paper Fig. 10).
 *
 * Runs Algorithm 2 with coarse-grained software synchronization instead
 * of the PE mesh: hierarchy levels execute sequentially within a request
 * (the mutex around the PosMap check kills intra-request parallelism),
 * and each tree's lock is held from the PosMap check through ReadPath
 * issue, so only the ReadPaths of consecutive requests overlap. This is
 * the "protocol-level-only" 1.2x configuration that isolates how much of
 * Palermo's gain needs the co-designed hardware.
 */

#ifndef PALERMO_CONTROLLER_PALERMO_SW_CONTROLLER_HH
#define PALERMO_CONTROLLER_PALERMO_SW_CONTROLLER_HH

#include <memory>

#include "controller/palermo_controller.hh"

namespace palermo {

/** Software-synchronized Palermo (coarse locks, sequential levels). */
class PalermoSwController : public PalermoController
{
  public:
    /**
     * @param protocol Shared Palermo protocol state (owned).
     * @param columns Logical in-flight request slots (software threads).
     */
    PalermoSwController(std::unique_ptr<PalermoOram> protocol,
                        unsigned columns = 8);

  private:
    static PalermoControllerConfig swConfig(unsigned columns);
};

} // namespace palermo

#endif // PALERMO_CONTROLLER_PALERMO_SW_CONTROLLER_HH
