/**
 * @file
 * Timing-controller interface: the component that converts admitted LLC
 * misses into DRAM traffic under a protocol's dependency rules.
 */

#ifndef PALERMO_CONTROLLER_CONTROLLER_HH
#define PALERMO_CONTROLLER_CONTROLLER_HH

#include <cstdint>

#include "common/types.hh"
#include "controller/controller_stats.hh"
#include "mem/dram_system.hh"
#include "oram/stash.hh"

namespace palermo {

/** Abstract ORAM timing controller. */
class Controller
{
  public:
    virtual ~Controller() = default;

    /** True if a new LLC miss can be admitted this cycle. */
    virtual bool canAccept() const = 0;

    /**
     * Admit one LLC miss (or a security-padding dummy).
     * @param pa Protected-space line.
     * @param write Store miss.
     * @param value Store payload.
     * @param dummy Request padding issued when the LLC is quiet.
     */
    virtual void push(BlockId pa, bool write, std::uint64_t value,
                      bool dummy) = 0;

    /** Advance one cycle; may enqueue DRAM requests. */
    virtual void tick(DramSystem &dram) = 0;

    /**
     * Batched idle advancement: account for `cycles` consecutive idle
     * cycles in one call, exactly as `cycles` tick() calls would while
     * idle() holds, touching no DRAM state. Callers may only invoke
     * this when idle() is true. Returns false when the controller
     * cannot prove its idle tick is pure accounting (the caller must
     * fall back to per-cycle tick()); the default is that fallback.
     */
    virtual bool
    tickIdle(std::uint64_t cycles)
    {
        (void)cycles;
        return false;
    }

    /** A DRAM read completed (tag issued by this controller). */
    virtual void onCompletion(std::uint64_t tag) = 0;

    /** True when no request is in flight. */
    virtual bool idle() const = 0;

    ControllerStats &stats() { return stats_; }
    const ControllerStats &stats() const { return stats_; }

    /** Data/Pos1/Pos2 stash view for occupancy studies. */
    virtual const Stash &stashOf(unsigned level) const = 0;

    /**
     * Mutable stash access, so samplers can reset the watermark window
     * between observations without const_cast games.
     */
    virtual Stash &stashOf(unsigned level) = 0;

  protected:
    ControllerStats stats_;
};

} // namespace palermo

#endif // PALERMO_CONTROLLER_CONTROLLER_HH
