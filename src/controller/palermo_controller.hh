/**
 * @file
 * PalermoController: the 3xN PE-mesh ORAM controller (paper §V).
 *
 * Each column serves one ORAM request; each row serves one hierarchy
 * level (Data, PosMap1, PosMap2). A PE's finite state machine walks
 * CP -> LM -> ER -> RP -> (EP) -> Finalize with two dependency types:
 *
 *  - North/south (parent/child): a PE's CP resolves when the child
 *    level's ReadPath returns the leaf (PosMap2 reads the on-chip
 *    PosMap3 instead).
 *  - West/east (sibling): a PE may mutate its tree (the critical
 *    section: leaf consumption, remap, pre-check reshuffles) only after
 *    the previous request's PE on the same tree has *issued* its ER
 *    writes (EP writes for every A-th access). Issuing — not commit —
 *    clears the dependency; the DRAM write queue's read forwarding keeps
 *    the tree view consistent.
 *
 * All ReadPaths overlap freely, which is where the bandwidth comes from.
 * Requests retire in CommitHead order. The software-only variant
 * (Palermo-SW, paper Fig. 10) coarsens both dependencies; see
 * palermo_sw_controller.hh.
 */

#ifndef PALERMO_CONTROLLER_PALERMO_CONTROLLER_HH
#define PALERMO_CONTROLLER_PALERMO_CONTROLLER_HH

#include <array>
#include <memory>
#include <vector>

#include "common/flat_map.hh"
#include "common/pool.hh"
#include "controller/controller.hh"
#include "oram/palermo.hh"
#include "oram/plan.hh"

namespace palermo {

/** Timing knobs of the PE mesh. */
struct PalermoControllerConfig
{
    unsigned columns = 8;        ///< PE columns (Table III: 3x8).
    unsigned issuePerPe = 4;     ///< DRAM enqueues per PE per cycle.
    unsigned posmap3Latency = 4; ///< On-chip PosMap3 lookup cycles.
    unsigned decryptLatency = 40; ///< RP data to response cycles.
    bool swMode = false;         ///< Palermo-SW coarse synchronization.
};

/** The Palermo protocol-hardware co-designed controller. */
class PalermoController : public Controller
{
  public:
    PalermoController(std::unique_ptr<PalermoOram> protocol,
                      const PalermoControllerConfig &config);

    bool canAccept() const override;
    void push(BlockId pa, bool write, std::uint64_t value,
              bool dummy) override;
    void tick(DramSystem &dram) override;
    bool tickIdle(std::uint64_t cycles) override;
    void onCompletion(std::uint64_t tag) override;
    bool idle() const override;
    const Stash &stashOf(unsigned level) const override;
    Stash &stashOf(unsigned level) override;

    PalermoOram &protocol() { return *protocol_; }
    const PalermoControllerConfig &config() const { return config_; }

    /** Peak concurrently-active columns observed (tests). */
    unsigned maxActiveColumns() const { return maxActiveColumns_; }

  private:
    /** PE FSM states, in protocol order. */
    enum class PeStage
    {
        Idle,
        WaitLeaf,     ///< CP: waiting for child's RP response / PosMap3.
        WaitSibling,  ///< Waiting for the west tree-write token.
        IssueLm,
        WaitLm,
        IssueErRead,
        WaitErRead,
        IssueErWrite,
        IssueRp,
        WaitRp,
        IssueEpRead,
        WaitEpRead,
        IssueEpWrite,
        Finalized,
    };

    struct PeState
    {
        PeStage stage = PeStage::Idle;
        LevelPlan plan;
        std::size_t opIdx = 0;
        std::uint64_t outstanding = 0;
        Tick leafReadyAt = kTickNever; ///< PosMap3 latency model.
        bool cleared = false;          ///< Sibling token passed east.
    };

    struct ColumnCtx
    {
        bool busy = false;
        std::uint64_t gid = 0;
        BlockId pa = 0;
        std::array<BlockId, kHierLevels> ids{};
        bool write = false;
        std::uint64_t value = 0;
        bool dummy = false;
        Tick startTick = 0;
        Tick responseTick = kTickNever;
        std::uint64_t readValue = 0;
        std::array<bool, kHierLevels> rpDone{};
        std::array<bool, kHierLevels> finalized{};
    };

    /** Current phase the PE is issuing, or nullptr. */
    Phase *issuingPhase(PeState &pe);

    void stepPe(unsigned col, unsigned level, DramSystem &dram);
    void issueOps(unsigned col, unsigned level, PeState &pe,
                  DramSystem &dram);
    void clearSibling(unsigned level, std::uint64_t gid);
    void tryRetire(Tick now);

    std::unique_ptr<PalermoOram> protocol_;
    PalermoControllerConfig config_;

    std::vector<std::array<PeState, kHierLevels>> pes_; ///< [col][level]
    std::vector<ColumnCtx> cols_;

    std::uint64_t nextGid_ = 0;
    std::uint64_t commitHead_ = 0;
    /** Highest gid whose tree-write phase has been issued, per level. */
    std::array<std::uint64_t, kHierLevels> clearedThrough_;
    /**
     * Software mode: Algorithm 2's global CommitHead spin. A request
     * enters its (whole-hierarchy) critical region only after the
     * previous request has issued everything but its overlappable
     * ReadPaths — software cannot split issue from completion per tree.
     */
    std::uint64_t swGlobalCleared_ = 0;

    /** Flat maps: probed per DRAM completion (tags) and per miss
     * (MSHR merge); count/lookup only, never iterated. */
    using TagMap = FlatMap<std::uint64_t, std::uint32_t>;
    using BlockMap = FlatMap<BlockId, unsigned>;

    PoolResource pool_; ///< Backs the maps below; declared before them.

    std::uint64_t nextTag_ = 1;
    /** Read tag -> (col, level). */
    TagMap tagMap_;

    /**
     * MSHR-style merge under prefetch: misses to a widened data block
     * that already has an in-flight ORAM request coalesce into it (the
     * fill returns all of the block's lines to the LLC), so no second
     * request is issued. Maps data-tree block -> in-flight count.
     */
    BlockMap inFlightBlocks_;

    unsigned activeColumns_ = 0;
    unsigned maxActiveColumns_ = 0;
};

} // namespace palermo

#endif // PALERMO_CONTROLLER_PALERMO_CONTROLLER_HH
