/**
 * @file
 * Palermo-SW timing: Algorithm 2 with coarse software synchronization
 * (one request per level in flight) instead of the PE mesh.
 */

#include "controller/palermo_sw_controller.hh"

#include "sim/protocol_registry.hh"

namespace palermo {

PalermoControllerConfig
PalermoSwController::swConfig(unsigned columns)
{
    PalermoControllerConfig config;
    config.columns = columns;
    config.swMode = true;
    // Software issue path: one request stream per thread through the
    // memory subsystem; the coarse locks dominate, not issue width.
    config.issuePerPe = 4;
    return config;
}

PalermoSwController::PalermoSwController(
    std::unique_ptr<PalermoOram> protocol, unsigned columns)
    : PalermoController(std::move(protocol), swConfig(columns))
{
}

namespace {

/** Registry entry: the protocol-only 1.2x bar (no PE mesh). */
ProtocolDescriptor
descriptor()
{
    ProtocolDescriptor d;
    d.kind = ProtocolKind::PalermoSw;
    d.displayName = "Palermo-SW";
    d.shortToken = "palermo-sw";
    d.aliases = {"palermosw", "sw"};
    d.barOrder = 5;
    d.build = [](const SystemConfig &config) {
        return std::make_unique<PalermoSwController>(
            std::make_unique<PalermoOram>(config.protocol),
            config.palermo.columns);
    };
    return d;
}

const ProtocolRegistrar registrar{descriptor()};

} // namespace

} // namespace palermo
