/**
 * @file
 * Palermo-SW timing: Algorithm 2 with coarse software synchronization
 * (one request per level in flight) instead of the PE mesh.
 */

#include "controller/palermo_sw_controller.hh"

namespace palermo {

PalermoControllerConfig
PalermoSwController::swConfig(unsigned columns)
{
    PalermoControllerConfig config;
    config.columns = columns;
    config.swMode = true;
    // Software issue path: one request stream per thread through the
    // memory subsystem; the coarse locks dominate, not issue width.
    config.issuePerPe = 4;
    return config;
}

PalermoSwController::PalermoSwController(
    std::unique_ptr<PalermoOram> protocol, unsigned columns)
    : PalermoController(std::move(protocol), swConfig(columns))
{
}

} // namespace palermo
