/**
 * @file
 * Statistics shared by all ORAM timing controllers: per-level cycle
 * attribution (the Fig. 3b breakdown), response latency distribution
 * (Fig. 9), and the per-request samples the security analysis consumes.
 */

#ifndef PALERMO_CONTROLLER_CONTROLLER_STATS_HH
#define PALERMO_CONTROLLER_CONTROLLER_STATS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "oram/hierarchy.hh"

namespace palermo {

/** One retired ORAM request's security-relevant observables. */
struct LatencySample
{
    double latency;      ///< Response latency in cycles.
    bool servedFromStash; ///< Victim behavior B (Table I).
};

/** Aggregate controller statistics. */
struct ControllerStats
{
    /** Cycles attributed per hierarchy level, DRAM-active vs stalled. */
    std::array<std::uint64_t, kHierLevels> dramCycles{};
    std::array<std::uint64_t, kHierLevels> syncCycles{};
    std::uint64_t idleCycles = 0;
    std::uint64_t totalCycles = 0;

    std::uint64_t served = 0;     ///< Real LLC misses resolved.
    std::uint64_t dummies = 0;    ///< Dummy / background requests.
    std::uint64_t llcHits = 0;    ///< Prefetch-filtered misses.
    std::uint64_t issuedReads = 0;
    std::uint64_t issuedWrites = 0;

    Histogram latency{100.0, 200};
    std::vector<LatencySample> samples;

    /**
     * Attacker-visible data-tree leaf sequence, in commit order, dummy
     * and real accesses alike — exactly what a DRAM bus observer sees.
     * Off by default (unbounded growth); drivers that run the security
     * gates flip recordLeafTrace before the first access. leafSpace is
     * the data tree's leaf count, the trace's alphabet size.
     */
    bool recordLeafTrace = false;
    std::uint64_t leafSpace = 0;
    std::vector<Leaf> leafTrace;

    /** Append one observed data-level leaf (no-op unless enabled). */
    void observeLeaf(Leaf leaf)
    {
        if (recordLeafTrace)
            leafTrace.push_back(leaf);
    }

    void reset();

    /** Fraction of busy cycles spent stalled (ORAM-sync, Fig. 3b). */
    double syncFraction() const;

    /** Per-level share of busy cycles: {level, dram?} -> fraction. */
    double levelShare(unsigned level, bool dram) const;
};

} // namespace palermo

#endif // PALERMO_CONTROLLER_CONTROLLER_STATS_HH
