/**
 * @file
 * SerialController: the baseline multi-issue ORAM controller (paper
 * §III-A). It serves ORAM requests strictly one after another; within a
 * request, each phase's reads are issued concurrently but the next phase
 * waits for them, and trailing writes are posted without blocking — the
 * exact dependency structure whose stalls the paper measures as
 * "ORAM-sync" cycles.
 *
 * Drives any serial Protocol: PathORAM, RingORAM, PageORAM, PrORAM /
 * LAORAM, and IR-ORAM.
 */

#ifndef PALERMO_CONTROLLER_SERIAL_CONTROLLER_HH
#define PALERMO_CONTROLLER_SERIAL_CONTROLLER_HH

#include <deque>
#include <memory>
#include <vector>

#include "common/pool.hh"
#include "controller/controller.hh"
#include "oram/hierarchy.hh"
#include "oram/plan.hh"

namespace palermo {

/** Baseline one-request-at-a-time timing controller. */
class SerialController : public Controller
{
  public:
    /**
     * @param protocol The serial protocol to drive (owned).
     * @param issue_width Max DRAM enqueues per cycle.
     * @param queue_limit Admitted-but-unserved request cap.
     * @param decrypt_latency Cycles from last RP beat to response.
     */
    SerialController(std::unique_ptr<Protocol> protocol,
                     unsigned issue_width = 16, std::size_t queue_limit = 8,
                     unsigned decrypt_latency = 40);

    bool canAccept() const override;
    void push(BlockId pa, bool write, std::uint64_t value,
              bool dummy) override;
    void tick(DramSystem &dram) override;
    bool tickIdle(std::uint64_t cycles) override;
    void onCompletion(std::uint64_t tag) override;
    bool idle() const override;
    const Stash &stashOf(unsigned level) const override;
    Stash &stashOf(unsigned level) override;

    Protocol &protocol() { return *protocol_; }

  private:
    struct Pending
    {
        RequestPlan plan;
        bool dummy = false;
        bool started = false;
        Tick startTick = 0;
        Tick responseTick = kTickNever;
        std::size_t levelIdx = 0;
        std::size_t phaseIdx = 0;
        std::size_t opIdx = 0;
        std::uint64_t outstandingReads = 0;
    };

    /** Advance through completed (or empty) phases. */
    void advance(Pending &req, Tick now);
    void retire(Pending &req, Tick now);
    bool phaseIssued(const Pending &req) const;
    unsigned currentLevel(const Pending &req) const;

    std::unique_ptr<Protocol> protocol_;
    unsigned issueWidth_;
    std::size_t queueLimit_;
    unsigned decryptLatency_;
    PoolResource pool_; ///< Backs queue_; declared before it.
    std::deque<Pending, PoolAllocator<Pending>> queue_;
    std::vector<RequestPlan> planScratch_; ///< push() staging buffer.
};

} // namespace palermo

#endif // PALERMO_CONTROLLER_SERIAL_CONTROLLER_HH
