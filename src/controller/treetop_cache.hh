/**
 * @file
 * Tree-top cache (Phantom [30]): an on-chip scratchpad pinning the top
 * levels of an ORAM tree, where access intensity is highest (every path
 * crosses the root). Engines consult the computed level count to
 * suppress DRAM traffic; this class provides the sizing/accounting view
 * used by the system configuration and the area/power model.
 */

#ifndef PALERMO_CONTROLLER_TREETOP_CACHE_HH
#define PALERMO_CONTROLLER_TREETOP_CACHE_HH

#include <cstdint>

#include "oram/oram_params.hh"

namespace palermo {

/** Sizing view of one tree's tree-top cache. */
class TreetopCache
{
  public:
    /**
     * @param params Tree the cache fronts.
     * @param budget_bytes On-chip byte budget for this tree.
     */
    TreetopCache(const OramParams &params, std::uint64_t budget_bytes);

    /** Levels [0, cachedLevels()) are fully resident on-chip. */
    unsigned cachedLevels() const { return cachedLevels_; }

    /** Bytes actually consumed by the resident levels. */
    std::uint64_t usedBytes() const { return usedBytes_; }

    std::uint64_t budgetBytes() const { return budgetBytes_; }

    /** Fraction of a path's buckets that are served on-chip. */
    double pathCoverage() const;

  private:
    OramParams params_;
    std::uint64_t budgetBytes_;
    unsigned cachedLevels_;
    std::uint64_t usedBytes_;
};

} // namespace palermo

#endif // PALERMO_CONTROLLER_TREETOP_CACHE_HH
