/**
 * @file
 * Per-level cycle attribution (Fig. 3b), latency histogram, and
 * security-sample collection shared by all timing controllers.
 */

#include "controller/controller_stats.hh"

namespace palermo {

void
ControllerStats::reset()
{
    dramCycles = {};
    syncCycles = {};
    idleCycles = 0;
    totalCycles = 0;
    served = 0;
    dummies = 0;
    llcHits = 0;
    issuedReads = 0;
    issuedWrites = 0;
    latency.reset();
    samples.clear();
    leafTrace.clear();
}

double
ControllerStats::syncFraction() const
{
    std::uint64_t busy = 0;
    std::uint64_t sync = 0;
    for (unsigned level = 0; level < kHierLevels; ++level) {
        busy += dramCycles[level] + syncCycles[level];
        sync += syncCycles[level];
    }
    return busy ? static_cast<double>(sync) / busy : 0.0;
}

double
ControllerStats::levelShare(unsigned level, bool dram) const
{
    std::uint64_t busy = 0;
    for (unsigned l = 0; l < kHierLevels; ++l)
        busy += dramCycles[l] + syncCycles[l];
    if (busy == 0)
        return 0.0;
    const std::uint64_t part =
        dram ? dramCycles[level] : syncCycles[level];
    return static_cast<double>(part) / busy;
}

} // namespace palermo
