/**
 * @file
 * Budget-to-level-count computation for the Phantom-style tree-top
 * scratchpad.
 */

#include "controller/treetop_cache.hh"

#include "oram/hierarchy.hh"

namespace palermo {

TreetopCache::TreetopCache(const OramParams &params,
                           std::uint64_t budget_bytes)
    : params_(params), budgetBytes_(budget_bytes),
      cachedLevels_(cachedLevelsFor(params, budget_bytes)), usedBytes_(0)
{
    for (unsigned level = 0; level < cachedLevels_; ++level) {
        const std::uint64_t nodes = std::uint64_t{1} << level;
        usedBytes_ += nodes
            * (static_cast<std::uint64_t>(params.slotsAt(level))
                   * params.blockBytes
               + kBlockBytes);
    }
}

double
TreetopCache::pathCoverage() const
{
    return static_cast<double>(cachedLevels_) / params_.levels;
}

} // namespace palermo
