/**
 * @file
 * The 3xN PE-mesh timing model (paper §V): per-PE state machines,
 * per-tree commit ordering across columns, crypto-pipeline occupancy,
 * and the DRAM completion plumbing.
 */

#include "controller/palermo_controller.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

PalermoController::PalermoController(std::unique_ptr<PalermoOram> protocol,
                                     const PalermoControllerConfig &config)
    : protocol_(std::move(protocol)), config_(config),
      tagMap_(&pool_), inFlightBlocks_(&pool_)
{
    palermo_assert(protocol_ != nullptr);
    palermo_assert(config.columns >= 1);
    pes_.resize(config.columns);
    cols_.resize(config.columns);
    clearedThrough_ = {0, 0, 0};
    stats_.leafSpace = protocol_->engine(kLevelData).params().numLeaves;
}

bool
PalermoController::canAccept() const
{
    // Ring claiming: requests occupy columns strictly in order, so the
    // next request needs the next ring column to be free.
    const unsigned col =
        static_cast<unsigned>(nextGid_ % config_.columns);
    return !cols_[col].busy;
}

void
PalermoController::push(BlockId pa, bool write, std::uint64_t value,
                        bool dummy)
{
    if (!dummy && protocol_->filterHit(pa, write, value)) {
        ++stats_.llcHits;
        ++stats_.served;
        return;
    }
    const bool prefetching = protocol_->config().prefetchLen > 1;
    if (!dummy && prefetching) {
        const BlockId block = protocol_->decompose(pa)[kLevelData];
        const auto it = inFlightBlocks_.find(block);
        if (it != inFlightBlocks_.end() && it->second > 0) {
            // Miss merges into the outstanding fill of its widened
            // block: all of the block's lines return with that fill.
            ++stats_.llcHits;
            ++stats_.served;
            return;
        }
    }
    palermo_assert(canAccept(), "push into a busy ring column");
    const unsigned col =
        static_cast<unsigned>(nextGid_ % config_.columns);
    ColumnCtx &ctx = cols_[col];
    ctx = ColumnCtx{};
    ctx.busy = true;
    ctx.gid = nextGid_++;
    ctx.pa = pa;
    ctx.ids = protocol_->decompose(pa);
    if (prefetching && !dummy)
        ++inFlightBlocks_[ctx.ids[kLevelData]];
    ctx.write = write;
    ctx.value = value;
    ctx.dummy = dummy;
    ctx.startTick = kTickNever; // Set on first tick.

    for (unsigned level = 0; level < kHierLevels; ++level) {
        // Reset in place: pe.plan keeps its buffer capacities and is
        // overwritten by beginLevelInto() in the critical section.
        PeState &pe = pes_[col][level];
        pe.stage = PeStage::WaitLeaf;
        pe.opIdx = 0;
        pe.outstanding = 0;
        pe.leafReadyAt = kTickNever;
        pe.cleared = false;
    }
    ++activeColumns_;
    maxActiveColumns_ = std::max(maxActiveColumns_, activeColumns_);
}

Phase *
PalermoController::issuingPhase(PeState &pe)
{
    PhaseKind kind;
    switch (pe.stage) {
      case PeStage::IssueLm: kind = PhaseKind::LoadMeta; break;
      case PeStage::IssueErRead: kind = PhaseKind::ResetRead; break;
      case PeStage::IssueErWrite: kind = PhaseKind::ResetWrite; break;
      case PeStage::IssueRp: kind = PhaseKind::ReadPath; break;
      case PeStage::IssueEpRead: kind = PhaseKind::EvictRead; break;
      case PeStage::IssueEpWrite: kind = PhaseKind::EvictWrite; break;
      default: return nullptr;
    }
    for (Phase &phase : pe.plan.phases) {
        if (phase.kind == kind)
            return &phase;
    }
    return nullptr;
}

void
PalermoController::clearSibling(unsigned level, std::uint64_t gid)
{
    palermo_assert(clearedThrough_[level] == gid,
                   "sibling token passed out of order");
    clearedThrough_[level] = gid + 1;
}

void
PalermoController::issueOps(unsigned col, unsigned level, PeState &pe,
                            DramSystem &dram)
{
    Phase *phase = issuingPhase(pe);
    if (phase == nullptr)
        return;
    unsigned issued = 0;
    while (issued < config_.issuePerPe && pe.opIdx < phase->ops.size()) {
        const MemOp &op = phase->ops[pe.opIdx];
        if (op.write) {
            if (!dram.enqueue(op.addr, true, 0))
                break;
            ++stats_.issuedWrites;
        } else {
            const std::uint64_t tag = nextTag_++;
            if (!dram.enqueue(op.addr, false, tag))
                break;
            tagMap_[tag] = (static_cast<std::uint32_t>(col) << 2) | level;
            ++pe.outstanding;
            ++stats_.issuedReads;
        }
        ++pe.opIdx;
        ++issued;
    }
}

void
PalermoController::stepPe(unsigned col, unsigned level, DramSystem &dram)
{
    PeState &pe = pes_[col][level];
    ColumnCtx &ctx = cols_[col];
    const Tick now = dram.now();

    // Allow several zero-cost transitions per cycle, but a single issue
    // window (issueOps) per cycle.
    bool issued_this_cycle = false;
    for (int guard = 0; guard < 16; ++guard) {
        switch (pe.stage) {
          case PeStage::Idle:
          case PeStage::Finalized:
            return;

          case PeStage::WaitLeaf:
            if (level == kLevelPos2) {
                // CP against the on-chip PosMap3.
                if (pe.leafReadyAt == kTickNever) {
                    pe.leafReadyAt = now + config_.posmap3Latency;
                    return;
                }
                if (now < pe.leafReadyAt)
                    return;
            } else if (config_.swMode) {
                // Software: the next level starts only after the child
                // level's ORAM access fully completes.
                if (!ctx.finalized[level + 1])
                    return;
            } else {
                // Hardware CP: the child's ReadPath response carries the
                // leaf.
                if (!ctx.rpDone[level + 1])
                    return;
            }
            pe.stage = PeStage::WaitSibling;
            break;

          case PeStage::WaitSibling:
            // West->east tree-write token, in CommitHead order. The
            // software variant additionally spins on the global
            // CommitHead (Algorithm 2 line 4): request g+1 enters only
            // after request g released the whole-hierarchy lock.
            if (config_.swMode && swGlobalCleared_ != ctx.gid)
                return;
            if (clearedThrough_[level] != ctx.gid)
                return;
            // Critical section: functional leaf resolve + remap +
            // pre-check reshuffles, applied in per-tree commit order.
            protocol_->beginLevelInto(level, ctx.ids[level], &pe.plan);
            if (level == kLevelData) {
                // The plan's old leaf is the path ReadPath will touch:
                // this is the commit-ordered attacker-visible address.
                stats_.observeLeaf(pe.plan.oldLeaf);
                ctx.readValue =
                    protocol_->finishData(ctx.pa, ctx.write, ctx.value);
            }
            pe.opIdx = 0;
            pe.stage = PeStage::IssueLm;
            break;

          case PeStage::IssueLm:
          case PeStage::IssueErRead:
          case PeStage::IssueErWrite:
          case PeStage::IssueRp:
          case PeStage::IssueEpRead:
          case PeStage::IssueEpWrite: {
            Phase *phase = issuingPhase(pe);
            const std::size_t total = phase ? phase->ops.size() : 0;
            if (pe.opIdx < total) {
                if (issued_this_cycle)
                    return;
                issueOps(col, level, pe, dram);
                issued_this_cycle = true;
                if (pe.opIdx < total)
                    return; // Backpressure or width limit; retry next cycle.
            }
            // Phase fully issued: transition.
            pe.opIdx = 0;
            switch (pe.stage) {
              case PeStage::IssueLm:
                pe.stage = PeStage::WaitLm;
                break;
              case PeStage::IssueErRead:
                pe.stage = PeStage::WaitErRead;
                break;
              case PeStage::IssueErWrite:
                // HW: issuing the ER writes passes the tree to the east
                // sibling (unless an EvictPath extends the write phase).
                if (!config_.swMode && !pe.plan.hasEvict && !pe.cleared) {
                    clearSibling(level, ctx.gid);
                    pe.cleared = true;
                }
                pe.stage = PeStage::IssueRp;
                break;
              case PeStage::IssueRp:
                // SW: the coarse per-tree lock spans the PosMap check
                // through RP issue; release it here. The global
                // CommitHead is released by the last (data) level.
                if (config_.swMode && !pe.plan.hasEvict && !pe.cleared) {
                    clearSibling(level, ctx.gid);
                    pe.cleared = true;
                    if (level == kLevelData)
                        swGlobalCleared_ = ctx.gid + 1;
                }
                pe.stage = PeStage::WaitRp;
                break;
              case PeStage::IssueEpRead:
                pe.stage = PeStage::WaitEpRead;
                break;
              case PeStage::IssueEpWrite:
                if (!pe.cleared) {
                    clearSibling(level, ctx.gid);
                    pe.cleared = true;
                }
                if (config_.swMode && level == kLevelData)
                    swGlobalCleared_ = ctx.gid + 1;
                pe.stage = PeStage::Finalized;
                ctx.finalized[level] = true;
                break;
              default:
                panic("unreachable issue stage");
            }
            break;
          }

          case PeStage::WaitLm:
            if (pe.outstanding > 0)
                return;
            pe.stage = PeStage::IssueErRead;
            break;

          case PeStage::WaitErRead:
            if (pe.outstanding > 0)
                return;
            pe.stage = PeStage::IssueErWrite;
            break;

          case PeStage::WaitRp:
            if (pe.outstanding > 0)
                return;
            // RP response: leaf to the parent / data to the LLC.
            if (!ctx.rpDone[level]) {
                ctx.rpDone[level] = true;
                if (level == kLevelData) {
                    ctx.responseTick = now + config_.decryptLatency;
                }
            }
            if (pe.plan.hasEvict) {
                pe.stage = PeStage::IssueEpRead;
            } else {
                pe.stage = PeStage::Finalized;
                ctx.finalized[level] = true;
            }
            break;

          case PeStage::WaitEpRead:
            if (pe.outstanding > 0)
                return;
            pe.stage = PeStage::IssueEpWrite;
            break;
        }
    }
}

void
PalermoController::tryRetire(Tick now)
{
    for (;;) {
        const unsigned col =
            static_cast<unsigned>(commitHead_ % config_.columns);
        ColumnCtx &ctx = cols_[col];
        if (!ctx.busy || ctx.gid != commitHead_)
            return;
        for (unsigned level = 0; level < kHierLevels; ++level) {
            if (!ctx.finalized[level])
                return;
        }
        // Retire in CommitHead order.
        if (protocol_->config().prefetchLen > 1 && !ctx.dummy) {
            auto it = inFlightBlocks_.find(ctx.ids[kLevelData]);
            if (it != inFlightBlocks_.end() && --it->second == 0)
                inFlightBlocks_.erase(it);
        }
        const Tick response =
            ctx.responseTick == kTickNever ? now : ctx.responseTick;
        const double latency =
            static_cast<double>(response - ctx.startTick);
        if (ctx.dummy) {
            ++stats_.dummies;
        } else {
            ++stats_.served;
            stats_.latency.sample(latency);
            bool from_stash = false;
            for (unsigned level = 0; level < kHierLevels; ++level) {
                const PeState &pe = pes_[col][level];
                if (pe.plan.level == kLevelData)
                    from_stash = pe.plan.servedFromStash;
            }
            stats_.samples.push_back({latency, from_stash});
        }
        ctx.busy = false;
        --activeColumns_;
        ++commitHead_;
    }
}

bool
PalermoController::tickIdle(std::uint64_t cycles)
{
    // Exactly `cycles` iterations of tick()'s idle early-return: the
    // gate below (activeColumns_ == 0) is idle(), and that path is
    // pure accounting.
    palermo_assert(idle());
    stats_.totalCycles += cycles;
    stats_.idleCycles += cycles;
    return true;
}

void
PalermoController::tick(DramSystem &dram)
{
    ++stats_.totalCycles;
    if (activeColumns_ == 0) {
        ++stats_.idleCycles;
        return;
    }
    if (dram.dataBusActive())
        ++stats_.dramCycles[kLevelData];
    else
        ++stats_.syncCycles[kLevelData];

    const Tick now = dram.now();
    for (ColumnCtx &ctx : cols_) {
        if (ctx.busy && ctx.startTick == kTickNever)
            ctx.startTick = now;
    }

    // Step deepest levels first so leaf responses propagate north within
    // the same cycle when timing allows.
    for (unsigned level = kHierLevels; level-- > 0;) {
        for (unsigned col = 0; col < config_.columns; ++col) {
            if (cols_[col].busy)
                stepPe(col, level, dram);
        }
    }
    tryRetire(now);
}

void
PalermoController::onCompletion(std::uint64_t tag)
{
    auto it = tagMap_.find(tag);
    palermo_assert(it != tagMap_.end(), "unknown completion tag");
    const unsigned col = it->second >> 2;
    const unsigned level = it->second & 3;
    tagMap_.erase(it);
    PeState &pe = pes_[col][level];
    palermo_assert(pe.outstanding > 0, "completion without outstanding");
    --pe.outstanding;
}

bool
PalermoController::idle() const
{
    return activeColumns_ == 0;
}

const Stash &
PalermoController::stashOf(unsigned level) const
{
    return protocol_->stashOf(level);
}

Stash &
PalermoController::stashOf(unsigned level)
{
    return protocol_->stashOf(level);
}

namespace {

/** Shared builder: both Palermo bars drive the same PE mesh. */
std::unique_ptr<Controller>
buildPalermo(const SystemConfig &config)
{
    PalermoControllerConfig hw = config.palermo;
    hw.swMode = false;
    hw.decryptLatency = config.decryptLatency;
    return std::make_unique<PalermoController>(
        std::make_unique<PalermoOram>(config.protocol), hw);
}

/** Registry entry: the co-designed hardware controller (paper §V). */
ProtocolDescriptor
palermoDescriptor()
{
    ProtocolDescriptor d;
    d.kind = ProtocolKind::Palermo;
    d.displayName = "Palermo";
    d.shortToken = "palermo";
    d.barOrder = 6;
    d.build = buildPalermo;
    return d;
}

/**
 * Registry entry: Palermo with block-widening prefetch (Fig. 10's
 * rightmost bar). The adjust hook derives a usable prefetch length
 * when the caller left the no-prefetch default in place — before the
 * registry, this design point silently inherited whatever
 * config.protocol.prefetchLen happened to be, so "palermo-pf" with a
 * default config was indistinguishable from plain Palermo.
 */
ProtocolDescriptor
palermoPrefetchDescriptor()
{
    ProtocolDescriptor d;
    d.kind = ProtocolKind::PalermoPrefetch;
    d.displayName = "Palermo+Prefetch";
    d.shortToken = "palermo-pf";
    d.aliases = {"palermo-prefetch", "palermo+prefetch", "palermo+pf"};
    d.barOrder = 7;
    d.supportsPrefetch = true;
    d.adjustConfig = [](SystemConfig &config) {
        // Middle of the Fig. 10 PrORAM probe grid {2, 4, 8}, the
        // paper's most common per-workload pick.
        constexpr unsigned kDefaultPrefetchLen = 4;
        if (config.protocol.prefetchLen <= 1)
            config.protocol.prefetchLen = kDefaultPrefetchLen;
    };
    d.build = buildPalermo;
    return d;
}

const ProtocolRegistrar palermoRegistrar{palermoDescriptor()};
const ProtocolRegistrar prefetchRegistrar{palermoPrefetchDescriptor()};

} // namespace

} // namespace palermo
