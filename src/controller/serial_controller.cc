/**
 * @file
 * Baseline serial timing (paper §III-A): one ORAM request at a time,
 * phase-by-phase issue with intra-phase read concurrency.
 */

#include "controller/serial_controller.hh"

#include "common/log.hh"

namespace palermo {

SerialController::SerialController(std::unique_ptr<Protocol> protocol,
                                   unsigned issue_width,
                                   std::size_t queue_limit,
                                   unsigned decrypt_latency)
    : protocol_(std::move(protocol)), issueWidth_(issue_width),
      queueLimit_(queue_limit), decryptLatency_(decrypt_latency),
      queue_(PoolAllocator<Pending>(&pool_))
{
    palermo_assert(protocol_ != nullptr);
    palermo_assert(issue_width > 0 && queue_limit > 0);
    stats_.leafSpace = protocol_->dataLeaves();
}

bool
SerialController::canAccept() const
{
    return queue_.size() < queueLimit_;
}

void
SerialController::push(BlockId pa, bool write, std::uint64_t value,
                       bool dummy)
{
    palermo_assert(canAccept());
    // Functional conversion happens at admission; the serial execution
    // order equals admission order, so plan-time state is consistent.
    planScratch_.clear();
    protocol_->accessInto(pa, write, value, &planScratch_);
    for (RequestPlan &plan : planScratch_) {
        // Admission order is execution order here, so the data-level
        // path of each plan is the attacker-visible address in order.
        for (const LevelPlan &level : plan.levels)
            if (level.level == kLevelData)
                stats_.observeLeaf(level.oldLeaf);
        Pending pending;
        pending.plan = std::move(plan);
        pending.dummy = dummy || pending.plan.dummy;
        queue_.push_back(std::move(pending));
    }
}

unsigned
SerialController::currentLevel(const Pending &req) const
{
    if (req.levelIdx < req.plan.levels.size())
        return req.plan.levels[req.levelIdx].level;
    return kLevelData;
}

bool
SerialController::phaseIssued(const Pending &req) const
{
    const LevelPlan &level = req.plan.levels[req.levelIdx];
    return req.opIdx >= level.phases[req.phaseIdx].ops.size();
}

void
SerialController::retire(Pending &req, Tick now)
{
    if (req.plan.llcHit) {
        ++stats_.llcHits;
        ++stats_.served;
        protocol_->recyclePlan(std::move(req.plan));
        return;
    }
    const Tick response =
        req.responseTick == kTickNever ? now : req.responseTick;
    const double latency = static_cast<double>(response - req.startTick)
        + decryptLatency_;
    if (req.dummy) {
        ++stats_.dummies;
    } else {
        ++stats_.served;
        stats_.latency.sample(latency);
        bool from_stash = false;
        for (const LevelPlan &level : req.plan.levels) {
            if (level.level == kLevelData)
                from_stash = level.servedFromStash;
        }
        stats_.samples.push_back({latency, from_stash});
    }
    protocol_->recyclePlan(std::move(req.plan));
}

void
SerialController::advance(Pending &req, Tick now)
{
    while (req.levelIdx < req.plan.levels.size()) {
        const LevelPlan &level = req.plan.levels[req.levelIdx];
        if (req.phaseIdx >= level.phases.size()) {
            ++req.levelIdx;
            req.phaseIdx = 0;
            req.opIdx = 0;
            continue;
        }
        const Phase &phase = level.phases[req.phaseIdx];
        const bool issued = req.opIdx >= phase.ops.size();
        if (issued && req.outstandingReads == 0) {
            // Response point: the Data-level ReadPath completed.
            if (level.level == kLevelData
                && phase.kind == PhaseKind::ReadPath
                && req.responseTick == kTickNever) {
                req.responseTick = now;
            }
            ++req.phaseIdx;
            req.opIdx = 0;
            continue;
        }
        break;
    }
}

bool
SerialController::tickIdle(std::uint64_t cycles)
{
    // Exactly `cycles` iterations of tick()'s idle early-return: the
    // gate below (queue_.empty()) is idle(), and that path is pure
    // accounting.
    palermo_assert(idle());
    stats_.totalCycles += cycles;
    stats_.idleCycles += cycles;
    return true;
}

void
SerialController::tick(DramSystem &dram)
{
    ++stats_.totalCycles;
    if (queue_.empty()) {
        ++stats_.idleCycles;
        return;
    }

    Pending &req = queue_.front();
    const Tick now = dram.now();
    if (!req.started) {
        req.started = true;
        req.startTick = now;
    }

    if (req.plan.llcHit || req.plan.levels.empty()) {
        retire(req, now);
        queue_.pop_front();
        return;
    }

    // Cycle attribution: charge the level currently being served; a
    // cycle is "dram" if any channel moved data, else "ORAM-sync".
    const unsigned level = currentLevel(req);
    if (dram.dataBusActive())
        ++stats_.dramCycles[level];
    else
        ++stats_.syncCycles[level];

    advance(req, now);
    if (req.levelIdx >= req.plan.levels.size()) {
        retire(req, now);
        queue_.pop_front();
        return;
    }

    // Issue this phase's operations, up to the issue width, respecting
    // DRAM queue backpressure.
    LevelPlan &lp = req.plan.levels[req.levelIdx];
    Phase &phase = lp.phases[req.phaseIdx];
    unsigned issued_now = 0;
    while (issued_now < issueWidth_ && req.opIdx < phase.ops.size()) {
        const MemOp &op = phase.ops[req.opIdx];
        if (!dram.enqueue(op.addr, op.write, /*tag=*/0))
            break;
        if (op.write) {
            ++stats_.issuedWrites;
        } else {
            ++stats_.issuedReads;
            ++req.outstandingReads;
        }
        ++req.opIdx;
        ++issued_now;
    }
    advance(req, now);
    if (req.levelIdx >= req.plan.levels.size()) {
        retire(req, now);
        queue_.pop_front();
    }
}

void
SerialController::onCompletion(std::uint64_t tag)
{
    (void)tag;
    // Only one request executes at a time, so every read completion
    // belongs to its current phase.
    palermo_assert(!queue_.empty(), "completion with empty queue");
    Pending &req = queue_.front();
    palermo_assert(req.outstandingReads > 0,
                   "completion without outstanding read");
    --req.outstandingReads;
}

bool
SerialController::idle() const
{
    return queue_.empty();
}

const Stash &
SerialController::stashOf(unsigned level) const
{
    return protocol_->stashOf(level);
}

Stash &
SerialController::stashOf(unsigned level)
{
    return protocol_->stashOf(level);
}

} // namespace palermo
