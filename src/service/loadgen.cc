/**
 * @file
 * Load-generator option parsing, point expansion, the open/closed-loop
 * drivers, and the sweep document renderer.
 */

#include "service/loadgen.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <deque>
#include <sstream>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/run_cli.hh"

namespace palermo {

namespace {

bool
fail(std::string *error, const std::string &message)
{
    if (error)
        *error = message;
    return false;
}

/** Strict finite double parse (whole string, no whitespace). */
bool
parseDoubleStrict(const std::string &text, double *value)
{
    if (text.empty())
        return false;
    const char *begin = text.data();
    const char *end = begin + text.size();
    double parsed = 0.0;
    const auto result = std::from_chars(begin, end, parsed);
    if (result.ec != std::errc() || result.ptr != end
        || !std::isfinite(parsed))
        return false;
    *value = parsed;
    return true;
}

/** Split "a,b,c" on commas (no empty fields allowed). */
bool
splitList(const std::string &text, std::vector<std::string> *fields)
{
    std::string field;
    std::stringstream stream(text);
    while (std::getline(stream, field, ',')) {
        if (field.empty())
            return false;
        fields->push_back(field);
    }
    return !fields->empty() && text.back() != ',';
}

} // namespace

bool
parseLoadgenArgs(int argc, const char *const *argv,
                 LoadgenOptions *options, std::string *error)
{
    LoadgenOptions result;

    ArgCursor cursor(argc, argv);
    while (cursor.advance()) {
        const std::string name = cursor.name();
        std::string value;

        if (name == "--help" || name == "-h") {
            result.help = true;
        } else if (name == "--list-protocols") {
            result.listProtocols = true;
        } else if (name == "--paper") {
            result.paperGeometry = true;
        } else if (name == "--progress") {
            result.progress = true;
        } else if (name == "--protocol") {
            if (!cursor.value(&value))
                return fail(error, "--protocol needs a name");
            if (!protocolFromName(value, &result.protocol))
                return fail(error, "unknown protocol '" + value + "'");
        } else if (name == "--blocks") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.blocks)
                || result.blocks == 0)
                return fail(error, "--blocks needs a positive integer");
        } else if (name == "--seed") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.seed))
                return fail(error, "--seed needs an unsigned integer");
            result.seedSet = true;
        } else if (name == "--sim-threads") {
            std::uint64_t threads = 0;
            if (!cursor.value(&value)
                || !parseUnsigned(value, &threads) || threads == 0)
                return fail(error,
                            "--sim-threads needs a positive integer");
            result.simThreads = static_cast<unsigned>(threads);
        } else if (name == "--openloop") {
            std::vector<std::string> fields;
            if (!cursor.value(&value) || !splitList(value, &fields))
                return fail(error,
                            "--openloop needs rate[,rate...] "
                            "(req/kilocycle)");
            for (const std::string &field : fields) {
                double rate = 0.0;
                if (!parseDoubleStrict(field, &rate) || rate <= 0.0)
                    return fail(error, "--openloop rate '" + field
                                           + "' must be > 0");
                result.openloopRates.push_back(rate);
            }
        } else if (name == "--closedloop") {
            std::vector<std::string> fields;
            if (!cursor.value(&value) || !splitList(value, &fields))
                return fail(error,
                            "--closedloop needs N[,N...] outstanding "
                            "requests");
            for (const std::string &field : fields) {
                std::uint64_t concurrency = 0;
                if (!parseUnsigned(field, &concurrency)
                    || concurrency == 0)
                    return fail(error, "--closedloop count '" + field
                                           + "' must be > 0");
                result.closedloopConcurrency.push_back(
                    static_cast<unsigned>(concurrency));
            }
        } else if (name == "--arrival") {
            if (!cursor.value(&value))
                return fail(error, "--arrival needs poisson|fixed");
            if (value == "poisson")
                result.arrival = ArrivalProcess::Poisson;
            else if (value == "fixed")
                result.arrival = ArrivalProcess::Fixed;
            else
                return fail(error,
                            "unknown arrival process '" + value + "'");
        } else if (name == "--dist") {
            if (!cursor.value(&value))
                return fail(error, "--dist needs zipf|uniform");
            if (value == "zipf")
                result.dist = KeyDist::Zipf;
            else if (value == "uniform")
                result.dist = KeyDist::Uniform;
            else
                return fail(error,
                            "unknown key distribution '" + value + "'");
        } else if (name == "--zipf-alpha") {
            if (!cursor.value(&value)
                || !parseDoubleStrict(value, &result.zipfAlpha)
                || result.zipfAlpha < 0.0)
                return fail(error, "--zipf-alpha needs a number >= 0");
        } else if (name == "--write-frac") {
            if (!cursor.value(&value)
                || !parseDoubleStrict(value, &result.writeFraction)
                || result.writeFraction < 0.0
                || result.writeFraction > 1.0)
                return fail(error, "--write-frac needs 0 <= F <= 1");
        } else if (name == "--tenants") {
            std::uint64_t tenants = 0;
            if (!cursor.value(&value)
                || !parseUnsigned(value, &tenants) || tenants == 0)
                return fail(error,
                            "--tenants needs a positive integer");
            result.tenants = static_cast<unsigned>(tenants);
        } else if (name == "--requests") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.requests)
                || result.requests == 0)
                return fail(error,
                            "--requests needs a positive integer");
        } else if (name == "--warmup") {
            if (!cursor.value(&value)
                || !parseDoubleStrict(value, &result.warmupFraction)
                || result.warmupFraction < 0.0)
                return fail(error,
                            "--warmup needs a fraction >= 0 of "
                            "--requests");
        } else if (name == "--duration") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.duration)
                || result.duration == 0)
                return fail(error,
                            "--duration needs a positive cycle count");
        } else if (name == "--queue-capacity") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.queueCapacity)
                || result.queueCapacity == 0)
                return fail(error,
                            "--queue-capacity needs a positive integer");
        } else if (name == "--queue-policy") {
            if (!cursor.value(&value)
                || !queuePolicyFromName(value, &result.queuePolicy))
                return fail(error, "--queue-policy needs reject|block");
        } else if (name == "--depth") {
            if (!cursor.value(&value)
                || !parseUnsigned(value, &result.sessionDepth)
                || result.sessionDepth == 0)
                return fail(error, "--depth needs a positive integer");
        } else if (name == "--json") {
            if (!cursor.value(&value))
                return fail(error, "--json needs a path (or '-')");
            result.jsonPath = value;
        } else {
            return fail(error, "unknown flag '" + name + "'");
        }
    }

    *options = result;
    return true;
}

SystemConfig
LoadgenOptions::baseConfig() const
{
    SystemConfig config = paperGeometry ? SystemConfig::paperTableIII()
                                        : SystemConfig::benchDefault();
    if (blocks)
        config.protocol.numBlocks = blocks;
    if (seedSet) {
        config.seed = seed;
        config.protocol.seed = seed;
    }
    config.simThreads = simThreads;
    return config;
}

std::vector<LoadPointSpec>
expandLoadPoints(const LoadgenOptions &options)
{
    std::vector<LoadPointSpec> points;
    for (double rate : options.openloopRates) {
        LoadPointSpec spec;
        spec.index = points.size();
        spec.closedLoop = false;
        spec.rate = rate;
        points.push_back(spec);
    }
    for (unsigned concurrency : options.closedloopConcurrency) {
        LoadPointSpec spec;
        spec.index = points.size();
        spec.closedLoop = true;
        spec.concurrency = concurrency;
        points.push_back(spec);
    }
    if (points.empty()) {
        // No mode given: a small closed-loop probe beats an error.
        LoadPointSpec spec;
        spec.closedLoop = true;
        spec.concurrency = 4;
        points.push_back(spec);
    }
    return points;
}

namespace {

/** Bind the shared key sampler to a load point's options and seed. */
TenantKeySampler
keySourceFor(const LoadgenOptions &options, std::uint64_t slice_size,
             std::uint64_t point_seed)
{
    return TenantKeySampler(options.dist, options.zipfAlpha,
                            options.tenants, slice_size, point_seed);
}

/** One not-yet-accepted arrival held at the client (Block policy). */
struct PendingArrival
{
    unsigned tenant;
    std::uint64_t key;
    bool write;
    std::uint64_t value;
    Tick arrival;
};

ServiceConfig
serviceConfigFor(const LoadgenOptions &options,
                 const LoadPointSpec &spec, std::uint64_t warmup,
                 std::uint64_t planned)
{
    ServiceConfig config;
    config.protocol = options.protocol;
    config.system = options.baseConfig();
    config.system.totalRequests = planned;
    config.system.warmupFraction = planned
        ? static_cast<double>(warmup) / static_cast<double>(planned)
        : 0.0;
    config.tenants = options.tenants;
    config.queueCapacity = options.queueCapacity;
    if (spec.closedLoop)
        // A queue smaller than the concurrency would silently shed
        // clients on the initial burst; closed loop never rejects.
        config.queueCapacity = std::max<std::size_t>(
            config.queueCapacity, spec.concurrency);
    config.queuePolicy = options.queuePolicy;
    config.sessionDepth = options.sessionDepth;
    config.warmupCompletions = warmup;
    return config;
}

std::string
pointId(const LoadgenOptions &options, const LoadPointSpec &spec)
{
    std::string id = protocolShortName(options.protocol);
    if (spec.closedLoop) {
        id += "/closed/conc=" + std::to_string(spec.concurrency);
    } else {
        id += std::string("/open-")
            + arrivalProcessName(options.arrival)
            + "/rate=" + jsonNumber(spec.rate);
    }
    return id;
}

std::string
workloadLabelFor(const LoadgenOptions &options)
{
    std::string label = "svc:";
    label += options.dist == KeyDist::Zipf
        ? "zipf" + jsonNumber(options.zipfAlpha)
        : "uniform";
    label += ":" + std::to_string(options.tenants) + "t";
    return label;
}

ServiceRunRecord
condenseRecord(const LoadgenOptions &options, const LoadPointSpec &spec,
               ObliviousKvService &service)
{
    ServiceRunRecord record;
    record.spec = spec;
    record.base.point.index = spec.index;
    record.base.point.kind = options.protocol;
    record.base.point.workload = Workload::Redis; // Label overrides.
    record.base.point.workloadLabel = workloadLabelFor(options);
    record.base.point.config = service.config().system;
    record.base.point.id = pointId(options, spec);
    record.base.metrics = service.simMetrics();
    record.service = service.snapshot();
    return record;
}

ServiceRunRecord
runOpenLoop(const LoadgenOptions &options, const LoadPointSpec &spec)
{
    const auto warmup = static_cast<std::uint64_t>(
        static_cast<double>(options.requests) * options.warmupFraction);
    std::uint64_t planned = warmup + options.requests;
    ObliviousKvService service(
        serviceConfigFor(options, spec, warmup, planned));

    const std::uint64_t point_seed =
        mix64(service.config().system.seed ^ (0x6f70656eull + spec.index));
    Rng rng(mix64(point_seed ^ 0x617272697665ull));
    TenantKeySampler keys =
        keySourceFor(options, service.tenants().sliceSize(), point_seed);

    const double mean_gap = 1000.0 / spec.rate;
    // Exact arrival instants accumulate in double so fixed-interval
    // sweeps do not drift; ticks are the floor of the exact instant.
    double next_exact = arrivalGap(options.arrival, mean_gap, rng);

    std::uint64_t generated = 0;
    std::deque<PendingArrival> blocked;
    while (generated < planned || !blocked.empty()) {
        if (!blocked.empty()) {
            // Head-of-line arrival waiting out backpressure: retry
            // every cycle; its latency clock started at its arrival.
            const PendingArrival &head = blocked.front();
            if (service.offer(head.tenant, head.key, head.write,
                              head.value, head.arrival)
                != Admission::WouldBlock)
                blocked.pop_front();
            else
                service.step(1);
            continue;
        }
        if (generated >= planned)
            break;
        const auto due = static_cast<Tick>(next_exact);
        if (options.duration && due >= options.duration) {
            planned = generated; // Duration cap: stop generating.
            continue;
        }
        const Tick now = service.now();
        if (now < due) {
            service.step(due - now);
            continue;
        }
        PendingArrival arrival;
        arrival.tenant = static_cast<unsigned>(
            rng.range(options.tenants));
        arrival.key = keys.draw(arrival.tenant);
        arrival.write = rng.chance(options.writeFraction);
        arrival.value = generated;
        arrival.arrival = due;
        if (service.offer(arrival.tenant, arrival.key, arrival.write,
                          arrival.value, arrival.arrival)
            == Admission::WouldBlock)
            blocked.push_back(arrival);
        ++generated;
        next_exact += arrivalGap(options.arrival, mean_gap, rng);
    }
    service.drainAll();
    return condenseRecord(options, spec, service);
}

ServiceRunRecord
runClosedLoop(const LoadgenOptions &options, const LoadPointSpec &spec)
{
    const auto warmup = static_cast<std::uint64_t>(
        static_cast<double>(options.requests) * options.warmupFraction);
    const std::uint64_t target = warmup + options.requests;
    ObliviousKvService service(
        serviceConfigFor(options, spec, warmup, target));

    const std::uint64_t point_seed = mix64(
        service.config().system.seed ^ (0x636c6f736564ull + spec.index));
    Rng rng(mix64(point_seed ^ 0x617272697665ull));
    TenantKeySampler keys =
        keySourceFor(options, service.tenants().sliceSize(), point_seed);

    std::uint64_t issued = 0;
    const auto issue = [&](Tick arrival) {
        const auto tenant =
            static_cast<unsigned>(rng.range(options.tenants));
        const Admission admission = service.offer(
            tenant, keys.draw(tenant),
            rng.chance(options.writeFraction), issued, arrival);
        palermo_assert(admission == Admission::Accepted,
                       "closed loop must never see backpressure");
        ++issued;
    };

    // Think time zero: keep `concurrency` requests in the system until
    // the completion target is met, then let the tail drain.
    const std::uint64_t initial =
        std::min<std::uint64_t>(spec.concurrency, target);
    while (issued < initial)
        issue(0);
    while (service.completedTotal() < target) {
        const std::uint64_t done = service.step(1);
        for (std::uint64_t i = 0; i < done && issued < target; ++i)
            issue(service.now());
    }
    service.drainAll();
    return condenseRecord(options, spec, service);
}

} // namespace

ServiceRunRecord
runLoadPoint(const LoadgenOptions &options, const LoadPointSpec &spec)
{
    return spec.closedLoop ? runClosedLoop(options, spec)
                           : runOpenLoop(options, spec);
}

std::string
loadgenDocument(const std::vector<ServiceRunRecord> &records)
{
    JsonWriter w;
    w.beginObject();
    MetricsJson::writeHeader(w, "palermo_loadgen");
    w.key("points").beginArray();
    for (const ServiceRunRecord &record : records) {
        MetricsJson::writeRecord(w, record.base, [&](JsonWriter &inner) {
            inner.field("mode",
                        record.spec.closedLoop ? "closed" : "open");
            if (record.spec.closedLoop) {
                inner.field("concurrency", record.spec.concurrency);
            } else {
                inner.field("target_rate_per_kilocycle",
                            record.spec.rate);
            }
            inner.key("service");
            writeServiceSnapshot(inner, record.service);
        });
    }
    w.endArray();
    double max_achieved = 0.0;
    for (const ServiceRunRecord &record : records)
        max_achieved = std::max(max_achieved,
                                record.service.achievedPerKilocycle);
    MetricsJson::writeDerived(
        w, {{"max_achieved_per_kilocycle", max_achieved}});
    w.endObject();
    std::string text = w.str();
    text.push_back('\n');
    return text;
}

bool
serviceSanityCheck(const std::vector<ServiceRunRecord> &records,
                   std::vector<std::string> *problems)
{
    bool clean = true;
    const auto report = [&](const std::string &message) {
        clean = false;
        if (problems)
            problems->push_back(message);
    };
    for (const ServiceRunRecord &record : records) {
        const std::string &id = record.base.point.id;
        const ServiceScopeSnapshot &global = record.service.global;
        if (record.base.metrics.stashOverflowed
            && !record.base.point.allowStashOverflow)
            report(id + ": stash overflowed");
        if (global.completed == 0)
            report(id + ": no responses completed");
        if (!std::isfinite(record.service.achievedPerKilocycle)
            || record.service.achievedPerKilocycle <= 0.0)
            report(id + ": degenerate achieved rate");
        if (global.latency.quantile(0.99)
            < global.latency.quantile(0.50))
            report(id + ": latency quantiles out of order");
        if (global.accepted != global.completed)
            report(id + ": " + std::to_string(global.accepted)
                   + " accepted but " + std::to_string(global.completed)
                   + " completed (lost requests)");
    }
    return clean;
}

std::string
loadgenUsage()
{
    std::ostringstream os;
    os << "usage: palermo_loadgen [options]\n"
       << "\n"
       << "Drive the oblivious KV service with open-loop or "
          "closed-loop load\n"
       << "and emit one palermo-metrics-v1 record per design point.\n"
       << "\n"
       << "load shape:\n"
       << "  --openloop R[,R..]  open-loop target rates "
          "(req/kilocycle);\n"
       << "                      one sweep point per rate\n"
       << "  --closedloop N[,N..] closed-loop outstanding requests;\n"
       << "                      one sweep point per count "
          "(default: 4)\n"
       << "  --arrival NAME      poisson|fixed inter-arrival gaps\n"
       << "                      (open loop; default: poisson)\n"
       << "  --requests N        measured completions per point "
          "(default: 2000)\n"
       << "  --warmup F          extra warmup requests as a fraction "
          "of\n"
       << "                      --requests (default: 0.5)\n"
       << "  --duration N        stop generating open-loop arrivals "
          "after\n"
       << "                      N cycles (accepted work still "
          "drains)\n"
       << "\n"
       << "keys and tenants:\n"
       << "  --tenants N         disjoint namespaces over the block "
          "space\n"
       << "                      (default: 1)\n"
       << "  --dist NAME         zipf|uniform key popularity "
          "(default: zipf)\n"
       << "  --zipf-alpha A      Zipf skew (default: 0.99)\n"
       << "  --write-frac F      PUT probability per request "
          "(default: 0)\n"
       << "\n"
       << "service:\n"
       << "  --queue-capacity N  bounded request queue size "
          "(default: 64)\n"
       << "  --queue-policy P    reject|block on a full queue "
          "(default:\n"
       << "                      reject; closed loop clamps capacity "
          ">= N)\n"
       << "  --depth N           requests queued ahead of the "
          "controller\n"
       << "                      (default: 8)\n"
       << "\n"
       << "simulator:\n"
       << "  --protocol NAME     ORAM design (default: palermo)\n"
       << "  --blocks N          protected 64B lines (default: 2^18)\n"
       << "  --paper             Table III 16 GB geometry\n"
       << "  --seed N            determinism seed (default: 1)\n"
       << "  --sim-threads N     threads stepping each session\n"
       << "                      (byte-identical to serial; "
          "default: 1)\n"
       << "\n"
       << "output:\n"
       << "  --json PATH         palermo-metrics-v1 JSON "
          "('-' = stdout)\n"
       << "  --progress          per-point wall-clock req/s on "
          "stderr\n"
       << "  --list-protocols    print the protocol registry and "
          "exit\n"
       << "  --help              this text\n"
       << "\n"
       << "example (saturation curve):\n"
       << "  palermo_loadgen --openloop 0.5,1,2,4,8 --tenants 4 \\\n"
       << "      --requests 4000 --json curve.json\n";
    return os.str();
}

} // namespace palermo
