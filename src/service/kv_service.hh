/**
 * @file
 * ObliviousKvService: a multi-tenant KV serving layer over SimSession.
 *
 * The promotion of examples/oblivious_kv.cpp into a real subsystem:
 * clients present keyed GET/PUT arrivals (stamped with their issue
 * tick), a bounded FIFO queue applies backpressure, the tenant
 * directory resolves keys into disjoint slices of the shared
 * protected space, and the pump feeds the externally driven
 * SimSession at a bounded depth — so the full Palermo timing stack
 * (controller, DRAM, crypto latency) prices every response.
 *
 * Completion attribution: the ORAM controller retires the real
 * requests it admitted in order, so the service matches served-count
 * deltas against its in-flight FIFO — no per-request tags cross the
 * controller boundary. End-to-end latency is completion tick minus
 * arrival tick (client-side blocking and queueing included);
 * queueing delay is admission tick minus arrival tick.
 *
 * Everything is deterministic in (config, arrival sequence): stepping
 * happens on the caller's thread, the session's channel-sharded
 * parallelism (config.system.simThreads) is byte-invisible, and no
 * wall-clock value enters any statistic.
 */

#ifndef PALERMO_SERVICE_KV_SERVICE_HH
#define PALERMO_SERVICE_KV_SERVICE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/pool.hh"
#include "service/request_queue.hh"
#include "service/service_metrics.hh"
#include "service/tenant.hh"
#include "sim/session.hh"

namespace palermo {

/** Everything the serving layer adds on top of a SystemConfig. */
struct ServiceConfig
{
    ProtocolKind protocol = ProtocolKind::Palermo;
    SystemConfig system;

    unsigned tenants = 1;
    std::size_t queueCapacity = 64;
    QueuePolicy queuePolicy = QueuePolicy::Reject;

    /** Requests queued ahead of the controller inside the session. */
    std::size_t sessionDepth = 8;

    /**
     * Completions before the measurement boundary: service statistics
     * reset exactly when the Nth response lands. 0 measures from the
     * first cycle. Size system.totalRequests/warmupFraction so the
     * session's internal warmup agrees (the loadgen does this).
     */
    std::uint64_t warmupCompletions = 0;
};

/** One attributed response, as seen at the service boundary. */
struct ServiceCompletion
{
    std::uint32_t tenant;
    Tick arrival;    ///< Client-side issue tick.
    Tick completion; ///< Tick the response landed.
};

/** One KV serving instance. */
class ObliviousKvService
{
  public:
    explicit ObliviousKvService(const ServiceConfig &config);

    /** Simulated time (the session's DRAM clock). */
    Tick now() const { return session_.now(); }

    /**
     * Present one arrival. @p arrival is the client-side issue tick
     * (<= now()); it anchors latency and queueing delay even when the
     * Block policy makes the client retry the offer later.
     */
    Admission offer(unsigned tenant, std::uint64_t key, bool write,
                    std::uint64_t value, Tick arrival);

    /**
     * Advance simulated time. Pumps the queue into the session, steps
     * cycle by cycle while responses are in flight (so completion
     * ticks are exact), and skips empty gaps in one batched call.
     * @return Responses completed during these cycles.
     */
    std::uint64_t step(std::uint64_t cycles = 1);

    /** No queued work and no response in flight. */
    bool quiescent() const
    {
        return queue_.empty() && inflight_.empty();
    }

    /**
     * Run until quiescent (bounded by the session's runaway guard),
     * then settle the session's DRAM tail. Stops admitting nothing —
     * callers stop offering first.
     */
    void drainAll();

    /** Responses delivered since construction (warmup included). */
    std::uint64_t completedTotal() const { return completedTotal_; }

    /**
     * Observe every attributed completion (warmup included), in
     * completion order. Closed-loop sources use this to re-issue;
     * the sink must not call back into the service (it fires inside
     * step()).
     */
    void setCompletionSink(
        std::function<void(const ServiceCompletion &)> sink)
    {
        sink_ = std::move(sink);
    }

    /**
     * Record the attacker-visible data-tree leaf sequence from here
     * on. The trace spans warmup and the measured window alike — a
     * bus observer never stops watching.
     */
    void enableLeafTrace()
    {
        session_.controller().stats().recordLeafTrace = true;
    }

    /** Observed leaf sequence (empty unless enableLeafTrace ran). */
    const std::vector<Leaf> &leafTrace() const
    {
        return session_.controller().stats().leafTrace;
    }

    /** Data-tree leaf count (the trace's alphabet size). */
    std::uint64_t leafSpace() const
    {
        return session_.controller().stats().leafSpace;
    }

    /** Condense the service view (measured window only). */
    ServiceSnapshot snapshot() const;

    /** The simulator view, for the record's "metrics" block. */
    RunMetrics simMetrics() const { return session_.snapshot(); }

    const TenantDirectory &tenants() const { return tenants_; }
    const BoundedRequestQueue &queue() const { return queue_; }
    const ServiceConfig &config() const { return config_; }

  private:
    struct InFlight
    {
        std::uint32_t tenant;
        Tick arrival;
    };

    /** Move queued requests into the session up to sessionDepth. */
    void pump();

    /** Attribute newly served requests to in-flight FIFO entries. */
    std::uint64_t reap();

    /** Begin the measured window: reset stats, stamp the boundary. */
    void beginMeasurement();

    ServiceConfig config_;
    TenantDirectory tenants_;
    SimSession session_;
    BoundedRequestQueue queue_;
    PoolResource pool_; ///< Backs inflight_; declared first.
    /** Completion-attribution FIFO, pool-backed for the same reason as
     * the admission queue: steady-state serving stays off the heap. */
    std::deque<InFlight, PoolAllocator<InFlight>> inflight_;

    std::function<void(const ServiceCompletion &)> sink_;
    ServiceStats global_;
    std::vector<ServiceStats> perTenant_;
    std::uint64_t completedTotal_ = 0;
    std::uint64_t lastServed_ = 0;
    bool measuring_;
    Tick measureStart_ = 0;
};

} // namespace palermo

#endif // PALERMO_SERVICE_KV_SERVICE_HH
