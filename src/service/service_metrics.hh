/**
 * @file
 * Serving-layer statistics: what the saturation curves are made of.
 *
 * The simulator's RunMetrics describe the ORAM/DRAM machinery; the
 * serving layer adds the client-visible view — end-to-end response
 * latency (arrival to completion, queueing included), queueing delay
 * (arrival to controller admission), and offered vs achieved rate —
 * tracked globally and per tenant. ServiceStats is the live
 * accumulator; ServiceSnapshot is the condensed, copyable view the
 * JSON writer renders into the "service" block of a
 * palermo-metrics-v1 record.
 *
 * Histograms span 200k cycles at 100-cycle buckets: wide enough that
 * p99.9 stays inside the regular buckets everywhere below saturation,
 * with the overflow bucket (plus the exact max) absorbing the
 * above-saturation blow-up.
 */

#ifndef PALERMO_SERVICE_SERVICE_METRICS_HH
#define PALERMO_SERVICE_SERVICE_METRICS_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "service/request_queue.hh"

namespace palermo {

class JsonWriter;

/** Live accumulator for one scope (global or a single tenant). */
struct ServiceStats
{
    std::uint64_t offered = 0;   ///< Arrivals resolved (accept+reject).
    std::uint64_t accepted = 0;  ///< Arrivals that entered the queue.
    std::uint64_t rejected = 0;  ///< Arrivals dropped by backpressure.
    std::uint64_t completed = 0; ///< Responses delivered.

    Histogram latency{100.0, 2000};       ///< Arrival -> completion.
    Histogram queueingDelay{100.0, 2000}; ///< Arrival -> admission.

    /** Warmup boundary: forget everything accumulated so far. */
    void reset();
};

/** Condensed per-scope view (plain data, safe to copy around). */
struct ServiceScopeSnapshot
{
    std::uint64_t offered = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    Histogram latency{100.0, 2000};
    Histogram queueingDelay{100.0, 2000};
};

/** Everything a saturation-curve point needs from one service run. */
struct ServiceSnapshot
{
    /** Cycles since the measurement boundary (>= 1). */
    std::uint64_t measuredCycles = 1;

    /** Arrivals resolved per kilocycle in the measured window. */
    double offeredPerKilocycle = 0.0;
    /** Completions per kilocycle in the measured window. */
    double achievedPerKilocycle = 0.0;

    ServiceScopeSnapshot global;
    std::vector<ServiceScopeSnapshot> perTenant;

    // Queue state (whole-run, not warmup-gated: capacity pressure is
    // a property of the run, not of the measured window).
    std::size_t queueCapacity = 0;
    QueuePolicy queuePolicy = QueuePolicy::Reject;
    std::size_t queueHighWatermark = 0;
};

/**
 * Append one scope as a JSON object under the current key: counters,
 * rates, and p50/p95/p99/p99.9 latency + queueing-delay summaries.
 * Deterministic field order; byte-stable across runs and sim-thread
 * counts.
 */
void writeServiceScope(JsonWriter &w, const ServiceScopeSnapshot &scope);

/** Append a full service snapshot object under the current key. */
void writeServiceSnapshot(JsonWriter &w, const ServiceSnapshot &snapshot);

} // namespace palermo

#endif // PALERMO_SERVICE_SERVICE_METRICS_HH
