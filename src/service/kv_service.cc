/**
 * @file
 * ObliviousKvService: queue pump, completion attribution, and the
 * measured-window statistics boundary.
 */

#include "service/kv_service.hh"

#include "common/log.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

namespace {

/** Normalize once so the tenant map and the session agree on size. */
ServiceConfig
normalized(ServiceConfig config)
{
    config.system =
        normalizedProtocolConfig(config.protocol, config.system);
    return config;
}

ServiceScopeSnapshot
condense(const ServiceStats &stats)
{
    ServiceScopeSnapshot scope;
    scope.offered = stats.offered;
    scope.accepted = stats.accepted;
    scope.rejected = stats.rejected;
    scope.completed = stats.completed;
    scope.latency = stats.latency;
    scope.queueingDelay = stats.queueingDelay;
    return scope;
}

} // namespace

ObliviousKvService::ObliviousKvService(const ServiceConfig &config)
    : config_(normalized(config)),
      tenants_(config_.tenants, config_.system.protocol.numBlocks,
               config_.system.seed),
      session_(config_.protocol, config_.system),
      queue_(config_.queueCapacity, config_.queuePolicy),
      inflight_(PoolAllocator<InFlight>(&pool_)),
      perTenant_(config_.tenants),
      measuring_(config_.warmupCompletions == 0)
{
    palermo_assert(config_.sessionDepth >= 1,
                   "session depth must be at least 1");
}

Admission
ObliviousKvService::offer(unsigned tenant, std::uint64_t key,
                          bool write, std::uint64_t value, Tick arrival)
{
    palermo_assert(tenant < config_.tenants, "tenant out of range");
    ServiceRequest request;
    request.tenant = tenant;
    request.block = tenants_.blockOf(tenant, key);
    request.write = write;
    request.value = value;
    request.arrival = arrival;

    const Admission admission = queue_.offer(request);
    if (admission == Admission::WouldBlock)
        return admission; // Not in the system yet; retry counts once.
    ++global_.offered;
    ++perTenant_[tenant].offered;
    if (admission == Admission::Accepted) {
        ++global_.accepted;
        ++perTenant_[tenant].accepted;
    } else {
        ++global_.rejected;
        ++perTenant_[tenant].rejected;
    }
    return admission;
}

void
ObliviousKvService::pump()
{
    while (!queue_.empty()
           && session_.backlog() < config_.sessionDepth) {
        const ServiceRequest request = queue_.pop();
        const double delay =
            static_cast<double>(session_.now() - request.arrival);
        global_.queueingDelay.sample(delay);
        perTenant_[request.tenant].queueingDelay.sample(delay);
        session_.submit(request.block, request.write, request.value);
        inflight_.push_back(InFlight{request.tenant, request.arrival});
    }
}

std::uint64_t
ObliviousKvService::reap()
{
    const std::uint64_t served = session_.served();
    std::uint64_t completions = served - lastServed_;
    lastServed_ = served;
    const Tick now = session_.now();
    for (std::uint64_t i = 0; i < completions; ++i) {
        palermo_assert(!inflight_.empty(),
                       "completion without an in-flight request");
        const InFlight entry = inflight_.front();
        inflight_.pop_front();
        const double latency = static_cast<double>(now - entry.arrival);
        global_.latency.sample(latency);
        global_.completed += 1;
        perTenant_[entry.tenant].latency.sample(latency);
        perTenant_[entry.tenant].completed += 1;
        ++completedTotal_;
        if (!measuring_
            && completedTotal_ >= config_.warmupCompletions)
            beginMeasurement();
        if (sink_)
            sink_(ServiceCompletion{entry.tenant, entry.arrival, now});
    }
    return completions;
}

void
ObliviousKvService::beginMeasurement()
{
    measuring_ = true;
    measureStart_ = session_.now();
    global_.reset();
    for (ServiceStats &stats : perTenant_)
        stats.reset();
    // Requests already in the system complete inside the window, so
    // credit their admission here — after a full drain the window
    // satisfies accepted == completed exactly (the lost-request gate).
    const auto credit = [&](std::uint32_t tenant) {
        ++global_.offered;
        ++global_.accepted;
        ++perTenant_[tenant].offered;
        ++perTenant_[tenant].accepted;
    };
    for (const InFlight &entry : inflight_)
        credit(entry.tenant);
    queue_.forEach(
        [&](const ServiceRequest &request) { credit(request.tenant); });
}

std::uint64_t
ObliviousKvService::step(std::uint64_t cycles)
{
    std::uint64_t completions = 0;
    while (cycles > 0) {
        pump();
        if (quiescent()) {
            // Nothing can complete: cross the whole gap in one call
            // (the session batches provably idle windows internally).
            session_.step(cycles);
            break;
        }
        session_.step(1);
        --cycles;
        completions += reap();
    }
    return completions;
}

void
ObliviousKvService::drainAll()
{
    // The session's runaway guard bounds this loop; a service that
    // cannot drain is a simulation bug, not a load condition.
    while (!quiescent())
        step(1);
    session_.drain();
}

ServiceSnapshot
ObliviousKvService::snapshot() const
{
    ServiceSnapshot snapshot;
    const Tick now = session_.now();
    snapshot.measuredCycles =
        now > measureStart_ ? now - measureStart_ : 1;
    snapshot.global = condense(global_);
    snapshot.perTenant.reserve(perTenant_.size());
    for (const ServiceStats &stats : perTenant_)
        snapshot.perTenant.push_back(condense(stats));
    snapshot.offeredPerKilocycle = 1000.0
        * static_cast<double>(global_.offered)
        / static_cast<double>(snapshot.measuredCycles);
    snapshot.achievedPerKilocycle = 1000.0
        * static_cast<double>(global_.completed)
        / static_cast<double>(snapshot.measuredCycles);
    snapshot.queueCapacity = queue_.capacity();
    snapshot.queuePolicy = queue_.policy();
    snapshot.queueHighWatermark = queue_.highWatermark();
    return snapshot;
}

} // namespace palermo
