/**
 * @file
 * Per-tenant namespaces over one shared protected block space.
 *
 * The serving layer multiplexes many tenants onto a single ORAM
 * instance: each tenant owns a contiguous slice of the protected
 * space, and its keys are hashed by a keyed PRF into that slice only.
 * Isolation is structural — blockOf(tenant, key) cannot produce a
 * block outside the tenant's slice for any key — so tenant A's
 * traffic can never read or evict tenant B's lines, while the ORAM
 * below still makes the merged access sequence look uniform to the
 * cloud.
 *
 * Slices are floor(numBlocks / tenants) lines each; the remainder
 * lines at the top of the space are deliberately left unmapped so
 * every tenant gets an identically sized namespace (fairness tests
 * rely on this symmetry).
 */

#ifndef PALERMO_SERVICE_TENANT_HH
#define PALERMO_SERVICE_TENANT_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "crypto/prf.hh"

namespace palermo {

/** Maps (tenant, key) pairs onto disjoint block-space slices. */
class TenantDirectory
{
  public:
    /**
     * @param tenants Number of namespaces (>= 1).
     * @param num_blocks Shared protected-space size in lines; must
     *        allow at least one line per tenant.
     * @param seed Keys the PRF so layouts differ across seeds.
     */
    TenantDirectory(unsigned tenants, std::uint64_t num_blocks,
                    std::uint64_t seed);

    unsigned tenantCount() const { return tenants_; }
    std::uint64_t totalBlocks() const { return numBlocks_; }

    /** Lines in every tenant's slice (identical by construction). */
    std::uint64_t sliceSize() const { return sliceSize_; }

    /** First line of a tenant's slice. */
    std::uint64_t sliceBase(unsigned tenant) const;

    /**
     * Resolve a 64-bit key into the tenant's slice. Deterministic in
     * (seed, tenant, key); always within [sliceBase, sliceBase +
     * sliceSize).
     */
    BlockId blockOf(unsigned tenant, std::uint64_t key) const;

    /** String-key convenience: FNV-1a the text, then blockOf(). */
    BlockId blockOfKey(unsigned tenant, const std::string &key) const;

    /** Does this line fall inside the tenant's slice? */
    bool owns(unsigned tenant, BlockId block) const;

  private:
    unsigned tenants_;
    std::uint64_t numBlocks_;
    std::uint64_t sliceSize_;
    Prf hasher_;
};

} // namespace palermo

#endif // PALERMO_SERVICE_TENANT_HH
