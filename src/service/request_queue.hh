/**
 * @file
 * Bounded admission queue for the oblivious KV serving layer.
 *
 * Sits between the clients (load generator, example drivers) and the
 * SimSession submit inbox: arrivals wait here until the service pump
 * hands them to the ORAM controller, and the bound is what turns
 * overload into backpressure instead of unbounded memory growth. Two
 * policies mirror the classic serving trade-off: Reject drops the
 * arrival at the door (open-loop clients count a rejection and move
 * on), Block reports "would block" so the caller holds the request and
 * retries — the closed-loop stall discipline.
 *
 * The queue is strictly FIFO across tenants: admission order equals
 * arrival-acceptance order, which the fairness tests pin down. Per-item
 * bookkeeping (arrival tick, tenant, sequence) rides along so the
 * service can attribute queueing delay and completions without a side
 * table.
 */

#ifndef PALERMO_SERVICE_REQUEST_QUEUE_HH
#define PALERMO_SERVICE_REQUEST_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>

#include "common/pool.hh"
#include "common/types.hh"

namespace palermo {

/** What to do with an arrival that finds the queue full. */
enum class QueuePolicy
{
    Reject, ///< Drop it and count a rejection (open-loop overload).
    Block,  ///< Report WouldBlock; the caller holds it and retries.
};

/** Short lowercase token for JSON/CLI ("reject" / "block"). */
const char *queuePolicyName(QueuePolicy policy);

/** Parse a policy token; returns false on unknown names. */
bool queuePolicyFromName(const std::string &name, QueuePolicy *policy);

/** One KV request as it travels through the service. */
struct ServiceRequest
{
    std::uint32_t tenant = 0;   ///< Namespace index.
    BlockId block = 0;          ///< Resolved protected-space line.
    bool write = false;
    std::uint64_t value = 0;
    Tick arrival = 0;           ///< Client-side issue tick.
    std::uint64_t sequence = 0; ///< Acceptance order (FIFO witness).
};

/** Outcome of presenting one arrival to the service. */
enum class Admission
{
    Accepted,
    Rejected,   ///< Dropped (Reject policy, queue full).
    WouldBlock, ///< Not taken (Block policy, queue full); retry later.
};

/**
 * Fixed-capacity FIFO with an explicit overload policy. Pure
 * mechanism: no clocks, no histograms — the service layer stamps
 * times and owns the statistics.
 */
class BoundedRequestQueue
{
  public:
    /**
     * @param capacity Maximum queued requests (> 0).
     * @param policy Overload behavior when an arrival finds it full.
     */
    BoundedRequestQueue(std::size_t capacity, QueuePolicy policy);

    /**
     * Present one arrival. Accepted requests get the next FIFO
     * sequence number stamped; Rejected ones are counted and dropped;
     * WouldBlock leaves all state untouched (retry with the same
     * request later).
     */
    Admission offer(const ServiceRequest &request);

    /** Oldest queued request; queue must be non-empty. */
    const ServiceRequest &front() const;

    /** Remove and return the oldest queued request. */
    ServiceRequest pop();

    bool empty() const { return queue_.empty(); }
    bool full() const { return queue_.size() >= capacity_; }
    std::size_t size() const { return queue_.size(); }
    std::size_t capacity() const { return capacity_; }
    QueuePolicy policy() const { return policy_; }

    /** Arrivals accepted into the queue so far. */
    std::uint64_t accepted() const { return accepted_; }
    /** Arrivals dropped by the Reject policy. */
    std::uint64_t rejected() const { return rejected_; }
    /** Deepest occupancy observed. */
    std::size_t highWatermark() const { return highWatermark_; }

    /** Visit every queued request in FIFO order (oldest first). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const ServiceRequest &request : queue_)
            fn(request);
    }

  private:
    PoolResource pool_; ///< Backs queue_; declared first.
    /** Pool-backed FIFO: deque chunks recycle across the run instead of
     * hitting the heap on every admission wave. */
    std::deque<ServiceRequest, PoolAllocator<ServiceRequest>> queue_;
    std::size_t capacity_;
    QueuePolicy policy_;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t rejected_ = 0;
    std::size_t highWatermark_ = 0;
};

} // namespace palermo

#endif // PALERMO_SERVICE_REQUEST_QUEUE_HH
