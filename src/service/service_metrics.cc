/**
 * @file
 * Service-metric condensation and the "service" JSON block writer.
 */

#include "service/service_metrics.hh"

#include "sim/metrics_json.hh"

namespace palermo {

void
ServiceStats::reset()
{
    offered = 0;
    accepted = 0;
    rejected = 0;
    completed = 0;
    latency.reset();
    queueingDelay.reset();
}

namespace {

/** Shared latency/queueing-delay summary shape. */
void
writeHistogramSummary(JsonWriter &w, const Histogram &histogram)
{
    w.beginObject();
    w.field("count", histogram.count());
    w.field("mean", histogram.mean());
    w.field("min", histogram.min());
    w.field("p50", histogram.quantile(0.50));
    w.field("p95", histogram.quantile(0.95));
    w.field("p99", histogram.quantile(0.99));
    w.field("p999", histogram.quantile(0.999));
    w.field("max", histogram.max());
    w.endObject();
}

} // namespace

void
writeServiceScope(JsonWriter &w, const ServiceScopeSnapshot &scope)
{
    w.beginObject();
    w.field("offered", scope.offered);
    w.field("accepted", scope.accepted);
    w.field("rejected", scope.rejected);
    w.field("completed", scope.completed);
    w.key("latency");
    writeHistogramSummary(w, scope.latency);
    w.key("queueing_delay");
    writeHistogramSummary(w, scope.queueingDelay);
    w.endObject();
}

void
writeServiceSnapshot(JsonWriter &w, const ServiceSnapshot &snapshot)
{
    w.beginObject();
    w.field("measured_cycles", snapshot.measuredCycles);
    w.field("offered_per_kilocycle", snapshot.offeredPerKilocycle);
    w.field("achieved_per_kilocycle", snapshot.achievedPerKilocycle);
    w.key("queue").beginObject();
    w.field("capacity", static_cast<std::uint64_t>(snapshot.queueCapacity));
    w.field("policy", queuePolicyName(snapshot.queuePolicy));
    w.field("high_watermark",
            static_cast<std::uint64_t>(snapshot.queueHighWatermark));
    w.endObject();
    w.key("global");
    writeServiceScope(w, snapshot.global);
    w.key("per_tenant").beginArray();
    for (const ServiceScopeSnapshot &scope : snapshot.perTenant)
        writeServiceScope(w, scope);
    w.endArray();
    w.endObject();
}

} // namespace palermo
