/**
 * @file
 * BoundedRequestQueue: FIFO mechanics and overload-policy accounting.
 */

#include "service/request_queue.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

const char *
queuePolicyName(QueuePolicy policy)
{
    switch (policy) {
      case QueuePolicy::Reject: return "reject";
      case QueuePolicy::Block: return "block";
    }
    return "reject";
}

bool
queuePolicyFromName(const std::string &name, QueuePolicy *policy)
{
    if (name == "reject") {
        *policy = QueuePolicy::Reject;
        return true;
    }
    if (name == "block") {
        *policy = QueuePolicy::Block;
        return true;
    }
    return false;
}

BoundedRequestQueue::BoundedRequestQueue(std::size_t capacity,
                                         QueuePolicy policy)
    : queue_(PoolAllocator<ServiceRequest>(&pool_)),
      capacity_(capacity), policy_(policy)
{
    palermo_assert(capacity > 0, "request queue needs capacity >= 1");
}

Admission
BoundedRequestQueue::offer(const ServiceRequest &request)
{
    if (full()) {
        if (policy_ == QueuePolicy::Block)
            return Admission::WouldBlock;
        ++rejected_;
        return Admission::Rejected;
    }
    ServiceRequest accepted = request;
    accepted.sequence = nextSequence_++;
    queue_.push_back(accepted);
    ++accepted_;
    highWatermark_ = std::max(highWatermark_, queue_.size());
    return Admission::Accepted;
}

const ServiceRequest &
BoundedRequestQueue::front() const
{
    palermo_assert(!queue_.empty(), "front() on an empty request queue");
    return queue_.front();
}

ServiceRequest
BoundedRequestQueue::pop()
{
    palermo_assert(!queue_.empty(), "pop() on an empty request queue");
    const ServiceRequest request = queue_.front();
    queue_.pop_front();
    return request;
}

} // namespace palermo
