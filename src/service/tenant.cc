/**
 * @file
 * TenantDirectory: PRF key-to-slice resolution and slice geometry.
 */

#include "service/tenant.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace palermo {

TenantDirectory::TenantDirectory(unsigned tenants,
                                 std::uint64_t num_blocks,
                                 std::uint64_t seed)
    : tenants_(tenants), numBlocks_(num_blocks),
      sliceSize_(tenants ? num_blocks / tenants : 0),
      hasher_(mix64(seed ^ 0x74656e616e747321ull))
{
    palermo_assert(tenants >= 1, "need at least one tenant");
    palermo_assert(sliceSize_ >= 1,
                   "protected space too small for the tenant count");
}

std::uint64_t
TenantDirectory::sliceBase(unsigned tenant) const
{
    palermo_assert(tenant < tenants_, "tenant index out of range");
    return static_cast<std::uint64_t>(tenant) * sliceSize_;
}

BlockId
TenantDirectory::blockOf(unsigned tenant, std::uint64_t key) const
{
    // Domain-separate tenants before hashing so equal keys land on
    // unrelated offsets in different slices.
    const std::uint64_t input =
        key ^ mix64(static_cast<std::uint64_t>(tenant) + 1);
    return sliceBase(tenant) + hasher_.evalMod(input, sliceSize_);
}

BlockId
TenantDirectory::blockOfKey(unsigned tenant,
                            const std::string &key) const
{
    std::uint64_t h = 1469598103934665603ull; // FNV-1a offset basis.
    for (char c : key)
        h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return blockOf(tenant, h);
}

bool
TenantDirectory::owns(unsigned tenant, BlockId block) const
{
    const std::uint64_t base = sliceBase(tenant);
    return block >= base && block < base + sliceSize_;
}

} // namespace palermo
