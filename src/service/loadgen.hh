/**
 * @file
 * Open/closed-loop load generation against ObliviousKvService.
 *
 * The measurement half of the serving story: open-loop mode fires
 * arrivals at a configured rate (Poisson or fixed-interval, in
 * simulated time) whether or not the service keeps up — the only mode
 * that exposes saturation and tail-latency blow-up — while closed-loop
 * mode holds a fixed number of outstanding requests, the classic
 * "N clients, think time zero" discipline. A rate (or concurrency)
 * sweep emits one palermo-metrics-v1 record per design point, so a
 * throughput-vs-p99 saturation curve falls out of one invocation.
 *
 * Everything is a deterministic function of the options: arrivals,
 * key draws, and tenant picks come from seeded RNGs, time is the
 * simulated clock, and records render byte-identically across repeat
 * runs and across --sim-threads values. Kept in the library (not
 * tools/) so the flag parser and the point runner are unit-testable,
 * mirroring run_cli.
 */

#ifndef PALERMO_SERVICE_LOADGEN_HH
#define PALERMO_SERVICE_LOADGEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/arrival.hh"
#include "service/kv_service.hh"
#include "sim/metrics_json.hh"

namespace palermo {

/** Everything palermo_loadgen accepts on its command line. */
struct LoadgenOptions
{
    ProtocolKind protocol = ProtocolKind::Palermo;
    bool paperGeometry = false;    ///< --paper: Table III geometry.
    std::uint64_t blocks = 0;      ///< --blocks (0 = keep default).
    bool seedSet = false;
    std::uint64_t seed = 0;        ///< --seed (when seedSet).
    unsigned simThreads = 1;       ///< --sim-threads N per session.

    /** --openloop: target rates in requests per kilocycle. */
    std::vector<double> openloopRates;
    /** --closedloop: outstanding-request counts. */
    std::vector<unsigned> closedloopConcurrency;

    ArrivalProcess arrival = ArrivalProcess::Poisson; ///< --arrival.
    KeyDist dist = KeyDist::Zipf;  ///< --dist zipf|uniform.
    double zipfAlpha = 0.99;       ///< --zipf-alpha.
    double writeFraction = 0.0;    ///< --write-frac: PUT probability.
    unsigned tenants = 1;          ///< --tenants.

    std::uint64_t requests = 2000; ///< --requests: measured per point.
    double warmupFraction = 0.5;   ///< --warmup: extra, as a fraction.
    std::uint64_t duration = 0;    ///< --duration: arrival cap, cycles.

    std::uint64_t queueCapacity = 64;              ///< --queue-capacity.
    QueuePolicy queuePolicy = QueuePolicy::Reject; ///< --queue-policy.
    std::uint64_t sessionDepth = 8;                ///< --depth.

    std::string jsonPath;          ///< --json PATH ("-" = stdout).
    bool progress = false;         ///< --progress: wall-rate lines.
    bool listProtocols = false;    ///< --list-protocols (registry).
    bool help = false;             ///< --help / -h.

    /** Resolve the base SystemConfig these options describe. */
    SystemConfig baseConfig() const;
};

/** Parse palermo_loadgen argv (excluding argv[0]); see parseRunArgs. */
bool parseLoadgenArgs(int argc, const char *const *argv,
                      LoadgenOptions *options, std::string *error);

/** Usage text for palermo_loadgen. */
std::string loadgenUsage();

/** One fully-resolved load-generation design point. */
struct LoadPointSpec
{
    std::size_t index = 0;   ///< Position in the sweep.
    bool closedLoop = false;
    double rate = 0.0;       ///< Open loop: req/kilocycle target.
    unsigned concurrency = 0; ///< Closed loop: outstanding requests.
};

/** A design point with both the simulator and the service view. */
struct ServiceRunRecord
{
    RunRecord base;          ///< Standard record (config + RunMetrics).
    ServiceSnapshot service; ///< The client-visible serving metrics.
    LoadPointSpec spec;
};

/**
 * Expand the sweep: one point per --openloop rate, then one per
 * --closedloop concurrency, in flag order. Never empty (the parser
 * defaults to closed-loop 4 when neither mode is given).
 */
std::vector<LoadPointSpec> expandLoadPoints(const LoadgenOptions &options);

/**
 * Run one design point to completion: fresh service, warmup, measured
 * window, full drain. Deterministic in (options, spec).
 */
ServiceRunRecord runLoadPoint(const LoadgenOptions &options,
                              const LoadPointSpec &spec);

/**
 * Render the sweep as one palermo-metrics-v1 document: the standard
 * record shape plus a per-point "service" block and mode fields, and
 * a derived max-achieved-rate scalar (the measured saturation
 * throughput of the sweep).
 */
std::string loadgenDocument(const std::vector<ServiceRunRecord> &records);

/**
 * Serving-layer sanity gate: completions happened, achieved rate is
 * finite and positive, tail quantiles are ordered (p99 >= p50),
 * nothing was lost (accepted == completed after drain), and the stash
 * never overflowed. Appends one line per problem; true when clean.
 */
bool serviceSanityCheck(const std::vector<ServiceRunRecord> &records,
                        std::vector<std::string> *problems);

} // namespace palermo

#endif // PALERMO_SERVICE_LOADGEN_HH
