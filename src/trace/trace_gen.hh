/**
 * @file
 * LLC-miss trace generators for the paper's Table II workload mix.
 *
 * The paper drives its simulator with Sniper traces of SPEC17, GAP graph
 * analytics, DLRM, GPT-2, and Redis over real datasets. Those datasets
 * and the Sniper frontend are substituted here (DESIGN.md §3) with
 * synthetic generators that reproduce each workload's *locality class* —
 * the only property the ORAM experiments are sensitive to, since the
 * protocol converts every miss into uniformly random tree paths.
 *
 * Every generator is a deterministic function of its seed and emits
 * (line, is_write) pairs over a protected space of the requested size.
 */

#ifndef PALERMO_TRACE_TRACE_GEN_HH
#define PALERMO_TRACE_TRACE_GEN_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace palermo {

/** One LLC miss. */
struct TraceRecord
{
    BlockId line;  ///< 64B line index within the protected space.
    bool write;
};

/** Abstract LLC-miss stream. */
class TraceGen
{
  public:
    virtual ~TraceGen() = default;

    /** Workload short name (Table II). */
    virtual const char *name() const = 0;

    /** Produce the next miss. */
    virtual TraceRecord next() = 0;

    /** Protected-space size this trace addresses. */
    std::uint64_t numLines() const { return numLines_; }

  protected:
    TraceGen(std::uint64_t num_lines, std::uint64_t seed)
        : numLines_(num_lines), rng_(seed)
    {
    }

    std::uint64_t numLines_;
    Rng rng_;
};

/** Workloads of Table II. */
enum class Workload
{
    Mcf,     ///< SPEC17 route planning: pointer chasing, mixed locality.
    Lbm,     ///< SPEC17 fluid dynamics: multi-stream stencil.
    PageRank, ///< Graph: power-law vertex gather.
    Motif,   ///< Graph mining: localized neighborhood expansion.
    Dlrm1,   ///< DLRM memory-bound: many single-line Zipf gathers.
    Dlrm2,   ///< DLRM balanced: fewer, wider lookups with reuse.
    Llm,     ///< GPT-2 token feature table: Zipf rows of embeddings.
    Redis,   ///< KV store: Zipf keys, hashed (no spatial) layout.
    Stream,  ///< stm: perfectly sequential lines.
    Random,  ///< rand: uniform random lines.
};

/** All workloads in the paper's Fig. 10 order. */
const std::vector<Workload> &allWorkloads();

/** Short name used in figures ("mcf", "pr", "llm", ...). */
const char *workloadName(Workload workload);

/** Parse a short name; fatal on unknown names. */
Workload workloadFromName(const std::string &name);

/**
 * Non-fatal parse of a short name or alias ("stm", "rand", "graph").
 * Returns false on unknown names, leaving *workload untouched.
 */
bool tryWorkloadFromName(const std::string &name, Workload *workload);

/**
 * Construct a generator.
 * @param workload Which Table II workload to model.
 * @param num_lines Protected-space size in 64B lines.
 * @param seed Determinism seed.
 */
std::unique_ptr<TraceGen> makeTrace(Workload workload,
                                    std::uint64_t num_lines,
                                    std::uint64_t seed);

} // namespace palermo

#endif // PALERMO_TRACE_TRACE_GEN_HH
