/**
 * @file
 * Synthetic Table II workload generators reproducing each trace's
 * locality class (Zipf gathers, stencils, streams, pointer chases).
 */

#include "trace/trace_gen.hh"

#include <algorithm>
#include <deque>

#include "common/log.hh"
#include "crypto/prf.hh"

namespace palermo {

namespace {

/**
 * mcf: route-planning pointer chasing. The network simplex walks arc
 * lists: short sequential bursts through node/arc records punctuated by
 * data-dependent jumps, with a modest hot set revisited often.
 */
class McfTrace : public TraceGen
{
  public:
    McfTrace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed), cursor_(rng_.range(n))
    {
    }

    const char *name() const override { return "mcf"; }

    TraceRecord next() override
    {
        const double roll = rng_.uniform();
        if (roll < 0.35 && burst_ > 0) {
            // Walk the current arc list sequentially.
            --burst_;
            cursor_ = (cursor_ + 1) % numLines_;
        } else if (roll < 0.55 && !recent_.empty()) {
            // Revisit a recently touched node record.
            cursor_ = recent_[rng_.range(recent_.size())];
        } else {
            // Data-dependent jump to another node's arcs.
            cursor_ = mix64(cursor_ ^ rng_.next()) % numLines_;
            burst_ = 2 + rng_.range(6);
        }
        recent_.push_back(cursor_);
        if (recent_.size() > 64)
            recent_.pop_front();
        return {cursor_, rng_.chance(0.25)};
    }

  private:
    BlockId cursor_;
    unsigned burst_ = 4;
    std::deque<BlockId> recent_;
};

/**
 * lbm: lattice-Boltzmann stencil. Three large arrays streamed with
 * fixed strides per cell update; writes stream into the destination
 * grid.
 */
class LbmTrace : public TraceGen
{
  public:
    LbmTrace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed), region_(n / 3)
    {
    }

    const char *name() const override { return "lbm"; }

    TraceRecord next() override
    {
        const unsigned which = phase_ % 3;
        ++phase_;
        if (which == 0) {
            // Source distribution read.
            return {cell_ % region_, false};
        }
        if (which == 1) {
            // Neighbor read at a fixed stencil stride.
            return {(region_ + (cell_ + stride_) % region_), false};
        }
        // Destination write, then advance the cell.
        const BlockId out = 2 * region_ + (cell_ % region_);
        ++cell_;
        return {out, true};
    }

  private:
    std::uint64_t region_;
    std::uint64_t cell_ = 0;
    std::uint64_t stride_ = 33;
    std::uint64_t phase_ = 0;
};

/**
 * pr: PageRank over a power-law graph in CSR form. The offset/score
 * arrays stream sequentially while neighbor gathers hit Zipf-popular
 * vertices.
 */
class PageRankTrace : public TraceGen
{
  public:
    PageRankTrace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed),
          vertices_(std::max<std::uint64_t>(n / 2, 1)),
          zipf_(vertices_, 0.8, mix64(seed ^ 0x7072ull))
    {
    }

    const char *name() const override { return "pr"; }

    TraceRecord next() override
    {
        if (neighbors_ == 0) {
            // Next vertex: sequential CSR offset + score read.
            vertex_ = (vertex_ + 1) % vertices_;
            // Power-law out-degree: most vertices small, some huge.
            const double u = rng_.uniform();
            neighbors_ = static_cast<unsigned>(1.0 / (0.05 + u * u * 4.0));
            neighbors_ = std::clamp(neighbors_, 1u, 64u);
            return {vertex_, false};
        }
        --neighbors_;
        // Gather a Zipf-popular destination vertex's score; write back
        // the accumulating rank occasionally.
        const BlockId dst = vertices_ + zipf_.sample() % (numLines_
            - vertices_);
        return {dst, rng_.chance(0.1)};
    }

  private:
    std::uint64_t vertices_;
    ZipfSampler zipf_;
    BlockId vertex_ = 0;
    unsigned neighbors_ = 0;
};

/**
 * motif: temporal subgraph isomorphism. Expands candidate subgraphs
 * around seed vertices: bursts of reads clustered in a neighborhood,
 * strong short-term reuse, seeds chosen with skew.
 */
class MotifTrace : public TraceGen
{
  public:
    MotifTrace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed),
          zipf_(std::max<std::uint64_t>(n / 256, 1), 0.9,
                mix64(seed ^ 0x6d6full))
    {
    }

    const char *name() const override { return "motif"; }

    TraceRecord next() override
    {
        if (remaining_ == 0) {
            seed_ = zipf_.sample() * 256 % numLines_;
            remaining_ = 8 + rng_.range(48);
        }
        --remaining_;
        // Neighborhood reads scatter within a region around the seed.
        const BlockId offset = rng_.range(192);
        return {(seed_ + offset) % numLines_, false};
    }

  private:
    ZipfSampler zipf_;
    BlockId seed_ = 0;
    unsigned remaining_ = 0;
};

/**
 * rm1 (DLRM MemBound): sparse-length-sum over many embedding tables;
 * each query gathers one Zipf-popular single-line row per table — pure
 * pointer-chasing bandwidth with little spatial locality.
 */
class Dlrm1Trace : public TraceGen
{
  public:
    Dlrm1Trace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed), tables_(26),
          rowsPerTable_(std::max<std::uint64_t>(n / tables_, 1)),
          zipf_(rowsPerTable_, 1.05, mix64(seed ^ 0x726dull))
    {
    }

    const char *name() const override { return "rm1"; }

    TraceRecord next() override
    {
        const unsigned table = phase_ % tables_;
        ++phase_;
        const BlockId row = zipf_.sample();
        return {(table * rowsPerTable_ + row) % numLines_, false};
    }

  private:
    unsigned tables_;
    std::uint64_t rowsPerTable_;
    ZipfSampler zipf_;
    std::uint64_t phase_ = 0;
};

/**
 * rm2 (DLRM Balanced): fewer lookups per query, multi-line embedding
 * rows read sequentially, higher reuse of hot rows.
 */
class Dlrm2Trace : public TraceGen
{
  public:
    Dlrm2Trace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed), rowLines_(4),
          rows_(std::max<std::uint64_t>(n / rowLines_, 1)),
          zipf_(rows_, 1.2, mix64(seed ^ 0x3272ull))
    {
    }

    const char *name() const override { return "rm2"; }

    TraceRecord next() override
    {
        if (lineInRow_ == 0)
            row_ = zipf_.sample();
        const BlockId line = (row_ * rowLines_ + lineInRow_) % numLines_;
        lineInRow_ = (lineInRow_ + 1) % rowLines_;
        return {line, false};
    }

  private:
    unsigned rowLines_;
    std::uint64_t rows_;
    ZipfSampler zipf_;
    std::uint64_t row_ = 0;
    unsigned lineInRow_ = 0;
};

/**
 * llm: GPT-2 token feature table during decode. Each step looks up one
 * Zipf-distributed token id and streams its multi-line embedding row —
 * the access pattern whose leakage the paper's introduction motivates.
 */
class LlmTrace : public TraceGen
{
  public:
    LlmTrace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed), rowLines_(8),
          vocab_(std::max<std::uint64_t>(n / rowLines_, 1)),
          zipf_(vocab_, 1.0, mix64(seed ^ 0x6c6cull))
    {
    }

    const char *name() const override { return "llm"; }

    TraceRecord next() override
    {
        if (lineInRow_ == 0)
            token_ = zipf_.sample();
        const BlockId line =
            (token_ * rowLines_ + lineInRow_) % numLines_;
        lineInRow_ = (lineInRow_ + 1) % rowLines_;
        return {line, false};
    }

  private:
    unsigned rowLines_;
    std::uint64_t vocab_;
    ZipfSampler zipf_;
    std::uint64_t token_ = 0;
    unsigned lineInRow_ = 0;
};

/**
 * redis: KV GET/SET over hashed keys. Zipf-popular keys but hashed
 * placement, so temporal skew with no spatial locality — the worst case
 * for prefetch-based ORAM optimizations.
 */
class RedisTrace : public TraceGen
{
  public:
    RedisTrace(std::uint64_t n, std::uint64_t seed)
        : TraceGen(n, seed),
          keys_(std::max<std::uint64_t>(n / 2, 1)),
          zipf_(keys_, 0.99, mix64(seed ^ 0x7264ull)),
          prf_(mix64(seed ^ 0x68617368ull))
    {
    }

    const char *name() const override { return "redis"; }

    TraceRecord next() override
    {
        const std::uint64_t key = zipf_.sample();
        const BlockId line = prf_.evalMod(key, numLines_);
        return {line, rng_.chance(0.3)};
    }

  private:
    std::uint64_t keys_;
    ZipfSampler zipf_;
    Prf prf_;
};

/** stm: perfectly sequential lines (the paper's prefetch stress test). */
class StreamTrace : public TraceGen
{
  public:
    StreamTrace(std::uint64_t n, std::uint64_t seed) : TraceGen(n, seed) {}

    const char *name() const override { return "stream"; }

    TraceRecord next() override
    {
        const BlockId line = cursor_;
        cursor_ = (cursor_ + 1) % numLines_;
        return {line, false};
    }

  private:
    BlockId cursor_ = 0;
};

/** rand: uniform random lines (zero locality of any kind). */
class RandomTrace : public TraceGen
{
  public:
    RandomTrace(std::uint64_t n, std::uint64_t seed) : TraceGen(n, seed) {}

    const char *name() const override { return "random"; }

    TraceRecord next() override
    {
        return {rng_.range(numLines_), rng_.chance(0.2)};
    }
};

} // namespace

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> workloads = {
        Workload::Mcf, Workload::Lbm, Workload::PageRank, Workload::Motif,
        Workload::Dlrm1, Workload::Dlrm2, Workload::Llm, Workload::Redis,
        Workload::Stream, Workload::Random,
    };
    return workloads;
}

const char *
workloadName(Workload workload)
{
    switch (workload) {
      case Workload::Mcf: return "mcf";
      case Workload::Lbm: return "lbm";
      case Workload::PageRank: return "pr";
      case Workload::Motif: return "motif";
      case Workload::Dlrm1: return "rm1";
      case Workload::Dlrm2: return "rm2";
      case Workload::Llm: return "llm";
      case Workload::Redis: return "redis";
      case Workload::Stream: return "stream";
      case Workload::Random: return "random";
    }
    return "?";
}

bool
tryWorkloadFromName(const std::string &name, Workload *workload)
{
    for (Workload w : allWorkloads()) {
        if (name == workloadName(w)) {
            *workload = w;
            return true;
        }
    }
    if (name == "stm") {
        *workload = Workload::Stream;
    } else if (name == "rand") {
        *workload = Workload::Random;
    } else if (name == "graph") {
        // Graph-analytics locality class (power-law vertex gather).
        *workload = Workload::PageRank;
    } else {
        return false;
    }
    return true;
}

Workload
workloadFromName(const std::string &name)
{
    Workload workload = Workload::Random;
    if (!tryWorkloadFromName(name, &workload))
        fatal("unknown workload '%s'", name.c_str());
    return workload;
}

std::unique_ptr<TraceGen>
makeTrace(Workload workload, std::uint64_t num_lines, std::uint64_t seed)
{
    palermo_assert(num_lines > 0);
    switch (workload) {
      case Workload::Mcf:
        return std::make_unique<McfTrace>(num_lines, seed);
      case Workload::Lbm:
        return std::make_unique<LbmTrace>(num_lines, seed);
      case Workload::PageRank:
        return std::make_unique<PageRankTrace>(num_lines, seed);
      case Workload::Motif:
        return std::make_unique<MotifTrace>(num_lines, seed);
      case Workload::Dlrm1:
        return std::make_unique<Dlrm1Trace>(num_lines, seed);
      case Workload::Dlrm2:
        return std::make_unique<Dlrm2Trace>(num_lines, seed);
      case Workload::Llm:
        return std::make_unique<LlmTrace>(num_lines, seed);
      case Workload::Redis:
        return std::make_unique<RedisTrace>(num_lines, seed);
      case Workload::Stream:
        return std::make_unique<StreamTrace>(num_lines, seed);
      case Workload::Random:
        return std::make_unique<RandomTrace>(num_lines, seed);
    }
    panic("unreachable workload");
}

} // namespace palermo
