/**
 * @file
 * Latency-classifier construction and Equation 1 mutual-information
 * evaluation over per-request samples (paper §VI, Table I).
 */

#include "security/mutual_info.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace palermo {

namespace {

// joint * log2(joint / (pb * po)) with the 0 log 0 = 0 convention.
double
term(double joint, double pb, double po)
{
    if (joint <= 0.0 || pb <= 0.0 || po <= 0.0)
        return 0.0;
    return joint * std::log2(joint / (pb * po));
}

} // namespace

double
mutualInformation(double p1, double p2)
{
    palermo_assert(p1 >= 0.0 && p1 <= 1.0);
    palermo_assert(p2 >= 0.0 && p2 <= 1.0);
    // Equation 1: I(B; O) with uniform priors over the two behaviors.
    // Expanding the paper's form: each addend is
    // P(b, o) log2(P(b, o) / (P(b) P(o))), e.g. the first is
    // (p1/2) log2(2 p1 / (p1 + p2)).
    const double po_long = (p1 + p2) / 2;
    const double po_short = 1.0 - po_long;
    return term(p1 / 2, 0.5, po_long) + term(p2 / 2, 0.5, po_long)
        + term((1 - p1) / 2, 0.5, po_short)
        + term((1 - p2) / 2, 0.5, po_short);
}

AttackerModel
fitAttackerModel(const std::vector<LatencySample> &samples)
{
    palermo_assert(!samples.empty(), "no latency samples");
    std::vector<double> latencies;
    latencies.reserve(samples.size());
    for (const auto &s : samples)
        latencies.push_back(s.latency);
    std::nth_element(latencies.begin(),
                     latencies.begin() + latencies.size() / 2,
                     latencies.end());
    const double median = latencies[latencies.size() / 2];

    std::size_t stash_total = 0;
    std::size_t stash_long = 0;
    std::size_t tree_total = 0;
    std::size_t tree_long = 0;
    for (const auto &s : samples) {
        const bool longer = s.latency > median;
        if (s.servedFromStash) {
            ++stash_total;
            stash_long += longer;
        } else {
            ++tree_total;
            tree_long += longer;
        }
    }

    AttackerModel model;
    model.median = median;
    model.stashSamples = stash_total;
    model.treeSamples = tree_total;
    // With no samples of one class the attacker learns nothing from it;
    // use the uninformative 0.5.
    model.p1 = stash_total
        ? static_cast<double>(stash_long) / stash_total : 0.5;
    model.p2 = tree_total
        ? static_cast<double>(tree_long) / tree_total : 0.5;
    return model;
}

double
mutualInformationOf(const std::vector<LatencySample> &samples)
{
    const AttackerModel model = fitAttackerModel(samples);
    return mutualInformation(model.p1, model.p2);
}

} // namespace palermo
