/**
 * @file
 * Mutual-information leakage analysis (paper §VI, Table I, Equation 1).
 *
 * The attacker observes each ORAM response latency and classifies it as
 * longer/shorter than the median. The victim behavior is whether the
 * requested block was in the stash or in the ORAM tree. With
 * p1 = P(longer | stash) and p2 = P(longer | tree), Equation 1 gives the
 * mutual information between behavior and observation under uniform
 * behavior priors; M ~ 0 means timing reveals nothing about hits.
 */

#ifndef PALERMO_SECURITY_MUTUAL_INFO_HH
#define PALERMO_SECURITY_MUTUAL_INFO_HH

#include <vector>

#include "controller/controller_stats.hh"

namespace palermo {

/** Attacker observation probabilities (Table I). */
struct AttackerModel
{
    double p1;         ///< P(longer-than-median | block in stash).
    double p2;         ///< P(longer-than-median | block in tree).
    double median;     ///< Median latency used as the threshold.
    std::size_t stashSamples;
    std::size_t treeSamples;
};

/** Equation 1: mutual information from (p1, p2), in bits, in [0, 1]. */
double mutualInformation(double p1, double p2);

/** Fit the Table I attacker model to per-request samples. */
AttackerModel fitAttackerModel(const std::vector<LatencySample> &samples);

/** End-to-end: samples -> Equation 1 M value. */
double mutualInformationOf(const std::vector<LatencySample> &samples);

} // namespace palermo

#endif // PALERMO_SECURITY_MUTUAL_INFO_HH
