/**
 * @file
 * Chi-square goodness-of-fit and serial-correlation probes over
 * attacker-visible leaf sequences (paper §VI).
 */

#include "security/uniformity.hh"

#include <cmath>

#include "common/log.hh"

namespace palermo {

ChiSquareResult
chiSquareUniform(const std::vector<std::uint64_t> &counts)
{
    palermo_assert(counts.size() >= 2, "need at least two bins");
    std::uint64_t total = 0;
    for (auto c : counts)
        total += c;
    palermo_assert(total > 0, "empty sample");

    const double expected =
        static_cast<double>(total) / counts.size();
    double stat = 0.0;
    for (auto c : counts) {
        const double d = static_cast<double>(c) - expected;
        stat += d * d / expected;
    }

    ChiSquareResult result;
    result.statistic = stat;
    result.dof = counts.size() - 1;
    // Wilson-Hilferty approximation of the chi-square 99th percentile.
    const double k = static_cast<double>(result.dof);
    const double z = 2.326; // z_{0.99}
    const double wh = k * std::pow(1.0 - 2.0 / (9.0 * k)
                                       + z * std::sqrt(2.0 / (9.0 * k)),
                                   3.0);
    result.threshold = wh;
    result.uniform = stat <= wh;
    return result;
}

ChiSquareResult
leafUniformity(const std::vector<Leaf> &leaves, std::uint64_t num_leaves,
               std::size_t num_bins)
{
    palermo_assert(num_leaves > 0);
    palermo_assert(num_bins >= 2 && num_bins <= num_leaves);
    std::vector<std::uint64_t> counts(num_bins, 0);
    for (Leaf leaf : leaves) {
        palermo_assert(leaf < num_leaves, "leaf out of range");
        ++counts[leaf * num_bins / num_leaves];
    }
    return chiSquareUniform(counts);
}

double
serialCorrelation(const std::vector<Leaf> &leaves)
{
    if (leaves.size() < 3)
        return 0.0;
    const std::size_t n = leaves.size() - 1;
    double mean = 0.0;
    for (Leaf leaf : leaves)
        mean += static_cast<double>(leaf);
    mean /= leaves.size();

    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double a = static_cast<double>(leaves[i]) - mean;
        const double b = static_cast<double>(leaves[i + 1]) - mean;
        num += a * b;
    }
    for (Leaf leaf : leaves) {
        const double a = static_cast<double>(leaf) - mean;
        den += a * a;
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace palermo
