/**
 * @file
 * Statistical uniformity checks on attacker-visible sequences.
 *
 * The qualitative security argument (paper §VI) is that the DRAM trace
 * reduces to a stream of statistically random leaf selections. These
 * helpers quantify that: a chi-square goodness-of-fit test against the
 * uniform distribution, plus a serial-correlation probe for remap
 * independence.
 */

#ifndef PALERMO_SECURITY_UNIFORMITY_HH
#define PALERMO_SECURITY_UNIFORMITY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace palermo {

/** Chi-square goodness-of-fit result. */
struct ChiSquareResult
{
    double statistic;     ///< Chi-square statistic.
    std::uint64_t dof;    ///< Degrees of freedom (bins - 1).
    double threshold;     ///< Acceptance threshold at ~1% significance.
    bool uniform;         ///< statistic <= threshold.
};

/**
 * Chi-square test of observed bin counts against uniform.
 * @param counts Observed occurrences per bin.
 */
ChiSquareResult chiSquareUniform(const std::vector<std::uint64_t> &counts);

/**
 * Bin a leaf sequence over `num_bins` equal ranges and test uniformity.
 * @param leaves Observed leaf selections.
 * @param num_leaves Leaf-space size.
 * @param num_bins Histogram resolution (<= num_leaves).
 */
ChiSquareResult leafUniformity(const std::vector<Leaf> &leaves,
                               std::uint64_t num_leaves,
                               std::size_t num_bins = 64);

/**
 * Lag-1 serial correlation of a leaf sequence, normalized to [-1, 1];
 * near 0 for independently drawn selections.
 */
double serialCorrelation(const std::vector<Leaf> &leaves);

} // namespace palermo

#endif // PALERMO_SECURITY_UNIFORMITY_HH
