/**
 * @file
 * Pool-backed open-addressing hash table for the simulator hot path.
 *
 * Every per-access lookup table in the inner loop (stash index,
 * position-map overrides, tree-store node index, row-hit predictor,
 * controller tag/MSHR maps) is a dense small-key table. A node-based
 * std::unordered_map pays one cache miss per chain hop for those;
 * FlatMap stores key+value inline in a single power-of-two slot array
 * with linear probing, so a lookup is one hash, one (usually) cache
 * line, and zero pointer chasing.
 *
 * Design choices, in the order they matter:
 *  - Linear probing with tombstone-free backward-shift deletion:
 *    erases compact the probe chain in place, so load factor and probe
 *    lengths never degrade with churn (no tombstone accumulation, no
 *    periodic rehash-to-clean).
 *  - Power-of-two capacity with a splitmix64-style finalizer: the
 *    finalizer's avalanche makes masked bucket indices well distributed
 *    even for sequential keys (block ids, node ids, row keys).
 *  - One allocation holding metadata bytes + slots, served from an
 *    optional PoolResource so table growth recycles within a session
 *    like every other hot-path structure (common/pool.hh).
 *  - Max load factor 3/4, minimum capacity 8.
 *
 * Iteration visits slots in table order, which depends on the hash
 * function and insertion/erase history. As with unordered_map, no
 * simulator-observable behavior may depend on it; order-sensitive hot
 * structures (the stash) pair FlatMap with a dense insertion-ordered
 * vector and use the map only as an index.
 *
 * Thread safety: none, by ownership — same contract as PoolResource.
 */

#ifndef PALERMO_COMMON_FLAT_MAP_HH
#define PALERMO_COMMON_FLAT_MAP_HH

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

#include "common/log.hh"
#include "common/pool.hh"

namespace palermo {

/**
 * Default FlatMap hasher: splitmix64 finalizer for integral keys
 * (block/node/row ids are sequential-ish; the finalizer's avalanche is
 * what makes masked power-of-two indexing safe), std::hash otherwise.
 */
template <typename K>
struct FlatHash
{
    std::uint64_t
    operator()(const K &key) const
    {
        if constexpr (std::is_integral_v<K> || std::is_enum_v<K>) {
            std::uint64_t x = static_cast<std::uint64_t>(key);
            x += 0x9e3779b97f4a7c15ULL;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
            return x ^ (x >> 31);
        } else {
            return static_cast<std::uint64_t>(std::hash<K>{}(key));
        }
    }
};

/**
 * Open-addressing hash map with inline key+value slots. Implements the
 * subset of the std::unordered_map API the simulator uses; see the
 * file comment for the layout and deletion scheme.
 *
 * The table is one allocation: [occupied bytes][padding][slots]. An
 * occupied byte per slot (rather than a reserved key) keeps the full
 * key domain usable — kInvalid is a real lookup key in several tables.
 */
template <typename K, typename V, typename Hash = FlatHash<K>>
class FlatMap
{
  public:
    using key_type = K;
    using mapped_type = V;
    /**
     * Unlike unordered_map, value_type is pair<K, V> (not pair<const
     * K, V>): slots relocate on rehash/backward-shift. Do not write
     * through iterator->first.
     */
    using value_type = std::pair<K, V>;
    using size_type = std::size_t;

    template <bool Const>
    class Iter
    {
      public:
        using Owner = std::conditional_t<Const, const FlatMap, FlatMap>;
        using reference =
            std::conditional_t<Const, const value_type &, value_type &>;
        using pointer =
            std::conditional_t<Const, const value_type *, value_type *>;

        Iter() = default;
        Iter(Owner *owner, size_type pos) : owner_(owner), pos_(pos) {}

        /** const_iterator from iterator. */
        template <bool C = Const, typename = std::enable_if_t<C>>
        Iter(const Iter<false> &other)
            : owner_(other.owner()), pos_(other.pos())
        {
        }

        reference operator*() const { return owner_->slots_[pos_]; }
        pointer operator->() const { return owner_->slots_ + pos_; }

        Iter &
        operator++()
        {
            ++pos_;
            skipEmpty();
            return *this;
        }

        bool
        operator==(const Iter &other) const
        {
            return pos_ == other.pos_;
        }

        bool
        operator!=(const Iter &other) const
        {
            return pos_ != other.pos_;
        }

        Owner *owner() const { return owner_; }
        size_type pos() const { return pos_; }

        void
        skipEmpty()
        {
            while (pos_ < owner_->capacity_ && !owner_->occupied_[pos_])
                ++pos_;
        }

      private:
        Owner *owner_ = nullptr;
        size_type pos_ = 0;
    };

    using iterator = Iter<false>;
    using const_iterator = Iter<true>;

    /** @param pool Backing resource; nullptr falls back to the heap. */
    explicit FlatMap(PoolResource *pool = nullptr) : pool_(pool) {}

    FlatMap(const FlatMap &) = delete;
    FlatMap &operator=(const FlatMap &) = delete;

    FlatMap(FlatMap &&other) noexcept { stealFrom(other); }

    FlatMap &
    operator=(FlatMap &&other) noexcept
    {
        if (this != &other) {
            destroyAll();
            freeTable();
            stealFrom(other);
        }
        return *this;
    }

    ~FlatMap()
    {
        destroyAll();
        freeTable();
    }

    size_type size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_type capacity() const { return capacity_; }

    iterator
    begin()
    {
        iterator it(this, 0);
        it.skipEmpty();
        return it;
    }

    const_iterator
    begin() const
    {
        const_iterator it(this, 0);
        it.skipEmpty();
        return it;
    }

    iterator end() { return iterator(this, capacity_); }
    const_iterator end() const { return const_iterator(this, capacity_); }

    void
    clear()
    {
        destroyAll();
        if (capacity_ > 0)
            std::memset(occupied_, 0, capacity_);
        size_ = 0;
    }

    /** Grow so `count` entries fit without rehashing. */
    void
    reserve(size_type count)
    {
        size_type needed = kMinCapacity;
        while (count + 1 > maxLoad(needed))
            needed *= 2;
        if (needed > capacity_)
            rehash(needed);
    }

    iterator
    find(const K &key)
    {
        const size_type pos = findPos(key);
        return pos == kNotFound ? end() : iterator(this, pos);
    }

    const_iterator
    find(const K &key) const
    {
        const size_type pos = findPos(key);
        return pos == kNotFound ? end() : const_iterator(this, pos);
    }

    bool contains(const K &key) const { return findPos(key) != kNotFound; }
    size_type count(const K &key) const { return contains(key) ? 1 : 0; }

    /** Value pointer or nullptr — the hot-path lookup shape. */
    V *
    findValue(const K &key)
    {
        const size_type pos = findPos(key);
        return pos == kNotFound ? nullptr : &slots_[pos].second;
    }

    const V *
    findValue(const K &key) const
    {
        const size_type pos = findPos(key);
        return pos == kNotFound ? nullptr : &slots_[pos].second;
    }

    V &
    at(const K &key)
    {
        const size_type pos = findPos(key);
        palermo_assert(pos != kNotFound, "FlatMap::at: missing key");
        return slots_[pos].second;
    }

    const V &
    at(const K &key) const
    {
        const size_type pos = findPos(key);
        palermo_assert(pos != kNotFound, "FlatMap::at: missing key");
        return slots_[pos].second;
    }

    V &
    operator[](const K &key)
    {
        return tryEmplace(key).first->second;
    }

    template <typename... Args>
    std::pair<iterator, bool>
    emplace(const K &key, Args &&...args)
    {
        auto [it, inserted] = tryEmplace(key, std::forward<Args>(args)...);
        return {it, inserted};
    }

    std::pair<iterator, bool>
    insert(const value_type &value)
    {
        return tryEmplace(value.first, value.second);
    }

    template <typename M>
    std::pair<iterator, bool>
    insert_or_assign(const K &key, M &&value)
    {
        auto [it, inserted] = tryEmplace(key, std::forward<M>(value));
        if (!inserted)
            it->second = std::forward<M>(value);
        return {it, inserted};
    }

    size_type
    erase(const K &key)
    {
        const size_type pos = findPos(key);
        if (pos == kNotFound)
            return 0;
        erasePos(pos);
        return 1;
    }

    /**
     * Erase the entry `it` points at. Unlike unordered_map, the
     * backward shift may relocate later probe-chain entries into this
     * slot, so no iterator is returned; re-find to continue scanning.
     */
    void
    erase(const_iterator it)
    {
        palermo_assert(it.pos() < capacity_ && occupied_[it.pos()],
                       "FlatMap::erase: invalid iterator");
        erasePos(it.pos());
    }

  private:
    static constexpr size_type kMinCapacity = 8;
    static constexpr size_type kNotFound = ~size_type{0};

    /** Max entries before growth: 3/4 of capacity. */
    static size_type maxLoad(size_type capacity) { return capacity / 4 * 3; }

    size_type
    findPos(const K &key) const
    {
        if (size_ == 0)
            return kNotFound;
        const size_type mask = capacity_ - 1;
        size_type pos = Hash{}(key) & mask;
        while (occupied_[pos]) {
            if (slots_[pos].first == key)
                return pos;
            pos = (pos + 1) & mask;
        }
        return kNotFound;
    }

    template <typename... Args>
    std::pair<iterator, bool>
    tryEmplace(const K &key, Args &&...args)
    {
        if (size_ + 1 > maxLoad(capacity_))
            rehash(capacity_ == 0 ? kMinCapacity : capacity_ * 2);
        const size_type mask = capacity_ - 1;
        size_type pos = Hash{}(key) & mask;
        while (occupied_[pos]) {
            if (slots_[pos].first == key)
                return {iterator(this, pos), false};
            pos = (pos + 1) & mask;
        }
        ::new (static_cast<void *>(slots_ + pos))
            value_type(std::piecewise_construct, std::forward_as_tuple(key),
                       std::forward_as_tuple(std::forward<Args>(args)...));
        occupied_[pos] = 1;
        ++size_;
        return {iterator(this, pos), true};
    }

    void
    erasePos(size_type pos)
    {
        const size_type mask = capacity_ - 1;
        slots_[pos].~value_type();
        occupied_[pos] = 0;
        --size_;
        // Backward-shift compaction: walk the probe chain after the
        // hole and pull back every entry whose home bucket does not
        // sit strictly inside (hole, entry] — i.e. every entry that a
        // future probe for its key would no longer reach past the
        // hole. Stops at the first empty slot (chain end).
        size_type hole = pos;
        size_type next = (pos + 1) & mask;
        while (occupied_[next]) {
            const size_type home = Hash{}(slots_[next].first) & mask;
            // Cyclic distance from home to `next` vs from hole to
            // `next`: if home is further back than the hole, the entry
            // may move into the hole without breaking its chain.
            if (((next - home) & mask) >= ((next - hole) & mask)) {
                ::new (static_cast<void *>(slots_ + hole))
                    value_type(std::move(slots_[next]));
                slots_[next].~value_type();
                occupied_[hole] = 1;
                occupied_[next] = 0;
                hole = next;
            }
            next = (next + 1) & mask;
        }
    }

    void
    rehash(size_type new_capacity)
    {
        palermo_assert((new_capacity & (new_capacity - 1)) == 0);
        std::uint8_t *old_occupied = occupied_;
        value_type *old_slots = slots_;
        const size_type old_capacity = capacity_;

        capacity_ = new_capacity;
        allocTable();
        const size_type mask = capacity_ - 1;
        for (size_type i = 0; i < old_capacity; ++i) {
            if (!old_occupied[i])
                continue;
            // Keys are unique: probe to the first free slot directly.
            size_type pos = Hash{}(old_slots[i].first) & mask;
            while (occupied_[pos])
                pos = (pos + 1) & mask;
            ::new (static_cast<void *>(slots_ + pos))
                value_type(std::move(old_slots[i]));
            occupied_[pos] = 1;
            old_slots[i].~value_type();
        }
        freeTableAt(old_occupied, old_capacity);
    }

    /** Bytes for occupied[] plus padding to the slot alignment. */
    static size_type
    slotsOffset(size_type capacity)
    {
        const size_type align = alignof(value_type);
        return (capacity + align - 1) / align * align;
    }

    static size_type
    tableBytes(size_type capacity)
    {
        return slotsOffset(capacity) + capacity * sizeof(value_type);
    }

    void
    allocTable()
    {
        const size_type bytes = tableBytes(capacity_);
        void *raw = pool_ != nullptr
            ? pool_->allocate(bytes, alignof(value_type))
            : ::operator new(bytes, std::align_val_t{alignof(value_type)});
        occupied_ = static_cast<std::uint8_t *>(raw);
        std::memset(occupied_, 0, capacity_);
        slots_ = reinterpret_cast<value_type *>(
            static_cast<std::uint8_t *>(raw) + slotsOffset(capacity_));
    }

    void
    freeTableAt(std::uint8_t *base, size_type capacity)
    {
        if (base == nullptr)
            return;
        const size_type bytes = tableBytes(capacity);
        if (pool_ != nullptr)
            pool_->deallocate(base, bytes, alignof(value_type));
        else
            ::operator delete(base, bytes,
                              std::align_val_t{alignof(value_type)});
    }

    void
    freeTable()
    {
        freeTableAt(occupied_, capacity_);
        occupied_ = nullptr;
        slots_ = nullptr;
        capacity_ = 0;
    }

    void
    destroyAll()
    {
        if constexpr (!std::is_trivially_destructible_v<value_type>) {
            for (size_type i = 0; i < capacity_; ++i)
                if (occupied_[i])
                    slots_[i].~value_type();
        }
    }

    void
    stealFrom(FlatMap &other)
    {
        pool_ = other.pool_;
        occupied_ = other.occupied_;
        slots_ = other.slots_;
        capacity_ = other.capacity_;
        size_ = other.size_;
        other.occupied_ = nullptr;
        other.slots_ = nullptr;
        other.capacity_ = 0;
        other.size_ = 0;
    }

    PoolResource *pool_ = nullptr;
    std::uint8_t *occupied_ = nullptr; ///< One byte per slot: 0 free.
    value_type *slots_ = nullptr;      ///< Inline key+value storage.
    size_type capacity_ = 0;           ///< Power of two (or 0: empty).
    size_type size_ = 0;
};

/** Set view: FlatMap with an empty payload. */
struct FlatSetUnit
{
};

template <typename K, typename Hash = FlatHash<K>>
class FlatSet
{
  public:
    explicit FlatSet(PoolResource *pool = nullptr) : map_(pool) {}

    std::size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }
    void clear() { map_.clear(); }
    void reserve(std::size_t count) { map_.reserve(count); }
    bool contains(const K &key) const { return map_.contains(key); }
    std::size_t count(const K &key) const { return map_.count(key); }

    /** @return true if the key was newly inserted. */
    bool insert(const K &key) { return map_.emplace(key).second; }
    std::size_t erase(const K &key) { return map_.erase(key); }

  private:
    FlatMap<K, FlatSetUnit, Hash> map_;
};

} // namespace palermo

#endif // PALERMO_COMMON_FLAT_MAP_HH
