/**
 * @file
 * Session-lifetime allocation pools for the simulator's hot path.
 *
 * Every ORAM access used to heap-allocate dozens of short-lived
 * objects (plan phases, path scratch vectors, stash map nodes, DRAM
 * queue chunks). These pools trade that churn for memory retained
 * across accesses: a segregated free-list resource backs the node
 * containers, and an object pool recycles whole LevelPlans with their
 * vector capacities intact. Nothing is returned to the OS before the
 * owning component is destroyed, which is exactly the lifetime of a
 * SimSession.
 *
 * Thread safety: none, by ownership. Each PoolResource is owned by one
 * component (a Stash, a Channel, a controller) and only ever touched
 * by the single thread currently advancing that component. SweepRunner
 * parallelism is across sessions; channel-sharded parallel stepping
 * (sim/parallel.hh) is within one session but assigns each Channel —
 * and therefore its PoolResource — to exactly one worker per barrier
 * epoch, so no pool is ever shared between concurrent threads.
 */

#ifndef PALERMO_COMMON_POOL_HH
#define PALERMO_COMMON_POOL_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace palermo {

/**
 * Arena-backed segregated free-list allocator resource.
 *
 * allocate() first consults the free list of the request's rounded
 * size class, then carves from the current arena chunk, then maps a
 * new chunk. deallocate() pushes the block onto its size class for
 * LIFO reuse. Memory is released only on destruction.
 */
class PoolResource
{
  public:
    /** @param chunk_bytes Arena growth granularity. */
    explicit PoolResource(std::size_t chunk_bytes = 16 * 1024);
    ~PoolResource();

    PoolResource(const PoolResource &) = delete;
    PoolResource &operator=(const PoolResource &) = delete;

    void *allocate(std::size_t bytes, std::size_t align);
    void deallocate(void *p, std::size_t bytes, std::size_t align);

    // Introspection (tests and allocation-budget accounting).

    /** Arena chunks mapped so far. */
    std::size_t chunkCount() const { return chunks_.size(); }

    /** Bytes handed out and not yet returned. */
    std::size_t liveBytes() const { return liveBytes_; }

    /** Allocations served from a free list instead of fresh arena. */
    std::uint64_t reuseHits() const { return reuseHits_; }

  private:
    struct FreeNode
    {
        FreeNode *next;
    };

    /** One free list per distinct rounded allocation size. */
    struct SizeClass
    {
        std::size_t bytes = 0;
        FreeNode *head = nullptr;
    };

    static std::size_t roundUp(std::size_t bytes);
    SizeClass &classFor(std::size_t rounded);

    std::size_t chunkBytes_;
    std::vector<std::unique_ptr<unsigned char[]>> chunks_;
    unsigned char *cursor_ = nullptr; ///< Bump pointer in current chunk.
    std::size_t remaining_ = 0;       ///< Bytes left in current chunk.
    std::vector<SizeClass> classes_;  ///< Few distinct sizes: linear scan.
    std::size_t liveBytes_ = 0;
    std::uint64_t reuseHits_ = 0;
};

/**
 * C++17 allocator over a PoolResource, for std containers whose nodes
 * and buckets should recycle within a session (stash and position
 * maps, DRAM queues, tag maps). The resource must outlive every
 * container bound to it: declare the PoolResource member before the
 * container member.
 */
template <typename T>
class PoolAllocator
{
  public:
    using value_type = T;

    explicit PoolAllocator(PoolResource *resource) noexcept
        : resource_(resource)
    {
    }

    template <typename U>
    PoolAllocator(const PoolAllocator<U> &other) noexcept
        : resource_(other.resource())
    {
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            resource_->allocate(n * sizeof(T), alignof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        resource_->deallocate(p, n * sizeof(T), alignof(T));
    }

    PoolResource *resource() const { return resource_; }

  private:
    PoolResource *resource_;
};

template <typename A, typename B>
bool
operator==(const PoolAllocator<A> &a, const PoolAllocator<B> &b)
{
    return a.resource() == b.resource();
}

template <typename A, typename B>
bool
operator!=(const PoolAllocator<A> &a, const PoolAllocator<B> &b)
{
    return !(a == b);
}

/**
 * LIFO free list of whole recycled objects. acquire() revives the most
 * recently released instance (its internal buffer capacities intact —
 * the point of pooling LevelPlans) or default-constructs a new one;
 * release() calls T::reset(), which must clear logical content while
 * keeping capacity. The pool owns every instance it ever created.
 */
template <typename T>
class ObjectPool
{
  public:
    T *
    acquire()
    {
        if (free_.empty()) {
            all_.push_back(std::make_unique<T>());
            return all_.back().get();
        }
        T *object = free_.back();
        free_.pop_back();
        return object;
    }

    void
    release(T *object)
    {
        object->reset();
        free_.push_back(object);
    }

    /** Instances ever constructed (steady state: stops growing). */
    std::size_t totalCreated() const { return all_.size(); }

    /** Instances currently on the free list. */
    std::size_t freeCount() const { return free_.size(); }

  private:
    std::vector<std::unique_ptr<T>> all_;
    std::vector<T *> free_;
};

} // namespace palermo

#endif // PALERMO_COMMON_POOL_HH
