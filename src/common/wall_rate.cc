/**
 * @file
 * WallRateMeter: the shared wall-clock req/s computation.
 */

#include "common/wall_rate.hh"

namespace palermo {

double
WallRateMeter::elapsedSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

double
WallRateMeter::perSecond(std::uint64_t events) const
{
    const double elapsed = elapsedSeconds();
    return elapsed > 0.0 ? static_cast<double>(events) / elapsed : 0.0;
}

} // namespace palermo
