/**
 * @file
 * Segregated free-list pool resource: size-class recycling over bump
 * allocated arena chunks.
 */

#include "common/pool.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

namespace {

/** Every carve is aligned to this; covers all node/bucket types. */
constexpr std::size_t kPoolAlign = alignof(std::max_align_t);

} // namespace

PoolResource::PoolResource(std::size_t chunk_bytes)
    : chunkBytes_(chunk_bytes)
{
    palermo_assert(chunk_bytes >= kPoolAlign);
}

PoolResource::~PoolResource() = default;

std::size_t
PoolResource::roundUp(std::size_t bytes)
{
    // A block must at least hold the intrusive free-list node.
    if (bytes < sizeof(FreeNode))
        bytes = sizeof(FreeNode);
    return (bytes + kPoolAlign - 1) & ~(kPoolAlign - 1);
}

PoolResource::SizeClass &
PoolResource::classFor(std::size_t rounded)
{
    // A container family produces a handful of distinct sizes (its
    // node, plus geometric bucket-array steps); linear scan beats a
    // map that would itself allocate.
    for (SizeClass &sc : classes_) {
        if (sc.bytes == rounded)
            return sc;
    }
    classes_.push_back(SizeClass{rounded, nullptr});
    return classes_.back();
}

void *
PoolResource::allocate(std::size_t bytes, std::size_t align)
{
    if (align > kPoolAlign) {
        // Over-aligned requests bypass the arena (none of the pooled
        // containers need this; kept correct for generality).
        return ::operator new(bytes, std::align_val_t(align));
    }
    const std::size_t rounded = roundUp(bytes);
    liveBytes_ += rounded;

    SizeClass &sc = classFor(rounded);
    if (sc.head != nullptr) {
        FreeNode *node = sc.head;
        sc.head = node->next;
        ++reuseHits_;
        return node;
    }
    if (remaining_ < rounded) {
        const std::size_t chunk = std::max(chunkBytes_, rounded);
        chunks_.push_back(std::make_unique<unsigned char[]>(chunk));
        cursor_ = chunks_.back().get();
        remaining_ = chunk;
    }
    unsigned char *p = cursor_;
    cursor_ += rounded;
    remaining_ -= rounded;
    return p;
}

void
PoolResource::deallocate(void *p, std::size_t bytes, std::size_t align)
{
    if (p == nullptr)
        return;
    if (align > kPoolAlign) {
        ::operator delete(p, std::align_val_t(align));
        return;
    }
    const std::size_t rounded = roundUp(bytes);
    palermo_assert(liveBytes_ >= rounded, "pool deallocate underflow");
    liveBytes_ -= rounded;

    SizeClass &sc = classFor(rounded);
    FreeNode *node = static_cast<FreeNode *>(p);
    node->next = sc.head;
    sc.head = node;
}

} // namespace palermo
