/**
 * @file
 * xoshiro256** core, SplitMix64 seeding, and the rejection-sampled
 * uniform / Zipf distribution helpers.
 */

#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace palermo {

std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t value)
{
    std::uint64_t state = value;
    return splitMix64(state);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &lane : s_)
        lane = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    palermo_assert(bound > 0);
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    palermo_assert(lo <= hi);
    return lo + range(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53-bit mantissa double in [0, 1).
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha, std::uint64_t seed)
    : n_(n), alpha_(alpha), rng_(seed)
{
    palermo_assert(n > 0);
    // Exact CDF for the head; the (smooth) tail beyond the table is
    // handled analytically via the integral approximation of the
    // truncated zeta mass, keeping construction cheap for huge spaces.
    const std::uint64_t table = std::min<std::uint64_t>(n, 1 << 20);
    cdf_.resize(table);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < table; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = acc;
    }
    double tail = 0.0;
    if (table < n) {
        const double m = static_cast<double>(table);
        const double top = static_cast<double>(n);
        if (std::abs(alpha - 1.0) < 1e-9) {
            tail = std::log(top / m);
        } else {
            tail = (std::pow(top, 1.0 - alpha) - std::pow(m, 1.0 - alpha))
                / (1.0 - alpha);
        }
    }
    const double total = acc + tail;
    for (auto &c : cdf_)
        c /= total;
    headMass_ = acc / total;
}

std::uint64_t
ZipfSampler::sample()
{
    const double u = rng_.uniform();
    if (u < headMass_ || cdf_.size() >= n_) {
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        std::uint64_t rank = static_cast<std::uint64_t>(it - cdf_.begin());
        if (rank >= cdf_.size())
            rank = cdf_.size() - 1;
        return rank;
    }
    // Tail: invert the integral CDF over [table, n).
    const double v = (u - headMass_) / (1.0 - headMass_);
    const double m = static_cast<double>(cdf_.size());
    const double top = static_cast<double>(n_);
    double rank;
    if (std::abs(alpha_ - 1.0) < 1e-9) {
        rank = m * std::exp(v * std::log(top / m));
    } else {
        const double lo = std::pow(m, 1.0 - alpha_);
        const double hi = std::pow(top, 1.0 - alpha_);
        rank = std::pow(lo + v * (hi - lo), 1.0 / (1.0 - alpha_));
    }
    auto out = static_cast<std::uint64_t>(rank);
    return std::min(out, n_ - 1);
}

} // namespace palermo
