/**
 * @file
 * Lightweight statistics primitives for the simulator.
 *
 * Counter/Average/Histogram mirror the subset of the gem5 stats package the
 * experiments need: monotonically increasing event counts, running means,
 * and bucketized distributions (used for ORAM response latencies).
 */

#ifndef PALERMO_COMMON_STATS_HH
#define PALERMO_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace palermo {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean/min/max over double samples. */
class Average
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width-bucket histogram with overflow bucket; supports quantiles
 * (median split drives the mutual-information attacker model).
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket.
     * @param num_buckets Number of regular buckets (plus one overflow).
     */
    explicit Histogram(double bucket_width = 100.0,
                       std::size_t num_buckets = 128);

    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Approximate p-quantile (0 <= p <= 1) from bucket boundaries. */
    double quantile(double p) const;

    /** Fraction of samples strictly above the given threshold. */
    double fractionAbove(double threshold) const;

    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    double bucketWidth() const { return bucketWidth_; }

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Time-weighted accumulator: integrates a level (e.g. queue occupancy)
 * over ticks so that mean() returns the time-average of the level.
 */
class TimeWeighted
{
  public:
    /** Account for the level holding for the given number of ticks. */
    void accumulate(double level, std::uint64_t ticks);

    /**
     * Bulk form for integer-valued levels: add a precomputed integral
     * (sum over `ticks` observations of an integer level) in one step.
     * Integers up to 2^53 are exact in double, and addition of exact
     * integers is associative, so this is bit-identical to `ticks`
     * per-observation accumulate() calls — the property the batched
     * parallel-stepping fast path relies on for byte-stable metrics.
     */
    void accumulateExact(std::uint64_t integral, std::uint64_t ticks);

    void reset();

    double mean() const { return ticks_ ? weighted_ / ticks_ : 0.0; }
    std::uint64_t ticks() const { return ticks_; }

  private:
    double weighted_ = 0.0;
    std::uint64_t ticks_ = 0;
};

/** Named scalar set with pretty-printing, for bench table output. */
class StatSet
{
  public:
    void set(const std::string &name, double value);
    double get(const std::string &name) const;
    bool has(const std::string &name) const;
    std::string toString() const;

  private:
    std::map<std::string, double> values_;
};

/** Geometric mean of a vector of strictly positive values. */
double geomean(const std::vector<double> &values);

} // namespace palermo

#endif // PALERMO_COMMON_STATS_HH
