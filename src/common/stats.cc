/**
 * @file
 * Counter/Average/Histogram bookkeeping and text formatting.
 */

#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/log.hh"

namespace palermo {

void
Average::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Average::reset()
{
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width), buckets_(num_buckets + 1, 0)
{
    palermo_assert(bucket_width > 0.0);
    palermo_assert(num_buckets > 0);
}

void
Histogram::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    auto idx = static_cast<std::size_t>(std::max(v, 0.0) / bucketWidth_);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    ++buckets_[idx];
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

double
Histogram::quantile(double p) const
{
    palermo_assert(p >= 0.0 && p <= 1.0);
    if (count_ == 0)
        return 0.0;
    const auto target = static_cast<std::uint64_t>(p * count_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen > target)
            return (i + 0.5) * bucketWidth_;
    }
    return max_;
}

double
Histogram::fractionAbove(double threshold) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t above = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        const double bucket_mid = (i + 0.5) * bucketWidth_;
        if (bucket_mid > threshold)
            above += buckets_[i];
    }
    return static_cast<double>(above) / count_;
}

void
TimeWeighted::accumulate(double level, std::uint64_t ticks)
{
    weighted_ += level * ticks;
    ticks_ += ticks;
}

void
TimeWeighted::accumulateExact(std::uint64_t integral, std::uint64_t ticks)
{
    // Bit-identical to per-tick accumulate() of integer levels: both
    // sides only ever add exact integers into weighted_.
    weighted_ += static_cast<double>(integral);
    ticks_ += ticks;
}

void
TimeWeighted::reset()
{
    weighted_ = 0.0;
    ticks_ = 0;
}

void
StatSet::set(const std::string &name, double value)
{
    values_[name] = value;
}

double
StatSet::get(const std::string &name) const
{
    const auto it = values_.find(name);
    palermo_assert(it != values_.end(), "unknown stat");
    return it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : values_)
        os << name << " = " << value << "\n";
    return os.str();
}

double
geomean(const std::vector<double> &values)
{
    palermo_assert(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        palermo_assert(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / values.size());
}

} // namespace palermo
