/**
 * @file
 * Implementation of the gem5-style reporting channels: message
 * formatting, stream selection, and abort semantics for panic/fatal.
 */

#include "common/log.hh"

#include <cstdio>
#include <cstdlib>

namespace palermo {

namespace {
bool gVerbose = true;
} // namespace

void
setVerbose(bool verbose)
{
    gVerbose = verbose;
}

bool
verbose()
{
    return gVerbose;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "panic: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    std::fprintf(stderr, "fatal: %s:%d: ", file, line);
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    std::fprintf(stderr, "warn: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fprintf(stderr, "\n");
}

void
informImpl(const char *fmt, ...)
{
    if (!gVerbose)
        return;
    std::fprintf(stdout, "info: ");
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stdout, fmt, args);
    va_end(args);
    std::fprintf(stdout, "\n");
}

} // namespace palermo
