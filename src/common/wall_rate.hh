/**
 * @file
 * Wall-clock throughput meter shared by the external drivers.
 *
 * palermo_replay's --progress lines and palermo_loadgen's per-point
 * reporting both want "requests per wall second since the run
 * started"; this is the one implementation of that computation, so
 * the two tools cannot drift (and a future server main-loop reuses
 * it as-is). Wall-clock values are reporting-only: they never enter
 * JSON documents or any deterministic statistic.
 */

#ifndef PALERMO_COMMON_WALL_RATE_HH
#define PALERMO_COMMON_WALL_RATE_HH

#include <chrono>
#include <cstdint>

namespace palermo {

/** Measures events per wall-clock second since construction. */
class WallRateMeter
{
  public:
    WallRateMeter() : start_(std::chrono::steady_clock::now()) {}

    /** Restart the measurement window at now. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

    /** Seconds elapsed since construction / the last restart(). */
    double elapsedSeconds() const;

    /**
     * Events per second over the elapsed window; 0 when no time has
     * passed yet (never divides by zero).
     */
    double perSecond(std::uint64_t events) const;

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace palermo

#endif // PALERMO_COMMON_WALL_RATE_HH
