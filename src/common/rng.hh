/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * Provides a xoshiro256** engine seeded via SplitMix64 plus distribution
 * helpers (uniform ranges, Zipf sampler). All randomness in the repository
 * flows through Rng so that every experiment is reproducible from a seed.
 */

#ifndef PALERMO_COMMON_RNG_HH
#define PALERMO_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace palermo {

/** SplitMix64 step; used for seeding and as a cheap stateless mixer. */
std::uint64_t splitMix64(std::uint64_t &state);

/** One-shot 64-bit mix of a value (stateless hash). */
std::uint64_t mix64(std::uint64_t value);

/**
 * xoshiro256** PRNG. Small, fast, and high quality; all simulator
 * randomness (leaf selection, trace generation) uses this engine.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Re-seed the engine deterministically from a 64-bit seed. */
    void seed(std::uint64_t seed);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0 (unbiased via rejection). */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(alpha) sampler over [0, n) using inverse-CDF with a precomputed
 * cumulative table (exact, O(log n) per sample). Models the skewed
 * popularity of keys/tokens/embedding rows in the paper's workloads.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of items.
     * @param alpha Skew parameter (0 = uniform; ~0.99 typical for KV).
     * @param seed RNG seed for this sampler.
     */
    ZipfSampler(std::uint64_t n, double alpha, std::uint64_t seed);

    /** Draw one item index in [0, n). Rank 0 is the most popular item. */
    std::uint64_t sample();

    std::uint64_t itemCount() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    std::uint64_t n_;
    double alpha_;
    Rng rng_;
    std::vector<double> cdf_;
    /** Probability mass covered by the exact head table. */
    double headMass_ = 1.0;
};

} // namespace palermo

#endif // PALERMO_COMMON_RNG_HH
