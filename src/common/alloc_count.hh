/**
 * @file
 * Global heap-allocation counter for perf harnesses.
 *
 * Including this header REPLACES the global operator new/delete with
 * malloc/free-backed versions that bump an atomic counter, so a
 * harness can assert "N steady-state accesses performed ≤ K heap
 * allocations". Include it in exactly ONE translation unit of a
 * binary that wants counting (bench_sim_speed, test_alloc_budget) and
 * never in the core library: linking it everywhere would silently
 * disable ASan's allocator interposition for every test.
 *
 * Counting is process-wide and thread-safe (relaxed atomics); the
 * counter only ever increases. Read deltas around the region of
 * interest.
 */

#ifndef PALERMO_COMMON_ALLOC_COUNT_HH
#define PALERMO_COMMON_ALLOC_COUNT_HH

#include <atomic>
#include <cstdlib>
#include <new>

namespace palermo {

namespace alloc_count_detail {

inline std::atomic<unsigned long long> g_allocations{0};

inline void *
countedAllocate(std::size_t bytes)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (bytes == 0)
        bytes = 1;
    void *p = std::malloc(bytes);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

inline void *
countedAllocateAligned(std::size_t bytes, std::size_t align)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (bytes == 0)
        bytes = align;
    // aligned_alloc wants size as a multiple of alignment.
    const std::size_t rounded = (bytes + align - 1) / align * align;
    void *p = std::aligned_alloc(align, rounded);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

} // namespace alloc_count_detail

/** Total operator-new calls in this process so far. */
inline unsigned long long
heapAllocationCount()
{
    return alloc_count_detail::g_allocations.load(
        std::memory_order_relaxed);
}

} // namespace palermo

void *
operator new(std::size_t bytes)
{
    return palermo::alloc_count_detail::countedAllocate(bytes);
}

void *
operator new[](std::size_t bytes)
{
    return palermo::alloc_count_detail::countedAllocate(bytes);
}

void *
operator new(std::size_t bytes, std::align_val_t align)
{
    return palermo::alloc_count_detail::countedAllocateAligned(
        bytes, static_cast<std::size_t>(align));
}

void *
operator new[](std::size_t bytes, std::align_val_t align)
{
    return palermo::alloc_count_detail::countedAllocateAligned(
        bytes, static_cast<std::size_t>(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

#endif // PALERMO_COMMON_ALLOC_COUNT_HH
