/**
 * @file
 * Fundamental scalar types shared across the Palermo simulator.
 */

#ifndef PALERMO_COMMON_TYPES_HH
#define PALERMO_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace palermo {

/** Simulation time in 1.6 GHz cycles (one DDR4-3200 bus clock). */
using Tick = std::uint64_t;

/** Byte address in the untrusted (outsourced) DRAM space. */
using Addr = std::uint64_t;

/** Logical block index in a protected memory space (64B granularity). */
using BlockId = std::uint64_t;

/** Leaf index of an ORAM tree (0 .. numLeaves-1). */
using Leaf = std::uint64_t;

/** Heap-order node index of an ORAM tree (root = 0). */
using NodeId = std::uint64_t;

/** Sentinel for "no tick scheduled". */
constexpr Tick kTickNever = std::numeric_limits<Tick>::max();

/** Sentinel for invalid block / leaf / node. */
constexpr std::uint64_t kInvalid = std::numeric_limits<std::uint64_t>::max();

/** Cache-line / ORAM block payload granularity in bytes. */
constexpr unsigned kBlockBytes = 64;

} // namespace palermo

#endif // PALERMO_COMMON_TYPES_HH
