/**
 * @file
 * gem5-style status/error reporting: panic, fatal, warn, inform.
 *
 * panic()  - simulator bug; should never happen regardless of user input.
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments).
 * warn()   - functionality works but deserves user attention.
 * inform() - status messages with no connotation of incorrect behavior.
 */

#ifndef PALERMO_COMMON_LOG_HH
#define PALERMO_COMMON_LOG_HH

#include <cstdarg>
#include <string>

namespace palermo {

[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...);
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...);
void warnImpl(const char *fmt, ...);
void informImpl(const char *fmt, ...);

/** Enable/disable inform() output (benches quiet it down). */
void setVerbose(bool verbose);
bool verbose();

} // namespace palermo

#define panic(...) ::palermo::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define fatal(...) ::palermo::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define warn(...) ::palermo::warnImpl(__VA_ARGS__)
#define inform(...) ::palermo::informImpl(__VA_ARGS__)

/** gem5-style assertion that survives NDEBUG and reports context. */
#define palermo_assert(cond, ...)                                            \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::palermo::panicImpl(__FILE__, __LINE__,                         \
                                 "assertion '%s' failed: " #__VA_ARGS__,     \
                                 #cond);                                     \
        }                                                                    \
    } while (0)

#endif // PALERMO_COMMON_LOG_HH
