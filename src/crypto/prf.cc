/**
 * @file
 * Speck-based PRF evaluation for default posmap entries and block
 * permutations.
 */

#include "crypto/prf.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace palermo {

Prf::Prf(std::uint64_t key) : cipher_({key, mix64(key)})
{
}

std::uint64_t
Prf::eval(std::uint64_t input) const
{
    return cipher_.encrypt({input, 0x5045524d4f505246ull})[0];
}

std::uint64_t
Prf::evalMod(std::uint64_t input, std::uint64_t bound) const
{
    palermo_assert(bound > 0);
    // 64-bit PRF output modulo bound: bias is negligible for the leaf
    // counts used here (bound << 2^64).
    return eval(input) % bound;
}

} // namespace palermo
