/**
 * @file
 * CTR keystream generation and 64B payload encrypt/decrypt over
 * Speck128.
 */

#include "crypto/ctr_mode.hh"

namespace palermo {

CtrEncryptor::CtrEncryptor(const Speck128::Key &key) : cipher_(key)
{
}

Payload64
CtrEncryptor::keystream(Addr addr, std::uint64_t version) const
{
    Payload64 ks;
    for (unsigned i = 0; i < 4; ++i) {
        // Nonce: (addr, version || counter i), unique per 16B segment.
        const Speck128::Block block =
            cipher_.encrypt({addr, (version << 2) | i});
        ks[2 * i] = block[0];
        ks[2 * i + 1] = block[1];
    }
    return ks;
}

Payload64
CtrEncryptor::encrypt(const Payload64 &plain, Addr addr,
                      std::uint64_t version) const
{
    const Payload64 ks = keystream(addr, version);
    Payload64 out;
    for (unsigned i = 0; i < 8; ++i)
        out[i] = plain[i] ^ ks[i];
    return out;
}

Payload64
CtrEncryptor::decrypt(const Payload64 &cipher, Addr addr,
                      std::uint64_t version) const
{
    return encrypt(cipher, addr, version);
}

} // namespace palermo
