/**
 * @file
 * Keyed pseudo-random function used for default (never-touched) position
 * map entries and block permutations.
 *
 * A lazily materialized PosMap needs a deterministic initial leaf for
 * every block; deriving it from PRF(key, block) is equivalent to the
 * "initialized independently and uniformly at random" assumption in the
 * PathORAM/RingORAM proofs while keeping memory O(touched blocks).
 */

#ifndef PALERMO_CRYPTO_PRF_HH
#define PALERMO_CRYPTO_PRF_HH

#include <cstdint>

#include "crypto/speck.hh"

namespace palermo {

/** Keyed PRF: 64-bit input -> 64-bit output via one Speck encryption. */
class Prf
{
  public:
    explicit Prf(std::uint64_t key);

    /** Evaluate PRF(input). */
    std::uint64_t eval(std::uint64_t input) const;

    /** Evaluate PRF(input) reduced uniformly into [0, bound). */
    std::uint64_t evalMod(std::uint64_t input, std::uint64_t bound) const;

  private:
    Speck128 cipher_;
};

} // namespace palermo

#endif // PALERMO_CRYPTO_PRF_HH
