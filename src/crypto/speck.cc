/**
 * @file
 * Speck128/128 key schedule and round functions.
 */

#include "crypto/speck.hh"

namespace palermo {

namespace {

inline std::uint64_t
ror(std::uint64_t x, unsigned r)
{
    return (x >> r) | (x << (64 - r));
}

inline std::uint64_t
rol(std::uint64_t x, unsigned r)
{
    return (x << r) | (x >> (64 - r));
}

// One Speck round on (x, y) with round key k.
inline void
round(std::uint64_t &x, std::uint64_t &y, std::uint64_t k)
{
    x = ror(x, 8);
    x += y;
    x ^= k;
    y = rol(y, 3);
    y ^= x;
}

inline void
invRound(std::uint64_t &x, std::uint64_t &y, std::uint64_t k)
{
    y ^= x;
    y = ror(y, 3);
    x ^= k;
    x -= y;
    x = rol(x, 8);
}

} // namespace

Speck128::Speck128(const Key &key)
{
    // Key schedule per the Speck specification: the key words feed the
    // same round function with the round index as the key.
    std::uint64_t a = key[0]; // k0
    std::uint64_t b = key[1]; // l0
    for (unsigned i = 0; i < kRounds; ++i) {
        roundKeys_[i] = a;
        round(b, a, static_cast<std::uint64_t>(i));
    }
}

Speck128::Block
Speck128::encrypt(Block plaintext) const
{
    std::uint64_t y = plaintext[0];
    std::uint64_t x = plaintext[1];
    for (unsigned i = 0; i < kRounds; ++i)
        round(x, y, roundKeys_[i]);
    return {y, x};
}

Speck128::Block
Speck128::decrypt(Block ciphertext) const
{
    std::uint64_t y = ciphertext[0];
    std::uint64_t x = ciphertext[1];
    for (unsigned i = kRounds; i-- > 0;)
        invRound(x, y, roundKeys_[i]);
    return {y, x};
}

} // namespace palermo
