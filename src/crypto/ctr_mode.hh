/**
 * @file
 * Counter-mode encryption for 64B ORAM block payloads.
 *
 * Every block stored in the untrusted tree is encrypted under a per-write
 * nonce (address, version) so that rewriting the same plaintext yields a
 * fresh ciphertext — the property the ORAM obliviousness argument relies
 * on ("all data is encrypted with different keys", paper §II-C).
 */

#ifndef PALERMO_CRYPTO_CTR_MODE_HH
#define PALERMO_CRYPTO_CTR_MODE_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "crypto/speck.hh"

namespace palermo {

/** 64-byte payload as eight 64-bit lanes. */
using Payload64 = std::array<std::uint64_t, 8>;

/** CTR-mode encryptor over Speck128/128 for 64B payloads. */
class CtrEncryptor
{
  public:
    explicit CtrEncryptor(const Speck128::Key &key);

    /**
     * Encrypt a 64B payload under (address, version) nonce.
     * Encrypt and decrypt are the same XOR-keystream operation.
     */
    Payload64 encrypt(const Payload64 &plain, Addr addr,
                      std::uint64_t version) const;

    Payload64 decrypt(const Payload64 &cipher, Addr addr,
                      std::uint64_t version) const;

  private:
    Payload64 keystream(Addr addr, std::uint64_t version) const;

    Speck128 cipher_;
};

} // namespace palermo

#endif // PALERMO_CRYPTO_CTR_MODE_HH
