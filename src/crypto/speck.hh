/**
 * @file
 * Speck128/128 block cipher (Beaulieu et al., NSA 2013).
 *
 * The paper's RTL uses AES units; this repo uses Speck because it is a
 * published ARX cipher that is tiny to implement from the specification,
 * fast in software, and sufficient to model the controller's
 * encrypt/decrypt datapath (block confidentiality on the memory bus). The
 * timing model charges a fixed pipeline latency per block regardless of
 * cipher choice, so the substitution does not affect any experiment.
 */

#ifndef PALERMO_CRYPTO_SPECK_HH
#define PALERMO_CRYPTO_SPECK_HH

#include <array>
#include <cstdint>

namespace palermo {

/** Speck128/128: 128-bit block, 128-bit key, 32 rounds. */
class Speck128
{
  public:
    using Block = std::array<std::uint64_t, 2>;
    using Key = std::array<std::uint64_t, 2>;

    explicit Speck128(const Key &key);

    /** Encrypt one 128-bit block in place. */
    Block encrypt(Block plaintext) const;

    /** Decrypt one 128-bit block in place. */
    Block decrypt(Block ciphertext) const;

    static constexpr unsigned kRounds = 32;

  private:
    std::array<std::uint64_t, kRounds> roundKeys_;
};

} // namespace palermo

#endif // PALERMO_CRYPTO_SPECK_HH
