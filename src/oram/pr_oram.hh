/**
 * @file
 * PrOram: the prefetching PathORAM family (PrORAM [50] and LAORAM [39]).
 *
 * PrORAM forces consecutive physical addresses onto the same ORAM leaf so
 * one path access prefetches a whole group into the LLC; subsequent
 * misses on resident lines bypass the protocol. The cost (paper §III-B)
 * is stash pressure: after each access a whole group must re-enter the
 * tree along a single fresh path, so when the stash exceeds a threshold
 * the protocol inserts dummy background-eviction requests. A dynamic
 * throttle disables grouping when the recent dummy ratio is high.
 * LAORAM's Fat-Tree variant widens buckets near the root to relieve the
 * pressure.
 */

#ifndef PALERMO_ORAM_PR_ORAM_HH
#define PALERMO_ORAM_PR_ORAM_HH

#include <array>
#include <deque>
#include <memory>

#include "common/rng.hh"
#include "oram/hierarchy.hh"
#include "oram/path_engine.hh"
#include "oram/posmap.hh"

namespace palermo {

/** PrORAM running statistics (Fig. 4 inputs). */
struct PrOramStats
{
    std::uint64_t realRequests = 0;
    std::uint64_t dummyRequests = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t throttledAccesses = 0;

    double dummyRatio() const
    {
        const auto total = realRequests + dummyRequests;
        return total ? static_cast<double>(dummyRequests) / total : 0.0;
    }
};

/** Prefetching PathORAM (PrORAM; LAORAM with config.fatTree). */
class PrOram : public Protocol
{
  public:
    explicit PrOram(const ProtocolConfig &config);

    const char *name() const override
    {
        return config_.fatTree ? "LAORAM" : "PrORAM";
    }

    void accessInto(BlockId pa, bool write, std::uint64_t value,
                    std::vector<RequestPlan> *out) override;

    const Stash &stashOf(unsigned level) const override;
    Stash &stashOf(unsigned level) override;
    std::uint64_t numBlocks() const override { return config_.numBlocks; }
    std::uint64_t dataLeaves() const override
    {
        return engines_[kLevelData]->params().numLeaves;
    }

    const PrOramStats &prStats() const { return prStats_; }
    PathEngine &engine(unsigned level) { return *engines_[level]; }
    const PosMap &posMap(unsigned level) const { return *posMaps_[level]; }
    bool checkBlockInvariant(BlockId pa) const;

  private:
    /** Stash level above which dummy evictions are injected. */
    std::size_t dummyThreshold() const;

    /** Consult the throttle window; true if grouping is active. */
    bool prefetchActive() const;
    void recordPlan(bool dummy);

    ProtocolConfig config_;
    Rng rng_;
    std::array<std::unique_ptr<PathEngine>, kHierLevels> engines_;
    std::array<std::unique_ptr<PosMap>, kHierLevels> posMaps_;
    PrefetchFilter filter_;
    std::deque<bool> window_; ///< Recent plans: true = dummy.
    std::vector<BlockId> membersScratch_; ///< Group-sibling staging.
    PrOramStats prStats_;
};

} // namespace palermo

#endif // PALERMO_ORAM_PR_ORAM_HH
