/**
 * @file
 * RingEngine: ReadPath/EvictPath/EarlyReshuffle (paper Algorithm 1)
 * for a single ORAM tree, including permuted slot selection and
 * reshuffle scheduling.
 */

#include "oram/level_engine.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

RingEngine::RingEngine(const OramParams &params, Addr base,
                       ReshuffleMode mode, unsigned cached_levels,
                       std::uint64_t seed, std::size_t stash_capacity)
    : params_(params), layout_(base, params), mode_(mode),
      cachedLevels_(std::min(cached_levels, params.levels)), rng_(seed),
      tree_(params), stash_(stash_capacity)
{
    palermo_assert(params_.s >= 1, "RingORAM needs dummy slots");
}

bool
RingEngine::levelCached(NodeId node) const
{
    return params_.levelOf(node) < cachedLevels_;
}

void
RingEngine::appendSlot(std::vector<MemOp> &ops, NodeId node, unsigned slot,
                       bool write) const
{
    if (levelCached(node))
        return;
    layout_.appendSlotOps(ops, node, slot, write);
}

void
RingEngine::appendMeta(std::vector<MemOp> &ops, NodeId node,
                       bool write) const
{
    if (levelCached(node))
        return;
    ops.push_back({layout_.metaAddr(node), write});
}

void
RingEngine::resetBucket(NodeId node, std::vector<MemOp> &read_ops,
                        std::vector<MemOp> &write_ops)
{
    auto meta = tree_.node(node);
    const unsigned level = params_.levelOf(node);
    const unsigned capacity = params_.capacityAt(level);

    // Fetch step: read the unused real blocks, padded to Z offsets so the
    // bus trace is independent of the bucket's true occupancy.
    for (unsigned i = 0; i < capacity; ++i)
        appendSlot(read_ops, node, i, false);

    // Functional: remaining valid blocks go to the stash. If the reset
    // pulls in the in-flight target, it keeps its (already-remapped)
    // destiny: ReadPath serves it from the stash afterwards.
    meta.takeAllValidInto(&takeScratch_);
    for (const BlockContent &content : takeScratch_)
        stash_.put(content.block, content.leaf, content.payload);

    // ...then WriteBucket refills from eligible stash blocks.
    stash_.eligibleForInto(node, params_, capacity, inFlight_,
                           &chosenScratch_);
    refillScratch_.clear();
    refillScratch_.reserve(chosenScratch_.size());
    for (BlockId block : chosenScratch_) {
        const StashEntry entry = stash_.take(block);
        refillScratch_.push_back({block, entry.payload, entry.leaf});
    }
    meta.resetWith(refillScratch_);

    // Write-back: the whole bucket is re-encrypted and rewritten, plus
    // its metadata line.
    for (unsigned i = 0; i < params_.slotsAt(level); ++i)
        appendSlot(write_ops, node, i, true);
    appendMeta(write_ops, node, true);
}

LevelPlan
RingEngine::access(BlockId block, Leaf leaf, Leaf new_leaf)
{
    LevelPlan plan;
    accessInto(block, leaf, new_leaf, &plan);
    return plan;
}

void
RingEngine::accessInto(BlockId block, Leaf leaf, Leaf new_leaf,
                       LevelPlan *plan)
{
    palermo_assert(block < params_.numBlocks, "block outside tree space");
    palermo_assert(leaf < params_.numLeaves);
    palermo_assert(new_leaf < params_.numLeaves);

    plan->reset();
    plan->block = block;
    plan->oldLeaf = leaf;
    plan->newLeaf = new_leaf;
    inFlight_ = block;

    params_.pathNodesInto(leaf, &pathScratch_);
    const std::vector<NodeId> &path = pathScratch_;
    lmScratch_.clear();
    erReadScratch_.clear();
    erWriteScratch_.clear();
    rpScratch_.clear();
    epReadScratch_.clear();
    epWriteScratch_.clear();
    bypassScratch_.clear();

    // LM: load path metadata (valid bits, access counters).
    for (NodeId node : path)
        appendMeta(lmScratch_, node, false);

    // ER: EarlyReshuffle — before (Pre) or after (Post) ReadPath.
    if (mode_ == ReshuffleMode::Pre) {
        // Palermo Algorithm 2: reset at S-1 so this access's touch can
        // never exhaust the dummies, and bypass the node in ReadPath.
        for (NodeId node : path) {
            auto meta = tree_.node(node);
            if (meta.accessed() >= params_.s - 1) {
                resetBucket(node, erReadScratch_, erWriteScratch_);
                bypassScratch_.push_back(node);
                ++stats_.earlyReshuffles;
            }
        }
    }

    // RP: one slot per non-bypassed path node; the real block where
    // present, a random unused dummy elsewhere.
    bool found = false;
    for (NodeId node : path) {
        if (std::find(bypassScratch_.begin(), bypassScratch_.end(), node)
            != bypassScratch_.end()) {
            continue;
        }
        auto meta = tree_.node(node);
        const int real_slot = meta.slotOf(block);
        if (real_slot >= 0) {
            const BlockContent content =
                meta.takeReal(static_cast<unsigned>(real_slot));
            stash_.put(content.block, new_leaf, content.payload);
            found = true;
            appendSlot(rpScratch_, node, static_cast<unsigned>(real_slot),
                       false);
        } else {
            const int dummy_slot = meta.touchDummy(rng_);
            palermo_assert(dummy_slot >= 0,
                           "no usable dummy: reshuffle protocol violated");
            appendSlot(rpScratch_, node, static_cast<unsigned>(dummy_slot),
                       false);
        }
        // NodeMetadata[NodeID].update(): persist the consumed valid bit.
        appendMeta(rpScratch_, node, true);
    }

    if (!found) {
        if (stash_.contains(block)) {
            // Pending block: already resident in the stash (possibly
            // brought in by this or an earlier concurrent request, or by
            // a bypassed bucket's reset pulling it in above).
            plan->servedFromStash = true;
            stash_.remap(block, new_leaf);
            ++stats_.stashServes;
        } else {
            // First-ever touch: the block has never been written to the
            // tree; conjure it with a zero payload.
            plan->freshBlock = true;
            stash_.put(block, new_leaf, 0);
            ++stats_.freshBlocks;
        }
    } else if (stash_.contains(block)) {
        stash_.remap(block, new_leaf);
    }

    if (mode_ == ReshuffleMode::Post) {
        // Baseline Algorithm 1: EarlyReshuffle(leaf) after ReadPath.
        for (NodeId node : path) {
            auto meta = tree_.node(node);
            if (meta.accessed() >= params_.s) {
                resetBucket(node, erReadScratch_, erWriteScratch_);
                ++stats_.earlyReshuffles;
            }
        }
    }

    // EP: deterministic eviction every A accesses.
    ++accessCount_;
    ++stats_.accesses;
    if (accessCount_ % params_.a == 0) {
        plan->hasEvict = true;
        ++stats_.evictions;
        const Leaf g = evictionLeaf(evictCounter_++, params_.numLeaves);
        params_.pathNodesInto(g, &evictScratch_);
        const std::vector<NodeId> &evict_path = evictScratch_;

        // Fetch all remaining valid blocks on the eviction path into the
        // stash (Z-padded reads per node)...
        for (NodeId node : evict_path) {
            auto meta = tree_.node(node);
            const unsigned capacity =
                params_.capacityAt(params_.levelOf(node));
            for (unsigned i = 0; i < capacity; ++i)
                appendSlot(epReadScratch_, node, i, false);
            meta.takeAllValidInto(&takeScratch_);
            for (const BlockContent &content : takeScratch_)
                stash_.put(content.block, content.leaf, content.payload);
        }
        // ...then push back leaf-to-root so blocks land as deep as their
        // leaf assignment allows.
        for (auto it = evict_path.rbegin(); it != evict_path.rend(); ++it) {
            const NodeId node = *it;
            const unsigned level = params_.levelOf(node);
            const unsigned capacity = params_.capacityAt(level);
            stash_.eligibleForInto(node, params_, capacity, inFlight_,
                                   &chosenScratch_);
            refillScratch_.clear();
            refillScratch_.reserve(chosenScratch_.size());
            for (BlockId b : chosenScratch_) {
                const StashEntry entry = stash_.take(b);
                refillScratch_.push_back({b, entry.payload, entry.leaf});
            }
            tree_.node(node).resetWith(refillScratch_);
            for (unsigned i = 0; i < params_.slotsAt(level); ++i)
                appendSlot(epWriteScratch_, node, i, true);
            appendMeta(epWriteScratch_, node, true);
        }
    }

    // Assemble phases in this protocol's execution order; the swaps
    // move the staged ops into the plan's recycled slot buffers.
    plan->phases.emplaceBack(PhaseKind::LoadMeta).ops.swap(lmScratch_);
    if (mode_ == ReshuffleMode::Pre) {
        plan->phases.emplaceBack(PhaseKind::ResetRead)
            .ops.swap(erReadScratch_);
        plan->phases.emplaceBack(PhaseKind::ResetWrite)
            .ops.swap(erWriteScratch_);
        plan->phases.emplaceBack(PhaseKind::ReadPath).ops.swap(rpScratch_);
    } else {
        plan->phases.emplaceBack(PhaseKind::ReadPath).ops.swap(rpScratch_);
        plan->phases.emplaceBack(PhaseKind::ResetRead)
            .ops.swap(erReadScratch_);
        plan->phases.emplaceBack(PhaseKind::ResetWrite)
            .ops.swap(erWriteScratch_);
    }
    if (plan->hasEvict) {
        plan->phases.emplaceBack(PhaseKind::EvictRead)
            .ops.swap(epReadScratch_);
        plan->phases.emplaceBack(PhaseKind::EvictWrite)
            .ops.swap(epWriteScratch_);
    }
}

void
RingEngine::plant(BlockId block, Leaf leaf, std::uint64_t payload)
{
    palermo_assert(block < params_.numBlocks);
    palermo_assert(leaf < params_.numLeaves);
    const std::vector<NodeId> path = params_.pathNodes(leaf);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (tree_.node(*it).tryPlace({block, payload, leaf}))
            return;
    }
    stash_.put(block, leaf, payload);
}

std::uint64_t
RingEngine::payloadOf(BlockId block) const
{
    return stash_.entry(block).payload;
}

void
RingEngine::setPayload(BlockId block, std::uint64_t value)
{
    stash_.entry(block).payload = value;
}

bool
RingEngine::satisfiesInvariant(BlockId block, Leaf leaf) const
{
    if (stash_.contains(block))
        return true;
    // Walk the path from the mapped leaf; the block must be in one of
    // those buckets. Untouched buckets cannot contain it.
    for (NodeId node : params_.pathNodes(leaf)) {
        const auto meta = tree_.peek(node);
        if (meta && meta.slotOf(block) >= 0)
            return true;
    }
    return false;
}

} // namespace palermo
