/**
 * @file
 * RingEngine: ReadPath/EvictPath/EarlyReshuffle (paper Algorithm 1)
 * for a single ORAM tree, including permuted slot selection and
 * reshuffle scheduling.
 */

#include "oram/level_engine.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

RingEngine::RingEngine(const OramParams &params, Addr base,
                       ReshuffleMode mode, unsigned cached_levels,
                       std::uint64_t seed, std::size_t stash_capacity)
    : params_(params), layout_(base, params), mode_(mode),
      cachedLevels_(std::min(cached_levels, params.levels)), rng_(seed),
      tree_(params), stash_(stash_capacity)
{
    palermo_assert(params_.s >= 1, "RingORAM needs dummy slots");
}

bool
RingEngine::levelCached(NodeId node) const
{
    return params_.levelOf(node) < cachedLevels_;
}

void
RingEngine::appendSlot(std::vector<MemOp> &ops, NodeId node, unsigned slot,
                       bool write) const
{
    if (levelCached(node))
        return;
    layout_.appendSlotOps(ops, node, slot, write);
}

void
RingEngine::appendMeta(std::vector<MemOp> &ops, NodeId node,
                       bool write) const
{
    if (levelCached(node))
        return;
    ops.push_back({layout_.metaAddr(node), write});
}

void
RingEngine::resetBucket(NodeId node, std::vector<MemOp> &read_ops,
                        std::vector<MemOp> &write_ops)
{
    NodeMeta &meta = tree_.node(node);
    const unsigned level = params_.levelOf(node);
    const unsigned capacity = params_.capacityAt(level);

    // Fetch step: read the unused real blocks, padded to Z offsets so the
    // bus trace is independent of the bucket's true occupancy.
    for (unsigned i = 0; i < capacity; ++i)
        appendSlot(read_ops, node, i, false);

    // Functional: remaining valid blocks go to the stash. If the reset
    // pulls in the in-flight target, it keeps its (already-remapped)
    // destiny: ReadPath serves it from the stash afterwards.
    for (const BlockContent &content : meta.takeAllValid())
        stash_.put(content.block, content.leaf, content.payload);

    // ...then WriteBucket refills from eligible stash blocks.
    std::vector<BlockId> chosen =
        stash_.eligibleFor(node, params_, capacity, inFlight_);
    std::vector<BlockContent> refill;
    refill.reserve(chosen.size());
    for (BlockId block : chosen) {
        const StashEntry entry = stash_.take(block);
        refill.push_back({block, entry.payload, entry.leaf});
    }
    meta.resetWith(refill);

    // Write-back: the whole bucket is re-encrypted and rewritten, plus
    // its metadata line.
    for (unsigned i = 0; i < params_.slotsAt(level); ++i)
        appendSlot(write_ops, node, i, true);
    appendMeta(write_ops, node, true);
}

LevelPlan
RingEngine::access(BlockId block, Leaf leaf, Leaf new_leaf)
{
    palermo_assert(block < params_.numBlocks, "block outside tree space");
    palermo_assert(leaf < params_.numLeaves);
    palermo_assert(new_leaf < params_.numLeaves);

    LevelPlan plan;
    plan.block = block;
    plan.oldLeaf = leaf;
    plan.newLeaf = new_leaf;
    inFlight_ = block;

    const std::vector<NodeId> path = params_.pathNodes(leaf);

    // LM: load path metadata (valid bits, access counters).
    Phase lm{PhaseKind::LoadMeta, {}};
    for (NodeId node : path)
        appendMeta(lm.ops, node, false);

    // ER: EarlyReshuffle — before (Pre) or after (Post) ReadPath.
    Phase er_read{PhaseKind::ResetRead, {}};
    Phase er_write{PhaseKind::ResetWrite, {}};
    std::vector<NodeId> bypassed;
    if (mode_ == ReshuffleMode::Pre) {
        // Palermo Algorithm 2: reset at S-1 so this access's touch can
        // never exhaust the dummies, and bypass the node in ReadPath.
        for (NodeId node : path) {
            NodeMeta &meta = tree_.node(node);
            if (meta.accessed() >= params_.s - 1) {
                resetBucket(node, er_read.ops, er_write.ops);
                bypassed.push_back(node);
                ++stats_.earlyReshuffles;
            }
        }
    }

    // RP: one slot per non-bypassed path node; the real block where
    // present, a random unused dummy elsewhere.
    Phase rp{PhaseKind::ReadPath, {}};
    bool found = false;
    for (NodeId node : path) {
        if (std::find(bypassed.begin(), bypassed.end(), node)
            != bypassed.end()) {
            continue;
        }
        NodeMeta &meta = tree_.node(node);
        const int real_slot = meta.slotOf(block);
        if (real_slot >= 0) {
            const BlockContent content =
                meta.takeReal(static_cast<unsigned>(real_slot));
            stash_.put(content.block, new_leaf, content.payload);
            found = true;
            appendSlot(rp.ops, node, static_cast<unsigned>(real_slot),
                       false);
        } else {
            const int dummy_slot = meta.touchDummy(rng_);
            palermo_assert(dummy_slot >= 0,
                           "no usable dummy: reshuffle protocol violated");
            appendSlot(rp.ops, node, static_cast<unsigned>(dummy_slot),
                       false);
        }
        // NodeMetadata[NodeID].update(): persist the consumed valid bit.
        appendMeta(rp.ops, node, true);
    }

    if (!found) {
        if (stash_.contains(block)) {
            // Pending block: already resident in the stash (possibly
            // brought in by this or an earlier concurrent request, or by
            // a bypassed bucket's reset pulling it in above).
            plan.servedFromStash = true;
            stash_.remap(block, new_leaf);
            ++stats_.stashServes;
        } else {
            // First-ever touch: the block has never been written to the
            // tree; conjure it with a zero payload.
            plan.freshBlock = true;
            stash_.put(block, new_leaf, 0);
            ++stats_.freshBlocks;
        }
    } else if (stash_.contains(block)) {
        stash_.remap(block, new_leaf);
    }

    if (mode_ == ReshuffleMode::Post) {
        // Baseline Algorithm 1: EarlyReshuffle(leaf) after ReadPath.
        for (NodeId node : path) {
            NodeMeta &meta = tree_.node(node);
            if (meta.accessed() >= params_.s) {
                resetBucket(node, er_read.ops, er_write.ops);
                ++stats_.earlyReshuffles;
            }
        }
    }

    // EP: deterministic eviction every A accesses.
    ++accessCount_;
    ++stats_.accesses;
    Phase ep_read{PhaseKind::EvictRead, {}};
    Phase ep_write{PhaseKind::EvictWrite, {}};
    if (accessCount_ % params_.a == 0) {
        plan.hasEvict = true;
        ++stats_.evictions;
        const Leaf g = evictionLeaf(evictCounter_++, params_.numLeaves);
        const std::vector<NodeId> evict_path = params_.pathNodes(g);

        // Fetch all remaining valid blocks on the eviction path into the
        // stash (Z-padded reads per node)...
        for (NodeId node : evict_path) {
            NodeMeta &meta = tree_.node(node);
            const unsigned capacity =
                params_.capacityAt(params_.levelOf(node));
            for (unsigned i = 0; i < capacity; ++i)
                appendSlot(ep_read.ops, node, i, false);
            for (const BlockContent &content : meta.takeAllValid())
                stash_.put(content.block, content.leaf, content.payload);
        }
        // ...then push back leaf-to-root so blocks land as deep as their
        // leaf assignment allows.
        for (auto it = evict_path.rbegin(); it != evict_path.rend(); ++it) {
            const NodeId node = *it;
            const unsigned level = params_.levelOf(node);
            const unsigned capacity = params_.capacityAt(level);
            std::vector<BlockId> chosen =
                stash_.eligibleFor(node, params_, capacity, inFlight_);
            std::vector<BlockContent> refill;
            refill.reserve(chosen.size());
            for (BlockId b : chosen) {
                const StashEntry entry = stash_.take(b);
                refill.push_back({b, entry.payload, entry.leaf});
            }
            tree_.node(node).resetWith(refill);
            for (unsigned i = 0; i < params_.slotsAt(level); ++i)
                appendSlot(ep_write.ops, node, i, true);
            appendMeta(ep_write.ops, node, true);
        }
    }

    // Assemble phases in this protocol's execution order.
    plan.phases.push_back(std::move(lm));
    if (mode_ == ReshuffleMode::Pre) {
        plan.phases.push_back(std::move(er_read));
        plan.phases.push_back(std::move(er_write));
        plan.phases.push_back(std::move(rp));
    } else {
        plan.phases.push_back(std::move(rp));
        plan.phases.push_back(std::move(er_read));
        plan.phases.push_back(std::move(er_write));
    }
    if (plan.hasEvict) {
        plan.phases.push_back(std::move(ep_read));
        plan.phases.push_back(std::move(ep_write));
    }
    return plan;
}

void
RingEngine::plant(BlockId block, Leaf leaf, std::uint64_t payload)
{
    palermo_assert(block < params_.numBlocks);
    palermo_assert(leaf < params_.numLeaves);
    const std::vector<NodeId> path = params_.pathNodes(leaf);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (tree_.node(*it).tryPlace({block, payload, leaf}))
            return;
    }
    stash_.put(block, leaf, payload);
}

std::uint64_t
RingEngine::payloadOf(BlockId block) const
{
    return stash_.entry(block).payload;
}

void
RingEngine::setPayload(BlockId block, std::uint64_t value)
{
    stash_.entry(block).payload = value;
}

bool
RingEngine::satisfiesInvariant(BlockId block, Leaf leaf) const
{
    if (stash_.contains(block))
        return true;
    // Walk the path from the mapped leaf; the block must be in one of
    // those buckets. Untouched buckets cannot contain it.
    for (NodeId node : params_.pathNodes(leaf)) {
        const NodeMeta *meta = tree_.peek(node);
        if (meta != nullptr && meta->slotOf(block) >= 0)
            return true;
    }
    return false;
}

} // namespace palermo
