/**
 * @file
 * IrOram: IR-ORAM (Raoufi et al., HPCA'22) — path-access-type-based
 * memory intensity reduction for PathORAM.
 *
 * Two mechanisms from the paper: (1) a hardware table tracks the PosMap
 * mappings of blocks currently resident on-chip (stash or tree-top
 * cache); hits bypass the recursive PosMap ORAM accesses entirely.
 * (2) buckets in the middle band of the tree shrink, cutting per-access
 * traffic.
 */

#ifndef PALERMO_ORAM_IR_ORAM_HH
#define PALERMO_ORAM_IR_ORAM_HH

#include <array>
#include <memory>

#include "common/rng.hh"
#include "oram/hierarchy.hh"
#include "oram/path_engine.hh"
#include "oram/posmap.hh"

namespace palermo {

/** IR-ORAM running statistics. */
struct IrOramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t posmapBypasses = 0;

    double bypassRate() const
    {
        return accesses
            ? static_cast<double>(posmapBypasses) / accesses : 0.0;
    }
};

/** Hierarchical IR-ORAM. */
class IrOram : public Protocol
{
  public:
    explicit IrOram(const ProtocolConfig &config);

    const char *name() const override { return "IR-ORAM"; }

    void accessInto(BlockId pa, bool write, std::uint64_t value,
                    std::vector<RequestPlan> *out) override;

    const Stash &stashOf(unsigned level) const override;
    Stash &stashOf(unsigned level) override;
    std::uint64_t numBlocks() const override { return config_.numBlocks; }
    std::uint64_t dataLeaves() const override
    {
        return engines_[kLevelData]->params().numLeaves;
    }

    const IrOramStats &irStats() const { return irStats_; }
    PathEngine &engine(unsigned level) { return *engines_[level]; }
    bool checkBlockInvariant(BlockId pa) const;

  private:
    /** True if the block verifiably resides on-chip right now. */
    bool residentOnChip(BlockId pa) const;

    ProtocolConfig config_;
    Rng rng_;
    std::array<std::unique_ptr<PathEngine>, kHierLevels> engines_;
    std::array<std::unique_ptr<PosMap>, kHierLevels> posMaps_;
    PrefetchFilter table_; ///< Bounded recency table of tracked PAs.
    IrOramStats irStats_;
};

} // namespace palermo

#endif // PALERMO_ORAM_IR_ORAM_HH
