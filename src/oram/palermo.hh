/**
 * @file
 * PalermoOram: the Palermo protocol (paper Algorithm 2).
 *
 * Functional changes over baseline RingORAM:
 *  - EarlyReshufflePreCheck: buckets at S-1 touches reset *before*
 *    ReadPath and are bypassed in it, hoisting the tree's write phase so
 *    the next request sees a "good to read" tree as early as possible.
 *  - Pending blocks (already in the stash because an overlapped request
 *    pulled them) read a uniformly random path instead of their mapped
 *    leaf, keeping the DRAM trace independent under concurrency.
 *  - EvictPath stays serialized after ReadPath, preserving the RingORAM
 *    stash bound regardless of concurrency order.
 *
 * Unlike the serial protocols, plans are generated per hierarchy level:
 * the PE-mesh timing controller invokes beginLevel() at the instant a
 * PE's sibling dependency clears, so per-tree functional state changes
 * occur in commit (CommitHead) order while ReadPaths overlap freely.
 */

#ifndef PALERMO_ORAM_PALERMO_HH
#define PALERMO_ORAM_PALERMO_HH

#include <array>
#include <memory>

#include "common/rng.hh"
#include "oram/hierarchy.hh"
#include "oram/level_engine.hh"
#include "oram/posmap.hh"

namespace palermo {

/** Palermo protocol statistics. */
struct PalermoStats
{
    std::uint64_t requests = 0;
    std::uint64_t pendingServes = 0; ///< Random-leaf pending accesses.
    std::uint64_t llcHits = 0;       ///< Prefetch-filtered misses.
};

/** The Palermo protocol state (shared by HW and SW controllers). */
class PalermoOram
{
  public:
    explicit PalermoOram(const ProtocolConfig &config);

    const char *name() const { return "Palermo"; }

    /**
     * Prefetch admission filter (Palermo+Prefetch): true if the miss is
     * absorbed by an LLC-resident prefetched line and needs no ORAM
     * request.
     */
    bool filterHit(BlockId pa, bool write, std::uint64_t value);

    /** Per-level block ids for a data-space address. */
    std::array<BlockId, kHierLevels> decompose(BlockId pa) const;

    /**
     * Execute one level's critical section: leaf resolution (uniform
     * random if the block is pending per Algorithm 2 line 5), remap,
     * pre-check reshuffles — then the full functional access. Must be
     * called in per-tree commit order.
     */
    LevelPlan beginLevel(unsigned level, BlockId block);

    /** beginLevel() into a recycled plan (resets it first). */
    void beginLevelInto(unsigned level, BlockId block, LevelPlan *plan);

    /**
     * Complete the data access: apply the write payload / fetch the read
     * value, and mark prefetched lines LLC-resident.
     * @param pa Original protected-space line.
     * @param write Store miss?
     * @param value Store payload.
     * @return The block's (post-update) payload.
     */
    std::uint64_t finishData(BlockId pa, bool write, std::uint64_t value);

    const Stash &stashOf(unsigned level) const;
    Stash &stashOf(unsigned level);
    RingEngine &engine(unsigned level) { return *engines_[level]; }
    const RingEngine &engine(unsigned level) const
    {
        return *engines_[level];
    }
    const PosMap &posMap(unsigned level) const { return *posMaps_[level]; }
    std::uint64_t numBlocks() const { return config_.numBlocks; }
    const ProtocolConfig &config() const { return config_; }
    const PalermoStats &palermoStats() const { return stats_; }

    bool checkBlockInvariant(BlockId pa) const;

  private:
    ProtocolConfig config_;
    Rng rng_;
    std::array<std::unique_ptr<RingEngine>, kHierLevels> engines_;
    std::array<std::unique_ptr<PosMap>, kHierLevels> posMaps_;
    PrefetchFilter filter_;
    PalermoStats stats_;
};

} // namespace palermo

#endif // PALERMO_ORAM_PALERMO_HH
