/**
 * @file
 * PrORAM/LAORAM prefetching protocols: leaf-colocated superblocks,
 * Fat-Tree layout, and issue throttling (paper Fig. 4 setup).
 */

#include "oram/pr_oram.hh"

#include "common/log.hh"
#include "controller/serial_controller.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

PrOram::PrOram(const ProtocolConfig &config)
    : config_(config), rng_(mix64(config.seed) ^ 0x50524f52ull),
      filter_(config.llcResidentLines)
{
    palermo_assert(config.prefetchLen >= 1);
    const auto blocks = config.levelBlocks();
    Addr base = config.dramBase;
    for (unsigned level = 0; level < kHierLevels; ++level) {
        OramParams params =
            OramParams::path(blocks[level], config.pathZ);
        if (level == kLevelData && config.fatTree)
            applyFatTree(params);
        const unsigned cached =
            cachedLevelsFor(params, config.treetopBytes[level]);
        const std::size_t stash_cap = (level == kLevelData)
            ? config.prStashCapacity : config.stashCapacity;
        engines_[level] = std::make_unique<PathEngine>(
            params, base, cached, /*sibling_mode=*/false,
            mix64(config.seed + 307 * level), stash_cap);
        // Data-level defaults share a leaf per prefetch group — the
        // "consecutive addresses to the same leaf" mapping.
        const unsigned group =
            (level == kLevelData) ? config.prefetchLen : 1;
        posMaps_[level] = std::make_unique<PosMap>(
            blocks[level], params.numLeaves,
            mix64(config.seed + 733 * level), group);
        if (config.prefill && blocks[level] <= kPrefillLimit)
            prefillEngine(*engines_[level], *posMaps_[level]);
        base = engines_[level]->layout().endAddr();
    }
}

std::size_t
PrOram::dummyThreshold() const
{
    return engines_[kLevelData]->stash().capacity() * 3 / 4;
}

bool
PrOram::prefetchActive() const
{
    if (config_.prefetchLen <= 1)
        return false;
    if (!config_.throttle)
        return true;
    // Dynamic throttle (paper §III-B): disable grouping while the recent
    // dummy-request ratio is high.
    if (window_.size() < 16)
        return true;
    std::size_t dummies = 0;
    for (bool d : window_) {
        if (d)
            ++dummies;
    }
    return dummies * 4 < window_.size(); // < 25% dummy ratio
}

void
PrOram::recordPlan(bool dummy)
{
    window_.push_back(dummy);
    if (window_.size() > 64)
        window_.pop_front();
}

void
PrOram::accessInto(BlockId pa, bool write, std::uint64_t value,
                   std::vector<RequestPlan> *out)
{
    // Prefetched lines are LLC-resident: the miss never reaches ORAM.
    if (config_.prefetchLen > 1 && filter_.hit(pa)) {
        RequestPlan hit = recycler_.acquire(0);
        hit.pa = pa;
        hit.write = write;
        hit.llcHit = true;
        PathEngine &data = *engines_[kLevelData];
        // The line's block may still be in the stash; keep its payload
        // coherent for functional checks.
        if (write && data.inStash(pa))
            data.setPayload(pa, value);
        ++prStats_.llcHits;
        out->push_back(std::move(hit));
        return;
    }

    PathEngine &data = *engines_[kLevelData];
    PosMap &pm0 = *posMaps_[kLevelData];

    // Background evictions: drain stash pressure with dummy requests
    // before admitting the real one.
    unsigned injected = 0;
    while (data.stash().occupancy() > dummyThreshold() && injected < 8) {
        RequestPlan dummy = recycler_.acquire(1);
        dummy.dummy = true;
        const Leaf random_leaf =
            rng_.range(data.params().numLeaves);
        LevelPlan &level_plan = dummy.levels[0];
        data.dummyAccessInto(random_leaf, &level_plan);
        level_plan.level = kLevelData;
        ++prStats_.dummyRequests;
        recordPlan(true);
        out->push_back(std::move(dummy));
        ++injected;
    }

    const bool grouped = prefetchActive();
    if (!grouped && config_.prefetchLen > 1)
        ++prStats_.throttledAccesses;

    RequestPlan plan = recycler_.acquire(kHierLevels);
    plan.pa = pa;
    plan.write = write;

    const auto ids = config_.decompose(pa);
    std::size_t slot = 0;
    for (unsigned level = kHierLevels; level-- > 1;) {
        PathEngine &engine = *engines_[level];
        PosMap &pm = *posMaps_[level];
        const BlockId block = ids[level];
        const Leaf leaf = pm.get(block);
        const Leaf new_leaf = rng_.range(engine.params().numLeaves);
        pm.set(block, new_leaf);
        LevelPlan &level_plan = plan.levels[slot++];
        engine.accessInto(block, leaf, new_leaf, &level_plan);
        level_plan.level = level;
    }

    // Data level with group semantics.
    const Leaf leaf = pm0.get(pa);
    const Leaf new_leaf = rng_.range(data.params().numLeaves);
    pm0.set(pa, new_leaf);

    LevelPlan &level_plan = plan.levels[slot];
    if (grouped) {
        // Prefetch: every group sibling still sharing this leaf (the
        // throttle may have ungrouped some) is co-remapped onto the new
        // shared leaf inside the engine access, then marked resident.
        membersScratch_.clear();
        const BlockId group_base =
            (pa / config_.prefetchLen) * config_.prefetchLen;
        for (unsigned i = 0; i < config_.prefetchLen; ++i) {
            const BlockId member = group_base + i;
            if (member >= config_.numBlocks || member == pa)
                continue;
            if (pm0.get(member) != leaf)
                continue;
            membersScratch_.push_back(member);
        }
        data.accessGroupInto(pa, membersScratch_, leaf, new_leaf,
                             &level_plan);
        for (BlockId member : membersScratch_) {
            pm0.set(member, new_leaf);
            filter_.insert(member);
        }
        filter_.insert(pa);
    } else {
        data.accessInto(pa, leaf, new_leaf, &level_plan);
    }
    level_plan.level = kLevelData;

    if (write)
        data.setPayload(pa, value);
    plan.value = data.payloadOf(pa);
    ++prStats_.realRequests;
    recordPlan(false);
    out->push_back(std::move(plan));
}

const Stash &
PrOram::stashOf(unsigned level) const
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

Stash &
PrOram::stashOf(unsigned level)
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

bool
PrOram::checkBlockInvariant(BlockId pa) const
{
    return engines_[kLevelData]->satisfiesInvariant(
        pa, posMaps_[kLevelData]->get(pa));
}

namespace {

/**
 * Registry entry: PrORAM with Fat-Tree + throttle left to the caller (Fig. 10
 * setup); the only serial baseline that honors prefetchLen.
 */
ProtocolDescriptor
descriptor()
{
    ProtocolDescriptor d;
    d.kind = ProtocolKind::PrOram;
    d.displayName = "PrORAM";
    d.shortToken = "pr";
    d.aliases = {"proram"};
    d.barOrder = 3;
    d.supportsPrefetch = true;
    d.build = [](const SystemConfig &config) {
        return std::make_unique<SerialController>(
            std::make_unique<PrOram>(config.protocol),
            config.serialIssueWidth, 8, config.decryptLatency);
    };
    return d;
}

const ProtocolRegistrar registrar{descriptor()};

} // namespace

} // namespace palermo
