/**
 * @file
 * Tree geometry derivation (levels, leaves, bucket shapes) from a
 * protected-space size, via C++20 bit operations.
 */

#include "oram/oram_params.hh"

#include <bit>

#include "common/log.hh"

namespace palermo {

namespace {

// Smallest power of two >= value (value > 0).
std::uint64_t
ceilPow2(std::uint64_t value)
{
    return std::bit_ceil(value);
}

void
derive(OramParams &p)
{
    palermo_assert(p.numBlocks > 0);
    palermo_assert(p.z > 0);
    // Leaves chosen so total real capacity is ~2x the protected blocks,
    // the standard provisioning in PathORAM/RingORAM.
    const std::uint64_t min_leaves =
        std::max<std::uint64_t>(1, (p.numBlocks + p.z - 1) / p.z);
    p.numLeaves = ceilPow2(min_leaves);
    p.levels = static_cast<unsigned>(std::bit_width(p.numLeaves));
    p.numNodes = 2 * p.numLeaves - 1;
    p.check();
}

} // namespace

OramParams
OramParams::ring(std::uint64_t num_blocks, unsigned z, unsigned s,
                 unsigned a, unsigned block_bytes)
{
    OramParams p;
    p.numBlocks = num_blocks;
    p.z = z;
    p.s = s;
    p.a = a;
    p.blockBytes = block_bytes;
    derive(p);
    return p;
}

OramParams
OramParams::path(std::uint64_t num_blocks, unsigned z,
                 unsigned block_bytes)
{
    OramParams p;
    p.numBlocks = num_blocks;
    p.z = z;
    p.s = 0;
    p.a = 1;
    p.blockBytes = block_bytes;
    derive(p);
    return p;
}

NodeId
OramParams::nodeAt(unsigned level, std::uint64_t index) const
{
    palermo_assert(level < levels);
    palermo_assert(index < (std::uint64_t{1} << level));
    return ((std::uint64_t{1} << level) - 1) + index;
}

NodeId
OramParams::ancestorOfLeaf(Leaf leaf, unsigned level) const
{
    palermo_assert(leaf < numLeaves);
    palermo_assert(level < levels);
    const unsigned leaf_level = leafLevel();
    return nodeAt(level, leaf >> (leaf_level - level));
}

unsigned
OramParams::levelOf(NodeId node) const
{
    palermo_assert(node < numNodes);
    return static_cast<unsigned>(std::bit_width(node + 1)) - 1;
}

NodeId
OramParams::parentOf(NodeId node) const
{
    return node == 0 ? 0 : (node - 1) / 2;
}

bool
OramParams::onPath(NodeId node, Leaf leaf) const
{
    return ancestorOfLeaf(leaf, levelOf(node)) == node;
}

std::vector<NodeId>
OramParams::pathNodes(Leaf leaf) const
{
    std::vector<NodeId> nodes;
    pathNodesInto(leaf, &nodes);
    return nodes;
}

void
OramParams::pathNodesInto(Leaf leaf, std::vector<NodeId> *nodes) const
{
    nodes->clear();
    nodes->reserve(levels);
    for (unsigned level = 0; level < levels; ++level)
        nodes->push_back(ancestorOfLeaf(leaf, level));
}

void
OramParams::check() const
{
    palermo_assert(numLeaves > 0 && (numLeaves & (numLeaves - 1)) == 0,
                   "leaves must be a power of two");
    palermo_assert(numNodes == 2 * numLeaves - 1);
    palermo_assert(levels >= 1);
    palermo_assert(blockBytes % kBlockBytes == 0,
                   "block must be whole 64B lines");
    palermo_assert(a >= 1);
    if (!zPerLevel.empty())
        palermo_assert(zPerLevel.size() == levels);
    // Capacity sanity: the tree's real capacity must exceed numBlocks.
    std::uint64_t capacity = 0;
    for (unsigned level = 0; level < levels; ++level)
        capacity += (std::uint64_t{1} << level) * capacityAt(level);
    palermo_assert(capacity >= numBlocks,
                   "tree real capacity below protected block count");
}

Leaf
evictionLeaf(std::uint64_t counter, std::uint64_t num_leaves)
{
    palermo_assert(num_leaves > 0 &&
                   (num_leaves & (num_leaves - 1)) == 0);
    const unsigned bits =
        static_cast<unsigned>(std::bit_width(num_leaves)) - 1;
    std::uint64_t masked = counter & (num_leaves - 1);
    // Bit-reverse within `bits` bits.
    std::uint64_t reversed = 0;
    for (unsigned i = 0; i < bits; ++i) {
        reversed = (reversed << 1) | (masked & 1);
        masked >>= 1;
    }
    return reversed;
}

void
applyFatTree(OramParams &params)
{
    // LAORAM fat tree: 2Z capacity at the root tapering linearly to Z at
    // the leaves, relieving stash pressure near the root where same-leaf
    // prefetch groups contend for residency.
    params.zPerLevel.assign(params.levels, params.z);
    const unsigned leaf_level = params.leafLevel();
    for (unsigned level = 0; level < params.levels; ++level) {
        const double frac = leaf_level == 0
            ? 0.0
            : static_cast<double>(leaf_level - level) / leaf_level;
        params.zPerLevel[level] =
            params.z + static_cast<unsigned>(params.z * frac);
    }
    params.check();
}

void
applyIrTreeShrink(OramParams &params)
{
    // IR-ORAM shrinks buckets in the middle band of the tree (the top is
    // served by the tree-top cache and the leaves need full capacity).
    params.zPerLevel.assign(params.levels, params.z);
    const unsigned lo = params.levels / 3;
    const unsigned hi = 2 * params.levels / 3;
    for (unsigned level = lo; level < hi; ++level) {
        params.zPerLevel[level] =
            std::max(1u, params.z - params.z / 4);
    }
    params.check();
}

} // namespace palermo
