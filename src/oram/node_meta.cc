/**
 * @file
 * Slot valid-bit bookkeeping and the access counter driving
 * EarlyReshuffle.
 */

#include "oram/node_meta.hh"

#include "common/log.hh"

namespace palermo {

NodeMeta::NodeMeta(unsigned capacity, unsigned slots)
    : capacity_(capacity), slots_(slots)
{
    palermo_assert(slots >= capacity);
}

unsigned
NodeMeta::validRealCount() const
{
    unsigned count = 0;
    for (const auto &slot : slots_) {
        if (!slot.used && slot.content.block != kInvalid)
            ++count;
    }
    return count;
}

int
NodeMeta::slotOf(BlockId block) const
{
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].used && slots_[i].content.block == block)
            return static_cast<int>(i);
    }
    return -1;
}

BlockContent
NodeMeta::takeReal(unsigned slot)
{
    palermo_assert(slot < slots_.size());
    Slot &s = slots_[slot];
    palermo_assert(!s.used && s.content.block != kInvalid,
                   "takeReal on used or dummy slot");
    BlockContent out = s.content;
    s.content = BlockContent{};
    s.used = true;
    ++accessed_;
    return out;
}

int
NodeMeta::touchDummy(Rng &rng)
{
    // Reservoir-sample a random unused dummy slot (matches the random
    // permutation semantics of RingORAM without materializing it).
    int chosen = -1;
    unsigned seen = 0;
    for (unsigned i = 0; i < slots_.size(); ++i) {
        const Slot &s = slots_[i];
        if (s.used || s.content.block != kInvalid)
            continue;
        ++seen;
        if (rng.range(seen) == 0)
            chosen = static_cast<int>(i);
    }
    if (chosen >= 0) {
        slots_[chosen].used = true;
        ++accessed_;
    }
    return chosen;
}

std::vector<BlockContent>
NodeMeta::takeAllValid()
{
    std::vector<BlockContent> out;
    takeAllValidInto(&out);
    return out;
}

void
NodeMeta::takeAllValidInto(std::vector<BlockContent> *out)
{
    out->clear();
    for (auto &slot : slots_) {
        if (!slot.used && slot.content.block != kInvalid) {
            out->push_back(slot.content);
            slot.content = BlockContent{};
            slot.used = true;
        }
    }
}

void
NodeMeta::resetWith(const std::vector<BlockContent> &blocks)
{
    palermo_assert(blocks.size() <= capacity_,
                   "bucket overfilled on reset");
    for (auto &slot : slots_) {
        slot.content = BlockContent{};
        slot.used = false;
    }
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        palermo_assert(blocks[i].block != kInvalid);
        slots_[i].content = blocks[i];
    }
    accessed_ = 0;
}

bool
NodeMeta::tryPlace(const BlockContent &content)
{
    palermo_assert(content.block != kInvalid);
    if (validRealCount() >= capacity_)
        return false;
    for (auto &slot : slots_) {
        if (!slot.used && slot.content.block == kInvalid) {
            slot.content = content;
            return true;
        }
    }
    return false;
}

bool
NodeMeta::needsReset() const
{
    for (const auto &slot : slots_) {
        if (!slot.used && slot.content.block == kInvalid)
            return false;
    }
    return true;
}

} // namespace palermo
