/**
 * @file
 * Palermo protocol state (paper Algorithm 2): pending-aware uniform
 * leaf resolution, per-level begin/commit, and the prefetch admission
 * filter.
 */

#include "oram/palermo.hh"

#include "common/log.hh"

namespace palermo {

PalermoOram::PalermoOram(const ProtocolConfig &config)
    : config_(config), rng_(mix64(config.seed) ^ 0x50414c4dull),
      filter_(config.llcResidentLines)
{
    const auto blocks = config.levelBlocks();
    Addr base = config.dramBase;
    for (unsigned level = 0; level < kHierLevels; ++level) {
        const unsigned block_bytes = (level == kLevelData)
            ? kBlockBytes * config.prefetchLen : kBlockBytes;
        const std::uint64_t level_blocks = (level == kLevelData)
            ? std::max<std::uint64_t>(1, blocks[level] / config.prefetchLen)
            : blocks[level];
        OramParams params = OramParams::ring(
            level_blocks, config.ringZ, config.ringS, config.ringA,
            block_bytes);
        const unsigned cached =
            cachedLevelsFor(params, config.treetopBytes[level]);
        engines_[level] = std::make_unique<RingEngine>(
            params, base, ReshuffleMode::Pre, cached,
            mix64(config.seed + 131 * level), config.stashCapacity);
        posMaps_[level] = std::make_unique<PosMap>(
            level_blocks, params.numLeaves,
            mix64(config.seed + 857 * level));
        if (config.prefill && level_blocks <= kPrefillLimit)
            prefillEngine(*engines_[level], *posMaps_[level]);
        base = engines_[level]->layout().endAddr();
    }
}

bool
PalermoOram::filterHit(BlockId pa, bool write, std::uint64_t value)
{
    if (config_.prefetchLen <= 1)
        return false;
    if (!filter_.hit(pa))
        return false;
    // Keep payloads coherent: a store to a resident line whose widened
    // block is still stashed updates it in place.
    const BlockId block = pa / config_.prefetchLen;
    RingEngine &data = *engines_[kLevelData];
    if (write && data.inStash(block))
        data.setPayload(block, value);
    ++stats_.llcHits;
    return true;
}

std::array<BlockId, kHierLevels>
PalermoOram::decompose(BlockId pa) const
{
    auto ids = config_.decompose(pa);
    if (config_.prefetchLen > 1)
        ids[kLevelData] = pa / config_.prefetchLen;
    return ids;
}

LevelPlan
PalermoOram::beginLevel(unsigned level, BlockId block)
{
    LevelPlan plan;
    beginLevelInto(level, block, &plan);
    return plan;
}

void
PalermoOram::beginLevelInto(unsigned level, BlockId block, LevelPlan *plan)
{
    palermo_assert(level < kHierLevels);
    RingEngine &engine = *engines_[level];
    PosMap &pm = *posMaps_[level];

    // Algorithm 2 line 5: pending blocks (still in the stash) read a
    // fresh uniformly random path; their real content is served from the
    // stash.
    Leaf leaf;
    if (engine.inStash(block)) {
        leaf = rng_.range(engine.params().numLeaves);
        ++stats_.pendingServes;
    } else {
        leaf = pm.get(block);
    }
    const Leaf new_leaf = rng_.range(engine.params().numLeaves);
    pm.set(block, new_leaf);

    engine.accessInto(block, leaf, new_leaf, plan);
    plan->level = level;
    if (level == kLevelData)
        ++stats_.requests;
}

std::uint64_t
PalermoOram::finishData(BlockId pa, bool write, std::uint64_t value)
{
    const BlockId block = decompose(pa)[kLevelData];
    RingEngine &data = *engines_[kLevelData];
    if (write)
        data.setPayload(block, value);
    if (config_.prefetchLen > 1) {
        // One widened tree block covers prefetchLen lines; all of them
        // are now LLC-resident.
        const BlockId base = block * config_.prefetchLen;
        for (unsigned i = 0; i < config_.prefetchLen; ++i) {
            if (base + i < config_.numBlocks)
                filter_.insert(base + i);
        }
    }
    return data.payloadOf(block);
}

const Stash &
PalermoOram::stashOf(unsigned level) const
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

Stash &
PalermoOram::stashOf(unsigned level)
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

bool
PalermoOram::checkBlockInvariant(BlockId pa) const
{
    const BlockId block = decompose(pa)[kLevelData];
    const RingEngine &data = *engines_[kLevelData];
    if (data.inStash(block))
        return true;
    return data.satisfiesInvariant(block,
                                   posMaps_[kLevelData]->get(block));
}

} // namespace palermo
