/**
 * @file
 * RingOram: the baseline three-level hierarchical RingORAM protocol
 * (paper Algorithm 1 + §II-D recursion), serving one request at a time.
 */

#ifndef PALERMO_ORAM_RING_ORAM_HH
#define PALERMO_ORAM_RING_ORAM_HH

#include <array>
#include <memory>

#include "common/rng.hh"
#include "oram/hierarchy.hh"
#include "oram/level_engine.hh"
#include "oram/posmap.hh"

namespace palermo {

/** Hierarchical RingORAM (baseline). */
class RingOram : public Protocol
{
  public:
    explicit RingOram(const ProtocolConfig &config);

    const char *name() const override { return "RingORAM"; }

    void accessInto(BlockId pa, bool write, std::uint64_t value,
                    std::vector<RequestPlan> *out) override;

    const Stash &stashOf(unsigned level) const override;
    Stash &stashOf(unsigned level) override;
    std::uint64_t numBlocks() const override
    {
        return config_.numBlocks;
    }
    std::uint64_t dataLeaves() const override
    {
        return engines_[kLevelData]->params().numLeaves;
    }

    RingEngine &engine(unsigned level) { return *engines_[level]; }
    const PosMap &posMap(unsigned level) const { return *posMaps_[level]; }

    /** Invariant check for one data block (tests). */
    bool checkBlockInvariant(BlockId pa) const;

  private:
    ProtocolConfig config_;
    Rng rng_;
    std::array<std::unique_ptr<RingEngine>, kHierLevels> engines_;
    std::array<std::unique_ptr<PosMap>, kHierLevels> posMaps_;
};

} // namespace palermo

#endif // PALERMO_ORAM_RING_ORAM_HH
