/**
 * @file
 * Lazily allocated ORAM tree: bucket state materializes on first touch.
 *
 * A 16 GB protected space has 2^25 nodes; an execution only ever touches
 * the paths it accesses, so lazy allocation makes the paper's full
 * Table III geometry constructible in O(touched paths) host memory.
 * Untouched buckets are, by definition, all-dummy and fresh.
 */

#ifndef PALERMO_ORAM_TREE_STORE_HH
#define PALERMO_ORAM_TREE_STORE_HH

#include <unordered_map>

#include "common/pool.hh"
#include "common/types.hh"
#include "oram/node_meta.hh"
#include "oram/oram_params.hh"

namespace palermo {

/** Container of materialized bucket states for one ORAM tree. */
class TreeStore
{
  public:
    explicit TreeStore(const OramParams &params);

    /** Get (materializing if needed) the bucket state of a node. */
    NodeMeta &node(NodeId id);

    /** Read-only lookup without materializing; nullptr if untouched. */
    const NodeMeta *peek(NodeId id) const;

    /** True if the node has been materialized (touched). */
    bool touched(NodeId id) const { return nodes_.count(id) > 0; }

    /** Number of materialized buckets (memory footprint probe). */
    std::size_t touchedCount() const { return nodes_.size(); }

    /** Count valid real blocks across materialized buckets. */
    std::uint64_t totalValidBlocks() const;

    const OramParams &params() const { return params_; }

  private:
    /** Pooled map so bucket materialization amortizes into the arena. */
    using NodeMap = std::unordered_map<
        NodeId, NodeMeta, std::hash<NodeId>, std::equal_to<NodeId>,
        PoolAllocator<std::pair<const NodeId, NodeMeta>>>;

    OramParams params_;
    PoolResource pool_; ///< Declared before nodes_ (destruction order).
    NodeMap nodes_;
};

} // namespace palermo

#endif // PALERMO_ORAM_TREE_STORE_HH
