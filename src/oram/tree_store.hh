/**
 * @file
 * Lazily allocated ORAM tree in structure-of-arrays layout: bucket
 * state materializes on first touch.
 *
 * A 16 GB protected space has 2^25 nodes; an execution only ever touches
 * the paths it accesses, so lazy allocation makes the paper's full
 * Table III geometry constructible in O(touched paths) host memory.
 * Untouched buckets are, by definition, all-dummy and fresh.
 *
 * Layout: bucket state is split across parallel arrays rather than
 * per-node heap objects. Each materialized bucket owns a contiguous
 * run of the shared slot arrays (slotBlock_/slotPayload_/slotLeaf_),
 * and one 64-bit word per slot encodes the full slot state:
 *
 *   slotBlock_[i] <  kUsedSlot  -- valid real block with that id
 *   slotBlock_[i] == kDummySlot -- untouched dummy (kInvalid)
 *   slotBlock_[i] == kUsedSlot  -- consumed (read this epoch)
 *
 * so the per-access scans (slotOf, touchDummy, validRealCount,
 * needsReset) are branchy loops over one dense u64 array instead of
 * walks over Slot structs with separate valid flags. Node-id lookup is
 * a direct-index table for the hot top-of-tree ids (every path crosses
 * them) with a flat open-addressing map for the deep-tree tail.
 *
 * Bucket state is exposed through Bucket / ConstBucket views (plain
 * {store, index} pairs) that carry the old NodeMeta member API.
 */

#ifndef PALERMO_ORAM_TREE_STORE_HH
#define PALERMO_ORAM_TREE_STORE_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/log.hh"
#include "common/pool.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "oram/node_meta.hh"
#include "oram/oram_params.hh"

namespace palermo {

/** Container of materialized bucket states for one ORAM tree. */
class TreeStore
{
  public:
    /** Slot-state sentinel: untouched dummy. */
    static constexpr std::uint64_t kDummySlot = kInvalid;
    /** Slot-state sentinel: consumed (real or dummy) this epoch. */
    static constexpr std::uint64_t kUsedSlot = kInvalid - 1;

    /**
     * Mutable view of one materialized bucket: the NodeMeta API over
     * the store's slot arrays. Cheap to copy; valid until the store
     * is destroyed (materializing other nodes does not invalidate the
     * view's bucket index, only raw slot pointers, which the view does
     * not hold).
     */
    class Bucket
    {
      public:
        Bucket(TreeStore *store, std::uint32_t index)
            : store_(store), index_(index)
        {
        }

        unsigned
        capacity() const
        {
            return store_->levelCapacity_[store_->level_[index_]];
        }

        unsigned
        slots() const
        {
            return store_->levelSlots_[store_->level_[index_]];
        }

        /** Touches since the last reset. */
        unsigned accessed() const { return store_->accessed_[index_]; }

        /** Count of valid (un-consumed) real blocks in the bucket. */
        unsigned
        validRealCount() const
        {
            const std::uint64_t *block = slotBlocks();
            const unsigned n = slots();
            unsigned count = 0;
            for (unsigned i = 0; i < n; ++i)
                count += block[i] < kUsedSlot;
            return count;
        }

        /** Slot index of an unread real block, or -1 if absent. */
        int
        slotOf(BlockId block) const
        {
            const std::uint64_t *ids = slotBlocks();
            const unsigned n = slots();
            for (unsigned i = 0; i < n; ++i) {
                if (ids[i] == block)
                    return static_cast<int>(i);
            }
            return -1;
        }

        /**
         * Consume the real block at `slot` (path read of the target).
         * Marks the slot used, bumps the access counter.
         * @return The block content removed from the bucket.
         */
        BlockContent
        takeReal(unsigned slot)
        {
            palermo_assert(slot < slots());
            std::uint64_t *ids = slotBlocks();
            palermo_assert(ids[slot] < kUsedSlot,
                           "takeReal on used or dummy slot");
            const std::uint64_t base = store_->slotBase_[index_];
            BlockContent out{ids[slot], store_->slotPayload_[base + slot],
                             store_->slotLeaf_[base + slot]};
            ids[slot] = kUsedSlot;
            ++store_->accessed_[index_];
            return out;
        }

        /**
         * Touch an unused dummy slot chosen uniformly at random.
         * @return Chosen slot index, or -1 if no dummy remains (a
         *         protocol violation the caller must treat as fatal).
         */
        int
        touchDummy(Rng &rng)
        {
            // Reservoir-sample a random unused dummy slot (matches the
            // random permutation semantics of RingORAM without
            // materializing it). One rng.range per candidate, in slot
            // order — this exact draw sequence is byte-determinism
            // load-bearing.
            std::uint64_t *ids = slotBlocks();
            const unsigned n = slots();
            int chosen = -1;
            unsigned seen = 0;
            for (unsigned i = 0; i < n; ++i) {
                if (ids[i] != kDummySlot)
                    continue;
                ++seen;
                if (rng.range(seen) == 0)
                    chosen = static_cast<int>(i);
            }
            if (chosen >= 0) {
                ids[chosen] = kUsedSlot;
                ++store_->accessed_[index_];
            }
            return chosen;
        }

        /**
         * Remove and return all remaining valid real blocks
         * (ResetBucket's fetch step / PathORAM's whole-bucket read).
         */
        std::vector<BlockContent>
        takeAllValid()
        {
            std::vector<BlockContent> out;
            takeAllValidInto(&out);
            return out;
        }

        /** takeAllValid into a caller-owned buffer (cleared first). */
        void
        takeAllValidInto(std::vector<BlockContent> *out)
        {
            out->clear();
            std::uint64_t *ids = slotBlocks();
            const std::uint64_t base = store_->slotBase_[index_];
            const unsigned n = slots();
            for (unsigned i = 0; i < n; ++i) {
                if (ids[i] < kUsedSlot) {
                    out->push_back({ids[i], store_->slotPayload_[base + i],
                                    store_->slotLeaf_[base + i]});
                    ids[i] = kUsedSlot;
                }
            }
        }

        /**
         * Rebuild the bucket with the given real blocks (<= capacity);
         * all other slots become fresh dummies and counters clear.
         */
        void
        resetWith(const std::vector<BlockContent> &blocks)
        {
            palermo_assert(blocks.size() <= capacity(),
                           "bucket overfilled on reset");
            std::uint64_t *ids = slotBlocks();
            const std::uint64_t base = store_->slotBase_[index_];
            const unsigned n = slots();
            for (unsigned i = 0; i < n; ++i)
                ids[i] = kDummySlot;
            for (std::size_t i = 0; i < blocks.size(); ++i) {
                palermo_assert(blocks[i].block < kUsedSlot);
                ids[i] = blocks[i].block;
                store_->slotPayload_[base + i] = blocks[i].payload;
                store_->slotLeaf_[base + i] = blocks[i].leaf;
            }
            store_->accessed_[index_] = 0;
        }

        /**
         * Bulk-load: place one block into a free dummy slot if the
         * bucket still has real capacity. Used only for initial ORAM
         * construction (the protocol itself always rebuilds whole
         * buckets).
         * @return true if placed.
         */
        bool
        tryPlace(const BlockContent &content)
        {
            palermo_assert(content.block < kUsedSlot);
            if (validRealCount() >= capacity())
                return false;
            std::uint64_t *ids = slotBlocks();
            const std::uint64_t base = store_->slotBase_[index_];
            const unsigned n = slots();
            for (unsigned i = 0; i < n; ++i) {
                if (ids[i] == kDummySlot) {
                    ids[i] = content.block;
                    store_->slotPayload_[base + i] = content.payload;
                    store_->slotLeaf_[base + i] = content.leaf;
                    return true;
                }
            }
            return false;
        }

        /** True if a path read here would find no usable dummy. */
        bool
        needsReset() const
        {
            const std::uint64_t *ids = slotBlocks();
            const unsigned n = slots();
            for (unsigned i = 0; i < n; ++i) {
                if (ids[i] == kDummySlot)
                    return false;
            }
            return true;
        }

      private:
        std::uint64_t *
        slotBlocks() const
        {
            return store_->slotBlock_.data() + store_->slotBase_[index_];
        }

        TreeStore *store_;
        std::uint32_t index_;
    };

    /**
     * Read-only bucket view that may also be empty (untouched node):
     * the peek() result. Test with operator bool before use.
     */
    class ConstBucket
    {
      public:
        ConstBucket() = default;
        ConstBucket(const TreeStore *store, std::uint32_t index)
            : store_(store), index_(index)
        {
        }

        /** True if the node was materialized (bucket state exists). */
        explicit operator bool() const { return store_ != nullptr; }

        unsigned
        capacity() const
        {
            return view().capacity();
        }

        unsigned slots() const { return view().slots(); }
        unsigned accessed() const { return view().accessed(); }
        unsigned validRealCount() const { return view().validRealCount(); }
        int slotOf(BlockId block) const { return view().slotOf(block); }
        bool needsReset() const { return view().needsReset(); }

      private:
        Bucket
        view() const
        {
            palermo_assert(store_ != nullptr, "peek of untouched node");
            return Bucket(const_cast<TreeStore *>(store_), index_);
        }

        const TreeStore *store_ = nullptr;
        std::uint32_t index_ = 0;
    };

    explicit TreeStore(const OramParams &params);

    /** Get (materializing if needed) the bucket state of a node. */
    Bucket
    node(NodeId id)
    {
        std::uint32_t index = lookup(id);
        if (index == kNoBucket)
            index = materialize(id);
        return Bucket(this, index);
    }

    /** Read-only lookup without materializing; falsey if untouched. */
    ConstBucket
    peek(NodeId id) const
    {
        const std::uint32_t index = lookup(id);
        return index == kNoBucket ? ConstBucket()
                                  : ConstBucket(this, index);
    }

    /** True if the node has been materialized (touched). */
    bool touched(NodeId id) const { return lookup(id) != kNoBucket; }

    /** Number of materialized buckets (memory footprint probe). */
    std::size_t touchedCount() const { return level_.size(); }

    /** Count valid real blocks across materialized buckets. */
    std::uint64_t totalValidBlocks() const;

    const OramParams &params() const { return params_; }

  private:
    friend class Bucket;
    friend class ConstBucket;

    static constexpr std::uint32_t kNoBucket = 0xFFFFFFFFu;
    /**
     * Nodes below this id resolve through the direct-index table (the
     * top ~18 tree levels — every path crosses them, so they are the
     * hot set); deeper ids go through the flat map tail. 2^18 entries
     * caps the table at 1 MB per tree.
     */
    static constexpr std::uint64_t kDirectNodes = std::uint64_t{1} << 18;

    std::uint32_t
    lookup(NodeId id) const
    {
        palermo_assert(id < params_.numNodes, "node id out of tree");
        if (id < directLimit_)
            return direct_[id];
        const std::uint32_t *index = tail_.findValue(id);
        return index == nullptr ? kNoBucket : *index;
    }

    std::uint32_t materialize(NodeId id);

    OramParams params_;
    PoolResource pool_; ///< Declared before tail_ (destruction order).

    // Node-id -> bucket index.
    std::uint64_t directLimit_ = 0;
    std::vector<std::uint32_t> direct_;
    FlatMap<NodeId, std::uint32_t> tail_;

    // Per-level geometry caches (avoid zPerLevel branches per access).
    std::vector<std::uint32_t> levelCapacity_;
    std::vector<std::uint32_t> levelSlots_;

    // Per-bucket state, indexed by bucket index.
    std::vector<std::uint8_t> level_;
    std::vector<std::uint32_t> accessed_;
    std::vector<std::uint64_t> slotBase_; ///< First slot in slot arrays.

    // Per-slot state, shared across buckets (see file comment).
    std::vector<std::uint64_t> slotBlock_;
    std::vector<std::uint64_t> slotPayload_;
    std::vector<std::uint64_t> slotLeaf_;
};

} // namespace palermo

#endif // PALERMO_ORAM_TREE_STORE_HH
