/**
 * @file
 * Per-level space derivation, tree-top budget split, and the LLC
 * prefetch-residency filter shared by every protocol.
 */

#include "oram/hierarchy.hh"

#include "common/log.hh"

namespace palermo {

std::array<std::uint64_t, kHierLevels>
ProtocolConfig::levelBlocks() const
{
    palermo_assert(numBlocks > 0 && posFanout > 1);
    std::array<std::uint64_t, kHierLevels> blocks{};
    blocks[kLevelData] = numBlocks;
    blocks[kLevelPos1] =
        std::max<std::uint64_t>(1, (numBlocks + posFanout - 1) / posFanout);
    blocks[kLevelPos2] = std::max<std::uint64_t>(
        1, (blocks[kLevelPos1] + posFanout - 1) / posFanout);
    return blocks;
}

std::array<BlockId, kHierLevels>
ProtocolConfig::decompose(BlockId pa) const
{
    palermo_assert(pa < numBlocks, "address outside protected space");
    std::array<BlockId, kHierLevels> ids{};
    ids[kLevelData] = pa;
    ids[kLevelPos1] = pa / posFanout;
    ids[kLevelPos2] = ids[kLevelPos1] / posFanout;
    return ids;
}

unsigned
cachedLevelsFor(const OramParams &params, std::uint64_t bytes)
{
    std::uint64_t used = 0;
    unsigned levels = 0;
    for (unsigned level = 0; level < params.levels; ++level) {
        const std::uint64_t nodes = std::uint64_t{1} << level;
        const std::uint64_t level_bytes = nodes
            * (static_cast<std::uint64_t>(params.slotsAt(level))
                   * params.blockBytes
               + kBlockBytes);
        if (used + level_bytes > bytes)
            break;
        used += level_bytes;
        ++levels;
    }
    return levels;
}

PrefetchFilter::PrefetchFilter(std::size_t capacity)
    : capacity_(capacity), lru_(Lru::allocator_type(&pool_)),
      map_(&pool_)
{
    palermo_assert(capacity > 0);
}

bool
PrefetchFilter::hit(BlockId line)
{
    auto it = map_.find(line);
    if (it == map_.end())
        return false;
    // Relink in place: no node allocation, iterator stays valid.
    lru_.splice(lru_.begin(), lru_, it->second);
    return true;
}

void
PrefetchFilter::insert(BlockId line)
{
    auto it = map_.find(line);
    if (it != map_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    lru_.push_front(line);
    map_[line] = lru_.begin();
    if (map_.size() > capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
    }
}

RequestPlan
PlanRecycler::acquire(std::size_t levels)
{
    RequestPlan plan;
    if (!free_.empty()) {
        plan = std::move(free_.back());
        free_.pop_back();
    }
    plan.pa = kInvalid;
    plan.write = false;
    plan.dummy = false;
    plan.llcHit = false;
    plan.value = 0;
    plan.levels.resize(levels);
    for (LevelPlan &level : plan.levels)
        level.reset();
    return plan;
}

void
PlanRecycler::recycle(RequestPlan &&plan)
{
    if (free_.size() < kMaxFree)
        free_.push_back(std::move(plan));
}

} // namespace palermo
