/**
 * @file
 * Position-map storage with PRF defaults for never-touched entries.
 */

#include "oram/posmap.hh"

#include "common/log.hh"

namespace palermo {

PosMap::PosMap(std::uint64_t num_blocks, std::uint64_t num_leaves,
               std::uint64_t prf_key, unsigned default_group)
    : numBlocks_(num_blocks), numLeaves_(num_leaves), prf_(prf_key),
      defaultGroup_(default_group), entries_(EntryMap::allocator_type(&pool_))
{
    palermo_assert(num_blocks > 0 && num_leaves > 0);
    palermo_assert(default_group >= 1);
}

Leaf
PosMap::get(BlockId block) const
{
    palermo_assert(block < numBlocks_, "posmap block out of range");
    const auto it = entries_.find(block);
    if (it != entries_.end())
        return it->second;
    return prf_.evalMod(block / defaultGroup_, numLeaves_);
}

void
PosMap::set(BlockId block, Leaf leaf)
{
    palermo_assert(block < numBlocks_);
    palermo_assert(leaf < numLeaves_);
    entries_[block] = leaf;
}

} // namespace palermo
