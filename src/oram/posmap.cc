/**
 * @file
 * Position-map storage with PRF defaults for never-touched entries.
 */

#include "oram/posmap.hh"

#include "common/log.hh"

namespace palermo {

PosMap::PosMap(std::uint64_t num_blocks, std::uint64_t num_leaves,
               std::uint64_t prf_key, unsigned default_group)
    : numBlocks_(num_blocks), numLeaves_(num_leaves), prf_(prf_key),
      defaultGroup_(default_group), entries_(&pool_)
{
    palermo_assert(num_blocks > 0 && num_leaves > 0);
    palermo_assert(default_group >= 1);
    if (num_blocks <= kDenseLimit)
        dense_.assign(num_blocks, kInvalid);
}

} // namespace palermo
