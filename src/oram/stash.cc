/**
 * @file
 * Stash insert/evict/lookup with capacity accounting and watermark
 * tracking over the dense-vector + flat-index layout.
 */

#include "oram/stash.hh"

#include "common/log.hh"
#include "oram/oram_params.hh"

namespace palermo {

Stash::Stash(std::size_t capacity) : capacity_(capacity), index_(&pool_)
{
    palermo_assert(capacity > 0);
    items_.reserve(capacity);
    index_.reserve(capacity);
}

void
Stash::noteOccupancy()
{
    const std::size_t occ = items_.size();
    if (occ > highWatermark_)
        highWatermark_ = occ;
    if (occ > windowWatermark_)
        windowWatermark_ = occ;
    if (occ > capacity_)
        overflowed_ = true;
}

StashEntry &
Stash::entry(BlockId block)
{
    const std::uint32_t *slot = index_.findValue(block);
    palermo_assert(slot != nullptr, "block missing from stash");
    return items_[*slot].entry;
}

const StashEntry &
Stash::entry(BlockId block) const
{
    const std::uint32_t *slot = index_.findValue(block);
    palermo_assert(slot != nullptr, "block missing from stash");
    return items_[*slot].entry;
}

void
Stash::put(BlockId block, Leaf leaf, std::uint64_t payload)
{
    palermo_assert(block != kInvalid);
    auto [it, inserted] =
        index_.emplace(block, static_cast<std::uint32_t>(items_.size()));
    if (inserted)
        items_.push_back(StashItem{block, StashEntry{leaf, payload}});
    else
        items_[it->second].entry = StashEntry{leaf, payload};
    noteOccupancy();
}

void
Stash::remap(BlockId block, Leaf leaf)
{
    entry(block).leaf = leaf;
}

StashEntry
Stash::take(BlockId block)
{
    const std::uint32_t *slot = index_.findValue(block);
    palermo_assert(slot != nullptr, "take of absent block");
    const std::uint32_t idx = *slot;
    StashEntry out = items_[idx].entry;
    index_.erase(block);
    const std::uint32_t last = static_cast<std::uint32_t>(items_.size()) - 1;
    if (idx != last) {
        items_[idx] = items_[last];
        index_.at(items_[idx].block) = idx;
    }
    items_.pop_back();
    return out;
}

std::vector<BlockId>
Stash::eligibleFor(NodeId node, const OramParams &params,
                   std::size_t max_count, BlockId exclude) const
{
    std::vector<BlockId> out;
    eligibleForInto(node, params, max_count, exclude, &out);
    return out;
}

void
Stash::eligibleForInto(NodeId node, const OramParams &params,
                       std::size_t max_count, BlockId exclude,
                       std::vector<BlockId> *out) const
{
    out->clear();
    for (const StashItem &item : items_) {
        if (out->size() >= max_count)
            break;
        if (item.block == exclude)
            continue;
        if (params.onPath(node, item.entry.leaf))
            out->push_back(item.block);
    }
}

} // namespace palermo
