/**
 * @file
 * Stash insert/evict/lookup with capacity accounting and watermark
 * tracking.
 */

#include "oram/stash.hh"

#include "common/log.hh"
#include "oram/oram_params.hh"

namespace palermo {

Stash::Stash(std::size_t capacity)
    : capacity_(capacity), entries_(Map::allocator_type(&pool_))
{
    palermo_assert(capacity > 0);
}

void
Stash::noteOccupancy()
{
    const std::size_t occ = entries_.size();
    if (occ > highWatermark_)
        highWatermark_ = occ;
    if (occ > windowWatermark_)
        windowWatermark_ = occ;
    if (occ > capacity_)
        overflowed_ = true;
}

StashEntry &
Stash::entry(BlockId block)
{
    auto it = entries_.find(block);
    palermo_assert(it != entries_.end(), "block missing from stash");
    return it->second;
}

const StashEntry &
Stash::entry(BlockId block) const
{
    auto it = entries_.find(block);
    palermo_assert(it != entries_.end(), "block missing from stash");
    return it->second;
}

void
Stash::put(BlockId block, Leaf leaf, std::uint64_t payload)
{
    palermo_assert(block != kInvalid);
    entries_[block] = StashEntry{leaf, payload};
    noteOccupancy();
}

void
Stash::remap(BlockId block, Leaf leaf)
{
    entry(block).leaf = leaf;
}

StashEntry
Stash::take(BlockId block)
{
    auto it = entries_.find(block);
    palermo_assert(it != entries_.end(), "take of absent block");
    StashEntry out = it->second;
    entries_.erase(it);
    return out;
}

std::vector<BlockId>
Stash::eligibleFor(NodeId node, const OramParams &params,
                   std::size_t max_count, BlockId exclude) const
{
    std::vector<BlockId> out;
    eligibleForInto(node, params, max_count, exclude, &out);
    return out;
}

void
Stash::eligibleForInto(NodeId node, const OramParams &params,
                       std::size_t max_count, BlockId exclude,
                       std::vector<BlockId> *out) const
{
    out->clear();
    for (const auto &[block, entry] : entries_) {
        if (out->size() >= max_count)
            break;
        if (block == exclude)
            continue;
        if (params.onPath(node, entry.leaf))
            out->push_back(block);
    }
}

} // namespace palermo
