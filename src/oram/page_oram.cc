/**
 * @file
 * PageORAM sibling-set residence and DRAM-page-aware plan generation
 * (Rajat et al., MICRO'22).
 */

#include "oram/page_oram.hh"

#include "common/log.hh"
#include "controller/serial_controller.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

PageOram::PageOram(const ProtocolConfig &config)
    : config_(config), rng_(mix64(config.seed) ^ 0x50414745ull)
{
    const auto blocks = config.levelBlocks();
    Addr base = config.dramBase;
    for (unsigned level = 0; level < kHierLevels; ++level) {
        OramParams params =
            OramParams::path(blocks[level], config.pageZ);
        const unsigned cached =
            cachedLevelsFor(params, config.treetopBytes[level]);
        engines_[level] = std::make_unique<PathEngine>(
            params, base, cached, /*sibling_mode=*/true,
            mix64(config.seed + 401 * level), config.stashCapacity);
        posMaps_[level] = std::make_unique<PosMap>(
            blocks[level], params.numLeaves,
            mix64(config.seed + 691 * level));
        if (config.prefill && blocks[level] <= kPrefillLimit)
            prefillEngine(*engines_[level], *posMaps_[level]);
        base = engines_[level]->layout().endAddr();
    }
}

void
PageOram::accessInto(BlockId pa, bool write, std::uint64_t value,
                     std::vector<RequestPlan> *out)
{
    RequestPlan plan = recycler_.acquire(kHierLevels);
    plan.pa = pa;
    plan.write = write;

    const auto ids = config_.decompose(pa);
    std::size_t slot = 0;
    for (unsigned level = kHierLevels; level-- > 0;) {
        PathEngine &engine = *engines_[level];
        PosMap &pm = *posMaps_[level];
        const BlockId block = ids[level];
        const Leaf leaf = pm.get(block);
        const Leaf new_leaf = rng_.range(engine.params().numLeaves);
        pm.set(block, new_leaf);
        LevelPlan &level_plan = plan.levels[slot++];
        engine.accessInto(block, leaf, new_leaf, &level_plan);
        level_plan.level = level;
    }

    PathEngine &data = *engines_[kLevelData];
    if (write)
        data.setPayload(ids[kLevelData], value);
    plan.value = data.payloadOf(ids[kLevelData]);

    out->push_back(std::move(plan));
}

const Stash &
PageOram::stashOf(unsigned level) const
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

Stash &
PageOram::stashOf(unsigned level)
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

bool
PageOram::checkBlockInvariant(BlockId pa) const
{
    return engines_[kLevelData]->satisfiesInvariant(
        pa, posMaps_[kLevelData]->get(pa));
}

namespace {

/**
 * Registry entry: PageORAM's reduced-bucket variant.
 */
ProtocolDescriptor
descriptor()
{
    ProtocolDescriptor d;
    d.kind = ProtocolKind::PageOram;
    d.displayName = "PageORAM";
    d.shortToken = "page";
    d.aliases = {"pageoram"};
    d.barOrder = 2;
    d.build = [](const SystemConfig &config) {
        return std::make_unique<SerialController>(
            std::make_unique<PageOram>(config.protocol),
            config.serialIssueWidth, 8, config.decryptLatency);
    };
    return d;
}

const ProtocolRegistrar registrar{descriptor()};

} // namespace

} // namespace palermo
