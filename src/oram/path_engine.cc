/**
 * @file
 * PathEngine: read-every-slot path access and write-back eviction for
 * classical PathORAM (Stefanov et al.).
 */

#include "oram/path_engine.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

PathEngine::PathEngine(const OramParams &params, Addr base,
                       unsigned cached_levels, bool sibling_mode,
                       std::uint64_t seed, std::size_t stash_capacity)
    : params_(params), layout_(base, params),
      cachedLevels_(std::min(cached_levels, params.levels)),
      siblingMode_(sibling_mode), rng_(seed), tree_(params),
      stash_(stash_capacity)
{
    palermo_assert(params_.s == 0,
                   "PathORAM buckets have no distinguished dummies");
}

bool
PathEngine::levelCached(NodeId node) const
{
    return params_.levelOf(node) < cachedLevels_;
}

void
PathEngine::appendSlot(std::vector<MemOp> &ops, NodeId node, unsigned slot,
                       bool write) const
{
    if (levelCached(node))
        return;
    layout_.appendSlotOps(ops, node, slot, write);
}

void
PathEngine::appendMeta(std::vector<MemOp> &ops, NodeId node,
                       bool write) const
{
    if (levelCached(node))
        return;
    ops.push_back({layout_.metaAddr(node), write});
}

std::vector<NodeId>
PathEngine::accessSet(Leaf leaf) const
{
    std::vector<NodeId> nodes;
    accessSetInto(leaf, &nodes);
    return nodes;
}

void
PathEngine::accessSetInto(Leaf leaf, std::vector<NodeId> *nodes) const
{
    params_.pathNodesInto(leaf, nodes);
    if (siblingMode_) {
        // PageORAM: include the sibling of every non-root path node;
        // siblings are heap-adjacent, so these reads are row-buffer
        // friendly.
        const std::size_t path_len = nodes->size();
        for (std::size_t i = 1; i < path_len; ++i) {
            const NodeId node = (*nodes)[i];
            const NodeId sibling =
                (node % 2 == 1) ? node + 1 : node - 1;
            nodes->push_back(sibling);
        }
    }
}

bool
PathEngine::eligible(NodeId node, Leaf leaf) const
{
    if (params_.onPath(node, leaf))
        return true;
    if (siblingMode_ && node != 0) {
        // Sibling residence: the node's parent must lie on the path, so
        // a future access-set read of `leaf` still covers this bucket.
        return params_.onPath(params_.parentOf(node), leaf);
    }
    return false;
}

void
PathEngine::runInto(BlockId block, Leaf leaf, Leaf new_leaf, bool dummy,
                    const std::vector<BlockId> *group, LevelPlan *plan)
{
    palermo_assert(leaf < params_.numLeaves);

    plan->reset();
    plan->block = block;
    plan->oldLeaf = leaf;
    plan->newLeaf = new_leaf;
    inFlight_ = dummy ? kInvalid : block;

    accessSetInto(leaf, &nodesScratch_);
    const std::vector<NodeId> &nodes = nodesScratch_;
    const std::size_t path_len = params_.levels;
    lmScratch_.clear();
    rpScratch_.clear();
    epScratch_.clear();

    // LM: bucket headers along the access set. In sibling (PageORAM)
    // mode a DRAM page holds a bucket pair with one shared header, so
    // only the path nodes contribute metadata lines.
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (siblingMode_ && i >= path_len)
            continue;
        appendMeta(lmScratch_, nodes[i], false);
    }

    // RP: read every slot of every bucket in the access set into the
    // stash.
    for (NodeId node : nodes) {
        auto meta = tree_.node(node);
        const unsigned capacity =
            params_.capacityAt(params_.levelOf(node));
        for (unsigned i = 0; i < capacity; ++i)
            appendSlot(rpScratch_, node, i, false);
        meta.takeAllValidInto(&takeScratch_);
        for (const BlockContent &content : takeScratch_)
            stash_.put(content.block, content.leaf, content.payload);
    }

    if (!dummy) {
        if (stash_.contains(block)) {
            // Found on the path (just pulled) or pending from earlier.
            stash_.remap(block, new_leaf);
        } else {
            plan->freshBlock = true;
            stash_.put(block, new_leaf, 0);
            ++stats_.freshBlocks;
        }
    }

    // Prefetch-group co-remap (before write-back, so the eviction sees
    // the members' shared destiny and cannot plant them deep on the old
    // path): every member is either on the just-read path (now in the
    // stash) or fresh.
    if (group != nullptr) {
        for (BlockId member : *group) {
            if (member == block)
                continue;
            if (stash_.contains(member)) {
                stash_.remap(member, new_leaf);
            } else {
                stash_.put(member, new_leaf, 0);
                ++stats_.freshBlocks;
            }
        }
    }

    // EP: immediately write the same access set back, deepest first, so
    // blocks sink as far toward their leaves as eligibility allows.
    plan->hasEvict = true;
    orderScratch_.assign(nodes.begin(), nodes.end());
    std::sort(orderScratch_.begin(), orderScratch_.end(),
              [this](NodeId a, NodeId b) {
                  return params_.levelOf(a) > params_.levelOf(b);
              });
    for (NodeId node : orderScratch_) {
        const unsigned level = params_.levelOf(node);
        const unsigned capacity = params_.capacityAt(level);
        refillScratch_.clear();
        refillScratch_.reserve(capacity);
        for (const StashItem &item : stash_.items()) {
            if (refillScratch_.size() >= capacity)
                break;
            if (item.block == inFlight_)
                continue;
            if (eligible(node, item.entry.leaf))
                refillScratch_.push_back({item.block, item.entry.payload,
                                          item.entry.leaf});
        }
        for (const BlockContent &content : refillScratch_)
            stash_.take(content.block);
        tree_.node(node).resetWith(refillScratch_);
        for (unsigned i = 0; i < capacity; ++i)
            appendSlot(epScratch_, node, i, true);
        // Sibling-mode: the pair's shared header is written with the
        // on-path bucket only.
        if (!siblingMode_ || params_.onPath(node, leaf))
            appendMeta(epScratch_, node, true);
    }

    ++stats_.accesses;
    plan->phases.emplaceBack(PhaseKind::LoadMeta).ops.swap(lmScratch_);
    plan->phases.emplaceBack(PhaseKind::ReadPath).ops.swap(rpScratch_);
    plan->phases.emplaceBack(PhaseKind::EvictWrite).ops.swap(epScratch_);
}

LevelPlan
PathEngine::access(BlockId block, Leaf leaf, Leaf new_leaf)
{
    LevelPlan plan;
    accessInto(block, leaf, new_leaf, &plan);
    return plan;
}

void
PathEngine::accessInto(BlockId block, Leaf leaf, Leaf new_leaf,
                       LevelPlan *plan)
{
    palermo_assert(block < params_.numBlocks);
    palermo_assert(new_leaf < params_.numLeaves);
    runInto(block, leaf, new_leaf, false, nullptr, plan);
}

LevelPlan
PathEngine::accessGroup(BlockId block, const std::vector<BlockId> &members,
                        Leaf leaf, Leaf new_leaf)
{
    LevelPlan plan;
    accessGroupInto(block, members, leaf, new_leaf, &plan);
    return plan;
}

void
PathEngine::accessGroupInto(BlockId block,
                            const std::vector<BlockId> &members, Leaf leaf,
                            Leaf new_leaf, LevelPlan *plan)
{
    palermo_assert(block < params_.numBlocks);
    palermo_assert(new_leaf < params_.numLeaves);
    runInto(block, leaf, new_leaf, false, &members, plan);
}

LevelPlan
PathEngine::dummyAccess(Leaf leaf)
{
    LevelPlan plan;
    dummyAccessInto(leaf, &plan);
    return plan;
}

void
PathEngine::dummyAccessInto(Leaf leaf, LevelPlan *plan)
{
    runInto(kInvalid, leaf, leaf, true, nullptr, plan);
}

void
PathEngine::plant(BlockId block, Leaf leaf, std::uint64_t payload)
{
    palermo_assert(block < params_.numBlocks);
    palermo_assert(leaf < params_.numLeaves);
    const std::vector<NodeId> path = params_.pathNodes(leaf);
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
        if (tree_.node(*it).tryPlace({block, payload, leaf}))
            return;
        if (siblingMode_ && *it != 0) {
            const NodeId sibling =
                (*it % 2 == 1) ? *it + 1 : *it - 1;
            if (tree_.node(sibling).tryPlace({block, payload, leaf}))
                return;
        }
    }
    stash_.put(block, leaf, payload);
}

std::uint64_t
PathEngine::payloadOf(BlockId block) const
{
    return stash_.entry(block).payload;
}

void
PathEngine::setPayload(BlockId block, std::uint64_t value)
{
    stash_.entry(block).payload = value;
}

bool
PathEngine::satisfiesInvariant(BlockId block, Leaf leaf) const
{
    if (stash_.contains(block))
        return true;
    for (NodeId node : accessSet(leaf)) {
        const auto meta = tree_.peek(node);
        if (meta && meta.slotOf(block) >= 0)
            return true;
    }
    return false;
}

} // namespace palermo
