/**
 * @file
 * Maps ORAM tree coordinates (node, slot) and node metadata onto byte
 * addresses in the outsourced DRAM.
 *
 * Buckets are laid out in heap order, so the two children of a node are
 * adjacent — the property PageORAM exploits for DRAM row-buffer locality.
 * Node metadata lives in a separate contiguous region after the data
 * region (one 64B line per node).
 */

#ifndef PALERMO_ORAM_LAYOUT_HH
#define PALERMO_ORAM_LAYOUT_HH

#include <vector>

#include "common/types.hh"
#include "oram/oram_params.hh"

namespace palermo {

/** A single 64B DRAM operation planned by a protocol engine. */
struct MemOp
{
    Addr addr;
    bool write;
};

/** Address layout of one ORAM tree within the DRAM space. */
class TreeLayout
{
  public:
    /**
     * @param base Base byte address of this tree's region.
     * @param params Tree geometry (per-level capacities honored).
     */
    TreeLayout(Addr base, const OramParams &params);

    /** First 64B line address of a bucket slot. */
    Addr slotAddr(NodeId node, unsigned slot) const;

    /** Address of a node's metadata line. */
    Addr metaAddr(NodeId node) const;

    /** Append the (possibly multi-line) ops for one slot access. */
    void appendSlotOps(std::vector<MemOp> &ops, NodeId node, unsigned slot,
                       bool write) const;

    /** Total bytes occupied by this tree (data + metadata). */
    Addr footprintBytes() const { return footprint_; }

    /** End address (exclusive); the next tree may start here. */
    Addr endAddr() const { return base_ + footprint_; }

    Addr base() const { return base_; }

  private:
    Addr base_;
    const OramParams params_;
    /** Cumulative slot count before each level. */
    std::vector<std::uint64_t> levelSlotBase_;
    Addr metaBase_;
    Addr footprint_;
};

} // namespace palermo

#endif // PALERMO_ORAM_LAYOUT_HH
