/**
 * @file
 * Maps ORAM tree coordinates (node, slot) and node metadata onto byte
 * addresses in the outsourced DRAM.
 *
 * Buckets are laid out in heap order, so the two children of a node are
 * adjacent — the property PageORAM exploits for DRAM row-buffer locality.
 * Node metadata lives in a separate contiguous region after the data
 * region (one 64B line per node).
 *
 * Address math is table-driven: construction precomputes, per tree
 * level, the byte address of the level's first slot, the bucket stride,
 * and the first node id, so the per-op slotAddr on the path walk is a
 * shift (level-of), three table loads, and a multiply — no repeated
 * slot-count summation or zPerLevel branching.
 */

#ifndef PALERMO_ORAM_LAYOUT_HH
#define PALERMO_ORAM_LAYOUT_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "oram/oram_params.hh"

namespace palermo {

/** A single 64B DRAM operation planned by a protocol engine. */
struct MemOp
{
    Addr addr;
    bool write;
};

/** Address layout of one ORAM tree within the DRAM space. */
class TreeLayout
{
  public:
    /**
     * @param base Base byte address of this tree's region.
     * @param params Tree geometry (per-level capacities honored).
     */
    TreeLayout(Addr base, const OramParams &params);

    /** First 64B line address of a bucket slot. */
    Addr
    slotAddr(NodeId node, unsigned slot) const
    {
        const unsigned level =
            static_cast<unsigned>(std::bit_width(node + 1)) - 1;
        palermo_assert(level < levelAddrBase_.size());
        palermo_assert(slot < levelSlots_[level]);
        const std::uint64_t index_in_level =
            node - ((std::uint64_t{1} << level) - 1);
        return levelAddrBase_[level]
            + index_in_level * levelBucketBytes_[level]
            + std::uint64_t{slot} * blockBytes_;
    }

    /** Address of a node's metadata line. */
    Addr
    metaAddr(NodeId node) const
    {
        palermo_assert(node < numNodes_);
        return metaBase_ + node * kBlockBytes;
    }

    /** Append the (possibly multi-line) ops for one slot access. */
    void
    appendSlotOps(std::vector<MemOp> &ops, NodeId node, unsigned slot,
                  bool write) const
    {
        const Addr first = slotAddr(node, slot);
        for (unsigned line = 0; line < linesPerSlot_; ++line)
            ops.push_back({first + line * kBlockBytes, write});
    }

    /** Total bytes occupied by this tree (data + metadata). */
    Addr footprintBytes() const { return footprint_; }

    /** End address (exclusive); the next tree may start here. */
    Addr endAddr() const { return base_ + footprint_; }

    Addr base() const { return base_; }

  private:
    Addr base_;
    std::uint64_t numNodes_;
    unsigned blockBytes_;
    unsigned linesPerSlot_;
    // Per-level path-index tables (index = tree level).
    std::vector<Addr> levelAddrBase_;  ///< Byte addr of first slot.
    std::vector<std::uint32_t> levelSlots_; ///< Slots per bucket.
    std::vector<std::uint64_t> levelBucketBytes_; ///< Bucket stride.
    Addr metaBase_;
    Addr footprint_;
};

} // namespace palermo

#endif // PALERMO_ORAM_LAYOUT_HH
