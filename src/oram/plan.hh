/**
 * @file
 * Access plans: the bridge between functional protocol execution and the
 * timing controllers.
 *
 * A protocol engine applies an access's functional effects eagerly and
 * emits a LevelPlan — the ordered DRAM operation phases that access
 * performs on one ORAM tree. Timing controllers replay plans under their
 * own overlap rules: the serial controller plays phases strictly in
 * order; the Palermo PE mesh overlaps phases within and across requests
 * subject to the protocol's minimal dependencies.
 */

#ifndef PALERMO_ORAM_PLAN_HH
#define PALERMO_ORAM_PLAN_HH

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"
#include "oram/layout.hh"

namespace palermo {

/** Protocol step a phase belongs to (paper Fig. 5/6 notation). */
enum class PhaseKind
{
    LoadMeta,     ///< LM: fetch path node metadata.
    ResetRead,    ///< ER fetch: read Z-padded offsets of resetting nodes.
    ResetWrite,   ///< ER write-back: rewrite reset buckets (posted).
    ReadPath,     ///< RP: one slot per path node (Ring) / whole buckets
                  ///<     (Path); includes posted metadata updates.
    EvictRead,    ///< EP fetch: pull eviction-path buckets.
    EvictWrite,   ///< EP write-back: rewrite eviction path (posted).
};

/** Human-readable phase name for logs and bench output. */
const char *phaseKindName(PhaseKind kind);

/** One phase: a batch of DRAM line operations issued together. */
struct Phase
{
    PhaseKind kind;
    std::vector<MemOp> ops;

    std::size_t readCount() const;
    std::size_t writeCount() const;
};

/**
 * Fixed-capacity phase sequence that recycles its op buffers.
 *
 * The longest protocol sequence is RingORAM with an eviction: LM, ER
 * fetch, ER write-back, RP, EP fetch, EP write-back — six phases. A
 * plain vector<Phase> reallocates the phase headers and every ops
 * vector on each access; this container keeps six permanent slots and
 * clear() only rewinds the logical size, so a recycled plan stops
 * hitting the heap once its buffers have grown to the working set.
 */
class PhaseList
{
  public:
    static constexpr std::size_t kMaxPhases = 6;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Rewind to empty; slot op buffers keep their capacity. */
    void clear() { size_ = 0; }

    Phase &operator[](std::size_t i) { return slots_[i]; }
    const Phase &operator[](std::size_t i) const { return slots_[i]; }

    Phase *begin() { return slots_.data(); }
    Phase *end() { return slots_.data() + size_; }
    const Phase *begin() const { return slots_.data(); }
    const Phase *end() const { return slots_.data() + size_; }

    /** Open the next phase, reusing the slot's ops buffer. */
    Phase &emplaceBack(PhaseKind kind)
    {
        palermo_assert(size_ < kMaxPhases, "phase sequence overflow");
        Phase &slot = slots_[size_++];
        slot.kind = kind;
        slot.ops.clear();
        return slot;
    }

    /** Append a pre-built phase (test convenience). */
    void push_back(Phase phase)
    {
        emplaceBack(phase.kind).ops = std::move(phase.ops);
    }

  private:
    std::array<Phase, kMaxPhases> slots_{};
    std::size_t size_ = 0;
};

/** All phases one access performs on a single ORAM tree. */
struct LevelPlan
{
    unsigned level = 0;       ///< Hierarchy level: 0=Data, 1=Pos1, 2=Pos2.
    BlockId block = kInvalid; ///< Block accessed within this tree.
    Leaf oldLeaf = 0;         ///< Path that was read.
    Leaf newLeaf = 0;         ///< Fresh uniform remap target.
    bool servedFromStash = false; ///< Target was pending in the stash.
    bool freshBlock = false;  ///< First-ever touch of this block.
    bool hasEvict = false;    ///< EvictPath scheduled on this access.
    PhaseList phases;         ///< Protocol execution order.

    /** Reset scalars and rewind phases, keeping op-buffer capacity. */
    void reset()
    {
        level = 0;
        block = kInvalid;
        oldLeaf = 0;
        newLeaf = 0;
        servedFromStash = false;
        freshBlock = false;
        hasEvict = false;
        phases.clear();
    }

    std::size_t readOps() const;
    std::size_t writeOps() const;
    const Phase *find(PhaseKind kind) const;
};

/** A full hierarchical ORAM request (one converted LLC miss). */
struct RequestPlan
{
    BlockId pa = kInvalid;    ///< Protected-space block id.
    bool write = false;
    bool dummy = false;       ///< Background eviction, serves no miss.
    bool llcHit = false;      ///< Filtered by prefetch; no ORAM work.
    std::uint64_t value = 0;  ///< Payload returned for reads.
    /** Per-tree plans in protocol execution order (deepest PosMap first). */
    std::vector<LevelPlan> levels;

    std::size_t readOps() const;
    std::size_t writeOps() const;
};

} // namespace palermo

#endif // PALERMO_ORAM_PLAN_HH
