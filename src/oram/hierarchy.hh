/**
 * @file
 * Hierarchical ORAM plumbing shared by every protocol: configuration,
 * per-level space derivation, tree-top cache sizing, the LLC prefetch
 * residency filter, and the Protocol interface the serial timing
 * controller drives.
 *
 * All designs use three levels (paper §II-D): the Data tree, the PosMap1
 * tree holding Data leaf assignments (fan-out entries per block), and the
 * PosMap2 tree holding PosMap1 assignments; PosMap3 fits on-chip.
 */

#ifndef PALERMO_ORAM_HIERARCHY_HH
#define PALERMO_ORAM_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <list>
#include <utility>
#include <vector>

#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/types.hh"
#include "oram/oram_params.hh"
#include "oram/plan.hh"
#include "oram/posmap.hh"
#include "oram/stash.hh"

namespace palermo {

/** Number of hierarchy levels (Data, PosMap1, PosMap2). */
constexpr unsigned kHierLevels = 3;

/** Hierarchy level indices. */
constexpr unsigned kLevelData = 0;
constexpr unsigned kLevelPos1 = 1;
constexpr unsigned kLevelPos2 = 2;

/** Configuration shared by all protocol implementations. */
struct ProtocolConfig
{
    std::uint64_t numBlocks = 1ull << 18; ///< Protected 64B lines.
    unsigned posFanout = 16;      ///< PosMap entries per 64B block.

    // RingORAM / Palermo parameters (paper's chosen (16, 27, 20)).
    unsigned ringZ = 16;
    unsigned ringS = 27;
    unsigned ringA = 20;

    // PathORAM-family bucket size.
    unsigned pathZ = 4;
    unsigned pageZ = 2;           ///< PageORAM's reduced bucket size.

    unsigned prefetchLen = 1;     ///< Block-widening (Palermo) or
                                  ///< same-leaf group size (PrORAM).
    bool fatTree = false;         ///< LAORAM fat-tree capacities.
    bool throttle = true;         ///< PrORAM dynamic prefetch throttle.

    std::size_t stashCapacity = 256;
    std::size_t prStashCapacity = 1024; ///< PrORAM stash (paper Fig. 4).

    /** Tree-top cache byte budget per hierarchy level. */
    std::array<std::uint64_t, kHierLevels> treetopBytes =
        {32 * 1024, 16 * 1024, 8 * 1024};

    std::size_t llcResidentLines = 1ull << 15; ///< Prefetch filter reach.
    std::size_t irTableEntries = 4096; ///< IR-ORAM bypass table.

    std::uint64_t seed = 1;
    Addr dramBase = 0;

    /**
     * Bulk-load every tree at construction (the protected data already
     * exists, as in the paper's testbed). Skipped automatically above
     * kPrefillLimit blocks, where the lazy empty-start geometry is the
     * point (e.g. the 16 GB Table III audit).
     */
    bool prefill = true;

    /** Per-level protected block counts: data, pos1, pos2. */
    std::array<std::uint64_t, kHierLevels> levelBlocks() const;

    /** Decompose a data block id into per-level block ids. */
    std::array<BlockId, kHierLevels> decompose(BlockId pa) const;
};

/**
 * Number of top tree levels a byte budget can pin on-chip (bucket data
 * plus metadata), Phantom tree-top cache style.
 */
unsigned cachedLevelsFor(const OramParams &params, std::uint64_t bytes);

/** Largest space the constructors will bulk-load eagerly. */
constexpr std::uint64_t kPrefillLimit = 1ull << 22;

/**
 * Bulk-load an engine's tree: plant every block on its current posmap
 * path, modeling a pre-existing protected dataset.
 */
template <typename Engine>
void
prefillEngine(Engine &engine, const PosMap &posmap)
{
    for (BlockId block = 0; block < engine.params().numBlocks; ++block)
        engine.plant(block, posmap.get(block));
}

/**
 * LRU model of prefetched lines resident in the LLC: misses on resident
 * lines bypass the ORAM protocol entirely (PrORAM / Palermo+Prefetch).
 */
class PrefetchFilter
{
  public:
    explicit PrefetchFilter(std::size_t capacity);

    /** True (and refreshed) if the line is resident. */
    bool hit(BlockId line);

    /** Mark a line resident (just prefetched). */
    void insert(BlockId line);

    std::size_t size() const { return map_.size(); }

  private:
    /** Pooled LRU list + flat index so residency churn stays off the
     * heap and lookups stay off pointer chains. Recency order lives in
     * the list alone; the index is lookup-only. */
    using Lru = std::list<BlockId, PoolAllocator<BlockId>>;
    using Index = FlatMap<BlockId, Lru::iterator>;

    std::size_t capacity_;
    PoolResource pool_; ///< Declared before the containers it backs.
    Lru lru_;
    Index map_;
};

/**
 * LIFO free list of whole RequestPlans. acquire() revives the most
 * recently retired plan with its level and phase-op buffer capacities
 * intact, so a steady-state protocol loop stops allocating once its
 * plans have grown to the access working set. Owned by the Protocol
 * base; the driving controller feeds retired plans back via
 * Protocol::recyclePlan().
 */
class PlanRecycler
{
  public:
    /** Take a plan resized to `levels` LevelPlans, scalars reset. */
    RequestPlan acquire(std::size_t levels);

    /** Return a retired plan for later reuse. */
    void recycle(RequestPlan &&plan);

    std::size_t freeCount() const { return free_.size(); }

  private:
    /** Bound on hoarded plans; controllers retire promptly, so the
     *  steady-state population is the controller queue depth. */
    static constexpr std::size_t kMaxFree = 64;

    std::vector<RequestPlan> free_;
};

/** Serial-protocol interface consumed by the baseline controller. */
class Protocol
{
  public:
    virtual ~Protocol() = default;

    virtual const char *name() const = 0;

    /**
     * Convert one LLC miss into ORAM request plans, appended to *out
     * (which is not cleared). Most protocols append exactly one plan;
     * PrORAM may prepend background-eviction dummies or append a single
     * llcHit plan when the prefetch filter absorbs the miss. Plans come
     * from the recycler, so controllers should hand retired plans back
     * via recyclePlan() to keep the steady state allocation-free.
     *
     * @param pa Missing 64B line in the protected space.
     * @param write True for store misses.
     * @param value Payload for writes.
     */
    virtual void accessInto(BlockId pa, bool write, std::uint64_t value,
                            std::vector<RequestPlan> *out) = 0;

    /** accessInto() convenience wrapper (tests and benches). */
    std::vector<RequestPlan>
    access(BlockId pa, bool write, std::uint64_t value)
    {
        std::vector<RequestPlan> out;
        accessInto(pa, write, value, &out);
        return out;
    }

    /** Hand a retired plan back for buffer reuse. */
    void recyclePlan(RequestPlan &&plan)
    {
        recycler_.recycle(std::move(plan));
    }

    /** Stash of a hierarchy level (occupancy studies). */
    virtual const Stash &stashOf(unsigned level) const = 0;

    /** Mutable stash access (watermark-window resets between samples). */
    virtual Stash &stashOf(unsigned level) = 0;

    /** Blocks of the protected space (for trace sizing). */
    virtual std::uint64_t numBlocks() const = 0;

    /** Leaves of the data tree (the attacker-visible address space). */
    virtual std::uint64_t dataLeaves() const = 0;

  protected:
    PlanRecycler recycler_; ///< Plan free list shared by subclasses.
};

} // namespace palermo

#endif // PALERMO_ORAM_HIERARCHY_HH
