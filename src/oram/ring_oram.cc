/**
 * @file
 * Three-level hierarchical RingORAM protocol driver (paper
 * Algorithm 1 + §II-D recursion).
 */

#include "oram/ring_oram.hh"

#include "common/log.hh"
#include "controller/serial_controller.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

RingOram::RingOram(const ProtocolConfig &config)
    : config_(config), rng_(mix64(config.seed) ^ 0x52494e47ull)
{
    const auto blocks = config.levelBlocks();
    Addr base = config.dramBase;
    for (unsigned level = 0; level < kHierLevels; ++level) {
        // The Data tree may use widened blocks under Palermo-style
        // prefetch; PosMap trees always use 64B blocks.
        const unsigned block_bytes = (level == kLevelData)
            ? kBlockBytes * config.prefetchLen : kBlockBytes;
        const std::uint64_t level_blocks = (level == kLevelData)
            ? std::max<std::uint64_t>(1, blocks[level] / config.prefetchLen)
            : blocks[level];
        OramParams params = OramParams::ring(
            level_blocks, config.ringZ, config.ringS, config.ringA,
            block_bytes);
        const unsigned cached =
            cachedLevelsFor(params, config.treetopBytes[level]);
        engines_[level] = std::make_unique<RingEngine>(
            params, base, ReshuffleMode::Post, cached,
            mix64(config.seed + 101 * level), config.stashCapacity);
        posMaps_[level] = std::make_unique<PosMap>(
            level_blocks, params.numLeaves,
            mix64(config.seed + 977 * level));
        if (config.prefill && level_blocks <= kPrefillLimit)
            prefillEngine(*engines_[level], *posMaps_[level]);
        base = engines_[level]->layout().endAddr();
    }
}

void
RingOram::accessInto(BlockId pa, bool write, std::uint64_t value,
                     std::vector<RequestPlan> *out)
{
    RequestPlan plan = recycler_.acquire(kHierLevels);
    plan.pa = pa;
    plan.write = write;

    auto ids = config_.decompose(pa);
    if (config_.prefetchLen > 1)
        ids[kLevelData] = pa / config_.prefetchLen;

    // Execution order: deepest PosMap first (Pos2, Pos1, Data).
    std::size_t slot = 0;
    for (unsigned level = kHierLevels; level-- > 0;) {
        RingEngine &engine = *engines_[level];
        PosMap &pm = *posMaps_[level];
        const BlockId block = ids[level];
        const Leaf leaf = pm.get(block);
        const Leaf new_leaf = rng_.range(engine.params().numLeaves);
        pm.set(block, new_leaf);
        LevelPlan &level_plan = plan.levels[slot++];
        engine.accessInto(block, leaf, new_leaf, &level_plan);
        level_plan.level = level;
    }

    RingEngine &data = *engines_[kLevelData];
    if (write)
        data.setPayload(ids[kLevelData], value);
    plan.value = data.payloadOf(ids[kLevelData]);

    out->push_back(std::move(plan));
}

const Stash &
RingOram::stashOf(unsigned level) const
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

Stash &
RingOram::stashOf(unsigned level)
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

bool
RingOram::checkBlockInvariant(BlockId pa) const
{
    BlockId block = pa;
    if (config_.prefetchLen > 1)
        block = pa / config_.prefetchLen;
    return engines_[kLevelData]->satisfiesInvariant(
        block, posMaps_[kLevelData]->get(block));
}

namespace {

/**
 * Registry entry: RingORAM under the serial baseline controller.
 */
ProtocolDescriptor
descriptor()
{
    ProtocolDescriptor d;
    d.kind = ProtocolKind::RingOram;
    d.displayName = "RingORAM";
    d.shortToken = "ring";
    d.aliases = {"ringoram"};
    d.barOrder = 1;
    d.build = [](const SystemConfig &config) {
        return std::make_unique<SerialController>(
            std::make_unique<RingOram>(config.protocol),
            config.serialIssueWidth, 8, config.decryptLatency);
    };
    return d;
}

const ProtocolRegistrar registrar{descriptor()};

} // namespace

} // namespace palermo
