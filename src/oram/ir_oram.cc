/**
 * @file
 * IR-ORAM path-access-type classification and the resulting
 * reduced-intensity plans (Raoufi et al., HPCA'22).
 */

#include "oram/ir_oram.hh"

#include "common/log.hh"
#include "controller/serial_controller.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

IrOram::IrOram(const ProtocolConfig &config)
    : config_(config), rng_(mix64(config.seed) ^ 0x49524f52ull),
      table_(config.irTableEntries)
{
    const auto blocks = config.levelBlocks();
    Addr base = config.dramBase;
    for (unsigned level = 0; level < kHierLevels; ++level) {
        OramParams params =
            OramParams::path(blocks[level], config.pathZ);
        if (level == kLevelData)
            applyIrTreeShrink(params);
        const unsigned cached =
            cachedLevelsFor(params, config.treetopBytes[level]);
        engines_[level] = std::make_unique<PathEngine>(
            params, base, cached, /*sibling_mode=*/false,
            mix64(config.seed + 503 * level), config.stashCapacity);
        posMaps_[level] = std::make_unique<PosMap>(
            blocks[level], params.numLeaves,
            mix64(config.seed + 599 * level));
        if (config.prefill && blocks[level] <= kPrefillLimit)
            prefillEngine(*engines_[level], *posMaps_[level]);
        base = engines_[level]->layout().endAddr();
    }
}

bool
IrOram::residentOnChip(BlockId pa) const
{
    const PathEngine &data = *engines_[kLevelData];
    if (data.inStash(pa))
        return true;
    // Check whether the block sits in a tree-top-cached bucket of its
    // current path (exact residency, as tracked by IR-ORAM's hardware).
    const Leaf leaf = posMaps_[kLevelData]->get(pa);
    const OramParams &params = data.params();
    const std::vector<NodeId> path = params.pathNodes(leaf);
    for (NodeId node : path) {
        if (params.levelOf(node) >= data.cachedLevels())
            break;
        const auto meta = data.tree().peek(node);
        if (meta && meta.slotOf(pa) >= 0)
            return true;
    }
    return false;
}

void
IrOram::accessInto(BlockId pa, bool write, std::uint64_t value,
                   std::vector<RequestPlan> *out)
{
    ++irStats_.accesses;

    // PosMap bypass: if the tracked table covers this PA and the block
    // verifiably lives on-chip, the leaf is known without touching the
    // recursive PosMap ORAMs.
    const bool bypass = table_.hit(pa) && residentOnChip(pa);
    const auto ids = config_.decompose(pa);

    RequestPlan plan = recycler_.acquire(bypass ? 1 : kHierLevels);
    plan.pa = pa;
    plan.write = write;

    std::size_t slot = 0;
    if (!bypass) {
        for (unsigned level = kHierLevels; level-- > 1;) {
            PathEngine &engine = *engines_[level];
            PosMap &pm = *posMaps_[level];
            const BlockId block = ids[level];
            const Leaf leaf = pm.get(block);
            const Leaf new_leaf = rng_.range(engine.params().numLeaves);
            pm.set(block, new_leaf);
            LevelPlan &level_plan = plan.levels[slot++];
            engine.accessInto(block, leaf, new_leaf, &level_plan);
            level_plan.level = level;
        }
    } else {
        ++irStats_.posmapBypasses;
    }

    PathEngine &data = *engines_[kLevelData];
    PosMap &pm0 = *posMaps_[kLevelData];
    const Leaf leaf = pm0.get(pa);
    const Leaf new_leaf = rng_.range(data.params().numLeaves);
    pm0.set(pa, new_leaf);
    LevelPlan &level_plan = plan.levels[slot];
    data.accessInto(pa, leaf, new_leaf, &level_plan);
    level_plan.level = kLevelData;

    table_.insert(pa);

    if (write)
        data.setPayload(pa, value);
    plan.value = data.payloadOf(pa);

    out->push_back(std::move(plan));
}

const Stash &
IrOram::stashOf(unsigned level) const
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

Stash &
IrOram::stashOf(unsigned level)
{
    palermo_assert(level < kHierLevels);
    return engines_[level]->stash();
}

bool
IrOram::checkBlockInvariant(BlockId pa) const
{
    return engines_[kLevelData]->satisfiesInvariant(
        pa, posMaps_[kLevelData]->get(pa));
}

namespace {

/**
 * Registry entry: IR-ORAM's tree-shrink + bypass-table design.
 */
ProtocolDescriptor
descriptor()
{
    ProtocolDescriptor d;
    d.kind = ProtocolKind::IrOram;
    d.displayName = "IR-ORAM";
    d.shortToken = "ir";
    d.aliases = {"iroram"};
    d.barOrder = 4;
    d.build = [](const SystemConfig &config) {
        return std::make_unique<SerialController>(
            std::make_unique<IrOram>(config.protocol),
            config.serialIssueWidth, 8, config.decryptLatency);
    };
    return d;
}

const ProtocolRegistrar registrar{descriptor()};

} // namespace

} // namespace palermo
