/**
 * @file
 * PathOram: the classical three-level hierarchical PathORAM protocol
 * (Stefanov et al.), the normalization baseline of every Fig. 10 bar.
 */

#ifndef PALERMO_ORAM_PATH_ORAM_HH
#define PALERMO_ORAM_PATH_ORAM_HH

#include <array>
#include <memory>

#include "common/rng.hh"
#include "oram/hierarchy.hh"
#include "oram/path_engine.hh"
#include "oram/posmap.hh"

namespace palermo {

/** Hierarchical PathORAM (baseline). */
class PathOram : public Protocol
{
  public:
    explicit PathOram(const ProtocolConfig &config);

    const char *name() const override { return "PathORAM"; }

    void accessInto(BlockId pa, bool write, std::uint64_t value,
                    std::vector<RequestPlan> *out) override;

    const Stash &stashOf(unsigned level) const override;
    Stash &stashOf(unsigned level) override;
    std::uint64_t numBlocks() const override { return config_.numBlocks; }
    std::uint64_t dataLeaves() const override
    {
        return engines_[kLevelData]->params().numLeaves;
    }

    PathEngine &engine(unsigned level) { return *engines_[level]; }
    const PosMap &posMap(unsigned level) const { return *posMaps_[level]; }

    bool checkBlockInvariant(BlockId pa) const;

  private:
    ProtocolConfig config_;
    Rng rng_;
    std::array<std::unique_ptr<PathEngine>, kHierLevels> engines_;
    std::array<std::unique_ptr<PosMap>, kHierLevels> posMaps_;
};

} // namespace palermo

#endif // PALERMO_ORAM_PATH_ORAM_HH
