/**
 * @file
 * Position map: block -> leaf assignment for one ORAM tree.
 *
 * Entries default to PRF(key, block) until first remapped, which is
 * equivalent to the uniform random initialization assumed by the
 * PathORAM proof while keeping host memory proportional to the touched
 * working set. The hierarchical designs layer three of these (the two
 * lower ones are content-stored inside PosMap ORAM blocks; this class
 * tracks the authoritative mapping the simulator validates against).
 *
 * Storage is hybrid: trees up to kDenseLimit blocks use a direct leaf
 * array (one load per get — the position map is consulted on every
 * access of every tree in the hierarchy), with kInvalid marking
 * never-touched entries; larger trees fall back to a flat
 * open-addressing map so host memory stays proportional to the touched
 * working set.
 */

#ifndef PALERMO_ORAM_POSMAP_HH
#define PALERMO_ORAM_POSMAP_HH

#include <vector>

#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/types.hh"
#include "crypto/prf.hh"

namespace palermo {

/** Lazy position map with PRF-derived defaults. */
class PosMap
{
  public:
    /**
     * @param num_blocks Protected block count of the tree.
     * @param num_leaves Leaf count of the tree.
     * @param prf_key Key for default-entry derivation.
     * @param default_group Blocks per shared default leaf: 1 for the
     *        standard independent-uniform initialization; the prefetch
     *        group size for PrORAM/LAORAM, whose protocol forces
     *        consecutive blocks onto one leaf.
     */
    PosMap(std::uint64_t num_blocks, std::uint64_t num_leaves,
           std::uint64_t prf_key, unsigned default_group = 1);

    /** Current leaf of a block. */
    Leaf
    get(BlockId block) const
    {
        palermo_assert(block < numBlocks_, "posmap block out of range");
        if (!dense_.empty()) {
            const Leaf leaf = dense_[block];
            if (leaf != kInvalid)
                return leaf;
        } else if (const Leaf *leaf = entries_.findValue(block)) {
            return *leaf;
        }
        return prf_.evalMod(block / defaultGroup_, numLeaves_);
    }

    /** Remap a block to a new leaf. */
    void
    set(BlockId block, Leaf leaf)
    {
        palermo_assert(block < numBlocks_);
        palermo_assert(leaf < numLeaves_);
        if (!dense_.empty()) {
            denseTouched_ += dense_[block] == kInvalid;
            dense_[block] = leaf;
        } else {
            entries_.insert_or_assign(block, leaf);
        }
    }

    std::uint64_t numBlocks() const { return numBlocks_; }
    std::uint64_t numLeaves() const { return numLeaves_; }

    /** Number of explicitly stored (touched) entries. */
    std::size_t
    touchedCount() const
    {
        return dense_.empty() ? entries_.size() : denseTouched_;
    }

  private:
    /** Largest tree stored densely: 4M blocks = a 32 MB leaf array. */
    static constexpr std::uint64_t kDenseLimit = std::uint64_t{1} << 22;

    std::uint64_t numBlocks_;
    std::uint64_t numLeaves_;
    Prf prf_;
    unsigned defaultGroup_;
    PoolResource pool_; ///< Declared before entries_ (destruction order).
    /** Direct storage (small trees); kInvalid = untouched. */
    std::vector<Leaf> dense_;
    std::size_t denseTouched_ = 0;
    /** Flat-map fallback for beyond-kDenseLimit trees. */
    FlatMap<BlockId, Leaf> entries_;
};

} // namespace palermo

#endif // PALERMO_ORAM_POSMAP_HH
