/**
 * @file
 * Position map: block -> leaf assignment for one ORAM tree.
 *
 * Entries default to PRF(key, block) until first remapped, which is
 * equivalent to the uniform random initialization assumed by the
 * PathORAM proof while keeping host memory proportional to the touched
 * working set. The hierarchical designs layer three of these (the two
 * lower ones are content-stored inside PosMap ORAM blocks; this class
 * tracks the authoritative mapping the simulator validates against).
 */

#ifndef PALERMO_ORAM_POSMAP_HH
#define PALERMO_ORAM_POSMAP_HH

#include <unordered_map>

#include "common/pool.hh"
#include "common/types.hh"
#include "crypto/prf.hh"

namespace palermo {

/** Lazy position map with PRF-derived defaults. */
class PosMap
{
  public:
    /**
     * @param num_blocks Protected block count of the tree.
     * @param num_leaves Leaf count of the tree.
     * @param prf_key Key for default-entry derivation.
     * @param default_group Blocks per shared default leaf: 1 for the
     *        standard independent-uniform initialization; the prefetch
     *        group size for PrORAM/LAORAM, whose protocol forces
     *        consecutive blocks onto one leaf.
     */
    PosMap(std::uint64_t num_blocks, std::uint64_t num_leaves,
           std::uint64_t prf_key, unsigned default_group = 1);

    /** Current leaf of a block. */
    Leaf get(BlockId block) const;

    /** Remap a block to a new leaf. */
    void set(BlockId block, Leaf leaf);

    std::uint64_t numBlocks() const { return numBlocks_; }
    std::uint64_t numLeaves() const { return numLeaves_; }

    /** Number of explicitly stored (touched) entries. */
    std::size_t touchedCount() const { return entries_.size(); }

  private:
    /** Pooled map so first-touch inserts amortize into the arena. */
    using EntryMap = std::unordered_map<
        BlockId, Leaf, std::hash<BlockId>, std::equal_to<BlockId>,
        PoolAllocator<std::pair<const BlockId, Leaf>>>;

    std::uint64_t numBlocks_;
    std::uint64_t numLeaves_;
    Prf prf_;
    unsigned defaultGroup_;
    PoolResource pool_; ///< Declared before entries_ (destruction order).
    EntryMap entries_;
};

} // namespace palermo

#endif // PALERMO_ORAM_POSMAP_HH
