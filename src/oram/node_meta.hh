/**
 * @file
 * The block-content record exchanged between buckets and the stash.
 *
 * Per-bucket functional state (slot valid bits, the access counter that
 * drives RingORAM's EarlyReshuffle) lives in TreeStore's
 * structure-of-arrays slot storage; oram/tree_store.hh documents the
 * slot-state encoding and exposes the bucket API.
 */

#ifndef PALERMO_ORAM_NODE_META_HH
#define PALERMO_ORAM_NODE_META_HH

#include <cstdint>

#include "common/types.hh"

namespace palermo {

/** A real block held in a bucket slot or the stash. */
struct BlockContent
{
    BlockId block = kInvalid;
    std::uint64_t payload = 0;
    /**
     * The block's mapped leaf at the time it was written into the tree.
     * A block in a bucket is never remapped in place (remap happens on
     * access, which moves it to the stash), so storing the leaf beside
     * the payload is safe and lets eviction place blocks without another
     * position-map consultation.
     */
    Leaf leaf = 0;
};

} // namespace palermo

#endif // PALERMO_ORAM_NODE_META_HH
