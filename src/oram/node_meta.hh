/**
 * @file
 * Per-bucket functional state: slot contents, valid bits, and the access
 * counter that drives RingORAM's EarlyReshuffle.
 *
 * RingORAM semantics: a bucket holds `capacity` real-capable slots plus
 * `S` dummies, randomly permuted. Every path read touches exactly one
 * slot (the real block if present, else an untouched dummy) and marks it
 * used; after S touches the bucket must be reset before further reads.
 */

#ifndef PALERMO_ORAM_NODE_META_HH
#define PALERMO_ORAM_NODE_META_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace palermo {

/** A real block held in a bucket slot or the stash. */
struct BlockContent
{
    BlockId block = kInvalid;
    std::uint64_t payload = 0;
    /**
     * The block's mapped leaf at the time it was written into the tree.
     * A block in a bucket is never remapped in place (remap happens on
     * access, which moves it to the stash), so storing the leaf beside
     * the payload is safe and lets eviction place blocks without another
     * position-map consultation.
     */
    Leaf leaf = 0;
};

/** Functional state of one ORAM tree bucket. */
class NodeMeta
{
  public:
    /**
     * @param capacity Real-capable slot count (Z at this level).
     * @param slots Total slot count (capacity + S).
     */
    NodeMeta(unsigned capacity, unsigned slots);

    unsigned capacity() const { return capacity_; }
    unsigned slots() const { return static_cast<unsigned>(slots_.size()); }

    /** Touches since the last reset. */
    unsigned accessed() const { return accessed_; }

    /** Count of valid (un-consumed) real blocks in the bucket. */
    unsigned validRealCount() const;

    /** Slot index of an unread real block, or -1 if absent. */
    int slotOf(BlockId block) const;

    /**
     * Consume the real block at `slot` (path read of the target).
     * Marks the slot used, bumps the access counter.
     * @return The block content removed from the bucket.
     */
    BlockContent takeReal(unsigned slot);

    /**
     * Touch an unused dummy slot chosen uniformly at random.
     * @return Chosen slot index, or -1 if no dummy remains (a protocol
     *         violation the caller must treat as fatal).
     */
    int touchDummy(Rng &rng);

    /**
     * Remove and return all remaining valid real blocks (ResetBucket's
     * fetch step / PathORAM's whole-bucket read).
     */
    std::vector<BlockContent> takeAllValid();

    /** takeAllValid into a caller-owned buffer (cleared first). */
    void takeAllValidInto(std::vector<BlockContent> *out);

    /**
     * Rebuild the bucket with the given real blocks (<= capacity); all
     * other slots become fresh dummies and counters clear.
     */
    void resetWith(const std::vector<BlockContent> &blocks);

    /**
     * Bulk-load: place one block into a free dummy slot if the bucket
     * still has real capacity. Used only for initial ORAM construction
     * (the protocol itself always rebuilds whole buckets).
     * @return true if placed.
     */
    bool tryPlace(const BlockContent &content);

    /** True if a path read of this bucket would find no usable dummy. */
    bool needsReset() const;

  private:
    struct Slot
    {
        BlockContent content;  ///< block == kInvalid for dummies.
        bool used = false;
    };

    unsigned capacity_;
    std::vector<Slot> slots_;
    unsigned accessed_ = 0;
};

} // namespace palermo

#endif // PALERMO_ORAM_NODE_META_HH
