/**
 * @file
 * PathEngine: the PathORAM protocol machinery for a single ORAM tree.
 *
 * PathORAM (Stefanov et al.) reads every block of every bucket on the
 * root-to-leaf path of the target's mapped leaf into the stash, serves
 * the request, remaps the block, and immediately writes the same path
 * back with a greedy deepest-first eviction. Buckets have Z real slots
 * and no distinguished dummies; unfilled slots are encrypted padding.
 *
 * The sibling mode implements PageORAM's extension: the residence set of
 * a block includes the siblings of its path buckets (which are adjacent
 * in the heap layout and thus in the same DRAM page), enabling smaller Z
 * and high row-buffer locality.
 */

#ifndef PALERMO_ORAM_PATH_ENGINE_HH
#define PALERMO_ORAM_PATH_ENGINE_HH

#include <cstdint>

#include "common/rng.hh"
#include "common/types.hh"
#include "oram/layout.hh"
#include "oram/plan.hh"
#include "oram/stash.hh"
#include "oram/tree_store.hh"

namespace palermo {

/** Cumulative PathEngine statistics. */
struct PathEngineStats
{
    std::uint64_t accesses = 0;
    std::uint64_t freshBlocks = 0;
    std::uint64_t stashServes = 0;
};

/** PathORAM protocol engine for one tree. */
class PathEngine
{
  public:
    /**
     * @param params Tree geometry (s must be 0 for PathORAM buckets).
     * @param base DRAM base address of the tree region.
     * @param cached_levels Levels [0, cached_levels) hit the tree-top
     *        cache and emit no DRAM ops.
     * @param sibling_mode PageORAM residence extension.
     * @param seed Engine RNG seed.
     * @param stash_capacity Stash bound for watermark accounting.
     */
    PathEngine(const OramParams &params, Addr base, unsigned cached_levels,
               bool sibling_mode, std::uint64_t seed,
               std::size_t stash_capacity = 256);

    /**
     * Execute one PathORAM access functionally and emit its plan.
     * @param block Target block within this tree's space.
     * @param leaf Mapped leaf to read (caller-resolved).
     * @param new_leaf Fresh uniform remap target.
     */
    LevelPlan access(BlockId block, Leaf leaf, Leaf new_leaf);

    /** access() into a recycled plan (resets it first). */
    void accessInto(BlockId block, Leaf leaf, Leaf new_leaf,
                    LevelPlan *plan);

    /**
     * PrORAM group access: like access(), but every listed group member
     * found on the path (or conjured on first touch) is co-remapped to
     * the shared new leaf *before* the write-back eviction — the forced
     * same-leaf mapping whose stash pressure §III-B analyzes. Members
     * must currently share `leaf` (the caller filters).
     */
    LevelPlan accessGroup(BlockId block,
                          const std::vector<BlockId> &members, Leaf leaf,
                          Leaf new_leaf);

    /** accessGroup() into a recycled plan (resets it first). */
    void accessGroupInto(BlockId block, const std::vector<BlockId> &members,
                         Leaf leaf, Leaf new_leaf, LevelPlan *plan);

    /**
     * Execute a dummy access: read and evict a path without serving any
     * block (PrORAM background eviction to relieve stash pressure).
     * @param leaf Random path to exercise.
     */
    LevelPlan dummyAccess(Leaf leaf);

    /** dummyAccess() into a recycled plan (resets it first). */
    void dummyAccessInto(Leaf leaf, LevelPlan *plan);

    /**
     * Bulk-load one block during initial ORAM construction: place it as
     * deep as possible within its residence set (stash as last resort).
     */
    void plant(BlockId block, Leaf leaf, std::uint64_t payload = 0);

    std::uint64_t payloadOf(BlockId block) const;
    void setPayload(BlockId block, std::uint64_t value);
    bool inStash(BlockId block) const { return stash_.contains(block); }

    Stash &stash() { return stash_; }
    const Stash &stash() const { return stash_; }
    TreeStore &tree() { return tree_; }
    const TreeStore &tree() const { return tree_; }
    const TreeLayout &layout() const { return layout_; }
    const OramParams &params() const { return params_; }
    unsigned cachedLevels() const { return cachedLevels_; }
    const PathEngineStats &stats() const { return stats_; }

    /**
     * Verify the residence invariant: the block is in the stash or in a
     * bucket of its residence set (path, plus siblings in sibling mode).
     */
    bool satisfiesInvariant(BlockId block, Leaf leaf) const;

  private:
    /** Bucket set an access touches: path or path + siblings. */
    std::vector<NodeId> accessSet(Leaf leaf) const;

    /** accessSet into a caller-owned buffer (cleared first). */
    void accessSetInto(Leaf leaf, std::vector<NodeId> *nodes) const;

    /** True if `node` may hold a block mapped to `leaf`. */
    bool eligible(NodeId node, Leaf leaf) const;

    /** Core read-path + evict-path shared by real and dummy accesses. */
    void runInto(BlockId block, Leaf leaf, Leaf new_leaf, bool dummy,
                 const std::vector<BlockId> *group, LevelPlan *plan);

    void appendSlot(std::vector<MemOp> &ops, NodeId node, unsigned slot,
                    bool write) const;
    void appendMeta(std::vector<MemOp> &ops, NodeId node, bool write) const;
    bool levelCached(NodeId node) const;

    OramParams params_;
    TreeLayout layout_;
    unsigned cachedLevels_;
    bool siblingMode_;
    Rng rng_;
    TreeStore tree_;
    Stash stash_;
    BlockId inFlight_ = kInvalid;
    PathEngineStats stats_;

    // Per-access scratch buffers, reused across accesses so the steady
    // state allocates nothing. Phase op vectors are filled here and then
    // swapped into the plan's recycled slots at assembly; the swap hands
    // back the slot's previous buffer, so capacity ping-pongs between
    // the engine and the plans instead of returning to the heap.
    std::vector<NodeId> nodesScratch_;   ///< Access set.
    std::vector<NodeId> orderScratch_;   ///< Deepest-first eviction order.
    std::vector<MemOp> lmScratch_;       ///< LM phase ops.
    std::vector<MemOp> rpScratch_;       ///< RP phase ops.
    std::vector<MemOp> epScratch_;       ///< EP write-back ops.
    std::vector<BlockContent> takeScratch_;   ///< takeAllValid staging.
    std::vector<BlockContent> refillScratch_; ///< Bucket refill staging.
};

} // namespace palermo

#endif // PALERMO_ORAM_PATH_ENGINE_HH
