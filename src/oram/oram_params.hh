/**
 * @file
 * ORAM tree geometry and protocol parameters.
 *
 * One OramParams instance describes a single ORAM tree (the hierarchical
 * designs instantiate three: Data, PosMap1, PosMap2). RingORAM buckets
 * hold up to Z real blocks plus S dummies; PathORAM uses S = 0 and reads
 * whole buckets. Per-level capacity overrides support LAORAM's fat tree
 * and IR-ORAM's reduced mid-tree buckets.
 */

#ifndef PALERMO_ORAM_ORAM_PARAMS_HH
#define PALERMO_ORAM_ORAM_PARAMS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace palermo {

/** Geometry and protocol constants of one ORAM tree. */
struct OramParams
{
    std::uint64_t numBlocks = 0;  ///< Real blocks protected by this tree.
    unsigned z = 16;              ///< Real-capable slots per bucket.
    unsigned s = 27;              ///< Dummy slots per bucket (Ring only).
    unsigned a = 20;              ///< EvictPath every A accesses (Ring).
    unsigned blockBytes = kBlockBytes; ///< Payload bytes per slot.

    // Derived geometry.
    unsigned levels = 0;          ///< Tree levels, root..leaf = levels.
    std::uint64_t numLeaves = 0;  ///< 2^(levels-1).
    std::uint64_t numNodes = 0;   ///< 2^levels - 1.

    /** Optional per-level real capacity override (fat tree / IR-ORAM). */
    std::vector<unsigned> zPerLevel;

    /** RingORAM-style parameters (Z, S, A). */
    static OramParams ring(std::uint64_t num_blocks, unsigned z,
                           unsigned s, unsigned a,
                           unsigned block_bytes = kBlockBytes);

    /** PathORAM-style parameters (Z real slots, no dummies). */
    static OramParams path(std::uint64_t num_blocks, unsigned z,
                           unsigned block_bytes = kBlockBytes);

    /** Real-block capacity of a bucket at the given level (root = 0). */
    unsigned capacityAt(unsigned level) const
    {
        return zPerLevel.empty() ? z : zPerLevel[level];
    }

    /** Total slots (real + dummy) of a bucket at the given level. */
    unsigned slotsAt(unsigned level) const { return capacityAt(level) + s; }

    /** Number of 64B DRAM lines per slot. */
    unsigned linesPerSlot() const { return blockBytes / kBlockBytes; }

    /** Leaf level index (== levels - 1). */
    unsigned leafLevel() const { return levels - 1; }

    /** Heap-order node id of the given position within a level. */
    NodeId nodeAt(unsigned level, std::uint64_t index) const;

    /** Node id of the bucket at `level` on the path to `leaf`. */
    NodeId ancestorOfLeaf(Leaf leaf, unsigned level) const;

    /** Level of a node id. */
    unsigned levelOf(NodeId node) const;

    /** Parent node id (root's parent is itself). */
    NodeId parentOf(NodeId node) const;

    /** True if `node` lies on the root-to-leaf path of `leaf`. */
    bool onPath(NodeId node, Leaf leaf) const;

    /** Path node ids from root (index 0) to leaf (index levels-1). */
    std::vector<NodeId> pathNodes(Leaf leaf) const;

    /** pathNodes into a caller-owned buffer (cleared first). */
    void pathNodesInto(Leaf leaf, std::vector<NodeId> *nodes) const;

    /** Validate internal consistency; panics on misconfiguration. */
    void check() const;
};

/**
 * Reverse-lexicographic eviction leaf sequence used by RingORAM's
 * deterministic EvictPath (G = bit-reversed counter), which spreads
 * consecutive evictions across the tree.
 */
Leaf evictionLeaf(std::uint64_t counter, std::uint64_t num_leaves);

/** Apply LAORAM's fat-tree capacities: 2Z at root tapering to Z at leaf. */
void applyFatTree(OramParams &params);

/** Apply IR-ORAM's reduced mid-tree capacities. */
void applyIrTreeShrink(OramParams &params);

} // namespace palermo

#endif // PALERMO_ORAM_ORAM_PARAMS_HH
