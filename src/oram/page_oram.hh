/**
 * @file
 * PageOram: DRAM-page-aware PathORAM (Rajat et al., MICRO'22).
 *
 * PageORAM extends each block's residence set with the siblings of its
 * path buckets. Siblings are heap-adjacent, so the extra reads land in
 * already-open DRAM rows, and the added placement freedom lets bucket
 * size shrink (pageZ < pathZ), cutting per-access traffic.
 */

#ifndef PALERMO_ORAM_PAGE_ORAM_HH
#define PALERMO_ORAM_PAGE_ORAM_HH

#include <array>
#include <memory>

#include "common/rng.hh"
#include "oram/hierarchy.hh"
#include "oram/path_engine.hh"
#include "oram/posmap.hh"

namespace palermo {

/** Hierarchical PageORAM. */
class PageOram : public Protocol
{
  public:
    explicit PageOram(const ProtocolConfig &config);

    const char *name() const override { return "PageORAM"; }

    void accessInto(BlockId pa, bool write, std::uint64_t value,
                    std::vector<RequestPlan> *out) override;

    const Stash &stashOf(unsigned level) const override;
    Stash &stashOf(unsigned level) override;
    std::uint64_t numBlocks() const override { return config_.numBlocks; }
    std::uint64_t dataLeaves() const override
    {
        return engines_[kLevelData]->params().numLeaves;
    }

    PathEngine &engine(unsigned level) { return *engines_[level]; }
    bool checkBlockInvariant(BlockId pa) const;

  private:
    ProtocolConfig config_;
    Rng rng_;
    std::array<std::unique_ptr<PathEngine>, kHierLevels> engines_;
    std::array<std::unique_ptr<PosMap>, kHierLevels> posMaps_;
};

} // namespace palermo

#endif // PALERMO_ORAM_PAGE_ORAM_HH
