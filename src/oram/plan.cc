/**
 * @file
 * LevelPlan/AccessPlan construction helpers bridging functional
 * protocol execution to the timing controllers.
 */

#include "oram/plan.hh"

namespace palermo {

const char *
phaseKindName(PhaseKind kind)
{
    switch (kind) {
      case PhaseKind::LoadMeta: return "LM";
      case PhaseKind::ResetRead: return "ER-rd";
      case PhaseKind::ResetWrite: return "ER-wr";
      case PhaseKind::ReadPath: return "RP";
      case PhaseKind::EvictRead: return "EP-rd";
      case PhaseKind::EvictWrite: return "EP-wr";
    }
    return "?";
}

std::size_t
Phase::readCount() const
{
    std::size_t count = 0;
    for (const auto &op : ops) {
        if (!op.write)
            ++count;
    }
    return count;
}

std::size_t
Phase::writeCount() const
{
    return ops.size() - readCount();
}

std::size_t
LevelPlan::readOps() const
{
    std::size_t count = 0;
    for (const auto &phase : phases)
        count += phase.readCount();
    return count;
}

std::size_t
LevelPlan::writeOps() const
{
    std::size_t count = 0;
    for (const auto &phase : phases)
        count += phase.writeCount();
    return count;
}

const Phase *
LevelPlan::find(PhaseKind kind) const
{
    for (const auto &phase : phases) {
        if (phase.kind == kind)
            return &phase;
    }
    return nullptr;
}

std::size_t
RequestPlan::readOps() const
{
    std::size_t count = 0;
    for (const auto &level : levels)
        count += level.readOps();
    return count;
}

std::size_t
RequestPlan::writeOps() const
{
    std::size_t count = 0;
    for (const auto &level : levels)
        count += level.writeOps();
    return count;
}

} // namespace palermo
