/**
 * @file
 * RingEngine: the RingORAM protocol machinery for a single ORAM tree.
 *
 * One engine owns a tree (buckets + metadata), a stash, the eviction
 * ring counter, and the per-tree access counter. It executes accesses
 * functionally (blocks move between buckets and the stash) and emits
 * LevelPlans describing the DRAM operations each protocol phase issues.
 *
 * Two reshuffle modes implement the paper's protocols:
 *  - Post  (Algorithm 1, baseline RingORAM): EarlyReshuffle runs after
 *    ReadPath and resets buckets whose access count reached S.
 *  - Pre   (Algorithm 2, Palermo): EarlyReshufflePreCheck runs before
 *    ReadPath, resets buckets at S-1 touches, and marks them bypassed in
 *    the subsequent ReadPath — the reordering that lets the next request
 *    observe a "good to read" tree as early as possible.
 */

#ifndef PALERMO_ORAM_LEVEL_ENGINE_HH
#define PALERMO_ORAM_LEVEL_ENGINE_HH

#include <cstdint>
#include <memory>

#include "common/rng.hh"
#include "common/types.hh"
#include "oram/layout.hh"
#include "oram/plan.hh"
#include "oram/posmap.hh"
#include "oram/stash.hh"
#include "oram/tree_store.hh"

namespace palermo {

/** When EarlyReshuffle runs relative to ReadPath. */
enum class ReshuffleMode
{
    Post, ///< Baseline RingORAM: reset at S touches, after ReadPath.
    Pre,  ///< Palermo: reset at S-1 touches, before ReadPath, bypass.
};

/** Per-engine cumulative statistics. */
struct EngineStats
{
    std::uint64_t accesses = 0;
    std::uint64_t earlyReshuffles = 0;
    std::uint64_t evictions = 0;
    std::uint64_t freshBlocks = 0;
    std::uint64_t stashServes = 0;
};

/** RingORAM protocol engine for one tree. */
class RingEngine
{
  public:
    /**
     * @param params Tree geometry and (Z, S, A).
     * @param base DRAM base address of this tree's region.
     * @param mode Reshuffle ordering (baseline vs Palermo).
     * @param cached_levels Tree levels [0, cached_levels) are served by
     *        the on-chip tree-top cache and emit no DRAM operations.
     * @param seed Engine RNG seed (dummy-slot selection).
     * @param stash_capacity On-chip stash bound for watermark checks.
     */
    RingEngine(const OramParams &params, Addr base, ReshuffleMode mode,
               unsigned cached_levels, std::uint64_t seed,
               std::size_t stash_capacity = 256);

    /**
     * Execute one RingORAM access functionally and emit its plan.
     *
     * The caller (hierarchy) resolves the leaf from position-map content
     * and passes both the leaf to read and the fresh remap target. If
     * the block is pending in the stash the caller passes a uniformly
     * random leaf per Palermo Algorithm 2 line 5.
     *
     * @param block Block id within this tree's space.
     * @param leaf Path to read.
     * @param new_leaf Fresh leaf the block remaps to.
     */
    LevelPlan access(BlockId block, Leaf leaf, Leaf new_leaf);

    /** access() into a recycled plan (resets it first). */
    void accessInto(BlockId block, Leaf leaf, Leaf new_leaf,
                    LevelPlan *plan);

    /**
     * Bulk-load one block during initial ORAM construction: place it as
     * deep as possible on its assigned path (stash as last resort).
     */
    void plant(BlockId block, Leaf leaf, std::uint64_t payload = 0);

    /** Read a stashed block's payload (valid right after access()). */
    std::uint64_t payloadOf(BlockId block) const;

    /** Overwrite a stashed block's payload (write requests). */
    void setPayload(BlockId block, std::uint64_t value);

    /** True if the block currently sits in the stash (pending). */
    bool inStash(BlockId block) const { return stash_.contains(block); }

    Stash &stash() { return stash_; }
    const Stash &stash() const { return stash_; }
    TreeStore &tree() { return tree_; }
    const TreeStore &tree() const { return tree_; }
    const TreeLayout &layout() const { return layout_; }
    const OramParams &params() const { return params_; }
    unsigned cachedLevels() const { return cachedLevels_; }
    const EngineStats &stats() const { return stats_; }

    /**
     * Verify the RingORAM invariant for a block: it lies on the path
     * from its mapped leaf to the root, or in the stash.
     * @param block Block to locate.
     * @param leaf The block's authoritative mapped leaf.
     */
    bool satisfiesInvariant(BlockId block, Leaf leaf) const;

  private:
    /** Functionally reset one bucket and append its plan. */
    void resetBucket(NodeId node, std::vector<MemOp> &read_ops,
                     std::vector<MemOp> &write_ops);

    /** Append ops for one slot access if the level is not cached. */
    void appendSlot(std::vector<MemOp> &ops, NodeId node, unsigned slot,
                    bool write) const;

    /** Append a metadata line op if the level is not cached. */
    void appendMeta(std::vector<MemOp> &ops, NodeId node, bool write) const;

    bool levelCached(NodeId node) const;

    OramParams params_;
    TreeLayout layout_;
    ReshuffleMode mode_;
    unsigned cachedLevels_;
    Rng rng_;
    TreeStore tree_;
    Stash stash_;
    std::uint64_t accessCount_ = 0;
    std::uint64_t evictCounter_ = 0;
    /**
     * Target of the in-progress access(); excluded from bucket refills
     * so the hierarchy can read/update its payload in the stash after
     * access() returns (and so a pre-check reset cannot re-plant it on
     * its stale path after the position map was already updated).
     */
    BlockId inFlight_ = kInvalid;
    EngineStats stats_;

    // Per-access scratch buffers, reused across accesses so the steady
    // state allocates nothing. Phase ops are staged here and swapped
    // into the plan's recycled slots at assembly; the swap hands back
    // the slot's previous buffer, so capacity ping-pongs between the
    // engine and the plans instead of returning to the heap.
    std::vector<NodeId> pathScratch_;    ///< ReadPath node ids.
    std::vector<NodeId> evictScratch_;   ///< EvictPath node ids.
    std::vector<NodeId> bypassScratch_;  ///< Pre-mode bypassed nodes.
    std::vector<MemOp> lmScratch_;       ///< LM phase ops.
    std::vector<MemOp> erReadScratch_;   ///< ER fetch ops.
    std::vector<MemOp> erWriteScratch_;  ///< ER write-back ops.
    std::vector<MemOp> rpScratch_;       ///< RP phase ops.
    std::vector<MemOp> epReadScratch_;   ///< EP fetch ops.
    std::vector<MemOp> epWriteScratch_;  ///< EP write-back ops.
    std::vector<BlockContent> takeScratch_;   ///< takeAllValid staging.
    std::vector<BlockId> chosenScratch_;      ///< eligibleFor staging.
    std::vector<BlockContent> refillScratch_; ///< Bucket refill staging.
};

} // namespace palermo

#endif // PALERMO_ORAM_LEVEL_ENGINE_HH
