/**
 * @file
 * Lazy bucket materialization so the 16 GB Table III geometry is
 * constructible without allocating 2^25 nodes up front.
 */

#include "oram/tree_store.hh"

#include "common/log.hh"

namespace palermo {

TreeStore::TreeStore(const OramParams &params)
    : params_(params), nodes_(NodeMap::allocator_type(&pool_))
{
    params_.check();
}

NodeMeta &
TreeStore::node(NodeId id)
{
    palermo_assert(id < params_.numNodes, "node id out of tree");
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
        const unsigned level = params_.levelOf(id);
        it = nodes_.emplace(id, NodeMeta(params_.capacityAt(level),
                                         params_.slotsAt(level))).first;
    }
    return it->second;
}

const NodeMeta *
TreeStore::peek(NodeId id) const
{
    const auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
}

std::uint64_t
TreeStore::totalValidBlocks() const
{
    std::uint64_t total = 0;
    for (const auto &[id, meta] : nodes_)
        total += meta.validRealCount();
    return total;
}

} // namespace palermo
