/**
 * @file
 * Lazy bucket materialization so the 16 GB Table III geometry is
 * constructible without allocating 2^25 nodes up front.
 */

#include "oram/tree_store.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

TreeStore::TreeStore(const OramParams &params)
    : params_(params), tail_(&pool_)
{
    params_.check();
    directLimit_ = std::min(params_.numNodes, kDirectNodes);
    direct_.assign(directLimit_, kNoBucket);
    levelCapacity_.resize(params_.levels);
    levelSlots_.resize(params_.levels);
    for (unsigned level = 0; level < params_.levels; ++level) {
        levelCapacity_[level] = params_.capacityAt(level);
        levelSlots_[level] = params_.slotsAt(level);
    }
}

std::uint32_t
TreeStore::materialize(NodeId id)
{
    const unsigned level = params_.levelOf(id);
    const std::uint32_t index = static_cast<std::uint32_t>(level_.size());
    const unsigned slots = levelSlots_[level];

    level_.push_back(static_cast<std::uint8_t>(level));
    accessed_.push_back(0);
    slotBase_.push_back(slotBlock_.size());
    slotBlock_.insert(slotBlock_.end(), slots, kDummySlot);
    slotPayload_.insert(slotPayload_.end(), slots, 0);
    slotLeaf_.insert(slotLeaf_.end(), slots, 0);

    if (id < directLimit_)
        direct_[id] = index;
    else
        tail_.emplace(id, index);
    return index;
}

std::uint64_t
TreeStore::totalValidBlocks() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t block : slotBlock_)
        total += block < kUsedSlot;
    return total;
}

} // namespace palermo
