/**
 * @file
 * Byte-address layout of buckets, slots, and node metadata in the
 * outsourced DRAM image.
 */

#include "oram/layout.hh"

#include "common/log.hh"

namespace palermo {

TreeLayout::TreeLayout(Addr base, const OramParams &params)
    : base_(base), params_(params)
{
    levelSlotBase_.resize(params.levels + 1);
    std::uint64_t slots = 0;
    for (unsigned level = 0; level < params.levels; ++level) {
        levelSlotBase_[level] = slots;
        slots += (std::uint64_t{1} << level) * params.slotsAt(level);
    }
    levelSlotBase_[params.levels] = slots;
    const Addr data_bytes = slots * params.blockBytes;
    metaBase_ = base_ + data_bytes;
    footprint_ = data_bytes + params.numNodes * kBlockBytes;
}

Addr
TreeLayout::slotAddr(NodeId node, unsigned slot) const
{
    const unsigned level = params_.levelOf(node);
    palermo_assert(slot < params_.slotsAt(level));
    const std::uint64_t index_in_level =
        node - ((std::uint64_t{1} << level) - 1);
    const std::uint64_t slot_index = levelSlotBase_[level]
        + index_in_level * params_.slotsAt(level) + slot;
    return base_ + slot_index * params_.blockBytes;
}

Addr
TreeLayout::metaAddr(NodeId node) const
{
    palermo_assert(node < params_.numNodes);
    return metaBase_ + node * kBlockBytes;
}

void
TreeLayout::appendSlotOps(std::vector<MemOp> &ops, NodeId node,
                          unsigned slot, bool write) const
{
    const Addr first = slotAddr(node, slot);
    for (unsigned line = 0; line < params_.linesPerSlot(); ++line)
        ops.push_back({first + line * kBlockBytes, write});
}

} // namespace palermo
