/**
 * @file
 * Byte-address layout of buckets, slots, and node metadata in the
 * outsourced DRAM image: per-level table precomputation.
 */

#include "oram/layout.hh"

namespace palermo {

TreeLayout::TreeLayout(Addr base, const OramParams &params)
    : base_(base), numNodes_(params.numNodes),
      blockBytes_(params.blockBytes), linesPerSlot_(params.linesPerSlot())
{
    levelAddrBase_.resize(params.levels);
    levelSlots_.resize(params.levels);
    levelBucketBytes_.resize(params.levels);
    std::uint64_t slots = 0;
    for (unsigned level = 0; level < params.levels; ++level) {
        const unsigned per_bucket = params.slotsAt(level);
        levelAddrBase_[level] = base_ + slots * params.blockBytes;
        levelSlots_[level] = per_bucket;
        levelBucketBytes_[level] =
            std::uint64_t{per_bucket} * params.blockBytes;
        slots += (std::uint64_t{1} << level) * per_bucket;
    }
    const Addr data_bytes = slots * params.blockBytes;
    metaBase_ = base_ + data_bytes;
    footprint_ = data_bytes + params.numNodes * kBlockBytes;
}

} // namespace palermo
