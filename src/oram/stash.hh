/**
 * @file
 * The ORAM stash: the small trusted on-chip buffer holding blocks in
 * flight between the tree and the processor.
 *
 * RingORAM proves a 256-entry stash overflows with probability < 2^-103;
 * Palermo preserves that bound by serializing EP after RP. The class
 * tracks occupancy watermarks so experiments (Fig. 12) can demonstrate
 * boundedness, and exposes an overflow signal PrORAM uses to trigger
 * background (dummy) evictions.
 */

#ifndef PALERMO_ORAM_STASH_HH
#define PALERMO_ORAM_STASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/pool.hh"
#include "common/types.hh"
#include "oram/node_meta.hh"

namespace palermo {

struct OramParams;

/** One stashed block with its current leaf assignment. */
struct StashEntry
{
    Leaf leaf = 0;
    std::uint64_t payload = 0;
};

/** Bounded on-chip stash with watermark accounting. */
class Stash
{
  public:
    /**
     * Hash-map type backed by the stash's own pool: the put/take churn
     * of steady-state operation recycles node storage instead of
     * round-tripping through the global heap. Iteration order depends
     * only on hashes and insertion sequence, not on the allocator, so
     * pooling does not perturb deterministic runs.
     */
    using Map = std::unordered_map<
        BlockId, StashEntry, std::hash<BlockId>, std::equal_to<BlockId>,
        PoolAllocator<std::pair<const BlockId, StashEntry>>>;

    explicit Stash(std::size_t capacity = 256);

    std::size_t capacity() const { return capacity_; }
    std::size_t occupancy() const { return entries_.size(); }

    /** Highest occupancy ever observed. */
    std::size_t highWatermark() const { return highWatermark_; }

    /** Highest occupancy since the last watermark window reset. */
    std::size_t windowWatermark() const { return windowWatermark_; }
    void resetWindowWatermark() { windowWatermark_ = occupancy(); }

    /** True if occupancy ever exceeded capacity. */
    bool overflowed() const { return overflowed_; }

    bool contains(BlockId block) const { return entries_.count(block) > 0; }

    /** Lookup; panics if absent. */
    StashEntry &entry(BlockId block);
    const StashEntry &entry(BlockId block) const;

    /** Insert or overwrite a block. */
    void put(BlockId block, Leaf leaf, std::uint64_t payload);

    /** Update the leaf of a stashed block (remap-on-access). */
    void remap(BlockId block, Leaf leaf);

    /** Remove a block (eviction into the tree). */
    StashEntry take(BlockId block);

    /**
     * Collect up to `max_count` stashed blocks eligible for the given
     * node (their leaf path passes through it), preferring arbitrary
     * order; does not remove them.
     * @param exclude Block to skip (the in-flight access target, which
     *        must stay in the stash until its request retires).
     */
    std::vector<BlockId> eligibleFor(NodeId node, const OramParams &params,
                                     std::size_t max_count,
                                     BlockId exclude = kInvalid) const;

    /** eligibleFor into a caller-owned buffer (cleared first). */
    void eligibleForInto(NodeId node, const OramParams &params,
                         std::size_t max_count, BlockId exclude,
                         std::vector<BlockId> *out) const;

    /** Iterate all entries (tests / invariant checks). */
    const Map &entries() const { return entries_; }

  private:
    void noteOccupancy();

    std::size_t capacity_;
    PoolResource pool_; ///< Declared before entries_ (destruction order).
    Map entries_;
    std::size_t highWatermark_ = 0;
    std::size_t windowWatermark_ = 0;
    bool overflowed_ = false;
};

} // namespace palermo

#endif // PALERMO_ORAM_STASH_HH
