/**
 * @file
 * The ORAM stash: the small trusted on-chip buffer holding blocks in
 * flight between the tree and the processor.
 *
 * RingORAM proves a 256-entry stash overflows with probability < 2^-103;
 * Palermo preserves that bound by serializing EP after RP. The class
 * tracks occupancy watermarks so experiments (Fig. 12) can demonstrate
 * boundedness, and exposes an overflow signal PrORAM uses to trigger
 * background (dummy) evictions.
 *
 * Layout: entries live in a dense vector scanned in insertion order by
 * the eviction paths, with a flat open-addressing index on the side for
 * O(1) lookup. Iteration order is part of the stash contract — see
 * items() — because eviction candidate selection is simulator-visible:
 * the order determines which eligible blocks fill a bucket first, hence
 * which DRAM slots are written, hence timing. Insertion order with
 * swap-last-on-erase is a pure function of the operation sequence, so
 * runs are reproducible across standard libraries and allocators.
 */

#ifndef PALERMO_ORAM_STASH_HH
#define PALERMO_ORAM_STASH_HH

#include <cstdint>
#include <vector>

#include "common/flat_map.hh"
#include "common/pool.hh"
#include "common/types.hh"

namespace palermo {

struct OramParams;

/** One stashed block with its current leaf assignment. */
struct StashEntry
{
    Leaf leaf = 0;
    std::uint64_t payload = 0;
};

/** A stash slot as seen by dense iteration. */
struct StashItem
{
    BlockId block = kInvalid;
    StashEntry entry;
};

/** Bounded on-chip stash with watermark accounting. */
class Stash
{
  public:
    explicit Stash(std::size_t capacity = 256);

    std::size_t capacity() const { return capacity_; }
    std::size_t occupancy() const { return items_.size(); }

    /** Highest occupancy ever observed. */
    std::size_t highWatermark() const { return highWatermark_; }

    /** Highest occupancy since the last watermark window reset. */
    std::size_t windowWatermark() const { return windowWatermark_; }
    void resetWindowWatermark() { windowWatermark_ = occupancy(); }

    /** True if occupancy ever exceeded capacity. */
    bool overflowed() const { return overflowed_; }

    bool contains(BlockId block) const { return index_.contains(block); }

    /** Lookup; panics if absent. */
    StashEntry &entry(BlockId block);
    const StashEntry &entry(BlockId block) const;

    /** Insert or overwrite a block. */
    void put(BlockId block, Leaf leaf, std::uint64_t payload);

    /** Update the leaf of a stashed block (remap-on-access). */
    void remap(BlockId block, Leaf leaf);

    /** Remove a block (eviction into the tree). */
    StashEntry take(BlockId block);

    /**
     * Collect up to `max_count` stashed blocks eligible for the given
     * node (their leaf path passes through it), in items() order; does
     * not remove them.
     * @param exclude Block to skip (the in-flight access target, which
     *        must stay in the stash until its request retires).
     */
    std::vector<BlockId> eligibleFor(NodeId node, const OramParams &params,
                                     std::size_t max_count,
                                     BlockId exclude = kInvalid) const;

    /** eligibleFor into a caller-owned buffer (cleared first). */
    void eligibleForInto(NodeId node, const OramParams &params,
                         std::size_t max_count, BlockId exclude,
                         std::vector<BlockId> *out) const;

    /**
     * Dense entries, oldest-first. Order contract: put() of a new
     * block appends; put()/remap() of a resident block keeps its
     * position; take() moves the last item into the vacated slot.
     * Eviction scans iterate this order, so it is load-bearing for
     * byte-determinism — do not reorder.
     */
    const std::vector<StashItem> &items() const { return items_; }

  private:
    void noteOccupancy();

    std::size_t capacity_;
    PoolResource pool_; ///< Declared before index_ (destruction order).
    std::vector<StashItem> items_;
    FlatMap<BlockId, std::uint32_t> index_; ///< block -> items_ slot.
    std::size_t highWatermark_ = 0;
    std::size_t windowWatermark_ = 0;
    bool overflowed_ = false;
};

} // namespace palermo

#endif // PALERMO_ORAM_STASH_HH
