/**
 * @file
 * Open protocol registry: the extension point that replaced the closed
 * enum-switch factory in experiment.cc.
 *
 * Each protocol describes itself with a ProtocolDescriptor — names,
 * Fig. 10 bar position, capability flags, a config-normalization hook,
 * and a controller builder — and registers it from its own translation
 * unit via a file-scope ProtocolRegistrar. Everything that used to
 * switch over ProtocolKind (makeController, protocolFromName,
 * protocolKindName, allProtocolKinds, the per-protocol config fixups)
 * is now a registry lookup, so adding a protocol is a one-file change:
 * implement the Protocol/Controller, append a registrar, done.
 *
 * Registration units are the top of the layering tower: a protocol's
 * .cc may include sim/ and controller/ headers to describe how it is
 * driven, but nothing in sim/ names a concrete protocol type.
 *
 * Registrars run during static initialization, before main(); lookups
 * are read-only afterwards, so the registry needs no locking. The
 * library is linked as a CMake OBJECT library precisely so that no
 * registration TU can be dropped by static-archive dead stripping.
 */

#ifndef PALERMO_SIM_PROTOCOL_REGISTRY_HH
#define PALERMO_SIM_PROTOCOL_REGISTRY_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/system_config.hh"

namespace palermo {

class Controller;

/** Everything the experiment layer needs to know about one protocol. */
struct ProtocolDescriptor
{
    ProtocolKind kind = ProtocolKind::Palermo;

    const char *displayName = nullptr; ///< Figure label ("PathORAM").
    const char *shortToken = nullptr;  ///< CLI/JSON token ("path").
    std::vector<std::string> aliases;  ///< Extra accepted spellings.

    /** Position in the paper's Fig. 10 bar order (0-based, unique). */
    unsigned barOrder = 0;

    // Capability flags.
    /**
     * Honors ProtocolConfig::prefetchLen > 1. Protocols without this
     * capability get prefetchLen pinned to 1 before construction (the
     * clamp the old switch applied case by case).
     */
    bool supportsPrefetch = false;
    /** Can run under the §VI constant-rate/dummy-padding frontend. */
    bool constantRateCapable = true;

    /**
     * Optional normalization applied to a copy of the SystemConfig
     * before build() — e.g. Palermo+Prefetch derives a usable prefetch
     * length when the caller left the no-prefetch default in place.
     * Runs after the supportsPrefetch clamp.
     */
    std::function<void(SystemConfig &)> adjustConfig;

    /** Build the timing controller for an (adjusted) configuration. */
    std::function<std::unique_ptr<Controller>(const SystemConfig &)>
        build;
};

/** Process-wide descriptor table (populated at static-init time). */
class ProtocolRegistry
{
  public:
    static ProtocolRegistry &instance();

    /**
     * Register a descriptor. Panics on duplicate kinds, names, tokens,
     * aliases, or bar positions — collisions are programming errors
     * and surface at process start, not mid-sweep.
     */
    void add(ProtocolDescriptor descriptor);

    /** Descriptor of a kind; panics if the kind was never registered. */
    const ProtocolDescriptor &at(ProtocolKind kind) const;

    /** Descriptor of a kind, or nullptr. */
    const ProtocolDescriptor *find(ProtocolKind kind) const;

    /**
     * Case-insensitive lookup by short token, display name, or alias.
     * Returns nullptr on unknown names.
     */
    const ProtocolDescriptor *findByName(const std::string &name) const;

    /** All descriptors in Fig. 10 bar order. */
    std::vector<const ProtocolDescriptor *> all() const;

    std::size_t size() const { return descriptors_.size(); }

  private:
    ProtocolRegistry() = default;

    /** Stable storage: lookups hand out long-lived pointers. */
    std::vector<std::unique_ptr<ProtocolDescriptor>> descriptors_;
};

/**
 * File-scope self-registration hook:
 *
 *   namespace {
 *   const ProtocolRegistrar registerFoo{{ ... descriptor ... }};
 *   } // namespace
 */
struct ProtocolRegistrar
{
    explicit ProtocolRegistrar(ProtocolDescriptor descriptor);
};

/**
 * Copy of `config` with the protocol's capability clamp (prefetchLen
 * pinned to 1 for non-prefetch designs) and its adjustConfig hook
 * applied — exactly what build() will see. Design-point producers
 * (sweep expansion, bench harness, replay) record this, so JSON
 * documents report the configuration that actually ran rather than
 * the one the caller happened to pass. Idempotent. Fatal when the
 * config asks for constant-rate issue but the protocol lacks the
 * capability.
 */
SystemConfig normalizedProtocolConfig(ProtocolKind kind,
                                      const SystemConfig &config);

/**
 * Resolve a descriptor and build its controller from the normalized
 * configuration. The registry-backed replacement for the old
 * switch-based makeController.
 */
std::unique_ptr<Controller>
buildProtocolController(ProtocolKind kind, const SystemConfig &config);

} // namespace palermo

#endif // PALERMO_SIM_PROTOCOL_REGISTRY_HH
