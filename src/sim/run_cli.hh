/**
 * @file
 * Option parsing for the palermo_run and palermo_replay CLIs (and
 * their tests).
 *
 * Kept in the library (not tools/) so flag handling is unit-testable
 * and so bench binaries share the exact same --json/--jobs semantics.
 * Parsing never exits: errors come back as strings for the caller to
 * report, which also lets tests probe malformed invocations.
 */

#ifndef PALERMO_SIM_RUN_CLI_HH
#define PALERMO_SIM_RUN_CLI_HH

#include <cstdint>
#include <string>

#include "sim/sweep.hh"
#include "sim/system_config.hh"
#include "trace/trace_gen.hh"

namespace palermo {

/**
 * Shared argv walker for the tool parsers: accepts "--flag value" and
 * "--flag=value" forms, one flag per advance() step. Exposed here so
 * bench harnesses parse flags the same way and tests can probe edge
 * cases (missing values, '=' with empty text, exhausted argv).
 */
class ArgCursor
{
  public:
    ArgCursor(int argc, const char *const *argv)
        : argc_(argc), argv_(argv)
    {
    }

    /** Move to the next argument; false when argv is exhausted. */
    bool
    advance()
    {
        if (i_ + 1 >= argc_)
            return false;
        arg_ = argv_[++i_];
        return true;
    }

    /** Flag name of the current argument (text before any '='). */
    std::string
    name() const
    {
        const std::size_t eq = arg_.find('=');
        return eq == std::string::npos ? arg_ : arg_.substr(0, eq);
    }

    /**
     * Value of the current flag: the text after '=', or the next
     * argument (consumed). False when neither exists.
     */
    bool
    value(std::string *out)
    {
        const std::size_t eq = arg_.find('=');
        if (eq != std::string::npos) {
            *out = arg_.substr(eq + 1);
            return true;
        }
        if (i_ + 1 >= argc_)
            return false;
        *out = argv_[++i_];
        return true;
    }

  private:
    int argc_;
    const char *const *argv_;
    int i_ = -1;
    std::string arg_;
};

/** Everything palermo_run accepts on its command line. */
struct RunOptions
{
    ProtocolKind protocol = ProtocolKind::Palermo;
    Workload workload = Workload::Random;

    bool paperGeometry = false;    ///< --paper: Table III 16 GB space.
    std::uint64_t blocks = 0;      ///< --blocks (0 = keep default).
    std::uint64_t reqs = 0;        ///< --reqs (0 = keep default).
    bool seedSet = false;
    std::uint64_t seed = 0;        ///< --seed (when seedSet).
    bool constantRate = false;     ///< --constant-rate (security mode).

    std::string sweep;             ///< Joined --sweep clauses.
    std::string jsonPath;          ///< --json PATH ("-" = stdout).
    unsigned jobs = 1;             ///< --jobs N worker threads.
    unsigned simThreads = 1;       ///< --sim-threads N per session.
    bool listPoints = false;       ///< --list: print grid, don't run.
    bool listProtocols = false;    ///< --list-protocols (registry).
    bool listWorkloads = false;    ///< --list-workloads.
    bool help = false;             ///< --help / -h.

    /** Resolve the base SystemConfig these options describe. */
    SystemConfig baseConfig() const;

    /** Expand the (possibly empty) sweep into design points. */
    std::vector<DesignPoint> expandPoints(std::string *error) const;
};

/**
 * Parse argv (excluding argv[0]). Flags take "--flag value" or
 * "--flag=value" form. Returns false and fills *error on unknown
 * flags, missing arguments, or unparseable values.
 */
bool parseRunArgs(int argc, const char *const *argv, RunOptions *options,
                  std::string *error);

/** Usage text for --help and parse errors. */
std::string runUsage();

/** Everything palermo_replay accepts on its command line. */
struct ReplayOptions
{
    std::string tracePath;         ///< --trace FILE (required to run).
    std::string scenarioPath;      ///< --scenario FILE (multi-tenant).
    ProtocolKind protocol = ProtocolKind::Palermo;

    bool paperGeometry = false;    ///< --paper: Table III 16 GB space.
    std::uint64_t blocks = 0;      ///< --blocks (0 = keep default).
    bool seedSet = false;
    std::uint64_t seed = 0;        ///< --seed (when seedSet).

    std::uint64_t depth = 8;       ///< --depth: submit-queue bound.
    std::uint64_t progress = 0;    ///< --progress N (0 = off).
    unsigned simThreads = 1;       ///< --sim-threads N per session.
    std::string jsonPath;          ///< --json PATH ("-" = stdout).
    bool listProtocols = false;    ///< --list-protocols (registry).
    bool help = false;             ///< --help / -h.

    /**
     * Resolve the base SystemConfig these options describe. The run
     * shape (totalRequests) still comes from the trace length.
     */
    SystemConfig baseConfig() const;
};

/** Parse palermo_replay argv (excluding argv[0]); see parseRunArgs. */
bool parseReplayArgs(int argc, const char *const *argv,
                     ReplayOptions *options, std::string *error);

/** Usage text for palermo_replay. */
std::string replayUsage();

/**
 * One line per registered protocol, in Fig. 10 bar order: short
 * token, display name, capability flags, accepted aliases. What
 * `palermo_run --list-protocols` prints.
 */
std::string protocolListing();

/** One line per workload, in Fig. 10 order (--list-workloads). */
std::string workloadListing();

} // namespace palermo

#endif // PALERMO_SIM_RUN_CLI_HH
