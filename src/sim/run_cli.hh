/**
 * @file
 * Option parsing for the palermo_run CLI (and its tests).
 *
 * Kept in the library (not tools/) so flag handling is unit-testable
 * and so bench binaries share the exact same --json/--jobs semantics.
 * Parsing never exits: errors come back as strings for the caller to
 * report, which also lets tests probe malformed invocations.
 */

#ifndef PALERMO_SIM_RUN_CLI_HH
#define PALERMO_SIM_RUN_CLI_HH

#include <cstdint>
#include <string>

#include "sim/sweep.hh"
#include "sim/system_config.hh"
#include "trace/trace_gen.hh"

namespace palermo {

/** Everything palermo_run accepts on its command line. */
struct RunOptions
{
    ProtocolKind protocol = ProtocolKind::Palermo;
    Workload workload = Workload::Random;

    bool paperGeometry = false;    ///< --paper: Table III 16 GB space.
    std::uint64_t blocks = 0;      ///< --blocks (0 = keep default).
    std::uint64_t reqs = 0;        ///< --reqs (0 = keep default).
    bool seedSet = false;
    std::uint64_t seed = 0;        ///< --seed (when seedSet).
    bool constantRate = false;     ///< --constant-rate (security mode).

    std::string sweep;             ///< Joined --sweep clauses.
    std::string jsonPath;          ///< --json PATH ("-" = stdout).
    unsigned jobs = 1;             ///< --jobs N worker threads.
    bool listPoints = false;       ///< --list: print grid, don't run.
    bool help = false;             ///< --help / -h.

    /** Resolve the base SystemConfig these options describe. */
    SystemConfig baseConfig() const;

    /** Expand the (possibly empty) sweep into design points. */
    std::vector<DesignPoint> expandPoints(std::string *error) const;
};

/**
 * Parse argv (excluding argv[0]). Flags take "--flag value" or
 * "--flag=value" form. Returns false and fills *error on unknown
 * flags, missing arguments, or unparseable values.
 */
bool parseRunArgs(int argc, const char *const *argv, RunOptions *options,
                  std::string *error);

/** Usage text for --help and parse errors. */
std::string runUsage();

} // namespace palermo

#endif // PALERMO_SIM_RUN_CLI_HH
