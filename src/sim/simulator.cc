/**
 * @file
 * The tick loop: frontend -> controller -> DDR4 advancement, warmup
 * boundary, and RunMetrics condensation.
 */

#include "sim/simulator.hh"

#include <algorithm>

#include "common/log.hh"

namespace palermo {

Simulator::Simulator(const SystemConfig &config,
                     std::unique_ptr<Controller> controller,
                     std::unique_ptr<Frontend> frontend)
    : config_(config), dram_(std::make_unique<DramSystem>(config.dram)),
      controller_(std::move(controller)), frontend_(std::move(frontend))
{
    palermo_assert(controller_ != nullptr && frontend_ != nullptr);
}

RunMetrics
Simulator::run()
{
    RunMetrics metrics;
    const std::uint64_t total = config_.totalRequests;
    const std::uint64_t warmup_served = static_cast<std::uint64_t>(
        total * config_.warmupFraction);
    const std::uint64_t window =
        std::max<std::uint64_t>(1, total / 100); // Fig. 12 sampling.

    bool measuring = warmup_served == 0;
    std::uint64_t warmup_cycles = 0;
    std::uint64_t next_sample = window;
    TimeWeighted outstanding;

    // Generous runaway guard: no experiment in this repo needs more.
    const Tick tick_limit = 2'000'000'000ull;

    while (controller_->stats().served < total) {
        const Tick now = dram_->now();
        palermo_assert(now < tick_limit, "simulation runaway");

        // Deliver finished reads.
        for (const Completion &completion : dram_->drainCompletions())
            controller_->onCompletion(completion.tag);

        // Admit new misses.
        while (frontend_->wantsIssue(now) && controller_->canAccept()) {
            const FrontendRequest request = frontend_->produce(now);
            controller_->push(request.pa, request.write, request.value,
                              request.dummy);
            if (config_.constantRate)
                break; // One slot per interval.
        }

        controller_->tick(*dram_);
        dram_->tick();
        outstanding.accumulate(
            static_cast<double>(dram_->occupancy()), 1);

        ControllerStats &cs = controller_->stats();
        if (!measuring && cs.served >= warmup_served) {
            measuring = true;
            warmup_cycles = dram_->now();
            dram_->resetStats();
            outstanding.reset();
            cs.dramCycles = {};
            cs.syncCycles = {};
            cs.latency.reset();
            cs.samples.clear();
        }

        if (cs.served >= next_sample) {
            next_sample += window;
            const Stash &stash = controller_->stashOf(kLevelData);
            metrics.stashSamples.push_back(stash.windowWatermark());
            const_cast<Stash &>(stash).resetWindowWatermark();
        }
    }

    // Drain the tail so trailing writes/evictions settle into stats.
    for (unsigned i = 0; i < 4 * config_.dram.timing.tRC
                             && !controller_->idle(); ++i) {
        for (const Completion &completion : dram_->drainCompletions())
            controller_->onCompletion(completion.tag);
        controller_->tick(*dram_);
        dram_->tick();
        outstanding.accumulate(
            static_cast<double>(dram_->occupancy()), 1);
    }

    const ControllerStats &cs = controller_->stats();
    const DramSnapshot snap = dram_->snapshot();
    const std::uint64_t end_cycles = dram_->now();

    metrics.measuredRequests = cs.served
        - std::min<std::uint64_t>(cs.served, warmup_served);
    metrics.measuredCycles =
        end_cycles > warmup_cycles ? end_cycles - warmup_cycles : 1;
    metrics.requestsPerKilocycle = 1000.0
        * static_cast<double>(metrics.measuredRequests)
        / metrics.measuredCycles;
    metrics.missesPerSecond = metrics.requestsPerKilocycle / 1000.0
        * config_.dram.timing.clockGHz * 1e9;

    metrics.bwUtilization = snap.busUtilization();
    metrics.avgOutstanding = outstanding.mean();
    metrics.rowHitRate = snap.rowHitRate();
    metrics.rowConflictRate = snap.rowConflictRate();
    metrics.avgReadLatency = snap.avgReadLatency;
    metrics.dramReads = snap.reads;
    metrics.dramWrites = snap.writes;
    if (metrics.measuredRequests > 0) {
        metrics.readsPerRequest = static_cast<double>(snap.reads)
            / metrics.measuredRequests;
        metrics.writesPerRequest = static_cast<double>(snap.writes)
            / metrics.measuredRequests;
    }

    metrics.syncFraction = cs.syncFraction();
    for (unsigned level = 0; level < kHierLevels; ++level) {
        metrics.levelDramShare[level] = cs.levelShare(level, true);
        metrics.levelSyncShare[level] = cs.levelShare(level, false);
    }
    metrics.latency = cs.latency;
    metrics.samples = cs.samples;

    const Stash &stash = controller_->stashOf(kLevelData);
    metrics.stashMax = stash.highWatermark();
    metrics.stashCapacity = stash.capacity();
    metrics.stashOverflowed = stash.overflowed();

    metrics.served = cs.served;
    metrics.dummies = cs.dummies;
    metrics.llcHits = cs.llcHits;
    const std::uint64_t oram_requests = cs.served - cs.llcHits
        + cs.dummies;
    metrics.dummyRatio = oram_requests
        ? static_cast<double>(cs.dummies) / oram_requests : 0.0;
    return metrics;
}

} // namespace palermo
