/**
 * @file
 * SimSession cycle loop, warmup boundary, tail drain, and RunMetrics
 * condensation — the decomposed form of the old Simulator::run().
 */

#include "sim/session.hh"

#include <algorithm>

#include "common/log.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

namespace {

/** Generous runaway guard: no experiment in this repo needs more. */
constexpr Tick kTickLimit = 2'000'000'000ull;

/**
 * Cap on one batched quiescent epoch in finish(): bounds how long the
 * loop goes without consulting the runaway guard while still fully
 * amortizing barrier and loop overhead.
 */
constexpr std::uint64_t kBulkChunk = 1u << 16;

} // namespace

SimSession::SimSession(ProtocolKind kind, const SystemConfig &config)
    : SimSession(config, buildProtocolController(kind, config))
{
}

SimSession::SimSession(ProtocolKind kind, const SystemConfig &config,
                       std::unique_ptr<Frontend> frontend)
    : SimSession(config, buildProtocolController(kind, config),
                 std::move(frontend))
{
}

SimSession::SimSession(const SystemConfig &config,
                       std::unique_ptr<Controller> controller,
                       std::unique_ptr<Frontend> frontend)
    : config_(config), dram_(std::make_unique<DramSystem>(config.dram)),
      controller_(std::move(controller)), frontend_(std::move(frontend)),
      warmupServed_(static_cast<std::uint64_t>(
          config.totalRequests * config.warmupFraction)),
      window_(std::max<std::uint64_t>(
          1, config.totalRequests / 100)), // Fig. 12 sampling.
      measuring_(warmupServed_ == 0), nextSample_(window_)
{
    palermo_assert(controller_ != nullptr);
    if (config.simThreads > 1)
        pool_ = std::make_unique<WorkerPool>(config.simThreads);
}

void
SimSession::submit(const FrontendRequest &request)
{
    palermo_assert(frontend_ == nullptr,
                   "submit() on a session with a bound frontend");
    inbox_.push_back(request);
}

void
SimSession::submit(BlockId pa, bool write, std::uint64_t value,
                   bool dummy)
{
    submit(FrontendRequest{pa, write, value, dummy});
}

void
SimSession::admit(Tick now)
{
    if (frontend_ != nullptr) {
        while (frontend_->wantsIssue(now) && controller_->canAccept()) {
            const FrontendRequest request = frontend_->produce(now);
            controller_->push(request.pa, request.write, request.value,
                              request.dummy);
            if (config_.constantRate)
                break; // One slot per interval.
        }
        return;
    }
    while (!inbox_.empty() && controller_->canAccept()) {
        const FrontendRequest request = inbox_.front();
        inbox_.pop_front();
        controller_->push(request.pa, request.write, request.value,
                          request.dummy);
        if (config_.constantRate)
            break;
    }
}

void
SimSession::tickDram()
{
    if (pool_ != nullptr)
        dram_->tickParallel(*pool_);
    else
        dram_->tick();
}

std::uint64_t
SimSession::quiescentWindow(std::uint64_t bound) const
{
    if (bound == 0 || !controller_->idle() || !dram_->readQuiescent())
        return 0;
    const ControllerStats &cs = controller_->stats();
    // A multi-request commit can leave several stash samples (or the
    // warmup flip) pending; those transients must run per-cycle.
    if (cs.served >= nextSample_)
        return 0;
    if (!measuring_ && cs.served >= warmupServed_)
        return 0;
    if (frontend_ != nullptr) {
        const Tick now = dram_->now();
        const Tick next = frontend_->nextIssueAt(now);
        if (next <= now)
            return 0;
        if (next == Frontend::kNever)
            return bound;
        return std::min<std::uint64_t>(bound, next - now);
    }
    if (!inbox_.empty())
        return 0;
    return bound;
}

std::uint64_t
SimSession::bulkStep(std::uint64_t bound)
{
    const std::uint64_t window = quiescentWindow(bound);
    if (window == 0 || !controller_->tickIdle(window))
        return 0;
    palermo_assert(dram_->now() < kTickLimit, "simulation runaway");
    outstanding_.accumulateExact(
        dram_->tickWindow(pool_.get(), window), window);
    return window;
}

void
SimSession::runCycle()
{
    const Tick now = dram_->now();
    palermo_assert(now < kTickLimit, "simulation runaway");

    // Deliver finished reads.
    for (const Completion &completion : dram_->drainCompletions())
        controller_->onCompletion(completion.tag);

    // Admit new misses.
    admit(now);

    controller_->tick(*dram_);
    tickDram();
    outstanding_.accumulate(static_cast<double>(dram_->occupancy()), 1);

    ControllerStats &cs = controller_->stats();
    if (!measuring_ && cs.served >= warmupServed_) {
        measuring_ = true;
        warmupCycles_ = dram_->now();
        dram_->resetStats();
        outstanding_.reset();
        cs.dramCycles = {};
        cs.syncCycles = {};
        cs.latency.reset();
        cs.samples.clear();
    }

    if (cs.served >= nextSample_) {
        nextSample_ += window_;
        Stash &stash = controller_->stashOf(kLevelData);
        stashSamples_.push_back(stash.windowWatermark());
        stash.resetWindowWatermark();
    }
}

void
SimSession::step(std::uint64_t cycles)
{
    while (cycles > 0) {
        if (const std::uint64_t advanced = bulkStep(cycles)) {
            cycles -= advanced;
            continue;
        }
        runCycle();
        --cycles;
    }
}

void
SimSession::drain()
{
    // Settle the tail so trailing writes/evictions land in stats.
    for (unsigned i = 0;
         i < 4 * config_.dram.timing.tRC && !controller_->idle(); ++i) {
        for (const Completion &completion : dram_->drainCompletions())
            controller_->onCompletion(completion.tag);
        controller_->tick(*dram_);
        tickDram();
        outstanding_.accumulate(
            static_cast<double>(dram_->occupancy()), 1);
    }
}

RunMetrics
SimSession::snapshot() const
{
    RunMetrics metrics;
    metrics.stashSamples = stashSamples_;

    const ControllerStats &cs = controller_->stats();
    const DramSnapshot snap = dram_->snapshot();
    const std::uint64_t end_cycles = dram_->now();

    metrics.measuredRequests = cs.served
        - std::min<std::uint64_t>(cs.served, warmupServed_);
    metrics.measuredCycles =
        end_cycles > warmupCycles_ ? end_cycles - warmupCycles_ : 1;
    metrics.requestsPerKilocycle = 1000.0
        * static_cast<double>(metrics.measuredRequests)
        / metrics.measuredCycles;
    metrics.missesPerSecond = metrics.requestsPerKilocycle / 1000.0
        * config_.dram.timing.clockGHz * 1e9;

    metrics.bwUtilization = snap.busUtilization();
    metrics.avgOutstanding = outstanding_.mean();
    metrics.rowHitRate = snap.rowHitRate();
    metrics.rowConflictRate = snap.rowConflictRate();
    metrics.avgReadLatency = snap.avgReadLatency;
    metrics.dramReads = snap.reads;
    metrics.dramWrites = snap.writes;
    if (metrics.measuredRequests > 0) {
        metrics.readsPerRequest = static_cast<double>(snap.reads)
            / metrics.measuredRequests;
        metrics.writesPerRequest = static_cast<double>(snap.writes)
            / metrics.measuredRequests;
    }

    metrics.syncFraction = cs.syncFraction();
    for (unsigned level = 0; level < kHierLevels; ++level) {
        metrics.levelDramShare[level] = cs.levelShare(level, true);
        metrics.levelSyncShare[level] = cs.levelShare(level, false);
    }
    metrics.latency = cs.latency;
    metrics.samples = cs.samples;

    const Stash &stash = controller_->stashOf(kLevelData);
    metrics.stashMax = stash.highWatermark();
    metrics.stashCapacity = stash.capacity();
    metrics.stashOverflowed = stash.overflowed();

    metrics.served = cs.served;
    metrics.dummies = cs.dummies;
    metrics.llcHits = cs.llcHits;
    const std::uint64_t oram_requests = cs.served - cs.llcHits
        + cs.dummies;
    metrics.dummyRatio = oram_requests
        ? static_cast<double>(cs.dummies) / oram_requests : 0.0;
    return metrics;
}

RunMetrics
SimSession::finish()
{
    // done() cannot change inside a quiescent window (served is frozen
    // while the controller is idle), so checking it once per batched
    // epoch is exact.
    while (!done()) {
        if (bulkStep(kBulkChunk))
            continue;
        runCycle();
    }
    drain();
    return snapshot();
}

} // namespace palermo
