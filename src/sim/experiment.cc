/**
 * @file
 * Protocol/controller factory for every Fig. 10 design point and the
 * one-call runExperiment helper.
 */

#include "sim/experiment.hh"

#include "common/log.hh"
#include "controller/palermo_sw_controller.hh"
#include "controller/serial_controller.hh"
#include "oram/ir_oram.hh"
#include "oram/page_oram.hh"
#include "oram/palermo.hh"
#include "oram/path_oram.hh"
#include "oram/pr_oram.hh"
#include "oram/ring_oram.hh"

namespace palermo {

std::unique_ptr<Controller>
makeController(ProtocolKind kind, const SystemConfig &config)
{
    ProtocolConfig proto = config.protocol;

    switch (kind) {
      case ProtocolKind::PathOram:
        proto.prefetchLen = 1;
        return std::make_unique<SerialController>(
            std::make_unique<PathOram>(proto), config.serialIssueWidth,
            8, config.decryptLatency);

      case ProtocolKind::RingOram:
        proto.prefetchLen = 1;
        return std::make_unique<SerialController>(
            std::make_unique<RingOram>(proto), config.serialIssueWidth,
            8, config.decryptLatency);

      case ProtocolKind::PageOram:
        proto.prefetchLen = 1;
        return std::make_unique<SerialController>(
            std::make_unique<PageOram>(proto), config.serialIssueWidth,
            8, config.decryptLatency);

      case ProtocolKind::PrOram:
        return std::make_unique<SerialController>(
            std::make_unique<PrOram>(proto), config.serialIssueWidth,
            8, config.decryptLatency);

      case ProtocolKind::IrOram:
        proto.prefetchLen = 1;
        return std::make_unique<SerialController>(
            std::make_unique<IrOram>(proto), config.serialIssueWidth,
            8, config.decryptLatency);

      case ProtocolKind::PalermoSw: {
        proto.prefetchLen = 1;
        return std::make_unique<PalermoSwController>(
            std::make_unique<PalermoOram>(proto),
            config.palermo.columns);
      }

      case ProtocolKind::Palermo: {
        proto.prefetchLen = 1;
        PalermoControllerConfig hw = config.palermo;
        hw.swMode = false;
        hw.decryptLatency = config.decryptLatency;
        return std::make_unique<PalermoController>(
            std::make_unique<PalermoOram>(proto), hw);
      }

      case ProtocolKind::PalermoPrefetch: {
        PalermoControllerConfig hw = config.palermo;
        hw.swMode = false;
        hw.decryptLatency = config.decryptLatency;
        return std::make_unique<PalermoController>(
            std::make_unique<PalermoOram>(proto), hw);
      }
    }
    panic("unreachable protocol kind");
}

std::unique_ptr<Simulator>
makeSimulator(ProtocolKind kind, Workload workload,
              const SystemConfig &config)
{
    auto controller = makeController(kind, config);
    auto trace = makeTrace(workload, config.protocol.numBlocks,
                           mix64(config.seed ^ 0x74726163ull));
    auto frontend = std::make_unique<Frontend>(
        std::move(trace), config.totalRequests, config.constantRate,
        config.issueInterval, /*demand_probability=*/0.95, config.seed);
    return std::make_unique<Simulator>(config, std::move(controller),
                                       std::move(frontend));
}

RunMetrics
runExperiment(ProtocolKind kind, Workload workload,
              const SystemConfig &config)
{
    return makeSimulator(kind, workload, config)->run();
}

double
speedupOver(const RunMetrics &baseline, const RunMetrics &metrics)
{
    palermo_assert(baseline.requestsPerKilocycle > 0.0);
    return metrics.requestsPerKilocycle / baseline.requestsPerKilocycle;
}

} // namespace palermo
