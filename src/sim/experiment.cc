/**
 * @file
 * Registry-backed experiment helpers. No protocol is named here: the
 * descriptors registered from each protocol's own translation unit
 * carry the construction logic, so this file stays closed to change
 * when a new protocol lands.
 */

#include "sim/experiment.hh"

#include "common/log.hh"
#include "sim/protocol_registry.hh"

namespace palermo {

std::unique_ptr<Controller>
makeController(ProtocolKind kind, const SystemConfig &config)
{
    return buildProtocolController(kind, config);
}

std::unique_ptr<Frontend>
makeFrontend(Workload workload, const SystemConfig &config)
{
    auto trace = makeTrace(workload, config.protocol.numBlocks,
                           mix64(config.seed ^ 0x74726163ull));
    return std::make_unique<Frontend>(
        std::move(trace), config.totalRequests, config.constantRate,
        config.issueInterval, /*demand_probability=*/0.95, config.seed);
}

std::unique_ptr<SimSession>
makeSession(ProtocolKind kind, Workload workload,
            const SystemConfig &config)
{
    return std::make_unique<SimSession>(kind, config,
                                        makeFrontend(workload, config));
}

RunMetrics
runExperiment(ProtocolKind kind, Workload workload,
              const SystemConfig &config)
{
    return makeSession(kind, workload, config)->finish();
}

double
speedupOver(const RunMetrics &baseline, const RunMetrics &metrics)
{
    palermo_assert(baseline.requestsPerKilocycle > 0.0);
    return metrics.requestsPerKilocycle / baseline.requestsPerKilocycle;
}

} // namespace palermo
