/**
 * @file
 * Recursive-descent JSON parser for the repo's own metrics documents.
 */

#include "sim/json_value.hh"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace palermo {

namespace {

/** Nesting bound: palermo-metrics-v1 is ~6 deep; 128 is generous. */
constexpr unsigned kMaxDepth = 128;

} // namespace

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    run(JsonValue *out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing content after document");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_ != nullptr) {
            std::size_t line = 1;
            std::size_t col = 1;
            for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
                if (text_[i] == '\n') {
                    ++line;
                    col = 1;
                } else {
                    ++col;
                }
            }
            char where[32];
            std::snprintf(where, sizeof(where), "%zu:%zu: ", line, col);
            *error_ = where + message;
        }
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t i = 0;
        while (word[i] != '\0') {
            if (pos_ + i >= text_.size() || text_[pos_ + i] != word[i])
                return false;
            ++i;
        }
        pos_ += i;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected '\"'");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (unsigned i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad hex digit in \\u escape");
                }
                // The writer only emits \u for control characters;
                // encode the general case as UTF-8 anyway.
                if (code < 0x80) {
                    out->push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out->push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out->push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out->push_back(
                        static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
                    out->push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("unknown escape sequence");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue *out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '+'
                   || text_[pos_] == '-')) {
            ++pos_;
        }
        double value = 0.0;
        const auto result = std::from_chars(
            text_.data() + start, text_.data() + pos_, value);
        if (result.ec != std::errc()
            || result.ptr != text_.data() + pos_) {
            pos_ = start;
            return fail("malformed number");
        }
        out->kind_ = JsonValue::Kind::Number;
        out->number_ = value;
        return true;
    }

    bool
    parseValue(JsonValue *out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return fail("document nested too deeply");
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"') {
            out->kind_ = JsonValue::Kind::String;
            return parseString(&out->string_);
        }
        if (c == 't' && literal("true")) {
            out->kind_ = JsonValue::Kind::Bool;
            out->boolean_ = true;
            return true;
        }
        if (c == 'f' && literal("false")) {
            out->kind_ = JsonValue::Kind::Bool;
            out->boolean_ = false;
            return true;
        }
        if (c == 'n' && literal("null")) {
            out->kind_ = JsonValue::Kind::Null;
            return true;
        }
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return fail("unexpected character");
    }

    bool
    parseObject(JsonValue *out, unsigned depth)
    {
        ++pos_; // '{'
        out->kind_ = JsonValue::Kind::Object;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            std::string key;
            if (!parseString(&key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            skipSpace();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->members_.emplace_back(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    parseArray(JsonValue *out, unsigned depth)
    {
        ++pos_; // '['
        out->kind_ = JsonValue::Kind::Array;
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipSpace();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->array_.push_back(std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

bool
JsonValue::parse(const std::string &text, JsonValue *out,
                 std::string *error)
{
    JsonParser parser(text, error);
    return parser.run(out);
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : members_) {
        if (name == key)
            return &value;
    }
    return nullptr;
}

const JsonValue *
JsonValue::at(const std::string &path) const
{
    const JsonValue *node = this;
    std::size_t start = 0;
    while (node != nullptr && start <= path.size()) {
        const std::size_t dot = path.find('.', start);
        const std::string key = path.substr(
            start, dot == std::string::npos ? std::string::npos
                                            : dot - start);
        node = node->find(key);
        if (dot == std::string::npos)
            break;
        start = dot + 1;
    }
    return node;
}

} // namespace palermo
