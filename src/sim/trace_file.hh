/**
 * @file
 * Trace-file loader shared by palermo_replay and its tests.
 *
 * Trace format: text, one record per line.
 *   - '#' starts a comment (rest of line ignored); blank lines skipped.
 *   - 'R <line>'            read of a protected 64B line index.
 *   - 'W <line> [value]'    write (optional payload, default 0).
 * Ops are case-insensitive. See tools/traces/tiny.trace for a worked
 * example. Lives in the library (not tools/) so malformed-input
 * behavior is pinned by tests rather than only exercised ad hoc.
 */

#ifndef PALERMO_SIM_TRACE_FILE_HH
#define PALERMO_SIM_TRACE_FILE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/frontend.hh"

namespace palermo {

/**
 * Parse a trace from a stream. @p name labels error messages (a file
 * path for the CLI, a test label elsewhere). Returns false and fills
 * *error with "name:line: message" on malformed records; an empty
 * trace (no records at all) is also an error.
 */
bool loadTraceStream(std::istream &in, const std::string &name,
                     std::vector<FrontendRequest> *out, std::string *error);

/** Open @p path and parse it with loadTraceStream(). */
bool loadTraceFile(const std::string &path,
                   std::vector<FrontendRequest> *out, std::string *error);

} // namespace palermo

#endif // PALERMO_SIM_TRACE_FILE_HH
