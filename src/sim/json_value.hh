/**
 * @file
 * Minimal JSON document model and parser.
 *
 * Just enough JSON to read back the palermo-metrics-v1 documents this
 * repo's own tools emit: objects (insertion-ordered), arrays, strings,
 * doubles, booleans, null. Consumers are tools/perf_compare (baseline
 * diffing) and bench_sim_speed's --before import; neither needs
 * streaming, comments, or exotic escapes.
 */

#ifndef PALERMO_SIM_JSON_VALUE_HH
#define PALERMO_SIM_JSON_VALUE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace palermo {

/** A parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /**
     * Parse a complete document. Returns false and fills *error with a
     * "line:col: message" diagnostic on malformed input; trailing
     * non-whitespace after the document is an error.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolean() const { return boolean_; }
    double number() const { return number_; }
    const std::string &string() const { return string_; }
    const std::vector<JsonValue> &array() const { return array_; }

    /** Object members in document order. */
    const std::vector<std::pair<std::string, JsonValue>> &members() const
    {
        return members_;
    }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Dotted-path lookup ("generator.tool"); nullptr when absent. */
    const JsonValue *at(const std::string &path) const;

  private:
    Kind kind_ = Kind::Null;
    bool boolean_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> members_;

    friend class JsonParser;
};

} // namespace palermo

#endif // PALERMO_SIM_JSON_VALUE_HH
