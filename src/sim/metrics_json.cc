/**
 * @file
 * JsonWriter and the palermo-metrics-v1 document renderer.
 */

#include "sim/metrics_json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace palermo {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void
JsonWriter::newline()
{
    out_.push_back('\n');
    out_.append(2 * counts_.size(), ' ');
}

void
JsonWriter::prepareValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (counts_.empty())
        return;
    if (counts_.back() > 0)
        out_.push_back(',');
    newline();
    ++counts_.back();
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    out_.push_back('{');
    inArray_.push_back(false);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    palermo_assert(!inArray_.empty() && !inArray_.back());
    const bool had_members = counts_.back() > 0;
    inArray_.pop_back();
    counts_.pop_back();
    if (had_members)
        newline();
    out_.push_back('}');
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    out_.push_back('[');
    inArray_.push_back(true);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    palermo_assert(!inArray_.empty() && inArray_.back());
    const bool had_members = counts_.back() > 0;
    inArray_.pop_back();
    counts_.pop_back();
    if (had_members)
        newline();
    out_.push_back(']');
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    palermo_assert(!inArray_.empty() && !inArray_.back());
    palermo_assert(!pendingKey_);
    if (counts_.back() > 0)
        out_.push_back(',');
    newline();
    ++counts_.back();
    out_.push_back('"');
    out_.append(jsonEscape(name));
    out_.append("\": ");
    pendingKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    out_.append(v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    out_.append(jsonNumber(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    out_.append(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    out_.append(std::to_string(v));
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    prepareValue();
    out_.push_back('"');
    out_.append(jsonEscape(v));
    out_.push_back('"');
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"': out.append("\\\""); break;
          case '\\': out.append("\\\\"); break;
          case '\n': out.append("\\n"); break;
          case '\r': out.append("\\r"); break;
          case '\t': out.append("\\t"); break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out.append(buf);
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buf[32];
    const auto result =
        std::to_chars(buf, buf + sizeof(buf), value);
    palermo_assert(result.ec == std::errc());
    return std::string(buf, result.ptr);
}

const char *
gitDescribe()
{
    // Runtime override first: committed artifacts (BENCH_*.json,
    // goldens) must carry the provenance of the commit they describe,
    // not the "-dirty" describe of whatever tree regenerated them.
    // Diff tools ignore the generator object either way; the override
    // keeps the committed bytes honest and stable.
    static const char *const override_ =
        std::getenv("PALERMO_GIT_DESCRIBE");
    if (override_ != nullptr && override_[0] != '\0')
        return override_;
#ifdef PALERMO_GIT_DESCRIBE
    return PALERMO_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

// ---------------------------------------------------------------------------
// MetricsJson
// ---------------------------------------------------------------------------

void
MetricsJson::writeHeader(JsonWriter &w, const std::string &tool,
                         const std::string &schema)
{
    w.field("schema", schema);
    w.key("generator").beginObject();
    w.field("tool", tool);
    w.field("git", gitDescribe());
    w.endObject();
}

void
MetricsJson::writeConfig(JsonWriter &w, const SystemConfig &config)
{
    w.beginObject();
    w.field("blocks", config.protocol.numBlocks);
    w.field("pos_fanout", config.protocol.posFanout);
    w.field("ring_z", config.protocol.ringZ);
    w.field("ring_s", config.protocol.ringS);
    w.field("ring_a", config.protocol.ringA);
    w.field("path_z", config.protocol.pathZ);
    w.field("page_z", config.protocol.pageZ);
    w.field("prefetch_len", config.protocol.prefetchLen);
    w.field("fat_tree", config.protocol.fatTree);
    w.field("throttle", config.protocol.throttle);
    w.field("stash_capacity", config.protocol.stashCapacity);
    w.field("pr_stash_capacity", config.protocol.prStashCapacity);
    w.key("treetop_bytes").beginArray();
    for (std::uint64_t bytes : config.protocol.treetopBytes)
        w.value(bytes);
    w.endArray();
    w.key("dram").beginObject();
    w.field("timing", config.dram.timing.name);
    w.field("channels", config.dram.org.channels);
    w.field("queue_depth", config.dram.queueDepth);
    w.field("clock_ghz", config.dram.timing.clockGHz);
    w.endObject();
    w.key("palermo").beginObject();
    w.field("pe_columns", config.palermo.columns);
    w.field("issue_per_pe", config.palermo.issuePerPe);
    w.field("posmap3_latency", config.palermo.posmap3Latency);
    w.endObject();
    w.field("serial_issue_width", config.serialIssueWidth);
    w.field("decrypt_latency", config.decryptLatency);
    w.field("total_requests", config.totalRequests);
    w.field("warmup_fraction", config.warmupFraction);
    w.field("constant_rate", config.constantRate);
    w.field("issue_interval", config.issueInterval);
    w.endObject();
}

void
MetricsJson::writeMetrics(JsonWriter &w, const RunMetrics &metrics)
{
    w.beginObject();
    w.field("measured_requests", metrics.measuredRequests);
    w.field("measured_cycles", metrics.measuredCycles);
    w.field("requests_per_kilocycle", metrics.requestsPerKilocycle);
    w.field("misses_per_second", metrics.missesPerSecond);
    w.field("bw_utilization", metrics.bwUtilization);
    w.field("avg_outstanding", metrics.avgOutstanding);
    w.field("row_hit_rate", metrics.rowHitRate);
    w.field("row_conflict_rate", metrics.rowConflictRate);
    w.field("avg_read_latency", metrics.avgReadLatency);
    w.field("dram_reads", metrics.dramReads);
    w.field("dram_writes", metrics.dramWrites);
    w.field("reads_per_request", metrics.readsPerRequest);
    w.field("writes_per_request", metrics.writesPerRequest);
    w.field("sync_fraction", metrics.syncFraction);
    w.key("level_dram_share").beginArray();
    for (double share : metrics.levelDramShare)
        w.value(share);
    w.endArray();
    w.key("level_sync_share").beginArray();
    for (double share : metrics.levelSyncShare)
        w.value(share);
    w.endArray();
    w.key("latency").beginObject();
    w.field("count", metrics.latency.count());
    w.field("mean", metrics.latency.mean());
    w.field("min", metrics.latency.min());
    w.field("p10", metrics.latency.quantile(0.10));
    w.field("p50", metrics.latency.quantile(0.50));
    w.field("p90", metrics.latency.quantile(0.90));
    w.field("p99", metrics.latency.quantile(0.99));
    w.field("max", metrics.latency.max());
    w.endObject();
    w.key("stash").beginObject();
    w.field("max", metrics.stashMax);
    w.field("capacity", metrics.stashCapacity);
    w.field("overflowed", metrics.stashOverflowed);
    w.key("samples").beginArray();
    for (std::size_t sample : metrics.stashSamples)
        w.value(sample);
    w.endArray();
    w.endObject();
    w.field("served", metrics.served);
    w.field("dummies", metrics.dummies);
    w.field("llc_hits", metrics.llcHits);
    w.field("dummy_ratio", metrics.dummyRatio);
    w.endObject();
}

void
MetricsJson::writeRecord(JsonWriter &w, const RunRecord &record,
                         const std::function<void(JsonWriter &)> &extra)
{
    w.beginObject();
    w.field("id", record.point.id);
    w.field("protocol", protocolKindName(record.point.kind));
    w.field("workload", record.point.workloadLabel.empty()
                ? std::string(workloadName(record.point.workload))
                : record.point.workloadLabel);
    w.field("seed", record.point.config.seed);
    w.field("allow_stash_overflow", record.point.allowStashOverflow);
    w.key("config");
    writeConfig(w, record.point.config);
    w.key("metrics");
    writeMetrics(w, record.metrics);
    if (extra)
        extra(w);
    w.endObject();
}

void
MetricsJson::writeDerived(JsonWriter &w,
                          const std::map<std::string, double> &derived)
{
    w.key("derived").beginObject();
    for (const auto &[name, value] : derived)
        w.field(name, value);
    w.endObject();
}

std::string
MetricsJson::document(const std::string &tool,
                      const std::vector<RunRecord> &records,
                      const std::map<std::string, double> &derived)
{
    JsonWriter w;
    w.beginObject();
    writeHeader(w, tool);
    w.key("points").beginArray();
    for (const RunRecord &record : records)
        writeRecord(w, record);
    w.endArray();
    writeDerived(w, derived);
    w.endObject();
    std::string text = w.str();
    text.push_back('\n');
    return text;
}

bool
MetricsJson::writeFile(const std::string &path,
                       const std::string &document)
{
    if (path == "-") {
        std::fwrite(document.data(), 1, document.size(), stdout);
        return true;
    }
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file) {
        warn("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t written =
        std::fwrite(document.data(), 1, document.size(), file);
    const bool closed = std::fclose(file) == 0;
    const bool ok = written == document.size() && closed;
    if (!ok)
        warn("short write to '%s'", path.c_str());
    return ok;
}

} // namespace palermo
