/**
 * @file
 * Full-system configuration (paper Table III) plus the scaled bench
 * geometry every experiment binary uses by default.
 */

#ifndef PALERMO_SIM_SYSTEM_CONFIG_HH
#define PALERMO_SIM_SYSTEM_CONFIG_HH

#include <string>
#include <vector>

#include "controller/palermo_controller.hh"
#include "mem/dram_system.hh"
#include "oram/hierarchy.hh"

namespace palermo {

/**
 * Which end-to-end design to instantiate (Fig. 10 bars). The enum is
 * only an identity token: names, construction, and capabilities live
 * in the ProtocolDescriptor each protocol registers from its own
 * translation unit (see sim/protocol_registry.hh).
 */
enum class ProtocolKind
{
    PathOram,
    RingOram,
    PageOram,
    PrOram,          ///< With Fat-Tree + throttle (paper Fig. 10 setup).
    IrOram,
    PalermoSw,
    Palermo,
    PalermoPrefetch, ///< Palermo with PrORAM's chosen prefetch length.
};

// Name helpers below are thin views over the protocol registry.

const char *protocolKindName(ProtocolKind kind);

/** Short lowercase token used in CLI flags and JSON point ids. */
const char *protocolShortName(ProtocolKind kind);

/**
 * Parse a protocol name (short token, display name, or registered
 * alias; case-insensitive). Returns false on unknown names.
 */
bool protocolFromName(const std::string &name, ProtocolKind *kind);

/** All protocol kinds in Fig. 10 bar order. */
const std::vector<ProtocolKind> &allProtocolKinds();

/** Complete experiment configuration. */
struct SystemConfig
{
    ProtocolConfig protocol;
    DramConfig dram;
    PalermoControllerConfig palermo;
    unsigned serialIssueWidth = 16;
    unsigned decryptLatency = 40;

    /** Trace-driven run shape. */
    std::uint64_t totalRequests = 2000;
    double warmupFraction = 0.5;
    bool constantRate = false;   ///< Security-mode fixed issue interval.
    unsigned issueInterval = 400; ///< Cycles between issues when fixed.
    std::uint64_t seed = 1;

    /**
     * Host threads stepping one session (channel-sharded DRAM ticks);
     * 1 = fully serial. An execution knob, not a design point: results
     * are byte-identical at any value, so it is deliberately excluded
     * from describe() and the metrics-JSON config block.
     */
    unsigned simThreads = 1;

    /**
     * Scaled default: 2^18-line (16 MB) protected space, proportionally
     * sized tree-top caches; every figure regenerates in seconds.
     * Honors env overrides PALERMO_REQS / PALERMO_BLOCKS / PALERMO_SEED.
     */
    static SystemConfig benchDefault();

    /** The paper's full Table III geometry (16 GB protected space). */
    static SystemConfig paperTableIII();

    /** Apply PALERMO_* environment overrides. */
    void applyEnvOverrides();

    /** Table III-style description for bench headers. */
    std::string describe() const;
};

} // namespace palermo

#endif // PALERMO_SIM_SYSTEM_CONFIG_HH
