/**
 * @file
 * Experiment runner: protocol/controller factory plus the one-call
 * "run workload W under protocol P" helper every bench and integration
 * test uses.
 */

#ifndef PALERMO_SIM_EXPERIMENT_HH
#define PALERMO_SIM_EXPERIMENT_HH

#include <memory>

#include "controller/controller.hh"
#include "sim/simulator.hh"
#include "sim/system_config.hh"
#include "trace/trace_gen.hh"

namespace palermo {

/** Build the timing controller (with its protocol) for a design point. */
std::unique_ptr<Controller> makeController(ProtocolKind kind,
                                           const SystemConfig &config);

/** Build a ready-to-run simulator for (protocol, workload). */
std::unique_ptr<Simulator> makeSimulator(ProtocolKind kind,
                                         Workload workload,
                                         const SystemConfig &config);

/** Run one experiment to completion. */
RunMetrics runExperiment(ProtocolKind kind, Workload workload,
                         const SystemConfig &config);

/** Throughput speedup of `metrics` over `baseline`. */
double speedupOver(const RunMetrics &baseline, const RunMetrics &metrics);

} // namespace palermo

#endif // PALERMO_SIM_EXPERIMENT_HH
