/**
 * @file
 * Experiment conveniences over the protocol registry and SimSession:
 * build a controller / frontend / ready-to-run session for a design
 * point, or run one to completion in a single call.
 */

#ifndef PALERMO_SIM_EXPERIMENT_HH
#define PALERMO_SIM_EXPERIMENT_HH

#include <memory>

#include "controller/controller.hh"
#include "sim/session.hh"
#include "sim/system_config.hh"
#include "trace/trace_gen.hh"

namespace palermo {

/**
 * Build the timing controller (with its protocol) for a design point.
 * Resolves the registered ProtocolDescriptor and applies its config
 * normalization before construction.
 */
std::unique_ptr<Controller> makeController(ProtocolKind kind,
                                           const SystemConfig &config);

/** Build the standard LLC-miss frontend for (workload, config). */
std::unique_ptr<Frontend> makeFrontend(Workload workload,
                                       const SystemConfig &config);

/** Build a session with the built-in frontend bound. */
std::unique_ptr<SimSession> makeSession(ProtocolKind kind,
                                        Workload workload,
                                        const SystemConfig &config);

/** Run one experiment to completion (drives a session internally). */
RunMetrics runExperiment(ProtocolKind kind, Workload workload,
                         const SystemConfig &config);

/** Throughput speedup of `metrics` over `baseline`. */
double speedupOver(const RunMetrics &baseline, const RunMetrics &metrics);

} // namespace palermo

#endif // PALERMO_SIM_EXPERIMENT_HH
