/**
 * @file
 * SimSession: the re-entrant experiment loop.
 *
 * Replaces the old monolithic Simulator::run() with a session object
 * whose cycle loop is driven from outside: traffic enters through
 * submit() (or a bound Frontend), time advances through step(n), the
 * post-run settling happens in drain(), and metrics are observable at
 * any point through snapshot(). Warmup accounting and the Fig. 12
 * stash-window sampling stay inside the session, so every driver —
 * the built-in runExperiment wrapper, the palermo_replay trace
 * replayer, a multi-tenant interleaver, a rate-controlled load
 * generator — measures identically.
 *
 * The decomposition is cycle-exact with the old run() loop: one
 * step() is one iteration of the legacy loop (deliver completions,
 * admit traffic, tick controller and DRAM, account), so a
 * frontend-bound session stepped to completion produces byte-identical
 * palermo-metrics-v1 JSON to the pre-session code.
 *
 * With config.simThreads > 1 the session owns a WorkerPool and shards
 * channel ticks across it inside each cycle (and batches barrier
 * epochs over provably quiescent windows). Channels are independent
 * within a cycle and the controller/frontend half stays on the
 * coordinating thread, so the parallel schedule is an implementation
 * detail: every stat, stash sample, and metrics byte is identical to
 * the serial run (tests/test_parallel_identity.cc).
 */

#ifndef PALERMO_SIM_SESSION_HH
#define PALERMO_SIM_SESSION_HH

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "controller/controller.hh"
#include "mem/dram_system.hh"
#include "sim/frontend.hh"
#include "sim/parallel.hh"
#include "sim/system_config.hh"

namespace palermo {

/** Everything a figure needs from one run. */
struct RunMetrics
{
    // Throughput.
    std::uint64_t measuredRequests = 0;
    std::uint64_t measuredCycles = 0;
    double requestsPerKilocycle = 0.0;
    double missesPerSecond = 0.0;

    // DRAM behavior.
    double bwUtilization = 0.0;
    double avgOutstanding = 0.0;
    double rowHitRate = 0.0;
    double rowConflictRate = 0.0;
    double avgReadLatency = 0.0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    double readsPerRequest = 0.0;
    double writesPerRequest = 0.0;

    // Controller behavior.
    double syncFraction = 0.0;
    std::array<double, kHierLevels> levelDramShare{};
    std::array<double, kHierLevels> levelSyncShare{};
    Histogram latency{100.0, 200};
    std::vector<LatencySample> samples;

    // Stash behavior (data level).
    std::vector<std::size_t> stashSamples; ///< Watermark per 1% window.
    std::size_t stashMax = 0;
    std::size_t stashCapacity = 0;
    bool stashOverflowed = false;

    // Request accounting.
    std::uint64_t served = 0;
    std::uint64_t dummies = 0;
    std::uint64_t llcHits = 0;
    double dummyRatio = 0.0;
};

/**
 * One experiment instance, driven cycle by cycle.
 *
 * config.totalRequests defines the run shape: the warmup boundary
 * (warmupFraction of it) and the stash sampling window (1% of it)
 * derive from it, and done() reports when that many requests have been
 * served — external drivers should size it to the traffic they intend
 * to inject.
 */
class SimSession
{
  public:
    /**
     * Externally driven session: the caller injects traffic with
     * submit() and advances time with step().
     * @param kind Protocol to instantiate (via the registry).
     * @param config System parameters.
     */
    SimSession(ProtocolKind kind, const SystemConfig &config);

    /**
     * Session with a bound traffic source: each step() admits from the
     * frontend at the controller's pace, like the legacy run loop.
     */
    SimSession(ProtocolKind kind, const SystemConfig &config,
               std::unique_ptr<Frontend> frontend);

    /** Custom controller injection (tests, exotic design points). */
    SimSession(const SystemConfig &config,
               std::unique_ptr<Controller> controller,
               std::unique_ptr<Frontend> frontend = nullptr);

    /**
     * Queue one request for admission (externally driven sessions
     * only; sessions with a bound frontend own their traffic).
     * Admission happens inside step(), at the controller's pace.
     */
    void submit(const FrontendRequest &request);
    void submit(BlockId pa, bool write = false, std::uint64_t value = 0,
                bool dummy = false);

    /** Submitted requests not yet admitted to the controller. */
    std::size_t backlog() const { return inbox_.size(); }

    /**
     * Advance the clock: each cycle delivers DRAM completions, admits
     * pending traffic, ticks the controller and the DRAM model, and
     * updates warmup/sampling state.
     */
    void step(std::uint64_t cycles = 1);

    /** Have config.totalRequests requests been served? */
    bool done() const { return served() >= config_.totalRequests; }

    /**
     * Settle the tail: run extra cycles (no admission) until the
     * controller goes idle, so trailing writes and evictions land in
     * the DRAM statistics. Bounded; idempotent.
     */
    void drain();

    /** Condense metrics from the state so far. Mid-run safe. */
    RunMetrics snapshot() const;

    /**
     * Run to completion: step until done(), drain(), snapshot().
     * Requires a bound frontend or fully submitted traffic — a
     * starved session would spin to the runaway guard otherwise.
     */
    RunMetrics finish();

    Tick now() const { return dram_->now(); }
    std::uint64_t served() const { return controller_->stats().served; }

    Controller &controller() { return *controller_; }
    const Controller &controller() const { return *controller_; }
    DramSystem &dram() { return *dram_; }
    const SystemConfig &config() const { return config_; }

  private:
    void runCycle();
    void admit(Tick now);
    void tickDram();

    /**
     * Largest batchable window of provably event-free cycles starting
     * now, capped at `bound`: the controller is idle (its tick is pure
     * accounting), no read or completion is pending in DRAM, no stash
     * sample or warmup flip is outstanding, and no traffic can be
     * admitted before the window ends. 0 means "take the per-cycle
     * path".
     */
    std::uint64_t quiescentWindow(std::uint64_t bound) const;

    /**
     * Try to advance a whole quiescent window (at most `bound` cycles)
     * in one batched epoch: bulk controller idle accounting + one
     * DramSystem::tickWindow + exact occupancy integration. State and
     * statistics evolve exactly as the equivalent runCycle() sequence.
     * @return Cycles advanced; 0 when the per-cycle path must run.
     */
    std::uint64_t bulkStep(std::uint64_t bound);

    SystemConfig config_;
    std::unique_ptr<DramSystem> dram_;
    std::unique_ptr<Controller> controller_;
    std::unique_ptr<Frontend> frontend_; ///< Null when externally fed.
    std::unique_ptr<WorkerPool> pool_;   ///< Null when simThreads <= 1.
    std::deque<FrontendRequest> inbox_;  ///< submit()ted, not admitted.

    // Warmup and sampling state (formerly locals of Simulator::run).
    std::uint64_t warmupServed_;  ///< Requests before measurement.
    std::uint64_t window_;        ///< Stash sampling window (1%).
    bool measuring_;
    std::uint64_t warmupCycles_ = 0;
    std::uint64_t nextSample_;
    TimeWeighted outstanding_;
    std::vector<std::size_t> stashSamples_;
};

} // namespace palermo

#endif // PALERMO_SIM_SESSION_HH
