/**
 * @file
 * Declarative design-point grids and the parallel sweep runner.
 *
 * A SweepSpec names values along the axes the paper's evaluation sweeps
 * (protocols, workloads, ring (Z,S,A), PE columns, DRAM channels,
 * prefetch lengths, seeds). expand() takes the cross product against a
 * base configuration and yields an ordered list of DesignPoints with
 * stable ids; SweepRunner executes them on a thread pool. Seeds are
 * fixed at expansion time — never drawn during execution — so serial
 * and parallel runs of the same grid produce identical results.
 */

#ifndef PALERMO_SIM_SWEEP_HH
#define PALERMO_SIM_SWEEP_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/session.hh"
#include "sim/system_config.hh"
#include "trace/trace_gen.hh"

namespace palermo {

/** One fully-resolved experiment in a grid. */
struct DesignPoint
{
    std::size_t index = 0;  ///< Position in expansion order.
    ProtocolKind kind = ProtocolKind::Palermo;
    Workload workload = Workload::Random;
    SystemConfig config;
    std::string id;  ///< Stable "protocol/workload[/axis=value...]" key.

    /**
     * Overrides the workload name in JSON output when non-empty —
     * externally driven points (palermo_replay) report their trace
     * here instead of a synthetic-workload tag.
     */
    std::string workloadLabel;

    /**
     * Exempt this point from the stash-overflow sanity gate. Fig. 4
     * style experiments force prefetch pressure precisely to observe
     * overflow behavior; the JSON still records the overflow flag.
     */
    bool allowStashOverflow = false;
};

/** A design point together with its measured run. */
struct RunRecord
{
    DesignPoint point;
    RunMetrics metrics;
};

/**
 * Declarative grid of design points. Empty axes inherit the base
 * value; non-empty axes take the cross product in a fixed order
 * (protocol, workload, zsa, pe, channels, prefetch, seed), which also
 * fixes point ids and JSON output order.
 */
struct SweepSpec
{
    /** A RingORAM/Palermo (Z, S, A) parameter point. */
    struct Zsa
    {
        unsigned z = 0;
        unsigned s = 0;
        unsigned a = 0;
    };

    std::vector<ProtocolKind> protocols;
    std::vector<Workload> workloads;
    std::vector<Zsa> zsaPoints;
    std::vector<unsigned> peColumns;
    std::vector<unsigned> channels;
    std::vector<unsigned> prefetchLens;
    std::vector<std::uint64_t> seeds;

    /**
     * Parse a spec string: whitespace/';'-separated `axis=v1,v2,...`
     * clauses. Axes: protocol, workload, zsa (values `Z:S:A`), pe,
     * channels, prefetch, seed (aliases: proto, wl, columns, ch, pf).
     * Returns false and fills *error on malformed input.
     */
    static bool parse(const std::string &text, SweepSpec *spec,
                      std::string *error);

    /** True if no axis names any value. */
    bool empty() const;

    /** Number of points expand() will produce (>= 1). */
    std::size_t pointCount() const;

    /**
     * Cross-product expansion against a base design point. A prefetch
     * value of 0 or 1 means "no prefetch"; values > 1 upgrade a plain
     * Palermo base to Palermo+Prefetch (descriptors without the
     * prefetch capability clamp prefetchLen to 1), mirroring the
     * Fig. 13 sweep.
     */
    std::vector<DesignPoint> expand(ProtocolKind base_kind,
                                    Workload base_workload,
                                    const SystemConfig &base) const;
};

/**
 * Executes design points on a thread pool. Results are stored by point
 * index, so the record order (and any JSON rendered from it) does not
 * depend on the number of jobs or on scheduling.
 */
class SweepRunner
{
  public:
    /** @param jobs Worker threads (clamped to [1, #points]). */
    explicit SweepRunner(unsigned jobs = 1) : jobs_(jobs) {}

    /** Run every point to completion and collect the records. */
    std::vector<RunRecord> run(const std::vector<DesignPoint> &points) const;

    unsigned jobs() const { return jobs_; }

  private:
    unsigned jobs_;
};

/**
 * Strict base-10 unsigned parse (digits only, no sign/whitespace).
 * Shared by the sweep-spec and palermo_run flag parsers.
 */
bool parseUnsigned(const std::string &text, std::uint64_t *value);

/**
 * Post-run sanity gate: stash overflows and degenerate measurements.
 * Appends one human-readable line per problem; returns true when the
 * records are clean. Benches and palermo_run turn a false result into
 * a nonzero exit code so CI can gate on it.
 */
bool sanityCheck(const std::vector<RunRecord> &records,
                 std::vector<std::string> *problems);

} // namespace palermo

#endif // PALERMO_SIM_SWEEP_HH
