/**
 * @file
 * Simulator: wires frontend -> ORAM controller -> DDR4 model, runs the
 * tick loop with a warmup boundary, and condenses every metric the
 * paper's figures report.
 */

#ifndef PALERMO_SIM_SIMULATOR_HH
#define PALERMO_SIM_SIMULATOR_HH

#include <array>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "controller/controller.hh"
#include "mem/dram_system.hh"
#include "sim/frontend.hh"
#include "sim/system_config.hh"

namespace palermo {

/** Everything a figure needs from one run. */
struct RunMetrics
{
    // Throughput.
    std::uint64_t measuredRequests = 0;
    std::uint64_t measuredCycles = 0;
    double requestsPerKilocycle = 0.0;
    double missesPerSecond = 0.0;

    // DRAM behavior.
    double bwUtilization = 0.0;
    double avgOutstanding = 0.0;
    double rowHitRate = 0.0;
    double rowConflictRate = 0.0;
    double avgReadLatency = 0.0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    double readsPerRequest = 0.0;
    double writesPerRequest = 0.0;

    // Controller behavior.
    double syncFraction = 0.0;
    std::array<double, kHierLevels> levelDramShare{};
    std::array<double, kHierLevels> levelSyncShare{};
    Histogram latency{100.0, 200};
    std::vector<LatencySample> samples;

    // Stash behavior (data level).
    std::vector<std::size_t> stashSamples; ///< Watermark per 1% window.
    std::size_t stashMax = 0;
    std::size_t stashCapacity = 0;
    bool stashOverflowed = false;

    // Request accounting.
    std::uint64_t served = 0;
    std::uint64_t dummies = 0;
    std::uint64_t llcHits = 0;
    double dummyRatio = 0.0;
};

/** One experiment instance. */
class Simulator
{
  public:
    /**
     * @param config System parameters.
     * @param controller The timing controller under test (owned).
     * @param frontend The LLC-miss source (owned).
     */
    Simulator(const SystemConfig &config,
              std::unique_ptr<Controller> controller,
              std::unique_ptr<Frontend> frontend);

    /** Run to completion and collect metrics. */
    RunMetrics run();

    DramSystem &dram() { return *dram_; }
    Controller &controller() { return *controller_; }

  private:
    SystemConfig config_;
    std::unique_ptr<DramSystem> dram_;
    std::unique_ptr<Controller> controller_;
    std::unique_ptr<Frontend> frontend_;
};

} // namespace palermo

#endif // PALERMO_SIM_SIMULATOR_HH
