/**
 * @file
 * Trace-file parsing (extracted from the palermo_replay tool).
 */

#include "sim/trace_file.hh"

#include <fstream>
#include <sstream>

#include "sim/sweep.hh"

namespace palermo {

bool
loadTraceStream(std::istream &in, const std::string &name,
                std::vector<FrontendRequest> *out, std::string *error)
{
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::istringstream fields(line);
        std::string op;
        if (!(fields >> op))
            continue; // Blank / comment-only line.

        const auto bad = [&](const std::string &what) {
            std::ostringstream os;
            os << name << ":" << lineno << ": " << what;
            *error = os.str();
            return false;
        };

        bool write = false;
        if (op == "R" || op == "r") {
            write = false;
        } else if (op == "W" || op == "w") {
            write = true;
        } else {
            return bad("unknown op '" + op + "' (want R or W)");
        }

        std::string address;
        if (!(fields >> address))
            return bad("missing line index");
        std::uint64_t pa = 0;
        if (!parseUnsigned(address, &pa))
            return bad("bad line index '" + address + "'");

        std::uint64_t value = 0;
        std::string payload;
        if (fields >> payload) {
            if (!write)
                return bad("payload on a read record");
            if (!parseUnsigned(payload, &value))
                return bad("bad payload '" + payload + "'");
        }
        std::string extra;
        if (fields >> extra)
            return bad("trailing token '" + extra + "'");

        out->push_back(FrontendRequest{pa, write, value, false});
    }
    if (out->empty()) {
        *error = "trace '" + name + "' holds no records";
        return false;
    }
    return true;
}

bool
loadTraceFile(const std::string &path, std::vector<FrontendRequest> *out,
              std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        *error = "cannot open trace file '" + path + "'";
        return false;
    }
    return loadTraceStream(in, path, out, error);
}

} // namespace palermo
